// bench_gemm — the blocked/tiled GEMM kernel subsystem vs the seed's naive
// loops, and the multiply-free packed-ternary serving path.
//
// Three questions: (1) what does the cache-blocked, register-tiled kernel
// layer buy over the seed's naive triple loops across square and ViT-shaped
// products, (2) what does the packed-ternary Linear::infer path buy over the
// PR-3 dense frozen snapshot it replaces on ternary layers, and (3) what does
// GemmOptions row-band parallelism add on multi-core hosts. The seed loops
// are measured through the ASCEND_GEMM=reference escape hatch
// (gemm::set_backend), i.e. exactly the code the blocked kernels replaced.

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "nn/gemm.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/rng.h"
#include "runtime/thread_pool.h"

using namespace ascend;
using namespace ascend::nn;

namespace {

double seconds_per_call(const std::function<void()>& fn, int iters) {
  fn();  // warm-up (touches pack scratch, builds snapshots)
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() / iters;
}

struct Shape {
  const char* label;
  const char* key;  ///< JSON metric prefix; null = table-only
  int m, k, n;
};

void dense_kernel_table(bool fast, bench::JsonWriter* json) {
  // Square sweep plus the ViT products the serving path actually issues
  // (bench topology: dim 64, tokens 16, mlp ratio 2; batch 64 rows).
  const std::vector<Shape> shapes = {
      {"64^3", nullptr, 64, 64, 64},
      {"128^3", nullptr, 128, 128, 128},
      {"192^3 (acceptance)", "gemm_192", 192, 192, 192},
      {"256^3", nullptr, 256, 256, 256},
      {"qkv   [1024,64]x[64,192]", "gemm_qkv", 1024, 64, 192},
      {"mlp1  [1024,64]x[64,128]", nullptr, 1024, 64, 128},
      {"mlp2  [1024,128]x[128,64]", nullptr, 1024, 128, 64},
      {"head  [64,64]x[64,10]", nullptr, 64, 64, 10},
  };
  Rng rng(2);
  std::printf("\n-- dense f32 GEMM: blocked kernels vs seed naive loops (1 thread) --\n");
  std::printf("  %-28s %12s %12s %12s %12s %9s\n", "shape (m x k x n)", "naive ms", "naive GF/s",
              "blocked ms", "blocked GF/s", "speedup");
  for (const auto& s : shapes) {
    Tensor a({s.m, s.k}), b({s.k, s.n});
    rng.fill_normal(a, 0, 1);
    rng.fill_normal(b, 0, 1);
    const double flops = 2.0 * s.m * s.k * s.n;
    const int iters = fast ? 5 : std::max(10, static_cast<int>(2e8 / flops));
    gemm::set_backend(gemm::Backend::kReference);
    const double t_ref =
        seconds_per_call([&] { ::benchmark::DoNotOptimize(matmul(a, b).data()); }, iters);
    gemm::set_backend(gemm::Backend::kBlocked);
    const double t_blk =
        seconds_per_call([&] { ::benchmark::DoNotOptimize(matmul(a, b).data()); }, iters);
    std::printf("  %-28s %12.3f %12.2f %12.3f %12.2f %8.2fx\n", s.label, t_ref * 1e3,
                flops / t_ref / 1e9, t_blk * 1e3, flops / t_blk / 1e9, t_ref / t_blk);
    if (json && s.key) {
      const std::string base = s.key;
      json->add(base + "_naive_gflops", flops / t_ref / 1e9);
      json->add(base + "_blocked_gflops", flops / t_blk / 1e9);
      json->add(base + "_speedup", t_ref / t_blk);
    }
  }
  gemm::set_backend(gemm::Backend::kBlocked);
}

void pool_parallel_table(bool fast) {
  const int m = 512, k = 192, n = 192;
  Rng rng(3);
  Tensor a({m, k}), b({k, n});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  const double flops = 2.0 * m * k * n;
  const int iters = fast ? 5 : 20;
  gemm::set_backend(gemm::Backend::kBlocked);
  std::printf("\n-- GemmOptions row-band parallelism ([%d,%d]x[%d,%d], ThreadPool) --\n", m, k, k,
              n);
  std::printf("  %8s %12s %12s %10s\n", "threads", "ms/call", "GF/s", "scaling");
  double base = 0.0;
  for (int threads : {1, 2, 4}) {
    runtime::ThreadPool pool(threads);
    gemm::GemmOptions opts;
    opts.pool = threads > 1 ? &pool : nullptr;
    const double t = seconds_per_call(
        [&] {
          Tensor c({m, n});
          gemm::gemm_nn(m, n, k, a.data(), k, b.data(), n, c.data(), n, opts);
          ::benchmark::DoNotOptimize(c.data());
        },
        iters);
    if (threads == 1) base = t;
    std::printf("  %8d %12.3f %12.2f %9.2fx\n", threads, t * 1e3, flops / t / 1e9, base / t);
  }
  std::printf("  (results are bit-identical across thread counts — asserted in test_gemm;\n"
              "   scaling is bounded by the machine's core count)\n");
}

void packed_ternary_table(bool fast, bench::JsonWriter* json) {
  // The PR-3 acceptance layer: 128x128, ternary weights AND activations
  // (W2A2), serving at small batches. "dense frozen" is the PR-3 path
  // (ASCEND_GEMM=reference: frozen dense snapshot through the naive matmul);
  // "packed" is the multiply-free sign-plane kernel.
  Rng rng(5);
  Linear lin(128, 128, rng);
  lin.set_weight_quant(QuantSpec::ternary());
  lin.set_input_quant(QuantSpec::ternary());
  std::printf("\n-- packed-ternary Linear::infer vs PR-3 dense frozen (128x128 W2A2) --\n");
  std::printf("  %8s %14s %14s %9s\n", "batch", "dense us/call", "packed us/call", "speedup");
  for (int batch : {1, 4, 16}) {
    Tensor x({batch, 128});
    rng.fill_normal(x, 0, 1);
    (void)lin.forward(x);  // latch the LSQ steps (thaws snapshots)
    const int iters = fast ? 200 : 2000;
    gemm::set_backend(gemm::Backend::kReference);
    const double t_dense =
        seconds_per_call([&] { ::benchmark::DoNotOptimize(lin.infer(x).data()); }, iters);
    gemm::set_backend(gemm::Backend::kBlocked);
    lin.thaw();  // drop the dense snapshot so the packed planes rebuild
    const double t_packed =
        seconds_per_call([&] { ::benchmark::DoNotOptimize(lin.infer(x).data()); }, iters);
    std::printf("  %8d %14.2f %14.2f %8.2fx\n", batch, t_dense * 1e6, t_packed * 1e6,
                t_dense / t_packed);
    if (json) {
      const std::string base = "packed_ternary_b" + std::to_string(batch);
      json->add(base + "_usec_per_call", t_packed * 1e6);
      json->add(base + "_speedup", t_dense / t_packed);
    }
  }
  gemm::set_backend(gemm::Backend::kBlocked);
}

// Registered google-benchmark kernels for flag-driven runs.

void bm_gemm_blocked_192(benchmark::State& state) {
  Rng rng(7);
  Tensor a({192, 192}), b({192, 192});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  gemm::set_backend(gemm::Backend::kBlocked);
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b).data());
}
BENCHMARK(bm_gemm_blocked_192);

void bm_gemm_reference_192(benchmark::State& state) {
  Rng rng(7);
  Tensor a({192, 192}), b({192, 192});
  rng.fill_normal(a, 0, 1);
  rng.fill_normal(b, 0, 1);
  gemm::set_backend(gemm::Backend::kReference);
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b).data());
  gemm::set_backend(gemm::Backend::kBlocked);
}
BENCHMARK(bm_gemm_reference_192);

void bm_linear_infer_packed_ternary(benchmark::State& state) {
  Rng rng(5);
  Linear lin(128, 128, rng);
  lin.set_weight_quant(QuantSpec::ternary());
  lin.set_input_quant(QuantSpec::ternary());
  Tensor x({static_cast<int>(state.range(0)), 128});
  rng.fill_normal(x, 0, 1);
  (void)lin.forward(x);
  gemm::set_backend(gemm::Backend::kBlocked);
  (void)lin.infer(x);  // freeze the packed planes
  for (auto _ : state) benchmark::DoNotOptimize(lin.infer(x).size());
}
BENCHMARK(bm_linear_infer_packed_ternary)->Arg(1)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json;
  bench::banner("GEMM kernel layer — blocked/tiled dense + packed ternary",
                "serving extension (no table in the paper)");
  const bool fast = bench::fast_mode();
  dense_kernel_table(fast, &json);
  pool_parallel_table(fast);
  packed_ternary_table(fast, &json);
  if (!json_path.empty()) json.write(json_path);
  bench::run_timing_kernels(argc, argv);
  return 0;
}
