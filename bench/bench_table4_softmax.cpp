// bench_table4_softmax — reproduces Table IV: area / delay / ADP / MAE of
// softmax blocks at m = 64. Baseline: the FSM-based design of [17] at BSL
// 128/256/1024. Ours: the iterative approximate softmax with Bx = 4 and
// By in {4, 8, 16}, using the Table VI [By, s1, s2, k] configurations; the
// scaling factors are picked per row by a small designer sweep (the same
// parameters Fig. 8 explores).
//
// The iterative-softmax MAE columns (designer sweep + table rows) are served
// from the transfer-function LUT cache — bit-identical to direct circuit
// emulation at the same seeds, so the table is unchanged; the designer sweep
// is re-run uncached once to report the measured speedup. The FSM baseline
// MAE keeps the paper's per-row re-seeding protocol (emulated); the cached
// shared-seed protocol variant is printed separately and clearly flagged.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "hw/cost_model.h"
#include "hw/report.h"
#include "runtime/tf_cache.h"
#include "sc/softmax_fsm.h"
#include "sc/softmax_iter.h"

using namespace ascend;

namespace {

struct OursRow {
  int by, s1, s2, k;
};

sc::SoftmaxIterConfig tune_alphas(sc::SoftmaxIterConfig cfg, int rows, std::uint64_t seed,
                                  runtime::TfCache* cache) {
  double best = 1e300;
  sc::SoftmaxIterConfig best_cfg = cfg;
  for (double ax_range : {4.0, 6.0, 8.0})
    for (double ay : {0.5 / cfg.m, 1.0 / cfg.m, 2.0 / cfg.m, 4.0 / cfg.m}) {
      cfg.alpha_x = ax_range / (cfg.bx / 2.0);
      cfg.alpha_y = ay;
      try {
        const double mae = cache ? runtime::softmax_sc_mae_cached(cfg, rows, seed, *cache)
                                 : sc::softmax_sc_mae(cfg, rows, seed);
        if (mae < best) {
          best = mae;
          best_cfg = cfg;
        }
      } catch (const std::exception&) {
      }
    }
  return best_cfg;
}

void bm_softmax_iter(benchmark::State& state) {
  sc::SoftmaxIterConfig cfg;  // m=64, By=8 defaults
  const auto rows = sc::sample_attention_logits(cfg.m, 1, 7);
  for (auto _ : state) benchmark::DoNotOptimize(sc::softmax_iterative_sc(rows[0], cfg).size());
}
BENCHMARK(bm_softmax_iter);

void bm_softmax_fsm(benchmark::State& state) {
  sc::FsmSoftmaxConfig cfg;
  cfg.bsl = static_cast<int>(state.range(0));
  const auto rows = sc::sample_attention_logits(cfg.m, 1, 7);
  for (auto _ : state) benchmark::DoNotOptimize(sc::softmax_fsm(rows[0], cfg).size());
}
BENCHMARK(bm_softmax_fsm)->Arg(128)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Table IV — softmax blocks (m = 64)",
                "FSM [17] 1024b: 1.26e4um2, 2621ns, ADP 3.31e7, MAE 0.099 | "
                "Ours By=8: 1.62e5um2, 16.2ns, ADP 2.62e6, MAE 0.0766");

  const bool fast = bench::fast_mode();
  const int mae_rows = fast ? 6 : 40;
  const int tune_rows = fast ? 4 : 16;

  std::vector<hw::BlockMetrics> rows;
  runtime::TfCache cache;

  // Baseline FSM softmax (per-row re-seeding protocol, emulated: building a
  // threshold table per row seed costs more than one emulated row).
  std::vector<sc::FsmSoftmaxConfig> fsm_cfgs;
  for (int bsl : {128, 256, 1024}) {
    sc::FsmSoftmaxConfig cfg;
    cfg.bsl = bsl;
    fsm_cfgs.push_back(cfg);
    const hw::GateInventory inv = hw::cost_fsm_softmax(cfg.m, bsl, cfg.n_states, cfg.quotient_bits);
    rows.push_back({"FSM [17]", std::to_string(bsl) + "b BSL", inv.area_um2(), inv.delay_ns(),
                    sc::softmax_fsm_mae(cfg, mae_rows, 808)});
  }

  // Ours, along the Table VI configurations. The designer sweep and the MAE
  // column share the LUT cache, so the winning configuration's table is
  // reused instead of rebuilt.
  const OursRow ours[] = {{4, 128, 2, 2}, {8, 32, 8, 3}, {16, 128, 16, 4}};
  const auto t_cached0 = std::chrono::steady_clock::now();
  std::vector<sc::SoftmaxIterConfig> tuned;
  for (const OursRow& r : ours) {
    sc::SoftmaxIterConfig cfg;
    cfg.m = 64;
    cfg.bx = 4;
    cfg.by = r.by;
    cfg.s1 = r.s1;
    cfg.s2 = r.s2;
    cfg.k = r.k;
    cfg = tune_alphas(cfg, tune_rows, 909, &cache);
    tuned.push_back(cfg);
    const hw::GateInventory inv = hw::cost_softmax_iter(cfg);
    rows.push_back({"Ours (iter approx)", "By=" + std::to_string(r.by), inv.area_um2(),
                    inv.delay_ns(), runtime::softmax_sc_mae_cached(cfg, mae_rows, 808, cache)});
  }
  const double cached_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_cached0).count();
  std::printf("%s\n",
              hw::format_metrics_table("Table IV — softmax block comparison", rows).c_str());

  std::printf("ADP reduction, ours By=8 vs FSM 1024b: %.2fx (paper: 12.6x)\n",
              rows[2].adp() / rows[4].adp());
  std::printf("ADP reduction, ours By=8 vs FSM 128b: %.2fx (paper: 1.58x)\n",
              rows[0].adp() / rows[4].adp());
  std::printf("MAE reduction, ours By=8 vs FSM 1024b: %.1f%% (paper: 22.6%%)\n",
              100.0 * (1.0 - rows[4].mae / rows[2].mae));
  std::printf("Ours By=4 vs By=8 ADP: %.2fx lower (paper: 3.85x)\n",
              rows[4].adp() / rows[3].adp());

  // Control: the same designer sweep + MAE columns with per-row circuit
  // emulation. Must reproduce the table's numbers exactly; reports what the
  // LUT cache bought.
  const auto t_emul0 = std::chrono::steady_clock::now();
  bool identical = true;
  for (std::size_t i = 0; i < tuned.size(); ++i) {
    // tune_alphas overwrites both alphas on every candidate, so re-tuning the
    // already-tuned config replays the designer sweep from scratch.
    const sc::SoftmaxIterConfig cfg = tune_alphas(tuned[i], tune_rows, 909, nullptr);
    identical = identical && sc::softmax_sc_mae(cfg, mae_rows, 808) == rows[3 + i].mae;
  }
  const double emul_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_emul0).count();
  std::printf("\n-- iterative-softmax columns: LUT cache vs circuit emulation --\n");
  std::printf("  cached %.2f s, emulated %.2f s: %.2fx speedup; MAE identical: %s\n", cached_s,
              emul_s, emul_s / std::max(cached_s, 1e-9), identical ? "yes" : "NO — BUG");

  // FSM baseline under the cached *shared-seed* protocol: one threshold
  // table serves every test row. NOT the per-row protocol of the table above
  // — the numbers are not comparable to the paper's, hence the flag.
  std::printf("\n-- FSM baseline, shared-seed protocol variant (LUT-cached; NOT the per-row\n"
              "   re-seeding protocol of Table IV — do not compare across tables) --\n");
  for (const auto& cfg : fsm_cfgs) {
    const auto t0 = std::chrono::steady_clock::now();
    const double mae = runtime::softmax_fsm_mae_cached(cfg, mae_rows, 808, cache,
                                                       runtime::FsmSeedMode::kSharedSeed);
    const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::printf("  %4db BSL: MAE %.4f [shared-seed] (%.3f s incl. one-time table build)\n",
                cfg.bsl, mae, s);
  }

  bench::run_timing_kernels(argc, argv);
  return 0;
}
