// bench_runtime_throughput — images/sec of the batched SC inference runtime.
//
// Four questions: (1) what does the transfer-function LUT cache buy over
// re-emulating the SC circuits per activation, (2) how does throughput scale
// with the engine's worker-pool size, (3) what do concurrent batch forwards
// through the re-entrant const infer path buy on the submit() serving path,
// and (4) what latency separation does the priority scheduler deliver
// between interactive and batch traffic when one engine serves several
// registered variants under saturation. (1)-(3) run the full ViT forward
// with the SC softmax + GELU hooks active, i.e. the serving hot path.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/ascend.h"
#include "nn/gemm.h"
#include "runtime/alloc_count.h"
#include "runtime/arena.h"
#include "runtime/loader.h"

using namespace ascend;
using namespace ascend::vit;

namespace {

ScInferenceConfig serving_sc_config() {
  ScInferenceConfig cfg;
  cfg.softmax.bx = 8;
  cfg.softmax.alpha_x = 1.0;
  cfg.softmax.by = 32;
  cfg.softmax.k = 3;
  cfg.softmax.s1 = 4;
  cfg.softmax.s2 = 2;
  cfg.softmax.alpha_y = 3.0 / 32;
  cfg.use_sc_gelu = true;
  cfg.gelu_bsl = 16;
  cfg.gelu_range = 4.0;
  return cfg;
}

double images_per_sec(VisionTransformer& model, const Dataset& data,
                      const ScInferenceConfig& sc_cfg, int threads, bool cached) {
  runtime::EngineOptions opts;
  opts.threads = threads;
  opts.use_tf_cache = cached;
  runtime::InferenceEngine engine(model, sc_cfg, opts);
  engine.evaluate(data, 32);  // warm-up: builds LUTs / touches every code path
  const auto t0 = std::chrono::steady_clock::now();
  engine.evaluate(data, 32);
  const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return data.size() / s;
}

// Drive the full dataset through the async submit() path and time the drain;
// this is the path where EngineOptions::concurrent_forwards matters.
double images_per_sec_submit(VisionTransformer& model, const Dataset& data,
                             const ScInferenceConfig& sc_cfg, int threads,
                             int concurrent_forwards) {
  runtime::EngineOptions opts;
  opts.threads = threads;
  opts.max_batch = 16;
  opts.max_delay = std::chrono::microseconds(500);
  opts.concurrent_forwards = concurrent_forwards;
  runtime::InferenceEngine engine(model, sc_cfg, opts);
  const int pixels = data.images.dim(1);
  auto drain = [&] {
    std::vector<std::future<runtime::Prediction>> futs;
    futs.reserve(static_cast<std::size_t>(data.size()));
    for (int r = 0; r < data.size(); ++r) {
      std::vector<float> img(static_cast<std::size_t>(pixels));
      for (int p = 0; p < pixels; ++p) img[static_cast<std::size_t>(p)] = data.images.at(r, p);
      futs.push_back(engine.submit(std::move(img)));
    }
    for (auto& f : futs) f.get();
  };
  drain();  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  drain();
  const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return data.size() / s;
}

// Mixed-priority / multi-variant serving under saturation: one engine over a
// registry holding the SC LUT-cached and the W2A2 packed-ternary variants,
// hammered by interactive and batch-priority client streams at once. Reports
// the engine's own ascend_request_latency_usec histograms per (variant,
// priority) — p50/p95/p99/p99.9 with <= 3.2% relative bucket error — i.e.
// the scheduling separation the priority queue buys, measured where a
// production scrape would measure it.
void mixed_priority_table(VisionTransformer& model, const Dataset& data,
                          const ScInferenceConfig& sc_cfg, bench::JsonWriter* json) {
  auto registry = std::make_shared<runtime::ModelRegistry>();
  runtime::ThreadPool sc_pool(2);
  ScServableOptions sopts;
  sopts.pool = &sc_pool;
  registry->publish(make_sc_servable(model, sc_cfg, sopts, "sc-lut"));
  registry->publish(make_packed_ternary_servable(model, "w2a2-packed"));

  runtime::EngineOptions opts;
  opts.threads = 2;
  opts.max_batch = 16;
  opts.max_delay = std::chrono::microseconds(500);
  opts.concurrent_forwards = 2;
  opts.default_variant = "sc-lut";
  runtime::InferenceEngine engine(registry, opts);

  const int pixels = data.images.dim(1);
  const int per_client = bench::fast_mode() ? 8 : 48;
  // Two clients per (variant, priority) cell, each bursting its whole stream
  // up-front (open-loop offered load): the queue holds a deep backlog, so
  // the scheduler — not idle capacity — decides who waits. Engine latency is
  // enqueue -> resolution, i.e. scheduling position plus service time.
  struct Cell {
    std::string variant;
    runtime::Priority priority;
  };
  std::vector<Cell> cells;
  for (const char* v : {"sc-lut", "w2a2-packed"})
    for (runtime::Priority p : {runtime::Priority::kInteractive, runtime::Priority::kBatch})
      for (int dup = 0; dup < 2; ++dup) cells.push_back({v, p});

  std::vector<std::thread> clients;
  for (const Cell& cell : cells) {
    clients.emplace_back([&, per_client] {
      runtime::RequestOptions ropts;
      ropts.variant = cell.variant;
      ropts.priority = cell.priority;
      std::vector<std::future<runtime::Prediction>> futs;
      futs.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        const int r = i % data.size();
        std::vector<float> img(static_cast<std::size_t>(pixels));
        for (int p = 0; p < pixels; ++p) img[static_cast<std::size_t>(p)] = data.images.at(r, p);
        futs.push_back(engine.submit(std::move(img), ropts));
      }
      for (auto& f : futs) (void)f.get();
    });
  }
  for (auto& t : clients) t.join();

  const runtime::metrics::RegistrySnapshot snap = engine.metrics()->snapshot();
  std::printf("  %-14s %-12s %10s %10s %10s %10s %8s\n", "variant", "priority", "p50 ms",
              "p95 ms", "p99 ms", "p99.9 ms", "served");
  for (const char* v : {"sc-lut", "w2a2-packed"}) {
    for (runtime::Priority p : {runtime::Priority::kInteractive, runtime::Priority::kBatch}) {
      const runtime::metrics::HistogramSnapshot* h = snap.histogram(
          "ascend_request_latency_usec",
          {{"variant", v}, {"priority", runtime::priority_name(p)}});
      if (!h) continue;
      std::printf("  %-14s %-12s %10.2f %10.2f %10.2f %10.2f %8llu\n", v,
                  runtime::priority_name(p), h->quantile(0.50) / 1e3, h->quantile(0.95) / 1e3,
                  h->quantile(0.99) / 1e3, h->quantile(0.999) / 1e3,
                  static_cast<unsigned long long>(h->count));
      if (json) {
        const std::string base =
            std::string("latency_") + v + "_" + runtime::priority_name(p) + "_";
        json->add(base + "p50_ms", h->quantile(0.50) / 1e3);
        json->add(base + "p95_ms", h->quantile(0.95) / 1e3);
        json->add(base + "p99_ms", h->quantile(0.99) / 1e3);
        json->add(base + "p999_ms", h->quantile(0.999) / 1e3);
      }
    }
  }
  const runtime::EngineStats st = engine.stats();
  std::printf("  (engine-side ascend_request_latency_usec histograms, <=3.2%% bucket error;\n"
              "   %llu batches, avg fill %.1f, peak in-flight %d; interactive preempts batch\n"
              "   in queue order — expect the interactive rows well below batch)\n",
              static_cast<unsigned long long>(st.batches), st.avg_batch(), st.max_in_flight);
}

// Micro-kernel tier ladder (base / avx2 / avx512 / avx512bf16) on a ViT-ish
// MLP GEMM, then the row-band GemmOptions scaling curve at the auto tier.
// The f32 tiers are bit-identical to each other (asserted in test_gemm), so
// this table is pure throughput; bf16 is the opt-in accuracy trade.
void gemm_tier_table(bench::JsonWriter* json) {
  using nn::gemm::Kernel;
  const Kernel saved = nn::gemm::kernel();
  const int n = 768, k = 192;
  const int reps = bench::fast_mode() ? 8 : 48;
  std::vector<float> a(512 * static_cast<std::size_t>(k));
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  std::vector<float> c(512 * static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>((i * 37 % 113) - 56) / 64.0f;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>((i * 53 % 127) - 63) / 64.0f;

  auto gflops = [&](int m, const nn::gemm::GemmOptions& o) {
    const std::size_t cn = static_cast<std::size_t>(m) * n;
    std::memset(c.data(), 0, cn * sizeof(float));
    nn::gemm::gemm_nn(m, n, k, a.data(), k, b.data(), n, c.data(), n, o);  // warm
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      std::memset(c.data(), 0, cn * sizeof(float));
      nn::gemm::gemm_nn(m, n, k, a.data(), k, b.data(), n, c.data(), n, o);
    }
    const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return 2.0 * m * n * k * reps / s / 1e9;
  };

  std::printf("  %-12s %12s   (m=128, n=%d, k=%d, serial)\n", "tier", "GFLOP/s", n, k);
  struct TierRow {
    Kernel kernel;
    const char* name;
  };
  for (const TierRow row : {TierRow{Kernel::kBase, "base"}, TierRow{Kernel::kAvx2, "avx2"},
                            TierRow{Kernel::kAvx512, "avx512"},
                            TierRow{Kernel::kAvx512Bf16, "avx512bf16"}}) {
    if (!nn::gemm::kernel_supported(row.kernel)) {
      std::printf("  %-12s %12s\n", row.name, "n/a (cpu)");
      continue;
    }
    nn::gemm::set_kernel(row.kernel);
    const double g = gflops(128, {});
    std::printf("  %-12s %12.2f\n", row.name, g);
    if (json) json->add(std::string("gemm_") + row.name + "_gflops", g);
  }
  nn::gemm::set_kernel(saved);
  if (json) json->add("gemm_kernel", nn::gemm::kernel_name());

  std::printf("  row-band scaling, %s tier, m=512 (host cores: %u)\n", nn::gemm::kernel_name(),
              std::thread::hardware_concurrency());
  double band1 = 0.0;
  for (int threads : {1, 2, 4}) {
    runtime::ThreadPool band_pool(threads);
    nn::gemm::GemmOptions o;
    o.threads = threads;
    o.pool = &band_pool;
    const double g = gflops(512, o);
    if (threads == 1) band1 = g;
    std::printf("  %-12s %12.2f %9.2fx\n", ("t=" + std::to_string(threads)).c_str(), g,
                band1 > 0 ? g / band1 : 0.0);
    if (json) json->add("gemm_rowband_t" + std::to_string(threads) + "_gflops", g);
  }
}

// Steady-state heap allocations per forward, heap-backed vs arena-backed, on
// the two production serving variants. Counts C++ operator new only (the
// interposer TU linked into this binary); the arena column being 0.0 is the
// allocation-free contract — asserted hard in test_arena and the CI smoke,
// reported here so BENCH_runtime.json carries it.
void allocation_audit(VisionTransformer& model, const Dataset& data,
                      const ScInferenceConfig& sc_cfg, bench::JsonWriter* json) {
  if (!runtime::alloc_counting_active()) {
    std::printf("  (operator-new interposer not linked — section skipped)\n");
    return;
  }
  runtime::ThreadPool sc_pool(2);
  ScServableOptions sopts;
  sopts.pool = &sc_pool;
  std::vector<std::pair<std::string, std::shared_ptr<runtime::Servable>>> variants;
  variants.emplace_back("sc-lut", make_sc_servable(model, sc_cfg, sopts, "sc-lut"));
  variants.emplace_back("w2a2-packed", make_packed_ternary_servable(model, "w2a2-packed"));

  std::printf("  %-14s %18s %18s\n", "variant", "heap allocs/fwd", "arena allocs/fwd");
  runtime::Arena arena;
  const int iters = 5;
  for (auto& [name, servable] : variants) {
    (void)servable->infer(data.images);  // warm: frozen snapshots, LUTs, scratch
    const std::uint64_t h0 = runtime::alloc_count();
    for (int i = 0; i < iters; ++i) (void)servable->infer(data.images);
    const double heap_per = static_cast<double>(runtime::alloc_count() - h0) / iters;
    for (int i = 0; i < 3; ++i) {  // sizing pass + consolidation cycles
      runtime::ArenaScope scope(arena);
      (void)servable->infer(data.images);
      arena.reset();
    }
    const std::uint64_t a0 = runtime::alloc_count();
    for (int i = 0; i < iters; ++i) {
      runtime::ArenaScope scope(arena);
      (void)servable->infer(data.images);
      arena.reset();
    }
    const double arena_per = static_cast<double>(runtime::alloc_count() - a0) / iters;
    std::printf("  %-14s %18.1f %18.1f\n", name.c_str(), heap_per, arena_per);
    if (json) {
      std::string key = name;
      std::replace(key.begin(), key.end(), '-', '_');
      json->add("allocs_per_forward_heap_" + key, heap_per);
      json->add("allocs_per_forward_arena_" + key, arena_per);
    }
  }
}

// Closed-loop submit vs Loader-driven open loop on the SC serving path. The
// closed-loop driver is the per-request frontend: allocate a fresh image
// vector, element-copy the row, submit(), and drain the whole batch before
// decoding the next — the model idles during every decode. The Loader path
// decodes into a recycled ring on a worker thread while the engine runs the
// previous batch, and feeds the synchronous predict_batch path through one
// reused staging tensor. On a single-core host the win is the removed
// per-request machinery (allocs, copies, futures, batcher wakeups) rather
// than decode/compute overlap; both are reported as measured.
void ingest_comparison(VisionTransformer& model, const Dataset& data,
                       const ScInferenceConfig& sc_cfg, bench::JsonWriter* json) {
  runtime::EngineOptions opts;
  opts.threads = 2;
  opts.max_batch = 16;
  opts.max_delay = std::chrono::microseconds(500);
  opts.concurrent_forwards = 2;
  runtime::InferenceEngine engine(model, sc_cfg, opts);

  const int pixels = data.images.dim(1);
  const int batch = 16;
  const int batches = bench::fast_mode() ? 6 : 24;
  auto p50 = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };

  auto closed_batch = [&](int b0) {
    std::vector<std::future<runtime::Prediction>> futs;
    futs.reserve(batch);
    for (int i = 0; i < batch; ++i) {
      const int r = (b0 * batch + i) % data.size();
      std::vector<float> img(static_cast<std::size_t>(pixels));
      for (int p = 0; p < pixels; ++p) img[static_cast<std::size_t>(p)] = data.images.at(r, p);
      futs.push_back(engine.submit(std::move(img)));
    }
    for (auto& f : futs) (void)f.get();
  };
  for (int b = 0; b < 2; ++b) closed_batch(b);  // warm-up
  std::vector<double> closed_lat;
  closed_lat.reserve(static_cast<std::size_t>(batches));
  const auto c0 = std::chrono::steady_clock::now();
  for (int b = 0; b < batches; ++b) {
    const auto t0 = std::chrono::steady_clock::now();
    closed_batch(b);
    closed_lat.push_back(
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count());
  }
  const double closed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - c0).count();
  const double closed_ips = batches * batch / closed_s;

  runtime::LoaderOptions lopts;
  lopts.workers = 1;
  lopts.prefetch_batches = 3;
  lopts.batch_size = batch;
  lopts.loop = true;
  runtime::Loader loader(
      [&](int index, float* dst) {
        const int r = index % data.size();
        std::memcpy(dst, data.images.data() + static_cast<std::size_t>(r) * pixels,
                    sizeof(float) * static_cast<std::size_t>(pixels));
      },
      data.size(), pixels, lopts);
  nn::Tensor staging = nn::Tensor::uninitialized({batch, pixels});
  auto loader_batch = [&] {
    const runtime::Loader::Batch b = loader.next();
    std::memcpy(staging.data(), b.data,
                sizeof(float) * static_cast<std::size_t>(b.size) * pixels);
    (void)engine.predict_batch(staging);
    loader.recycle(b);
  };
  for (int b = 0; b < 2; ++b) loader_batch();  // warm-up (also fills the ring)
  std::vector<double> loader_lat;
  loader_lat.reserve(static_cast<std::size_t>(batches));
  const auto l0 = std::chrono::steady_clock::now();
  for (int b = 0; b < batches; ++b) {
    const auto t0 = std::chrono::steady_clock::now();
    loader_batch();
    loader_lat.push_back(
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count());
  }
  const double loader_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - l0).count();
  const double loader_ips = batches * batch / loader_s;

  std::printf("  %-24s %12s %12s\n", "driver", "images/s", "p50 ms/b");
  std::printf("  %-24s %12.2f %12.2f\n", "closed-loop submit", closed_ips, p50(closed_lat));
  std::printf("  %-24s %12.2f %12.2f\n", "prefetching loader", loader_ips, p50(loader_lat));
  std::printf("  %-24s %11.2fx\n", "loader speedup", loader_ips / closed_ips);
  if (json) {
    json->add("ingest_closed_loop_images_per_sec", closed_ips);
    json->add("ingest_loader_images_per_sec", loader_ips);
    json->add("ingest_loader_speedup", loader_ips / closed_ips);
    json->add("ingest_closed_loop_p50_ms", p50(closed_lat));
    json->add("ingest_loader_p50_ms", p50(loader_lat));
  }
}

// Single-row kernels for google-benchmark: the softmax nonlinear block served
// from the LUT cache vs per-call circuit emulation.
sc::SoftmaxIterConfig row_config() {
  sc::SoftmaxIterConfig cfg;
  cfg.m = 16;
  cfg.bx = 8;
  cfg.alpha_x = 1.0;
  cfg.by = 32;
  cfg.s1 = 4;
  cfg.s2 = 2;
  cfg.alpha_y = 3.0 / 32;
  return cfg;
}

void bm_softmax_row_emulated(benchmark::State& state) {
  const auto cfg = row_config();
  const auto rows = sc::sample_attention_logits(cfg.m, 1, 7);
  for (auto _ : state) benchmark::DoNotOptimize(sc::softmax_iterative_sc(rows[0], cfg));
}
BENCHMARK(bm_softmax_row_emulated);

void bm_softmax_row_cached(benchmark::State& state) {
  const auto cfg = row_config();
  const runtime::SoftmaxLut lut(cfg);
  const auto rows = sc::sample_attention_logits(cfg.m, 1, 7);
  for (auto _ : state) benchmark::DoNotOptimize(lut(rows[0]));
}
BENCHMARK(bm_softmax_row_cached);

// The FSM softmax baseline gets the same treatment (DSE sweeps re-run it per
// design point): bit-level emulation vs the tf_cache threshold tables.
sc::FsmSoftmaxConfig fsm_row_config() {
  sc::FsmSoftmaxConfig cfg;
  cfg.m = 16;
  cfg.bsl = 256;
  return cfg;
}

void bm_softmax_fsm_row_emulated(benchmark::State& state) {
  const auto cfg = fsm_row_config();
  const auto rows = sc::sample_attention_logits(cfg.m, 1, 7);
  for (auto _ : state) benchmark::DoNotOptimize(sc::softmax_fsm(rows[0], cfg));
}
BENCHMARK(bm_softmax_fsm_row_emulated);

void bm_softmax_fsm_row_cached(benchmark::State& state) {
  const auto cfg = fsm_row_config();
  const runtime::SoftmaxFsmLut lut(cfg);
  const auto rows = sc::sample_attention_logits(cfg.m, 1, 7);
  for (auto _ : state) benchmark::DoNotOptimize(lut(rows[0]));
}
BENCHMARK(bm_softmax_fsm_row_cached);

// Frozen quantized-weight snapshot on the Linear serving path: the serving
// engine quantizes an immutable weight matrix once per freeze instead of per
// call. `_requant` thaws before every call to measure the old behaviour.
nn::Linear quantized_linear(nn::Rng& rng) {
  nn::Linear lin(128, 128, rng);
  lin.set_weight_quant(nn::QuantSpec::ternary());
  lin.set_input_quant(nn::QuantSpec::ternary());
  return lin;
}

void bm_linear_infer_frozen(benchmark::State& state) {
  nn::Rng rng(5);
  nn::Linear lin = quantized_linear(rng);
  nn::Tensor x({static_cast<int>(state.range(0)), 128});
  rng.fill_normal(x, 0.0f, 1.0f);
  (void)lin.forward(x);  // latch the LSQ steps
  (void)lin.infer(x);    // freeze the weight snapshot
  for (auto _ : state) benchmark::DoNotOptimize(lin.infer(x).size());
}
BENCHMARK(bm_linear_infer_frozen)->Arg(1)->Arg(16);

void bm_linear_infer_requant(benchmark::State& state) {
  nn::Rng rng(5);
  nn::Linear lin = quantized_linear(rng);
  nn::Tensor x({static_cast<int>(state.range(0)), 128});
  rng.fill_normal(x, 0.0f, 1.0f);
  (void)lin.forward(x);
  for (auto _ : state) {
    lin.thaw();  // forces per-call weight re-quantization (pre-snapshot behaviour)
    benchmark::DoNotOptimize(lin.infer(x).size());
  }
}
BENCHMARK(bm_linear_infer_requant)->Arg(1)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json;
  bench::banner("runtime throughput — batched SC inference engine",
                "serving extension (no table in the paper)");

  VitConfig cfg = VitConfig::bench_topology(10);
  const int images = bench::fast_mode() ? 32 : 128;
  VisionTransformer model(cfg, 3);  // throughput does not depend on training
  model.apply_precision(PrecisionSpec::w2a2r16());
  const Dataset data = make_synthetic_vision(images, cfg.classes, 12);
  // Latch the LSQ quantizer steps once so every engine below serves the same
  // calibrated model (the const infer path never initialises them).
  (void)model.forward(data.images, /*training=*/false);
  const ScInferenceConfig sc_cfg = serving_sc_config();

  std::printf("\n%d images, %d tokens, dim %d, %d layers (SC softmax + gate-SI GELU active)\n",
              images, cfg.tokens(), cfg.dim, cfg.layers);

  const double uncached_1t = images_per_sec(model, data, sc_cfg, 1, /*cached=*/false);
  const double cached_1t = images_per_sec(model, data, sc_cfg, 1, /*cached=*/true);
  std::printf("\n-- transfer-function LUT cache (1 thread) --\n");
  std::printf("  %-28s %10.2f images/s\n", "per-activation emulation", uncached_1t);
  std::printf("  %-28s %10.2f images/s\n", "tf_cache LUTs", cached_1t);
  std::printf("  %-28s %10.2fx\n", "speedup", cached_1t / uncached_1t);
  json.add("lut_cache_off_images_per_sec", uncached_1t);
  json.add("lut_cache_on_images_per_sec", cached_1t);
  json.add("lut_cache_speedup", cached_1t / uncached_1t);

  std::printf("\n-- worker-pool scaling (LUT cache on) --\n");
  std::printf("  %8s %14s %10s\n", "threads", "images/s", "scaling");
  for (int threads : {1, 2, 4, 8}) {
    const double ips = threads == 1 ? cached_1t : images_per_sec(model, data, sc_cfg, threads, true);
    std::printf("  %8d %14.2f %9.2fx\n", threads, ips, ips / cached_1t);
    json.add("scaling_t" + std::to_string(threads) + "_images_per_sec", ips);
  }
  std::printf("  (scaling is bounded by the machine's core count: %u)\n",
              std::thread::hardware_concurrency());

  std::printf("\n-- concurrent batch forwards (submit path, LUT cache on) --\n");
  std::printf("  %8s %12s %12s %12s %12s\n", "threads", "cf=1 img/s", "cf=2 img/s",
              "cf=4 img/s", "cf=2 gain");
  for (int threads : {1, 2, 4}) {
    double ips[3];
    int col = 0;
    for (int cf : {1, 2, 4}) {
      ips[col] = images_per_sec_submit(model, data, sc_cfg, threads, cf);
      json.add("submit_t" + std::to_string(threads) + "_cf" + std::to_string(cf) +
                   "_images_per_sec",
               ips[col]);
      ++col;
    }
    std::printf("  %8d %12.2f %12.2f %12.2f %11.2fx\n", threads, ips[0], ips[1], ips[2],
                ips[1] / ips[0]);
  }
  std::printf("  (>= 2 in-flight forwards beat the serialized path on multi-core hosts;\n"
              "   bit-exactness of the concurrent infer path is asserted in test_concurrency)\n");

  std::printf("\n-- mixed-priority / multi-variant serving under saturation --\n");
  mixed_priority_table(model, data, sc_cfg, &json);

  std::printf("\n-- GEMM micro-kernel tiers & row-band scaling --\n");
  gemm_tier_table(&json);

  std::printf("\n-- steady-state allocations per forward (heap vs arena) --\n");
  allocation_audit(model, data, sc_cfg, &json);

  std::printf("\n-- ingest: closed-loop submit vs prefetching loader --\n");
  ingest_comparison(model, data, sc_cfg, &json);

  if (!json_path.empty()) json.write(json_path);
  bench::run_timing_kernels(argc, argv);
  return 0;
}
