// bench_table5_accuracy — reproduces Table V: accuracy of the two-stage
// SC-friendly training pipeline. CIFAR10/CIFAR100 are replaced by the
// synthetic 10-class / 20-class vision tasks (DESIGN.md section 1); what is
// reproduced is the *ordering and shape* of the rows:
//   FP LN-ViT (reference)  >>  direct W2-A2-R16 (collapses)
//   progressive quantization recovers most of the gap
//   swapping in the approximate softmax costs a little
//   approx-aware fine-tuning wins part of it back.

#include <cstdio>

#include "bench_util.h"
#include "vit/train.h"

using namespace ascend;
using namespace ascend::vit;

namespace {

void bm_vit_forward(benchmark::State& state) {
  const VitConfig cfg = VitConfig::bench_topology();
  VisionTransformer model(cfg, 1);
  const Dataset d = make_synthetic_vision(32, cfg.classes, 2);
  const Batch b = take_batch(d, {0, 1, 2, 3, 4, 5, 6, 7});
  for (auto _ : state) benchmark::DoNotOptimize(model.forward(b.images, false).size());
}
BENCHMARK(bm_vit_forward);

void run_task(const char* name, int classes, double paper_rows[5]) {
  const bool fast = ascend::bench::fast_mode();
  PipelineOptions opt;
  opt.config = VitConfig::bench_topology(classes);
  // Stage-2 swaps in the k=2 iterative softmax (coarse end of the paper's
  // k range) so the approximation cost and its fine-tuning recovery are
  // visible at this reduced scale.
  opt.config.approx_softmax_k = 2;
  opt.stage_epochs = fast ? 2 : 8;
  opt.finetune_epochs = fast ? 1 : 3;
  opt.finetune_lr = 5e-5f;  // paper: 5e-6 over 30 epochs; scaled for the short schedule
  opt.batch_size = 64;
  opt.seed = 7;
  opt.verbose = true;

  const int n_train = fast ? 320 : 1600;
  const int n_test = fast ? 160 : 480;
  const Dataset train = make_synthetic_vision(n_train, classes, 100 + classes);
  const Dataset test = make_synthetic_vision(n_test, classes, 200 + classes);

  std::printf("\n--- %s (%d classes, %d train / %d test) ---\n", name, classes, n_train, n_test);
  const PipelineResult res = run_ascend_pipeline(opt, train, test);

  std::printf("%-46s %8s %8s\n", "Model", "ours", "paper");
  std::printf("%-46s %7.2f%% %7.2f\n", "FP LN-ViT [24]", res.acc_fp_ln, paper_rows[0]);
  std::printf("%-46s %7.2f%% %8s\n", "FP BN-ViT (LN->BN swap, KD)", res.acc_fp_bn, "~same");
  std::printf("%-46s %7.2f%% %7.2f\n", "Baseline low-precision BN-ViT (direct W2-A2-R16)",
              res.acc_baseline_direct, paper_rows[1]);
  std::printf("%-46s %7.2f%% %7.2f\n", "BN-ViT + progressive quant", res.acc_progressive,
              paper_rows[2]);
  std::printf("%-46s %7.2f%% %7.2f\n", "BN-ViT + progressive quant + appr softmax",
              res.acc_approx, paper_rows[3]);
  std::printf("%-46s %7.2f%% %7.2f\n", "BN-ViT + progressive quant + appr-aware ft",
              res.acc_approx_ft, paper_rows[4]);

  std::printf("shape checks: progressive - direct = %+.2f (paper: +32.99 / +21.4); "
              "ft - appr = %+.2f (paper: +1.52 / +0.82)\n",
              res.acc_progressive - res.acc_baseline_direct, res.acc_approx_ft - res.acc_approx);
}

}  // namespace

int main(int argc, char** argv) {
  ascend::bench::banner(
      "Table V — two-stage training pipeline accuracy",
      "CIFAR10: 94.52 / 58.13 / 91.12 / 89.27 / 90.79 | CIFAR100: 73.80 / 45.76 / 67.16 / "
      "65.36 / 66.18 (substituted: synthetic-10 / synthetic-20 tasks)");

  double paper10[5] = {94.52, 58.13, 91.12, 89.27, 90.79};
  double paper20[5] = {73.80, 45.76, 67.16, 65.36, 66.18};
  run_task("synthetic-10 (CIFAR10 stand-in)", 10, paper10);
  run_task("synthetic-20 (CIFAR100 stand-in)", 20, paper20);

  ascend::bench::run_timing_kernels(argc, argv);
  return 0;
}
