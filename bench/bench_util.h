#pragma once
// bench_util.h — shared helpers for the paper-reproduction benches.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace ascend::bench {

/// ASCEND_FAST=1 shrinks workloads for smoke runs.
inline bool fast_mode() {
  const char* v = std::getenv("ASCEND_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Strip a `--json <path>` / `--json=<path>` flag out of argv and return the
/// path ("" when absent). Must run before benchmark::Initialize, which
/// rejects flags it does not know.
inline std::string parse_json_flag(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--json") == 0 && r + 1 < argc) {
      path = argv[++r];
    } else if (std::strncmp(argv[r], "--json=", 7) == 0) {
      path = argv[r] + 7;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  argv[argc] = nullptr;
  return path;
}

/// Flat machine-readable bench results: insertion-ordered {key: value}
/// pairs written as one JSON object, host metadata included. CI uploads the
/// file as an artifact so runs are diffable across commits.
class JsonWriter {
 public:
  JsonWriter() {
    add("host_threads", static_cast<std::int64_t>(std::thread::hardware_concurrency()));
    add("compiler", __VERSION__);
#ifdef NDEBUG
    add("build", "release");
#else
    add("build", "debug");
#endif
    add("fast_mode", static_cast<std::int64_t>(fast_mode() ? 1 : 0));
  }

  void add(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    entries_.emplace_back(key, buf);
  }
  void add(const std::string& key, std::int64_t v) {
    entries_.emplace_back(key, std::to_string(v));
  }
  void add(const std::string& key, const std::string& v) {
    std::string quoted(1, '"');
    quoted += escape(v);
    quoted += '"';
    entries_.emplace_back(key, std::move(quoted));
  }

  /// Write `{ "k": v, ... }`, one key per line. Returns false on I/O error.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fprintf(f, "{\n");
    for (std::size_t i = 0; i < entries_.size(); ++i)
      std::fprintf(f, "  \"%s\": %s%s\n", escape(entries_[i].first).c_str(),
                   entries_[i].second.c_str(), i + 1 < entries_.size() ? "," : "");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote bench results to %s (%zu metrics)\n", path.c_str(), entries_.size());
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Print the standard bench banner.
inline void banner(const char* what, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("ASCEND reproduction: %s\n", what);
  std::printf("Paper reference: %s\n", paper_ref);
  if (fast_mode()) std::printf("(ASCEND_FAST=1: reduced workload)\n");
  std::printf("================================================================\n");
}

/// Run the registered google-benchmark timing kernels after the table print.
inline void run_timing_kernels(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
}

}  // namespace ascend::bench
