#pragma once
// bench_util.h — shared helpers for the paper-reproduction benches.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ascend::bench {

/// ASCEND_FAST=1 shrinks workloads for smoke runs.
inline bool fast_mode() {
  const char* v = std::getenv("ASCEND_FAST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Print the standard bench banner.
inline void banner(const char* what, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("ASCEND reproduction: %s\n", what);
  std::printf("Paper reference: %s\n", paper_ref);
  if (fast_mode()) std::printf("(ASCEND_FAST=1: reduced workload)\n");
  std::printf("================================================================\n");
}

/// Run the registered google-benchmark timing kernels after the table print.
inline void run_timing_kernels(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
}

}  // namespace ascend::bench
