// bench_ablation — ablations of the design decisions DESIGN.md section 4
// calls out (not a paper table; supporting evidence for the implementation
// choices):
//   A. sub-sampler tap placement: centered (round-nearest) vs end-of-group
//      (floor) taps in the softmax block — same wiring cost, different MAE;
//   B. BSN adders as merge trees vs full sorters — area of the softmax block;
//   C. alignment-grid expansion factor E — MAE vs area trade;
//   D. iteration count k — the Algorithm-1 truncation error in float.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "hw/cost_model.h"
#include "hw/report.h"
#include "sc/bsn.h"
#include "sc/softmax_iter.h"

using namespace ascend;

namespace {

sc::SoftmaxIterConfig base_cfg() {
  sc::SoftmaxIterConfig cfg;
  cfg.m = 64;
  cfg.k = 3;
  cfg.bx = 8;
  cfg.by = 16;
  cfg.s1 = 32;
  cfg.s2 = 8;
  cfg.alpha_x = 1.0;
  cfg.alpha_y = 1.0 / 64;
  return cfg;
}

void bm_softmax_bits(benchmark::State& state) {
  sc::SoftmaxIterConfig cfg;
  cfg.m = 8;
  cfg.s1 = 4;
  cfg.s2 = 4;
  cfg.alpha_y = 1.0 / 8;
  const auto rows = sc::sample_attention_logits(cfg.m, 1, 3);
  for (auto _ : state)
    benchmark::DoNotOptimize(sc::softmax_iterative_sc_bits(rows[0], cfg).size());
}
BENCHMARK(bm_softmax_bits);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Ablations — tap placement, merge-tree BSN, alignment grid, k",
                "design-choice evidence (no direct paper table)");
  const int rows = bench::fast_mode() ? 8 : 40;

  // A. Tap placement.
  {
    sc::SoftmaxIterConfig cfg = base_cfg();
    cfg.centered_subsample = true;
    const double centered = sc::softmax_sc_mae(cfg, rows, 42);
    cfg.centered_subsample = false;
    const double floored = sc::softmax_sc_mae(cfg, rows, 42);
    std::printf("\nA. s1/s2 sub-sampler taps (same hardware):\n");
    std::printf("   centered (round-nearest) MAE: %.4f\n", centered);
    std::printf("   end-of-group (floor)     MAE: %.4f  (%+.1f%%)\n", floored,
                100.0 * (floored / centered - 1.0));
  }

  // B. Merge tree vs full sorter.
  {
    const sc::SoftmaxIterConfig cfg = base_cfg();
    const sc::SoftmaxIterLayout lay = sc::softmax_iter_layout(cfg);
    const double merge1 = hw::cost_bsn_merge(static_cast<std::size_t>(lay.lsum),
                                             static_cast<std::size_t>(lay.lz)).area_um2();
    const double sort1 = hw::cost_bsn(static_cast<std::size_t>(lay.lsum)).area_um2();
    const double block = hw::cost_softmax_iter(cfg).area_um2();
    std::printf("\nB. BSN-1 as merge tree: %.0f um2 vs full sorter %.0f um2 (-%.0f%%),\n"
                "   softmax block total %.0f um2\n",
                merge1, sort1, 100.0 * (1.0 - merge1 / sort1), block);
  }

  // C. Alignment expansion factor.
  std::printf("\nC. alignment grid expansion E (alpha_c = alpha_y / E):\n");
  std::printf("   E   MAE      block area (um2)\n");
  for (int e : {1, 2, 4, 8}) {
    sc::SoftmaxIterConfig cfg = base_cfg();
    cfg.align_expand = e;
    std::printf("   %d   %.4f   %s\n", e, sc::softmax_sc_mae(cfg, rows, 77),
                hw::sci(hw::cost_softmax_iter(cfg).area_um2()).c_str());
  }

  // D. Iteration count (pure Algorithm-1 truncation, no SC quantization).
  std::printf("\nD. Algorithm-1 truncation error vs k (float, m = 64):\n");
  const auto logits = sc::sample_attention_logits(64, rows, 5);
  for (int k : {1, 2, 3, 4, 8, 16, 64}) {
    double err = 0.0;
    for (const auto& row : logits) {
      const auto exact = sc::softmax_exact(row);
      const auto approx = sc::softmax_iterative_ref(row, k);
      for (std::size_t i = 0; i < row.size(); ++i) err += std::fabs(approx[i] - exact[i]);
    }
    std::printf("   k=%-3d mean|err| = %.5f\n", k, err / (logits.size() * 64));
  }

  bench::run_timing_kernels(argc, argv);
  return 0;
}
