// bench_serialize — checkpoint save/load and serving cold-start latency.
//
// Three questions: (1) what do save / eager-load / mmap-load of the
// versioned checkpoint container cost on a serving-sized ViT, (2) how long
// from a cold process to the first logit for each registered variant kind
// when the registry cold-starts it straight off the file
// (ModelRegistry::register_from_file), and (3) what does zero-copy mmap buy
// over eager heap copies on that path. Fidelity is asserted in
// test_serialize; this bench only reports the measured times that ROADMAP
// and docs/checkpoint.md quote.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "bench_util.h"
#include "core/ascend.h"

using namespace ascend;
using namespace ascend::vit;

namespace {

ScInferenceConfig serving_sc_config() {
  ScInferenceConfig cfg;
  cfg.softmax.bx = 8;
  cfg.softmax.alpha_x = 1.0;
  cfg.softmax.by = 32;
  cfg.softmax.k = 3;
  cfg.softmax.s1 = 4;
  cfg.softmax.s2 = 2;
  cfg.softmax.alpha_y = 3.0 / 32;
  cfg.use_sc_gelu = true;
  cfg.gelu_bsl = 16;
  cfg.gelu_range = 4.0;
  return cfg;
}

/// Mean wall-clock ms of `fn` over `reps` runs (no warm-up: cold-start is
/// exactly what this bench measures, and the page cache is warm either way
/// after the first save).
double mean_ms(int reps, const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) fn();
  const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return s * 1e3 / reps;
}

std::int64_t file_bytes(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<std::int64_t>(st.st_size) : -1;
}

// The integrity tax: every load checksums the whole payload, so load latency
// is bounded below by crc32 bandwidth. Reported as bytes/second.
void bm_crc32_payload(benchmark::State& state) {
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::uint8_t>(i * 131);
  for (auto _ : state)
    benchmark::DoNotOptimize(serialize::crc32(buf.data(), buf.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(bm_crc32_payload)->Arg(64 << 10)->Arg(1 << 20);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json;
  bench::banner("checkpoint save/load & cold-start latency",
                "serving extension (no table in the paper)");

  VitConfig cfg = VitConfig::bench_topology(10);
  const int images = bench::fast_mode() ? 16 : 64;
  const int reps = bench::fast_mode() ? 3 : 10;
  VisionTransformer model(cfg, 3);
  model.apply_precision(PrecisionSpec::w2a2r16());
  const Dataset data = make_synthetic_vision(images, cfg.classes, 12);
  (void)model.forward(data.images, /*training=*/false);  // latch LSQ calibration

  const std::string path =
      "/tmp/ascend_bench_ckpt_" + std::to_string(::getpid()) + ".ckpt";
  serialize::save_model(model, path);
  const std::int64_t bytes = file_bytes(path);
  std::printf("\n%d-layer dim-%d ViT, W2-A2-R16 with packed ternary planes: %lld bytes on disk\n",
              cfg.layers, cfg.dim, static_cast<long long>(bytes));
  json.add("ckpt_bytes", bytes);

  const double save_ms = mean_ms(reps, [&] { serialize::save_model(model, path); });
  const double eager_ms = mean_ms(reps, [&] { (void)serialize::load_model(path); });
  const double mmap_ms = mean_ms(reps, [&] { (void)serialize::load_model_mmap(path); });
  std::printf("\n-- container round-trip (mean of %d) --\n", reps);
  std::printf("  %-28s %10.2f ms\n", "save (write + checksum)", save_ms);
  std::printf("  %-28s %10.2f ms\n", "load, eager heap copies", eager_ms);
  std::printf("  %-28s %10.2f ms\n", "load, zero-copy mmap views", mmap_ms);
  json.add("save_ms", save_ms);
  json.add("load_eager_ms", eager_ms);
  json.add("load_mmap_ms", mmap_ms);

  // Cold start to first logit: registry cold-start from file + one forward
  // over a single image, i.e. everything a freshly exec'd server pays before
  // it can answer its first request on that variant (includes snapshot
  // freezes and, for sc-lut, transfer-function LUT builds).
  const ScInferenceConfig sc_cfg = serving_sc_config();
  runtime::ThreadPool sc_pool(2);
  ScServableOptions sc_opts;
  sc_opts.pool = &sc_pool;
  nn::Tensor one = nn::Tensor::uninitialized({1, data.images.dim(1)});
  for (int p = 0; p < data.images.dim(1); ++p) one.at(0, p) = data.images.at(0, p);

  struct KindRow {
    runtime::VariantKind kind;
    const char* name;
  };
  const KindRow kinds[] = {{runtime::VariantKind::kFp32, "fp32"},
                           {runtime::VariantKind::kPackedTernary, "w2a2-packed"},
                           {runtime::VariantKind::kScLut, "sc-lut"},
                           {runtime::VariantKind::kScEmulated, "sc-emulated"}};
  std::printf("\n-- cold start to first logit, register_from_file (mean of %d) --\n", reps);
  std::printf("  %-14s %12s %12s\n", "variant", "mmap ms", "eager ms");
  for (const KindRow& row : kinds) {
    double cold[2];
    for (int eager = 0; eager < 2; ++eager) {
      runtime::RegisterFromFileOptions ropts;
      ropts.use_mmap = eager == 0;
      ropts.sc_config = &sc_cfg;
      ropts.sc_options = &sc_opts;
      cold[eager] = mean_ms(reps, [&] {
        runtime::ModelRegistry registry;
        registry.register_from_file(row.name, path, row.kind, ropts);
        (void)registry.get(row.name)->infer(one);
      });
    }
    std::printf("  %-14s %12.2f %12.2f\n", row.name, cold[0], cold[1]);
    std::string key = row.name;
    std::replace(key.begin(), key.end(), '-', '_');
    json.add("cold_start_mmap_" + key + "_ms", cold[0]);
    json.add("cold_start_eager_" + key + "_ms", cold[1]);
  }
  std::printf("  (fidelity of every cold-started variant vs the in-memory servables is\n"
              "   asserted bit-exactly in test_serialize; this table is latency only)\n");

  ::unlink(path.c_str());
  if (!json_path.empty()) json.write(json_path);
  bench::run_timing_kernels(argc, argv);
  return 0;
}
