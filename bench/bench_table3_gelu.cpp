// bench_table3_gelu — reproduces Table III and Fig. 7: area / delay / ADP /
// MAE of GELU blocks. Baseline: Bernstein-polynomial ReSC units with 4/5/6
// terms at BSL 128/256/1024. Ours: gate-assisted SI at data BSL 2/4/8.
//
// MAE protocol (Section VI-A): test vectors over the GELU input region the
// paper plots (Fig. 2: x in [-3, 0.5]); circuit outputs are compared to the
// exact GELU of the encoded input value.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "hw/cost_model.h"
#include "hw/report.h"
#include "runtime/tf_cache.h"
#include "sc/bernstein.h"
#include "sc/gate_si.h"

using namespace ascend;

namespace {

constexpr double kLo = -3.0, kHi = 0.5;

double gate_si_mae(const sc::GateAssistedSI& blk, int samples, runtime::TfCache& cache) {
  // Served from the auto-keyed gate-SI LUT (bit-exact with blk.apply).
  const runtime::GateSiLut& lut = cache.gate_si(blk);
  double total = 0.0;
  for (int i = 0; i <= samples; ++i) {
    const double x = kLo + (kHi - kLo) * i / samples;
    const sc::ThermValue in = sc::ThermValue::encode(x, blk.lin(), blk.alpha_in());
    total += std::fabs(lut(x) - sc::gelu_exact(in.value()));
  }
  return total / (samples + 1);
}

// Bernstein MAE, paper protocol: fresh SNG seeds per (sample, rep) — an
// ensemble average over SNG instances. Stays on the emulator: a per-seed
// step-function table would be built once and used once, which saves nothing.
double bernstein_mae(const sc::BernsteinGelu& g, int bsl, int samples, int reps) {
  double total = 0.0;
  for (int i = 0; i <= samples; ++i) {
    const double x = kLo + (kHi - kLo) * i / samples;
    for (int r = 0; r < reps; ++r) {
      const auto seed = static_cast<std::uint64_t>(i) * 1009 + static_cast<std::uint64_t>(r);
      total += std::fabs(g.eval_stochastic(x, static_cast<std::size_t>(bsl), seed) -
                         sc::gelu_exact(x));
    }
  }
  return total / ((samples + 1) * reps);
}

// Fixed-instance variant: ONE deployed SNG seed, tabulated once through the
// LUT cache and replayed over the whole input grid — the serving-shaped
// workload the cache exists for. A protocol variant, not the ensemble MAE of
// Table III; flagged as such in the output.
double bernstein_mae_fixed_instance(const sc::BernsteinGelu& g, int bsl, int samples,
                                    std::uint64_t seed, runtime::TfCache& cache) {
  const runtime::BernsteinGeluLut& lut = cache.bernstein(g, static_cast<std::size_t>(bsl), seed);
  double total = 0.0;
  for (int i = 0; i <= samples; ++i) {
    const double x = kLo + (kHi - kLo) * i / samples;
    total += std::fabs(lut(x) - sc::gelu_exact(x));
  }
  return total / (samples + 1);
}

void bm_gate_si_apply(benchmark::State& state) {
  const sc::GateAssistedSI blk = sc::make_gelu_block(8);
  const sc::ThermValue in = sc::ThermValue::encode(-0.7, blk.lin(), blk.alpha_in());
  for (auto _ : state) benchmark::DoNotOptimize(blk.apply(in).ones);
}
BENCHMARK(bm_gate_si_apply);

void bm_bernstein_eval(benchmark::State& state) {
  const sc::BernsteinGelu g(4);
  std::uint64_t seed = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(g.eval_stochastic(-0.7, static_cast<std::size_t>(state.range(0)), ++seed));
}
BENCHMARK(bm_bernstein_eval)->Arg(128)->Arg(1024);

// Fixed-instance lookup through the Bernstein step-function LUT (bit-exact
// with eval_stochastic at the table's seed).
void bm_bernstein_lut(benchmark::State& state) {
  const sc::BernsteinGelu g(4);
  const runtime::BernsteinGeluLut lut(g, static_cast<std::size_t>(state.range(0)), 7);
  double x = kLo;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut(x));
    x += 0.001;
    if (x > kHi) x = kLo;
  }
}
BENCHMARK(bm_bernstein_lut)->Arg(128)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Table III + Fig. 7 — GELU blocks",
                "Bernstein 4-term/1024b: 58.2um2, 81.92ns, ADP 4769, MAE 0.0548 | "
                "Ours 8b: 2581.7um2, 0.55ns, ADP 1420, MAE 0.0155");

  const bool fast = bench::fast_mode();
  const int samples = fast ? 120 : 700;
  const int reps = fast ? 2 : 8;

  std::vector<hw::BlockMetrics> rows;
  runtime::TfCache cache;

  // Baseline: Bernstein polynomial at the paper's headline BSL (1024).
  for (int terms : {4, 5, 6}) {
    const sc::BernsteinGelu g(terms);
    const hw::GateInventory inv = hw::cost_bernstein(terms, 1024);
    rows.push_back({"Bernstein [18]", std::to_string(terms) + "-term 1024b", inv.area_um2(),
                    inv.delay_ns(), bernstein_mae(g, 1024, samples, reps)});
  }
  // Ours: gate-assisted SI, served from the auto-keyed LUT.
  for (int b : {2, 4, 8}) {
    const sc::GateAssistedSI blk = sc::make_gelu_block(b);
    const hw::GateInventory inv = hw::cost_gate_si(blk.lin(), blk.lout(), blk.total_intervals());
    rows.push_back({"Ours (gate-SI)", std::to_string(b) + "b BSL", inv.area_um2(), inv.delay_ns(),
                    gate_si_mae(blk, samples, cache)});
  }
  std::printf("%s\n", hw::format_metrics_table("Table III — GELU block comparison", rows).c_str());

  // Headline ratios.
  const double adp_base = rows[0].adp();
  const double adp_ours = rows[5].adp();
  std::printf("ADP reduction, 8b gate-SI vs 4-term/1024b Bernstein: %.2fx (paper: 3.36x-5.29x)\n",
              adp_base / adp_ours);
  std::printf("MAE reduction: %.1f%% (paper: 56.3%% vs 6-term)\n",
              100.0 * (1.0 - rows[5].mae / rows[2].mae));
  std::printf("2b gate-SI ADP vs 8b: %.2fx lower (paper: 4.15x, 1420 -> 342)\n",
              rows[5].adp() / rows[3].adp());

  // Fig. 7: the full BSL sweep.
  std::vector<hw::BlockMetrics> fig7;
  for (int terms : {4, 5, 6}) {
    const sc::BernsteinGelu g(terms);
    for (int bsl : {128, 256, 1024}) {
      const hw::GateInventory inv = hw::cost_bernstein(terms, bsl);
      fig7.push_back({"Bernstein", std::to_string(terms) + "-term " + std::to_string(bsl) + "b",
                      inv.area_um2(), inv.delay_ns(), bernstein_mae(g, bsl, samples / 2, reps)});
    }
  }
  for (int b : {2, 4, 8}) {
    const sc::GateAssistedSI blk = sc::make_gelu_block(b);
    const hw::GateInventory inv = hw::cost_gate_si(blk.lin(), blk.lout(), blk.total_intervals());
    fig7.push_back({"Gate-SI (ours)", std::to_string(b) + "b", inv.area_um2(), inv.delay_ns(),
                    gate_si_mae(blk, samples, cache)});
  }
  std::printf("%s\n", hw::format_metrics_table("Fig. 7 — ADP/MAE sweep", fig7).c_str());

  // Bernstein fixed-instance MAE (one deployed SNG seed, LUT-cached).
  // Protocol variant: NOT the ensemble average of Table III above.
  std::printf("Bernstein fixed-instance MAE [single SNG seed, LUT-cached — protocol variant,\n"
              "not comparable to the ensemble MAE above]:\n");
  for (int terms : {4, 5, 6}) {
    const sc::BernsteinGelu g(terms);
    std::printf("  %d-term:", terms);
    for (int bsl : {128, 256, 1024})
      std::printf("  %db %.4f", bsl, bernstein_mae_fixed_instance(g, bsl, samples, 7, cache));
    std::printf("\n");
  }

  bench::run_timing_kernels(argc, argv);
  return 0;
}
