// bench_serve_frontdoor — open-loop saturation of the network front door.
//
// Drives a live serve::Server (epoll loop + ShardSet of engines serving a
// small fp32 ViT) over loopback from hundreds of multiplexed client
// connections, sweeping offered load from half of measured capacity to 3x
// past it. The claim under test: admission control converts overload into
// typed kRetryAfter shedding — goodput holds near capacity and the latency
// of ACCEPTED requests stays bounded, instead of the latency collapse an
// unbounded queue would produce. A second scenario runs a canary-validated
// rolling publish across the shards mid-traffic and asserts the accounting
// invariant: issued == ok + rejected + typed, zero requests lost.
//
//   --json <path>   machine-readable results (CI artifact / bench_compare)
//   ASCEND_FAST=1   smoke sizing

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/shard_set.h"
#include "vit/model.h"
#include "vit/servable.h"

using namespace ascend;
using Clock = std::chrono::steady_clock;

namespace {

struct SweepResult {
  double offered_rps = 0;
  double goodput_rps = 0;
  double reject_pct = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  std::uint64_t issued = 0, ok = 0, rejected = 0, typed = 0;
};

/// One worker: owns `conns` multiplexed connections, paces sends open-loop
/// at `rate_rps` (the schedule never waits for responses), reaps responses
/// non-blocking between sends, and records ok-latencies.
struct Worker {
  std::vector<serve::Client> clients;
  std::unordered_map<std::uint64_t, Clock::time_point> sent_at;
  std::vector<double> ok_latency_ms;
  std::uint64_t issued = 0, ok = 0, rejected = 0, typed = 0;

  void reap(std::size_t conn) {
    bool eof = false;
    while (auto resp = clients[conn].poll_response(&eof)) {
      const auto it = sent_at.find(resp->request_id);
      if (resp->status == serve::Status::kOk) {
        ++ok;
        if (it != sent_at.end())
          ok_latency_ms.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - it->second).count());
      } else if (resp->status == serve::Status::kRetryAfter) {
        ++rejected;
      } else {
        ++typed;
      }
      if (it != sent_at.end()) sent_at.erase(it);
    }
  }

  void run(std::uint64_t id_base, double rate_rps, std::chrono::milliseconds duration,
           const std::vector<float>& payload) {
    using namespace std::chrono;
    const auto gap = nanoseconds(static_cast<std::uint64_t>(1e9 / rate_rps));
    const auto start = Clock::now();
    const auto end = start + duration;
    auto next_send = start;
    std::uint64_t id = id_base;
    std::size_t conn = 0;
    while (Clock::now() < end) {
      // Open loop: send every request whose schedule slot has passed, round-
      // robin across this worker's connections. Falling behind bursts to
      // catch up — offered load is independent of server behaviour — but the
      // burst is capped so the worker always comes back to reap (a sender
      // that never drains responses would deadlock both socket buffers).
      int burst = 0;
      while (next_send <= Clock::now() && burst < 256 && Clock::now() < end) {
        serve::RequestFrame f;
        f.request_id = id;
        f.payload = payload;
        sent_at.emplace(id, Clock::now());
        clients[conn].send(f);
        ++issued;
        ++id;
        conn = (conn + 1) % clients.size();
        next_send += gap;
        ++burst;
      }
      for (std::size_t c = 0; c < clients.size(); ++c) reap(c);
      if (burst < 256) std::this_thread::sleep_for(microseconds(200));
    }
    // Tail: every issued request must resolve (the queues are bounded, so
    // this converges fast). Bounded wait keeps a wedged server diagnosable.
    const auto tail_deadline = Clock::now() + seconds(5);
    while (!sent_at.empty() && Clock::now() < tail_deadline) {
      for (std::size_t c = 0; c < clients.size(); ++c) reap(c);
      std::this_thread::sleep_for(milliseconds(1));
    }
  }
};

double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

SweepResult run_open_loop(serve::Server& server, double offered_rps, int threads,
                          int conns_per_thread, std::chrono::milliseconds duration,
                          const std::vector<float>& payload) {
  std::vector<Worker> workers(static_cast<std::size_t>(threads));
  for (auto& w : workers)
    for (int c = 0; c < conns_per_thread; ++c) w.clients.emplace_back("127.0.0.1", server.port());
  std::vector<std::thread> pool;
  pool.reserve(workers.size());
  for (std::size_t t = 0; t < workers.size(); ++t)
    pool.emplace_back([&, t] {
      workers[t].run(t * 10'000'000ull, offered_rps / threads, duration, payload);
    });
  for (auto& t : pool) t.join();

  SweepResult r;
  r.offered_rps = offered_rps;
  std::vector<double> lat;
  for (Worker& w : workers) {
    r.issued += w.issued;
    r.ok += w.ok;
    r.rejected += w.rejected;
    r.typed += w.typed + w.sent_at.size();  // unresolved tail counts against us
    lat.insert(lat.end(), w.ok_latency_ms.begin(), w.ok_latency_ms.end());
  }
  const double secs = std::chrono::duration<double>(duration).count();
  r.goodput_rps = static_cast<double>(r.ok) / secs;
  r.reject_pct = r.issued ? 100.0 * static_cast<double>(r.rejected) / static_cast<double>(r.issued) : 0;
  r.p50_ms = percentile(lat, 0.50);
  r.p95_ms = percentile(lat, 0.95);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json;
  bench::banner("network front door — open-loop saturation and load shedding",
                "serving extension (no table in the paper)");

  // Small fp32 ViT: fast enough that the socket/router path, not the GEMM,
  // is what saturates — this bench measures the front door.
  vit::VitConfig cfg;
  cfg.image_size = 16;
  cfg.patch_size = 8;
  cfg.dim = 32;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.classes = 10;
  vit::VisionTransformer model(cfg, 7);
  const std::vector<float> payload(
      static_cast<std::size_t>(cfg.channels * cfg.image_size * cfg.image_size), 0.5f);

  serve::ShardSetOptions sopts;
  sopts.shards = 2;
  sopts.engine.max_batch = 16;
  sopts.engine.max_delay = std::chrono::microseconds{500};
  sopts.engine.concurrent_forwards = 2;
  sopts.engine.threads = 2;
  sopts.engine.max_pending = 128;
  sopts.engine.default_variant = "fp32";
  serve::ShardSet shards(
      [&](int, runtime::ModelRegistry& reg) { reg.publish(vit::make_fp32_servable(model)); },
      sopts);
  serve::Server server(shards, {.completion_threads = 4});

  const bool fast = bench::fast_mode();
  const int threads = fast ? 2 : 4;
  const int conns_per_thread = fast ? 16 : 64;  // 256 live connections full-size
  const auto duration = std::chrono::milliseconds(fast ? 400 : 1500);
  std::printf("\n%d shards, %d connections, payload %zu floats\n", sopts.shards,
              threads * conns_per_thread, payload.size());

  // Capacity probe: escalate the offered rate until goodput stops tracking
  // it (the server saturated) or the senders themselves cap out — the last
  // goodput measured is the serving capacity.
  double capacity = 100.0;
  {
    const auto probe_dur = std::chrono::milliseconds(fast ? 250 : 600);
    double requested = fast ? 4000 : 8000;
    for (int step = 0; step < 8; ++step) {
      const SweepResult probe =
          run_open_loop(server, requested, threads, conns_per_thread, probe_dur, payload);
      const double actual_offered =
          static_cast<double>(probe.issued) / std::chrono::duration<double>(probe_dur).count();
      capacity = std::max(capacity, probe.goodput_rps);
      std::printf("capacity probe: offered %.0f (sent %.0f) -> goodput %.0f req/s\n", requested,
                  actual_offered, probe.goodput_rps);
      const bool server_saturated = probe.goodput_rps < 0.85 * actual_offered;
      const bool sender_capped = actual_offered < 0.7 * requested;
      if (server_saturated || sender_capped) break;
      requested *= 2;
    }
  }
  std::printf("measured capacity: %.0f req/s\n", capacity);
  json.add("frontdoor_capacity_rps", capacity);

  // The shedding curve: goodput and accepted-request latency vs offered load.
  std::printf("\n-- goodput vs offered load (open loop) --\n");
  std::printf("  %8s %12s %12s %10s %10s %10s\n", "offered", "offered r/s", "goodput r/s",
              "reject %", "p50 ms", "p95 ms");
  const std::pair<const char*, double> points[] = {
      {"x05", 0.5}, {"x09", 0.9}, {"x15", 1.5}, {"x30", 3.0}};
  SweepResult near_cap, overload;
  for (const auto& [suffix, mult] : points) {
    const SweepResult r =
        run_open_loop(server, capacity * mult, threads, conns_per_thread, duration, payload);
    std::printf("  %7.1fx %12.0f %12.0f %9.1f%% %10.2f %10.2f\n", mult, r.offered_rps,
                r.goodput_rps, r.reject_pct, r.p50_ms, r.p95_ms);
    json.add(std::string("frontdoor_offered_") + suffix + "_rps", r.offered_rps);
    json.add(std::string("frontdoor_goodput_") + suffix + "_rps", r.goodput_rps);
    json.add(std::string("frontdoor_reject_pct_") + suffix, r.reject_pct);
    json.add(std::string("frontdoor_p50_ms_") + suffix, r.p50_ms);
    json.add(std::string("frontdoor_p95_ms_") + suffix, r.p95_ms);
    if (std::string(suffix) == "x09") near_cap = r;
    if (std::string(suffix) == "x30") overload = r;
  }
  // Load shedding, quantified: goodput at 3x overload retained vs near
  // capacity, and accepted-request p50 stays in the same regime instead of
  // queueing collapse.
  const double retention =
      near_cap.goodput_rps > 0 ? overload.goodput_rps / near_cap.goodput_rps : 0;
  const double p50_ratio = near_cap.p50_ms > 0 ? overload.p50_ms / near_cap.p50_ms : 0;
  std::printf("\n  goodput retention at 3.0x overload: %.2f (vs 0.9x)\n", retention);
  std::printf("  accepted-request p50 ratio at 3.0x: %.2f (bounded => shedding works)\n",
              p50_ratio);
  json.add("frontdoor_shed_goodput_retention", retention);
  json.add("frontdoor_overload_p50_ratio", p50_ratio);

  // Rolling publish under live traffic: drain -> swap -> readmit each shard
  // while the open loop keeps offering ~0.9x capacity. Zero lost requests.
  std::printf("\n-- rolling canary-validated publish under live traffic --\n");
  std::atomic<bool> publish_ok{false};
  SweepResult rolling;
  {
    nn::Tensor golden({2, cfg.channels * cfg.image_size * cfg.image_size});
    for (int r = 0; r < golden.dim(0); ++r)
      for (int c = 0; c < golden.dim(1); ++c) golden.at(r, c) = 0.5f;
    runtime::CanaryOptions canary;
    canary.golden_input = golden;
    canary.max_abs_logit_diff = 1e-6;
    std::thread publisher([&] {
      std::this_thread::sleep_for(duration / 3);
      const serve::PublishAllResult r = shards.rolling_publish(
          [&](int) { return vit::make_fp32_servable(model); }, &canary);
      publish_ok.store(r.published);
    });
    rolling = run_open_loop(server, capacity * 0.9, threads, conns_per_thread, duration, payload);
    publisher.join();
  }
  const std::uint64_t lost = rolling.issued - rolling.ok - rolling.rejected - rolling.typed;
  std::printf("  issued %llu  ok %llu  rejected %llu  typed %llu  lost %llu  publish %s\n",
              static_cast<unsigned long long>(rolling.issued),
              static_cast<unsigned long long>(rolling.ok),
              static_cast<unsigned long long>(rolling.rejected),
              static_cast<unsigned long long>(rolling.typed),
              static_cast<unsigned long long>(lost), publish_ok.load() ? "committed" : "FAILED");
  json.add("frontdoor_rolling_issued", static_cast<std::int64_t>(rolling.issued));
  json.add("frontdoor_rolling_ok", static_cast<std::int64_t>(rolling.ok));
  json.add("frontdoor_rolling_rejected", static_cast<std::int64_t>(rolling.rejected));
  json.add("frontdoor_rolling_typed", static_cast<std::int64_t>(rolling.typed));
  json.add("frontdoor_rolling_lost", static_cast<std::int64_t>(lost));
  json.add("frontdoor_rolling_publish_committed",
           static_cast<std::int64_t>(publish_ok.load() ? 1 : 0));

  // Clean drain closes the run.
  {
    serve::Client finisher("127.0.0.1", server.port());
    finisher.drain_server();
  }
  server.wait_drained();
  const serve::ServerStats stats = server.stats();
  std::printf("\n  drained clean: %llu frames in, %llu responses out, %llu protocol errors\n",
              static_cast<unsigned long long>(stats.frames_in),
              static_cast<unsigned long long>(stats.responses_out),
              static_cast<unsigned long long>(stats.protocol_errors));
  json.add("frontdoor_drain_clean",
           static_cast<std::int64_t>(stats.frames_in == stats.responses_out ? 1 : 0));

  if (!json_path.empty() && !json.write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return lost == 0 && publish_ok.load() ? 0 : 1;
}
