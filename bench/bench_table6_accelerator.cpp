// bench_table6_accelerator — reproduces Table VI: accelerator-level area and
// accuracy for softmax block configurations [By, s1, s2, k] along the Pareto
// front. Area uses the paper topology (64 tokens, dim 256, k parallel
// softmax blocks); accuracy evaluates the trained SC-friendly ViT with the
// bit-true SC softmax swapped in per configuration (synthetic task, see
// DESIGN.md section 1).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/accelerator.h"
#include "hw/report.h"
#include "vit/sc_inference.h"
#include "vit/train.h"

using namespace ascend;
using namespace ascend::vit;

namespace {

void bm_accelerator_area(benchmark::State& state) {
  core::AcceleratorConfig cfg;
  for (auto _ : state) benchmark::DoNotOptimize(core::accelerator_area(cfg).total_area);
}
BENCHMARK(bm_accelerator_area);

}  // namespace

int main(int argc, char** argv) {
  ascend::bench::banner(
      "Table VI — accelerator area & accuracy per softmax configuration",
      "[4,128,2,2]: softmax 3.15e4, accel 4.24e6, 89.72/63.51 | [8,32,8,3]: 8.82e4, 4.47e6, "
      "90.79/66.18 | [16,128,16,4]: 4.65e5, 6.04e6, 91.07/66.63 | [32,128,16,4]: 1.16e6, "
      "8.84e6, 91.25/66.78");

  const bool fast = ascend::bench::fast_mode();

  // Train the SC-friendly low-precision ViT once (reduced pipeline).
  PipelineOptions opt;
  opt.config = VitConfig::bench_topology(10);
  opt.stage_epochs = fast ? 2 : 6;
  opt.finetune_epochs = fast ? 1 : 2;
  opt.finetune_lr = 5e-5f;
  opt.seed = 7;
  opt.verbose = false;
  const Dataset train = make_synthetic_vision(fast ? 320 : 1280, 10, 110);
  const Dataset test = make_synthetic_vision(fast ? 160 : 400, 10, 210);
  std::printf("training the SC-friendly W2-A2-R16 ViT (reduced pipeline)...\n");
  const PipelineResult pipe = run_ascend_pipeline(opt, train, test);
  VisionTransformer& model = *pipe.sc_friendly;
  std::printf("float-softmax accuracy of the SC-friendly model: %.2f%%\n", pipe.acc_approx_ft);

  struct Row {
    int by, s1, s2, k;
    double paper_softmax, paper_accel, paper_acc10;
  };
  const Row rows[] = {
      {4, 128, 2, 2, 3.15e4, 4.24e6, 89.72},
      {8, 32, 8, 3, 8.82e4, 4.47e6, 90.79},
      {16, 128, 16, 4, 4.65e5, 6.04e6, 91.07},
      {32, 128, 16, 4, 1.16e6, 8.84e6, 91.25},
  };

  std::printf("\n%-16s %-14s %-14s %-12s %-10s %-22s\n", "[By,s1,s2,k]", "softmax(um2)",
              "accel(um2)", "softmax(%)", "acc(%)", "paper(sm/accel/acc)");
  for (const Row& r : rows) {
    core::AcceleratorConfig acfg;  // paper topology
    acfg.softmax.bx = 4;
    acfg.softmax.by = r.by;
    acfg.softmax.s1 = r.s1;
    acfg.softmax.s2 = r.s2;
    acfg.softmax.k = r.k;
    acfg.softmax.alpha_y = 1.0 / 64;
    const core::AcceleratorReport rep = core::accelerator_area(acfg);

    // Accuracy: run the trained model with the SC softmax at the paper
    // config's By and k. The paper's s1/s2 values are tuned for m = 64
    // attention rows; at this bench's reduced m = 16 they would dominate the
    // error and mask the precision knob, so the accuracy column uses a mild
    // fixed sub-sampling and isolates [By, k] (see EXPERIMENTS.md).
    ScInferenceConfig sc_cfg;
    sc_cfg.softmax.bx = 8;
    sc_cfg.softmax.alpha_x = 1.0;
    sc_cfg.softmax.by = r.by;
    sc_cfg.softmax.k = r.k;
    // By refines the y grid, with the step capped so y0 = 1/m stays
    // representable: coarse configs saturate the attention peaks (accuracy
    // cost), fine configs track them — the paper's Table VI accuracy knob.
    sc_cfg.softmax.alpha_y =
        std::min(1.5 / r.by, 2.0 / opt.config.tokens());
    sc_cfg.softmax.s1 = 4;
    sc_cfg.softmax.s2 = 2;
    double acc = -1.0;
    try {
      acc = evaluate_sc(model, test, sc_cfg);
    } catch (const std::exception& e) {
      std::printf("  (config infeasible at m=%d: %s)\n", opt.config.tokens(), e.what());
    }
    std::printf("[%2d,%3d,%2d,%d]   %-14s %-14s %-12.2f %-10.2f %s/%s/%.2f\n", r.by, r.s1, r.s2,
                r.k, hw::sci(rep.softmax_total_area).c_str(), hw::sci(rep.total_area).c_str(),
                100.0 * rep.softmax_fraction(), acc, hw::sci(r.paper_softmax).c_str(),
                hw::sci(r.paper_accel).c_str(), r.paper_acc10);
  }
  std::printf("\nshape checks: softmax area grows >30x from first to last config; the low-end\n"
              "config keeps softmax a small fraction of total area; accuracy rises with By/k.\n");

  ascend::bench::run_timing_kernels(argc, argv);
  return 0;
}
