// bench_fig8_dse — reproduces Fig. 8: design-space exploration of the
// iterative approximate softmax block for Bx = 2 and Bx = 4 (m = 64).
// Sweeps the Table II parameters (2916 nominal candidates per Bx), costs
// every feasible design, and prints the ADP/MAE Pareto front.

#include <cstdio>

#include "bench_util.h"
#include "core/dse.h"
#include "hw/report.h"

using namespace ascend;

namespace {

void bm_dse_point(benchmark::State& state) {
  sc::SoftmaxIterConfig cfg;  // defaults
  for (auto _ : state) benchmark::DoNotOptimize(sc::softmax_sc_mae(cfg, 1, 3));
}
BENCHMARK(bm_dse_point);

void report(int bx, const core::DseResult& res) {
  std::printf("\nBx = %d: %d nominal candidates, %d infeasible, %zu evaluated, %zu Pareto optima\n",
              bx, res.nominal_candidates, res.infeasible, res.points.size(), res.pareto.size());
  double adp_lo = 1e300, adp_hi = 0, mae_lo = 1e300, mae_hi = 0;
  for (std::size_t idx : res.pareto) {
    const core::DsePoint& p = res.points[idx];
    adp_lo = std::min(adp_lo, p.adp());
    adp_hi = std::max(adp_hi, p.adp());
    mae_lo = std::min(mae_lo, p.mae);
    mae_hi = std::max(mae_hi, p.mae);
  }
  std::printf("Pareto ADP range: %s .. %s um2*ns; MAE range: %.4f .. %.4f\n",
              hw::sci(adp_lo).c_str(), hw::sci(adp_hi).c_str(), mae_lo, mae_hi);
  std::printf("# ADP(um2*ns), MAE, [By, s1, s2, k, ax, ay, E]\n");
  for (std::size_t idx : res.pareto) {
    const core::DsePoint& p = res.points[idx];
    std::printf("%-12s %.4f  [%d, %d, %d, %d, %.3f, %.5f, %d]\n", hw::sci(p.adp()).c_str(), p.mae,
                p.cfg.by, p.cfg.s1, p.cfg.s2, p.cfg.k, p.cfg.alpha_x, p.cfg.alpha_y,
                p.cfg.align_expand);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Fig. 8 — softmax design-space exploration",
                "Bx=2: 12 Pareto optima, ADP 2.45e5..1.89e7, MAE 0.0098..0.0714 | "
                "Bx=4: 21 Pareto optima");

  const bool fast = bench::fast_mode();
  const int mae_rows = fast ? 3 : 16;
  const int m = fast ? 16 : 64;

  report(2, core::sweep_softmax_design_space(2, m, mae_rows, 99));
  report(4, core::sweep_softmax_design_space(4, m, mae_rows, 99));

  bench::run_timing_kernels(argc, argv);
  return 0;
}
