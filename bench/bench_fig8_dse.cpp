// bench_fig8_dse — reproduces Fig. 8: design-space exploration of the
// iterative approximate softmax block for Bx = 2 and Bx = 4 (m = 64).
// Sweeps the Table II parameters (2916 nominal candidates per Bx), costs
// every feasible design, and prints the ADP/MAE Pareto front.
//
// The sweep runs on a runtime::ThreadPool with each design's MAE rows served
// from the transfer-function LUT cache (core::DseOptions defaults). Caching
// is bit-exact with the circuit emulator, so the numbers below are identical
// to an uncached sweep at the same seed; the Bx = 2 sweep is re-run with the
// cache off to report the wall-clock speedup and verify the identity.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/dse.h"
#include "hw/report.h"
#include "runtime/tf_cache.h"

using namespace ascend;

namespace {

void bm_dse_point(benchmark::State& state) {
  sc::SoftmaxIterConfig cfg;  // defaults
  for (auto _ : state) benchmark::DoNotOptimize(sc::softmax_sc_mae(cfg, 1, 3));
}
BENCHMARK(bm_dse_point);

void bm_dse_point_cached(benchmark::State& state) {
  sc::SoftmaxIterConfig cfg;  // defaults
  runtime::TfCache cache;
  (void)cache.softmax(cfg);  // table built once, as in a warm sweep
  for (auto _ : state)
    benchmark::DoNotOptimize(runtime::softmax_sc_mae_cached(cfg, 1, 3, cache));
}
BENCHMARK(bm_dse_point_cached);

void report(int bx, const core::DseResult& res, double seconds) {
  std::printf("\nBx = %d: %d nominal candidates, %d infeasible, %zu evaluated, %zu Pareto optima "
              "(%.2f s)\n",
              bx, res.nominal_candidates, res.infeasible, res.points.size(), res.pareto.size(),
              seconds);
  double adp_lo = 1e300, adp_hi = 0, mae_lo = 1e300, mae_hi = 0;
  for (std::size_t idx : res.pareto) {
    const core::DsePoint& p = res.points[idx];
    adp_lo = std::min(adp_lo, p.adp());
    adp_hi = std::max(adp_hi, p.adp());
    mae_lo = std::min(mae_lo, p.mae);
    mae_hi = std::max(mae_hi, p.mae);
  }
  std::printf("Pareto ADP range: %s .. %s um2*ns; MAE range: %.4f .. %.4f\n",
              hw::sci(adp_lo).c_str(), hw::sci(adp_hi).c_str(), mae_lo, mae_hi);
  std::printf("# ADP(um2*ns), MAE, [By, s1, s2, k, ax, ay, E]\n");
  for (std::size_t idx : res.pareto) {
    const core::DsePoint& p = res.points[idx];
    std::printf("%-12s %.4f  [%d, %d, %d, %d, %.3f, %.5f, %d]\n", hw::sci(p.adp()).c_str(), p.mae,
                p.cfg.by, p.cfg.s1, p.cfg.s2, p.cfg.k, p.cfg.alpha_x, p.cfg.alpha_y,
                p.cfg.align_expand);
  }
}

double timed_sweep(int bx, int m, int mae_rows, const core::DseOptions& opts,
                   core::DseResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  core::DseResult res = core::sweep_softmax_design_space(bx, m, mae_rows, 99, opts);
  const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (out) *out = std::move(res);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Fig. 8 — softmax design-space exploration",
                "Bx=2: 12 Pareto optima, ADP 2.45e5..1.89e7, MAE 0.0098..0.0714 | "
                "Bx=4: 21 Pareto optima");

  const bool fast = bench::fast_mode();
  const int mae_rows = fast ? 3 : 16;
  const int m = fast ? 16 : 64;

  core::DseOptions cached;  // LUT cache on, pool-parallel across sweep points
  core::DseResult res2, res4;
  const double s2 = timed_sweep(2, m, mae_rows, cached, &res2);
  const double s4 = timed_sweep(4, m, mae_rows, cached, &res4);
  report(2, res2, s2);
  report(4, res4, s4);

  // Cached-vs-emulated control: same seed, cache off. MAE must be identical;
  // wall-clock should not be.
  core::DseOptions uncached = cached;
  uncached.use_tf_cache = false;
  core::DseResult res2_u;
  const double s2_u = timed_sweep(2, m, mae_rows, uncached, &res2_u);
  bool identical = res2.points.size() == res2_u.points.size();
  if (identical)
    for (std::size_t i = 0; i < res2.points.size(); ++i)
      identical = identical && res2.points[i].mae == res2_u.points[i].mae;
  std::printf("\n-- LUT-cached sweep vs per-row circuit emulation (Bx = 2) --\n");
  std::printf("  cached %.2f s, emulated %.2f s: %.2fx speedup; MAE identical: %s\n", s2, s2_u,
              s2_u / std::max(s2, 1e-9), identical ? "yes" : "NO — BUG");

  bench::run_timing_kernels(argc, argv);
  return 0;
}
