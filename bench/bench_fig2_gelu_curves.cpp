// bench_fig2_gelu_curves — reproduces Fig. 2 (GELU transfer curves of the
// four design families) and Fig. 4 (ternary GELU staircase + truth table).
//
// Output is CSV-style rows: x, exact GELU, and each design's output, so the
// plots can be regenerated directly from the bench output.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "sc/bernstein.h"
#include "sc/fsm_units.h"
#include "sc/gate_si.h"
#include "sc/si.h"

using namespace ascend;

namespace {

void bm_fsm_gelu(benchmark::State& state) {
  sc::FsmGelu unit(3.5);
  sc::LfsrSource a(16, 0x1), b(17, 0x2);
  for (auto _ : state)
    benchmark::DoNotOptimize(unit.eval(-0.7, static_cast<std::size_t>(state.range(0)), a, b));
}
BENCHMARK(bm_fsm_gelu)->Arg(128)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Fig. 2 — GELU transfer curves; Fig. 4 — ternary GELU",
                "FSM saturates at 0 for x<0 and fluctuates; Bernstein fits coarsely and "
                "fluctuates; naive SI flattens the dip; gate-assisted SI is exact and "
                "fluctuation-free");

  const bool fast = bench::fast_mode();
  const int points = fast ? 15 : 36;
  const int fsm_reps = fast ? 4 : 16;

  // Designs under comparison.
  sc::FsmGelu fsm(3.5);
  const sc::BernsteinGelu bern(4);
  const sc::GateAssistedSI gsi4 = sc::make_gelu_block(4);
  const sc::GateAssistedSI gsi8 = sc::make_gelu_block(8);
  const auto naive4 = sc::SelectiveInterconnect::synthesize_best_monotone(
      sc::gelu_exact, gsi4.lin(), gsi4.lout(), gsi4.alpha_in(), gsi4.alpha_out());
  const auto naive8 = sc::SelectiveInterconnect::synthesize_best_monotone(
      sc::gelu_exact, gsi8.lin(), gsi8.lout(), gsi8.alpha_in(), gsi8.alpha_out());

  std::printf("\n# x, gelu, fsm_128b, fsm_1024b, bern4_128b, bern4_1024b, "
              "naive_si_4b, naive_si_8b, gate_si_4b, gate_si_8b\n");
  for (int i = 0; i <= points; ++i) {
    const double x = -3.0 + 3.5 * i / points;
    double fsm128 = 0, fsm1024 = 0, bern128 = 0, bern1024 = 0;
    for (int r = 0; r < fsm_reps; ++r) {
      sc::LfsrSource sa(16, 0x100u + static_cast<std::uint32_t>(r) * 7919u);
      sc::LfsrSource sb(17, 0x200u + static_cast<std::uint32_t>(r) * 104729u);
      fsm128 += fsm.eval(x, 128, sa, sb);
      fsm1024 += fsm.eval(x, 1024, sa, sb);
      const auto seed = static_cast<std::uint64_t>(i) * 131 + static_cast<std::uint64_t>(r);
      bern128 += bern.eval_stochastic(x, 128, seed);
      bern1024 += bern.eval_stochastic(x, 1024, seed + 17);
    }
    std::printf("%+.3f, %+.4f, %+.4f, %+.4f, %+.4f, %+.4f, %+.4f, %+.4f, %+.4f, %+.4f\n", x,
                sc::gelu_exact(x), fsm128 / fsm_reps, fsm1024 / fsm_reps, bern128 / fsm_reps,
                bern1024 / fsm_reps, naive4.transfer(x), naive8.transfer(x), gsi4.transfer(x),
                gsi8.transfer(x));
  }

  // Fig. 4: the ternary GELU block.
  const sc::GateAssistedSI tern = sc::GateAssistedSI::ternary_gelu();
  std::printf("\nFig. 4 — ternary GELU (8b input -> 2b output)\n");
  std::printf("input_count  selection(s2 s1 s0)  output_bits  output_count  value\n");
  for (int n = 0; n <= 8; ++n) {
    const sc::ThermStream in = sc::ThermStream::from_value(sc::ThermValue{n, 8, 1.0});
    const sc::ThermStream out = tern.apply(in);
    const int s2 = n >= 2, s1 = n >= 4, s0 = n >= 7;
    std::printf("     %d            %d %d %d             %s          %d        %+.0f\n", n, s2, s1,
                s0, out.bits.to_string().c_str(), out.ones(), out.value());
  }
  std::printf("(paper truth table: s=000 -> 0, 100 -> -1, 110 -> 0, 111 -> +1)\n");

  bench::run_timing_kernels(argc, argv);
  return 0;
}
