// quickstart — a tour of the ASCEND public API:
//   1. deterministic thermometer encoding and exact SC arithmetic,
//   2. the gate-assisted SI GELU block,
//   3. the iterative approximate softmax circuit,
//   4. hardware cost queries.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "core/ascend.h"

using namespace ascend;

int main() {
  std::printf("== 1. Thermometer-coded SC numbers ==\n");
  // Encode 0.75 on an 8-bit bundle with scale 0.25: value = alpha*(n - L/2).
  const sc::ThermStream a = sc::ThermStream::encode(0.75, 8, 0.25);
  const sc::ThermStream b = sc::ThermStream::encode(-0.5, 8, 0.25);
  std::printf("a = %s (value %+.3f)\n", a.bits.to_string().c_str(), a.value());
  std::printf("b = %s (value %+.3f)\n", b.bits.to_string().c_str(), b.value());

  // Multiplication is exact (truth-table multiplier).
  const sc::ThermStream prod = sc::mult(a, b);
  std::printf("a*b = %+.4f (exact: %+.4f), on a %d-bit bundle\n", prod.value(),
              a.value() * b.value(), prod.length());

  // Addition = concatenate + bitonic sort (BSN).
  const sc::ThermStream sum = sc::add({a, b});
  std::printf("a+b = %+.4f (exact: %+.4f), bits %s\n\n", sum.value(), a.value() + b.value(),
              sum.bits.to_string().c_str());

  std::printf("== 2. Gate-assisted SI GELU ==\n");
  const sc::GateAssistedSI gelu = sc::make_gelu_block(/*data BSL=*/8);
  for (double x : {-2.0, -0.75, 0.0, 0.4}) {
    std::printf("GELU(%+.2f): circuit %+.4f, exact %+.4f\n", x, gelu.transfer(x),
                sc::gelu_exact(x));
  }
  const hw::GateInventory gelu_hw = hw::cost_gate_si(gelu.lin(), gelu.lout(), gelu.total_intervals());
  std::printf("cost: %s\n\n", gelu_hw.summary().c_str());

  std::printf("== 3. Iterative approximate softmax ==\n");
  sc::SoftmaxIterConfig cfg;
  cfg.m = 8;
  cfg.k = 4;
  cfg.bx = 8;
  cfg.by = 32;
  cfg.s1 = 2;
  cfg.s2 = 2;
  cfg.alpha_x = 0.5;
  cfg.alpha_y = 2.2 / 32;
  const std::vector<double> x = {0.4, -0.6, 1.2, 0.1, -1.0, 0.7, 0.0, -0.3};
  const auto exact = sc::softmax_exact(x);
  const auto circuit = sc::softmax_iterative_sc(x, cfg);
  for (std::size_t i = 0; i < x.size(); ++i)
    std::printf("x=%+.2f  exact %.4f  circuit %.4f\n", x[i], exact[i], circuit[i]);
  const hw::GateInventory sm_hw = hw::cost_softmax_iter(cfg);
  std::printf("cost: area %.0f um2, delay %.1f ns (k=%d iterations)\n\n", sm_hw.area_um2(),
              sm_hw.delay_ns(), cfg.k);

  std::printf("== 4. A paper headline, recomputed ==\n");
  const double ours = hw::cost_gate_si(16, 8, 10).adp();
  const double baseline = hw::cost_bernstein(4, 1024).adp();
  std::printf("GELU ADP: gate-SI %.0f vs Bernstein-1024b %.0f um2*ns -> %.2fx reduction\n", ours,
              baseline, baseline / ours);
  return 0;
}
