// serve_sc_vit — concurrent clients against the batched SC inference runtime.
//
// Trains a small W2-A2-R16 BN-ViT, stands up a runtime::InferenceEngine
// (worker pool + dynamic batcher + transfer-function LUT cache), then hammers
// it from several client threads submitting one image at a time, exactly as a
// serving frontend would. Prints throughput, client-side latency percentiles
// and the engine's batching statistics.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "core/ascend.h"

using namespace ascend;
using namespace ascend::vit;
using Clock = std::chrono::steady_clock;

namespace {

double percentile(std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t i =
      std::min(xs.size() - 1, static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1)));
  return xs[i];
}

}  // namespace

int main() {
  VitConfig cfg = VitConfig::bench_topology(10);
  cfg.dim = 48;
  cfg.layers = 2;

  const Dataset train = make_synthetic_vision(512, cfg.classes, 11);
  const Dataset test = make_synthetic_vision(240, cfg.classes, 12);

  std::printf("training a %d-layer BN-ViT (dim %d, %d tokens) and quantizing to W2-A2-R16...\n",
              cfg.layers, cfg.dim, cfg.tokens());
  VisionTransformer model(cfg, 3);
  TrainOptions opt;
  opt.epochs = 4;
  opt.lr = 2e-3f;
  opt.batch_size = 64;
  train_model(model, nullptr, train, opt);
  model.apply_precision(PrecisionSpec::w2a2r16());
  opt.epochs = 2;
  opt.lr = 1e-3f;
  train_model(model, nullptr, train, opt);

  ScInferenceConfig sc_cfg;
  sc_cfg.softmax.bx = 8;
  sc_cfg.softmax.alpha_x = 1.0;
  sc_cfg.softmax.by = 32;
  sc_cfg.softmax.k = 3;
  sc_cfg.softmax.s1 = 4;
  sc_cfg.softmax.s2 = 2;
  sc_cfg.softmax.alpha_y = 3.0 / 32;
  sc_cfg.use_sc_gelu = true;
  sc_cfg.gelu_bsl = 16;
  sc_cfg.gelu_range = 4.0;

  runtime::EngineOptions eng_opts;
  eng_opts.threads = 4;
  eng_opts.max_batch = 16;
  eng_opts.max_delay = std::chrono::microseconds(2000);
  eng_opts.concurrent_forwards = 2;  // re-entrant infer path: batch forwards overlap
  runtime::InferenceEngine engine(model, sc_cfg, eng_opts);

  constexpr int kClients = 8;
  const int per_client = test.size() / kClients;
  std::printf("serving %d images from %d concurrent clients (pool=%d, max_batch=%d, "
              "max_delay=%lldus, concurrent_forwards=%d)...\n",
              per_client * kClients, kClients, engine.threads(), eng_opts.max_batch,
              static_cast<long long>(eng_opts.max_delay.count()),
              engine.concurrent_forwards());

  const int pixels = test.images.dim(1);
  std::vector<std::vector<double>> latencies(kClients);
  std::vector<int> correct(kClients, 0);
  std::vector<std::thread> clients;
  const auto t0 = Clock::now();
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(c) + 1);
      std::uniform_int_distribution<int> jitter_us(0, 500);
      for (int i = 0; i < per_client; ++i) {
        const int r = c * per_client + i;
        std::vector<float> img(static_cast<std::size_t>(pixels));
        for (int p = 0; p < pixels; ++p)
          img[static_cast<std::size_t>(p)] = test.images.at(r, p);
        const auto sent = Clock::now();
        auto fut = engine.submit(std::move(img));
        const runtime::Prediction pred = fut.get();
        latencies[static_cast<std::size_t>(c)].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - sent).count());
        if (pred.label == test.labels[static_cast<std::size_t>(r)])
          ++correct[static_cast<std::size_t>(c)];
        std::this_thread::sleep_for(std::chrono::microseconds(jitter_us(rng)));
      }
    });
  }
  for (auto& t : clients) t.join();
  const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<double> all_lat;
  int all_correct = 0;
  for (int c = 0; c < kClients; ++c) {
    all_lat.insert(all_lat.end(), latencies[static_cast<std::size_t>(c)].begin(),
                   latencies[static_cast<std::size_t>(c)].end());
    all_correct += correct[static_cast<std::size_t>(c)];
  }
  const int served = static_cast<int>(all_lat.size());
  const runtime::EngineStats st = engine.stats();

  std::printf("\nserved %d images in %.2f s  ->  %.1f images/s\n", served, wall_s,
              served / wall_s);
  std::printf("client latency (aggregate): p50 %.2f ms, p95 %.2f ms, max %.2f ms\n",
              percentile(all_lat, 0.50), percentile(all_lat, 0.95), percentile(all_lat, 1.0));
  std::printf("per-client latency:\n");
  for (int c = 0; c < kClients; ++c) {
    auto& lat = latencies[static_cast<std::size_t>(c)];
    std::printf("  client %d: p50 %6.2f ms   p95 %6.2f ms   (%zu images)\n", c,
                percentile(lat, 0.50), percentile(lat, 0.95), lat.size());
  }
  std::printf("batching: %llu batches, avg fill %.1f images, %llu full, avg queue wait %.2f ms, "
              "peak forwards in flight %d\n",
              static_cast<unsigned long long>(st.batches), st.avg_batch(),
              static_cast<unsigned long long>(st.full_batches), st.avg_queue_ms(),
              st.max_in_flight);
  std::printf("served accuracy (SC softmax By=%d k=%d + gate-SI GELU %db): %.2f%%\n",
              sc_cfg.softmax.by, sc_cfg.softmax.k, sc_cfg.gelu_bsl,
              100.0 * all_correct / std::max(served, 1));
  return 0;
}
