// serve_sc_vit — mixed-priority clients against the model-agnostic serving
// runtime.
//
// Trains a small W2-A2-R16 BN-ViT once, saves it to a versioned checkpoint,
// and cold-starts four registered servable variants from that file (fp32
// dense, W2A2 packed-ternary, SC LUT-cached, SC circuit-emulated) via
// ModelRegistry::register_from_file — the packed/fp32 variants serve their
// weights zero-copy out of a read-only mmap of the checkpoint, exactly how a
// production process would boot. One runtime::InferenceEngine stands over
// the registry. Client threads then hammer it with mixed traffic — interactive
// requests with deadlines, normal requests, and bulk batch-priority
// requests, spread across the variants — exactly as a serving frontend
// would. Prints throughput, per-priority and per-variant client latency
// percentiles, and the engine's scheduling statistics.
//
// The observability layer is on: a scrape thread prints live queue-depth /
// in-flight gauges while the clients run, and after the drain the example
// dumps the engine's Prometheus scrape (per-variant/per-priority latency
// histograms) plus the span-tree trace of the slowest request on record.
// ASCEND_TRACE=0 disables request tracing (used to measure its overhead).
//
// Beyond the in-process demo (no arguments), the example also fronts the
// network serving stack (docs/frontdoor.md):
//
//   serve_sc_vit --server [--port N] [--port-file PATH] [--shards N]
//       trains the small model, saves a checkpoint, cold-starts a ShardSet
//       (fp32 + w2a2-packed per shard, straight off the file) behind a
//       serve::Server, writes the bound port to --port-file, and blocks until
//       a client sends the kFlagDrain control frame.
//   serve_sc_vit --client (--port N | --port-file PATH)
//                [--connections C] [--requests R]
//       connects C clients, issues R requests each (mixed variants and
//       priorities), accounts every response by typed status, drains the
//       server, and exits nonzero unless ok + rejected + typed == issued.
//
// The two modes are the CI loopback smoke: one process serves, the other
// proves the wire protocol, admission control and graceful drain end to end.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/ascend.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/shard_set.h"

using namespace ascend;
using namespace ascend::vit;
using Clock = std::chrono::steady_clock;

namespace {

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t i =
      std::min(xs.size() - 1, static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1)));
  return xs[i];
}

struct ClientRecord {
  double latency_ms = 0.0;
  runtime::Priority priority = runtime::Priority::kNormal;
  std::string variant;
  bool correct = false;
  bool deadline_dropped = false;
  bool failed = false;  ///< resolved with a typed error other than a deadline drop
};

}  // namespace

static int run_demo() {
  VitConfig cfg = VitConfig::bench_topology(10);
  cfg.dim = 48;
  cfg.layers = 2;

  const Dataset train = make_synthetic_vision(512, cfg.classes, 11);
  const Dataset test = make_synthetic_vision(240, cfg.classes, 12);

  std::printf("training a %d-layer BN-ViT (dim %d, %d tokens) and quantizing to W2-A2-R16...\n",
              cfg.layers, cfg.dim, cfg.tokens());
  VisionTransformer model(cfg, 3);
  TrainOptions opt;
  opt.epochs = 4;
  opt.lr = 2e-3f;
  opt.batch_size = 64;
  train_model(model, nullptr, train, opt);
  model.apply_precision(PrecisionSpec::w2a2r16());
  opt.epochs = 2;
  opt.lr = 1e-3f;
  train_model(model, nullptr, train, opt);

  ScInferenceConfig sc_cfg;
  sc_cfg.softmax.bx = 8;
  sc_cfg.softmax.alpha_x = 1.0;
  sc_cfg.softmax.by = 32;
  sc_cfg.softmax.k = 3;
  sc_cfg.softmax.s1 = 4;
  sc_cfg.softmax.s2 = 2;
  sc_cfg.softmax.alpha_y = 3.0 / 32;
  sc_cfg.use_sc_gelu = true;
  sc_cfg.gelu_bsl = 16;
  sc_cfg.gelu_range = 4.0;

  // Serving cold-start: persist the trained model once, then register every
  // fidelity variant straight off the checkpoint file — the path a freshly
  // exec'd server takes (no training state in the process, weights mmap'd
  // zero-copy and kept alive by the servables themselves).
  const std::string ckpt_path =
      "/tmp/serve_sc_vit_" + std::to_string(static_cast<long long>(::getpid())) + ".ckpt";
  serialize::save_model(model, ckpt_path);
  std::printf("saved checkpoint to %s, cold-starting all variants from it...\n",
              ckpt_path.c_str());

  auto registry = std::make_shared<runtime::ModelRegistry>();
  runtime::ThreadPool sc_pool(4);  // shared per-activation pool for the SC variants
  ScServableOptions sc_opts;
  sc_opts.pool = &sc_pool;
  runtime::RegisterFromFileOptions from_file;
  from_file.sc_config = &sc_cfg;
  from_file.sc_options = &sc_opts;
  const auto boot0 = Clock::now();
  registry->register_from_file("sc-lut", ckpt_path, runtime::VariantKind::kScLut, from_file);
  registry->register_from_file("sc-emulated", ckpt_path, runtime::VariantKind::kScEmulated,
                               from_file);
  registry->register_from_file("w2a2-packed", ckpt_path, runtime::VariantKind::kPackedTernary,
                               from_file);
  registry->register_from_file("fp32", ckpt_path, runtime::VariantKind::kFp32, from_file);
  std::printf("cold-started %zu variants from disk in %.1f ms\n", registry->size(),
              std::chrono::duration<double, std::milli>(Clock::now() - boot0).count());

  runtime::EngineOptions eng_opts;
  eng_opts.threads = 4;
  eng_opts.max_batch = 16;
  eng_opts.max_delay = std::chrono::microseconds(2000);
  eng_opts.concurrent_forwards = 2;  // re-entrant infer path: batch forwards overlap
  eng_opts.default_variant = "sc-lut";
  const char* trace_env = std::getenv("ASCEND_TRACE");
  eng_opts.trace.enabled = !(trace_env && trace_env[0] == '0');
  eng_opts.trace.slowest = 4;
  runtime::InferenceEngine engine(registry, eng_opts);

  constexpr int kClients = 8;
  const int per_client = test.size() / kClients;
  std::printf("registered variants:");
  for (const auto& id : registry->variant_ids()) std::printf(" %s", id.c_str());
  std::printf("\nserving %d images from %d concurrent clients (sc pool=%d, max_batch=%d, "
              "max_delay=%lldus, concurrent_forwards=%d, default=%s)...\n",
              per_client * kClients, kClients, sc_pool.size(), eng_opts.max_batch,
              static_cast<long long>(eng_opts.max_delay.count()), engine.concurrent_forwards(),
              engine.default_variant().c_str());

  // Traffic mix: 2 interactive clients with 50 ms deadlines on the serving
  // default, 2 batch-priority bulk clients on the cheap packed variant, and
  // 4 normal clients spread across all four variants. Every client carries a
  // retry budget with a fallback variant, so a transient forward fault (e.g.
  // an armed ASCEND_FAILPOINTS schedule) degrades service instead of
  // erroring it.
  const auto client_opts = [&](int c) {
    runtime::RequestOptions ropts;
    if (c < 2) {
      ropts.priority = runtime::Priority::kInteractive;
      ropts.deadline = std::chrono::microseconds(50'000);
      ropts.variant = "sc-lut";
    } else if (c < 4) {
      ropts.priority = runtime::Priority::kBatch;
      ropts.variant = "w2a2-packed";
    } else {
      ropts.priority = runtime::Priority::kNormal;
      const std::vector<std::string> ids = registry->variant_ids();
      ropts.variant = ids[static_cast<std::size_t>(c) % ids.size()];
    }
    ropts.retry.max_attempts = 2;
    ropts.retry.backoff = std::chrono::microseconds(200);
    ropts.retry.fallback_variant = ropts.variant == "fp32" ? "w2a2-packed" : "fp32";
    return ropts;
  };

  const int pixels = test.images.dim(1);
  std::vector<std::vector<ClientRecord>> records(kClients);
  std::vector<std::thread> clients;
  const auto t0 = Clock::now();

  // Live scrape: what a metrics poller would see while the clients run.
  std::atomic<bool> serving{true};
  std::thread scraper([&] {
    while (serving.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (!serving.load()) break;
      const runtime::PendingCounts q = engine.pending();
      const runtime::EngineStats st = engine.stats();
      std::printf("  [scrape t=%5.2fs] queue=%zu (int %zu / norm %zu / batch %zu)  "
                  "in_flight=%d  served=%llu\n",
                  std::chrono::duration<double>(Clock::now() - t0).count(), q.total,
                  q.by_priority[0], q.by_priority[1], q.by_priority[2], engine.in_flight(),
                  static_cast<unsigned long long>(st.images));
    }
  });
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(c) + 1);
      std::uniform_int_distribution<int> jitter_us(0, 500);
      const runtime::RequestOptions ropts = client_opts(c);
      for (int i = 0; i < per_client; ++i) {
        const int r = c * per_client + i;
        std::vector<float> img(static_cast<std::size_t>(pixels));
        for (int p = 0; p < pixels; ++p)
          img[static_cast<std::size_t>(p)] = test.images.at(r, p);
        ClientRecord rec;
        rec.priority = ropts.priority;
        rec.variant = ropts.variant;
        const auto sent = Clock::now();
        try {
          auto fut = engine.submit(std::move(img), ropts);
          const runtime::Prediction pred = fut.get();
          rec.latency_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - sent).count();
          rec.correct = pred.label == test.labels[static_cast<std::size_t>(r)];
        } catch (const runtime::DeadlineExceededError&) {
          rec.latency_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - sent).count();
          rec.deadline_dropped = true;
        } catch (const std::exception&) {
          // Any other typed failure (queue overflow, watchdog trip, injected
          // fault from an ASCEND_FAILPOINTS schedule): the request is over,
          // the client moves on. No failure mode escapes the future.
          rec.latency_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - sent).count();
          rec.failed = true;
        }
        records[static_cast<std::size_t>(c)].push_back(std::move(rec));
        std::this_thread::sleep_for(std::chrono::microseconds(jitter_us(rng)));
      }
    });
  }
  // Operator thread: a checkpoint push lands mid-traffic. First a corrupted
  // file (a few payload bytes flipped — the CRC battery refuses it), then a
  // canary-validated push of the pristine checkpoint. The broken push rolls
  // back — the incumbent keeps serving on its old generation and the
  // rollback counter ticks — while the good push hot-swaps underneath the
  // running clients without dropping a request.
  std::thread operator_thread([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const std::string corrupt_path = ckpt_path + ".corrupt";
    {
      FILE* in = std::fopen(ckpt_path.c_str(), "rb");
      FILE* out = std::fopen(corrupt_path.c_str(), "wb");
      if (!in || !out) return;
      std::fseek(in, 0, SEEK_END);
      const long size = std::ftell(in);
      std::fseek(in, 0, SEEK_SET);
      std::vector<unsigned char> bytes(static_cast<std::size_t>(size));
      if (std::fread(bytes.data(), 1, bytes.size(), in) != bytes.size()) return;
      for (long off = size / 2; off < size / 2 + 8 && off < size; ++off)
        bytes[static_cast<std::size_t>(off)] ^= 0xFF;
      std::fwrite(bytes.data(), 1, bytes.size(), out);
      std::fclose(in);
      std::fclose(out);
    }
    nn::Tensor golden = nn::Tensor::uninitialized({4, pixels});
    for (int r = 0; r < 4; ++r)
      for (int p = 0; p < pixels; ++p) golden.at(r, p) = test.images.at(r, p);
    runtime::CanaryOptions canary;
    canary.golden_input = golden;
    canary.require_label_match = true;
    runtime::RegisterFromFileOptions push = from_file;
    push.canary = &canary;
    const std::uint64_t gen_before = registry->generation("sc-lut");
    const std::uint64_t rb_before = registry->rollbacks();
    try {
      registry->register_from_file("sc-lut", corrupt_path, runtime::VariantKind::kScLut, push);
      std::printf("  [operator] ERROR: corrupt checkpoint push was accepted\n");
    } catch (const std::exception& e) {
      std::printf("  [operator] corrupt push rejected (%s); generation %llu -> %llu, "
                  "rollbacks %llu -> %llu\n",
                  e.what(), static_cast<unsigned long long>(gen_before),
                  static_cast<unsigned long long>(registry->generation("sc-lut")),
                  static_cast<unsigned long long>(rb_before),
                  static_cast<unsigned long long>(registry->rollbacks()));
    }
    try {
      const std::uint64_t gen =
          registry->register_from_file("sc-lut", ckpt_path, runtime::VariantKind::kScLut, push);
      std::printf("  [operator] canary-validated hot-swap published generation %llu mid-traffic\n",
                  static_cast<unsigned long long>(gen));
    } catch (const std::exception& e) {
      std::printf("  [operator] ERROR: pristine push rejected: %s\n", e.what());
    }
    ::unlink(corrupt_path.c_str());
  });

  for (auto& t : clients) t.join();
  operator_thread.join();
  const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  serving.store(false);
  scraper.join();

  std::vector<ClientRecord> all;
  for (auto& r : records) all.insert(all.end(), r.begin(), r.end());
  int served = 0, correct = 0, dropped = 0, failed = 0;
  std::vector<double> all_lat;
  std::map<runtime::Priority, std::vector<double>> by_prio;
  std::map<std::string, std::vector<double>> by_variant;
  std::map<std::string, int> variant_correct, variant_count;
  for (const ClientRecord& rec : all) {
    if (rec.deadline_dropped) {
      ++dropped;
      continue;
    }
    if (rec.failed) {
      ++failed;
      continue;
    }
    ++served;
    if (rec.correct) ++correct;
    all_lat.push_back(rec.latency_ms);
    by_prio[rec.priority].push_back(rec.latency_ms);
    by_variant[rec.variant].push_back(rec.latency_ms);
    variant_count[rec.variant] += 1;
    if (rec.correct) variant_correct[rec.variant] += 1;
  }

  std::printf("\nserved %d images (+%d deadline-dropped, +%d failed typed) in %.2f s  ->  "
              "%.1f images/s\n",
              served, dropped, failed, wall_s, served / wall_s);
  std::printf("client latency (aggregate): p50 %.2f ms, p95 %.2f ms, max %.2f ms\n",
              percentile(all_lat, 0.50), percentile(all_lat, 0.95), percentile(all_lat, 1.0));

  std::printf("\nper-priority client latency:\n");
  for (const auto& [p, lat] : by_prio)
    std::printf("  %-12s p50 %6.2f ms   p95 %6.2f ms   (%zu served)\n",
                runtime::priority_name(p), percentile(lat, 0.50), percentile(lat, 0.95),
                lat.size());
  std::printf("per-variant client latency:\n");
  for (const auto& [v, lat] : by_variant)
    std::printf("  %-12s p50 %6.2f ms   p95 %6.2f ms   acc %5.1f%%   (%zu served)\n", v.c_str(),
                percentile(lat, 0.50), percentile(lat, 0.95),
                100.0 * variant_correct[v] / std::max(variant_count[v], 1), lat.size());

  const runtime::EngineStats st = engine.stats();
  std::printf("\nbatching: %llu batches, avg fill %.1f images, %llu full, avg queue wait "
              "%.2f ms, peak forwards in flight %d\n",
              static_cast<unsigned long long>(st.batches), st.avg_batch(),
              static_cast<unsigned long long>(st.full_batches), st.avg_queue_ms(),
              st.max_in_flight);
  std::printf("scheduler counters (queued / served / deadline-dropped / rejected):\n");
  for (int p = 0; p < runtime::kNumPriorities; ++p) {
    const runtime::PriorityStats& ps = st.by_priority[static_cast<std::size_t>(p)];
    std::printf("  %-12s %6llu / %6llu / %6llu / %6llu\n",
                runtime::priority_name(static_cast<runtime::Priority>(p)),
                static_cast<unsigned long long>(ps.queued),
                static_cast<unsigned long long>(ps.served),
                static_cast<unsigned long long>(ps.deadline_dropped),
                static_cast<unsigned long long>(ps.rejected));
  }
  std::printf("overall served accuracy: %.2f%%\n", 100.0 * correct / std::max(served, 1));

  // Resilience counters: what the self-healing layers did during the run
  // (nonzero retries/fires only under an ASCEND_FAILPOINTS schedule; the
  // operator thread always lands one rollback and one extra publish).
  std::uint64_t retries = 0, fallback_served = 0;
  for (int p = 0; p < runtime::kNumPriorities; ++p) {
    retries += st.by_priority[static_cast<std::size_t>(p)].retries;
    fallback_served += st.by_priority[static_cast<std::size_t>(p)].fallback_served;
  }
  std::printf("resilience: %llu retries, %llu fallback-served, %llu watchdog trips, "
              "%llu publishes, %llu rollbacks, %llu failpoint fires\n",
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(fallback_served),
              static_cast<unsigned long long>(st.watchdog_trips),
              static_cast<unsigned long long>(registry->publishes()),
              static_cast<unsigned long long>(registry->rollbacks()),
              static_cast<unsigned long long>(runtime::failpoint::total_fires()));

  // Phase 2: bulk ingest of the whole test set through the serving default —
  // the closed-loop frontend (decode a batch of fresh per-request vectors,
  // submit, drain, repeat; the model idles during every decode) vs a
  // runtime::Loader prefetching decoded batches into a recycled ring on a
  // worker thread and feeding the synchronous batch path through one reused
  // staging tensor. Same images, same engine, same variant.
  {
    const int batch = eng_opts.max_batch;
    const int bulk_batches = test.size() / batch;
    const int bulk_images = bulk_batches * batch;

    std::vector<double> closed_lat, loader_lat;
    const auto c0 = Clock::now();
    for (int b = 0; b < bulk_batches; ++b) {
      const auto tb = Clock::now();
      std::vector<std::future<runtime::Prediction>> futs;
      futs.reserve(static_cast<std::size_t>(batch));
      for (int i = 0; i < batch; ++i) {
        const int r = b * batch + i;
        std::vector<float> img(static_cast<std::size_t>(pixels));
        for (int p = 0; p < pixels; ++p)
          img[static_cast<std::size_t>(p)] = test.images.at(r, p);
        futs.push_back(engine.submit(std::move(img)));
      }
      for (auto& f : futs) {
        try {
          (void)f.get();
        } catch (const std::exception&) {
          // Tolerated: an armed fault schedule may fail bulk rows too.
        }
      }
      closed_lat.push_back(std::chrono::duration<double, std::milli>(Clock::now() - tb).count());
    }
    const double closed_s = std::chrono::duration<double>(Clock::now() - c0).count();

    runtime::LoaderOptions lopts;
    lopts.workers = 1;
    lopts.prefetch_batches = 3;
    lopts.batch_size = batch;
    runtime::Loader loader(
        [&](int index, float* dst) {
          std::memcpy(dst, test.images.data() + static_cast<std::size_t>(index) * pixels,
                      sizeof(float) * static_cast<std::size_t>(pixels));
        },
        bulk_images, pixels, lopts);
    nn::Tensor staging = nn::Tensor::uninitialized({batch, pixels});
    const auto l0 = Clock::now();
    for (;;) {
      const auto tb = Clock::now();
      const runtime::Loader::Batch b = loader.next();
      if (b.end()) break;
      std::memcpy(staging.data(), b.data,
                  sizeof(float) * static_cast<std::size_t>(b.size) * pixels);
      try {
        (void)engine.predict_batch(staging);
      } catch (const std::exception&) {
        // Tolerated under an armed fault schedule; the loader just moves on.
      }
      loader.recycle(b);
      loader_lat.push_back(std::chrono::duration<double, std::milli>(Clock::now() - tb).count());
    }
    const double loader_s = std::chrono::duration<double>(Clock::now() - l0).count();

    std::printf("\nbulk ingest, %d images through %s (batch %d):\n", bulk_images,
                engine.default_variant().c_str(), batch);
    std::printf("  %-22s %10.1f images/s   p50 %6.2f ms/batch\n", "closed-loop submit",
                bulk_images / closed_s, percentile(closed_lat, 0.50));
    std::printf("  %-22s %10.1f images/s   p50 %6.2f ms/batch   (%.2fx)\n", "prefetching loader",
                bulk_images / loader_s, percentile(loader_lat, 0.50), closed_s / loader_s);
  }

  // Server-side latency: the engine's own histograms, per (variant, priority).
  const runtime::metrics::RegistrySnapshot snap = engine.metrics()->snapshot();
  std::printf("\nengine latency histograms (ascend_request_latency_usec, <=3.2%% bucket error):\n");
  std::printf("  %-14s %-12s %9s %9s %9s %9s %8s\n", "variant", "priority", "p50 ms", "p95 ms",
              "p99 ms", "p99.9 ms", "count");
  for (const auto& id : registry->variant_ids()) {
    for (int p = 0; p < runtime::kNumPriorities; ++p) {
      const auto* h = snap.histogram(
          "ascend_request_latency_usec",
          {{"variant", id}, {"priority", runtime::priority_name(static_cast<runtime::Priority>(p))}});
      if (!h || h->count == 0) continue;
      std::printf("  %-14s %-12s %9.2f %9.2f %9.2f %9.2f %8llu\n", id.c_str(),
                  runtime::priority_name(static_cast<runtime::Priority>(p)),
                  h->quantile(0.50) / 1e3, h->quantile(0.95) / 1e3, h->quantile(0.99) / 1e3,
                  h->quantile(0.999) / 1e3, static_cast<unsigned long long>(h->count));
    }
  }

  std::printf("\n-- Prometheus scrape (final) --\n%s",
              engine.metrics()->render_prometheus().c_str());

  if (eng_opts.trace.enabled) {
    const auto slowest = engine.tracer().slowest();
    if (!slowest.empty()) {
      std::printf("\n-- slowest request on record (of %zu retained) --\n%s", slowest.size(),
                  runtime::trace::format_trace(slowest.front()).c_str());
    }
  } else {
    std::printf("\n(request tracing disabled via ASCEND_TRACE=0)\n");
  }
  ::unlink(ckpt_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Network front-door modes (--server / --client). Both sides agree on this
// small topology so the client knows the payload size without a handshake.
// ---------------------------------------------------------------------------

namespace {

VitConfig frontdoor_config() {
  VitConfig cfg;
  cfg.image_size = 16;
  cfg.patch_size = 8;
  cfg.dim = 32;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.classes = 8;
  return cfg;
}

int frontdoor_pixels() {
  const VitConfig cfg = frontdoor_config();
  return cfg.channels * cfg.image_size * cfg.image_size;
}

/// Resolve the server port: an explicit --port wins; otherwise poll
/// --port-file until the server publishes it (the CI smoke launches the
/// server in the background and the client races its startup).
int resolve_port(int port, const std::string& port_file) {
  if (port > 0) return port;
  if (port_file.empty()) return -1;
  for (int attempt = 0; attempt < 300; ++attempt) {
    if (FILE* f = std::fopen(port_file.c_str(), "rb")) {
      int p = 0;
      const int got = std::fscanf(f, "%d", &p);
      std::fclose(f);
      if (got == 1 && p > 0) return p;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return -1;
}

int run_server(int port, const std::string& port_file, int shards) {
  const VitConfig cfg = frontdoor_config();
  const Dataset train = make_synthetic_vision(256, cfg.classes, 21, cfg.image_size);

  std::printf("[server] training a %d-layer BN-ViT (dim %d) for the front door...\n", cfg.layers,
              cfg.dim);
  VisionTransformer model(cfg, 3);
  TrainOptions opt;
  opt.epochs = 2;
  opt.lr = 2e-3f;
  opt.batch_size = 64;
  train_model(model, nullptr, train, opt);
  model.apply_precision(PrecisionSpec::w2a2r16());
  opt.epochs = 1;
  train_model(model, nullptr, train, opt);

  const std::string ckpt_path =
      "/tmp/serve_sc_vit_frontdoor_" + std::to_string(static_cast<long long>(::getpid())) +
      ".ckpt";
  serialize::save_model(model, ckpt_path);

  // Every shard cold-starts its own registry straight off the checkpoint
  // file — shards share nothing on the request path.
  serve::ShardSetOptions sopts;
  sopts.shards = shards;
  sopts.engine.threads = 2;
  sopts.engine.max_batch = 16;
  sopts.engine.max_pending = 128;
  sopts.engine.max_delay = std::chrono::microseconds(1000);
  sopts.engine.default_variant = "fp32";
  const auto boot0 = Clock::now();
  serve::ShardSet shard_set(
      [&](int, runtime::ModelRegistry& registry) {
        runtime::RegisterFromFileOptions from_file;
        registry.register_from_file("fp32", ckpt_path, runtime::VariantKind::kFp32, from_file);
        registry.register_from_file("w2a2-packed", ckpt_path,
                                    runtime::VariantKind::kPackedTernary, from_file);
      },
      sopts);
  std::printf("[server] cold-started %d shards x 2 variants from %s in %.1f ms\n",
              shard_set.shards(), ckpt_path.c_str(),
              std::chrono::duration<double, std::milli>(Clock::now() - boot0).count());

  serve::ServerOptions server_opts;
  server_opts.port = static_cast<std::uint16_t>(port > 0 ? port : 0);
  server_opts.completion_threads = 2;
  serve::Server server(shard_set, server_opts);

  if (!port_file.empty()) {
    // Write-then-rename so a polling client never reads a partial file.
    const std::string tmp = port_file + ".tmp";
    FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "[server] cannot write port file %s\n", tmp.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
    std::fclose(f);
    if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      std::fprintf(stderr, "[server] cannot publish port file %s\n", port_file.c_str());
      return 1;
    }
  }
  std::printf("[server] front door listening on 127.0.0.1:%u (%d shards); waiting for drain\n",
              static_cast<unsigned>(server.port()), shard_set.shards());
  std::fflush(stdout);

  server.wait_drained();

  const serve::ServerStats st = server.stats();
  std::printf("[server] drained: %llu connections, %llu frames in, %llu responses out, "
              "%llu protocol errors, admitted %llu, rejected %llu\n",
              static_cast<unsigned long long>(st.connections_accepted),
              static_cast<unsigned long long>(st.frames_in),
              static_cast<unsigned long long>(st.responses_out),
              static_cast<unsigned long long>(st.protocol_errors),
              static_cast<unsigned long long>(shard_set.admitted()),
              static_cast<unsigned long long>(shard_set.rejected()));
  ::unlink(ckpt_path.c_str());
  if (st.frames_in != st.responses_out) {
    std::fprintf(stderr, "[server] LOST REQUESTS: %llu frames in vs %llu responses out\n",
                 static_cast<unsigned long long>(st.frames_in),
                 static_cast<unsigned long long>(st.responses_out));
    return 1;
  }
  return 0;
}

int run_client(int port, const std::string& port_file, int connections, int requests) {
  const int resolved = resolve_port(port, port_file);
  if (resolved <= 0) {
    std::fprintf(stderr, "[client] no server port (give --port or --port-file)\n");
    return 2;
  }
  const int pixels = frontdoor_pixels();
  std::printf("[client] %d connections x %d requests against 127.0.0.1:%d (payload %d floats)\n",
              connections, requests, resolved, pixels);

  std::atomic<std::uint64_t> ok{0}, rejected{0}, typed{0}, transport_errors{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      try {
        serve::Client client("127.0.0.1", static_cast<std::uint16_t>(resolved));
        std::mt19937_64 rng(static_cast<std::uint64_t>(c) * 7919 + 17);
        std::uniform_real_distribution<float> pix(-1.0f, 1.0f);
        for (int i = 0; i < requests; ++i) {
          serve::RequestFrame req;
          req.request_id = static_cast<std::uint64_t>(c) << 32 | static_cast<std::uint32_t>(i);
          req.options.variant = (i % 2 == 0) ? "fp32" : "w2a2-packed";
          req.options.priority = static_cast<runtime::Priority>(i % runtime::kNumPriorities);
          req.payload.resize(static_cast<std::size_t>(pixels));
          for (float& v : req.payload) v = pix(rng);
          const serve::ResponseFrame resp = client.request(req);
          if (resp.status == serve::Status::kOk)
            ++ok;
          else if (resp.status == serve::Status::kRetryAfter)
            ++rejected;
          else
            ++typed;
          if (resp.status == serve::Status::kRetryAfter && resp.retry_after_ms > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(resp.retry_after_ms));
        }
      } catch (const std::exception& e) {
        // A transport-level failure (refused connect, mid-stream EOF) breaks
        // the accounting invariant below — count it so the exit code trips.
        std::fprintf(stderr, "[client %d] transport error: %s\n", c, e.what());
        ++transport_errors;
      }
    });
  }
  for (auto& t : workers) t.join();

  const std::uint64_t issued =
      static_cast<std::uint64_t>(connections) * static_cast<std::uint64_t>(requests);
  const std::uint64_t answered = ok.load() + rejected.load() + typed.load();
  std::printf("[client] issued %llu: ok %llu, rejected (retry-after) %llu, typed errors %llu\n",
              static_cast<unsigned long long>(issued), static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(rejected.load()),
              static_cast<unsigned long long>(typed.load()));

  int rc = 0;
  if (transport_errors.load() != 0 || answered != issued) {
    std::fprintf(stderr, "[client] ACCOUNTING BROKEN: answered %llu != issued %llu (%llu "
                 "transport errors)\n",
                 static_cast<unsigned long long>(answered),
                 static_cast<unsigned long long>(issued),
                 static_cast<unsigned long long>(transport_errors.load()));
    rc = 1;
  }

  try {
    serve::Client drainer("127.0.0.1", static_cast<std::uint16_t>(resolved));
    const serve::ResponseFrame ack = drainer.drain_server(issued + 1);
    std::printf("[client] drain acknowledged (%s)\n", serve::status_name(ack.status));
    if (ack.status != serve::Status::kOk) rc = 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[client] drain failed: %s\n", e.what());
    rc = 1;
  }
  return rc;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s                                  in-process serving demo\n"
               "       %s --server [--port N] [--port-file PATH] [--shards N]\n"
               "       %s --client (--port N | --port-file PATH) [--connections C] "
               "[--requests R]\n",
               argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return run_demo();

  bool server = false, client = false;
  int port = 0, shards = 2, connections = 4, requests = 100;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--server") {
      server = true;
    } else if (arg == "--client") {
      client = true;
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      port = std::atoi(v);
    } else if (arg == "--port-file") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      port_file = v;
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      shards = std::atoi(v);
    } else if (arg == "--connections") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      connections = std::atoi(v);
    } else if (arg == "--requests") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      requests = std::atoi(v);
    } else {
      return usage(argv[0]);
    }
  }
  if (server == client) return usage(argv[0]);  // exactly one mode
  if (shards < 1 || connections < 1 || requests < 1) return usage(argv[0]);
  return server ? run_server(port, port_file, shards) : run_client(port, port_file, connections,
                                                                   requests);
}
