// serve_sc_vit — mixed-priority clients against the model-agnostic serving
// runtime.
//
// Trains a small W2-A2-R16 BN-ViT once, saves it to a versioned checkpoint,
// and cold-starts four registered servable variants from that file (fp32
// dense, W2A2 packed-ternary, SC LUT-cached, SC circuit-emulated) via
// ModelRegistry::register_from_file — the packed/fp32 variants serve their
// weights zero-copy out of a read-only mmap of the checkpoint, exactly how a
// production process would boot. One runtime::InferenceEngine stands over
// the registry. Client threads then hammer it with mixed traffic — interactive
// requests with deadlines, normal requests, and bulk batch-priority
// requests, spread across the variants — exactly as a serving frontend
// would. Prints throughput, per-priority and per-variant client latency
// percentiles, and the engine's scheduling statistics.
//
// The observability layer is on: a scrape thread prints live queue-depth /
// in-flight gauges while the clients run, and after the drain the example
// dumps the engine's Prometheus scrape (per-variant/per-priority latency
// histograms) plus the span-tree trace of the slowest request on record.
// ASCEND_TRACE=0 disables request tracing (used to measure its overhead).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "core/ascend.h"

using namespace ascend;
using namespace ascend::vit;
using Clock = std::chrono::steady_clock;

namespace {

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const std::size_t i =
      std::min(xs.size() - 1, static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1)));
  return xs[i];
}

struct ClientRecord {
  double latency_ms = 0.0;
  runtime::Priority priority = runtime::Priority::kNormal;
  std::string variant;
  bool correct = false;
  bool deadline_dropped = false;
  bool failed = false;  ///< resolved with a typed error other than a deadline drop
};

}  // namespace

int main() {
  VitConfig cfg = VitConfig::bench_topology(10);
  cfg.dim = 48;
  cfg.layers = 2;

  const Dataset train = make_synthetic_vision(512, cfg.classes, 11);
  const Dataset test = make_synthetic_vision(240, cfg.classes, 12);

  std::printf("training a %d-layer BN-ViT (dim %d, %d tokens) and quantizing to W2-A2-R16...\n",
              cfg.layers, cfg.dim, cfg.tokens());
  VisionTransformer model(cfg, 3);
  TrainOptions opt;
  opt.epochs = 4;
  opt.lr = 2e-3f;
  opt.batch_size = 64;
  train_model(model, nullptr, train, opt);
  model.apply_precision(PrecisionSpec::w2a2r16());
  opt.epochs = 2;
  opt.lr = 1e-3f;
  train_model(model, nullptr, train, opt);

  ScInferenceConfig sc_cfg;
  sc_cfg.softmax.bx = 8;
  sc_cfg.softmax.alpha_x = 1.0;
  sc_cfg.softmax.by = 32;
  sc_cfg.softmax.k = 3;
  sc_cfg.softmax.s1 = 4;
  sc_cfg.softmax.s2 = 2;
  sc_cfg.softmax.alpha_y = 3.0 / 32;
  sc_cfg.use_sc_gelu = true;
  sc_cfg.gelu_bsl = 16;
  sc_cfg.gelu_range = 4.0;

  // Serving cold-start: persist the trained model once, then register every
  // fidelity variant straight off the checkpoint file — the path a freshly
  // exec'd server takes (no training state in the process, weights mmap'd
  // zero-copy and kept alive by the servables themselves).
  const std::string ckpt_path =
      "/tmp/serve_sc_vit_" + std::to_string(static_cast<long long>(::getpid())) + ".ckpt";
  serialize::save_model(model, ckpt_path);
  std::printf("saved checkpoint to %s, cold-starting all variants from it...\n",
              ckpt_path.c_str());

  auto registry = std::make_shared<runtime::ModelRegistry>();
  runtime::ThreadPool sc_pool(4);  // shared per-activation pool for the SC variants
  ScServableOptions sc_opts;
  sc_opts.pool = &sc_pool;
  runtime::RegisterFromFileOptions from_file;
  from_file.sc_config = &sc_cfg;
  from_file.sc_options = &sc_opts;
  const auto boot0 = Clock::now();
  registry->register_from_file("sc-lut", ckpt_path, runtime::VariantKind::kScLut, from_file);
  registry->register_from_file("sc-emulated", ckpt_path, runtime::VariantKind::kScEmulated,
                               from_file);
  registry->register_from_file("w2a2-packed", ckpt_path, runtime::VariantKind::kPackedTernary,
                               from_file);
  registry->register_from_file("fp32", ckpt_path, runtime::VariantKind::kFp32, from_file);
  std::printf("cold-started %zu variants from disk in %.1f ms\n", registry->size(),
              std::chrono::duration<double, std::milli>(Clock::now() - boot0).count());

  runtime::EngineOptions eng_opts;
  eng_opts.threads = 4;
  eng_opts.max_batch = 16;
  eng_opts.max_delay = std::chrono::microseconds(2000);
  eng_opts.concurrent_forwards = 2;  // re-entrant infer path: batch forwards overlap
  eng_opts.default_variant = "sc-lut";
  const char* trace_env = std::getenv("ASCEND_TRACE");
  eng_opts.trace.enabled = !(trace_env && trace_env[0] == '0');
  eng_opts.trace.slowest = 4;
  runtime::InferenceEngine engine(registry, eng_opts);

  constexpr int kClients = 8;
  const int per_client = test.size() / kClients;
  std::printf("registered variants:");
  for (const auto& id : registry->variant_ids()) std::printf(" %s", id.c_str());
  std::printf("\nserving %d images from %d concurrent clients (sc pool=%d, max_batch=%d, "
              "max_delay=%lldus, concurrent_forwards=%d, default=%s)...\n",
              per_client * kClients, kClients, sc_pool.size(), eng_opts.max_batch,
              static_cast<long long>(eng_opts.max_delay.count()), engine.concurrent_forwards(),
              engine.default_variant().c_str());

  // Traffic mix: 2 interactive clients with 50 ms deadlines on the serving
  // default, 2 batch-priority bulk clients on the cheap packed variant, and
  // 4 normal clients spread across all four variants. Every client carries a
  // retry budget with a fallback variant, so a transient forward fault (e.g.
  // an armed ASCEND_FAILPOINTS schedule) degrades service instead of
  // erroring it.
  const auto client_opts = [&](int c) {
    runtime::RequestOptions ropts;
    if (c < 2) {
      ropts.priority = runtime::Priority::kInteractive;
      ropts.deadline = std::chrono::microseconds(50'000);
      ropts.variant = "sc-lut";
    } else if (c < 4) {
      ropts.priority = runtime::Priority::kBatch;
      ropts.variant = "w2a2-packed";
    } else {
      ropts.priority = runtime::Priority::kNormal;
      const std::vector<std::string> ids = registry->variant_ids();
      ropts.variant = ids[static_cast<std::size_t>(c) % ids.size()];
    }
    ropts.retry.max_attempts = 2;
    ropts.retry.backoff = std::chrono::microseconds(200);
    ropts.retry.fallback_variant = ropts.variant == "fp32" ? "w2a2-packed" : "fp32";
    return ropts;
  };

  const int pixels = test.images.dim(1);
  std::vector<std::vector<ClientRecord>> records(kClients);
  std::vector<std::thread> clients;
  const auto t0 = Clock::now();

  // Live scrape: what a metrics poller would see while the clients run.
  std::atomic<bool> serving{true};
  std::thread scraper([&] {
    while (serving.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (!serving.load()) break;
      const runtime::PendingCounts q = engine.pending();
      const runtime::EngineStats st = engine.stats();
      std::printf("  [scrape t=%5.2fs] queue=%zu (int %zu / norm %zu / batch %zu)  "
                  "in_flight=%d  served=%llu\n",
                  std::chrono::duration<double>(Clock::now() - t0).count(), q.total,
                  q.by_priority[0], q.by_priority[1], q.by_priority[2], engine.in_flight(),
                  static_cast<unsigned long long>(st.images));
    }
  });
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(static_cast<std::uint64_t>(c) + 1);
      std::uniform_int_distribution<int> jitter_us(0, 500);
      const runtime::RequestOptions ropts = client_opts(c);
      for (int i = 0; i < per_client; ++i) {
        const int r = c * per_client + i;
        std::vector<float> img(static_cast<std::size_t>(pixels));
        for (int p = 0; p < pixels; ++p)
          img[static_cast<std::size_t>(p)] = test.images.at(r, p);
        ClientRecord rec;
        rec.priority = ropts.priority;
        rec.variant = ropts.variant;
        const auto sent = Clock::now();
        try {
          auto fut = engine.submit(std::move(img), ropts);
          const runtime::Prediction pred = fut.get();
          rec.latency_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - sent).count();
          rec.correct = pred.label == test.labels[static_cast<std::size_t>(r)];
        } catch (const runtime::DeadlineExceededError&) {
          rec.latency_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - sent).count();
          rec.deadline_dropped = true;
        } catch (const std::exception&) {
          // Any other typed failure (queue overflow, watchdog trip, injected
          // fault from an ASCEND_FAILPOINTS schedule): the request is over,
          // the client moves on. No failure mode escapes the future.
          rec.latency_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - sent).count();
          rec.failed = true;
        }
        records[static_cast<std::size_t>(c)].push_back(std::move(rec));
        std::this_thread::sleep_for(std::chrono::microseconds(jitter_us(rng)));
      }
    });
  }
  // Operator thread: a checkpoint push lands mid-traffic. First a corrupted
  // file (a few payload bytes flipped — the CRC battery refuses it), then a
  // canary-validated push of the pristine checkpoint. The broken push rolls
  // back — the incumbent keeps serving on its old generation and the
  // rollback counter ticks — while the good push hot-swaps underneath the
  // running clients without dropping a request.
  std::thread operator_thread([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const std::string corrupt_path = ckpt_path + ".corrupt";
    {
      FILE* in = std::fopen(ckpt_path.c_str(), "rb");
      FILE* out = std::fopen(corrupt_path.c_str(), "wb");
      if (!in || !out) return;
      std::fseek(in, 0, SEEK_END);
      const long size = std::ftell(in);
      std::fseek(in, 0, SEEK_SET);
      std::vector<unsigned char> bytes(static_cast<std::size_t>(size));
      if (std::fread(bytes.data(), 1, bytes.size(), in) != bytes.size()) return;
      for (long off = size / 2; off < size / 2 + 8 && off < size; ++off)
        bytes[static_cast<std::size_t>(off)] ^= 0xFF;
      std::fwrite(bytes.data(), 1, bytes.size(), out);
      std::fclose(in);
      std::fclose(out);
    }
    nn::Tensor golden = nn::Tensor::uninitialized({4, pixels});
    for (int r = 0; r < 4; ++r)
      for (int p = 0; p < pixels; ++p) golden.at(r, p) = test.images.at(r, p);
    runtime::CanaryOptions canary;
    canary.golden_input = golden;
    canary.require_label_match = true;
    runtime::RegisterFromFileOptions push = from_file;
    push.canary = &canary;
    const std::uint64_t gen_before = registry->generation("sc-lut");
    const std::uint64_t rb_before = registry->rollbacks();
    try {
      registry->register_from_file("sc-lut", corrupt_path, runtime::VariantKind::kScLut, push);
      std::printf("  [operator] ERROR: corrupt checkpoint push was accepted\n");
    } catch (const std::exception& e) {
      std::printf("  [operator] corrupt push rejected (%s); generation %llu -> %llu, "
                  "rollbacks %llu -> %llu\n",
                  e.what(), static_cast<unsigned long long>(gen_before),
                  static_cast<unsigned long long>(registry->generation("sc-lut")),
                  static_cast<unsigned long long>(rb_before),
                  static_cast<unsigned long long>(registry->rollbacks()));
    }
    try {
      const std::uint64_t gen =
          registry->register_from_file("sc-lut", ckpt_path, runtime::VariantKind::kScLut, push);
      std::printf("  [operator] canary-validated hot-swap published generation %llu mid-traffic\n",
                  static_cast<unsigned long long>(gen));
    } catch (const std::exception& e) {
      std::printf("  [operator] ERROR: pristine push rejected: %s\n", e.what());
    }
    ::unlink(corrupt_path.c_str());
  });

  for (auto& t : clients) t.join();
  operator_thread.join();
  const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  serving.store(false);
  scraper.join();

  std::vector<ClientRecord> all;
  for (auto& r : records) all.insert(all.end(), r.begin(), r.end());
  int served = 0, correct = 0, dropped = 0, failed = 0;
  std::vector<double> all_lat;
  std::map<runtime::Priority, std::vector<double>> by_prio;
  std::map<std::string, std::vector<double>> by_variant;
  std::map<std::string, int> variant_correct, variant_count;
  for (const ClientRecord& rec : all) {
    if (rec.deadline_dropped) {
      ++dropped;
      continue;
    }
    if (rec.failed) {
      ++failed;
      continue;
    }
    ++served;
    if (rec.correct) ++correct;
    all_lat.push_back(rec.latency_ms);
    by_prio[rec.priority].push_back(rec.latency_ms);
    by_variant[rec.variant].push_back(rec.latency_ms);
    variant_count[rec.variant] += 1;
    if (rec.correct) variant_correct[rec.variant] += 1;
  }

  std::printf("\nserved %d images (+%d deadline-dropped, +%d failed typed) in %.2f s  ->  "
              "%.1f images/s\n",
              served, dropped, failed, wall_s, served / wall_s);
  std::printf("client latency (aggregate): p50 %.2f ms, p95 %.2f ms, max %.2f ms\n",
              percentile(all_lat, 0.50), percentile(all_lat, 0.95), percentile(all_lat, 1.0));

  std::printf("\nper-priority client latency:\n");
  for (const auto& [p, lat] : by_prio)
    std::printf("  %-12s p50 %6.2f ms   p95 %6.2f ms   (%zu served)\n",
                runtime::priority_name(p), percentile(lat, 0.50), percentile(lat, 0.95),
                lat.size());
  std::printf("per-variant client latency:\n");
  for (const auto& [v, lat] : by_variant)
    std::printf("  %-12s p50 %6.2f ms   p95 %6.2f ms   acc %5.1f%%   (%zu served)\n", v.c_str(),
                percentile(lat, 0.50), percentile(lat, 0.95),
                100.0 * variant_correct[v] / std::max(variant_count[v], 1), lat.size());

  const runtime::EngineStats st = engine.stats();
  std::printf("\nbatching: %llu batches, avg fill %.1f images, %llu full, avg queue wait "
              "%.2f ms, peak forwards in flight %d\n",
              static_cast<unsigned long long>(st.batches), st.avg_batch(),
              static_cast<unsigned long long>(st.full_batches), st.avg_queue_ms(),
              st.max_in_flight);
  std::printf("scheduler counters (queued / served / deadline-dropped / rejected):\n");
  for (int p = 0; p < runtime::kNumPriorities; ++p) {
    const runtime::PriorityStats& ps = st.by_priority[static_cast<std::size_t>(p)];
    std::printf("  %-12s %6llu / %6llu / %6llu / %6llu\n",
                runtime::priority_name(static_cast<runtime::Priority>(p)),
                static_cast<unsigned long long>(ps.queued),
                static_cast<unsigned long long>(ps.served),
                static_cast<unsigned long long>(ps.deadline_dropped),
                static_cast<unsigned long long>(ps.rejected));
  }
  std::printf("overall served accuracy: %.2f%%\n", 100.0 * correct / std::max(served, 1));

  // Resilience counters: what the self-healing layers did during the run
  // (nonzero retries/fires only under an ASCEND_FAILPOINTS schedule; the
  // operator thread always lands one rollback and one extra publish).
  std::uint64_t retries = 0, fallback_served = 0;
  for (int p = 0; p < runtime::kNumPriorities; ++p) {
    retries += st.by_priority[static_cast<std::size_t>(p)].retries;
    fallback_served += st.by_priority[static_cast<std::size_t>(p)].fallback_served;
  }
  std::printf("resilience: %llu retries, %llu fallback-served, %llu watchdog trips, "
              "%llu publishes, %llu rollbacks, %llu failpoint fires\n",
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(fallback_served),
              static_cast<unsigned long long>(st.watchdog_trips),
              static_cast<unsigned long long>(registry->publishes()),
              static_cast<unsigned long long>(registry->rollbacks()),
              static_cast<unsigned long long>(runtime::failpoint::total_fires()));

  // Phase 2: bulk ingest of the whole test set through the serving default —
  // the closed-loop frontend (decode a batch of fresh per-request vectors,
  // submit, drain, repeat; the model idles during every decode) vs a
  // runtime::Loader prefetching decoded batches into a recycled ring on a
  // worker thread and feeding the synchronous batch path through one reused
  // staging tensor. Same images, same engine, same variant.
  {
    const int batch = eng_opts.max_batch;
    const int bulk_batches = test.size() / batch;
    const int bulk_images = bulk_batches * batch;

    std::vector<double> closed_lat, loader_lat;
    const auto c0 = Clock::now();
    for (int b = 0; b < bulk_batches; ++b) {
      const auto tb = Clock::now();
      std::vector<std::future<runtime::Prediction>> futs;
      futs.reserve(static_cast<std::size_t>(batch));
      for (int i = 0; i < batch; ++i) {
        const int r = b * batch + i;
        std::vector<float> img(static_cast<std::size_t>(pixels));
        for (int p = 0; p < pixels; ++p)
          img[static_cast<std::size_t>(p)] = test.images.at(r, p);
        futs.push_back(engine.submit(std::move(img)));
      }
      for (auto& f : futs) {
        try {
          (void)f.get();
        } catch (const std::exception&) {
          // Tolerated: an armed fault schedule may fail bulk rows too.
        }
      }
      closed_lat.push_back(std::chrono::duration<double, std::milli>(Clock::now() - tb).count());
    }
    const double closed_s = std::chrono::duration<double>(Clock::now() - c0).count();

    runtime::LoaderOptions lopts;
    lopts.workers = 1;
    lopts.prefetch_batches = 3;
    lopts.batch_size = batch;
    runtime::Loader loader(
        [&](int index, float* dst) {
          std::memcpy(dst, test.images.data() + static_cast<std::size_t>(index) * pixels,
                      sizeof(float) * static_cast<std::size_t>(pixels));
        },
        bulk_images, pixels, lopts);
    nn::Tensor staging = nn::Tensor::uninitialized({batch, pixels});
    const auto l0 = Clock::now();
    for (;;) {
      const auto tb = Clock::now();
      const runtime::Loader::Batch b = loader.next();
      if (b.end()) break;
      std::memcpy(staging.data(), b.data,
                  sizeof(float) * static_cast<std::size_t>(b.size) * pixels);
      try {
        (void)engine.predict_batch(staging);
      } catch (const std::exception&) {
        // Tolerated under an armed fault schedule; the loader just moves on.
      }
      loader.recycle(b);
      loader_lat.push_back(std::chrono::duration<double, std::milli>(Clock::now() - tb).count());
    }
    const double loader_s = std::chrono::duration<double>(Clock::now() - l0).count();

    std::printf("\nbulk ingest, %d images through %s (batch %d):\n", bulk_images,
                engine.default_variant().c_str(), batch);
    std::printf("  %-22s %10.1f images/s   p50 %6.2f ms/batch\n", "closed-loop submit",
                bulk_images / closed_s, percentile(closed_lat, 0.50));
    std::printf("  %-22s %10.1f images/s   p50 %6.2f ms/batch   (%.2fx)\n", "prefetching loader",
                bulk_images / loader_s, percentile(loader_lat, 0.50), closed_s / loader_s);
  }

  // Server-side latency: the engine's own histograms, per (variant, priority).
  const runtime::metrics::RegistrySnapshot snap = engine.metrics()->snapshot();
  std::printf("\nengine latency histograms (ascend_request_latency_usec, <=3.2%% bucket error):\n");
  std::printf("  %-14s %-12s %9s %9s %9s %9s %8s\n", "variant", "priority", "p50 ms", "p95 ms",
              "p99 ms", "p99.9 ms", "count");
  for (const auto& id : registry->variant_ids()) {
    for (int p = 0; p < runtime::kNumPriorities; ++p) {
      const auto* h = snap.histogram(
          "ascend_request_latency_usec",
          {{"variant", id}, {"priority", runtime::priority_name(static_cast<runtime::Priority>(p))}});
      if (!h || h->count == 0) continue;
      std::printf("  %-14s %-12s %9.2f %9.2f %9.2f %9.2f %8llu\n", id.c_str(),
                  runtime::priority_name(static_cast<runtime::Priority>(p)),
                  h->quantile(0.50) / 1e3, h->quantile(0.95) / 1e3, h->quantile(0.99) / 1e3,
                  h->quantile(0.999) / 1e3, static_cast<unsigned long long>(h->count));
    }
  }

  std::printf("\n-- Prometheus scrape (final) --\n%s",
              engine.metrics()->render_prometheus().c_str());

  if (eng_opts.trace.enabled) {
    const auto slowest = engine.tracer().slowest();
    if (!slowest.empty()) {
      std::printf("\n-- slowest request on record (of %zu retained) --\n%s", slowest.size(),
                  runtime::trace::format_trace(slowest.front()).c_str());
    }
  } else {
    std::printf("\n(request tracing disabled via ASCEND_TRACE=0)\n");
  }
  ::unlink(ckpt_path.c_str());
  return 0;
}
