// sc_vit_inference — train a small W2-A2-R16 BN-ViT on the synthetic task,
// then run inference with the SC circuit blocks (iterative approximate
// softmax + gate-assisted SI GELU) swapped in, and compare against float.
//
// This is the end-to-end path a user of the accelerator model would take.

#include <cstdio>

#include "core/ascend.h"

using namespace ascend;
using namespace ascend::vit;

int main() {
  VitConfig cfg = VitConfig::bench_topology(10);
  cfg.dim = 48;
  cfg.layers = 3;

  const Dataset train = make_synthetic_vision(640, cfg.classes, 11);
  const Dataset test = make_synthetic_vision(240, cfg.classes, 12);

  std::printf("training a %d-layer/%d-head BN-ViT (dim %d, %d tokens)...\n", cfg.layers, cfg.heads,
              cfg.dim, cfg.tokens());
  VisionTransformer model(cfg, 3);
  TrainOptions opt;
  opt.epochs = 6;
  opt.lr = 2e-3f;
  opt.batch_size = 64;
  train_model(model, nullptr, train, opt);

  std::printf("quantizing to W2-A2-R16 and fine-tuning...\n");
  model.apply_precision(PrecisionSpec::w2a2r16());
  opt.epochs = 4;
  opt.lr = 1e-3f;
  train_model(model, nullptr, train, opt);

  const double float_acc = evaluate(model, test);
  std::printf("float (exact softmax/GELU) accuracy: %.2f%%\n", float_acc);

  ScInferenceConfig sc_cfg;
  sc_cfg.softmax.bx = 8;
  sc_cfg.softmax.alpha_x = 1.0;  // covers attention logits up to +-4
  sc_cfg.softmax.by = 32;
  sc_cfg.softmax.k = 3;
  sc_cfg.softmax.s1 = 4;
  sc_cfg.softmax.s2 = 2;
  sc_cfg.softmax.alpha_y = 3.0 / 32;  // y range +-1.5, step ~0.09
  sc_cfg.use_sc_gelu = true;
  sc_cfg.gelu_bsl = 16;
  sc_cfg.gelu_range = 4.0;
  const double sc_acc = evaluate_sc(model, test, sc_cfg);
  std::printf("SC-circuit (iter softmax By=%d k=%d + gate-SI GELU %db) accuracy: %.2f%%\n",
              sc_cfg.softmax.by, sc_cfg.softmax.k, sc_cfg.gelu_bsl, sc_acc);
  std::printf("accuracy delta: %+.2f points\n", sc_acc - float_acc);

  // What would this cost in silicon?
  core::AcceleratorConfig acfg;
  acfg.topology = cfg;
  acfg.softmax = sc_cfg.softmax;
  acfg.softmax.m = cfg.tokens();
  const core::AcceleratorReport rep = core::accelerator_area(acfg);
  std::printf("accelerator model: total %.3g um2 (softmax blocks %.3g um2, %.1f%%)\n",
              rep.total_area, rep.softmax_total_area, 100.0 * rep.softmax_fraction());
  return 0;
}
