// gelu_circuit_explorer — compare the four GELU circuit families at a chosen
// data BSL and print their transfer curves and hardware cost.
//
// Usage: gelu_circuit_explorer [data_bsl]      (default 4)

#include <cstdio>
#include <cstdlib>

#include "core/ascend.h"

using namespace ascend;

int main(int argc, char** argv) {
  const int b = (argc > 1) ? std::atoi(argv[1]) : 4;
  if (b < 2 || b % 2 != 0) {
    std::fprintf(stderr, "usage: %s [even data BSL >= 2]\n", argv[0]);
    return 1;
  }

  const sc::GateAssistedSI ours = sc::make_gelu_block(b);
  const auto naive = sc::SelectiveInterconnect::synthesize_best_monotone(
      sc::gelu_exact, ours.lin(), ours.lout(), ours.alpha_in(), ours.alpha_out());
  const sc::BernsteinGelu bern(4);
  sc::FsmGelu fsm(3.5);

  std::printf("GELU circuits at data BSL %d (input: %d wires, alpha %.4f; output scale %.4f)\n",
              b, ours.lin(), ours.alpha_in(), ours.alpha_out());
  std::printf("%8s %10s %10s %10s %10s %10s\n", "x", "gelu", "gate-SI", "naive-SI", "bern-1024b",
              "fsm-1024b");
  for (int i = 0; i <= 28; ++i) {
    const double x = -3.0 + 3.5 * i / 28.0;
    sc::LfsrSource sa(16, 0x10u + static_cast<std::uint32_t>(i));
    sc::LfsrSource sb(17, 0x20u + static_cast<std::uint32_t>(i));
    std::printf("%+8.3f %+10.4f %+10.4f %+10.4f %+10.4f %+10.4f\n", x, sc::gelu_exact(x),
                ours.transfer(x), naive.transfer(x),
                bern.eval_stochastic(x, 1024, static_cast<std::uint64_t>(i)),
                fsm.eval(x, 1024, sa, sb));
  }

  const hw::GateInventory ginv = hw::cost_gate_si(ours.lin(), ours.lout(), ours.total_intervals());
  const hw::GateInventory binv = hw::cost_bernstein(4, 1024);
  std::printf("\ngate-SI:  %s\n", ginv.summary().c_str());
  std::printf("bernstein: %s\n", binv.summary().c_str());
  std::printf("ADP advantage (bernstein/gate-SI): %.2fx\n", binv.adp() / ginv.adp());
  return 0;
}
