// train_pipeline — runs the full two-stage ASCEND training pipeline (Fig. 6)
// at a reduced scale and prints every Table V row for the synthetic task.

#include <cstdio>

#include "core/ascend.h"

using namespace ascend::vit;

int main() {
  PipelineOptions opt;
  opt.config = VitConfig::bench_topology(10);
  opt.config.dim = 48;
  opt.config.layers = 3;
  opt.stage_epochs = 4;
  opt.finetune_epochs = 2;
  opt.finetune_lr = 5e-5f;
  opt.verbose = true;

  const Dataset train = make_synthetic_vision(640, 10, 21);
  const Dataset test = make_synthetic_vision(240, 10, 22);

  std::printf("running the two-stage pipeline (progressive quantization + approx-softmax-aware "
              "fine-tuning)...\n");
  const PipelineResult res = run_ascend_pipeline(opt, train, test);

  std::printf("\n%-50s %s\n", "model", "accuracy");
  std::printf("%-50s %6.2f%%\n", "FP LN-ViT", res.acc_fp_ln);
  std::printf("%-50s %6.2f%%\n", "FP BN-ViT (LN->BN, KD)", res.acc_fp_bn);
  std::printf("%-50s %6.2f%%\n", "baseline direct W2-A2-R16", res.acc_baseline_direct);
  std::printf("%-50s %6.2f%%\n", "+ progressive quantization", res.acc_progressive);
  std::printf("%-50s %6.2f%%\n", "+ approximate softmax (no ft)", res.acc_approx);
  std::printf("%-50s %6.2f%%\n", "+ approx-aware fine-tuning", res.acc_approx_ft);
  return 0;
}
