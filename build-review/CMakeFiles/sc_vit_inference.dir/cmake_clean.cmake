file(REMOVE_RECURSE
  "CMakeFiles/sc_vit_inference.dir/examples/sc_vit_inference.cpp.o"
  "CMakeFiles/sc_vit_inference.dir/examples/sc_vit_inference.cpp.o.d"
  "sc_vit_inference"
  "sc_vit_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_vit_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
