# Empty dependencies file for sc_vit_inference.
# This may be replaced when dependencies are built.
