file(REMOVE_RECURSE
  "CMakeFiles/train_pipeline.dir/examples/train_pipeline.cpp.o"
  "CMakeFiles/train_pipeline.dir/examples/train_pipeline.cpp.o.d"
  "train_pipeline"
  "train_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
