# Empty dependencies file for train_pipeline.
# This may be replaced when dependencies are built.
