file(REMOVE_RECURSE
  "CMakeFiles/test_tensor_ops.dir/tests/test_tensor_ops.cpp.o"
  "CMakeFiles/test_tensor_ops.dir/tests/test_tensor_ops.cpp.o.d"
  "test_tensor_ops"
  "test_tensor_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
