# Empty compiler generated dependencies file for test_tensor_ops.
# This may be replaced when dependencies are built.
