file(REMOVE_RECURSE
  "CMakeFiles/core.dir/src/core/accelerator.cpp.o"
  "CMakeFiles/core.dir/src/core/accelerator.cpp.o.d"
  "CMakeFiles/core.dir/src/core/dse.cpp.o"
  "CMakeFiles/core.dir/src/core/dse.cpp.o.d"
  "libcore.a"
  "libcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
