file(REMOVE_RECURSE
  "CMakeFiles/test_therm_stream.dir/tests/test_therm_stream.cpp.o"
  "CMakeFiles/test_therm_stream.dir/tests/test_therm_stream.cpp.o.d"
  "test_therm_stream"
  "test_therm_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_therm_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
