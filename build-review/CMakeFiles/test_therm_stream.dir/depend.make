# Empty dependencies file for test_therm_stream.
# This may be replaced when dependencies are built.
