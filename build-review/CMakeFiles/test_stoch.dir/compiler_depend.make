# Empty compiler generated dependencies file for test_stoch.
# This may be replaced when dependencies are built.
