file(REMOVE_RECURSE
  "CMakeFiles/test_stoch.dir/tests/test_stoch.cpp.o"
  "CMakeFiles/test_stoch.dir/tests/test_stoch.cpp.o.d"
  "test_stoch"
  "test_stoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
