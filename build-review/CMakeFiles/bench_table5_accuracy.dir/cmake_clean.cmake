file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_accuracy.dir/bench/bench_table5_accuracy.cpp.o"
  "CMakeFiles/bench_table5_accuracy.dir/bench/bench_table5_accuracy.cpp.o.d"
  "bench_table5_accuracy"
  "bench_table5_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
