file(REMOVE_RECURSE
  "CMakeFiles/test_bsn.dir/tests/test_bsn.cpp.o"
  "CMakeFiles/test_bsn.dir/tests/test_bsn.cpp.o.d"
  "test_bsn"
  "test_bsn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
