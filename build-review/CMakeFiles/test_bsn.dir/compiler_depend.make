# Empty compiler generated dependencies file for test_bsn.
# This may be replaced when dependencies are built.
