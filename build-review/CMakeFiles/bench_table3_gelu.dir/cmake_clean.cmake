file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_gelu.dir/bench/bench_table3_gelu.cpp.o"
  "CMakeFiles/bench_table3_gelu.dir/bench/bench_table3_gelu.cpp.o.d"
  "bench_table3_gelu"
  "bench_table3_gelu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_gelu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
