# Empty dependencies file for bench_table3_gelu.
# This may be replaced when dependencies are built.
