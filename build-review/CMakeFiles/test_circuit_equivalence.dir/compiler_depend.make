# Empty compiler generated dependencies file for test_circuit_equivalence.
# This may be replaced when dependencies are built.
