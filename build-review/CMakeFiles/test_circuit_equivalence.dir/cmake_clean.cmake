file(REMOVE_RECURSE
  "CMakeFiles/test_circuit_equivalence.dir/tests/test_circuit_equivalence.cpp.o"
  "CMakeFiles/test_circuit_equivalence.dir/tests/test_circuit_equivalence.cpp.o.d"
  "test_circuit_equivalence"
  "test_circuit_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
