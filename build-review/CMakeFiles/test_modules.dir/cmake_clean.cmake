file(REMOVE_RECURSE
  "CMakeFiles/test_modules.dir/tests/test_modules.cpp.o"
  "CMakeFiles/test_modules.dir/tests/test_modules.cpp.o.d"
  "test_modules"
  "test_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
