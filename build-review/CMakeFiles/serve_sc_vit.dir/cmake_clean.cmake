file(REMOVE_RECURSE
  "CMakeFiles/serve_sc_vit.dir/examples/serve_sc_vit.cpp.o"
  "CMakeFiles/serve_sc_vit.dir/examples/serve_sc_vit.cpp.o.d"
  "serve_sc_vit"
  "serve_sc_vit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_sc_vit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
