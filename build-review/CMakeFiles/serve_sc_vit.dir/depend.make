# Empty dependencies file for serve_sc_vit.
# This may be replaced when dependencies are built.
