file(REMOVE_RECURSE
  "CMakeFiles/test_approx_softmax.dir/tests/test_approx_softmax.cpp.o"
  "CMakeFiles/test_approx_softmax.dir/tests/test_approx_softmax.cpp.o.d"
  "test_approx_softmax"
  "test_approx_softmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_approx_softmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
