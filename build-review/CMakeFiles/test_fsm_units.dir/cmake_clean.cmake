file(REMOVE_RECURSE
  "CMakeFiles/test_fsm_units.dir/tests/test_fsm_units.cpp.o"
  "CMakeFiles/test_fsm_units.dir/tests/test_fsm_units.cpp.o.d"
  "test_fsm_units"
  "test_fsm_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsm_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
