# Empty dependencies file for test_fsm_units.
# This may be replaced when dependencies are built.
