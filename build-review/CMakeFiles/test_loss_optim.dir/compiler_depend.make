# Empty compiler generated dependencies file for test_loss_optim.
# This may be replaced when dependencies are built.
