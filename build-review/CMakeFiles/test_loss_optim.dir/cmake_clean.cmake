file(REMOVE_RECURSE
  "CMakeFiles/test_loss_optim.dir/tests/test_loss_optim.cpp.o"
  "CMakeFiles/test_loss_optim.dir/tests/test_loss_optim.cpp.o.d"
  "test_loss_optim"
  "test_loss_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loss_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
