
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_loss_optim.cpp" "CMakeFiles/test_loss_optim.dir/tests/test_loss_optim.cpp.o" "gcc" "CMakeFiles/test_loss_optim.dir/tests/test_loss_optim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/core.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/hw.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/vit.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/nn.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/sc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
