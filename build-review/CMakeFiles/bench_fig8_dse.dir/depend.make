# Empty dependencies file for bench_fig8_dse.
# This may be replaced when dependencies are built.
