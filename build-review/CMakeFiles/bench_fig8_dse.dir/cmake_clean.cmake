file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_dse.dir/bench/bench_fig8_dse.cpp.o"
  "CMakeFiles/bench_fig8_dse.dir/bench/bench_fig8_dse.cpp.o.d"
  "bench_fig8_dse"
  "bench_fig8_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
