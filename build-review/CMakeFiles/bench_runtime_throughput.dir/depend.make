# Empty dependencies file for bench_runtime_throughput.
# This may be replaced when dependencies are built.
