file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_throughput.dir/bench/bench_runtime_throughput.cpp.o"
  "CMakeFiles/bench_runtime_throughput.dir/bench/bench_runtime_throughput.cpp.o.d"
  "bench_runtime_throughput"
  "bench_runtime_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
