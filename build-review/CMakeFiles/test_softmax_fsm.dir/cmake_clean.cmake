file(REMOVE_RECURSE
  "CMakeFiles/test_softmax_fsm.dir/tests/test_softmax_fsm.cpp.o"
  "CMakeFiles/test_softmax_fsm.dir/tests/test_softmax_fsm.cpp.o.d"
  "test_softmax_fsm"
  "test_softmax_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softmax_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
