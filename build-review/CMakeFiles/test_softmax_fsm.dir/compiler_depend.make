# Empty compiler generated dependencies file for test_softmax_fsm.
# This may be replaced when dependencies are built.
