# Empty compiler generated dependencies file for test_therm_arith.
# This may be replaced when dependencies are built.
