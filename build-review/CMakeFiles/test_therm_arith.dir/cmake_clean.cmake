file(REMOVE_RECURSE
  "CMakeFiles/test_therm_arith.dir/tests/test_therm_arith.cpp.o"
  "CMakeFiles/test_therm_arith.dir/tests/test_therm_arith.cpp.o.d"
  "test_therm_arith"
  "test_therm_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_therm_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
