
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cell_library.cpp" "CMakeFiles/hw.dir/src/hw/cell_library.cpp.o" "gcc" "CMakeFiles/hw.dir/src/hw/cell_library.cpp.o.d"
  "/root/repo/src/hw/cost_model.cpp" "CMakeFiles/hw.dir/src/hw/cost_model.cpp.o" "gcc" "CMakeFiles/hw.dir/src/hw/cost_model.cpp.o.d"
  "/root/repo/src/hw/gate_inventory.cpp" "CMakeFiles/hw.dir/src/hw/gate_inventory.cpp.o" "gcc" "CMakeFiles/hw.dir/src/hw/gate_inventory.cpp.o.d"
  "/root/repo/src/hw/report.cpp" "CMakeFiles/hw.dir/src/hw/report.cpp.o" "gcc" "CMakeFiles/hw.dir/src/hw/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/sc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
