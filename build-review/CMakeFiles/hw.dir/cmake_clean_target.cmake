file(REMOVE_RECURSE
  "libhw.a"
)
