file(REMOVE_RECURSE
  "CMakeFiles/hw.dir/src/hw/cell_library.cpp.o"
  "CMakeFiles/hw.dir/src/hw/cell_library.cpp.o.d"
  "CMakeFiles/hw.dir/src/hw/cost_model.cpp.o"
  "CMakeFiles/hw.dir/src/hw/cost_model.cpp.o.d"
  "CMakeFiles/hw.dir/src/hw/gate_inventory.cpp.o"
  "CMakeFiles/hw.dir/src/hw/gate_inventory.cpp.o.d"
  "CMakeFiles/hw.dir/src/hw/report.cpp.o"
  "CMakeFiles/hw.dir/src/hw/report.cpp.o.d"
  "libhw.a"
  "libhw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
