# Empty dependencies file for hw.
# This may be replaced when dependencies are built.
