# Empty dependencies file for test_bernstein.
# This may be replaced when dependencies are built.
