file(REMOVE_RECURSE
  "CMakeFiles/test_bernstein.dir/tests/test_bernstein.cpp.o"
  "CMakeFiles/test_bernstein.dir/tests/test_bernstein.cpp.o.d"
  "test_bernstein"
  "test_bernstein.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bernstein.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
