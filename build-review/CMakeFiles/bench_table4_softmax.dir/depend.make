# Empty dependencies file for bench_table4_softmax.
# This may be replaced when dependencies are built.
