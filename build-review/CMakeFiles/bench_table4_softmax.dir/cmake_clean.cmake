file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_softmax.dir/bench/bench_table4_softmax.cpp.o"
  "CMakeFiles/bench_table4_softmax.dir/bench/bench_table4_softmax.cpp.o.d"
  "bench_table4_softmax"
  "bench_table4_softmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_softmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
