file(REMOVE_RECURSE
  "CMakeFiles/test_sng.dir/tests/test_sng.cpp.o"
  "CMakeFiles/test_sng.dir/tests/test_sng.cpp.o.d"
  "test_sng"
  "test_sng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
