# Empty compiler generated dependencies file for test_sng.
# This may be replaced when dependencies are built.
