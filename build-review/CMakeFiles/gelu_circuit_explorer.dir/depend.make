# Empty dependencies file for gelu_circuit_explorer.
# This may be replaced when dependencies are built.
