file(REMOVE_RECURSE
  "CMakeFiles/gelu_circuit_explorer.dir/examples/gelu_circuit_explorer.cpp.o"
  "CMakeFiles/gelu_circuit_explorer.dir/examples/gelu_circuit_explorer.cpp.o.d"
  "gelu_circuit_explorer"
  "gelu_circuit_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gelu_circuit_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
