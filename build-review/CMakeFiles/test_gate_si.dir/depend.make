# Empty dependencies file for test_gate_si.
# This may be replaced when dependencies are built.
