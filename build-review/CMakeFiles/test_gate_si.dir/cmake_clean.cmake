file(REMOVE_RECURSE
  "CMakeFiles/test_gate_si.dir/tests/test_gate_si.cpp.o"
  "CMakeFiles/test_gate_si.dir/tests/test_gate_si.cpp.o.d"
  "test_gate_si"
  "test_gate_si.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gate_si.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
