file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_accelerator.dir/bench/bench_table6_accelerator.cpp.o"
  "CMakeFiles/bench_table6_accelerator.dir/bench/bench_table6_accelerator.cpp.o.d"
  "bench_table6_accelerator"
  "bench_table6_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
