file(REMOVE_RECURSE
  "CMakeFiles/test_accelerator_dse.dir/tests/test_accelerator_dse.cpp.o"
  "CMakeFiles/test_accelerator_dse.dir/tests/test_accelerator_dse.cpp.o.d"
  "test_accelerator_dse"
  "test_accelerator_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accelerator_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
