# Empty dependencies file for test_accelerator_dse.
# This may be replaced when dependencies are built.
