# Empty dependencies file for test_sc_inference.
# This may be replaced when dependencies are built.
