file(REMOVE_RECURSE
  "CMakeFiles/test_sc_inference.dir/tests/test_sc_inference.cpp.o"
  "CMakeFiles/test_sc_inference.dir/tests/test_sc_inference.cpp.o.d"
  "test_sc_inference"
  "test_sc_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sc_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
