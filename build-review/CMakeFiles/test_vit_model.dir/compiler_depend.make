# Empty compiler generated dependencies file for test_vit_model.
# This may be replaced when dependencies are built.
