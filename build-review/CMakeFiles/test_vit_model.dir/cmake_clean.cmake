file(REMOVE_RECURSE
  "CMakeFiles/test_vit_model.dir/tests/test_vit_model.cpp.o"
  "CMakeFiles/test_vit_model.dir/tests/test_vit_model.cpp.o.d"
  "test_vit_model"
  "test_vit_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vit_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
