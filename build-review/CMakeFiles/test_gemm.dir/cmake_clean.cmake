file(REMOVE_RECURSE
  "CMakeFiles/test_gemm.dir/tests/test_gemm.cpp.o"
  "CMakeFiles/test_gemm.dir/tests/test_gemm.cpp.o.d"
  "test_gemm"
  "test_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
