# Empty compiler generated dependencies file for bench_fig2_gelu_curves.
# This may be replaced when dependencies are built.
