file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_gelu_curves.dir/bench/bench_fig2_gelu_curves.cpp.o"
  "CMakeFiles/bench_fig2_gelu_curves.dir/bench/bench_fig2_gelu_curves.cpp.o.d"
  "bench_fig2_gelu_curves"
  "bench_fig2_gelu_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_gelu_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
