file(REMOVE_RECURSE
  "CMakeFiles/test_softmax_iter.dir/tests/test_softmax_iter.cpp.o"
  "CMakeFiles/test_softmax_iter.dir/tests/test_softmax_iter.cpp.o.d"
  "test_softmax_iter"
  "test_softmax_iter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softmax_iter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
