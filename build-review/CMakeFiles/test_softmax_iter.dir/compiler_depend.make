# Empty compiler generated dependencies file for test_softmax_iter.
# This may be replaced when dependencies are built.
