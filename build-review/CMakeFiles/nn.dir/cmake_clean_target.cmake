file(REMOVE_RECURSE
  "libnn.a"
)
