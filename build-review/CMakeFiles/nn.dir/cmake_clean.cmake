file(REMOVE_RECURSE
  "CMakeFiles/nn.dir/src/nn/approx_softmax.cpp.o"
  "CMakeFiles/nn.dir/src/nn/approx_softmax.cpp.o.d"
  "CMakeFiles/nn.dir/src/nn/attention.cpp.o"
  "CMakeFiles/nn.dir/src/nn/attention.cpp.o.d"
  "CMakeFiles/nn.dir/src/nn/gemm.cpp.o"
  "CMakeFiles/nn.dir/src/nn/gemm.cpp.o.d"
  "CMakeFiles/nn.dir/src/nn/loss.cpp.o"
  "CMakeFiles/nn.dir/src/nn/loss.cpp.o.d"
  "CMakeFiles/nn.dir/src/nn/module.cpp.o"
  "CMakeFiles/nn.dir/src/nn/module.cpp.o.d"
  "CMakeFiles/nn.dir/src/nn/ops.cpp.o"
  "CMakeFiles/nn.dir/src/nn/ops.cpp.o.d"
  "CMakeFiles/nn.dir/src/nn/optim.cpp.o"
  "CMakeFiles/nn.dir/src/nn/optim.cpp.o.d"
  "CMakeFiles/nn.dir/src/nn/quant.cpp.o"
  "CMakeFiles/nn.dir/src/nn/quant.cpp.o.d"
  "CMakeFiles/nn.dir/src/nn/tensor.cpp.o"
  "CMakeFiles/nn.dir/src/nn/tensor.cpp.o.d"
  "libnn.a"
  "libnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
