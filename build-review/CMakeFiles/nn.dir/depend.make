# Empty dependencies file for nn.
# This may be replaced when dependencies are built.
