
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/approx_softmax.cpp" "CMakeFiles/nn.dir/src/nn/approx_softmax.cpp.o" "gcc" "CMakeFiles/nn.dir/src/nn/approx_softmax.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "CMakeFiles/nn.dir/src/nn/attention.cpp.o" "gcc" "CMakeFiles/nn.dir/src/nn/attention.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "CMakeFiles/nn.dir/src/nn/gemm.cpp.o" "gcc" "CMakeFiles/nn.dir/src/nn/gemm.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "CMakeFiles/nn.dir/src/nn/loss.cpp.o" "gcc" "CMakeFiles/nn.dir/src/nn/loss.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "CMakeFiles/nn.dir/src/nn/module.cpp.o" "gcc" "CMakeFiles/nn.dir/src/nn/module.cpp.o.d"
  "/root/repo/src/nn/ops.cpp" "CMakeFiles/nn.dir/src/nn/ops.cpp.o" "gcc" "CMakeFiles/nn.dir/src/nn/ops.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "CMakeFiles/nn.dir/src/nn/optim.cpp.o" "gcc" "CMakeFiles/nn.dir/src/nn/optim.cpp.o.d"
  "/root/repo/src/nn/quant.cpp" "CMakeFiles/nn.dir/src/nn/quant.cpp.o" "gcc" "CMakeFiles/nn.dir/src/nn/quant.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "CMakeFiles/nn.dir/src/nn/tensor.cpp.o" "gcc" "CMakeFiles/nn.dir/src/nn/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/sc.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/vit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
