
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sc/bernstein.cpp" "CMakeFiles/sc.dir/src/sc/bernstein.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/bernstein.cpp.o.d"
  "/root/repo/src/sc/bitvec.cpp" "CMakeFiles/sc.dir/src/sc/bitvec.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/bitvec.cpp.o.d"
  "/root/repo/src/sc/bsn.cpp" "CMakeFiles/sc.dir/src/sc/bsn.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/bsn.cpp.o.d"
  "/root/repo/src/sc/fsm_units.cpp" "CMakeFiles/sc.dir/src/sc/fsm_units.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/fsm_units.cpp.o.d"
  "/root/repo/src/sc/gate_si.cpp" "CMakeFiles/sc.dir/src/sc/gate_si.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/gate_si.cpp.o.d"
  "/root/repo/src/sc/si.cpp" "CMakeFiles/sc.dir/src/sc/si.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/si.cpp.o.d"
  "/root/repo/src/sc/sng.cpp" "CMakeFiles/sc.dir/src/sc/sng.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/sng.cpp.o.d"
  "/root/repo/src/sc/softmax_fsm.cpp" "CMakeFiles/sc.dir/src/sc/softmax_fsm.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/softmax_fsm.cpp.o.d"
  "/root/repo/src/sc/softmax_iter.cpp" "CMakeFiles/sc.dir/src/sc/softmax_iter.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/softmax_iter.cpp.o.d"
  "/root/repo/src/sc/stoch_arith.cpp" "CMakeFiles/sc.dir/src/sc/stoch_arith.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/stoch_arith.cpp.o.d"
  "/root/repo/src/sc/stoch_stream.cpp" "CMakeFiles/sc.dir/src/sc/stoch_stream.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/stoch_stream.cpp.o.d"
  "/root/repo/src/sc/therm_arith.cpp" "CMakeFiles/sc.dir/src/sc/therm_arith.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/therm_arith.cpp.o.d"
  "/root/repo/src/sc/therm_stream.cpp" "CMakeFiles/sc.dir/src/sc/therm_stream.cpp.o" "gcc" "CMakeFiles/sc.dir/src/sc/therm_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
