# Empty dependencies file for sc.
# This may be replaced when dependencies are built.
