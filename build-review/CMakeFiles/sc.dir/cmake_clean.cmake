file(REMOVE_RECURSE
  "CMakeFiles/sc.dir/src/sc/bernstein.cpp.o"
  "CMakeFiles/sc.dir/src/sc/bernstein.cpp.o.d"
  "CMakeFiles/sc.dir/src/sc/bitvec.cpp.o"
  "CMakeFiles/sc.dir/src/sc/bitvec.cpp.o.d"
  "CMakeFiles/sc.dir/src/sc/bsn.cpp.o"
  "CMakeFiles/sc.dir/src/sc/bsn.cpp.o.d"
  "CMakeFiles/sc.dir/src/sc/fsm_units.cpp.o"
  "CMakeFiles/sc.dir/src/sc/fsm_units.cpp.o.d"
  "CMakeFiles/sc.dir/src/sc/gate_si.cpp.o"
  "CMakeFiles/sc.dir/src/sc/gate_si.cpp.o.d"
  "CMakeFiles/sc.dir/src/sc/si.cpp.o"
  "CMakeFiles/sc.dir/src/sc/si.cpp.o.d"
  "CMakeFiles/sc.dir/src/sc/sng.cpp.o"
  "CMakeFiles/sc.dir/src/sc/sng.cpp.o.d"
  "CMakeFiles/sc.dir/src/sc/softmax_fsm.cpp.o"
  "CMakeFiles/sc.dir/src/sc/softmax_fsm.cpp.o.d"
  "CMakeFiles/sc.dir/src/sc/softmax_iter.cpp.o"
  "CMakeFiles/sc.dir/src/sc/softmax_iter.cpp.o.d"
  "CMakeFiles/sc.dir/src/sc/stoch_arith.cpp.o"
  "CMakeFiles/sc.dir/src/sc/stoch_arith.cpp.o.d"
  "CMakeFiles/sc.dir/src/sc/stoch_stream.cpp.o"
  "CMakeFiles/sc.dir/src/sc/stoch_stream.cpp.o.d"
  "CMakeFiles/sc.dir/src/sc/therm_arith.cpp.o"
  "CMakeFiles/sc.dir/src/sc/therm_arith.cpp.o.d"
  "CMakeFiles/sc.dir/src/sc/therm_stream.cpp.o"
  "CMakeFiles/sc.dir/src/sc/therm_stream.cpp.o.d"
  "libsc.a"
  "libsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
