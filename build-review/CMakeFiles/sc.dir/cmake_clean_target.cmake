file(REMOVE_RECURSE
  "libsc.a"
)
