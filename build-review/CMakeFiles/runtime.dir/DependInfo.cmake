
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/batcher.cpp" "CMakeFiles/runtime.dir/src/runtime/batcher.cpp.o" "gcc" "CMakeFiles/runtime.dir/src/runtime/batcher.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "CMakeFiles/runtime.dir/src/runtime/engine.cpp.o" "gcc" "CMakeFiles/runtime.dir/src/runtime/engine.cpp.o.d"
  "/root/repo/src/runtime/tf_cache.cpp" "CMakeFiles/runtime.dir/src/runtime/tf_cache.cpp.o" "gcc" "CMakeFiles/runtime.dir/src/runtime/tf_cache.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "CMakeFiles/runtime.dir/src/runtime/thread_pool.cpp.o" "gcc" "CMakeFiles/runtime.dir/src/runtime/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/vit.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/nn.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/sc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
