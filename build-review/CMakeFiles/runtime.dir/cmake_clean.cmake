file(REMOVE_RECURSE
  "CMakeFiles/runtime.dir/src/runtime/batcher.cpp.o"
  "CMakeFiles/runtime.dir/src/runtime/batcher.cpp.o.d"
  "CMakeFiles/runtime.dir/src/runtime/engine.cpp.o"
  "CMakeFiles/runtime.dir/src/runtime/engine.cpp.o.d"
  "CMakeFiles/runtime.dir/src/runtime/tf_cache.cpp.o"
  "CMakeFiles/runtime.dir/src/runtime/tf_cache.cpp.o.d"
  "CMakeFiles/runtime.dir/src/runtime/thread_pool.cpp.o"
  "CMakeFiles/runtime.dir/src/runtime/thread_pool.cpp.o.d"
  "libruntime.a"
  "libruntime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
