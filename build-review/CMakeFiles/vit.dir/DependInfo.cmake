
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vit/config.cpp" "CMakeFiles/vit.dir/src/vit/config.cpp.o" "gcc" "CMakeFiles/vit.dir/src/vit/config.cpp.o.d"
  "/root/repo/src/vit/dataset.cpp" "CMakeFiles/vit.dir/src/vit/dataset.cpp.o" "gcc" "CMakeFiles/vit.dir/src/vit/dataset.cpp.o.d"
  "/root/repo/src/vit/model.cpp" "CMakeFiles/vit.dir/src/vit/model.cpp.o" "gcc" "CMakeFiles/vit.dir/src/vit/model.cpp.o.d"
  "/root/repo/src/vit/sc_inference.cpp" "CMakeFiles/vit.dir/src/vit/sc_inference.cpp.o" "gcc" "CMakeFiles/vit.dir/src/vit/sc_inference.cpp.o.d"
  "/root/repo/src/vit/train.cpp" "CMakeFiles/vit.dir/src/vit/train.cpp.o" "gcc" "CMakeFiles/vit.dir/src/vit/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/nn.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/sc.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
