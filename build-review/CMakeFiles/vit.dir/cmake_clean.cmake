file(REMOVE_RECURSE
  "CMakeFiles/vit.dir/src/vit/config.cpp.o"
  "CMakeFiles/vit.dir/src/vit/config.cpp.o.d"
  "CMakeFiles/vit.dir/src/vit/dataset.cpp.o"
  "CMakeFiles/vit.dir/src/vit/dataset.cpp.o.d"
  "CMakeFiles/vit.dir/src/vit/model.cpp.o"
  "CMakeFiles/vit.dir/src/vit/model.cpp.o.d"
  "CMakeFiles/vit.dir/src/vit/sc_inference.cpp.o"
  "CMakeFiles/vit.dir/src/vit/sc_inference.cpp.o.d"
  "CMakeFiles/vit.dir/src/vit/train.cpp.o"
  "CMakeFiles/vit.dir/src/vit/train.cpp.o.d"
  "libvit.a"
  "libvit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
