file(REMOVE_RECURSE
  "libvit.a"
)
