# Empty dependencies file for vit.
# This may be replaced when dependencies are built.
