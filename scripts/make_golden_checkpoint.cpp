// make_golden_checkpoint — regenerates the committed format-compatibility
// fixtures under tests/data/:
//   golden_vit.ckpt    — a tiny calibrated W2-A2-R16 model, format version 1
//   golden_input.bin   — a fixed input batch  (u32 rows, u32 cols, f32 data)
//   golden_logits.bin  — that batch's logits from the model that was saved
//
// The fixtures pin the on-disk format: test_serialize's Golden battery loads
// the committed checkpoint with today's reader and checks the logits, so any
// accidental layout change breaks CI instead of silently orphaning every
// previously written checkpoint. Regenerate ONLY on an intentional format
// bump (see docs/checkpoint.md), and commit all three files together:
//
//   cmake --build build --target make_golden_checkpoint
//   ./build/make_golden_checkpoint
//
// The inputs/logits are committed rather than re-derived at test time so the
// test never depends on cross-platform reproducibility of the generator's
// random streams — only on the bytes in the repo.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "nn/rng.h"
#include "serialize/model_io.h"
#include "vit/model.h"

namespace {

void write_matrix(const std::string& path, const ascend::nn::Tensor& t) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  const auto rows = static_cast<std::uint32_t>(t.dim(0));
  const auto cols = static_cast<std::uint32_t>(t.dim(1));
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

int main() {
  using namespace ascend;

  // Same tiny topology the unit tests use: small enough that the committed
  // checkpoint stays a few tens of kilobytes.
  vit::VitConfig cfg;
  cfg.image_size = 16;
  cfg.patch_size = 8;
  cfg.channels = 3;
  cfg.dim = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.mlp_ratio = 2;
  cfg.classes = 4;

  vit::VisionTransformer model(cfg, /*seed=*/42);
  model.apply_precision(vit::PrecisionSpec::w2a2r16());

  // One eval-mode forward calibrates every LSQ step (Linear's forward always
  // runs the quantizer training path), giving the checkpoint non-trivial
  // calibration state and frozen packed planes to carry.
  nn::Rng rng(7);
  nn::Tensor calib({8, cfg.patch_dim() * cfg.tokens()});
  rng.fill_uniform(calib, 0.0f, 1.0f);
  model.forward(calib, /*training=*/false);

  const std::string dir = std::string(ASCEND_SOURCE_DIR) + "/tests/data";
  serialize::save_model(model, dir + "/golden_vit.ckpt");

  nn::Tensor input({4, cfg.patch_dim() * cfg.tokens()});
  rng.fill_uniform(input, 0.0f, 1.0f);
  write_matrix(dir + "/golden_input.bin", input);
  write_matrix(dir + "/golden_logits.bin", model.infer(input));

  std::printf("wrote golden fixtures to %s\n", dir.c_str());
  return 0;
}
