#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Scans every tracked *.md file (or every *.md outside build dirs when not in
a git checkout) for inline links/images `[text](target)` and fails when a
relative target does not exist on disk. External schemes (http, https,
mailto) and pure in-page anchors are skipped; `target#anchor` is checked as
`target`. Exit status: 0 = all links resolve, 1 = dangling links listed on
stdout.
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {"build", "build-tsan", ".git"}
# Inline markdown link/image. Deliberately simple: no nested parens in URLs.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files():
    try:
        out = subprocess.run(
            ["git", "ls-files", "--cached", "--others", "--exclude-standard",
             "*.md", "**/*.md"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout
        files = [f for f in out.splitlines() if f.strip()]
        if files:
            return sorted(set(files))
    except (subprocess.CalledProcessError, FileNotFoundError):
        pass
    files = []
    for root, dirs, names in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS]
        for name in names:
            if name.endswith(".md"):
                files.append(os.path.relpath(os.path.join(root, name), REPO))
    return sorted(files)


def main():
    dangling = []
    files = markdown_files()
    checked = 0
    for rel in files:
        path = os.path.join(REPO, rel)
        try:
            text = open(path, encoding="utf-8").read()
        except OSError as err:
            dangling.append((rel, "<unreadable>", str(err)))
            continue
        # Strip fenced code blocks: sample snippets aren't navigation.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            checked += 1
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), target_path))
            if not os.path.exists(resolved):
                dangling.append((rel, target, os.path.relpath(resolved, REPO)))
    if dangling:
        print(f"{len(dangling)} dangling markdown link(s):")
        for rel, target, resolved in dangling:
            print(f"  {rel}: ({target}) -> missing {resolved}")
        return 1
    print(f"OK: {checked} intra-repo links across {len(files)} markdown files resolve.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
