#!/usr/bin/env python3
"""Diff committed bench results against a fresh run and gate regressions.

Usage:
    bench_compare.py --committed BENCH_runtime.json --fresh fresh.json \
                     [--fresh more.json ...] [--max-regression 0.30]

The committed file is the checked-in BENCH_runtime.json; each --fresh file is
the --json output of a bench binary from the current build. Only keys present
in BOTH files are compared (a bench that did not run simply contributes
nothing).

Two classes of series are GATED (the script exits 1 on a breach):

  * host-robust ratios and exact counts (GATED_SERIES below): speedup ratios,
    shedding retention, alloc-per-forward counts, lost-request counts. These
    are dimensionless or exact, so they hold across runner hardware.
  * zero-baseline counts: when the committed value is 0 (e.g. zero allocs per
    forward, zero lost requests), ANY fresh value above 0 fails — an
    invariant, not a tolerance.

Everything else (raw images/s, GFLOPS, latency ms) is host-dependent and is
reported but never gated: CI runners differ too much for absolute thresholds
to be signal rather than noise.
"""

from __future__ import annotations

import argparse
import json
import sys

# name -> direction: "higher" means a drop by more than --max-regression
# fails; "lower" means a rise by more than --max-regression fails.
GATED_SERIES = {
    "lut_cache_speedup": "higher",
    "ingest_loader_speedup": "higher",
    "frontdoor_shed_goodput_retention": "higher",
    "allocs_per_forward_arena_sc_lut": "lower",
    "allocs_per_forward_arena_w2a2_packed": "lower",
    "frontdoor_rolling_lost": "lower",
    "frontdoor_rolling_publish_committed": "higher",
    "frontdoor_drain_clean": "higher",
}


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a flat JSON object")
    return data


def numeric(value) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--committed", required=True, help="checked-in BENCH_runtime.json")
    ap.add_argument("--fresh", action="append", required=True,
                    help="fresh --json output (repeatable)")
    ap.add_argument("--max-regression", type=float, default=0.30,
                    help="relative change gated series may move in the bad "
                         "direction (default 0.30)")
    args = ap.parse_args()

    committed = load(args.committed)
    fresh: dict = {}
    for path in args.fresh:
        fresh.update(load(path))

    failures: list[str] = []
    compared = 0
    print(f"{'series':48s} {'committed':>12s} {'fresh':>12s} {'change':>9s}  verdict")
    for key in sorted(set(committed) & set(fresh)):
        old, new = numeric(committed[key]), numeric(fresh[key])
        if old is None or new is None:
            continue
        compared += 1
        direction = GATED_SERIES.get(key)
        change = (new - old) / abs(old) if old != 0 else float("inf") if new != 0 else 0.0
        change_str = f"{change:+8.1%}" if change not in (float("inf"),) else "  +inf"

        verdict = "info"
        if direction is not None:
            verdict = "ok"
            if old == 0:
                # Zero baseline is an invariant: any nonzero fresh value in
                # the bad direction fails regardless of tolerance.
                bad = new > 0 if direction == "lower" else new < 0
                if bad:
                    verdict = "FAIL"
            else:
                bad_change = -change if direction == "higher" else change
                if bad_change > args.max_regression:
                    verdict = "FAIL"
            if verdict == "FAIL":
                failures.append(
                    f"{key}: committed {old:g} -> fresh {new:g} "
                    f"(gated '{direction}', tolerance {args.max_regression:.0%})")
        print(f"{key:48s} {old:12g} {new:12g} {change_str:>9s}  {verdict}")

    print(f"\n{compared} series compared, {len(GATED_SERIES)} gate definitions, "
          f"{len(failures)} failure(s)")
    if compared == 0:
        print("error: no overlapping numeric series between committed and fresh files",
              file=sys.stderr)
        return 1
    for f in failures:
        print(f"REGRESSION: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
