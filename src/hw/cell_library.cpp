#include "hw/cell_library.h"

#include <stdexcept>

namespace ascend::hw {
namespace {

// Areas are drawn-cell area times a ~2.2x synthesis overhead (routing,
// buffering, utilisation), which is what lands block totals in the same
// regime as the paper's DC results.
constexpr CellSpec kLibrary[] = {
    {"INV", 0.9, 0.015},
    {"NAND2", 1.3, 0.020},
    {"NOR2", 1.3, 0.022},
    {"AND2", 1.8, 0.030},
    {"OR2", 1.8, 0.030},
    {"XOR2", 2.8, 0.045},
    {"MUX2", 3.2, 0.040},
    {"DFF", 9.8, 0.120},
    {"FA", 12.0, 0.080},
    {"TIE", 0.4, 0.000},
    {"XPOINT", 10.1, 0.025},
};

static_assert(sizeof(kLibrary) / sizeof(kLibrary[0]) == static_cast<int>(Cell::kCount),
              "cell library table out of sync with Cell enum");

}  // namespace

const CellSpec& cell_spec(Cell c) {
  const int idx = static_cast<int>(c);
  if (idx < 0 || idx >= static_cast<int>(Cell::kCount))
    throw std::out_of_range("cell_spec: bad cell kind");
  return kLibrary[idx];
}

}  // namespace ascend::hw
