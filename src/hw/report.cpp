#include "hw/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace ascend::hw {

std::string sci(double v, int significant) {
  std::ostringstream os;
  if (v == 0.0) return "0";
  const double a = std::fabs(v);
  if (a >= 0.01 && a < 10000.0) {
    os << std::setprecision(significant + 2) << std::defaultfloat << v;
  } else {
    os << std::setprecision(significant - 1) << std::scientific << v;
  }
  return os.str();
}

std::string format_metrics_table(const std::string& title, const std::vector<BlockMetrics>& rows) {
  std::vector<std::vector<std::string>> cells;
  cells.push_back({"Design", "Variant", "Area(um2)", "Delay(ns)", "ADP(um2*ns)", "MAE"});
  for (const auto& r : rows)
    cells.push_back({r.design, r.variant, sci(r.area_um2), sci(r.delay_ns), sci(r.adp()),
                     sci(r.mae, 3)});

  std::vector<std::size_t> width(cells[0].size(), 0);
  for (const auto& row : cells)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  os << "== " << title << " ==\n";
  for (std::size_t r = 0; r < cells.size(); ++r) {
    for (std::size_t c = 0; c < cells[r].size(); ++c)
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[r][c];
    os << "\n";
    if (r == 0) {
      std::size_t total = 0;
      for (auto w : width) total += w + 2;
      os << std::string(total, '-') << "\n";
    }
  }
  return os.str();
}

}  // namespace ascend::hw
