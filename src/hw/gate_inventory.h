#pragma once
// gate_inventory.h — gate multiset + critical path for one hardware block.

#include <array>
#include <cstddef>
#include <string>

#include "hw/cell_library.h"

namespace ascend::hw {

/// A lowered hardware block: how many of each cell, plus either a
/// combinational critical-path delay or a (cycles x clock period) latency.
class GateInventory {
 public:
  GateInventory() { counts_.fill(0); }

  void add(Cell c, std::size_t n = 1) { counts_[static_cast<std::size_t>(c)] += n; }
  /// Merge another block into this one (areas add; delay handled by caller).
  GateInventory& operator+=(const GateInventory& o);

  std::size_t count(Cell c) const { return counts_[static_cast<std::size_t>(c)]; }
  std::size_t total_cells() const;

  double area_um2() const;

  /// Combinational path: `depth` stages of `per_stage` cell delay.
  void set_combinational_delay(double ns) { delay_ns_ = ns; }
  void add_combinational_delay(double ns) { delay_ns_ += ns; }
  /// Serial path: cycles at a given clock period.
  void set_serial_delay(std::size_t cycles, double clock_ns) {
    delay_ns_ = static_cast<double>(cycles) * clock_ns;
  }
  double delay_ns() const { return delay_ns_; }

  double adp() const { return area_um2() * delay_ns_; }

  std::string summary() const;

 private:
  std::array<std::size_t, static_cast<std::size_t>(Cell::kCount)> counts_{};
  double delay_ns_ = 0.0;
};

}  // namespace ascend::hw
