#pragma once
// cost_model.h — lowering of every SC block in this repo to a GateInventory.
//
// Parallel (thermometer) blocks are combinational: their delay is the gate
// depth along the critical path. Serial (stochastic) blocks run for BSL
// cycles of the corresponding clock (cell_library.h). See DESIGN.md for the
// substitution rationale versus the paper's Synopsys DC + TSMC 28 nm flow.

#include "hw/gate_inventory.h"
#include "sc/softmax_iter.h"

namespace ascend::hw {

// --- Thermometer datapath primitives ---------------------------------------

/// Bitonic sorting network over n bit wires (compare-exchange = OR + AND).
GateInventory cost_bsn(std::size_t n);

/// Merge-tree BSN adder: sums already-sorted bundles of width `leaf` into a
/// sorted bundle of width n with bitonic mergers instead of a full sorter.
GateInventory cost_bsn_merge(std::size_t n, std::size_t leaf);

/// Truth-table thermometer multiplier, La x Lb inputs -> La*Lb/2 outputs.
GateInventory cost_therm_mult(int la, int lb);

/// Re-scaling block of [15]: expansion fan-out, sub-sample taps, SI clamp.
GateInventory cost_rescaler(int lin, int lout);

// --- Nonlinear function blocks ----------------------------------------------

/// Naive SI: single-ended selection fabric, wiring only.
GateInventory cost_naive_si(int lin, int lout);

/// Gate-assisted SI (ASCEND GELU block): differential selection fabric plus
/// the assist gates (`intervals` = GateAssistedSI::total_intervals()).
GateInventory cost_gate_si(int lin, int lout, int intervals);

/// ReSC Bernstein-polynomial unit, serial over `bsl` cycles.
GateInventory cost_bernstein(int terms, int bsl);

/// Serial FSM activation unit (tanh/ReLU/GELU baselines).
GateInventory cost_fsm_activation(int n_states, int bsl);

// --- Softmax blocks ----------------------------------------------------------

/// FSM-based softmax baseline [17]: m parallel exp-FSM channels with a shared
/// SNG, SC->binary counters, binary adder tree and divider. Area is
/// independent of BSL; delay is BSL cycles of the serial-SC clock.
GateInventory cost_fsm_softmax(int m, int bsl, int n_states, int quotient_bits);

/// ASCEND iterative approximate softmax block (Fig. 5), lowered from the
/// exact same layout the functional simulation uses.
GateInventory cost_softmax_iter(const sc::SoftmaxIterConfig& cfg);

}  // namespace ascend::hw
