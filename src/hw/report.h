#pragma once
// report.h — metric records and paper-style table formatting for the benches.

#include <string>
#include <vector>

namespace ascend::hw {

/// One row of a Table III / Table IV style comparison.
struct BlockMetrics {
  std::string design;
  std::string variant;
  double area_um2 = 0.0;
  double delay_ns = 0.0;
  double mae = 0.0;

  double adp() const { return area_um2 * delay_ns; }
};

/// Render rows as an aligned text table with Area/Delay/ADP/MAE columns.
std::string format_metrics_table(const std::string& title, const std::vector<BlockMetrics>& rows);

/// Engineering-notation helper (e.g. 1.26e4) used across the benches.
std::string sci(double v, int significant = 3);

}  // namespace ascend::hw
