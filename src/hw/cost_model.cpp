#include "hw/cost_model.h"

#include <algorithm>
#include <cmath>

#include "sc/bsn.h"

namespace ascend::hw {
namespace {

double stage_delay(Cell c) { return cell_spec(c).delay_ns; }

/// Routing/selection margin added to every combinational block's path.
constexpr double kComboMarginNs = 0.40;

}  // namespace

GateInventory cost_bsn(std::size_t n) {
  GateInventory inv;
  const std::size_t ce = sc::bsn_compare_exchange_count(n);
  inv.add(Cell::kAnd2, ce);
  inv.add(Cell::kOr2, ce);
  inv.set_combinational_delay(static_cast<double>(sc::bsn_depth(n)) * stage_delay(Cell::kOr2));
  return inv;
}

GateInventory cost_bsn_merge(std::size_t n, std::size_t leaf) {
  GateInventory inv;
  const std::size_t ce = sc::bsn_merge_compare_exchange_count(n, leaf);
  inv.add(Cell::kAnd2, ce);
  inv.add(Cell::kOr2, ce);
  inv.set_combinational_delay(static_cast<double>(sc::bsn_merge_depth(n, leaf)) *
                              stage_delay(Cell::kOr2));
  return inv;
}

GateInventory cost_therm_mult(int la, int lb) {
  GateInventory inv;
  // One AND per input-bit pair feeding OR merge logic on La*Lb/2 output wires.
  inv.add(Cell::kAnd2, static_cast<std::size_t>(la) * static_cast<std::size_t>(lb));
  inv.add(Cell::kOr2, static_cast<std::size_t>(la) * static_cast<std::size_t>(lb) / 2);
  inv.set_combinational_delay(stage_delay(Cell::kAnd2) + 2 * stage_delay(Cell::kOr2));
  return inv;
}

GateInventory cost_rescaler(int lin, int lout) {
  GateInventory inv;
  // Expansion fan-out buffers on the input side, clamp multiplexing on the
  // output side; the sub-sample taps themselves are free wiring.
  inv.add(Cell::kInv, static_cast<std::size_t>(std::max(lin / 2, 1)));
  inv.add(Cell::kMux2, static_cast<std::size_t>(lout));
  inv.set_combinational_delay(stage_delay(Cell::kInv) + stage_delay(Cell::kMux2));
  return inv;
}

GateInventory cost_naive_si(int lin, int lout) {
  GateInventory inv;
  inv.add(Cell::kCrosspoint, static_cast<std::size_t>(lin) * static_cast<std::size_t>(lout));
  inv.set_combinational_delay(kComboMarginNs + 2 * stage_delay(Cell::kCrosspoint));
  return inv;
}

GateInventory cost_gate_si(int lin, int lout, int intervals) {
  GateInventory inv;
  // Differential (tap + complement) selection fabric, then the assist gates:
  // one AND + one INV per interval and an OR merge per output wire.
  inv.add(Cell::kCrosspoint, 2 * static_cast<std::size_t>(lin) * static_cast<std::size_t>(lout));
  inv.add(Cell::kAnd2, static_cast<std::size_t>(std::max(intervals, 0)));
  inv.add(Cell::kInv, static_cast<std::size_t>(std::max(intervals, 0)));
  inv.add(Cell::kOr2, static_cast<std::size_t>(lout));
  inv.set_combinational_delay(kComboMarginNs + 2 * stage_delay(Cell::kCrosspoint) +
                              stage_delay(Cell::kAnd2) + stage_delay(Cell::kInv) +
                              stage_delay(Cell::kOr2));
  return inv;
}

GateInventory cost_bernstein(int terms, int bsl) {
  GateInventory inv;
  // ReSC core: (terms-1)-input adder, terms-way coefficient multiplexer and
  // output register. SNGs are shared/amortised as in the baseline's own
  // accounting (see DESIGN.md).
  inv.add(Cell::kFullAdder, static_cast<std::size_t>(std::max(terms - 1, 1)));
  inv.add(Cell::kMux2, static_cast<std::size_t>(terms));
  inv.add(Cell::kDff, 1);
  inv.set_serial_delay(static_cast<std::size_t>(bsl), kSerialClockBernsteinNs);
  return inv;
}

GateInventory cost_fsm_activation(int n_states, int bsl) {
  GateInventory inv;
  int state_bits = 1;
  while ((1 << state_bits) < n_states) ++state_bits;
  inv.add(Cell::kDff, static_cast<std::size_t>(state_bits));
  inv.add(Cell::kAnd2, static_cast<std::size_t>(2 * state_bits));  // next-state logic
  inv.add(Cell::kMux2, 1);                                         // output gating mux
  inv.set_serial_delay(static_cast<std::size_t>(bsl), kSerialClockFsmNs);
  return inv;
}

GateInventory cost_fsm_softmax(int m, int bsl, int n_states, int quotient_bits) {
  GateInventory inv;
  int state_bits = 1;
  while ((1 << state_bits) < n_states) ++state_bits;
  const auto mm = static_cast<std::size_t>(m);
  // Shared LFSR SNG broadcast to all channels.
  inv.add(Cell::kDff, 16);
  inv.add(Cell::kXor2, 3);
  // Per channel: threshold comparator, exp FSM, SC->binary counter.
  inv.add(Cell::kFullAdder, mm * 8);                                     // comparator
  inv.add(Cell::kDff, mm * static_cast<std::size_t>(state_bits));        // FSM state
  inv.add(Cell::kAnd2, mm * static_cast<std::size_t>(2 * state_bits));   // FSM logic
  inv.add(Cell::kDff, mm * 8);                                           // counter
  // Leading-one detector over the max count plus per-channel barrel shifter
  // (the shift normalization that replaces a true divider).
  inv.add(Cell::kOr2, 16);
  inv.add(Cell::kMux2, mm * static_cast<std::size_t>(quotient_bits));
  inv.set_serial_delay(static_cast<std::size_t>(bsl), kSerialClockFsmNs);
  return inv;
}

GateInventory cost_softmax_iter(const sc::SoftmaxIterConfig& cfg) {
  const sc::SoftmaxIterLayout lay = sc::softmax_iter_layout(cfg);
  GateInventory inv;
  double iter_path = 0.0;

  // MUL-1 per unit.
  {
    GateInventory g = cost_therm_mult(cfg.bx, cfg.by);
    iter_path += g.delay_ns();
    for (int i = 0; i < cfg.m; ++i) inv += g;
  }
  // Global BSN-1 over the z bundle (merge tree: the z bundles arrive sorted
  // from the truth-table multipliers).
  {
    GateInventory g = cost_bsn_merge(static_cast<std::size_t>(lay.lsum),
                                     static_cast<std::size_t>(lay.lz));
    iter_path += g.delay_ns();
    inv += g;
  }
  // MUL-2 per unit on the sub-sampled sum.
  {
    GateInventory g = cost_therm_mult(cfg.by, lay.lsum_sub);
    iter_path += g.delay_ns();
    for (int i = 0; i < cfg.m; ++i) inv += g;
  }
  // Re-scaling blocks (three operand aligners + the closing re-scale).
  {
    GateInventory ra = cost_rescaler(cfg.by, lay.la);
    GateInventory rb = cost_rescaler(lay.lz, lay.lb);
    GateInventory rc = cost_rescaler(lay.lw_sub, lay.lc);
    GateInventory rf = cost_rescaler(lay.lconcat, cfg.by);
    iter_path += std::max({ra.delay_ns(), rb.delay_ns(), rc.delay_ns()}) + rf.delay_ns();
    for (int i = 0; i < cfg.m; ++i) {
      inv += ra;
      inv += rb;
      inv += rc;
      inv += rf;
    }
  }
  // BSN-2 per unit (merge tree over the three sorted, aligned operands).
  {
    const int min_op = std::min({lay.la, lay.lb, lay.lc});
    GateInventory g = cost_bsn_merge(static_cast<std::size_t>(lay.lconcat),
                                     static_cast<std::size_t>(std::max(min_op, 1)));
    iter_path += g.delay_ns();
    for (int i = 0; i < cfg.m; ++i) inv += g;
  }
  // Iteration registers on the y feedback path.
  inv.add(Cell::kDff, static_cast<std::size_t>(cfg.m) * static_cast<std::size_t>(cfg.by));

  // The block iterates k times over the same hardware; each iteration adds
  // the combinational path plus a register stage.
  inv.set_combinational_delay(cfg.k * (iter_path + kComboMarginNs + stage_delay(Cell::kDff)));
  return inv;
}

}  // namespace ascend::hw
