#pragma once
// cell_library.h — standard-cell area/delay constants for the cost model.
//
// The paper synthesises RTL with Synopsys Design Compiler on a TSMC 28 nm
// library; that flow is proprietary, so this repo substitutes a gate-level
// cost model: every SC block is lowered to a multiset of standard cells plus
// a critical-path gate depth, and area/delay are evaluated against the
// constants below. The constants approximate published 28 nm HPM cell data
// (plus a uniform synthesis overhead factor for clock/route/buffering) and
// were sanity-calibrated once against the paper's Table III/IV anchors; they
// are never tuned per-experiment. See DESIGN.md section 1 for why relative
// comparisons (ADP ratios, Pareto shapes) survive this substitution.

namespace ascend::hw {

/// Cell kinds used by the SC block lowerings.
enum class Cell {
  kInv,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kXor2,
  kMux2,
  kDff,
  kFullAdder,
  kTieCell,        // constant-0/1 wire
  kCrosspoint,     // configurable interconnect switch point (SI fabrics)
  kCount
};

struct CellSpec {
  const char* name;
  double area_um2;   ///< placed area including synthesis overhead
  double delay_ns;   ///< typical propagation delay contribution
};

/// Library lookup (indexed by Cell).
const CellSpec& cell_spec(Cell c);

/// Serial-SC clock periods (ns). The parallel thermometer datapath is
/// combinational and uses gate-depth delays instead.
inline constexpr double kSerialClockBernsteinNs = 0.08;  // Table III: 1024b -> 81.92 ns
inline constexpr double kSerialClockFsmNs = 2.56;        // Table IV: 128b -> 327.7 ns

}  // namespace ascend::hw
