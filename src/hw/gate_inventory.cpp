#include "hw/gate_inventory.h"

#include <sstream>

namespace ascend::hw {

GateInventory& GateInventory::operator+=(const GateInventory& o) {
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  return *this;
}

std::size_t GateInventory::total_cells() const {
  std::size_t total = 0;
  for (auto c : counts_) total += c;
  return total;
}

double GateInventory::area_um2() const {
  double area = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    area += static_cast<double>(counts_[i]) * cell_spec(static_cast<Cell>(i)).area_um2;
  return area;
}

std::string GateInventory::summary() const {
  std::ostringstream os;
  os << "area=" << area_um2() << "um2 delay=" << delay_ns_ << "ns cells={";
  bool first = true;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (!first) os << ", ";
    os << cell_spec(static_cast<Cell>(i)).name << ":" << counts_[i];
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace ascend::hw
