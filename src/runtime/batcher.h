#pragma once
// batcher.h — priority/deadline-aware dynamic request batching.
//
// Clients enqueue single payloads tagged with RequestOptions{variant,
// priority, deadline} and get a future; a dispatcher thread (owned by the
// engine) pulls coalesced batches. The queue is a priority queue over
// (priority, arrival order), and a batch only ever groups requests bound for
// the same variant ("compatible" requests — different servables cannot share
// a forward). Batch formation:
//   * the scheduler always serves the highest-priority waiting request
//     first: the next batch is built around it, from same-variant requests
//     in (priority, arrival) order;
//   * the batch closes when `max_batch` compatible requests are waiting
//     (size cutoff), when the group's oldest member has aged past
//     `max_delay` (latency cutoff), or when waiting any longer would expire
//     a member's deadline (deadline cutoff);
//   * a request whose deadline has already passed is failed fast with
//     DeadlineExceededError at batch-formation time — it never reaches a
//     forward — and a higher-priority arrival re-aims the next batch at its
//     variant (interactive traffic preempts batch traffic in queue order).
//
// Scheduling is priority-strict, not earliest-deadline-first: a deadline
// never promotes a request ahead of its (priority, arrival) rank. The
// deadline cutoff closes the batch the request is *scheduled into*; a
// deadline expiring on a request outside the current selection wakes the
// dispatcher only to fail it fast at the deadline.
//
// Overload: an optional `max_pending` bounds the queue. When it is full,
// enqueue() either blocks until the dispatcher drains space (kBlock) or
// fails fast with QueueFullError (kReject), per the configured policy.

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/metrics/trace.h"

namespace ascend::runtime {

/// What enqueue() does when the bounded queue is full.
enum class OverflowPolicy {
  kBlock,   ///< wait for the dispatcher to drain space (default)
  kReject,  ///< fail fast with QueueFullError
};

/// Thrown by enqueue() under OverflowPolicy::kReject on a full queue.
struct QueueFullError : std::runtime_error {
  QueueFullError() : std::runtime_error("Batcher: queue full") {}
};

/// Delivered through the request future when a deadline expires before the
/// request's batch forward started; the forward is never run for it.
struct DeadlineExceededError : std::runtime_error {
  DeadlineExceededError() : std::runtime_error("request deadline exceeded before forward") {}
};

/// Thrown by enqueue() once the batcher is closed, and delivered through the
/// future of every request still queued when the engine shuts down: queued
/// work is failed promptly at destruction, never served late or dropped
/// silently. Derives std::runtime_error so pre-existing catch sites hold.
struct EngineShutdownError : std::runtime_error {
  EngineShutdownError() : std::runtime_error("engine shut down before request was served") {}
};

/// Scheduling class of a request. Lower value = served first.
enum class Priority : int {
  kInteractive = 0,  ///< latency-sensitive; always scheduled before the rest
  kNormal = 1,       ///< default
  kBatch = 2,        ///< throughput traffic; yields to everything above
};
inline constexpr int kNumPriorities = 3;
const char* priority_name(Priority p);

/// What the engine does when a forward fails with an exception (including an
/// injected fault): retry the same variant with exponential backoff, then —
/// once attempts are exhausted — degrade to a named fallback variant rather
/// than failing the client. See docs/robustness.md.
struct RetryPolicy {
  /// Total attempts on the request's primary variant (1 = no retry).
  int max_attempts = 1;
  /// Backoff before attempt k+1: `backoff << (k-1)` (1ms, 2ms, 4ms, ...).
  /// The sleep runs on the forward worker, so it occupies a concurrent-
  /// forwards slot — bounded by max_attempts, and deliberate: a failing
  /// variant should shed throughput, not amplify it.
  std::chrono::microseconds backoff{1000};
  /// Variant to reroute to after the last failed attempt; empty = fail the
  /// request with the final error. The fallback forward is not retried.
  std::string fallback_variant;
};

/// Per-request routing and scheduling options for InferenceEngine::submit.
struct RequestOptions {
  /// Registry variant to serve this request; empty = the engine's default.
  std::string variant;
  Priority priority = Priority::kNormal;
  /// Time budget from submit(): once it elapses, the request fails fast with
  /// DeadlineExceededError instead of being served late. 0 = no deadline;
  /// negative = already expired (the future fails without queueing).
  std::chrono::microseconds deadline{0};
  /// Failure handling for this request's forward (default: fail on first
  /// error, no fallback).
  RetryPolicy retry;
};

/// Result delivered to a client for one payload.
struct Prediction {
  int label = -1;              ///< argmax class
  std::vector<float> logits;   ///< raw head outputs
  double queue_ms = 0.0;       ///< enqueue -> batch-close wait
  std::string variant;         ///< variant that actually served the request
  int attempts = 1;            ///< forward attempts spent (1 = first try)
  bool degraded = false;       ///< served by RetryPolicy::fallback_variant
};

struct Request {
  std::vector<float> image;  ///< flattened request payload
  std::promise<Prediction> promise;
  std::chrono::steady_clock::time_point enqueued;
  std::string variant;       ///< resolved routing key (engine fills the default in)
  Priority priority = Priority::kNormal;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};  ///< absolute; valid if has_deadline
  std::uint64_t seq = 0;     ///< arrival order within the batcher
  RetryPolicy retry;         ///< failure handling for this request's forward
  /// Lifecycle stamps for tracing/metrics: the batcher fills enqueue and
  /// batch_close; the engine stamps the forward and completion phases.
  trace::TraceContext trace;

  bool expired(std::chrono::steady_clock::time_point now) const {
    return has_deadline && now > deadline;
  }
};

/// Live queue-depth snapshot (one pass under the queue lock).
struct PendingCounts {
  std::size_t total = 0;
  std::array<std::size_t, kNumPriorities> by_priority{};
  /// Depth per resolved variant id, id-sorted; variants with no queued
  /// request are absent. Feeds the per-variant queue-depth gauges.
  std::vector<std::pair<std::string, std::size_t>> by_variant;
  std::size_t priority(Priority p) const { return by_priority[static_cast<std::size_t>(p)]; }
  /// Depth of one variant (0 when absent from the snapshot).
  std::size_t variant(const std::string& id) const {
    for (const auto& [v, n] : by_variant)
      if (v == id) return n;
    return 0;
  }
};

class Batcher {
 public:
  /// `max_pending` == 0 leaves the queue unbounded (the policy is inert).
  Batcher(int max_batch, std::chrono::microseconds max_delay, int max_pending = 0,
          OverflowPolicy overflow = OverflowPolicy::kBlock);

  /// Thread-safe producer side. Throws EngineShutdownError after close(); on
  /// a full bounded queue, blocks or throws QueueFullError per the overflow
  /// policy. A request with a negative deadline budget is failed immediately
  /// through its future (DeadlineExceededError) without queueing.
  std::future<Prediction> enqueue(std::vector<float> image, RequestOptions opts = {});

  /// Consumer side (single dispatcher thread): blocks until a batch is ready
  /// per the cutoff rules, or the batcher is closed. Every returned request
  /// shares one variant. Expired requests are failed and dropped here, never
  /// returned. Returns an empty vector only when closed *and* drained.
  std::vector<Request> next_batch();

  /// Stop accepting work and wake the dispatcher; queued requests still drain.
  void close();

  /// Shutdown close: stop accepting work AND fail every queued request
  /// promptly with EngineShutdownError through its future. The engine
  /// destructor uses this so queued work never waits on destructor ordering.
  void close_now();

  /// Observer for deadline-expired drops (stats); called outside the queue
  /// lock, from the thread that dropped the request (the dispatcher inside
  /// next_batch, or a producer that enqueued an already-expired request).
  /// Set before the dispatcher starts; not thread-safe against next_batch.
  void set_drop_observer(std::function<void(Priority)> observer);

  int max_batch() const { return max_batch_; }
  std::chrono::microseconds max_delay() const { return max_delay_; }
  int max_pending() const { return max_pending_; }
  OverflowPolicy overflow_policy() const { return overflow_; }
  std::size_t pending() const;
  /// Queued requests of one scheduling class.
  std::size_t pending(Priority p) const;
  /// Total and per-priority queue depth in one consistent snapshot — the
  /// source for the engine's queue-depth gauges.
  PendingCounts pending_counts() const;

 private:
  /// Fail and remove every expired queued request. Drops the lock while
  /// resolving promises; re-acquires before returning.
  void drop_expired(std::unique_lock<std::mutex>& lock,
                    std::chrono::steady_clock::time_point now);
  /// Indices of the next batch's members, (priority, seq)-ordered, capped at
  /// max_batch: same-variant companions of the highest-priority oldest
  /// request. Requires a non-empty queue; caller holds the lock.
  std::vector<std::size_t> select_group() const;

  const int max_batch_;
  const std::chrono::microseconds max_delay_;
  const int max_pending_;
  const OverflowPolicy overflow_;
  std::function<void(Priority)> drop_observer_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< wakes the dispatcher (work / close)
  std::condition_variable space_cv_;  ///< wakes blocked producers (space / close)
  std::vector<Request> queue_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace ascend::runtime
