#pragma once
// batcher.h — dynamic request batching for the SC inference engine.
//
// Clients enqueue single images and get a future; a dispatcher thread (owned
// by the engine) pulls coalesced batches. A batch closes when either
//   * `max_batch` requests are waiting (size cutoff), or
//   * the oldest waiting request has aged past `max_delay` (latency cutoff),
// so a lone request is never parked longer than the configured latency bound
// while bursts still fill whole batches.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

namespace ascend::runtime {

/// Result delivered to a client for one image.
struct Prediction {
  int label = -1;              ///< argmax class
  std::vector<float> logits;   ///< raw head outputs
  double queue_ms = 0.0;       ///< enqueue -> batch-close wait
};

struct Request {
  std::vector<float> image;  ///< flattened [channels*H*W] pixels
  std::promise<Prediction> promise;
  std::chrono::steady_clock::time_point enqueued;
};

class Batcher {
 public:
  Batcher(int max_batch, std::chrono::microseconds max_delay);

  /// Thread-safe producer side. Throws after close().
  std::future<Prediction> enqueue(std::vector<float> image);

  /// Consumer side (single dispatcher thread): blocks until a batch is ready
  /// per the cutoff rules, or the batcher is closed. Returns an empty vector
  /// only when closed *and* drained.
  std::vector<Request> next_batch();

  /// Stop accepting work and wake the dispatcher; queued requests still drain.
  void close();

  int max_batch() const { return max_batch_; }
  std::chrono::microseconds max_delay() const { return max_delay_; }
  std::size_t pending() const;

 private:
  const int max_batch_;
  const std::chrono::microseconds max_delay_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Request> queue_;
  bool closed_ = false;
};

}  // namespace ascend::runtime
