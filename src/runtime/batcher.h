#pragma once
// batcher.h — dynamic request batching for the SC inference engine.
//
// Clients enqueue single images and get a future; a dispatcher thread (owned
// by the engine) pulls coalesced batches. A batch closes when either
//   * `max_batch` requests are waiting (size cutoff), or
//   * the oldest waiting request has aged past `max_delay` (latency cutoff),
// so a lone request is never parked longer than the configured latency bound
// while bursts still fill whole batches.
//
// Overload: an optional `max_pending` bounds the queue. When it is full,
// enqueue() either blocks until the dispatcher drains space (kBlock) or
// fails fast with QueueFullError (kReject), per the configured policy.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace ascend::runtime {

/// What enqueue() does when the bounded queue is full.
enum class OverflowPolicy {
  kBlock,   ///< wait for the dispatcher to drain space (default)
  kReject,  ///< fail fast with QueueFullError
};

/// Thrown by enqueue() under OverflowPolicy::kReject on a full queue.
struct QueueFullError : std::runtime_error {
  QueueFullError() : std::runtime_error("Batcher: queue full") {}
};

/// Result delivered to a client for one image.
struct Prediction {
  int label = -1;              ///< argmax class
  std::vector<float> logits;   ///< raw head outputs
  double queue_ms = 0.0;       ///< enqueue -> batch-close wait
};

struct Request {
  std::vector<float> image;  ///< flattened [channels*H*W] pixels
  std::promise<Prediction> promise;
  std::chrono::steady_clock::time_point enqueued;
};

class Batcher {
 public:
  /// `max_pending` == 0 leaves the queue unbounded (the policy is inert).
  Batcher(int max_batch, std::chrono::microseconds max_delay, int max_pending = 0,
          OverflowPolicy overflow = OverflowPolicy::kBlock);

  /// Thread-safe producer side. Throws after close(); on a full bounded
  /// queue, blocks or throws QueueFullError per the overflow policy.
  std::future<Prediction> enqueue(std::vector<float> image);

  /// Consumer side (single dispatcher thread): blocks until a batch is ready
  /// per the cutoff rules, or the batcher is closed. Returns an empty vector
  /// only when closed *and* drained.
  std::vector<Request> next_batch();

  /// Stop accepting work and wake the dispatcher; queued requests still drain.
  void close();

  int max_batch() const { return max_batch_; }
  std::chrono::microseconds max_delay() const { return max_delay_; }
  int max_pending() const { return max_pending_; }
  OverflowPolicy overflow_policy() const { return overflow_; }
  std::size_t pending() const;

 private:
  const int max_batch_;
  const std::chrono::microseconds max_delay_;
  const int max_pending_;
  const OverflowPolicy overflow_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< wakes the dispatcher (work / close)
  std::condition_variable space_cv_;  ///< wakes blocked producers (space / close)
  std::vector<Request> queue_;
  bool closed_ = false;
};

}  // namespace ascend::runtime
