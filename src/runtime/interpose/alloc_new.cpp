// alloc_new.cpp — counting replacements for the global allocation functions.
//
// Linked ONLY into targets that opt in (the `alloc_interpose` CMake object
// library: allocation tests and benches). Replacing operator new is sanctioned
// by [replacement.functions]; every variant below forwards to malloc /
// posix_memalign and bumps the runtime counter, so alloc_count() measures
// real heap traffic including everything the standard library does.
//
// This TU deliberately lives outside the src/runtime/*.cpp glob: pulling it
// into libruntime would interpose every binary in the build.

#include <cstdlib>
#include <new>

#include "runtime/alloc_count.h"

namespace {

struct ActivateCounting {
  ActivateCounting() { ascend::runtime::detail::set_alloc_counting_active(); }
} activate_counting;

void* counted_malloc(std::size_t n) {
  ascend::runtime::detail::alloc_counter().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}

void* counted_aligned(std::size_t n, std::size_t align) {
  ascend::runtime::detail::alloc_counter().fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (align < sizeof(void*)) align = sizeof(void*);
  if (posix_memalign(&p, align, n ? n : align) != 0) return nullptr;
  return p;
}

}  // namespace

void* operator new(std::size_t n) {
  void* p = counted_malloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void* operator new(std::size_t n, const std::nothrow_t&) noexcept { return counted_malloc(n); }

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept { return counted_malloc(n); }

void* operator new(std::size_t n, std::align_val_t align) {
  void* p = counted_aligned(n, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n, std::align_val_t align) { return ::operator new(n, align); }

void* operator new(std::size_t n, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_aligned(n, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t n, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_aligned(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
