#include "runtime/metrics/registry.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>

namespace ascend::runtime::metrics {

namespace {

/// Stable per-thread shard index. Threads stripe round-robin, so up to
/// kShards concurrent recorders never share a cache line.
int tls_shard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx = next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(idx);
}

void append_labels(std::string& out, const Labels& labels) {
  if (labels.empty()) return;
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
}

/// Like append_labels but with extra pairs appended (quantile="...").
void append_labels_extra(std::string& out, const Labels& labels, const char* key,
                         const char* value) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  if (!first) out += ',';
  out += key;
  out += "=\"";
  out += value;
  out += '"';
  out += '}';
}

std::string format_double(double v) {
  char buf[64];
  // %.17g round-trips but is noisy; %g keeps integers exact up to 2^53-ish
  // precision loss only in the last digits of huge sums.
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

int Histogram::bucket_count(const HistogramOptions& opts) {
  // Values < 2^sub_bits land in their own exact bucket (index == value);
  // every octave [2^e, 2^(e+1)) above splits into 2^sub_bits sub-buckets.
  // One extra bucket catches clamped values >= 2^max_exp.
  return ((opts.max_exp - opts.sub_bits + 1) << opts.sub_bits) + 1;
}

Histogram::Histogram(HistogramOptions opts) : opts_(opts) {
  if (opts_.sub_bits < 1 || opts_.sub_bits > 16)
    throw std::invalid_argument("Histogram: sub_bits must be in [1,16]");
  if (opts_.max_exp <= opts_.sub_bits || opts_.max_exp > 62)
    throw std::invalid_argument("Histogram: max_exp must be in (sub_bits,62]");
  num_buckets_ = bucket_count(opts_);
  for (Shard& s : shards_) {
    s.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(
        static_cast<std::size_t>(num_buckets_));
    for (int i = 0; i < num_buckets_; ++i) s.buckets[static_cast<std::size_t>(i)].store(0);
  }
}

int Histogram::bucket_index(const HistogramOptions& opts, std::uint64_t value) {
  if (value < (1ull << opts.sub_bits)) return static_cast<int>(value);
  if (value >= (1ull << opts.max_exp)) return bucket_count(opts) - 1;
  const int e = std::bit_width(value) - 1;  // floor(log2(value))
  const int shift = e - opts.sub_bits;
  const auto sub = static_cast<int>((value >> shift) & ((1ull << opts.sub_bits) - 1));
  return ((e - opts.sub_bits + 1) << opts.sub_bits) + sub;
}

std::uint64_t Histogram::bucket_lower(const HistogramOptions& opts, int idx) {
  if (idx < (1 << opts.sub_bits)) return static_cast<std::uint64_t>(idx);
  if (idx >= bucket_count(opts) - 1) return 1ull << opts.max_exp;
  const int e = (idx >> opts.sub_bits) + opts.sub_bits - 1;
  const int sub = idx & ((1 << opts.sub_bits) - 1);
  const int shift = e - opts.sub_bits;
  return (1ull << e) + (static_cast<std::uint64_t>(sub) << shift);
}

void Histogram::record(std::uint64_t value) {
  Shard& s = shards_[static_cast<std::size_t>(tls_shard()) & (kShards - 1)];
  s.buckets[static_cast<std::size_t>(bucket_index(opts_, value))].fetch_add(
      1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = max_.load(std::memory_order_relaxed);
  while (value > cur && !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.opts = opts_;
  snap.buckets.assign(static_cast<std::size_t>(num_buckets_), 0);
  for (const Shard& s : shards_) {
    snap.sum += s.sum.load(std::memory_order_relaxed);
    snap.count += s.count.load(std::memory_order_relaxed);
    for (int i = 0; i < num_buckets_; ++i)
      snap.buckets[static_cast<std::size_t>(i)] +=
          s.buckets[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation among `count` sorted samples.
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) {
      // The clamp bucket has no meaningful upper bound; report the exact max.
      if (i + 1 == buckets.size()) return static_cast<double>(max);
      const std::uint64_t lo = Histogram::bucket_lower(opts, static_cast<int>(i));
      const std::uint64_t hi = i + 1 < buckets.size()
                                   ? Histogram::bucket_lower(opts, static_cast<int>(i) + 1)
                                   : lo + 1;
      // Midpoint of the bucket: bounds the relative error by half the
      // bucket's relative width (<= 2^-sub_bits).
      return 0.5 * (static_cast<double>(lo) + static_cast<double>(hi - 1));
    }
  }
  return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

struct MetricsRegistry::Family {
  std::string name;
  const char* type;  // "counter" | "gauge" | "summary"
  std::string help;
  struct CounterSeries {
    Labels labels;
    std::unique_ptr<Counter> metric;
  };
  struct GaugeSeries {
    Labels labels;
    std::unique_ptr<Gauge> metric;
  };
  struct HistSeries {
    Labels labels;
    std::unique_ptr<Histogram> metric;
  };
  struct CallbackSeries {
    Labels labels;
    SeriesKind kind;
    std::function<double()> fn;
    CallbackId id;
  };
  std::vector<CounterSeries> counters;
  std::vector<GaugeSeries> gauges;
  std::vector<HistSeries> hists;
  std::vector<CallbackSeries> callbacks;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name, const char* type,
                                                 std::string help) {
  for (auto& f : families_) {
    if (f->name == name) {
      if (std::string(f->type) != type)
        throw std::invalid_argument("MetricsRegistry: metric '" + name +
                                    "' re-registered with a different type");
      if (f->help.empty()) f->help = std::move(help);
      return *f;
    }
  }
  auto f = std::make_unique<Family>();
  f->name = name;
  f->type = type;
  f->help = std::move(help);
  families_.push_back(std::move(f));
  return *families_.back();
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = family(name, "counter", std::move(help));
  for (auto& s : f.counters)
    if (s.labels == labels) return *s.metric;
  f.counters.push_back({std::move(labels), std::make_unique<Counter>()});
  return *f.counters.back().metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = family(name, "gauge", std::move(help));
  for (auto& s : f.gauges)
    if (s.labels == labels) return *s.metric;
  f.gauges.push_back({std::move(labels), std::make_unique<Gauge>()});
  return *f.gauges.back().metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      HistogramOptions opts, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = family(name, "summary", std::move(help));
  for (auto& s : f.hists)
    if (s.labels == labels) return *s.metric;
  f.hists.push_back({std::move(labels), std::make_unique<Histogram>(opts)});
  return *f.hists.back().metric;
}

CallbackId MetricsRegistry::register_callback(const std::string& name, Labels labels,
                                              SeriesKind kind, std::function<double()> fn,
                                              std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& f = family(name, kind == SeriesKind::kCounter ? "counter" : "gauge", std::move(help));
  const CallbackId id = next_callback_++;
  f.callbacks.push_back({std::move(labels), kind, std::move(fn), id});
  return id;
}

void MetricsRegistry::remove_callback(CallbackId id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& f : families_) {
    auto& cbs = f->callbacks;
    cbs.erase(std::remove_if(cbs.begin(), cbs.end(),
                             [id](const Family::CallbackSeries& s) { return s.id == id; }),
              cbs.end());
  }
}

std::string series_key(const std::string& name, const Labels& labels) {
  std::string out = name;
  append_labels(out, labels);
  return out;
}

std::string MetricsRegistry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  static constexpr std::pair<double, const char*> kQuantiles[] = {
      {0.50, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}, {0.999, "0.999"}};
  std::string out;
  for (const auto& f : families_) {
    if (!f->help.empty()) out += "# HELP " + f->name + " " + f->help + "\n";
    out += "# TYPE " + f->name + " " + f->type + "\n";
    for (const auto& s : f->counters) {
      out += f->name;
      append_labels(out, s.labels);
      out += ' ' + std::to_string(s.metric->value()) + '\n';
    }
    for (const auto& s : f->gauges) {
      out += f->name;
      append_labels(out, s.labels);
      out += ' ' + std::to_string(s.metric->value()) + '\n';
    }
    for (const auto& s : f->callbacks) {
      out += f->name;
      append_labels(out, s.labels);
      out += ' ' + format_double(s.fn()) + '\n';
    }
    for (const auto& s : f->hists) {
      const HistogramSnapshot snap = s.metric->snapshot();
      for (const auto& [q, qname] : kQuantiles) {
        out += f->name;
        append_labels_extra(out, s.labels, "quantile", qname);
        out += ' ' + format_double(snap.quantile(q)) + '\n';
      }
      out += f->name + "_sum";
      append_labels(out, s.labels);
      out += ' ' + std::to_string(snap.sum) + '\n';
      out += f->name + "_count";
      append_labels(out, s.labels);
      out += ' ' + std::to_string(snap.count) + '\n';
    }
  }
  return out;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const auto& f : families_) {
    for (const auto& s : f->counters)
      snap.series.push_back(
          {f->name, s.labels, SeriesKind::kCounter, static_cast<double>(s.metric->value())});
    for (const auto& s : f->gauges)
      snap.series.push_back(
          {f->name, s.labels, SeriesKind::kGauge, static_cast<double>(s.metric->value())});
    for (const auto& s : f->callbacks)
      snap.series.push_back({f->name, s.labels, s.kind, s.fn()});
    for (const auto& s : f->hists)
      snap.histograms.emplace_back(series_key(f->name, s.labels), s.metric->snapshot());
  }
  return snap;
}

const HistogramSnapshot* RegistrySnapshot::histogram(const std::string& name,
                                                     const Labels& labels) const {
  const std::string key = series_key(name, labels);
  for (const auto& [k, h] : histograms)
    if (k == key) return &h;
  return nullptr;
}

}  // namespace ascend::runtime::metrics
