#pragma once
// metrics/trace.h — per-request span tracing for the serving runtime.
//
// Three pieces:
//   * ScopedSpan — a lightweight phase marker dropped into model code
//     (`trace::ScopedSpan s("msa");`). It reads one thread-local collector
//     pointer; when no collector is installed (tracing off, or a thread
//     outside a traced forward) the constructor and destructor are a single
//     TLS load + branch — no clock read, no allocation. The engine installs
//     a SpanCollector around each traced batch forward (CollectorScope), so
//     the per-layer-group spans inside VisionTransformer::infer attach to
//     the right batch without the model knowing about the engine.
//   * RequestTrace — the five request lifecycle stamps (enqueue,
//     batch-close, forward-start, forward-end, complete) plus the batch
//     forward's phase spans, fixed-size and copyable without allocation.
//   * Tracer — retention: completed traces land in fixed-size per-thread
//     ring buffers (recent()), and a small "slowest N" set survives ring
//     wraparound so a p99.9 outlier can be explained long after the burst
//     that caused it (slowest()).
//
// format_trace renders one RequestTrace as an indented tree with per-phase
// durations — the straggler dump.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ascend::runtime::trace {

using Clock = std::chrono::steady_clock;

/// Spans per batch forward; overflow is counted, not stored.
inline constexpr int kMaxSpans = 48;
inline constexpr int kMaxSpanDepth = 8;

/// One phase inside a batch forward. `name` must point at static storage
/// (string literals in model code); `index` >= 0 renders as "name[index]".
struct Span {
  const char* name = nullptr;
  int index = -1;
  std::int16_t depth = 0;
  Clock::time_point begin{};
  Clock::time_point end{};
};

/// Collects the phase spans of one batch forward. Single-threaded by
/// contract: spans are emitted from the thread running the forward (layer
/// groups run sequentially; intra-op parallelism lives below the span
/// granularity).
class SpanCollector {
 public:
  void begin(const char* name, int index = -1);
  void end();
  void reset();

  const Span* spans() const { return spans_.data(); }
  int count() const { return count_; }
  int dropped() const { return dropped_; }

 private:
  std::array<Span, kMaxSpans> spans_;
  std::array<int, kMaxSpanDepth> open_;  ///< indices of open spans (stack)
  int count_ = 0;
  int depth_ = 0;
  int dropped_ = 0;
};

/// The collector the current thread's ScopedSpans write to; null when the
/// thread is not inside a traced forward.
SpanCollector* current_collector();

/// Installs `c` as the current thread's collector for the scope's lifetime;
/// restores the previous collector on exit.
class CollectorScope {
 public:
  explicit CollectorScope(SpanCollector* c);
  ~CollectorScope();
  CollectorScope(const CollectorScope&) = delete;
  CollectorScope& operator=(const CollectorScope&) = delete;

 private:
  SpanCollector* prev_;
};

/// Phase marker: no-op (one TLS load + branch) without a collector.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, int index = -1) : c_(current_collector()) {
    if (c_) c_->begin(name, index);
  }
  ~ScopedSpan() {
    if (c_) c_->end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanCollector* c_;
};

/// Request lifecycle stamps carried by a runtime::Request. The batcher fills
/// enqueue (at accept) and batch_close (when the request's batch is popped);
/// the engine fills the rest.
struct TraceContext {
  Clock::time_point enqueue{};
  Clock::time_point batch_close{};
};

/// One served request's full story: lifecycle stamps + the phase spans of
/// the batch forward that carried it. Fixed-size, allocation-free to copy.
struct RequestTrace {
  std::uint64_t seq = 0;  ///< batcher arrival sequence number (request id)
  char variant[32] = {0};
  int priority = 1;  ///< runtime::Priority as int (trace stays engine-agnostic)
  int batch_size = 0;

  Clock::time_point enqueue{};
  Clock::time_point batch_close{};
  Clock::time_point forward_start{};
  Clock::time_point forward_end{};
  Clock::time_point complete{};

  int num_spans = 0;
  int spans_dropped = 0;
  std::array<Span, kMaxSpans> spans;

  double total_ms() const {
    return std::chrono::duration<double, std::milli>(complete - enqueue).count();
  }
  void set_variant(const std::string& v);
};

struct TracerOptions {
  bool enabled = false;
  int ring_size = 128;  ///< recent traces kept per thread shard
  int slowest = 8;      ///< slowest-request retention across the whole run
};

/// Trace retention. record() is called once per served request from the
/// forward-pool thread that completed it: the trace lands in that thread's
/// ring buffer (per-thread shard, uncontended mutex), and enters the
/// slowest-N set only when it beats the current floor (checked against an
/// atomic threshold first, so the common case takes no lock).
class Tracer {
 public:
  explicit Tracer(TracerOptions opts = {});

  bool enabled() const { return opts_.enabled; }
  const TracerOptions& options() const { return opts_; }

  void record(const RequestTrace& t);

  /// Merged ring contents, oldest first (by completion stamp).
  std::vector<RequestTrace> recent() const;
  /// Slowest retained traces, slowest first.
  std::vector<RequestTrace> slowest() const;

 private:
  static constexpr int kShards = 8;
  struct Ring {
    mutable std::mutex mu;  ///< per-thread shard: writers never contend
    std::vector<RequestTrace> slots;
    std::uint64_t head = 0;  ///< total records; slot = (head-1) % size
  };

  TracerOptions opts_;
  std::array<Ring, kShards> rings_;

  mutable std::mutex slow_mu_;
  std::vector<RequestTrace> slow_;            ///< sorted slowest-first
  std::atomic<std::int64_t> slow_floor_us_{-1};  ///< admission threshold (-1: not full)
};

/// Tree-shaped straggler dump of one request.
std::string format_trace(const RequestTrace& t);

}  // namespace ascend::runtime::trace
