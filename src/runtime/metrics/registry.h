#pragma once
// metrics/registry.h — named counters, gauges, and HDR-style histograms with
// a Prometheus text-format export.
//
// The serving stack records into handles obtained once at wiring time
// (Counter*, Histogram*); the registry mutex is only taken at registration
// and at scrape, never on the record path. Recording is lock-free:
//   * Counter / Gauge are single sequentially-consistent atomics. Counters
//     are cheap at request rates, and seq_cst gives scrape invariants a
//     total order (a request's `served` increment can never be observed
//     before its `queued` increment — see InferenceEngine).
//   * Histogram buckets are striped into per-thread shards (thread-local
//     shard index, relaxed atomics, cache-line padded) merged on scrape, so
//     concurrent recorders on the forward pool never contend on a line.
// Histograms are log-bucketed (HDR-style): `sub_bits` sub-buckets per power
// of two bound the relative quantile error by 2^-sub_bits (default 1/32 ≈
// 3.1%); values below 2^sub_bits are exact. Record in integer units
// (microseconds for latencies, counts for batch sizes).
//
// render_prometheus() emits the text exposition format: counters and gauges
// as single series, histograms as summaries (quantile="0.5/0.95/0.99/0.999"
// plus _sum and _count). Callback series (register_callback) are sampled at
// scrape time — the engine exposes live queue depth and its EngineStats
// counters this way without double-counting.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ascend::runtime::metrics {

/// Label set attached to one series, e.g. {{"variant","sc-lut"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Single seq_cst atomic: uncontended fetch_add is cheap
/// at request rates, and the total order lets scrape invariants hold (see
/// file comment).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n); }
  std::uint64_t value() const { return v_.load(); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time signed value with set/add/set_max.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v); }
  void add(std::int64_t d) { v_.fetch_add(d); }
  /// Monotonic high-water mark (CAS loop); used for peak gauges.
  void set_max(std::int64_t v) {
    std::int64_t cur = v_.load();
    while (v > cur && !v_.compare_exchange_weak(cur, v)) {
    }
  }
  std::int64_t value() const { return v_.load(); }

 private:
  std::atomic<std::int64_t> v_{0};
};

struct HistogramOptions {
  /// Sub-buckets per power of two; relative quantile error <= 2^-sub_bits.
  int sub_bits = 5;
  /// Highest exactly-resolved exponent: values >= 2^max_exp clamp into the
  /// top bucket. 2^32 us ~= 71 minutes — far beyond any request latency.
  int max_exp = 32;
};

/// Merged point-in-time view of one histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;   ///< sum of recorded values (integer units)
  std::uint64_t max = 0;   ///< largest recorded value (exact)
  std::vector<std::uint64_t> buckets;
  HistogramOptions opts;

  /// q in [0,1]; returns the bucket-midpoint estimate of the q-quantile
  /// (relative error <= 2^-sub_bits by construction). 0 when empty.
  double quantile(double q) const;
  double mean() const { return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }
};

/// Log-bucketed histogram with striped per-thread shards (see file comment).
class Histogram {
 public:
  explicit Histogram(HistogramOptions opts = {});

  /// Lock-free; safe from any thread. Values clamp to [0, 2^max_exp).
  void record(std::uint64_t value);

  HistogramSnapshot snapshot() const;

  /// Bucket geometry (pure functions of the options) — exposed for tests
  /// and for HistogramSnapshot::quantile.
  static int bucket_index(const HistogramOptions& opts, std::uint64_t value);
  static std::uint64_t bucket_lower(const HistogramOptions& opts, int idx);
  static int bucket_count(const HistogramOptions& opts);
  int num_buckets() const { return num_buckets_; }

 private:
  static constexpr int kShards = 8;  ///< power of two
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> count{0};
  };

  HistogramOptions opts_;
  int num_buckets_ = 0;
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> max_{0};
};

/// What a callback series reports at scrape time.
enum class SeriesKind { kCounter, kGauge };

/// One rendered series in a typed registry snapshot.
struct SeriesSnapshot {
  std::string name;
  Labels labels;
  SeriesKind kind = SeriesKind::kGauge;
  double value = 0.0;
};

struct RegistrySnapshot {
  std::vector<SeriesSnapshot> series;                       ///< counters, gauges, callbacks
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;  ///< key: name{labels}
  /// Histogram snapshot by exact name+labels; nullptr when absent.
  const HistogramSnapshot* histogram(const std::string& name, const Labels& labels = {}) const;
};

/// Handle for unregistering a callback series (engine lifetime < registry
/// lifetime when the caller shares one registry across engines).
using CallbackId = std::uint64_t;

/// Registry of named metric families. Each (name, labels) pair is one
/// series; re-registering an existing series returns the same object.
/// Metric object addresses are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();  // out of line: Family is an implementation detail

  Counter& counter(const std::string& name, Labels labels = {}, std::string help = "");
  Gauge& gauge(const std::string& name, Labels labels = {}, std::string help = "");
  Histogram& histogram(const std::string& name, Labels labels = {}, HistogramOptions opts = {},
                       std::string help = "");

  /// Scrape-time sampled series (live queue depth, engine stat atomics, ...).
  /// The callback must stay valid until remove_callback(id) or registry
  /// destruction.
  CallbackId register_callback(const std::string& name, Labels labels, SeriesKind kind,
                               std::function<double()> fn, std::string help = "");
  void remove_callback(CallbackId id);

  /// Prometheus text exposition format (counters/gauges as-is, histograms as
  /// summaries with p50/p95/p99/p99.9 quantiles + _sum/_count).
  std::string render_prometheus() const;

  RegistrySnapshot snapshot() const;

 private:
  struct Family;
  Family& family(const std::string& name, const char* type, std::string help);

  mutable std::mutex mu_;
  // Family order is registration order (stable golden output).
  std::vector<std::unique_ptr<Family>> families_;
  CallbackId next_callback_ = 1;
};

/// `name{a="x",b="y"}`; just `name` when the label set is empty.
std::string series_key(const std::string& name, const Labels& labels);

}  // namespace ascend::runtime::metrics
