#include "runtime/metrics/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace ascend::runtime::trace {

namespace {

thread_local SpanCollector* g_collector = nullptr;

/// Mirrors runtime::priority_name without depending on batcher.h — the trace
/// layer sits below the scheduler and must stay includable from model code.
const char* trace_priority_name(int p) {
  switch (p) {
    case 0: return "interactive";
    case 1: return "normal";
    case 2: return "batch";
  }
  return "?";
}

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

// ---------------------------------------------------------------------------
// SpanCollector
// ---------------------------------------------------------------------------

void SpanCollector::begin(const char* name, int index) {
  if (depth_ >= kMaxSpanDepth || count_ >= kMaxSpans) {
    // Too deep or full: count the drop but keep begin/end balanced via the
    // depth counter (ends for dropped spans must not pop a stored span).
    ++dropped_;
    if (depth_ < kMaxSpanDepth) open_[static_cast<std::size_t>(depth_)] = -1;
    ++depth_;
    return;
  }
  Span& s = spans_[static_cast<std::size_t>(count_)];
  s.name = name;
  s.index = index;
  s.depth = static_cast<std::int16_t>(depth_);
  s.begin = Clock::now();
  s.end = s.begin;
  open_[static_cast<std::size_t>(depth_)] = count_;
  ++count_;
  ++depth_;
}

void SpanCollector::end() {
  if (depth_ <= 0) return;  // unbalanced end: ignore
  --depth_;
  if (depth_ < kMaxSpanDepth) {
    const int idx = open_[static_cast<std::size_t>(depth_)];
    if (idx >= 0) spans_[static_cast<std::size_t>(idx)].end = Clock::now();
  }
}

void SpanCollector::reset() {
  count_ = 0;
  depth_ = 0;
  dropped_ = 0;
}

SpanCollector* current_collector() { return g_collector; }

CollectorScope::CollectorScope(SpanCollector* c) : prev_(g_collector) { g_collector = c; }

CollectorScope::~CollectorScope() { g_collector = prev_; }

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

void RequestTrace::set_variant(const std::string& v) {
  const std::size_t n = std::min(v.size(), sizeof(variant) - 1);
  std::memcpy(variant, v.data(), n);
  variant[n] = '\0';
}

Tracer::Tracer(TracerOptions opts) : opts_(opts) {
  if (opts_.ring_size < 1) opts_.ring_size = 1;
  if (opts_.slowest < 0) opts_.slowest = 0;
}

namespace {
/// Stable per-thread ring shard (same striping idea as the metric shards).
int tls_ring_shard(int mask) {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx = next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(idx) & mask;
}
}  // namespace

void Tracer::record(const RequestTrace& t) {
  Ring& ring = rings_[static_cast<std::size_t>(tls_ring_shard(kShards - 1))];
  {
    std::lock_guard<std::mutex> lock(ring.mu);
    if (ring.slots.size() < static_cast<std::size_t>(opts_.ring_size) &&
        ring.head < static_cast<std::uint64_t>(opts_.ring_size)) {
      ring.slots.push_back(t);
    } else {
      ring.slots[static_cast<std::size_t>(ring.head % static_cast<std::uint64_t>(
                                              opts_.ring_size))] = t;
    }
    ++ring.head;
  }

  if (opts_.slowest == 0) return;
  const auto total_us = static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t.complete - t.enqueue).count());
  // Fast path: the set is full and this trace is not slower than its floor.
  const std::int64_t floor = slow_floor_us_.load(std::memory_order_relaxed);
  if (floor >= 0 && total_us <= floor) return;
  std::lock_guard<std::mutex> lock(slow_mu_);
  const auto slower = [](const RequestTrace& a, const RequestTrace& b) {
    return a.complete - a.enqueue > b.complete - b.enqueue;
  };
  slow_.insert(std::upper_bound(slow_.begin(), slow_.end(), t, slower), t);
  if (slow_.size() > static_cast<std::size_t>(opts_.slowest)) slow_.pop_back();
  if (slow_.size() == static_cast<std::size_t>(opts_.slowest)) {
    const RequestTrace& floor_trace = slow_.back();
    slow_floor_us_.store(
        static_cast<std::int64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                      floor_trace.complete - floor_trace.enqueue)
                                      .count()),
        std::memory_order_relaxed);
  }
}

std::vector<RequestTrace> Tracer::recent() const {
  std::vector<RequestTrace> out;
  for (const Ring& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring.mu);
    const std::size_t n = ring.slots.size();
    if (n == 0) continue;
    // Oldest slot is head % size once the ring has wrapped, else slot 0.
    const std::size_t start =
        ring.head > n ? static_cast<std::size_t>(ring.head % static_cast<std::uint64_t>(n)) : 0;
    for (std::size_t i = 0; i < n; ++i) out.push_back(ring.slots[(start + i) % n]);
  }
  std::sort(out.begin(), out.end(),
            [](const RequestTrace& a, const RequestTrace& b) { return a.complete < b.complete; });
  return out;
}

std::vector<RequestTrace> Tracer::slowest() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return slow_;
}

// ---------------------------------------------------------------------------
// format_trace
// ---------------------------------------------------------------------------

namespace {

void append_row(std::string& out, const std::string& prefix, bool last, const char* name,
                int index, double ms, const char* note) {
  char label[64];
  if (index >= 0)
    std::snprintf(label, sizeof(label), "%s[%d]", name, index);
  else
    std::snprintf(label, sizeof(label), "%s", name);
  char line[192];
  std::snprintf(line, sizeof(line), "%s%s %-14s %8.2f ms%s%s\n", prefix.c_str(),
                last ? "└─" : "├─", label, ms, note && note[0] ? "   " : "", note ? note : "");
  out += line;
}

/// Render the span forest (children of the "forward" row) recursively.
/// `i` indexes the first candidate; returns the index after the subtree.
int render_spans(std::string& out, const RequestTrace& t, int i, int depth,
                 const std::string& prefix) {
  while (i < t.num_spans && t.spans[static_cast<std::size_t>(i)].depth == depth) {
    // Last sibling: no later span at this depth before the forest pops.
    bool last = true;
    for (int j = i + 1; j < t.num_spans; ++j) {
      const int dj = t.spans[static_cast<std::size_t>(j)].depth;
      if (dj < depth) break;
      if (dj == depth) {
        last = false;
        break;
      }
    }
    const Span& s = t.spans[static_cast<std::size_t>(i)];
    append_row(out, prefix, last, s.name, s.index, ms_between(s.begin, s.end), nullptr);
    i = render_spans(out, t, i + 1, depth + 1, prefix + (last ? "   " : "│  "));
  }
  return i;
}

}  // namespace

std::string format_trace(const RequestTrace& t) {
  std::string out;
  char head[192];
  std::snprintf(head, sizeof(head),
                "request #%llu  variant=%s  priority=%s  batch=%d  total=%.2f ms\n",
                static_cast<unsigned long long>(t.seq), t.variant,
                trace_priority_name(t.priority), t.batch_size, t.total_ms());
  out += head;
  append_row(out, "", false, "queue wait", -1, ms_between(t.enqueue, t.batch_close),
             "enqueue -> batch-close");
  append_row(out, "", false, "dispatch", -1, ms_between(t.batch_close, t.forward_start),
             "batch-close -> forward-start");
  append_row(out, "", false, "forward", -1, ms_between(t.forward_start, t.forward_end), "");
  render_spans(out, t, 0, 0, "│  ");
  if (t.spans_dropped > 0) {
    char note[64];
    std::snprintf(note, sizeof(note), "│  (+%d spans dropped)\n", t.spans_dropped);
    out += note;
  }
  append_row(out, "", true, "resolve", -1, ms_between(t.forward_end, t.complete),
             "forward-end -> complete");
  return out;
}

}  // namespace ascend::runtime::trace
