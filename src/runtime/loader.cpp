#include "runtime/loader.h"

#include <algorithm>
#include <stdexcept>

#include "runtime/failpoint.h"

namespace ascend::runtime {

namespace {
failpoint::Site fp_decode{"loader.decode"};
}  // namespace

Loader::Loader(DecodeFn decode, int num_samples, int sample_dim, LoaderOptions opts)
    : decode_(std::move(decode)), num_samples_(num_samples), sample_dim_(sample_dim),
      opts_(opts) {
  if (!decode_) throw std::invalid_argument("Loader: decode callback is empty");
  if (num_samples_ < 1) throw std::invalid_argument("Loader: num_samples must be >= 1");
  if (sample_dim_ < 1) throw std::invalid_argument("Loader: sample_dim must be >= 1");
  opts_.workers = std::max(1, opts_.workers);
  opts_.prefetch_batches = std::max(2, opts_.prefetch_batches);
  opts_.batch_size = std::max(1, opts_.batch_size);
  total_batches_ =
      (static_cast<long long>(num_samples_) + opts_.batch_size - 1) / opts_.batch_size;
  // The whole ring is allocated up front; nothing below ever resizes it.
  slots_.resize(static_cast<std::size_t>(opts_.prefetch_batches));
  for (Slot& s : slots_)
    s.buf.resize(static_cast<std::size_t>(opts_.batch_size) * sample_dim_);
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) workers_.emplace_back([this] { worker_loop(); });
}

Loader::~Loader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  slot_cv_.notify_all();
  ready_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void Loader::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    slot_cv_.wait(lock, [this] {
      if (closed_ || error_) return true;
      if (!opts_.loop && next_fill_ >= total_batches_) return true;  // stream drained
      return std::any_of(slots_.begin(), slots_.end(), [](const Slot& s) { return s.free; });
    });
    if (closed_ || error_) return;
    if (!opts_.loop && next_fill_ >= total_batches_) return;
    auto it = std::find_if(slots_.begin(), slots_.end(), [](const Slot& s) { return s.free; });
    Slot& slot = *it;
    const long long seq = next_fill_++;
    slot.free = false;
    slot.ready = false;
    slot.seq = seq;
    const long long first = seq * opts_.batch_size;
    slot.size = opts_.loop ? opts_.batch_size
                           : static_cast<int>(std::min<long long>(opts_.batch_size,
                                                                  num_samples_ - first));
    lock.unlock();
    try {
      for (int r = 0; r < slot.size; ++r) {
        const long long idx = first + r;
        ASCEND_FAILPOINT(fp_decode);
        decode_(static_cast<int>(opts_.loop ? idx % num_samples_ : idx),
                slot.buf.data() + static_cast<std::size_t>(r) * sample_dim_);
      }
      lock.lock();
      slot.ready = true;
    } catch (...) {
      lock.lock();
      if (!error_) error_ = std::current_exception();
      slot.free = true;  // never handed over
    }
    ready_cv_.notify_all();
  }
}

int Loader::find_ready(long long seq) const {
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].ready && slots_[i].seq == seq) return static_cast<int>(i);
  return -1;
}

Loader::Batch Loader::next() {
  std::unique_lock<std::mutex> lock(mu_);
  const long long seq = next_out_;
  if (!opts_.loop && seq >= total_batches_) return Batch{};
  ready_cv_.wait(lock, [&] { return error_ || closed_ || find_ready(seq) >= 0; });
  if (const int i = find_ready(seq); i >= 0) {
    Slot& slot = slots_[static_cast<std::size_t>(i)];
    slot.ready = false;  // owned by the consumer until recycle()
    ++next_out_;
    return Batch{slot.buf.data(), slot.size, sample_dim_, seq};
  }
  if (error_) std::rethrow_exception(error_);
  throw std::runtime_error("Loader::next called during shutdown");
}

void Loader::recycle(const Batch& b) {
  if (b.end()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find_if(slots_.begin(), slots_.end(),
                           [&](const Slot& s) { return s.buf.data() == b.data; });
    if (it == slots_.end())
      throw std::invalid_argument("Loader::recycle: batch does not belong to this loader");
    it->free = true;
    it->seq = -1;
  }
  slot_cv_.notify_one();
}

}  // namespace ascend::runtime
