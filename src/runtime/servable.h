#pragma once
// servable.h — the model-agnostic serving contract.
//
// A Servable is anything the InferenceEngine can serve: a batched forward
// plus enough shape metadata for the engine to assemble request payloads
// into input tensors and validate them without knowing what the model is.
// The ViT execution modes (fp32 blocked-GEMM, W2A2 packed-ternary, SC
// circuit emulation, SC LUT-cached) are adapters over one trained model —
// see vit/servable.h — but the engine only ever sees this interface, so a
// registry can mix models and fidelity modes freely.
//
// Thread-safety contract: infer() must be const and re-entrant — the engine
// runs up to EngineOptions::concurrent_forwards batch forwards through one
// Servable at a time, from different threads, with no external locking.

#include <stdexcept>
#include <string>

#include "nn/tensor.h"

namespace ascend::runtime {

/// Thrown when a request names a variant the registry does not hold.
struct UnknownVariantError : std::invalid_argument {
  explicit UnknownVariantError(const std::string& variant)
      : std::invalid_argument("unknown variant: '" + variant + "'") {}
};

/// Abstract servable model: a re-entrant batched forward with stable shape
/// metadata and a stable identity.
class Servable {
 public:
  virtual ~Servable() = default;

  /// Batched forward: `batch` is [B, input_dim()], the result is
  /// [B, output_dim()]. Must be const and re-entrant (see file comment).
  virtual nn::Tensor infer(const nn::Tensor& batch) const = 0;

  /// Flattened per-request payload length this servable consumes.
  virtual int input_dim() const = 0;
  /// Per-request output row length (ViT adapters: the class count).
  virtual int output_dim() const = 0;

  /// Stable identity used as the registry key and the request routing key.
  /// Must not change over the servable's lifetime.
  virtual const std::string& variant_id() const = 0;
};

}  // namespace ascend::runtime
