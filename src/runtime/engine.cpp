#include "runtime/engine.h"

#include <algorithm>
#include <numeric>

namespace ascend::runtime {

using nn::Tensor;

namespace {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

int argmax_row(const Tensor& logits, int r) {
  int best = 0;
  for (int c = 1; c < logits.dim(1); ++c)
    if (logits.at(r, c) > logits.at(r, best)) best = c;
  return best;
}

}  // namespace

InferenceEngine::InferenceEngine(vit::VisionTransformer& model, const vit::ScInferenceConfig& cfg,
                                 EngineOptions opts)
    : model_(model),
      cfg_(cfg),
      opts_(opts),
      pool_(resolve_threads(opts.threads)),
      batcher_(opts.max_batch, opts.max_delay, opts.max_pending, opts.overflow) {
  if (opts_.concurrent_forwards < 1) opts_.concurrent_forwards = 1;
  try {
    install_hooks();
  } catch (...) {
    // A half-installed hook would dangle on the pool once members unwind.
    model_.clear_hooks();
    throw;
  }
  forward_pool_ = std::make_unique<ThreadPool>(opts_.concurrent_forwards);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

InferenceEngine::~InferenceEngine() {
  batcher_.close();
  dispatcher_.join();
  forward_pool_.reset();  // drains the in-flight batch forwards
  model_.clear_hooks();
}

void InferenceEngine::install_hooks() {
  if (cfg_.use_sc_softmax) {
    softmax_cfg_ = cfg_.softmax;
    softmax_cfg_.m = model_.config().tokens();
    softmax_cfg_.validate();
    if (opts_.use_tf_cache) softmax_lut_ = &global_tf_cache().softmax(softmax_cfg_);
    const sc::SoftmaxIterConfig sm = softmax_cfg_;
    const SoftmaxLut* lut = softmax_lut_;
    ThreadPool* pool = &pool_;
    model_.set_softmax_hook([sm, lut, pool](const Tensor& scores) {
      const int rows = scores.dim(0), m = scores.dim(1);
      Tensor out({rows, m});
      pool->parallel_for(0, rows, [&](int lo, int hi) {
        std::vector<double> row(static_cast<std::size_t>(m));
        for (int r = lo; r < hi; ++r) {
          for (int c = 0; c < m; ++c) row[static_cast<std::size_t>(c)] = scores.at(r, c);
          const auto y = lut ? (*lut)(row) : sc::softmax_iterative_sc(row, sm);
          for (int c = 0; c < m; ++c)
            out.at(r, c) = static_cast<float>(y[static_cast<std::size_t>(c)]);
        }
      });
      return out;
    });
  }
  if (cfg_.use_sc_gelu) {
    if (opts_.use_tf_cache)
      gelu_lut_ = &global_tf_cache().gelu(cfg_.gelu_bsl, -cfg_.gelu_range, cfg_.gelu_range, 16);
    else
      gelu_proto_ = std::make_shared<const sc::GateAssistedSI>(
          sc::make_gelu_block(cfg_.gelu_bsl, -cfg_.gelu_range, cfg_.gelu_range, 16));
    const GateSiLut* lut = gelu_lut_;
    auto proto = gelu_proto_;
    ThreadPool* pool = &pool_;
    model_.set_gelu_hook([lut, proto, pool](const Tensor& x) {
      // Per-call emulator instance: concurrent forwards never share one
      // (reads within the call are const, so the chunks may share it).
      std::unique_ptr<const sc::GateAssistedSI> block;
      if (!lut) block = std::make_unique<const sc::GateAssistedSI>(*proto);
      Tensor y(x.shape());
      pool->parallel_for(0, static_cast<int>(x.size()), [&](int lo, int hi) {
        for (int i = lo; i < hi; ++i) {
          const std::size_t s = static_cast<std::size_t>(i);
          y[s] = static_cast<float>(lut ? (*lut)(x[s]) : block->transfer(x[s]));
        }
      });
      return y;
    });
  }
}

std::future<Prediction> InferenceEngine::submit(std::vector<float> image) {
  return batcher_.enqueue(std::move(image));
}

void InferenceEngine::dispatch_loop() {
  for (;;) {
    // Throttle before pulling: while `concurrent_forwards` batches are in
    // flight, requests keep coalescing in the batcher.
    {
      std::unique_lock<std::mutex> lock(flight_mu_);
      flight_cv_.wait(lock, [this] { return in_flight_ < opts_.concurrent_forwards; });
    }
    std::vector<Request> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained

    int cur;
    {
      std::lock_guard<std::mutex> lock(flight_mu_);
      cur = ++in_flight_;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.max_in_flight = std::max(stats_.max_in_flight, cur);
    }
    forward_pool_->submit([this, b = std::move(batch)]() mutable {
      try {
        process_batch(b);
      } catch (...) {
        // process_batch resolves every promise itself; never lose the slot.
      }
      {
        std::lock_guard<std::mutex> lock(flight_mu_);
        --in_flight_;
      }
      flight_cv_.notify_all();
    });
  }
}

void InferenceEngine::process_batch(std::vector<Request>& batch) {
  const auto closed_at = std::chrono::steady_clock::now();
  const int b = static_cast<int>(batch.size());
  const int pixels = static_cast<int>(batch[0].image.size());
  Tensor images({b, pixels});
  std::vector<bool> rejected(static_cast<std::size_t>(b), false);
  for (int r = 0; r < b; ++r) {
    if (static_cast<int>(batch[static_cast<std::size_t>(r)].image.size()) != pixels) {
      // Odd-sized request: fail it alone (its row stays zero) and keep
      // serving the rest of the batch.
      rejected[static_cast<std::size_t>(r)] = true;
      batch[static_cast<std::size_t>(r)].promise.set_exception(std::make_exception_ptr(
          std::invalid_argument("InferenceEngine: inconsistent image size in batch")));
      continue;
    }
    std::copy(batch[static_cast<std::size_t>(r)].image.begin(),
              batch[static_cast<std::size_t>(r)].image.end(),
              images.data() + static_cast<std::size_t>(r) * pixels);
  }

  Tensor logits;
  try {
    logits = model_.infer(images);
  } catch (...) {
    const auto err = std::current_exception();
    for (int r = 0; r < b; ++r)
      if (!rejected[static_cast<std::size_t>(r)])
        batch[static_cast<std::size_t>(r)].promise.set_exception(err);
    return;
  }

  double queue_ms_sum = 0.0;
  int served = 0;
  std::vector<Prediction> preds(static_cast<std::size_t>(b));
  for (int r = 0; r < b; ++r) {
    if (rejected[static_cast<std::size_t>(r)]) continue;
    ++served;
    Prediction& pred = preds[static_cast<std::size_t>(r)];
    pred.label = argmax_row(logits, r);
    pred.logits.resize(static_cast<std::size_t>(logits.dim(1)));
    for (int c = 0; c < logits.dim(1); ++c)
      pred.logits[static_cast<std::size_t>(c)] = logits.at(r, c);
    pred.queue_ms = std::chrono::duration<double, std::milli>(
                        closed_at - batch[static_cast<std::size_t>(r)].enqueued)
                        .count();
    queue_ms_sum += pred.queue_ms;
  }

  // Record stats before resolving any future: a client that sees its
  // result must also see it reflected in stats().
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.images += static_cast<std::uint64_t>(served);
    stats_.batches += 1;
    if (b >= batcher_.max_batch()) stats_.full_batches += 1;
    stats_.total_queue_ms += queue_ms_sum;
    stats_.max_batch_seen = std::max(stats_.max_batch_seen, b);
  }

  for (int r = 0; r < b; ++r)
    if (!rejected[static_cast<std::size_t>(r)])
      batch[static_cast<std::size_t>(r)].promise.set_value(
          std::move(preds[static_cast<std::size_t>(r)]));
}

std::vector<int> InferenceEngine::predict_batch(const Tensor& images) {
  const Tensor logits = model_.infer(images);
  std::vector<int> labels(static_cast<std::size_t>(logits.dim(0)));
  for (int r = 0; r < logits.dim(0); ++r) labels[static_cast<std::size_t>(r)] = argmax_row(logits, r);
  return labels;
}

double InferenceEngine::evaluate(const vit::Dataset& data, int batch_size) {
  const int n = data.size();
  int correct = 0;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    std::vector<int> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    const vit::Batch batch = vit::take_batch(data, idx);
    const std::vector<int> labels = predict_batch(batch.images);
    for (std::size_t r = 0; r < labels.size(); ++r)
      if (labels[r] == batch.labels[r]) ++correct;
  }
  return 100.0 * correct / std::max(n, 1);
}

EngineStats InferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace ascend::runtime
