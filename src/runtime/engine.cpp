#include "runtime/engine.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "vit/model.h"
#include "vit/servable.h"

namespace ascend::runtime {

using nn::Tensor;

namespace {

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

int argmax_row(const Tensor& logits, int r) {
  int best = 0;
  for (int c = 1; c < logits.dim(1); ++c)
    if (logits.at(r, c) > logits.at(r, best)) best = c;
  return best;
}

PriorityStats& prio(std::array<PriorityStats, kNumPriorities>& a, Priority p) {
  return a[static_cast<std::size_t>(p)];
}

}  // namespace

InferenceEngine::InferenceEngine(std::shared_ptr<ModelRegistry> registry, EngineOptions opts)
    : opts_(opts),
      batcher_(opts.max_batch, opts.max_delay, opts.max_pending, opts.overflow),
      registry_(std::move(registry)) {
  if (!registry_) throw std::invalid_argument("InferenceEngine: null registry");
  if (opts_.default_variant.empty()) {
    const std::vector<std::string> ids = registry_->variant_ids();
    if (ids.empty())
      throw std::invalid_argument("InferenceEngine: registry holds no variants");
    if (ids.size() > 1)
      throw std::invalid_argument(
          "InferenceEngine: multi-variant registry needs EngineOptions::default_variant");
    default_variant_ = ids.front();
  } else {
    if (!registry_->contains(opts_.default_variant))
      throw UnknownVariantError(opts_.default_variant);
    default_variant_ = opts_.default_variant;
  }
  start();
}

InferenceEngine::InferenceEngine(vit::VisionTransformer& model, const vit::ScInferenceConfig& cfg,
                                 EngineOptions opts)
    : opts_(opts),
      batcher_(opts.max_batch, opts.max_delay, opts.max_pending, opts.overflow) {
  // The pre-registry engine, reproduced: one SC servable driving the
  // caller's model in place (hooks installed here, restored on destruction),
  // the engine's worker pool running the per-activation SC work.
  pool_ = std::make_unique<ThreadPool>(resolve_threads(opts_.threads));
  vit::ScServableOptions sopts;
  sopts.use_tf_cache = opts_.use_tf_cache;
  sopts.pool = pool_.get();
  registry_ = std::make_shared<ModelRegistry>();
  registry_->publish(vit::make_sc_servable_in_place(model, cfg, sopts, "sc"));
  default_variant_ = "sc";
  start();
}

void InferenceEngine::start() {
  if (opts_.concurrent_forwards < 1) opts_.concurrent_forwards = 1;
  batcher_.set_drop_observer([this](Priority p) { count_drop(p); });
  forward_pool_ = std::make_unique<ThreadPool>(opts_.concurrent_forwards);
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

InferenceEngine::~InferenceEngine() {
  batcher_.close();
  dispatcher_.join();
  forward_pool_.reset();  // drains the in-flight batch forwards
  // registry_ (and with it any in-place SC servable, which restores the
  // model's hooks) is released by member destruction, before pool_.
}

void InferenceEngine::count_drop(Priority p) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  prio(stats_.by_priority, p).deadline_dropped += 1;
}

const std::string& InferenceEngine::resolve_variant(const std::string& requested) const {
  return requested.empty() ? default_variant_ : requested;
}

std::future<Prediction> InferenceEngine::submit(std::vector<float> image, RequestOptions ropts) {
  const Priority p = ropts.priority;
  std::string variant = resolve_variant(ropts.variant);
  if (!registry_->contains(variant)) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    prio(stats_.by_priority, p).rejected += 1;
    throw UnknownVariantError(variant);
  }
  ropts.variant = std::move(variant);
  // Count `queued` before handing the request to the batcher: once enqueued
  // it can be served (and counted) immediately, and a stats() reader must
  // never observe served > queued. A rejected enqueue rolls the count back.
  const bool counted = ropts.deadline.count() >= 0;  // expired-on-arrival never queues
  if (counted) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    prio(stats_.by_priority, p).queued += 1;
  }
  try {
    return batcher_.enqueue(std::move(image), std::move(ropts));
  } catch (const QueueFullError&) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (counted) prio(stats_.by_priority, p).queued -= 1;
    prio(stats_.by_priority, p).rejected += 1;
    throw;
  } catch (...) {
    if (counted) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      prio(stats_.by_priority, p).queued -= 1;
    }
    throw;
  }
}

void InferenceEngine::dispatch_loop() {
  for (;;) {
    // Throttle before pulling: while `concurrent_forwards` batches are in
    // flight, requests keep coalescing in the batcher.
    {
      std::unique_lock<std::mutex> lock(flight_mu_);
      flight_cv_.wait(lock, [this] { return in_flight_ < opts_.concurrent_forwards; });
    }
    std::vector<Request> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained

    int cur;
    {
      std::lock_guard<std::mutex> lock(flight_mu_);
      cur = ++in_flight_;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.max_in_flight = std::max(stats_.max_in_flight, cur);
    }
    forward_pool_->submit([this, b = std::move(batch)]() mutable {
      try {
        process_batch(b);
      } catch (...) {
        // process_batch resolves every promise itself; never lose the slot.
      }
      {
        std::lock_guard<std::mutex> lock(flight_mu_);
        --in_flight_;
      }
      flight_cv_.notify_all();
    });
  }
}

void InferenceEngine::process_batch(std::vector<Request>& batch) {
  const auto closed_at = std::chrono::steady_clock::now();
  const int b = static_cast<int>(batch.size());
  const std::string& variant = batch[0].variant;  // next_batch groups per variant

  // The generation snapshot this batch runs on: a concurrent hot-swap
  // republishing the variant never blocks or invalidates us.
  std::shared_ptr<const Servable> servable = registry_->try_get(variant);
  if (!servable) {
    const auto err = std::make_exception_ptr(UnknownVariantError(variant));
    for (auto& req : batch) req.promise.set_exception(err);
    return;
  }

  const int pixels = servable->input_dim();
  Tensor images({b, pixels});
  std::vector<bool> rejected(static_cast<std::size_t>(b), false);
  std::array<std::uint64_t, kNumPriorities> dropped{};
  for (int r = 0; r < b; ++r) {
    Request& req = batch[static_cast<std::size_t>(r)];
    if (req.expired(closed_at)) {
      // Last line of deadline defence: expired while the batch sat in the
      // forward queue. Fail fast; the forward never sees this row.
      rejected[static_cast<std::size_t>(r)] = true;
      dropped[static_cast<std::size_t>(req.priority)] += 1;
      req.promise.set_exception(std::make_exception_ptr(DeadlineExceededError{}));
      continue;
    }
    if (static_cast<int>(req.image.size()) != pixels) {
      // Odd-sized request: fail it alone (its row stays zero) and keep
      // serving the rest of the batch.
      rejected[static_cast<std::size_t>(r)] = true;
      req.promise.set_exception(std::make_exception_ptr(std::invalid_argument(
          "InferenceEngine: payload size does not match variant input_dim")));
      continue;
    }
    std::copy(req.image.begin(), req.image.end(),
              images.data() + static_cast<std::size_t>(r) * pixels);
  }

  bool any_live = false;
  for (int r = 0; r < b; ++r)
    if (!rejected[static_cast<std::size_t>(r)]) any_live = true;
  if (!any_live) {
    // Every row was dropped — never spend a model forward on a dead batch
    // (this is exactly the overloaded case where a forward hurts most).
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.batches += 1;
    stats_.max_batch_seen = std::max(stats_.max_batch_seen, b);
    for (std::size_t p = 0; p < kNumPriorities; ++p)
      stats_.by_priority[p].deadline_dropped += dropped[p];
    return;
  }

  Tensor logits;
  try {
    logits = servable->infer(images);
  } catch (...) {
    const auto err = std::current_exception();
    for (int r = 0; r < b; ++r)
      if (!rejected[static_cast<std::size_t>(r)])
        batch[static_cast<std::size_t>(r)].promise.set_exception(err);
    return;
  }

  double queue_ms_sum = 0.0;
  int served = 0;
  std::array<std::uint64_t, kNumPriorities> served_by_prio{};
  std::vector<Prediction> preds(static_cast<std::size_t>(b));
  for (int r = 0; r < b; ++r) {
    if (rejected[static_cast<std::size_t>(r)]) continue;
    ++served;
    served_by_prio[static_cast<std::size_t>(batch[static_cast<std::size_t>(r)].priority)] += 1;
    Prediction& pred = preds[static_cast<std::size_t>(r)];
    pred.label = argmax_row(logits, r);
    pred.variant = variant;
    pred.logits.resize(static_cast<std::size_t>(logits.dim(1)));
    for (int c = 0; c < logits.dim(1); ++c)
      pred.logits[static_cast<std::size_t>(c)] = logits.at(r, c);
    pred.queue_ms = std::chrono::duration<double, std::milli>(
                        closed_at - batch[static_cast<std::size_t>(r)].enqueued)
                        .count();
    queue_ms_sum += pred.queue_ms;
  }

  // Record stats before resolving any future: a client that sees its
  // result must also see it reflected in stats().
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.images += static_cast<std::uint64_t>(served);
    stats_.batches += 1;
    if (b >= batcher_.max_batch()) stats_.full_batches += 1;
    stats_.total_queue_ms += queue_ms_sum;
    stats_.max_batch_seen = std::max(stats_.max_batch_seen, b);
    for (std::size_t p = 0; p < kNumPriorities; ++p) {
      stats_.by_priority[p].served += served_by_prio[p];
      stats_.by_priority[p].deadline_dropped += dropped[p];
    }
  }

  for (int r = 0; r < b; ++r)
    if (!rejected[static_cast<std::size_t>(r)])
      batch[static_cast<std::size_t>(r)].promise.set_value(
          std::move(preds[static_cast<std::size_t>(r)]));
}

std::vector<int> InferenceEngine::predict_batch(const Tensor& images, const std::string& variant) {
  const std::shared_ptr<const Servable> servable = registry_->get(resolve_variant(variant));
  const Tensor logits = servable->infer(images);
  std::vector<int> labels(static_cast<std::size_t>(logits.dim(0)));
  for (int r = 0; r < logits.dim(0); ++r) labels[static_cast<std::size_t>(r)] = argmax_row(logits, r);
  return labels;
}

double InferenceEngine::evaluate(const vit::Dataset& data, int batch_size,
                                 const std::string& variant) {
  const int n = data.size();
  int correct = 0;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    std::vector<int> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    const vit::Batch batch = vit::take_batch(data, idx);
    const std::vector<int> labels = predict_batch(batch.images, variant);
    for (std::size_t r = 0; r < labels.size(); ++r)
      if (labels[r] == batch.labels[r]) ++correct;
  }
  return 100.0 * correct / std::max(n, 1);
}

EngineStats InferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace ascend::runtime
