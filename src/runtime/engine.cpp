#include "runtime/engine.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "runtime/alloc_count.h"
#include "runtime/failpoint.h"

#include "vit/model.h"
#include "vit/servable.h"

namespace ascend::runtime {

using nn::Tensor;

namespace {

failpoint::Site fp_infer{"engine.infer"};

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

int argmax_row(const Tensor& logits, int r) {
  int best = 0;
  for (int c = 1; c < logits.dim(1); ++c)
    if (logits.at(r, c) > logits.at(r, best)) best = c;
  return best;
}

void atomic_max(std::atomic<int>& target, int v) {
  int cur = target.load();
  while (v > cur && !target.compare_exchange_weak(cur, v)) {
  }
}

std::uint64_t usec_between(std::chrono::steady_clock::time_point a,
                           std::chrono::steady_clock::time_point b) {
  if (b <= a) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

}  // namespace

InferenceEngine::InferenceEngine(std::shared_ptr<ModelRegistry> registry, EngineOptions opts)
    : opts_(opts),
      batcher_(opts.max_batch, opts.max_delay, opts.max_pending, opts.overflow),
      tracer_(opts.trace),
      registry_(std::move(registry)) {
  if (!registry_) throw std::invalid_argument("InferenceEngine: null registry");
  if (opts_.default_variant.empty()) {
    const std::vector<std::string> ids = registry_->variant_ids();
    if (ids.empty())
      throw std::invalid_argument("InferenceEngine: registry holds no variants");
    if (ids.size() > 1)
      throw std::invalid_argument(
          "InferenceEngine: multi-variant registry needs EngineOptions::default_variant");
    default_variant_ = ids.front();
  } else {
    if (!registry_->contains(opts_.default_variant))
      throw UnknownVariantError(opts_.default_variant);
    default_variant_ = opts_.default_variant;
  }
  start();
}

InferenceEngine::InferenceEngine(vit::VisionTransformer& model, const vit::ScInferenceConfig& cfg,
                                 EngineOptions opts)
    : opts_(opts),
      batcher_(opts.max_batch, opts.max_delay, opts.max_pending, opts.overflow),
      tracer_(opts.trace) {
  // The pre-registry engine, reproduced: one SC servable driving the
  // caller's model in place (hooks installed here, restored on destruction),
  // the engine's worker pool running the per-activation SC work.
  pool_ = std::make_unique<ThreadPool>(resolve_threads(opts_.threads));
  vit::ScServableOptions sopts;
  sopts.use_tf_cache = opts_.use_tf_cache;
  sopts.pool = pool_.get();
  registry_ = std::make_shared<ModelRegistry>();
  registry_->publish(vit::make_sc_servable_in_place(model, cfg, sopts, "sc"));
  default_variant_ = "sc";
  start();
}

void InferenceEngine::start() {
  if (opts_.concurrent_forwards < 1) opts_.concurrent_forwards = 1;
  metrics_ = opts_.metrics ? opts_.metrics : std::make_shared<metrics::MetricsRegistry>();
  register_metric_series();
  batcher_.set_drop_observer([this](Priority p) { count_drop(p); });
  forward_pool_ = std::make_unique<ThreadPool>(opts_.concurrent_forwards);
  if (opts_.forward_timeout.count() > 0) watchdog_ = std::thread([this] { watchdog_loop(); });
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void InferenceEngine::register_metric_series() {
  using metrics::Labels;
  using metrics::SeriesKind;
  for (int p = 0; p < kNumPriorities; ++p) {
    const auto pr = static_cast<Priority>(p);
    const Labels labels{{"priority", priority_name(pr)}};
    AtomicPriorityStats& ps = pstats_[static_cast<std::size_t>(p)];
    metric_callbacks_.push_back(metrics_->register_callback(
        "ascend_requests_queued_total", labels, SeriesKind::kCounter,
        [&ps] { return static_cast<double>(ps.queued.load()); },
        "Requests accepted into the scheduler queue"));
    metric_callbacks_.push_back(metrics_->register_callback(
        "ascend_requests_served_total", labels, SeriesKind::kCounter,
        [&ps] { return static_cast<double>(ps.served.load()); },
        "Requests resolved with a Prediction"));
    metric_callbacks_.push_back(metrics_->register_callback(
        "ascend_requests_deadline_dropped_total", labels, SeriesKind::kCounter,
        [&ps] { return static_cast<double>(ps.deadline_dropped.load()); },
        "Requests failed fast with DeadlineExceededError"));
    metric_callbacks_.push_back(metrics_->register_callback(
        "ascend_requests_rejected_total", labels, SeriesKind::kCounter,
        [&ps] { return static_cast<double>(ps.rejected.load()); },
        "Requests rejected at submit (queue full / unknown variant)"));
    metric_callbacks_.push_back(metrics_->register_callback(
        "ascend_retries_total", labels, SeriesKind::kCounter,
        [&ps] { return static_cast<double>(ps.retries.load()); },
        "Extra primary-variant forward attempts spent on failed forwards"));
    metric_callbacks_.push_back(metrics_->register_callback(
        "ascend_fallback_reroutes_total", labels, SeriesKind::kCounter,
        [&ps] { return static_cast<double>(ps.fallback_served.load()); },
        "Requests degraded to their RetryPolicy fallback variant"));
    metric_callbacks_.push_back(metrics_->register_callback(
        "ascend_queue_depth", labels, SeriesKind::kGauge,
        [this, pr] { return static_cast<double>(batcher_.pending(pr)); },
        "Live scheduler queue depth"));
    queue_wait_hist_[static_cast<std::size_t>(p)] =
        &metrics_->histogram("ascend_queue_wait_usec", labels, {},
                             "Enqueue to batch-close wait per served request");
  }
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_queue_depth_total", {}, SeriesKind::kGauge,
      [this] { return static_cast<double>(batcher_.pending()); },
      "Live scheduler queue depth across all priorities"));
  // Per-variant depth, surfacing Batcher::pending_counts().by_variant. One
  // gauge per variant registered at engine start; a variant published later
  // is still counted in by_variant but only scraped once an engine restart
  // (or a ShardSet rebuild) re-registers the series.
  for (const std::string& variant : registry_->variant_ids()) {
    metric_callbacks_.push_back(metrics_->register_callback(
        "ascend_queue_depth", Labels{{"variant", variant}}, SeriesKind::kGauge,
        [this, variant] { return static_cast<double>(batcher_.pending_counts().variant(variant)); },
        "Live scheduler queue depth"));
  }
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_in_flight_forwards", {}, SeriesKind::kGauge,
      [this] { return static_cast<double>(in_flight_.load()); },
      "Batch forwards running right now"));
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_peak_in_flight_forwards", {}, SeriesKind::kGauge,
      [this] { return static_cast<double>(max_in_flight_.load()); },
      "Peak concurrent batch forwards observed"));
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_images_served_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(images_.load()); }, "Images served via submit()"));
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_batches_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(batches_.load()); }, "Batches dispatched"));
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_full_batches_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(full_batches_.load()); },
      "Batches closed by the size cutoff"));
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_process_allocations_total", {}, SeriesKind::kCounter,
      [] { return static_cast<double>(alloc_count()); },
      "Heap allocations seen by the interposed operator new (stays 0 unless "
      "the alloc_interpose library is linked into this binary)"));
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_arena_pool_created", {}, SeriesKind::kGauge,
      [this] { return static_cast<double>(arena_pool_.created()); },
      "Activation arenas created by this engine's pool (bounded by peak "
      "concurrent forwards)"));
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_watchdog_trips_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(watchdog_trips_.load()); },
      "In-flight forwards abandoned past EngineOptions::forward_timeout"));
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_registry_publishes_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(registry_->publishes()); },
      "Successful variant publishes (plain and canary-checked)"));
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_registry_rollbacks_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(registry_->rollbacks()); },
      "Rejected supervised publishes (incumbent kept serving)"));
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_failpoint_fires_total", {}, SeriesKind::kCounter,
      [] { return static_cast<double>(failpoint::total_fires()); },
      "Faults injected by armed failpoint sites process-wide"));
  // Batch sizes are small integers: every fill level is an exact bucket.
  metrics::HistogramOptions fill_opts;
  fill_opts.sub_bits = 7;
  fill_opts.max_exp = 16;
  batch_fill_hist_ = &metrics_->histogram("ascend_batch_fill", {}, fill_opts,
                                          "Requests coalesced per dispatched batch");
}

InferenceEngine::~InferenceEngine() {
  // Shutdown close: everything still queued fails promptly with
  // EngineShutdownError; only in-flight forwards are allowed to drain.
  batcher_.close_now();
  dispatcher_.join();
  forward_pool_.reset();  // drains the in-flight batch forwards
  // Stop the watchdog after the pool drain: it stays armed while the last
  // forwards run, so clients blocked on in-flight futures are failed at the
  // deadline even during shutdown (the dtor itself still waits out the
  // slow worker — it cannot cancel a thread, only outlive its clients).
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watch_stop_ = true;
  }
  watch_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // A shared metrics registry outlives the engine: drop the callback series
  // that capture `this` before the members they read are destroyed.
  for (const metrics::CallbackId id : metric_callbacks_) metrics_->remove_callback(id);
  // registry_ (and with it any in-place SC servable, which restores the
  // model's hooks) is released by member destruction, before pool_.
}

void InferenceEngine::count_drop(Priority p) {
  pstats_[static_cast<std::size_t>(p)].deadline_dropped.fetch_add(1);
}

const std::string& InferenceEngine::resolve_variant(const std::string& requested) const {
  return requested.empty() ? default_variant_ : requested;
}

std::future<Prediction> InferenceEngine::submit(std::vector<float> image, RequestOptions ropts) {
  AtomicPriorityStats& ps = pstats_[static_cast<std::size_t>(ropts.priority)];
  std::string variant = resolve_variant(ropts.variant);
  if (!registry_->contains(variant)) {
    ps.rejected.fetch_add(1);
    throw UnknownVariantError(variant);
  }
  ropts.variant = std::move(variant);
  // Count `queued` before handing the request to the batcher: once enqueued
  // it can be served (and counted) immediately, and a stats() or scrape
  // reader must never observe served > queued (seq_cst atomics keep the
  // program order visible). A rejected enqueue rolls the count back.
  const bool counted = ropts.deadline.count() >= 0;  // expired-on-arrival never queues
  if (counted) ps.queued.fetch_add(1);
  try {
    return batcher_.enqueue(std::move(image), std::move(ropts));
  } catch (const QueueFullError&) {
    if (counted) ps.queued.fetch_sub(1);
    ps.rejected.fetch_add(1);
    throw;
  } catch (...) {
    if (counted) ps.queued.fetch_sub(1);
    throw;
  }
}

InferenceEngine::BatchJob::BatchJob(InferenceEngine* engine, std::vector<Request> b)
    : eng(engine), batch(std::move(b)), claimed(new std::atomic<bool>[batch.size()]) {
  for (std::size_t r = 0; r < batch.size(); ++r)
    claimed[r].store(false, std::memory_order_relaxed);
}

InferenceEngine::BatchJob::~BatchJob() {
  // Unresolved rows here mean run() never executed — the pool.task fail
  // point threw inside the packaged task before the body. The injected
  // fault becomes the rows' typed error, and the slot is never leaked.
  bool unresolved = false;
  for (std::size_t r = 0; r < batch.size(); ++r)
    if (!claimed[r].load(std::memory_order_relaxed)) unresolved = true;
  if (unresolved)
    fail_unresolved(std::make_exception_ptr(failpoint::InjectedFaultError("pool.task")));
  release_slot();
}

void InferenceEngine::BatchJob::fail_unresolved(const std::exception_ptr& err) {
  for (std::size_t r = 0; r < batch.size(); ++r)
    if (claim(r)) batch[r].promise.set_exception(err);
}

void InferenceEngine::BatchJob::release_slot() {
  if (slot_released.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(eng->flight_mu_);
    eng->in_flight_.fetch_sub(1);
  }
  eng->flight_cv_.notify_all();
}

void InferenceEngine::BatchJob::run(const std::shared_ptr<BatchJob>& self) {
  eng->register_flight(self);
  try {
    eng->process_batch(*this);
  } catch (...) {
    // Any error escaping the forward path fails the whole batch (rows the
    // watchdog already claimed stay with their WatchdogTimeoutError).
    fail_unresolved(std::current_exception());
  }
  eng->unregister_flight(this);
  release_slot();
}

void InferenceEngine::register_flight(const std::shared_ptr<BatchJob>& job) {
  if (opts_.forward_timeout.count() <= 0) return;
  job->started = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    flights_.push_back(job);
  }
  watch_cv_.notify_all();
}

void InferenceEngine::unregister_flight(const BatchJob* job) {
  if (opts_.forward_timeout.count() <= 0) return;
  std::lock_guard<std::mutex> lock(watch_mu_);
  for (std::size_t i = 0; i < flights_.size(); ++i) {
    if (flights_[i].get() == job) {
      flights_.erase(flights_.begin() + static_cast<long>(i));
      return;
    }
  }
  // Absent: the watchdog already abandoned this flight.
}

void InferenceEngine::watchdog_loop() {
  const auto timeout = opts_.forward_timeout;
  std::unique_lock<std::mutex> lock(watch_mu_);
  while (!watch_stop_) {
    const auto now = std::chrono::steady_clock::now();
    auto wake = std::chrono::steady_clock::time_point::max();
    std::vector<std::shared_ptr<BatchJob>> tripped;
    for (std::size_t i = 0; i < flights_.size();) {
      const auto deadline = flights_[i]->started + timeout;
      if (deadline <= now) {
        tripped.push_back(std::move(flights_[i]));
        flights_.erase(flights_.begin() + static_cast<long>(i));
      } else {
        wake = std::min(wake, deadline);
        ++i;
      }
    }
    if (!tripped.empty()) {
      lock.unlock();
      const auto err = std::make_exception_ptr(WatchdogTimeoutError{});
      for (const auto& job : tripped) {
        // Order matters: mark abandoned first so the forward thread stops
        // touching metrics, then take the promises, then free the slot so
        // the dispatcher resumes, then replace the wedged pool worker.
        job->abandoned.store(true);
        job->fail_unresolved(err);
        job->release_slot();
        watchdog_trips_.fetch_add(1);
        forward_pool_->grow(1);
      }
      lock.lock();
      continue;
    }
    if (wake == std::chrono::steady_clock::time_point::max())
      watch_cv_.wait(lock);
    else
      watch_cv_.wait_until(lock, wake);
  }
}

void InferenceEngine::dispatch_loop() {
  for (;;) {
    // Throttle before pulling: while `concurrent_forwards` batches are in
    // flight, requests keep coalescing in the batcher.
    {
      std::unique_lock<std::mutex> lock(flight_mu_);
      flight_cv_.wait(lock, [this] { return in_flight_ < opts_.concurrent_forwards; });
    }
    std::vector<Request> batch = batcher_.next_batch();
    if (batch.empty()) return;  // closed and drained

    int cur;
    {
      std::lock_guard<std::mutex> lock(flight_mu_);
      cur = in_flight_.fetch_add(1) + 1;
    }
    atomic_max(max_in_flight_, cur);
    auto job = std::make_shared<BatchJob>(this, std::move(batch));
    try {
      forward_pool_->submit([job] { job->run(job); });
    } catch (...) {
      // submit itself failed (pool shutting down): the job's destructor
      // fails the rows and releases the slot on scope exit below.
    }
  }
}

void InferenceEngine::process_batch(BatchJob& job) {
  std::vector<Request>& batch = job.batch;
  const auto closed_at = std::chrono::steady_clock::now();
  const int b = static_cast<int>(batch.size());
  const std::string& variant = batch[0].variant;  // next_batch groups per variant

  // The generation snapshot this batch runs on: a concurrent hot-swap
  // republishing the variant never blocks or invalidates us.
  std::shared_ptr<const Servable> servable = registry_->try_get(variant);
  if (!servable) {
    job.fail_unresolved(std::make_exception_ptr(UnknownVariantError(variant)));
    return;
  }

  // Lease a warm arena for this forward: the batch tensors, every
  // intermediate in the infer chain, and the logits all bump-allocate from
  // one slab (retry/fallback rebuilds bump further into the same slab). The
  // lease outlives the last logits read — its destructor resets the arena.
  std::optional<ArenaLease> lease;
  if (opts_.use_arena) lease.emplace(arena_pool_);

  const int pixels = servable->input_dim();
  std::vector<int> rows;  // rows admitted to the forward phase
  rows.reserve(static_cast<std::size_t>(b));
  for (int r = 0; r < b; ++r) {
    Request& req = batch[static_cast<std::size_t>(r)];
    if (req.expired(closed_at)) {
      // Last line of deadline defence: expired while the batch sat in the
      // forward queue. Fail fast; the forward never sees this row.
      if (job.claim(static_cast<std::size_t>(r))) {
        pstats_[static_cast<std::size_t>(req.priority)].deadline_dropped.fetch_add(1);
        req.promise.set_exception(std::make_exception_ptr(DeadlineExceededError{}));
      }
      continue;
    }
    if (static_cast<int>(req.image.size()) != pixels) {
      // Odd-sized request: fail it alone and keep serving the rest.
      if (job.claim(static_cast<std::size_t>(r)))
        req.promise.set_exception(std::make_exception_ptr(std::invalid_argument(
            "InferenceEngine: payload size does not match variant input_dim")));
      continue;
    }
    rows.push_back(r);
  }
  if (rows.empty()) {
    // Every row was dropped — never spend a model forward on a dead batch
    // (this is exactly the overloaded case where a forward hurts most).
    batches_.fetch_add(1);
    atomic_max(max_batch_seen_, b);
    return;
  }

  // Forward phase: when tracing is on, a SpanCollector rides the forward
  // thread (thread-local), so the per-layer-group ScopedSpans inside the
  // model attach to this batch without the servable knowing about tracing.
  const bool traced = tracer_.enabled();
  trace::SpanCollector collector;
  const auto forward_start = std::chrono::steady_clock::now();

  std::vector<Prediction> preds(static_cast<std::size_t>(b));
  std::vector<bool> done(static_cast<std::size_t>(b), false);
  std::vector<int> attempts(static_cast<std::size_t>(b), 1);
  std::vector<bool> degraded(static_cast<std::size_t>(b), false);

  // One infer over a row subset through `sv`; fills preds[r].label/logits
  // on success. Returns the forward's exception on failure.
  auto forward_rows = [&](const Servable& sv, const std::vector<int>& subset)
      -> std::exception_ptr {
    const int n = static_cast<int>(subset.size());
    Tensor images({n, sv.input_dim()});
    for (int i = 0; i < n; ++i) {
      const Request& req = batch[static_cast<std::size_t>(subset[static_cast<std::size_t>(i)])];
      std::copy(req.image.begin(), req.image.end(),
                images.data() + static_cast<std::size_t>(i) * sv.input_dim());
    }
    try {
      trace::CollectorScope scope(traced ? &collector : nullptr);
      ASCEND_FAILPOINT(fp_infer);
      const Tensor logits = sv.infer(images);
      for (int i = 0; i < n; ++i) {
        Prediction& pred = preds[static_cast<std::size_t>(subset[static_cast<std::size_t>(i)])];
        pred.label = argmax_row(logits, i);
        pred.logits.resize(static_cast<std::size_t>(logits.dim(1)));
        for (int c = 0; c < logits.dim(1); ++c)
          pred.logits[static_cast<std::size_t>(c)] = logits.at(i, c);
      }
      return nullptr;
    } catch (...) {
      return std::current_exception();
    }
  };

  // Primary phase with per-request retry budgets: the whole live subset is
  // retried together (one forward per attempt); rows that exhaust
  // max_attempts move to their fallback variant, rows without one fail with
  // the final error.
  std::vector<int> live = rows;
  std::vector<int> exhausted;
  // Per-row error captured at exhaustion time: `last_err` goes back to null
  // when a later attempt of the remaining live rows succeeds, so rows that
  // exhausted earlier must keep the error of their own final attempt.
  std::vector<std::exception_ptr> row_err(static_cast<std::size_t>(b));
  std::exception_ptr last_err;
  int attempt = 0;
  while (!live.empty()) {
    ++attempt;
    if (job.abandoned.load()) return;  // watchdog already failed the rows
    last_err = forward_rows(*servable, live);
    if (!last_err) {
      for (const int r : live) {
        attempts[static_cast<std::size_t>(r)] = attempt;
        done[static_cast<std::size_t>(r)] = true;
      }
      break;
    }
    std::vector<int> retry_rows;
    for (const int r : live) {
      attempts[static_cast<std::size_t>(r)] = attempt;
      if (batch[static_cast<std::size_t>(r)].retry.max_attempts > attempt) {
        retry_rows.push_back(r);
      } else {
        row_err[static_cast<std::size_t>(r)] = last_err;
        exhausted.push_back(r);
      }
    }
    live = std::move(retry_rows);
    if (live.empty()) break;
    // Exponential backoff on the forward worker: deliberate — a failing
    // variant sheds throughput instead of hammering itself. Bounded by
    // max_attempts; the watchdog deadline covers the sleep.
    std::chrono::microseconds backoff{0};
    for (const int r : live) {
      pstats_[static_cast<std::size_t>(batch[static_cast<std::size_t>(r)].priority)]
          .retries.fetch_add(1);
      backoff = std::max(backoff, batch[static_cast<std::size_t>(r)].retry.backoff);
    }
    if (backoff.count() > 0)
      std::this_thread::sleep_for(backoff * (1 << std::min(attempt - 1, 10)));
    if (job.abandoned.load()) return;
    // Deadlines kept ticking through the backoff.
    const auto now = std::chrono::steady_clock::now();
    std::vector<int> still_live;
    for (const int r : live) {
      Request& req = batch[static_cast<std::size_t>(r)];
      if (req.expired(now)) {
        if (job.claim(static_cast<std::size_t>(r))) {
          pstats_[static_cast<std::size_t>(req.priority)].deadline_dropped.fetch_add(1);
          req.promise.set_exception(std::make_exception_ptr(DeadlineExceededError{}));
        }
      } else {
        still_live.push_back(r);
      }
    }
    live = std::move(still_live);
  }

  // Degradation phase: exhausted rows grouped by fallback variant, one
  // forward per group, no retry on the fallback itself.
  if (!exhausted.empty()) {
    std::map<std::string, std::vector<int>> fallback_groups;
    for (const int r : exhausted) {
      const std::string& fb = batch[static_cast<std::size_t>(r)].retry.fallback_variant;
      if (fb.empty() || fb == variant) {
        if (job.claim(static_cast<std::size_t>(r)))
          batch[static_cast<std::size_t>(r)].promise.set_exception(
              row_err[static_cast<std::size_t>(r)]);
      } else {
        fallback_groups[fb].push_back(r);
      }
    }
    for (auto& [fb, frows] : fallback_groups) {
      if (job.abandoned.load()) return;
      const std::shared_ptr<const Servable> fsv = registry_->try_get(fb);
      std::exception_ptr err;
      if (!fsv)
        err = std::make_exception_ptr(UnknownVariantError(fb));
      else if (fsv->input_dim() != pixels)
        err = std::make_exception_ptr(std::invalid_argument(
            "InferenceEngine: fallback variant input_dim differs from primary"));
      else
        err = forward_rows(*fsv, frows);
      if (err) {
        for (const int r : frows)
          if (job.claim(static_cast<std::size_t>(r)))
            batch[static_cast<std::size_t>(r)].promise.set_exception(err);
      } else {
        for (const int r : frows) {
          attempts[static_cast<std::size_t>(r)] += 1;
          done[static_cast<std::size_t>(r)] = true;
          degraded[static_cast<std::size_t>(r)] = true;
          preds[static_cast<std::size_t>(r)].variant = fb;
          pstats_[static_cast<std::size_t>(batch[static_cast<std::size_t>(r)].priority)]
              .fallback_served.fetch_add(1);
        }
      }
    }
  }

  const auto forward_end = std::chrono::steady_clock::now();
  if (job.abandoned.load()) return;  // late results discarded; rows already failed

  // Claim the rows this thread will resolve (a racing watchdog trip keeps
  // whatever it won) and finish their predictions.
  std::vector<int> resolved;
  resolved.reserve(rows.size());
  int served = 0;
  std::uint64_t queue_ns_sum = 0;
  for (const int r : rows) {
    if (!done[static_cast<std::size_t>(r)]) continue;
    if (!job.claim(static_cast<std::size_t>(r))) continue;
    resolved.push_back(r);
    ++served;
    const Request& req = batch[static_cast<std::size_t>(r)];
    Prediction& pred = preds[static_cast<std::size_t>(r)];
    if (!degraded[static_cast<std::size_t>(r)]) pred.variant = variant;
    pred.attempts = attempts[static_cast<std::size_t>(r)];
    pred.degraded = degraded[static_cast<std::size_t>(r)];
    pred.queue_ms =
        std::chrono::duration<double, std::milli>(req.trace.batch_close - req.enqueued).count();
    queue_ns_sum += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(req.trace.batch_close - req.enqueued)
            .count());
  }
  if (resolved.empty()) {
    batches_.fetch_add(1);
    atomic_max(max_batch_seen_, b);
    return;
  }

  // One completion stamp for the whole batch: every row resolves within
  // microseconds of it, and per-row clock reads would cost more than they
  // would disambiguate.
  const auto complete = std::chrono::steady_clock::now();

  // Record counters and histograms before resolving any future: a client
  // that sees its result must also see it reflected in stats() / a scrape.
  images_.fetch_add(static_cast<std::uint64_t>(served));
  batches_.fetch_add(1);
  if (b >= batcher_.max_batch()) full_batches_.fetch_add(1);
  queue_wait_ns_.fetch_add(queue_ns_sum);
  atomic_max(max_batch_seen_, b);
  batch_fill_hist_->record(static_cast<std::uint64_t>(b));
  metrics::Histogram& forward_hist = metrics_->histogram(
      "ascend_forward_usec", {{"variant", variant}}, {}, "Servable::infer wall time per batch");
  forward_hist.record(usec_between(forward_start, forward_end));
  // Per-(variant, priority) latency series resolved at most once per batch
  // and priority — the registry lookup takes its mutex, the record does not.
  std::array<metrics::Histogram*, kNumPriorities> latency_hist{};
  for (const int r : resolved) {
    const Request& req = batch[static_cast<std::size_t>(r)];
    const auto pi = static_cast<std::size_t>(req.priority);
    pstats_[pi].served.fetch_add(1);
    queue_wait_hist_[pi]->record(usec_between(req.enqueued, req.trace.batch_close));
    if (!latency_hist[pi])
      latency_hist[pi] = &metrics_->histogram(
          "ascend_request_latency_usec",
          {{"variant", variant}, {"priority", priority_name(req.priority)}}, {},
          "End-to-end request latency (enqueue to completion)");
    latency_hist[pi]->record(usec_between(req.enqueued, complete));
    if (traced) {
      trace::RequestTrace t;
      t.seq = req.seq;
      t.set_variant(variant);
      t.priority = static_cast<int>(req.priority);
      t.batch_size = b;
      t.enqueue = req.trace.enqueue;
      t.batch_close = req.trace.batch_close;
      t.forward_start = forward_start;
      t.forward_end = forward_end;
      t.complete = complete;
      t.num_spans = collector.count();
      t.spans_dropped = collector.dropped();
      std::copy(collector.spans(), collector.spans() + collector.count(), t.spans.begin());
      tracer_.record(t);
    }
  }

  for (const int r : resolved)
    batch[static_cast<std::size_t>(r)].promise.set_value(
        std::move(preds[static_cast<std::size_t>(r)]));
}

std::vector<int> InferenceEngine::predict_batch(const Tensor& images, const std::string& variant) {
  const std::shared_ptr<const Servable> servable = registry_->get(resolve_variant(variant));
  std::vector<int> labels;
  {
    std::optional<ArenaLease> lease;
    if (opts_.use_arena) lease.emplace(arena_pool_);
    ASCEND_FAILPOINT(fp_infer);
    const Tensor logits = servable->infer(images);
    labels.resize(static_cast<std::size_t>(logits.dim(0)));
    for (int r = 0; r < logits.dim(0); ++r)
      labels[static_cast<std::size_t>(r)] = argmax_row(logits, r);
  }
  return labels;
}

double InferenceEngine::evaluate(const vit::Dataset& data, int batch_size,
                                 const std::string& variant) {
  const int n = data.size();
  int correct = 0;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    std::vector<int> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    const vit::Batch batch = vit::take_batch(data, idx);
    const std::vector<int> labels = predict_batch(batch.images, variant);
    for (std::size_t r = 0; r < labels.size(); ++r)
      if (labels[r] == batch.labels[r]) ++correct;
  }
  return 100.0 * correct / std::max(n, 1);
}

EngineStats InferenceEngine::stats() const {
  EngineStats st;
  st.images = images_.load();
  st.batches = batches_.load();
  st.full_batches = full_batches_.load();
  st.watchdog_trips = watchdog_trips_.load();
  st.total_queue_ms = static_cast<double>(queue_wait_ns_.load()) / 1e6;
  st.max_batch_seen = max_batch_seen_.load();
  st.max_in_flight = max_in_flight_.load();
  for (int p = 0; p < kNumPriorities; ++p) {
    const AtomicPriorityStats& ps = pstats_[static_cast<std::size_t>(p)];
    PriorityStats& out = st.by_priority[static_cast<std::size_t>(p)];
    // Read queued last: each request increments queued strictly before
    // served/deadline_dropped, so this order can only over-report queued —
    // never served > queued (the invariant test_metrics pins).
    out.served = ps.served.load();
    out.deadline_dropped = ps.deadline_dropped.load();
    out.rejected = ps.rejected.load();
    out.retries = ps.retries.load();
    out.fallback_served = ps.fallback_served.load();
    out.queued = ps.queued.load();
  }
  return st;
}

}  // namespace ascend::runtime
