#pragma once
// arena.h — per-forward activation arenas for allocation-free inference.
//
// An Arena is a bump allocator sized by its first pass: the sizing forward
// runs with an empty arena and grows it block by block; reset() then
// consolidates the block list into a single slab covering the observed peak,
// so every later forward of the same (variant, batch-shape) is carved from
// one slab with zero heap traffic. A larger batch simply overflows again and
// the next reset() re-consolidates — resize is the same mechanism as sizing.
//
// Arenas are single-threaded by design: each in-flight forward owns one.
// The active arena is published through a thread-local (Arena::current()),
// so the whole const infer() chain — quantizer outputs, attention panels,
// MLP activations — picks it up without threading a parameter through every
// layer signature. ArenaScope installs an arena for the current thread;
// HeapScope suspends it (used around builds of persistent state, e.g. the
// frozen quantizer snapshots, which must outlive any forward).
//
// ArenaPool recycles arenas across forwards in the engine: acquire() pops a
// warm arena (already consolidated to peak) off a free list, ArenaLease
// scopes it over one forward and returns it on destruction.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace ascend::runtime {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 0);
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (power of two). Grows the
  /// block list when the current slab overflows; after the next reset() the
  /// arena is consolidated so the same demand is served without growth.
  void* allocate(std::size_t bytes, std::size_t align = kDefaultAlign);

  /// Rewind to empty. If this cycle overflowed into extra blocks, replace
  /// the block list with one slab covering the peak working set (this is
  /// the only place an arena touches the heap after sizing).
  void reset();

  /// Bytes currently bump-allocated this cycle.
  std::size_t used() const { return used_; }
  /// Total bytes reserved across blocks.
  std::size_t capacity() const { return capacity_; }
  /// High-water mark across all cycles, including the current one (what the
  /// next reset() consolidates to).
  std::size_t peak() const { return used_ > peak_ ? used_ : peak_; }
  /// Number of backing blocks (1 at steady state).
  std::size_t block_count() const { return blocks_.size(); }
  /// How many reset() calls had to re-consolidate (i.e. sizing/resize passes).
  std::uint64_t consolidations() const { return consolidations_; }

  /// The arena installed for this thread, or nullptr (heap allocation).
  static Arena* current();

  static constexpr std::size_t kDefaultAlign = 64;

 private:
  friend class ArenaScope;
  friend class HeapScope;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;      // block currently being bumped
  std::size_t used_ = 0;        // sum of per-block used this cycle
  std::size_t capacity_ = 0;    // sum of block sizes
  std::size_t peak_ = 0;
  std::uint64_t consolidations_ = 0;
};

/// RAII: installs `arena` as the current thread's allocation target.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* prev_;
};

/// RAII: suspends the current thread's arena — allocations inside the scope
/// go to the heap. Wrap builds of state that outlives the forward (frozen
/// snapshots, caches) so they never point into an arena about to be reset.
class HeapScope {
 public:
  HeapScope();
  ~HeapScope();
  HeapScope(const HeapScope&) = delete;
  HeapScope& operator=(const HeapScope&) = delete;

 private:
  Arena* prev_;
};

/// Thread-safe recycler of warm arenas, one per in-flight forward.
class ArenaPool {
 public:
  /// `prereserve` bounds the expected number of concurrent leases; the free
  /// list reserves capacity up front so acquire/release never reallocate it.
  explicit ArenaPool(std::size_t prereserve = 16);

  /// Pop a warm arena (or build a fresh one on cold start — the only
  /// allocating path, never hit at steady state).
  Arena* acquire();
  /// Reset `arena` and return it to the free list.
  void release(Arena* arena);

  std::size_t created() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Arena>> all_;
  std::vector<Arena*> free_;
};

/// RAII: acquire from a pool, scope over the current thread, release on
/// destruction (which resets the arena — keep the lease alive until results
/// have been copied out of arena-backed tensors).
class ArenaLease {
 public:
  explicit ArenaLease(ArenaPool& pool) : pool_(&pool), arena_(pool.acquire()), scope_(*arena_) {}
  ~ArenaLease() { pool_->release(arena_); }
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;

  Arena& arena() { return *arena_; }

 private:
  ArenaPool* pool_;
  Arena* arena_;
  ArenaScope scope_;
};

}  // namespace ascend::runtime
