#include "runtime/tf_cache.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "sc/fsm_units.h"
#include "sc/sng.h"
#include "sc/therm_arith.h"

namespace ascend::runtime {
namespace {

std::string hex_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// GeluLut
// ---------------------------------------------------------------------------

GeluLut::GeluLut(const sc::GateAssistedSI& block)
    : lin_(block.lin()), alpha_in_(block.alpha_in()) {
  out_.reserve(static_cast<std::size_t>(lin_) + 1);
  for (int n = 0; n <= lin_; ++n)
    out_.push_back(block.apply(sc::ThermValue{n, lin_, block.alpha_in()}).value());
}

// ---------------------------------------------------------------------------
// SoftmaxLut
// ---------------------------------------------------------------------------

SoftmaxLut::SoftmaxLut(sc::SoftmaxIterConfig cfg) : cfg_(cfg) {
  cfg_.validate();
  lay_ = sc::softmax_iter_layout(cfg_);
  alpha_c_ = cfg_.alpha_y / cfg_.align_expand;
  const int cap = cfg_.by * cfg_.align_expand;
  y0_ones_ = sc::ThermValue::encode(1.0 / cfg_.m, cfg_.by, cfg_.alpha_y).ones;

  // Derive each re-scaling site's operand grid by running the same op chain
  // the emulator runs (counts are irrelevant; lengths/alphas are static).
  using sc::ThermValue;
  const ThermValue x0 = ThermValue::encode(0.0, cfg_.bx, cfg_.alpha_x);
  const ThermValue y0{y0_ones_, cfg_.by, cfg_.alpha_y};
  const ThermValue z0 = sc::mult(x0, y0);
  const ThermValue ssum0 = sc::subsample(
      sc::add(std::vector<ThermValue>(static_cast<std::size_t>(cfg_.m), z0)), cfg_.s1,
      cfg_.centered_subsample);
  const ThermValue w0 =
      sc::negate(sc::subsample(sc::mult(y0, ssum0), cfg_.s2, cfg_.centered_subsample));
  const ThermValue zk0 = sc::divide_by_const(z0, cfg_.k);
  const ThermValue wk0 = sc::divide_by_const(w0, cfg_.k);

  la_ = sc::softmax_alignment_length(y0.alpha, y0.length, alpha_c_, cap);
  lb_ = sc::softmax_alignment_length(zk0.alpha, zk0.length, alpha_c_, cap);
  lc_ = sc::softmax_alignment_length(wk0.alpha, wk0.length, alpha_c_, cap);
  lconcat_ = la_ + lb_ + lc_;

  // Tabulate the four re-scaling blocks by evaluating the circuit emulator at
  // every reachable input count.
  auto tabulate = [this](int length, double alpha, int target_length, double target_alpha) {
    std::vector<int> lut(static_cast<std::size_t>(length) + 1);
    for (int n = 0; n <= length; ++n)
      lut[static_cast<std::size_t>(n)] =
          sc::rescale(sc::ThermValue{n, length, alpha}, target_length, target_alpha,
                      cfg_.rescale_max_den)
              .ones;
    return lut;
  };
  lut_y_ = tabulate(y0.length, y0.alpha, la_, alpha_c_);
  lut_zk_ = tabulate(zk0.length, zk0.alpha, lb_, alpha_c_);
  lut_wk_ = tabulate(wk0.length, wk0.alpha, lc_, alpha_c_);
  lut_close_ = tabulate(lconcat_, alpha_c_, cfg_.by, cfg_.alpha_y);

  y_value_.reserve(static_cast<std::size_t>(cfg_.by) + 1);
  for (int n = 0; n <= cfg_.by; ++n)
    y_value_.push_back(sc::ThermValue{n, cfg_.by, cfg_.alpha_y}.value());
}

std::vector<double> SoftmaxLut::operator()(const std::vector<double>& x) const {
  using sc::ThermValue;
  if (static_cast<int>(x.size()) != cfg_.m)
    throw std::invalid_argument("SoftmaxLut: input size != m");

  std::vector<ThermValue> xs;
  xs.reserve(x.size());
  for (double v : x) xs.push_back(ThermValue::encode(v, cfg_.bx, cfg_.alpha_x));
  std::vector<int> y(x.size(), y0_ones_);
  std::vector<ThermValue> zs(x.size());

  for (int j = 0; j < cfg_.k; ++j) {
    // MUL-1 / BSN-1 / sub-sample: exact O(1) count maps via the emulator ops.
    for (std::size_t i = 0; i < xs.size(); ++i)
      zs[i] = sc::mult(xs[i], ThermValue{y[i], cfg_.by, cfg_.alpha_y});
    const ThermValue ssum = sc::subsample(sc::add(zs), cfg_.s1, cfg_.centered_subsample);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const ThermValue yi{y[i], cfg_.by, cfg_.alpha_y};
      const ThermValue w =
          sc::negate(sc::subsample(sc::mult(yi, ssum), cfg_.s2, cfg_.centered_subsample));
      // The four re-scaling blocks collapse to table lookups; BSN-2 is the
      // count sum of the three aligned operands.
      const int concat = lut_y_[static_cast<std::size_t>(y[i])] +
                         lut_zk_[static_cast<std::size_t>(zs[i].ones)] +
                         lut_wk_[static_cast<std::size_t>(w.ones)];
      y[i] = lut_close_[static_cast<std::size_t>(concat)];
    }
  }

  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = y_value_[static_cast<std::size_t>(y[i])];
  return out;
}

// ---------------------------------------------------------------------------
// SoftmaxFsmLut
// ---------------------------------------------------------------------------

SoftmaxFsmLut::SoftmaxFsmLut(const sc::FsmSoftmaxConfig& cfg) : cfg_(cfg) {
  if (cfg_.m < 1) throw std::invalid_argument("SoftmaxFsmLut: m must be >= 1");
  if (cfg_.bsl < 1 || cfg_.quotient_bits < 1 || cfg_.scale <= 0)
    throw std::invalid_argument("SoftmaxFsmLut: bad configuration");
  const std::size_t bsl = static_cast<std::size_t>(cfg_.bsl);
  thresholds_.resize(static_cast<std::size_t>(cfg_.m));
  counts_.resize(static_cast<std::size_t>(cfg_.m));
  for (std::size_t i = 0; i < static_cast<std::size_t>(cfg_.m); ++i) {
    // The same per-element LFSR the emulator's SNG draws from.
    sc::LfsrSource src(16, static_cast<std::uint32_t>(cfg_.seed + 0x9E37 * (i + 1)));
    range_ = static_cast<double>(src.range());
    std::vector<double> samples(bsl);
    for (std::size_t t = 0; t < bsl; ++t) samples[t] = static_cast<double>(src.next());

    // Rank each cycle's sample: the SNG emits bit_t = [sample_t < p * range],
    // so exactly the `n` lowest-ranked cycles are 1 when n samples clear the
    // threshold (ties are all-or-nothing, matching the strict comparison).
    std::vector<std::size_t> order(bsl);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&samples](std::size_t a, std::size_t b) { return samples[a] < samples[b]; });
    std::vector<std::size_t> rank(bsl);
    for (std::size_t r = 0; r < bsl; ++r) rank[order[r]] = r;

    // Walk the exponential FSM once per reachable bit pattern.
    counts_[i].resize(bsl + 1);
    for (std::size_t n = 0; n <= bsl; ++n) {
      sc::FsmExp fsm(cfg_.n_states, cfg_.g);
      long long ones = 0;
      for (std::size_t t = 0; t < bsl; ++t) ones += fsm.step(rank[t] < n) ? 1 : 0;
      counts_[i][n] = ones;
    }

    std::sort(samples.begin(), samples.end());
    thresholds_[i] = std::move(samples);
  }
}

std::vector<double> SoftmaxFsmLut::operator()(const std::vector<double>& x) const {
  if (static_cast<int>(x.size()) != cfg_.m)
    throw std::invalid_argument("SoftmaxFsmLut: input size != m");

  const double mx = *std::max_element(x.begin(), x.end());
  std::vector<long long> counts(x.size(), 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double shifted = std::max(x[i] - mx, -cfg_.scale);
    // Same encoding arithmetic as StochStream::encode(-shifted, bipolar, scale).
    const double u = -shifted / cfg_.scale;
    const double p = std::clamp((u + 1.0) / 2.0, 0.0, 1.0);
    const double threshold = p * range_;
    const auto& th = thresholds_[i];
    const std::size_t n =
        static_cast<std::size_t>(std::lower_bound(th.begin(), th.end(), threshold) - th.begin());
    counts[i] = counts_[i][n];
  }

  // Shift normalization, identical integer arithmetic to sc::softmax_fsm.
  long long cmax = 0;
  for (long long c : counts) cmax = std::max(cmax, c);
  long long denom = 1;
  while (denom < cmax) denom <<= 1;
  const long long qmax = (1LL << cfg_.quotient_bits);
  std::vector<double> y(x.size(), 0.0);
  if (cmax > 0) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      const long long q = counts[i] * qmax / denom;
      y[i] = static_cast<double>(q) / static_cast<double>(qmax);
    }
  }
  return y;
}

// ---------------------------------------------------------------------------
// TfCache
// ---------------------------------------------------------------------------

std::string softmax_cache_key(const sc::SoftmaxIterConfig& cfg) {
  std::string key = "sm:";
  key += std::to_string(cfg.m) + "," + std::to_string(cfg.k) + "," + std::to_string(cfg.bx) + "," +
         std::to_string(cfg.by) + "," + std::to_string(cfg.s1) + "," + std::to_string(cfg.s2) +
         "," + hex_double(cfg.alpha_x) + "," + hex_double(cfg.alpha_y) + "," +
         std::to_string(cfg.align_expand) + "," + std::to_string(cfg.rescale_max_den) + "," +
         (cfg.centered_subsample ? "c" : "e");
  return key;
}

std::string softmax_fsm_cache_key(const sc::FsmSoftmaxConfig& cfg) {
  std::string key = "smfsm:";
  key += std::to_string(cfg.m) + "," + std::to_string(cfg.bsl) + "," +
         std::to_string(cfg.n_states) + "," + std::to_string(cfg.g) + "," +
         hex_double(cfg.scale) + "," + std::to_string(cfg.quotient_bits) + "," +
         std::to_string(cfg.seed);
  return key;
}

const GeluLut& TfCache::gelu(int b, double input_lo, double input_hi, int input_bsl) {
  const std::string key = "gelu:" + std::to_string(b) + "," + hex_double(input_lo) + "," +
                          hex_double(input_hi) + "," + std::to_string(input_bsl);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gelu_.find(key);
    if (it != gelu_.end()) return *it->second;
  }
  // Synthesize outside the lock (make_gelu_block scans output scales).
  auto lut = std::make_unique<GeluLut>(sc::make_gelu_block(b, input_lo, input_hi, input_bsl));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gelu_.emplace(key, std::move(lut));
  (void)inserted;  // a racing builder's identical table is simply kept
  return *it->second;
}

const GeluLut& TfCache::gelu_block(const sc::GateAssistedSI& block, const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gelu_.find(key);
  if (it == gelu_.end()) it = gelu_.emplace(key, std::make_unique<GeluLut>(block)).first;
  return *it->second;
}

const SoftmaxLut& TfCache::softmax(const sc::SoftmaxIterConfig& cfg) {
  const std::string key = softmax_cache_key(cfg);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = softmax_.find(key);
    if (it != softmax_.end()) return *it->second;
  }
  auto lut = std::make_unique<SoftmaxLut>(cfg);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = softmax_.emplace(key, std::move(lut));
  (void)inserted;
  return *it->second;
}

const SoftmaxFsmLut& TfCache::softmax_fsm(const sc::FsmSoftmaxConfig& cfg) {
  const std::string key = softmax_fsm_cache_key(cfg);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = softmax_fsm_.find(key);
    if (it != softmax_fsm_.end()) return *it->second;
  }
  auto lut = std::make_unique<SoftmaxFsmLut>(cfg);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = softmax_fsm_.emplace(key, std::move(lut));
  (void)inserted;
  return *it->second;
}

std::size_t TfCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gelu_.size() + softmax_.size() + softmax_fsm_.size();
}

TfCache& global_tf_cache() {
  static TfCache cache;
  return cache;
}

}  // namespace ascend::runtime
