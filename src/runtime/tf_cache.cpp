#include "runtime/tf_cache.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "sc/fsm_units.h"
#include "sc/sng.h"
#include "sc/therm_arith.h"

namespace ascend::runtime {
namespace {

std::string hex_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// GateSiLut
// ---------------------------------------------------------------------------

GateSiLut::GateSiLut(const sc::GateAssistedSI& block)
    : lin_(block.lin()), alpha_in_(block.alpha_in()) {
  out_.reserve(static_cast<std::size_t>(lin_) + 1);
  for (int n = 0; n <= lin_; ++n)
    out_.push_back(block.apply(sc::ThermValue{n, lin_, block.alpha_in()}).value());
}

// ---------------------------------------------------------------------------
// SoftmaxLut
// ---------------------------------------------------------------------------

SoftmaxLut::SoftmaxLut(sc::SoftmaxIterConfig cfg) : cfg_(cfg) {
  cfg_.validate();
  lay_ = sc::softmax_iter_layout(cfg_);
  alpha_c_ = cfg_.alpha_y / cfg_.align_expand;
  const int cap = cfg_.by * cfg_.align_expand;
  y0_ones_ = sc::ThermValue::encode(1.0 / cfg_.m, cfg_.by, cfg_.alpha_y).ones;

  // Derive each re-scaling site's operand grid by running the same op chain
  // the emulator runs (counts are irrelevant; lengths/alphas are static).
  using sc::ThermValue;
  const ThermValue x0 = ThermValue::encode(0.0, cfg_.bx, cfg_.alpha_x);
  const ThermValue y0{y0_ones_, cfg_.by, cfg_.alpha_y};
  const ThermValue z0 = sc::mult(x0, y0);
  const ThermValue ssum0 = sc::subsample(
      sc::add(std::vector<ThermValue>(static_cast<std::size_t>(cfg_.m), z0)), cfg_.s1,
      cfg_.centered_subsample);
  const ThermValue w0 =
      sc::negate(sc::subsample(sc::mult(y0, ssum0), cfg_.s2, cfg_.centered_subsample));
  const ThermValue zk0 = sc::divide_by_const(z0, cfg_.k);
  const ThermValue wk0 = sc::divide_by_const(w0, cfg_.k);

  la_ = sc::softmax_alignment_length(y0.alpha, y0.length, alpha_c_, cap);
  lb_ = sc::softmax_alignment_length(zk0.alpha, zk0.length, alpha_c_, cap);
  lc_ = sc::softmax_alignment_length(wk0.alpha, wk0.length, alpha_c_, cap);
  lconcat_ = la_ + lb_ + lc_;

  // Tabulate the four re-scaling blocks by evaluating the circuit emulator at
  // every reachable input count.
  auto tabulate = [this](int length, double alpha, int target_length, double target_alpha) {
    std::vector<int> lut(static_cast<std::size_t>(length) + 1);
    for (int n = 0; n <= length; ++n)
      lut[static_cast<std::size_t>(n)] =
          sc::rescale(sc::ThermValue{n, length, alpha}, target_length, target_alpha,
                      cfg_.rescale_max_den)
              .ones;
    return lut;
  };
  lut_y_ = tabulate(y0.length, y0.alpha, la_, alpha_c_);
  lut_zk_ = tabulate(zk0.length, zk0.alpha, lb_, alpha_c_);
  lut_wk_ = tabulate(wk0.length, wk0.alpha, lc_, alpha_c_);
  lut_close_ = tabulate(lconcat_, alpha_c_, cfg_.by, cfg_.alpha_y);

  y_value_.reserve(static_cast<std::size_t>(cfg_.by) + 1);
  for (int n = 0; n <= cfg_.by; ++n)
    y_value_.push_back(sc::ThermValue{n, cfg_.by, cfg_.alpha_y}.value());
}

std::vector<double> SoftmaxLut::operator()(const std::vector<double>& x) const {
  if (static_cast<int>(x.size()) != cfg_.m)
    throw std::invalid_argument("SoftmaxLut: input size != m");
  std::vector<double> out(x.size());
  (*this)(x.data(), out.data());
  return out;
}

void SoftmaxLut::operator()(const double* x, double* out) const {
  using sc::ThermValue;
  const std::size_t m = static_cast<std::size_t>(cfg_.m);
  // Grow-only per-thread scratch: the hot serving path calls this once per
  // attention row and must not touch the heap at steady state.
  thread_local std::vector<ThermValue> xs;
  thread_local std::vector<int> y;
  thread_local std::vector<ThermValue> zs;
  if (xs.size() < m) {
    xs.resize(m);
    zs.resize(m);
    y.resize(m);
  }
  for (std::size_t i = 0; i < m; ++i) xs[i] = ThermValue::encode(x[i], cfg_.bx, cfg_.alpha_x);
  for (std::size_t i = 0; i < m; ++i) y[i] = y0_ones_;

  for (int j = 0; j < cfg_.k; ++j) {
    // MUL-1 / BSN-1 / sub-sample: exact O(1) count maps via the emulator ops.
    for (std::size_t i = 0; i < m; ++i)
      zs[i] = sc::mult(xs[i], ThermValue{y[i], cfg_.by, cfg_.alpha_y});
    const ThermValue ssum =
        sc::subsample(sc::add(zs.data(), m), cfg_.s1, cfg_.centered_subsample);
    for (std::size_t i = 0; i < m; ++i) {
      const ThermValue yi{y[i], cfg_.by, cfg_.alpha_y};
      const ThermValue w =
          sc::negate(sc::subsample(sc::mult(yi, ssum), cfg_.s2, cfg_.centered_subsample));
      // The four re-scaling blocks collapse to table lookups; BSN-2 is the
      // count sum of the three aligned operands.
      const int concat = lut_y_[static_cast<std::size_t>(y[i])] +
                         lut_zk_[static_cast<std::size_t>(zs[i].ones)] +
                         lut_wk_[static_cast<std::size_t>(w.ones)];
      y[i] = lut_close_[static_cast<std::size_t>(concat)];
    }
  }

  for (std::size_t i = 0; i < m; ++i) out[i] = y_value_[static_cast<std::size_t>(y[i])];
}

// ---------------------------------------------------------------------------
// SoftmaxFsmLut
// ---------------------------------------------------------------------------

SoftmaxFsmLut::SoftmaxFsmLut(const sc::FsmSoftmaxConfig& cfg) : cfg_(cfg) {
  if (cfg_.m < 1) throw std::invalid_argument("SoftmaxFsmLut: m must be >= 1");
  if (cfg_.bsl < 1 || cfg_.quotient_bits < 1 || cfg_.scale <= 0)
    throw std::invalid_argument("SoftmaxFsmLut: bad configuration");
  const std::size_t bsl = static_cast<std::size_t>(cfg_.bsl);
  thresholds_.resize(static_cast<std::size_t>(cfg_.m));
  counts_.resize(static_cast<std::size_t>(cfg_.m));
  for (std::size_t i = 0; i < static_cast<std::size_t>(cfg_.m); ++i) {
    // The same per-element LFSR the emulator's SNG draws from.
    sc::LfsrSource src(16, static_cast<std::uint32_t>(cfg_.seed + 0x9E37 * (i + 1)));
    range_ = static_cast<double>(src.range());
    std::vector<double> samples(bsl);
    for (std::size_t t = 0; t < bsl; ++t) samples[t] = static_cast<double>(src.next());

    // Rank each cycle's sample: the SNG emits bit_t = [sample_t < p * range],
    // so exactly the `n` lowest-ranked cycles are 1 when n samples clear the
    // threshold (ties are all-or-nothing, matching the strict comparison).
    std::vector<std::size_t> order(bsl);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&samples](std::size_t a, std::size_t b) { return samples[a] < samples[b]; });
    std::vector<std::size_t> rank(bsl);
    for (std::size_t r = 0; r < bsl; ++r) rank[order[r]] = r;

    // Walk the exponential FSM once per reachable bit pattern.
    counts_[i].resize(bsl + 1);
    for (std::size_t n = 0; n <= bsl; ++n) {
      sc::FsmExp fsm(cfg_.n_states, cfg_.g);
      long long ones = 0;
      for (std::size_t t = 0; t < bsl; ++t) ones += fsm.step(rank[t] < n) ? 1 : 0;
      counts_[i][n] = ones;
    }

    std::sort(samples.begin(), samples.end());
    thresholds_[i] = std::move(samples);
  }
}

std::vector<double> SoftmaxFsmLut::operator()(const std::vector<double>& x) const {
  if (static_cast<int>(x.size()) != cfg_.m)
    throw std::invalid_argument("SoftmaxFsmLut: input size != m");

  const double mx = *std::max_element(x.begin(), x.end());
  std::vector<long long> counts(x.size(), 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double shifted = std::max(x[i] - mx, -cfg_.scale);
    // Same encoding arithmetic as StochStream::encode(-shifted, bipolar, scale).
    const double u = -shifted / cfg_.scale;
    const double p = std::clamp((u + 1.0) / 2.0, 0.0, 1.0);
    const double threshold = p * range_;
    const auto& th = thresholds_[i];
    const std::size_t n =
        static_cast<std::size_t>(std::lower_bound(th.begin(), th.end(), threshold) - th.begin());
    counts[i] = counts_[i][n];
  }

  // Shift normalization, identical integer arithmetic to sc::softmax_fsm.
  long long cmax = 0;
  for (long long c : counts) cmax = std::max(cmax, c);
  long long denom = 1;
  while (denom < cmax) denom <<= 1;
  const long long qmax = (1LL << cfg_.quotient_bits);
  std::vector<double> y(x.size(), 0.0);
  if (cmax > 0) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      const long long q = counts[i] * qmax / denom;
      y[i] = static_cast<double>(q) / static_cast<double>(qmax);
    }
  }
  return y;
}

// ---------------------------------------------------------------------------
// BernsteinLut
// ---------------------------------------------------------------------------

BernsteinLut::BernsteinLut(const sc::BernsteinUnit& unit, std::size_t bsl, std::uint64_t seed)
    : bsl_(bsl), seed_(seed) {
  if (bsl_ < 1) throw std::invalid_argument("BernsteinLut: bsl must be >= 1");
  const int n = unit.degree();
  const auto& coeffs = unit.coefficients();

  // The exact SNG bank eval_stochastic draws from (shared construction, so
  // the table cannot drift from the emulator's randomness).
  sc::BernsteinUnit::SngBank bank = unit.make_sng_bank(seed);
  std::vector<sc::Lfsr>& inputs = bank.inputs;
  sc::Lfsr& coef = bank.coef;

  // Record every input-SNG sample as the exact u-threshold at which its
  // comparator flips. Ranges are powers of two, so sample / range is exact
  // and `sample < u * range` (the emulator's comparison, a pure exponent
  // shift on u) is equivalent to `threshold < u` without any rounding.
  struct Event {
    double threshold;
    std::uint32_t cycle;
  };
  std::vector<Event> events;
  events.reserve(static_cast<std::size_t>(n) * bsl_);
  std::vector<double> coef_sample(bsl_);
  const double coef_range = static_cast<double>(coef.range());
  for (std::size_t t = 0; t < bsl_; ++t) {
    for (int i = 0; i < n; ++i) {
      sc::Lfsr& g = inputs[static_cast<std::size_t>(i)];
      events.push_back({static_cast<double>(g.next()) / static_cast<double>(g.range()),
                        static_cast<std::uint32_t>(t)});
    }
    coef_sample[t] = static_cast<double>(coef.next());
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.threshold < b.threshold; });

  // Plateau 0: u below every threshold, so every adder index is 0. Each event
  // bumps exactly one cycle's index, which re-selects that cycle's
  // coefficient stream; the output ones-count updates in O(1).
  std::vector<int> idx(bsl_, 0);
  std::vector<char> bit(bsl_, 0);
  auto mux_bit = [&](std::size_t t, int index) {
    return coef_sample[t] < coeffs[static_cast<std::size_t>(index)] * coef_range;
  };
  long long ones = 0;
  for (std::size_t t = 0; t < bsl_; ++t) {
    bit[t] = mux_bit(t, 0) ? 1 : 0;
    ones += bit[t];
  }
  breaks_.reserve(events.size());
  value_.reserve(events.size() + 1);
  value_.push_back(static_cast<double>(ones) / static_cast<double>(bsl_));
  for (const Event& e : events) {
    const auto t = static_cast<std::size_t>(e.cycle);
    ++idx[t];
    const char nb = mux_bit(t, idx[t]) ? 1 : 0;
    ones += nb - bit[t];
    bit[t] = nb;
    breaks_.push_back(e.threshold);
    value_.push_back(static_cast<double>(ones) / static_cast<double>(bsl_));
  }
}

double BernsteinLut::operator()(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  // Plateau index = number of thresholds strictly below u (ties don't fire:
  // the emulator's comparison is strict).
  const auto fired = static_cast<std::size_t>(
      std::lower_bound(breaks_.begin(), breaks_.end(), u) - breaks_.begin());
  return value_[fired];
}

BernsteinGeluLut::BernsteinGeluLut(const sc::BernsteinGelu& block, std::size_t bsl,
                                   std::uint64_t seed)
    : in_lo_(block.in_lo()),
      in_hi_(block.in_hi()),
      out_lo_(block.out_lo()),
      out_hi_(block.out_hi()),
      lut_(block.unit(), bsl, seed) {}

// ---------------------------------------------------------------------------
// TfCache
// ---------------------------------------------------------------------------

std::string softmax_cache_key(const sc::SoftmaxIterConfig& cfg) {
  std::string key = "sm:";
  key += std::to_string(cfg.m) + "," + std::to_string(cfg.k) + "," + std::to_string(cfg.bx) + "," +
         std::to_string(cfg.by) + "," + std::to_string(cfg.s1) + "," + std::to_string(cfg.s2) +
         "," + hex_double(cfg.alpha_x) + "," + hex_double(cfg.alpha_y) + "," +
         std::to_string(cfg.align_expand) + "," + std::to_string(cfg.rescale_max_den) + "," +
         (cfg.centered_subsample ? "c" : "e");
  return key;
}

std::string gate_si_cache_key(const sc::GateAssistedSI& block) {
  // FNV-1a over the count table; collisions across distinct tables with the
  // same (Lin, Lout, alphas) would need a 64-bit hash collision.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (int v : block.table()) {
    auto u = static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    for (int b = 0; b < 4; ++b) {
      h ^= (u >> (8 * b)) & 0xFFu;
      h *= 0x100000001b3ull;
    }
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return "gsi:" + std::to_string(block.lin()) + "," + std::to_string(block.lout()) + "," +
         hex_double(block.alpha_in()) + "," + hex_double(block.alpha_out()) + "," + buf;
}

std::string bernstein_cache_key(const sc::BernsteinGelu& block, std::size_t bsl,
                                std::uint64_t seed) {
  std::string key = "bern:";
  for (double c : block.unit().coefficients()) key += hex_double(c) + ",";
  key += hex_double(block.in_lo()) + "," + hex_double(block.in_hi()) + "," +
         hex_double(block.out_lo()) + "," + hex_double(block.out_hi()) + "," +
         std::to_string(bsl) + "," + std::to_string(seed);
  return key;
}

std::string softmax_fsm_cache_key(const sc::FsmSoftmaxConfig& cfg) {
  std::string key = "smfsm:";
  key += std::to_string(cfg.m) + "," + std::to_string(cfg.bsl) + "," +
         std::to_string(cfg.n_states) + "," + std::to_string(cfg.g) + "," +
         hex_double(cfg.scale) + "," + std::to_string(cfg.quotient_bits) + "," +
         std::to_string(cfg.seed);
  return key;
}

template <typename T, typename Build>
const T& TfCache::get_or_build(std::map<std::string, std::unique_ptr<T>>& map,
                               const std::string& key, Build&& build) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map.find(key);
    if (it != map.end()) return *it->second;
  }
  // Build outside the lock (synthesis / tabulation can be expensive).
  auto lut = build();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map.emplace(key, std::move(lut));
  (void)inserted;  // a racing builder's identical table is simply kept
  return *it->second;
}

const GateSiLut& TfCache::gelu(int b, double input_lo, double input_hi, int input_bsl) {
  const std::string key = "gelu:" + std::to_string(b) + "," + hex_double(input_lo) + "," +
                          hex_double(input_hi) + "," + std::to_string(input_bsl);
  return get_or_build(gelu_, key, [&] {
    return std::make_unique<GateSiLut>(sc::make_gelu_block(b, input_lo, input_hi, input_bsl));
  });
}

const GateSiLut& TfCache::gelu_block(const sc::GateAssistedSI& block, const std::string& key) {
  return get_or_build(gelu_, key, [&] { return std::make_unique<GateSiLut>(block); });
}

const GateSiLut& TfCache::gate_si(const sc::GateAssistedSI& block) {
  return gelu_block(block, gate_si_cache_key(block));
}

const BernsteinGeluLut& TfCache::bernstein(const sc::BernsteinGelu& block, std::size_t bsl,
                                           std::uint64_t seed) {
  return get_or_build(bernstein_, bernstein_cache_key(block, bsl, seed),
                      [&] { return std::make_unique<BernsteinGeluLut>(block, bsl, seed); });
}

const SoftmaxLut& TfCache::softmax(const sc::SoftmaxIterConfig& cfg) {
  return get_or_build(softmax_, softmax_cache_key(cfg),
                      [&] { return std::make_unique<SoftmaxLut>(cfg); });
}

const SoftmaxFsmLut& TfCache::softmax_fsm(const sc::FsmSoftmaxConfig& cfg) {
  return get_or_build(softmax_fsm_, softmax_fsm_cache_key(cfg),
                      [&] { return std::make_unique<SoftmaxFsmLut>(cfg); });
}

std::size_t TfCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gelu_.size() + softmax_.size() + softmax_fsm_.size() + bernstein_.size();
}

TfCache& global_tf_cache() {
  static TfCache cache;
  return cache;
}

// ---------------------------------------------------------------------------
// Cached MAE protocols
// ---------------------------------------------------------------------------

double softmax_sc_mae_cached(const sc::SoftmaxIterConfig& cfg, int rows, std::uint64_t seed,
                             TfCache& cache) {
  // Same sampling and accumulation order as sc::softmax_sc_mae; the LUT is
  // bit-exact with softmax_iterative_sc, so the result is bit-identical.
  const auto logits = sc::sample_attention_logits(cfg.m, rows, seed);
  const SoftmaxLut& lut = cache.softmax(cfg);
  double total = 0.0;
  for (const auto& row : logits) {
    const auto ref = sc::softmax_exact(row);
    const auto got = lut(row);
    for (std::size_t i = 0; i < row.size(); ++i) total += std::fabs(got[i] - ref[i]);
  }
  return total / (static_cast<double>(rows) * cfg.m);
}

double softmax_fsm_mae_cached(const sc::FsmSoftmaxConfig& cfg, int rows, std::uint64_t seed,
                              TfCache& cache, FsmSeedMode mode) {
  const auto logits = sc::sample_attention_logits(cfg.m, rows, seed);
  double total = 0.0;
  sc::FsmSoftmaxConfig per_row = cfg;
  for (std::size_t r = 0; r < logits.size(); ++r) {
    // kPerRowSeeds mirrors sc::softmax_fsm_mae's re-seeding exactly;
    // kSharedSeed leaves cfg.seed in place so one table serves every row.
    if (mode == FsmSeedMode::kPerRowSeeds) per_row.seed = cfg.seed + 0x1234567ULL * r;
    const auto ref = sc::softmax_exact(logits[r]);
    const auto got = cache.softmax_fsm(per_row)(logits[r]);
    for (std::size_t i = 0; i < ref.size(); ++i) total += std::fabs(got[i] - ref[i]);
  }
  return total / (static_cast<double>(rows) * cfg.m);
}

}  // namespace ascend::runtime
