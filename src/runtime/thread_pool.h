#pragma once
// thread_pool.h — fixed-size worker pool for the SC inference runtime.
//
// The engine's hot path is the per-activation SC nonlinear-block emulation
// (softmax rows, GELU elements); those units are independent, so the pool's
// job is plain data parallelism: `submit` for fire-and-forget futures and
// `parallel_for` for blocking chunked loops. Tasks submitted from one thread
// run FIFO per worker; the destructor drains the queue before joining so no
// accepted task is ever dropped.
//
// parallel_for is allocation-free at steady state: the per-call job state
// lives on the caller's stack in an intrusive list the workers poll, chunks
// are claimed under the pool mutex (no per-chunk task objects, futures, or
// type-erased closures), and the body is passed by reference through a
// function-pointer trampoline instead of a std::function. This is what keeps
// the SC LUT hooks — which fan every attention softmax over the pool — off
// the heap during serving (see runtime/arena.h for the tensor half of that
// story). Concurrent parallel_for calls from different threads interleave:
// workers drain whichever jobs are live, oldest first.

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "runtime/failpoint.h"

namespace ascend::runtime {

namespace detail {
/// The "pool.task" fail point (defined in thread_pool.cpp). It fires inside
/// the packaged task, so an injected fault lands in the task's future like
/// any other task exception — it never escapes into a worker loop.
failpoint::Site& pool_task_site();
}  // namespace detail

class ThreadPool {
 public:
  /// `threads` < 1 is clamped to 1. Workers start immediately.
  explicit ThreadPool(int threads);
  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_.load(std::memory_order_relaxed); }

  /// Add `n` workers to a live pool. Used by the engine watchdog to replace
  /// a worker wedged in a stuck forward, so pool capacity never decays.
  void grow(int n);

  /// Enqueue a callable; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [f = std::forward<F>(fn)]() mutable -> R {
          ASCEND_FAILPOINT(detail::pool_task_site());
          return f();
        });
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) throw std::runtime_error("ThreadPool::submit after shutdown");
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run body(begin, end) over [begin, end) split into chunks and block
  /// until all complete. By default the range splits into ~size() chunks;
  /// `max_chunk > 0` caps the chunk size instead — submit many small chunks
  /// when per-index cost varies wildly (the DSE sweep), so chunk claiming
  /// load-balances dynamically. The caller claims chunks alongside the
  /// workers, so the loop makes progress even on a single-core pool. Must
  /// not be called from inside a pool task (the caller-waits pattern would
  /// deadlock). Rethrows the first chunk exception after all chunks finish.
  template <typename Body>
  void parallel_for(int begin, int end, const Body& body, int max_chunk = 0) {
    parallel_for_impl(
        begin, end,
        [](void* ctx, int lo, int hi) { (*static_cast<const Body*>(ctx))(lo, hi); },
        const_cast<void*>(static_cast<const void*>(&body)), max_chunk);
  }

 private:
  using ChunkFn = void (*)(void* ctx, int lo, int hi);

  /// One in-flight parallel_for: lives on the caller's stack, linked into
  /// jobs_. All fields are guarded by mu_ except during body execution.
  struct ParallelJob {
    ChunkFn invoke = nullptr;
    void* ctx = nullptr;
    int begin = 0;
    int end = 0;
    int step = 1;
    int chunks = 0;
    int next = 0;     ///< next chunk index to claim (under mu_)
    int running = 0;  ///< chunks claimed but not yet finished (under mu_)
    std::exception_ptr error;  ///< first failure (under mu_)
    ParallelJob* next_job = nullptr;
  };

  void parallel_for_impl(int begin, int end, ChunkFn invoke, void* ctx, int max_chunk);
  /// Any live job with an unclaimed chunk? (under mu_)
  bool claimable() const;
  /// Claim and run one chunk of the oldest live job. Caller holds `lock`;
  /// returns false when no job has unclaimed chunks.
  bool run_one_chunk(std::unique_lock<std::mutex>& lock);
  void worker_loop();

  std::vector<std::thread> workers_;  ///< mutated under mu_ (ctor aside)
  std::atomic<int> size_{0};          ///< workers_.size(), lock-free for readers
  std::queue<std::function<void()>> queue_;
  ParallelJob* jobs_ = nullptr;  ///< newest-first intrusive list (under mu_)
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;  ///< signalled when a job's last chunk retires
  bool closed_ = false;
};

}  // namespace ascend::runtime
