#pragma once
// thread_pool.h — fixed-size worker pool for the SC inference runtime.
//
// The engine's hot path is the per-activation SC nonlinear-block emulation
// (softmax rows, GELU elements); those units are independent, so the pool's
// job is plain data parallelism: `submit` for fire-and-forget futures and
// `parallel_for` for blocking chunked loops. Tasks submitted from one thread
// run FIFO per worker; the destructor drains the queue before joining so no
// accepted task is ever dropped.

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace ascend::runtime {

class ThreadPool {
 public:
  /// `threads` < 1 is clamped to 1. Workers start immediately.
  explicit ThreadPool(int threads);
  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a callable; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) throw std::runtime_error("ThreadPool::submit after shutdown");
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run body(begin, end) over [begin, end) split into chunks and block
  /// until all complete. By default the range splits into ~size() chunks;
  /// `max_chunk > 0` caps the chunk size instead — submit many small chunks
  /// when per-index cost varies wildly (the DSE sweep), so the FIFO queue
  /// load-balances dynamically. The caller executes one chunk itself, so the
  /// loop makes progress even on a single-core pool. Must not be called from
  /// inside a pool task (the caller-waits pattern would deadlock).
  void parallel_for(int begin, int end, const std::function<void(int, int)>& body,
                    int max_chunk = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
};

}  // namespace ascend::runtime
