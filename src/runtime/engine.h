#pragma once
// engine.h — batched SC inference engine.
//
// InferenceEngine turns a trained VisionTransformer plus an ScInferenceConfig
// into a serving endpoint: it installs the SC nonlinear-block hooks (served
// from the transfer-function LUT cache by default, or the bit-true circuit
// emulators when caching is disabled), owns a fixed-size worker pool that
// parallelises the per-activation SC emulation inside each forward, and runs
// a dispatcher thread that drains a dynamic request batcher.
//
// Model forwards go through the const, re-entrant VisionTransformer::infer
// path, so the engine runs up to EngineOptions::concurrent_forwards batch
// forwards in flight at once: the dispatcher hands each closed batch to a
// dedicated forward pool instead of forwarding inline, and predict_batch()
// callers from different threads overlap freely as well. The engine still has
// exclusive use of the model's *hooks* while alive (they are installed at
// construction and restored on destruction), but no longer serializes the
// forwards themselves.

#include <cstdint>
#include <memory>
#include <thread>

#include "runtime/batcher.h"
#include "runtime/tf_cache.h"
#include "runtime/thread_pool.h"
#include "vit/dataset.h"
#include "vit/model.h"
#include "vit/sc_inference.h"

namespace ascend::runtime {

struct EngineOptions {
  int threads = 0;    ///< worker pool size; 0 -> hardware_concurrency
  int max_batch = 32; ///< dynamic-batching size cutoff
  std::chrono::microseconds max_delay{2000};  ///< dynamic-batching latency cutoff
  bool use_tf_cache = true;  ///< false: per-activation circuit emulation (bench baseline)
  int concurrent_forwards = 2;  ///< batch forwards in flight (>= 1); see engine doc
  int max_pending = 0;          ///< bounded batcher queue; 0 = unbounded
  OverflowPolicy overflow = OverflowPolicy::kBlock;  ///< full-queue behaviour
};

struct EngineStats {
  std::uint64_t images = 0;
  std::uint64_t batches = 0;        ///< batches dispatched via submit()
  std::uint64_t full_batches = 0;   ///< batches closed by the size cutoff
  double total_queue_ms = 0.0;      ///< summed enqueue -> batch-close waits
  int max_batch_seen = 0;
  int max_in_flight = 0;            ///< peak concurrent batch forwards observed

  double avg_batch() const { return batches ? static_cast<double>(images) / batches : 0.0; }
  double avg_queue_ms() const { return images ? total_queue_ms / images : 0.0; }
};

class InferenceEngine {
 public:
  InferenceEngine(vit::VisionTransformer& model, const vit::ScInferenceConfig& cfg,
                  EngineOptions opts = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Async single-image path through the dynamic batcher. `image` is the
  /// flattened [channels*H*W] pixel row the dataset stores. On a full bounded
  /// queue this blocks or throws QueueFullError per EngineOptions::overflow.
  std::future<Prediction> submit(std::vector<float> image);

  /// Synchronous batch path (no batcher): argmax labels for [B, pixels].
  /// Re-entrant — callers from different threads run concurrently.
  std::vector<int> predict_batch(const nn::Tensor& images);

  /// Top-1 accuracy with the engine's SC blocks active — the serving twin of
  /// vit::evaluate(); vit::evaluate_sc delegates here.
  double evaluate(const vit::Dataset& data, int batch_size = 128);

  EngineStats stats() const;
  int threads() const { return pool_.size(); }
  int concurrent_forwards() const { return opts_.concurrent_forwards; }
  const vit::ScInferenceConfig& sc_config() const { return cfg_; }
  bool cached() const { return opts_.use_tf_cache; }

 private:
  void install_hooks();
  void dispatch_loop();
  void process_batch(std::vector<Request>& batch);

  vit::VisionTransformer& model_;
  vit::ScInferenceConfig cfg_;
  EngineOptions opts_;
  ThreadPool pool_;
  Batcher batcher_;

  mutable std::mutex stats_mu_;
  EngineStats stats_;

  // In-flight forward accounting: the dispatcher stops pulling batches while
  // `concurrent_forwards` are already running, so overload queues up in the
  // batcher (where max_pending applies) instead of in the forward pool.
  std::mutex flight_mu_;
  std::condition_variable flight_cv_;
  int in_flight_ = 0;

  // Uncached fallback: an immutable prototype block the GELU hook copies into
  // per-call emulator instances (the shared prototype is never invoked).
  std::shared_ptr<const sc::GateAssistedSI> gelu_proto_;
  const GateSiLut* gelu_lut_ = nullptr;
  const SoftmaxLut* softmax_lut_ = nullptr;
  sc::SoftmaxIterConfig softmax_cfg_;  ///< m resolved to the model's tokens

  std::unique_ptr<ThreadPool> forward_pool_;  ///< runs the in-flight batch forwards
  std::thread dispatcher_;
};

}  // namespace ascend::runtime
