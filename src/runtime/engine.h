#pragma once
// engine.h — model-agnostic batched inference engine.
//
// InferenceEngine serves every Servable published in a ModelRegistry from
// one priority/deadline-aware request queue: submit(payload, RequestOptions)
// routes a request to a named variant with a scheduling class and an
// optional deadline, the batcher groups compatible (same-variant) requests
// and serves interactive traffic first, and a dispatcher thread hands each
// closed batch to a forward pool running up to
// EngineOptions::concurrent_forwards Servable::infer calls in flight.
// Requests whose deadline expires in the queue fail fast with
// DeadlineExceededError and never reach a forward. Variants hot-swap through
// ModelRegistry::publish without pausing the engine: each batch forward runs
// on the shared_ptr snapshot it grabbed.
//
// Back-compat: the (model, ScInferenceConfig) constructor wraps the model in
// a single SC servable exactly like the pre-registry engine — hooks are
// installed on the caller's model at construction and restored on
// destruction, and submit/predict_batch/evaluate without request options are
// bit-identical to the old single-model engine. vit::evaluate_sc still
// delegates here.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/arena.h"
#include "runtime/batcher.h"
#include "runtime/metrics/registry.h"
#include "runtime/metrics/trace.h"
#include "runtime/registry.h"
#include "runtime/thread_pool.h"
#include "vit/dataset.h"
#include "vit/sc_inference.h"

namespace ascend::vit {
class VisionTransformer;
}

namespace ascend::runtime {

/// Delivered through a request future when its batch forward overran
/// EngineOptions::forward_timeout: the watchdog failed the batch, released
/// the concurrency slot and replaced the pool worker; the engine keeps
/// serving. The wedged forward finishes (or not) in the background and its
/// late results are discarded.
struct WatchdogTimeoutError : std::runtime_error {
  WatchdogTimeoutError() : std::runtime_error("forward exceeded watchdog deadline") {}
};

struct EngineOptions {
  int threads = 0;    ///< worker pool size; 0 -> hardware_concurrency
  int max_batch = 32; ///< dynamic-batching size cutoff
  std::chrono::microseconds max_delay{2000};  ///< dynamic-batching latency cutoff
  bool use_tf_cache = true;  ///< SC shim ctor only: false = per-activation circuit emulation
  int concurrent_forwards = 2;  ///< batch forwards in flight (>= 1); see engine doc
  int max_pending = 0;          ///< bounded batcher queue; 0 = unbounded
  OverflowPolicy overflow = OverflowPolicy::kBlock;  ///< full-queue behaviour
  /// Variant served when RequestOptions::variant is empty. Empty: the
  /// registry's sole variant (construction throws if it holds several —
  /// a multi-variant engine must name its default).
  std::string default_variant;
  /// Metrics registry the engine publishes into (queue-wait / forward-time /
  /// end-to-end latency histograms per variant and priority, queue-depth and
  /// in-flight gauges, the EngineStats counters). Null: the engine creates a
  /// private registry, reachable via metrics(). A shared registry must
  /// outlive the engine; the engine unregisters its callback series on
  /// destruction.
  std::shared_ptr<metrics::MetricsRegistry> metrics;
  /// Per-request span tracing (off by default). When disabled the only
  /// per-span cost left in the forward path is a thread-local read.
  trace::TracerOptions trace;
  /// Run every Servable::infer under a pooled activation arena: intermediate
  /// tensors bump-allocate from a per-forward slab instead of the heap
  /// (zero allocations per forward at steady state). One warm arena is kept
  /// per in-flight forward. Off: the pre-arena heap behaviour, bit-exact.
  bool use_arena = true;
  /// Watchdog deadline on an in-flight batch forward — the whole service
  /// attempt, retries and fallback included. A forward that overruns it has
  /// its unresolved requests failed with WatchdogTimeoutError, its
  /// concurrency slot released, and a replacement forward-pool worker
  /// started; the engine keeps serving around the wedged thread. 0 = off.
  std::chrono::milliseconds forward_timeout{0};
};

/// Per-scheduling-class serving counters.
struct PriorityStats {
  std::uint64_t queued = 0;            ///< accepted into the request queue
  std::uint64_t served = 0;            ///< resolved with a Prediction
  std::uint64_t deadline_dropped = 0;  ///< failed fast with DeadlineExceededError
  std::uint64_t rejected = 0;          ///< QueueFullError / unknown variant at submit
  std::uint64_t retries = 0;           ///< extra primary-variant attempts spent
  std::uint64_t fallback_served = 0;   ///< requests degraded to their fallback variant
};

struct EngineStats {
  std::uint64_t images = 0;
  std::uint64_t batches = 0;        ///< batches dispatched via submit()
  std::uint64_t full_batches = 0;   ///< batches closed by the size cutoff
  std::uint64_t watchdog_trips = 0; ///< forwards abandoned past forward_timeout
  double total_queue_ms = 0.0;      ///< summed enqueue -> batch-close waits
  int max_batch_seen = 0;
  int max_in_flight = 0;            ///< peak concurrent batch forwards observed
  std::array<PriorityStats, kNumPriorities> by_priority;  ///< index by Priority

  double avg_batch() const { return batches ? static_cast<double>(images) / batches : 0.0; }
  double avg_queue_ms() const { return images ? total_queue_ms / images : 0.0; }
  const PriorityStats& priority(Priority p) const {
    return by_priority[static_cast<std::size_t>(p)];
  }
};

class InferenceEngine {
 public:
  /// Model-agnostic engine over a registry of servable variants. The
  /// registry stays caller-owned and live for hot-swaps while serving.
  explicit InferenceEngine(std::shared_ptr<ModelRegistry> registry, EngineOptions opts = {});

  /// Back-compat SC shim: serves `model` in place as the sole variant
  /// ("sc"), with the SC nonlinear-block hooks installed on it for the
  /// engine's lifetime — the pre-registry behaviour, bit-exact.
  InferenceEngine(vit::VisionTransformer& model, const vit::ScInferenceConfig& cfg,
                  EngineOptions opts = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Async single-payload path through the priority batcher. On a full
  /// bounded queue this blocks or throws QueueFullError per
  /// EngineOptions::overflow; an unknown variant throws UnknownVariantError
  /// here, before queueing. A deadline that expires before the request's
  /// batch forward starts fails the future with DeadlineExceededError.
  std::future<Prediction> submit(std::vector<float> image, RequestOptions ropts = {});

  /// Synchronous batch path (no batcher): argmax labels for [B, pixels]
  /// through `variant` (empty = default). Re-entrant — callers from
  /// different threads run concurrently.
  std::vector<int> predict_batch(const nn::Tensor& images, const std::string& variant = {});

  /// Top-1 accuracy of `variant` (empty = default) — the serving twin of
  /// vit::evaluate(); vit::evaluate_sc delegates here.
  double evaluate(const vit::Dataset& data, int batch_size = 128,
                  const std::string& variant = {});

  /// Consistent snapshot of the serving counters. Since the observability
  /// layer landed this is a *view* assembled from the same atomics that back
  /// the metrics registry — one code path, so a scrape and stats() can never
  /// disagree, and `served <= queued` holds per priority at any instant
  /// (each counter pair is updated in program order on seq_cst atomics).
  EngineStats stats() const;
  /// Metrics registry this engine publishes into (EngineOptions::metrics or
  /// the engine-private one).
  const std::shared_ptr<metrics::MetricsRegistry>& metrics() const { return metrics_; }
  /// Per-request trace retention (rings + slowest-N); enabled per
  /// EngineOptions::trace.
  const trace::Tracer& tracer() const { return tracer_; }
  /// Batch forwards running right now (live twin of EngineStats::max_in_flight).
  int in_flight() const { return in_flight_.load(); }
  /// Live queue depth, total and per priority (also exported as gauges).
  PendingCounts pending() const { return batcher_.pending_counts(); }
  const std::shared_ptr<ModelRegistry>& registry() const { return registry_; }
  const std::string& default_variant() const { return default_variant_; }
  /// Size of the SC shim's per-activation worker pool; 0 for a registry
  /// engine (variants bring their own pools, see vit::ScServableOptions).
  int threads() const { return pool_ ? pool_->size() : 0; }
  int concurrent_forwards() const { return opts_.concurrent_forwards; }
  bool cached() const { return opts_.use_tf_cache; }

 private:
  /// One in-flight batch forward. Owns the requests' promises through a
  /// per-row claim protocol: whoever wins claim(r) — the forward thread
  /// resolving the row, the watchdog abandoning it, or the destructor
  /// cleaning up after an injected pool fault — is the only writer of that
  /// promise. The concurrency slot is released exactly once, whichever of
  /// the three paths gets there first.
  struct BatchJob {
    BatchJob(InferenceEngine* engine, std::vector<Request> b);
    /// Fails any still-unresolved row (reachable only when the pool.task
    /// fail point threw before run()) and releases the slot.
    ~BatchJob();

    /// True when the caller won ownership of row r's promise.
    bool claim(std::size_t r) { return !claimed[r].exchange(true); }
    void fail_unresolved(const std::exception_ptr& err);
    void release_slot();
    /// The forward task body: registers with the watchdog, runs
    /// process_batch, unregisters, releases the slot.
    void run(const std::shared_ptr<BatchJob>& self);

    InferenceEngine* eng;
    std::vector<Request> batch;
    std::unique_ptr<std::atomic<bool>[]> claimed;  ///< per-row promise ownership
    std::atomic<bool> slot_released{false};
    /// Set by the watchdog when it abandons this forward: the forward thread
    /// must not touch metrics or promises past the next check (its rows were
    /// already failed; late results are discarded).
    std::atomic<bool> abandoned{false};
    std::chrono::steady_clock::time_point started{};  ///< set before flight registration
  };

  void start();
  void dispatch_loop();
  void process_batch(BatchJob& job);
  void watchdog_loop();
  void register_flight(const std::shared_ptr<BatchJob>& job);
  void unregister_flight(const BatchJob* job);
  const std::string& resolve_variant(const std::string& requested) const;
  void count_drop(Priority p);
  void register_metric_series();

  EngineOptions opts_;
  /// Per-activation worker pool handed to the SC shim servable; null on the
  /// registry path, where each servable carries its own parallelism.
  std::unique_ptr<ThreadPool> pool_;
  Batcher batcher_;

  // Serving counters. Plain seq_cst atomics, updated in program order per
  // request (queued strictly before served/deadline_dropped), so any reader
  // — stats() or a metrics scrape, which both read these — observes
  // `served + deadline_dropped <= queued` per priority. This replaces the
  // old stats_mu_/flight_mu_ split, where max_in_flight could be paired
  // with counters from a different instant.
  struct AtomicPriorityStats {
    std::atomic<std::uint64_t> queued{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> deadline_dropped{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> fallback_served{0};
  };
  std::array<AtomicPriorityStats, kNumPriorities> pstats_;
  std::atomic<std::uint64_t> images_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> full_batches_{0};
  std::atomic<std::uint64_t> watchdog_trips_{0};
  std::atomic<std::uint64_t> queue_wait_ns_{0};
  std::atomic<int> max_batch_seen_{0};
  std::atomic<int> max_in_flight_{0};

  // Observability: the registry the series live in, cached hot-path handles
  // (per-priority queue-wait histograms, batch fill), and the trace store.
  // Per-variant histograms are resolved lazily per batch (registration is
  // idempotent and amortised over the whole batch).
  std::shared_ptr<metrics::MetricsRegistry> metrics_;
  std::array<metrics::Histogram*, kNumPriorities> queue_wait_hist_{};
  metrics::Histogram* batch_fill_hist_ = nullptr;
  std::vector<metrics::CallbackId> metric_callbacks_;
  trace::Tracer tracer_;

  // In-flight forward accounting: the dispatcher stops pulling batches while
  // `concurrent_forwards` are already running, so overload queues in the
  // batcher (where max_pending applies) instead of in the forward pool. The
  // counter is atomic for lock-free reads (in_flight gauge); updates stay
  // under flight_mu_ for the condition variable.
  std::mutex flight_mu_;
  std::condition_variable flight_cv_;
  std::atomic<int> in_flight_{0};

  // Watchdog (EngineOptions::forward_timeout > 0): the flight list of
  // running BatchJobs, scanned by a poller thread that abandons overdue
  // forwards. Jobs register on forward start and unregister on completion.
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  std::vector<std::shared_ptr<BatchJob>> flights_;  ///< under watch_mu_
  bool watch_stop_ = false;                         ///< under watch_mu_
  std::thread watchdog_;

  // Declared after pool_ so servables (which may parallelise over pool_) are
  // destroyed before it.
  std::shared_ptr<ModelRegistry> registry_;
  std::string default_variant_;

  /// Warm per-forward activation arenas (EngineOptions::use_arena); leased
  /// around each Servable::infer by process_batch / predict_batch.
  ArenaPool arena_pool_;

  std::unique_ptr<ThreadPool> forward_pool_;  ///< runs the in-flight batch forwards
  std::thread dispatcher_;
};

}  // namespace ascend::runtime
