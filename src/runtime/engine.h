#pragma once
// engine.h — batched SC inference engine.
//
// InferenceEngine turns a trained VisionTransformer plus an ScInferenceConfig
// into a serving endpoint: it installs the SC nonlinear-block hooks (served
// from the transfer-function LUT cache by default, or the bit-true circuit
// emulators when caching is disabled), owns a fixed-size worker pool that
// parallelises the per-activation SC emulation inside each forward, and runs
// a dispatcher thread that drains a dynamic request batcher. The engine has
// exclusive use of the model while alive — model forwards are serialized
// internally (the substrate caches activations per forward) — and restores
// the model's hooks on destruction.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "runtime/batcher.h"
#include "runtime/tf_cache.h"
#include "runtime/thread_pool.h"
#include "vit/dataset.h"
#include "vit/model.h"
#include "vit/sc_inference.h"

namespace ascend::runtime {

struct EngineOptions {
  int threads = 0;    ///< worker pool size; 0 -> hardware_concurrency
  int max_batch = 32; ///< dynamic-batching size cutoff
  std::chrono::microseconds max_delay{2000};  ///< dynamic-batching latency cutoff
  bool use_tf_cache = true;  ///< false: per-activation circuit emulation (bench baseline)
};

struct EngineStats {
  std::uint64_t images = 0;
  std::uint64_t batches = 0;        ///< batches dispatched via submit()
  std::uint64_t full_batches = 0;   ///< batches closed by the size cutoff
  double total_queue_ms = 0.0;      ///< summed enqueue -> batch-close waits
  int max_batch_seen = 0;

  double avg_batch() const { return batches ? static_cast<double>(images) / batches : 0.0; }
  double avg_queue_ms() const { return images ? total_queue_ms / images : 0.0; }
};

class InferenceEngine {
 public:
  InferenceEngine(vit::VisionTransformer& model, const vit::ScInferenceConfig& cfg,
                  EngineOptions opts = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Async single-image path through the dynamic batcher. `image` is the
  /// flattened [channels*H*W] pixel row the dataset stores.
  std::future<Prediction> submit(std::vector<float> image);

  /// Synchronous batch path (no batcher): argmax labels for [B, pixels].
  std::vector<int> predict_batch(const nn::Tensor& images);

  /// Top-1 accuracy with the engine's SC blocks active — the serving twin of
  /// vit::evaluate(); vit::evaluate_sc delegates here.
  double evaluate(const vit::Dataset& data, int batch_size = 128);

  EngineStats stats() const;
  int threads() const { return pool_.size(); }
  const vit::ScInferenceConfig& sc_config() const { return cfg_; }
  bool cached() const { return opts_.use_tf_cache; }

 private:
  void install_hooks();
  void dispatch_loop();
  nn::Tensor forward_locked(const nn::Tensor& images);

  vit::VisionTransformer& model_;
  vit::ScInferenceConfig cfg_;
  EngineOptions opts_;
  ThreadPool pool_;
  Batcher batcher_;

  std::mutex model_mu_;  ///< the substrate caches per-forward state
  mutable std::mutex stats_mu_;
  EngineStats stats_;

  // Uncached fallbacks keep the circuit emulators callable from the hooks.
  std::shared_ptr<sc::GateAssistedSI> gelu_block_;
  const GeluLut* gelu_lut_ = nullptr;
  const SoftmaxLut* softmax_lut_ = nullptr;
  sc::SoftmaxIterConfig softmax_cfg_;  ///< m resolved to the model's tokens

  std::thread dispatcher_;
};

}  // namespace ascend::runtime
