#include "runtime/registry.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "runtime/failpoint.h"

namespace ascend::runtime {

namespace {

failpoint::Site fp_publish{"registry.publish"};

int argmax_row(const nn::Tensor& logits, int r) {
  int best = 0;
  for (int c = 1; c < logits.dim(1); ++c)
    if (logits.at(r, c) > logits.at(r, best)) best = c;
  return best;
}

/// Canary battery over the candidate (and optionally the incumbent). Throws
/// CanaryError on any rejection; forward exceptions propagate as-is.
void run_canary(const Servable& candidate, const Servable* incumbent,
                const CanaryOptions& canary) {
  const nn::Tensor& golden = canary.golden_input;
  if (golden.rank() != 2 || golden.dim(0) < 1)
    throw CanaryError("golden_input must be a non-empty [B, input_dim] batch");
  if (golden.dim(1) != candidate.input_dim()) {
    std::ostringstream os;
    os << "golden_input width " << golden.dim(1) << " != candidate input_dim "
       << candidate.input_dim();
    throw CanaryError(os.str());
  }
  const nn::Tensor fresh = candidate.infer(golden);
  if (fresh.rank() != 2 || fresh.dim(0) != golden.dim(0) ||
      fresh.dim(1) != candidate.output_dim())
    throw CanaryError("candidate canary forward returned mis-shaped logits");
  for (int r = 0; r < fresh.dim(0); ++r)
    for (int c = 0; c < fresh.dim(1); ++c)
      if (!std::isfinite(fresh.at(r, c)))
        throw CanaryError("candidate canary forward returned non-finite logits");
  if (!incumbent) return;
  if (canary.max_abs_logit_diff < 0.0 && !canary.require_label_match) return;
  if (incumbent->input_dim() != candidate.input_dim() ||
      incumbent->output_dim() != candidate.output_dim())
    throw CanaryError("candidate shape differs from the live incumbent");
  const nn::Tensor base = incumbent->infer(golden);
  if (canary.max_abs_logit_diff >= 0.0) {
    double worst = 0.0;
    for (int r = 0; r < fresh.dim(0); ++r)
      for (int c = 0; c < fresh.dim(1); ++c)
        worst = std::max(worst, std::abs(static_cast<double>(fresh.at(r, c)) -
                                         static_cast<double>(base.at(r, c))));
    if (worst > canary.max_abs_logit_diff) {
      std::ostringstream os;
      os << "logit divergence " << worst << " exceeds budget " << canary.max_abs_logit_diff;
      throw CanaryError(os.str());
    }
  }
  if (canary.require_label_match) {
    for (int r = 0; r < fresh.dim(0); ++r)
      if (argmax_row(fresh, r) != argmax_row(base, r)) {
        std::ostringstream os;
        os << "argmax mismatch vs incumbent on golden row " << r;
        throw CanaryError(os.str());
      }
  }
}

}  // namespace

std::uint64_t ModelRegistry::publish(std::shared_ptr<const Servable> servable) {
  if (!servable) throw std::invalid_argument("ModelRegistry::publish: null servable");
  const std::string id = servable->variant_id();
  if (id.empty()) throw std::invalid_argument("ModelRegistry::publish: empty variant_id");
  // The fail point sits before any registry mutation: an injected publish
  // fault can never leave a partially-published entry behind.
  ASCEND_FAILPOINT(fp_publish);
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[id];
  if (e.generation == 0) e.order = entries_.size() - 1;
  e.servable = std::move(servable);
  publishes_.fetch_add(1);
  return ++e.generation;
}

void ModelRegistry::validate(const Servable& candidate, const CanaryOptions& canary) const {
  const std::shared_ptr<const Servable> incumbent = try_get(candidate.variant_id());
  run_canary(candidate, incumbent.get(), canary);
}

PublishResult ModelRegistry::publish_checked(std::shared_ptr<const Servable> servable,
                                             const CanaryOptions& canary) {
  if (!servable) throw std::invalid_argument("ModelRegistry::publish_checked: null servable");
  const std::string id = servable->variant_id();
  if (id.empty()) throw std::invalid_argument("ModelRegistry::publish_checked: empty variant_id");
  PublishResult result;
  // The incumbent snapshot outlives the canary; a concurrent publish of the
  // same id between canary and publish is last-writer-wins, same as two
  // concurrent plain publishes.
  const std::shared_ptr<const Servable> incumbent = try_get(id);
  try {
    run_canary(*servable, incumbent.get(), canary);
    result.generation = publish(std::move(servable));
    result.published = true;
  } catch (const std::exception& e) {
    rollbacks_.fetch_add(1);
    result.error = e.what();
    result.generation = generation(id);
  }
  return result;
}

std::shared_ptr<const Servable> ModelRegistry::get(const std::string& variant) const {
  std::shared_ptr<const Servable> s = try_get(variant);
  if (!s) throw UnknownVariantError(variant);
  return s;
}

std::shared_ptr<const Servable> ModelRegistry::try_get(const std::string& variant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(variant);
  return it == entries_.end() ? nullptr : it->second.servable;
}

std::uint64_t ModelRegistry::generation(const std::string& variant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(variant);
  return it == entries_.end() ? 0 : it->second.generation;
}

bool ModelRegistry::contains(const std::string& variant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(variant) != 0;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::string> ModelRegistry::variant_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::size_t, std::string>> ranked;
  ranked.reserve(entries_.size());
  for (const auto& [id, e] : entries_) ranked.emplace_back(e.order, id);
  std::sort(ranked.begin(), ranked.end());
  std::vector<std::string> out;
  out.reserve(ranked.size());
  for (auto& [order, id] : ranked) out.push_back(std::move(id));
  return out;
}

}  // namespace ascend::runtime
