#include "runtime/registry.h"

#include <algorithm>
#include <stdexcept>

namespace ascend::runtime {

std::uint64_t ModelRegistry::publish(std::shared_ptr<const Servable> servable) {
  if (!servable) throw std::invalid_argument("ModelRegistry::publish: null servable");
  const std::string id = servable->variant_id();
  if (id.empty()) throw std::invalid_argument("ModelRegistry::publish: empty variant_id");
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[id];
  if (e.generation == 0) e.order = entries_.size() - 1;
  e.servable = std::move(servable);
  return ++e.generation;
}

std::shared_ptr<const Servable> ModelRegistry::get(const std::string& variant) const {
  std::shared_ptr<const Servable> s = try_get(variant);
  if (!s) throw UnknownVariantError(variant);
  return s;
}

std::shared_ptr<const Servable> ModelRegistry::try_get(const std::string& variant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(variant);
  return it == entries_.end() ? nullptr : it->second.servable;
}

std::uint64_t ModelRegistry::generation(const std::string& variant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(variant);
  return it == entries_.end() ? 0 : it->second.generation;
}

bool ModelRegistry::contains(const std::string& variant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(variant) != 0;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::string> ModelRegistry::variant_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::size_t, std::string>> ranked;
  ranked.reserve(entries_.size());
  for (const auto& [id, e] : entries_) ranked.emplace_back(e.order, id);
  std::sort(ranked.begin(), ranked.end());
  std::vector<std::string> out;
  out.reserve(ranked.size());
  for (auto& [order, id] : ranked) out.push_back(std::move(id));
  return out;
}

}  // namespace ascend::runtime
