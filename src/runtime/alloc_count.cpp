#include "runtime/alloc_count.h"

namespace ascend::runtime {
namespace detail {

std::atomic<std::uint64_t>& alloc_counter() {
  static std::atomic<std::uint64_t> counter{0};
  return counter;
}

namespace {
std::atomic<bool>& active_flag() {
  static std::atomic<bool> active{false};
  return active;
}
}  // namespace

void set_alloc_counting_active() { active_flag().store(true, std::memory_order_relaxed); }

}  // namespace detail

std::uint64_t alloc_count() {
  return detail::alloc_counter().load(std::memory_order_relaxed);
}

bool alloc_counting_active() {
  return detail::active_flag().load(std::memory_order_relaxed);
}

}  // namespace ascend::runtime
