#pragma once
// loader.h — prefetching ingest pipeline for open-loop serving and benches.
//
// The engine-side allocation work (arena.h) makes a forward cheap enough
// that a closed-loop driver — decode a batch, run it, decode the next —
// leaves the model idle for the whole decode. Loader overlaps the two: N
// worker threads decode/normalize/patchify samples into a fixed ring of
// recycled batch buffers while the consumer runs the previous batch, and
// next() hands batches over strictly in sequence order (the double-buffered
// handoff). At steady state the pipeline performs zero heap allocations:
// every buffer is carved once at construction and recycled forever.
//
// The decode callback owns the actual sample production — file reads,
// synthetic generators, dataset shards — so the pipeline is agnostic to
// where pixels come from. It is called concurrently from multiple workers
// (for different samples) and must be re-entrant.
//
// Lifecycle: next() → consume the batch → recycle() it → next() ... In
// non-loop mode the batch after the last returns end() == true; in loop
// mode the sample index wraps modulo num_samples and next() never ends.
// Failing to recycle() enough batches stalls the workers once the ring is
// exhausted (that is the backpressure mechanism, not a deadlock: recycle
// any outstanding batch to resume).

#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

namespace ascend::runtime {

struct LoaderOptions {
  int workers = 2;           ///< decode threads (clamped to >= 1)
  int prefetch_batches = 4;  ///< ring depth (clamped to >= 2): batches decoded ahead
  int batch_size = 8;        ///< samples per batch (>= 1)
  bool loop = false;         ///< wrap sample indices forever (open-loop serving)
};

class Loader {
 public:
  /// Decode sample `index` into `dst[0 .. sample_dim)`. Called concurrently
  /// from worker threads for distinct indices; must be re-entrant.
  using DecodeFn = std::function<void(int index, float* dst)>;

  /// One handed-over batch: `size` rows of `dim` floats at `data` (row-major,
  /// batch-contiguous — exactly the layout InferenceEngine::process_batch and
  /// VisionTransformer::infer consume). The buffer belongs to the consumer
  /// until recycle()d back.
  struct Batch {
    const float* data = nullptr;
    int size = 0;
    int dim = 0;
    long long seq = -1;
    /// True once the (non-loop) stream is exhausted.
    bool end() const { return data == nullptr; }
  };

  Loader(DecodeFn decode, int num_samples, int sample_dim, LoaderOptions opts = {});
  /// Stops the workers and joins; outstanding Batch views dangle after this.
  ~Loader();

  Loader(const Loader&) = delete;
  Loader& operator=(const Loader&) = delete;

  /// Block until the next in-sequence batch is decoded and return it. After
  /// the final batch of a non-loop stream, returns a Batch with end() true.
  /// Rethrows the first decode exception (the pipeline stops on error).
  Batch next();

  /// Return a consumed batch's buffer to the ring so a worker can refill it.
  void recycle(const Batch& b);

  int batch_size() const { return opts_.batch_size; }
  int sample_dim() const { return sample_dim_; }
  /// Total batches of a non-loop stream (ceil division); -1 when looping.
  long long total_batches() const { return opts_.loop ? -1 : total_batches_; }

 private:
  struct Slot {
    std::vector<float> buf;  ///< batch_size * sample_dim floats, allocated once
    long long seq = -1;
    int size = 0;
    bool ready = false;  ///< decoded and awaiting hand-over (guarded by mu_)
    bool free = true;    ///< available for a worker to claim (guarded by mu_)
  };

  void worker_loop();
  /// Slot index holding `seq`, or -1. Caller holds mu_.
  int find_ready(long long seq) const;

  DecodeFn decode_;
  int num_samples_;
  int sample_dim_;
  LoaderOptions opts_;
  long long total_batches_ = 0;

  std::vector<Slot> slots_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable slot_cv_;   ///< a slot became free (workers wait)
  std::condition_variable ready_cv_;  ///< a batch became ready (consumer waits)
  long long next_fill_ = 0;           ///< next seq a worker will claim
  long long next_out_ = 0;            ///< next seq the consumer will receive
  std::exception_ptr error_;          ///< first decode failure
  bool closed_ = false;
};

}  // namespace ascend::runtime
