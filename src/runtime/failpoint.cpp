#include "runtime/failpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

namespace ascend::runtime::failpoint {

namespace {

/// splitmix64 — tiny, seedable, and good enough to make p-triggers
/// reproducible across runs of a chaos schedule.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d4ecb9aaa1105bull;
  return z ^ (z >> 31);
}

/// Process-wide site registry. A Meyers singleton so sites constructing at
/// static init in any TU find it already alive; the constructor parses
/// ASCEND_FAILPOINTS into parked specs that registering sites adopt,
/// making env activation independent of static-init order.
struct Registry {
  std::mutex mu;
  std::map<std::string, Site*> live;
  std::map<std::string, FailSpec> parked;
  std::atomic<std::uint64_t> total_fires{0};

  Registry() {
    const char* env = std::getenv("ASCEND_FAILPOINTS");
    if (!env || !*env) return;
    // Static-init context: a malformed entry is reported and skipped, never
    // thrown (throwing here would terminate before main).
    std::string text(env);
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t end = text.find(';', pos);
      if (end == std::string::npos) end = text.size();
      const std::string entry = text.substr(pos, end - pos);
      pos = end + 1;
      if (entry.empty()) continue;
      const std::size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "ASCEND_FAILPOINTS: ignoring malformed entry '%s'\n", entry.c_str());
        continue;
      }
      try {
        parked[entry.substr(0, eq)] = parse_spec(entry.substr(eq + 1));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ASCEND_FAILPOINTS: ignoring '%s': %s\n", entry.c_str(), e.what());
      }
    }
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

Site::Site(const char* name) : name_(name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.live[name_] = this;
  const auto it = r.parked.find(name_);
  if (it != r.parked.end()) {
    arm(it->second);
    r.parked.erase(it);
  }
}

void Site::arm(const FailSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  hit_count_ = 0;
  fire_count_ = 0;
  rng_ = spec.seed;
  armed_.store(true, std::memory_order_relaxed);
}

void Site::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
}

SiteStats Site::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SiteStats s;
  s.name = name_;
  s.armed = armed_.load(std::memory_order_relaxed);
  s.hits = hit_count_;
  s.fires = fire_count_;
  return s;
}

bool Site::fire() {
  Action action;
  int delay_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed)) return false;  // raced a disarm
    const std::uint64_t hit = hit_count_++;
    if (hit < spec_.skip) return false;
    if (spec_.probability < 1.0) {
      const double u =
          static_cast<double>(splitmix64(rng_) >> 11) * (1.0 / 9007199254740992.0);
      if (u >= spec_.probability) return false;
    }
    ++fire_count_;
    registry().total_fires.fetch_add(1, std::memory_order_relaxed);
    if (spec_.max_fires != 0 && fire_count_ >= spec_.max_fires)
      armed_.store(false, std::memory_order_relaxed);
    action = spec_.action;
    delay_ms = spec_.delay_ms;
  }
  switch (action) {
    case Action::kThrow:
      throw InjectedFaultError(name_);
    case Action::kError:
      return true;
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return false;
    case Action::kAbort:
#ifndef NDEBUG
      std::fprintf(stderr, "failpoint '%s': abort action fired\n", name_);
      std::abort();
#else
      throw InjectedFaultError(name_);
#endif
  }
  return false;
}

FailSpec parse_spec(const std::string& text) {
  FailSpec spec;
  bool have_action = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string tok = text.substr(pos, end - pos);
    pos = end + 1;
    if (tok.empty()) {
      if (pos > text.size()) break;
      throw std::invalid_argument("failpoint spec: empty token");
    }
    auto number_after = [&tok](std::size_t prefix) -> std::string {
      return tok.substr(prefix);
    };
    try {
      if (tok == "throw") {
        spec.action = Action::kThrow;
        have_action = true;
      } else if (tok == "err") {
        spec.action = Action::kError;
        have_action = true;
      } else if (tok == "abort") {
        spec.action = Action::kAbort;
        have_action = true;
      } else if (tok == "once") {
        spec.max_fires = 1;
      } else if (tok.rfind("delay", 0) == 0 && tok.size() > 5) {
        spec.action = Action::kDelay;
        spec.delay_ms = std::stoi(number_after(5));
        if (spec.delay_ms < 0) throw std::invalid_argument("negative delay");
        have_action = true;
      } else if (tok.rfind("after", 0) == 0 && tok.size() > 5) {
        spec.skip = std::stoull(number_after(5));
      } else if (tok.rfind("seed", 0) == 0 && tok.size() > 4) {
        spec.seed = std::stoull(number_after(4));
      } else if (tok[0] == 'p' && tok.size() > 1) {
        spec.probability = std::stod(number_after(1));
        if (spec.probability < 0.0 || spec.probability > 1.0)
          throw std::invalid_argument("probability outside [0,1]");
      } else if (tok[0] == 'n' && tok.size() > 1) {
        spec.max_fires = std::stoull(number_after(1));
        if (spec.max_fires == 0) throw std::invalid_argument("n0 is meaningless");
      } else {
        throw std::invalid_argument("unknown token");
      }
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("failpoint spec: bad token '" + tok + "' in '" + text + "'");
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("failpoint spec: value out of range in '" + tok + "'");
    }
    if (pos > text.size()) break;
  }
  (void)have_action;  // a spec of pure modifiers keeps the default kThrow
  return spec;
}

bool arm(const std::string& name, const FailSpec& spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.live.find(name);
  if (it != r.live.end()) {
    it->second->arm(spec);
    return true;
  }
  r.parked[name] = spec;
  return false;
}

bool arm(const std::string& name, const std::string& spec) {
  return arm(name, parse_spec(spec));
}

void disarm(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.live.find(name);
  if (it != r.live.end()) it->second->disarm();
  r.parked.erase(name);
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, site] : r.live) site->disarm();
  r.parked.clear();
}

std::vector<SiteStats> sites() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<SiteStats> out;
  out.reserve(r.live.size());
  for (const auto& [name, site] : r.live) out.push_back(site->stats());
  return out;
}

std::uint64_t total_fires() {
  return registry().total_fires.load(std::memory_order_relaxed);
}

}  // namespace ascend::runtime::failpoint
