#pragma once
// alloc_count.h — process-wide heap-allocation counter.
//
// The counter itself always lives in the runtime library; it only advances
// when the interposing operator-new definitions in
// src/runtime/interpose/alloc_new.cpp are linked into the final binary
// (test/bench targets opt in via the `alloc_interpose` object library).
// Production binaries never pay the interposition cost — alloc_count()
// simply stays at 0 and alloc_counting_active() reports false.
//
// This is what backs the zero-allocations-per-forward claim: benches and
// tests read the counter before/after a steady-state forward and assert the
// delta, and the engine exports it as a MetricsRegistry callback series.

#include <atomic>
#include <cstdint>

namespace ascend::runtime {

/// Total operator-new calls observed so far (0 unless the interposer TU is
/// linked into this binary).
std::uint64_t alloc_count();

/// True when the interposer is linked in and alloc_count() is meaningful.
bool alloc_counting_active();

namespace detail {
/// The counter the interposer bumps. Function-local static so it is safe to
/// touch from allocation calls during static initialization.
std::atomic<std::uint64_t>& alloc_counter();
void set_alloc_counting_active();
}  // namespace detail

}  // namespace ascend::runtime
