#include "runtime/batcher.h"

#include <algorithm>
#include <stdexcept>

namespace ascend::runtime {

Batcher::Batcher(int max_batch, std::chrono::microseconds max_delay, int max_pending,
                 OverflowPolicy overflow)
    : max_batch_(max_batch), max_delay_(max_delay), max_pending_(max_pending), overflow_(overflow) {
  if (max_batch_ < 1) throw std::invalid_argument("Batcher: max_batch must be >= 1");
  if (max_delay_.count() < 0) throw std::invalid_argument("Batcher: max_delay must be >= 0");
  if (max_pending_ < 0) throw std::invalid_argument("Batcher: max_pending must be >= 0");
}

std::future<Prediction> Batcher::enqueue(std::vector<float> image) {
  Request req;
  req.image = std::move(image);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<Prediction> fut = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (max_pending_ > 0 && static_cast<int>(queue_.size()) >= max_pending_ && !closed_) {
      if (overflow_ == OverflowPolicy::kReject) throw QueueFullError{};
      space_cv_.wait(lock, [this] {
        return closed_ || static_cast<int>(queue_.size()) < max_pending_;
      });
    }
    if (closed_) throw std::runtime_error("Batcher::enqueue after close");
    queue_.push_back(std::move(req));
  }
  cv_.notify_all();
  return fut;
}

std::vector<Request> Batcher::next_batch() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // closed and drained

    if (static_cast<int>(queue_.size()) < max_batch_ && !closed_) {
      // Wait out the remainder of the oldest request's latency budget; more
      // arrivals may fill the batch (or trip the size cutoff) meanwhile.
      const auto deadline = queue_.front().enqueued + max_delay_;
      const bool full = cv_.wait_until(lock, deadline, [this] {
        return closed_ || static_cast<int>(queue_.size()) >= max_batch_;
      });
      if (!full && queue_.empty()) continue;  // spurious state change; re-arm
    }

    const std::size_t take = std::min(queue_.size(), static_cast<std::size_t>(max_batch_));
    std::vector<Request> batch(std::make_move_iterator(queue_.begin()),
                               std::make_move_iterator(queue_.begin() + static_cast<long>(take)));
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<long>(take));
    if (max_pending_ > 0) space_cv_.notify_all();
    return batch;
  }
}

void Batcher::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
}

std::size_t Batcher::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace ascend::runtime
