#include "runtime/batcher.h"

#include <algorithm>
#include <stdexcept>

#include "runtime/failpoint.h"

namespace ascend::runtime {

namespace {

using Clock = std::chrono::steady_clock;

failpoint::Site fp_enqueue{"batcher.enqueue"};

/// How far ahead of a member's deadline its batch is closed, so the timed
/// wait's wake-up jitter (easily a few ms on a loaded host) still lands
/// *before* the deadline and the request is served rather than dropped.
/// Requests whose remaining budget is tighter than the lead dispatch
/// immediately.
constexpr std::chrono::milliseconds kDeadlineCloseLead{5};

/// Scheduling order: priority class first, arrival order within a class.
bool sched_before(const Request& a, const Request& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  return a.seq < b.seq;
}

}  // namespace

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kInteractive: return "interactive";
    case Priority::kNormal: return "normal";
    case Priority::kBatch: return "batch";
  }
  return "?";
}

Batcher::Batcher(int max_batch, std::chrono::microseconds max_delay, int max_pending,
                 OverflowPolicy overflow)
    : max_batch_(max_batch), max_delay_(max_delay), max_pending_(max_pending), overflow_(overflow) {
  if (max_batch_ < 1) throw std::invalid_argument("Batcher: max_batch must be >= 1");
  if (max_delay_.count() < 0) throw std::invalid_argument("Batcher: max_delay must be >= 0");
  if (max_pending_ < 0) throw std::invalid_argument("Batcher: max_pending must be >= 0");
}

void Batcher::set_drop_observer(std::function<void(Priority)> observer) {
  drop_observer_ = std::move(observer);
}

std::future<Prediction> Batcher::enqueue(std::vector<float> image, RequestOptions opts) {
  ASCEND_FAILPOINT(fp_enqueue);
  Request req;
  req.image = std::move(image);
  req.enqueued = Clock::now();
  req.trace.enqueue = req.enqueued;
  req.variant = std::move(opts.variant);
  req.priority = opts.priority;
  req.retry = std::move(opts.retry);
  if (opts.deadline.count() != 0) {
    req.has_deadline = true;
    req.deadline = req.enqueued + opts.deadline;
  }
  std::future<Prediction> fut = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) throw EngineShutdownError{};
    if (req.expired(req.enqueued)) {
      // Negative budget: fail through the future without touching the queue,
      // so an expired-on-arrival request can never displace live work.
      lock.unlock();
      req.promise.set_exception(std::make_exception_ptr(DeadlineExceededError{}));
      if (drop_observer_) drop_observer_(req.priority);
      return fut;
    }
    if (max_pending_ > 0 && static_cast<int>(queue_.size()) >= max_pending_) {
      if (overflow_ == OverflowPolicy::kReject) throw QueueFullError{};
      space_cv_.wait(lock, [this] {
        return closed_ || static_cast<int>(queue_.size()) < max_pending_;
      });
      if (closed_) throw EngineShutdownError{};
    }
    req.seq = next_seq_++;
    queue_.push_back(std::move(req));
  }
  cv_.notify_all();
  return fut;
}

void Batcher::drop_expired(std::unique_lock<std::mutex>& lock, Clock::time_point now) {
  std::vector<Request> expired;
  for (std::size_t i = 0; i < queue_.size();) {
    if (queue_[i].expired(now)) {
      expired.push_back(std::move(queue_[i]));
      queue_.erase(queue_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
  if (expired.empty()) return;
  if (max_pending_ > 0) space_cv_.notify_all();
  lock.unlock();
  for (Request& req : expired) {
    req.promise.set_exception(std::make_exception_ptr(DeadlineExceededError{}));
    if (drop_observer_) drop_observer_(req.priority);
  }
  lock.lock();
}

std::vector<std::size_t> Batcher::select_group() const {
  // Leader: the request the scheduler owes service to next.
  std::size_t leader = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i)
    if (sched_before(queue_[i], queue_[leader])) leader = i;
  // Companions: everything bound for the leader's variant, served in
  // scheduling order so a mixed-priority group still favours urgent rows.
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < queue_.size(); ++i)
    if (queue_[i].variant == queue_[leader].variant) members.push_back(i);
  std::sort(members.begin(), members.end(),
            [this](std::size_t a, std::size_t b) { return sched_before(queue_[a], queue_[b]); });
  if (members.size() > static_cast<std::size_t>(max_batch_))
    members.resize(static_cast<std::size_t>(max_batch_));
  return members;
}

std::vector<Request> Batcher::next_batch() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    drop_expired(lock, Clock::now());
    if (queue_.empty()) {
      if (closed_) return {};  // closed and drained
      continue;
    }

    const std::vector<std::size_t> members = select_group();
    const auto now = Clock::now();
    // Close the batch before the latency budget of its oldest member runs
    // out, and with enough lead on any member's deadline that the member is
    // served before it expires instead of being parked until it drops.
    auto close_at = Clock::time_point::max();
    for (std::size_t i : members) {
      close_at = std::min(close_at, queue_[i].enqueued + max_delay_);
      if (queue_[i].has_deadline)
        close_at = std::min(close_at, queue_[i].deadline - kDeadlineCloseLead);
    }
    const bool full = members.size() >= static_cast<std::size_t>(max_batch_);
    if (full || closed_ || now >= close_at) {
      std::vector<Request> batch;
      batch.reserve(members.size());
      const auto close_stamp = Clock::now();
      for (std::size_t i : members) {
        queue_[i].trace.batch_close = close_stamp;
        batch.push_back(std::move(queue_[i]));
      }
      // Erase the taken slots back-to-front so earlier indices stay valid.
      std::vector<std::size_t> sorted = members;
      std::sort(sorted.begin(), sorted.end());
      for (auto it = sorted.rbegin(); it != sorted.rend(); ++it)
        queue_.erase(queue_.begin() + static_cast<long>(*it));
      if (max_pending_ > 0) space_cv_.notify_all();
      return batch;
    }

    // Wait for more arrivals (which may fill the batch, or bring a
    // higher-priority request that re-aims the whole selection), the close
    // deadline, or shutdown — then re-evaluate from scratch. Also wake at
    // the earliest deadline of *any* queued request (not just the leader
    // group's), so an expiring request of another variant is failed at its
    // deadline instead of whenever this group's cutoff next fires.
    auto wake_at = close_at;
    for (const Request& r : queue_)
      if (r.has_deadline) wake_at = std::min(wake_at, r.deadline);
    const std::size_t n = queue_.size();
    cv_.wait_until(lock, wake_at,
                   [this, n] { return closed_ || queue_.size() != n; });
  }
}

void Batcher::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
}

void Batcher::close_now() {
  std::vector<Request> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    orphaned = std::move(queue_);
    queue_.clear();
  }
  cv_.notify_all();
  space_cv_.notify_all();
  const auto err = std::make_exception_ptr(EngineShutdownError{});
  for (Request& req : orphaned) req.promise.set_exception(err);
}

std::size_t Batcher::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t Batcher::pending(Priority p) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Request& r : queue_)
    if (r.priority == p) ++n;
  return n;
}

PendingCounts Batcher::pending_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  PendingCounts counts;
  counts.total = queue_.size();
  for (const Request& r : queue_) {
    ++counts.by_priority[static_cast<std::size_t>(r.priority)];
    // Queues hold a handful of variants; linear probe beats a map here.
    bool found = false;
    for (auto& [v, n] : counts.by_variant)
      if (v == r.variant) {
        ++n;
        found = true;
        break;
      }
    if (!found) counts.by_variant.emplace_back(r.variant, 1);
  }
  std::sort(counts.by_variant.begin(), counts.by_variant.end());
  return counts;
}

}  // namespace ascend::runtime
