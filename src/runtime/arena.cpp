#include "runtime/arena.h"

#include <algorithm>
#include <cstring>

namespace ascend::runtime {
namespace {

thread_local Arena* t_current_arena = nullptr;

std::size_t align_up(std::size_t n, std::size_t align) { return (n + align - 1) & ~(align - 1); }

// First slab granularity: big enough that a small model sizes in one block,
// small enough not to waste memory on tiny test arenas.
constexpr std::size_t kMinBlockBytes = 64 * 1024;

}  // namespace

Arena::Arena(std::size_t initial_bytes) {
  if (initial_bytes > 0) {
    const std::size_t sz = align_up(initial_bytes, kDefaultAlign);
    blocks_.push_back(Block{std::make_unique<std::byte[]>(sz), sz, 0});
    capacity_ = sz;
  }
  blocks_.reserve(8);
}

// Bump offset for the next allocation in a block: aligned on the *absolute*
// address (operator new[] only guarantees 16-byte alignment for the block
// base, so aligning the offset alone would under-align the pointer).
std::size_t aligned_offset(const std::byte* data, std::size_t used, std::size_t align) {
  const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(data);
  return static_cast<std::size_t>(align_up(base + used, align) - base);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (active_ < blocks_.size()) {
    Block& b = blocks_[active_];
    const std::size_t at = aligned_offset(b.data.get(), b.used, align);
    if (at + bytes <= b.size) {
      void* p = b.data.get() + at;
      used_ += (at - b.used) + bytes;
      b.used = at + bytes;
      return p;
    }
  }
  return allocate_slow(bytes, align);
}

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Try later blocks left over from a previous growth cycle.
  for (std::size_t i = active_ + 1; i < blocks_.size(); ++i) {
    Block& b = blocks_[i];
    const std::size_t at = aligned_offset(b.data.get(), b.used, align);
    if (at + bytes <= b.size) {
      active_ = i;
      void* p = b.data.get() + at;
      used_ += (at - b.used) + bytes;
      b.used = at + bytes;
      return p;
    }
  }
  // Grow: geometric in total capacity so sizing passes need O(log n) blocks.
  // `+ align` covers the worst-case base misalignment of the fresh block.
  const std::size_t want = align_up(bytes + align, kDefaultAlign);
  const std::size_t sz = std::max({want, kMinBlockBytes, capacity_});
  blocks_.push_back(Block{std::make_unique<std::byte[]>(sz), sz, 0});
  capacity_ += sz;
  active_ = blocks_.size() - 1;
  Block& b = blocks_.back();
  const std::size_t at = aligned_offset(b.data.get(), b.used, align);
  void* p = b.data.get() + at;
  used_ += (at - b.used) + bytes;
  b.used = at + bytes;
  return p;
}

void Arena::reset() {
  peak_ = std::max(peak_, used_);
  if (blocks_.size() > 1) {
    // Consolidate: one slab covering the peak (padded per-allocation
    // alignment is already folded into used_, add slack for alignment drift).
    const std::size_t sz = align_up(peak_ + peak_ / 8 + kDefaultAlign, kDefaultAlign);
    blocks_.clear();
    blocks_.push_back(Block{std::make_unique<std::byte[]>(sz), sz, 0});
    capacity_ = sz;
    ++consolidations_;
  } else {
    for (Block& b : blocks_) b.used = 0;
  }
  active_ = 0;
  used_ = 0;
}

Arena* Arena::current() { return t_current_arena; }

ArenaScope::ArenaScope(Arena& arena) : prev_(t_current_arena) { t_current_arena = &arena; }
ArenaScope::~ArenaScope() { t_current_arena = prev_; }

HeapScope::HeapScope() : prev_(t_current_arena) { t_current_arena = nullptr; }
HeapScope::~HeapScope() { t_current_arena = prev_; }

ArenaPool::ArenaPool(std::size_t prereserve) {
  all_.reserve(std::max<std::size_t>(prereserve, 1));
  free_.reserve(std::max<std::size_t>(prereserve, 1));
}

Arena* ArenaPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_.empty()) {
    Arena* a = free_.back();
    free_.pop_back();
    return a;
  }
  all_.push_back(std::make_unique<Arena>());
  return all_.back().get();
}

void ArenaPool::release(Arena* arena) {
  if (!arena) return;
  arena->reset();
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(arena);
}

std::size_t ArenaPool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return all_.size();
}

}  // namespace ascend::runtime
