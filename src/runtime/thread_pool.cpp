#include "runtime/thread_pool.h"

#include <algorithm>

namespace ascend::runtime {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(int begin, int end, const std::function<void(int, int)>& body,
                              int max_chunk) {
  const int n = end - begin;
  if (n <= 0) return;
  int step = (n + std::min(n, size()) - 1) / std::min(n, size());
  if (max_chunk > 0) step = std::min(step, max_chunk);
  const int chunks = (n + step - 1) / step;
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(static_cast<std::size_t>(chunks - 1));
  // Hand chunks 1..k-1 to the workers; run chunk 0 on the calling thread.
  for (int c = 1; c < chunks; ++c) {
    const int lo = begin + c * step;
    const int hi = std::min(end, lo + step);
    if (lo >= hi) break;
    futs.push_back(submit([&body, lo, hi] { body(lo, hi); }));
  }
  // Every chunk must finish before we return (or rethrow): an early unwind
  // would leave workers running a `body` that points into the caller's frame.
  std::exception_ptr first_error;
  try {
    body(begin, std::min(end, begin + step));
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ascend::runtime
