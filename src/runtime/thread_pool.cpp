#include "runtime/thread_pool.h"

#include <algorithm>

namespace ascend::runtime {

namespace detail {
namespace {
failpoint::Site g_pool_task{"pool.task"};
}  // namespace
failpoint::Site& pool_task_site() { return g_pool_task; }
}  // namespace detail

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
  size_.store(n, std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::grow(int n) {
  if (n <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;  // shutting down: joining what exists is enough
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
  size_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
}

bool ThreadPool::claimable() const {
  for (const ParallelJob* j = jobs_; j; j = j->next_job)
    if (j->next < j->chunks) return true;
  return false;
}

bool ThreadPool::run_one_chunk(std::unique_lock<std::mutex>& lock) {
  ParallelJob* j = jobs_;
  while (j && j->next >= j->chunks) j = j->next_job;
  if (!j) return false;
  const int c = j->next++;
  ++j->running;
  lock.unlock();
  const int lo = j->begin + c * j->step;
  const int hi = std::min(j->end, lo + j->step);
  std::exception_ptr err;
  try {
    j->invoke(j->ctx, lo, hi);
  } catch (...) {
    err = std::current_exception();
  }
  lock.lock();
  if (err && !j->error) j->error = err;
  --j->running;
  if (j->next >= j->chunks && j->running == 0) done_cv_.notify_all();
  return true;
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return closed_ || !queue_.empty() || claimable(); });
    if (run_one_chunk(lock)) continue;
    if (!queue_.empty()) {
      std::function<void()> task = std::move(queue_.front());
      queue_.pop();
      lock.unlock();
      task();
      lock.lock();
      continue;
    }
    if (closed_) return;  // drained: no queued tasks, no claimable chunks
  }
}

void ThreadPool::parallel_for_impl(int begin, int end, ChunkFn invoke, void* ctx, int max_chunk) {
  const int n = end - begin;
  if (n <= 0) return;
  int step = (n + std::min(n, size()) - 1) / std::min(n, size());
  if (max_chunk > 0) step = std::min(step, max_chunk);
  const int chunks = (n + step - 1) / step;
  if (chunks <= 1) {
    invoke(ctx, begin, end);
    return;
  }

  ParallelJob job;
  job.invoke = invoke;
  job.ctx = ctx;
  job.begin = begin;
  job.end = end;
  job.step = step;
  job.chunks = chunks;

  std::unique_lock<std::mutex> lock(mu_);
  // Append at the tail: workers drain oldest jobs first, so concurrent
  // parallel_for callers share the pool roughly fairly.
  ParallelJob** tail = &jobs_;
  while (*tail) tail = &(*tail)->next_job;
  *tail = &job;
  cv_.notify_all();

  // The caller claims chunks alongside the workers (any live job's — helping
  // an older job still drains the pool toward ours), then waits out the
  // stragglers.
  while (job.next < job.chunks) {
    if (!run_one_chunk(lock)) break;
  }
  done_cv_.wait(lock, [&job] { return job.next >= job.chunks && job.running == 0; });

  // Unlink before returning: the job frame dies with this call.
  ParallelJob** p = &jobs_;
  while (*p != &job) p = &(*p)->next_job;
  *p = job.next_job;

  if (job.error) {
    std::exception_ptr err = job.error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace ascend::runtime
