#pragma once
// tf_cache.h — transfer-function LUT cache for the SC nonlinear blocks.
//
// The thermometer datapath's nonlinear blocks are pure functions of small
// integer counts: a gate-assisted SI block maps an input ones-count to an
// output ones-count, and every re-scaling block inside the iterative softmax
// circuit maps a count on one static (length, alpha) grid to a count on
// another. Re-emulating the circuit per activation therefore repeats the
// same tiny computations millions of times per image. This module tabulates
// each block's response once per configuration — by *running the circuit
// emulator* over every reachable input count, so the emulator stays the
// ground truth — and serves inference from the tables. tests/test_runtime.cpp
// asserts bit-exact agreement with sc::GateAssistedSI / sc::softmax_iterative_sc.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sc/gate_si.h"
#include "sc/softmax_fsm.h"
#include "sc/softmax_iter.h"

namespace ascend::runtime {

/// Tabulated gate-assisted SI response: out_[n] = decoded output for input
/// ones-count n. Built by evaluating the block's count-level circuit (itself
/// test-proven equal to the bit-level interval logic) at every n in [0, Lin].
class GeluLut {
 public:
  explicit GeluLut(const sc::GateAssistedSI& block);

  /// Bit-exact with block.transfer(x): same input quantizer, tabled response.
  double operator()(double x) const {
    return out_[static_cast<std::size_t>(sc::ThermValue::encode(x, lin_, alpha_in_).ones)];
  }

  int lin() const { return lin_; }
  double alpha_in() const { return alpha_in_; }
  const std::vector<double>& table() const { return out_; }

 private:
  int lin_;
  double alpha_in_;
  std::vector<double> out_;  // lin_ + 1 entries
};

/// Tabulated iterative-softmax datapath (Fig. 5). The multiplier / BSN /
/// sub-sampler counts are exact O(1) integer maps and are evaluated through
/// the sc:: count-level emulator directly; the four re-scaling blocks — whose
/// emulation re-derives a rational expand/subsample plan on every call — are
/// tabulated per call site (their operand grids are static per config).
class SoftmaxLut {
 public:
  explicit SoftmaxLut(sc::SoftmaxIterConfig cfg);

  /// Bit-exact with sc::softmax_iterative_sc(x, config()).
  std::vector<double> operator()(const std::vector<double>& x) const;

  const sc::SoftmaxIterConfig& config() const { return cfg_; }
  const sc::SoftmaxIterLayout& layout() const { return lay_; }

 private:
  sc::SoftmaxIterConfig cfg_;
  sc::SoftmaxIterLayout lay_;
  double alpha_c_ = 0.0;  // alignment-grid scale alpha_y / align_expand
  int y0_ones_ = 0;       // encode(1/m, By, alpha_y)
  // Alignment lengths derived by running the op chain itself (not the layout
  // arithmetic) so every double matches the emulator's to the last bit.
  int la_ = 0, lb_ = 0, lc_ = 0, lconcat_ = 0;
  // Count -> count tables for the four re-scaling call sites.
  std::vector<int> lut_y_;      // y operand (By grid)      -> La grid
  std::vector<int> lut_zk_;     // z/k operand (Lz grid)    -> Lb grid
  std::vector<int> lut_wk_;     // -y*sum(z)/k (Lw_sub grid)-> Lc grid
  std::vector<int> lut_close_;  // BSN-2 output (Lconcat)   -> By grid
  std::vector<double> y_value_; // decode table for the final (By, alpha_y) grid
};

/// Tabulated FSM-softmax baseline (sc/softmax_fsm.h). Per element index the
/// LFSR sample sequence is fixed by the configured seed, so the SNG bit
/// pattern — and therefore the exponential FSM's output count — is a step
/// function of the encoded probability whose breakpoints are exactly the
/// LFSR samples. The LUT stores, per element, the sorted sample thresholds
/// and the FSM ones-count for every reachable bit pattern; a lookup is a
/// binary search instead of a `bsl`-cycle FSM walk. The shift normalization
/// stays in exact integer arithmetic, so results are bit-exact with
/// sc::softmax_fsm.
class SoftmaxFsmLut {
 public:
  explicit SoftmaxFsmLut(const sc::FsmSoftmaxConfig& cfg);

  /// Bit-exact with sc::softmax_fsm(x, config()).
  std::vector<double> operator()(const std::vector<double>& x) const;

  const sc::FsmSoftmaxConfig& config() const { return cfg_; }

 private:
  sc::FsmSoftmaxConfig cfg_;
  double range_ = 0.0;  // SNG comparison range (2^width)
  std::vector<std::vector<double>> thresholds_;  // [m][bsl], sorted LFSR samples
  std::vector<std::vector<long long>> counts_;   // [m][bsl+1] FSM ones-counts
};

/// Thread-safe per-configuration cache of the LUTs above. Lookups build the
/// table on first use and hand out stable references afterwards; the engine
/// shares one cache across all its worker threads.
class TfCache {
 public:
  /// LUT for make_gelu_block(b, lo, hi, input_bsl).
  const GeluLut& gelu(int b, double input_lo, double input_hi, int input_bsl);
  /// LUT for an arbitrary synthesized gate-assisted SI block.
  const GeluLut& gelu_block(const sc::GateAssistedSI& block, const std::string& key);
  const SoftmaxLut& softmax(const sc::SoftmaxIterConfig& cfg);
  const SoftmaxFsmLut& softmax_fsm(const sc::FsmSoftmaxConfig& cfg);

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<GeluLut>> gelu_;
  std::map<std::string, std::unique_ptr<SoftmaxLut>> softmax_;
  std::map<std::string, std::unique_ptr<SoftmaxFsmLut>> softmax_fsm_;
};

/// Process-wide cache shared by every engine (configs are tiny; entries are
/// immutable once built).
TfCache& global_tf_cache();

/// Stable cache keys (exposed for tests).
std::string softmax_cache_key(const sc::SoftmaxIterConfig& cfg);
std::string softmax_fsm_cache_key(const sc::FsmSoftmaxConfig& cfg);

}  // namespace ascend::runtime
