#pragma once
// tf_cache.h — transfer-function LUT cache for the SC nonlinear blocks.
//
// The thermometer datapath's nonlinear blocks are pure functions of small
// integer counts: a gate-assisted SI block maps an input ones-count to an
// output ones-count, and every re-scaling block inside the iterative softmax
// circuit maps a count on one static (length, alpha) grid to a count on
// another. The classic-SC baselines (FSM softmax, Bernstein ReSC) are pure
// functions of their inputs too once the SNG seeds are fixed, because every
// LFSR sample sequence is determined by the configuration. Re-emulating a
// circuit per activation (or per design-space-exploration sweep point)
// therefore repeats the same tiny computations millions of times. This module
// tabulates each block's response once per configuration — by *running the
// circuit emulator* over every reachable input, so the emulator stays the
// ground truth — and serves inference and the DSE sweeps from the tables.
// tests/test_runtime.cpp asserts bit-exact agreement with the sc:: emulators
// for every LUT class below.
//
// Cache entries are immutable once built: a LUT is frozen at construction and
// never invalidated, because its key encodes everything the tabulated
// function depends on (block parameters, seeds, bitstream lengths). Contrast
// with the nn-layer weight snapshots (nn::LsqQuantizer::frozen_infer), which
// memoize a function of *mutable* training state and therefore need explicit
// thaw-on-train invalidation.

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sc/bernstein.h"
#include "sc/gate_si.h"
#include "sc/softmax_fsm.h"
#include "sc/softmax_iter.h"

namespace ascend::runtime {

/// Tabulated gate-assisted SI response: out_[n] = decoded output for input
/// ones-count n. Built by evaluating the block's count-level circuit (itself
/// test-proven equal to the bit-level interval logic) at every n in [0, Lin].
/// Works for any synthesized block, not just the GELU of Table III.
class GateSiLut {
 public:
  explicit GateSiLut(const sc::GateAssistedSI& block);

  /// Bit-exact with block.transfer(x): same input quantizer, tabled response.
  double operator()(double x) const {
    return out_[static_cast<std::size_t>(sc::ThermValue::encode(x, lin_, alpha_in_).ones)];
  }

  int lin() const { return lin_; }
  double alpha_in() const { return alpha_in_; }
  const std::vector<double>& table() const { return out_; }

 private:
  int lin_;
  double alpha_in_;
  std::vector<double> out_;  // lin_ + 1 entries
};

/// Historical name from when the only tabulated SI block was the GELU.
using GeluLut = GateSiLut;

/// Tabulated iterative-softmax datapath (Fig. 5). The multiplier / BSN /
/// sub-sampler counts are exact O(1) integer maps and are evaluated through
/// the sc:: count-level emulator directly; the four re-scaling blocks — whose
/// emulation re-derives a rational expand/subsample plan on every call — are
/// tabulated per call site (their operand grids are static per config).
class SoftmaxLut {
 public:
  explicit SoftmaxLut(sc::SoftmaxIterConfig cfg);

  /// Bit-exact with sc::softmax_iterative_sc(x, config()).
  std::vector<double> operator()(const std::vector<double>& x) const;

  /// Buffer-reuse twin: reads config().m values from `x`, writes config().m
  /// values to `out` (may alias `x`). Uses thread-local grow-only scratch —
  /// allocation-free at steady state, which is what the serving softmax hook
  /// calls per attention row.
  void operator()(const double* x, double* out) const;

  const sc::SoftmaxIterConfig& config() const { return cfg_; }
  const sc::SoftmaxIterLayout& layout() const { return lay_; }

 private:
  sc::SoftmaxIterConfig cfg_;
  sc::SoftmaxIterLayout lay_;
  double alpha_c_ = 0.0;  // alignment-grid scale alpha_y / align_expand
  int y0_ones_ = 0;       // encode(1/m, By, alpha_y)
  // Alignment lengths derived by running the op chain itself (not the layout
  // arithmetic) so every double matches the emulator's to the last bit.
  int la_ = 0, lb_ = 0, lc_ = 0, lconcat_ = 0;
  // Count -> count tables for the four re-scaling call sites.
  std::vector<int> lut_y_;      // y operand (By grid)      -> La grid
  std::vector<int> lut_zk_;     // z/k operand (Lz grid)    -> Lb grid
  std::vector<int> lut_wk_;     // -y*sum(z)/k (Lw_sub grid)-> Lc grid
  std::vector<int> lut_close_;  // BSN-2 output (Lconcat)   -> By grid
  std::vector<double> y_value_; // decode table for the final (By, alpha_y) grid
};

/// Tabulated FSM-softmax baseline (sc/softmax_fsm.h). Per element index the
/// LFSR sample sequence is fixed by the configured seed, so the SNG bit
/// pattern — and therefore the exponential FSM's output count — is a step
/// function of the encoded probability whose breakpoints are exactly the
/// LFSR samples. The LUT stores, per element, the sorted sample thresholds
/// and the FSM ones-count for every reachable bit pattern; a lookup is a
/// binary search instead of a `bsl`-cycle FSM walk. The shift normalization
/// stays in exact integer arithmetic, so results are bit-exact with
/// sc::softmax_fsm.
class SoftmaxFsmLut {
 public:
  explicit SoftmaxFsmLut(const sc::FsmSoftmaxConfig& cfg);

  /// Bit-exact with sc::softmax_fsm(x, config()).
  std::vector<double> operator()(const std::vector<double>& x) const;

  const sc::FsmSoftmaxConfig& config() const { return cfg_; }

 private:
  sc::FsmSoftmaxConfig cfg_;
  double range_ = 0.0;  // SNG comparison range (2^width)
  std::vector<std::vector<double>> thresholds_;  // [m][bsl], sorted LFSR samples
  std::vector<std::vector<long long>> counts_;   // [m][bsl+1] FSM ones-counts
};

/// Tabulated Bernstein ReSC unit (sc/bernstein.h) at a fixed (bsl, seed).
/// The unit's stochastic output ones-count is a step function of the input
/// probability u: at cycle t the adder index is the number of input-SNG
/// samples below u * range, so it changes only when u crosses a sample /
/// 2^width threshold — an exact dyadic double, because every LFSR range is a
/// power of two. The LUT sweeps those thresholds in ascending order, updates
/// the affected cycle's multiplexed coefficient-stream bit incrementally, and
/// records the ones-count per plateau; a lookup is one binary search. The
/// comparison `sample < u * range` is exact in double arithmetic (u * 2^w is
/// a pure exponent shift), so results are bit-exact with
/// sc::BernsteinUnit::eval_stochastic at the same (bsl, seed).
class BernsteinLut {
 public:
  BernsteinLut(const sc::BernsteinUnit& unit, std::size_t bsl, std::uint64_t seed);

  /// Bit-exact with unit.eval_stochastic(u, bsl(), seed()).
  double operator()(double u) const;

  std::size_t bsl() const { return bsl_; }
  std::uint64_t seed() const { return seed_; }
  /// Number of plateaus of the tabulated step function (exposed for tests).
  std::size_t plateaus() const { return value_.size(); }

 private:
  std::size_t bsl_;
  std::uint64_t seed_;
  std::vector<double> breaks_;  // ascending dyadic thresholds sample / 2^width
  std::vector<double> value_;   // breaks_.size() + 1 plateau outputs (ones/bsl)
};

/// BernsteinLut wrapped in the affine input/output maps of a BernsteinGelu
/// block, replicating sc::BernsteinGelu::eval_stochastic bit for bit.
class BernsteinGeluLut {
 public:
  BernsteinGeluLut(const sc::BernsteinGelu& block, std::size_t bsl, std::uint64_t seed);

  /// Bit-exact with block.eval_stochastic(x, bsl(), seed()).
  double operator()(double x) const {
    const double u = (std::clamp(x, in_lo_, in_hi_) - in_lo_) / (in_hi_ - in_lo_);
    return out_lo_ + lut_(u) * (out_hi_ - out_lo_);
  }

  std::size_t bsl() const { return lut_.bsl(); }
  std::uint64_t seed() const { return lut_.seed(); }

 private:
  double in_lo_, in_hi_, out_lo_, out_hi_;
  BernsteinLut lut_;
};

/// Thread-safe per-configuration cache of the LUTs above.
///
/// Freeze/thaw semantics: lookups build the table on first use ("freeze") and
/// hand out stable references afterwards; entries are never invalidated
/// ("thawed") because every key encodes the full configuration the table
/// depends on — a changed block is a different key, never a stale entry. The
/// engine shares one cache across all its worker threads, and the DSE sweeps
/// share one cache across all their sweep points.
class TfCache {
 public:
  /// LUT for make_gelu_block(b, lo, hi, input_bsl).
  const GateSiLut& gelu(int b, double input_lo, double input_hi, int input_bsl);
  /// LUT for an arbitrary synthesized gate-assisted SI block under a
  /// caller-chosen key (callers that already have a stable name for the
  /// block, e.g. the engine's per-config GELU hook).
  const GateSiLut& gelu_block(const sc::GateAssistedSI& block, const std::string& key);
  /// LUT for an arbitrary gate-assisted SI block, keyed automatically from
  /// the block's parameters and count table (FNV-1a over the table).
  const GateSiLut& gate_si(const sc::GateAssistedSI& block);
  const SoftmaxLut& softmax(const sc::SoftmaxIterConfig& cfg);
  const SoftmaxFsmLut& softmax_fsm(const sc::FsmSoftmaxConfig& cfg);
  /// LUT for a Bernstein GELU block at a fixed (bsl, seed); keyed by the
  /// block's coefficients, affine maps, bitstream length and seed.
  const BernsteinGeluLut& bernstein(const sc::BernsteinGelu& block, std::size_t bsl,
                                    std::uint64_t seed);

  std::size_t size() const;

 private:
  /// Shared lookup idiom: probe under the lock, build outside it (tables can
  /// be expensive), re-lock to publish; a racing builder's identical table is
  /// simply kept.
  template <typename T, typename Build>
  const T& get_or_build(std::map<std::string, std::unique_ptr<T>>& map, const std::string& key,
                        Build&& build);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<GateSiLut>> gelu_;
  std::map<std::string, std::unique_ptr<SoftmaxLut>> softmax_;
  std::map<std::string, std::unique_ptr<SoftmaxFsmLut>> softmax_fsm_;
  std::map<std::string, std::unique_ptr<BernsteinGeluLut>> bernstein_;
};

/// Process-wide cache shared by every engine (configs are tiny; entries are
/// immutable once built).
TfCache& global_tf_cache();

/// Stable cache keys (exposed for tests).
std::string softmax_cache_key(const sc::SoftmaxIterConfig& cfg);
std::string softmax_fsm_cache_key(const sc::FsmSoftmaxConfig& cfg);
std::string gate_si_cache_key(const sc::GateAssistedSI& block);
std::string bernstein_cache_key(const sc::BernsteinGelu& block, std::size_t bsl,
                                std::uint64_t seed);

// ---------------------------------------------------------------------------
// Cached MAE protocols — the paper-reproduction sweeps served from the cache.
// ---------------------------------------------------------------------------

/// sc::softmax_sc_mae with the per-design circuit emulation replaced by the
/// SoftmaxLut from `cache`. Same logit sampling, same accumulation order:
/// the result is bit-identical to the uncached protocol at the same seed.
double softmax_sc_mae_cached(const sc::SoftmaxIterConfig& cfg, int rows, std::uint64_t seed,
                             TfCache& cache);

/// Seeding protocol for the cached FSM-softmax MAE below.
enum class FsmSeedMode {
  /// The paper protocol: every test row re-seeds the SNGs
  /// (cfg.seed + 0x1234567 * row). The cache keeps one threshold/count table
  /// per row seed, so the numbers are bit-identical to sc::softmax_fsm_mae —
  /// but each table costs O(m * bsl^2) to build AND stays resident (the cache
  /// never evicts: one `rows`-row evaluation retains `rows` tables of
  /// O(m * bsl) entries each). Use a dedicated TfCache whose lifetime matches
  /// the protocol run, not global_tf_cache(); the mode only pays off when the
  /// same protocol (config, base seed) is evaluated repeatedly.
  kPerRowSeeds,
  /// Shared-seed protocol variant: every row draws from the same SNG
  /// sequences (cfg.seed), so a single table serves the whole protocol. Much
  /// faster, but a *different protocol* — callers printing these numbers MUST
  /// flag them as shared-seed, they are not comparable to the paper's.
  kSharedSeed,
};

/// FSM-softmax MAE served from `cache` under the chosen seeding protocol.
/// With kPerRowSeeds the result is bit-identical to
/// sc::softmax_fsm_mae(cfg, rows, seed).
double softmax_fsm_mae_cached(const sc::FsmSoftmaxConfig& cfg, int rows, std::uint64_t seed,
                              TfCache& cache, FsmSeedMode mode = FsmSeedMode::kPerRowSeeds);

}  // namespace ascend::runtime
