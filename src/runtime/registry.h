#pragma once
// registry.h — named servable variants with atomic hot-swap.
//
// A ModelRegistry maps variant ids to Servables. publish() registers a new
// variant or atomically replaces a live one; each replacement bumps the
// variant's generation counter. Readers (the engine's forward workers) take
// a shared_ptr snapshot under a briefly-held mutex and run the forward
// outside any lock, so re-publishing a variant — re-freezing snapshots,
// swapping weights, changing fidelity — never blocks in-flight forwards:
// they finish on the generation they grabbed, and the old servable is
// destroyed when its last in-flight reference drops.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/servable.h"

namespace ascend::runtime {

class ModelRegistry {
 public:
  /// Register `servable` under its variant_id(), or atomically replace the
  /// live servable of that id (hot-swap). Returns the variant's generation
  /// after the publish: 1 on first registration, incremented per swap.
  std::uint64_t publish(std::shared_ptr<const Servable> servable);

  /// Snapshot of the live servable for `variant`. The returned pointer stays
  /// valid (and the servable alive) across any later publish.
  /// Throws UnknownVariantError on an unregistered id.
  std::shared_ptr<const Servable> get(const std::string& variant) const;

  /// Like get(), but returns nullptr instead of throwing.
  std::shared_ptr<const Servable> try_get(const std::string& variant) const;

  /// Current generation of `variant` (0 if never published).
  std::uint64_t generation(const std::string& variant) const;

  bool contains(const std::string& variant) const;
  std::size_t size() const;
  /// Registered ids in first-publish order (stable across hot-swaps).
  std::vector<std::string> variant_ids() const;

 private:
  struct Entry {
    std::shared_ptr<const Servable> servable;
    std::uint64_t generation = 0;
    std::size_t order = 0;  ///< first-publish rank, for variant_ids()
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ascend::runtime
