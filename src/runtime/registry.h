#pragma once
// registry.h — named servable variants with atomic hot-swap.
//
// A ModelRegistry maps variant ids to Servables. publish() registers a new
// variant or atomically replaces a live one; each replacement bumps the
// variant's generation counter. Readers (the engine's forward workers) take
// a shared_ptr snapshot under a briefly-held mutex and run the forward
// outside any lock, so re-publishing a variant — re-freezing snapshots,
// swapping weights, changing fidelity — never blocks in-flight forwards:
// they finish on the generation they grabbed, and the old servable is
// destroyed when its last in-flight reference drops.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/servable.h"

namespace ascend::vit {
struct ScInferenceConfig;
struct ScServableOptions;
}  // namespace ascend::vit

namespace ascend::runtime {

/// Serving personality applied to a model cold-started from a checkpoint by
/// ModelRegistry::register_from_file. Mirrors the vit::make_*_servable
/// family: the checkpoint supplies weights + calibration, the kind picks the
/// precision/hook policy of the published variant.
enum class VariantKind {
  kFp32,           ///< fake-quantization stripped, dense GEMM (fidelity ceiling)
  kPackedTernary,  ///< W2A2 served multiply-free off packed sign planes
  kScLut,          ///< SC softmax/GELU from the transfer-function LUT cache
  kScEmulated,     ///< SC nonlinearities per-activation circuit emulation
};

struct RegisterFromFileOptions {
  /// Serve weights zero-copy out of a read-only mmap of the checkpoint (the
  /// servable keeps the mapping alive across hot-swaps until the last
  /// in-flight forward drops it). false: eager heap copies.
  bool use_mmap = true;
  /// SC variant knobs (kScLut / kScEmulated only); null = defaults. The
  /// pointees are only read during the register_from_file call.
  const vit::ScInferenceConfig* sc_config = nullptr;
  const vit::ScServableOptions* sc_options = nullptr;
};

class ModelRegistry {
 public:
  /// Register `servable` under its variant_id(), or atomically replace the
  /// live servable of that id (hot-swap). Returns the variant's generation
  /// after the publish: 1 on first registration, incremented per swap.
  std::uint64_t publish(std::shared_ptr<const Servable> servable);

  /// Cold-start a variant from a checkpoint file: load the model (zero-copy
  /// mmap by default), shape it per `kind`, and publish() it under
  /// `variant_id` — including atomically hot-swapping a live variant to the
  /// fresh mapping. Throws serialize::CheckpointError on a bad file.
  /// Defined in the serialize library (src/serialize/model_io.cpp), which
  /// layers above this header — link `serialize` (or `core`) to use it.
  std::uint64_t register_from_file(const std::string& variant_id, const std::string& path,
                                   VariantKind kind, const RegisterFromFileOptions& opts = {});

  /// Snapshot of the live servable for `variant`. The returned pointer stays
  /// valid (and the servable alive) across any later publish.
  /// Throws UnknownVariantError on an unregistered id.
  std::shared_ptr<const Servable> get(const std::string& variant) const;

  /// Like get(), but returns nullptr instead of throwing.
  std::shared_ptr<const Servable> try_get(const std::string& variant) const;

  /// Current generation of `variant` (0 if never published).
  std::uint64_t generation(const std::string& variant) const;

  bool contains(const std::string& variant) const;
  std::size_t size() const;
  /// Registered ids in first-publish order (stable across hot-swaps).
  std::vector<std::string> variant_ids() const;

 private:
  struct Entry {
    std::shared_ptr<const Servable> servable;
    std::uint64_t generation = 0;
    std::size_t order = 0;  ///< first-publish rank, for variant_ids()
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ascend::runtime
