#pragma once
// registry.h — named servable variants with atomic hot-swap.
//
// A ModelRegistry maps variant ids to Servables. publish() registers a new
// variant or atomically replaces a live one; each replacement bumps the
// variant's generation counter. Readers (the engine's forward workers) take
// a shared_ptr snapshot under a briefly-held mutex and run the forward
// outside any lock, so re-publishing a variant — re-freezing snapshots,
// swapping weights, changing fidelity — never blocks in-flight forwards:
// they finish on the generation they grabbed, and the old servable is
// destroyed when its last in-flight reference drops.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/servable.h"

namespace ascend::vit {
struct ScInferenceConfig;
struct ScServableOptions;
}  // namespace ascend::vit

namespace ascend::runtime {

/// Serving personality applied to a model cold-started from a checkpoint by
/// ModelRegistry::register_from_file. Mirrors the vit::make_*_servable
/// family: the checkpoint supplies weights + calibration, the kind picks the
/// precision/hook policy of the published variant.
enum class VariantKind {
  kFp32,           ///< fake-quantization stripped, dense GEMM (fidelity ceiling)
  kPackedTernary,  ///< W2A2 served multiply-free off packed sign planes
  kScLut,          ///< SC softmax/GELU from the transfer-function LUT cache
  kScEmulated,     ///< SC nonlinearities per-activation circuit emulation
};

/// Thrown (and recorded as a rollback) when a canary-validated publish
/// rejects the candidate servable: the canary forward threw, produced
/// non-finite or mis-shaped logits, or diverged from the incumbent.
struct CanaryError : std::runtime_error {
  explicit CanaryError(const std::string& why)
      : std::runtime_error("canary validation failed: " + why) {}
};

/// Validation run by publish_checked before a candidate goes live. The
/// golden input is served through the candidate (and, for comparison, the
/// incumbent) on the publishing thread.
struct CanaryOptions {
  /// [B, input_dim] probe batch; must be non-empty.
  nn::Tensor golden_input;
  /// Reject when any |candidate - incumbent| logit differs by more than
  /// this. Negative: skip the incumbent comparison (still validates the
  /// candidate forward itself). Ignored when no incumbent is live.
  double max_abs_logit_diff = -1.0;
  /// Reject when the candidate's argmax disagrees with the incumbent's on
  /// any golden row (only checked when an incumbent is live).
  bool require_label_match = false;
};

/// Outcome of a supervised publish. On rejection the incumbent keeps
/// serving and `generation` reports its (unchanged) generation.
struct PublishResult {
  bool published = false;
  std::uint64_t generation = 0;
  std::string error;  ///< empty on success; the rejection reason otherwise
};

struct RegisterFromFileOptions {
  /// Serve weights zero-copy out of a read-only mmap of the checkpoint (the
  /// servable keeps the mapping alive across hot-swaps until the last
  /// in-flight forward drops it). false: eager heap copies.
  bool use_mmap = true;
  /// SC variant knobs (kScLut / kScEmulated only); null = defaults. The
  /// pointees are only read during the register_from_file call.
  const vit::ScInferenceConfig* sc_config = nullptr;
  const vit::ScServableOptions* sc_options = nullptr;
  /// Canary-validate the cold-started servable before publishing: on
  /// rejection the incumbent keeps serving and register_from_file throws
  /// CanaryError. Null: publish unchecked (the pre-canary behaviour). The
  /// pointee is only read during the call.
  const CanaryOptions* canary = nullptr;
};

class ModelRegistry {
 public:
  /// Register `servable` under its variant_id(), or atomically replace the
  /// live servable of that id (hot-swap). Returns the variant's generation
  /// after the publish: 1 on first registration, incremented per swap.
  std::uint64_t publish(std::shared_ptr<const Servable> servable);

  /// Supervised hot-swap: run the canary (candidate forward on the golden
  /// input, finite/shape checks, optional divergence check against the live
  /// incumbent) and only then publish(). On any canary exception or
  /// divergence the candidate is discarded — the incumbent keeps serving on
  /// its old generation — and the rollback counter increments. Never throws
  /// for a canary rejection (the reason comes back in PublishResult::error);
  /// still throws std::invalid_argument for a null/unnamed servable.
  PublishResult publish_checked(std::shared_ptr<const Servable> servable,
                                const CanaryOptions& canary);

  /// Run the canary battery for `candidate` against the live incumbent of
  /// its variant_id WITHOUT publishing: candidate forward on the golden
  /// input, finite/shape checks, optional divergence/label checks. Throws
  /// CanaryError (or the forward's own exception) on rejection; returns
  /// normally on acceptance. This is the validation half of publish_checked,
  /// exposed so coordinated multi-shard publishes (serve::ShardSet) can
  /// validate every shard's candidate before committing any of them.
  void validate(const Servable& candidate, const CanaryOptions& canary) const;

  /// Successful publishes (plain and checked) across all variants.
  std::uint64_t publishes() const { return publishes_.load(); }
  /// Rejected supervised publishes: canary failures plus register_from_file
  /// attempts that failed after the registry had a chance to swap (the
  /// incumbent kept serving each time).
  std::uint64_t rollbacks() const { return rollbacks_.load(); }
  /// Record a rejected supervised publish. Internal — used by
  /// register_from_file (which lives in the serialize library) when a
  /// cold-start load or canary fails and the incumbent is kept.
  void count_rollback() { rollbacks_.fetch_add(1); }

  /// Cold-start a variant from a checkpoint file: load the model (zero-copy
  /// mmap by default), shape it per `kind`, and publish() it under
  /// `variant_id` — including atomically hot-swapping a live variant to the
  /// fresh mapping. Throws serialize::CheckpointError on a bad file.
  /// Defined in the serialize library (src/serialize/model_io.cpp), which
  /// layers above this header — link `serialize` (or `core`) to use it.
  std::uint64_t register_from_file(const std::string& variant_id, const std::string& path,
                                   VariantKind kind, const RegisterFromFileOptions& opts = {});

  /// Snapshot of the live servable for `variant`. The returned pointer stays
  /// valid (and the servable alive) across any later publish.
  /// Throws UnknownVariantError on an unregistered id.
  std::shared_ptr<const Servable> get(const std::string& variant) const;

  /// Like get(), but returns nullptr instead of throwing.
  std::shared_ptr<const Servable> try_get(const std::string& variant) const;

  /// Current generation of `variant` (0 if never published).
  std::uint64_t generation(const std::string& variant) const;

  bool contains(const std::string& variant) const;
  std::size_t size() const;
  /// Registered ids in first-publish order (stable across hot-swaps).
  std::vector<std::string> variant_ids() const;

 private:
  struct Entry {
    std::shared_ptr<const Servable> servable;
    std::uint64_t generation = 0;
    std::size_t order = 0;  ///< first-publish rank, for variant_ids()
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> rollbacks_{0};
};

}  // namespace ascend::runtime
