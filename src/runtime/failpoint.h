#pragma once
// failpoint.h — zero-overhead-when-disabled fault injection sites.
//
// A fail point is a named place in the serving stack where a fault can be
// injected on demand: a typed exception, an error return, a delay, or (in
// debug builds) an abort. Sites are ordinary namespace-scope objects that
// register themselves with a process-wide registry during static
// initialization; production code marks them with one macro:
//
//   namespace { failpoint::Site fp_infer{"engine.infer"}; }
//   ...
//   ASCEND_FAILPOINT(fp_infer);          // throws InjectedFaultError when armed
//   ASCEND_FAILPOINT_OR(fp_crc, fail(Kind::kCorrupt, "injected"));  // native error
//
// Disarmed (the default, and whenever ASCEND_FAILPOINTS is unset), the macro
// is a single relaxed atomic load and a predictable branch — nothing else
// touches the hot path. Armed, the slow path runs under a per-site mutex
// with a deterministic seeded RNG, so chaos schedules are reproducible.
//
// Activation:
//   * env:  ASCEND_FAILPOINTS="engine.infer=p0.05,seed7,throw;ckpt.crc=once,err"
//   * code: failpoint::arm("engine.infer", spec) / failpoint::disarm_all()
//
// Spec grammar (comma-separated modifiers, then one action):
//   modifiers  pX      fire with probability X in [0,1]       (default 1)
//              afterN  skip the first N hits                  (default 0)
//              nN      disarm after N fires (once == n1)      (default inf)
//              seedS   RNG seed for the probability draw
//   actions    throw   throw InjectedFaultError               (default)
//              err     report to the site; the site raises its native error
//              delayN  sleep N milliseconds, then continue
//              abort   std::abort() in debug builds; throws in release
//
// Arming an unknown name parks the spec; a site registering later under that
// name adopts it — env specs therefore work regardless of static-init order.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace ascend::runtime::failpoint {

/// Thrown by a fired site whose action is `throw` (and by the framework when
/// an err-action fires at a site with no native error to raise).
struct InjectedFaultError : std::runtime_error {
  explicit InjectedFaultError(const std::string& site)
      : std::runtime_error("injected fault at failpoint '" + site + "'") {}
};

enum class Action {
  kThrow,  ///< throw InjectedFaultError from the site
  kError,  ///< tell the site to fail through its native error path
  kDelay,  ///< sleep delay_ms, then continue normally
  kAbort,  ///< std::abort() in debug builds (throws in release)
};

struct FailSpec {
  Action action = Action::kThrow;
  double probability = 1.0;      ///< chance each eligible hit fires
  std::uint64_t skip = 0;        ///< hits ignored before the site is eligible
  std::uint64_t max_fires = 0;   ///< auto-disarm after this many fires; 0 = never
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< probability-draw RNG seed
  int delay_ms = 0;              ///< kDelay only
};

/// Counters snapshot for one site (see failpoint::sites()).
struct SiteStats {
  std::string name;
  bool armed = false;
  std::uint64_t hits = 0;   ///< armed-path entries since last arm
  std::uint64_t fires = 0;  ///< faults actually injected since last arm
};

class Site {
 public:
  /// `name` must be a string literal (the site keeps the pointer). The site
  /// registers itself and adopts any spec already parked under `name`.
  explicit Site(const char* name);

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  const char* name() const { return name_; }

  /// The whole disabled-path cost: one relaxed load.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Slow path, called only when armed(): counts the hit, applies
  /// skip/probability/max_fires, and performs the action. kThrow throws
  /// InjectedFaultError; kDelay sleeps and returns false; kAbort aborts (or
  /// throws in release). Returns true only for kError — the caller raises
  /// its native error (ASCEND_FAILPOINT raises InjectedFaultError for it).
  bool fire();

  void arm(const FailSpec& spec);
  void disarm();
  SiteStats stats() const;

 private:
  const char* name_;
  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  FailSpec spec_{};
  std::uint64_t hit_count_ = 0;
  std::uint64_t fire_count_ = 0;
  std::uint64_t rng_ = 0;
};

/// Parse one spec string ("p0.05,after2,seed7,throw"). Throws
/// std::invalid_argument on malformed input.
FailSpec parse_spec(const std::string& text);

/// Arm `name` with `spec`. Unknown names park the spec for a site that
/// registers later; returns whether a live site adopted it now.
bool arm(const std::string& name, const FailSpec& spec);
bool arm(const std::string& name, const std::string& spec);

/// Disarm one site / every site and clear parked specs.
void disarm(const std::string& name);
void disarm_all();

/// Registered sites with their counters, name-sorted.
std::vector<SiteStats> sites();

/// Total faults injected process-wide (exported as
/// ascend_failpoint_fires_total).
std::uint64_t total_fires();

}  // namespace ascend::runtime::failpoint

/// Fault-injection site: disabled = one relaxed atomic load. An armed
/// `throw` action escapes from fire(); an armed `err` action is promoted to
/// InjectedFaultError here (plain sites have no native error channel).
#define ASCEND_FAILPOINT(site)                                                 \
  do {                                                                         \
    if ((site).armed() && (site).fire())                                       \
      throw ::ascend::runtime::failpoint::InjectedFaultError((site).name());   \
  } while (0)

/// Like ASCEND_FAILPOINT, but an `err` action runs `stmt` instead — the
/// site's native error path (e.g. raising a typed CheckpointError).
#define ASCEND_FAILPOINT_OR(site, stmt)                                        \
  do {                                                                         \
    if ((site).armed() && (site).fire()) { stmt; }                             \
  } while (0)
