#pragma once
// therm_stream.h — deterministic thermometer-coded SC numbers.
//
// ASCEND's end-to-end datapath uses the deterministic thermometer format of
// [10]/[5]/[15]: an L-bit parallel bundle where all 1s precede all 0s. With
// scaling factor alpha, a bundle with n ones represents
//
//     x = alpha * (n - L/2),   n in [0, L]  =>  x in [-alpha*L/2, +alpha*L/2]
//
// i.e. an L-bit stream distinguishes exactly L+1 values. Because the code is
// fully determined by the *count* of ones, every circuit in this library has
// two provably equivalent realisations:
//
//   * ThermStream — explicit bit bundle (circuit-faithful, used by the bit-
//                   level tests and the circuit benches);
//   * ThermValue  — integer count + scale (fast path used inside network
//                   evaluation). Tests assert the two paths agree exactly.

#include <cstddef>

#include "sc/bitvec.h"

namespace ascend::sc {

/// Count-level twin of ThermStream: (ones count, length, scale).
struct ThermValue {
  int ones = 0;   ///< number of 1 bits, in [0, length]
  int length = 0; ///< bitstream length L (BSL)
  double alpha = 1.0;

  /// Signed level q = n - L/2, in [-L/2, L/2] (half-integer when L is odd).
  double level() const { return ones - length / 2.0; }
  /// Decoded value alpha * (n - L/2).
  double value() const { return alpha * level(); }
  /// Dynamic range half-width alpha * L / 2.
  double range() const { return alpha * length / 2.0; }

  /// Quantize `x` onto an L-bit thermometer grid with scale `alpha`
  /// (round-to-nearest, saturating at the ends of the range).
  static ThermValue encode(double x, int length, double alpha);
};

/// Bit-level thermometer stream.
struct ThermStream {
  BitVec bits;
  double alpha = 1.0;

  int length() const { return static_cast<int>(bits.size()); }
  int ones() const { return static_cast<int>(bits.count()); }
  double value() const { return alpha * (ones() - length() / 2.0); }
  /// All 1s before all 0s? (BSN outputs are canonical; gate-assisted SI
  /// outputs may legitimately be permuted — only the count carries value.)
  bool is_canonical() const { return bits.is_sorted_descending(); }

  ThermValue to_value() const { return ThermValue{ones(), length(), alpha}; }
  /// Canonical bit pattern for a count-level number.
  static ThermStream from_value(const ThermValue& v);
  static ThermStream encode(double x, int length, double alpha);
};

}  // namespace ascend::sc
