#pragma once
// bernstein.h — Bernstein-polynomial SC nonlinear units (ReSC baseline, [18]).
//
// A degree-n Bernstein polynomial with coefficients b_i in [0,1],
//
//     B(u) = sum_i b_i * C(n,i) * u^i * (1-u)^(n-i),   u in [0,1],
//
// is computed stochastically by the ReSC architecture: every clock cycle n
// independent copies of the input stream are summed by a small adder, and
// the result addresses a multiplexer that selects the current bit of the
// coefficient stream b_i. The output probability equals B(u) exactly; the
// error comes from (a) the polynomial fit and (b) stochastic fluctuation at
// finite bitstream lengths — both of which this model reproduces.
//
// "k-term" in the paper's Table III = k coefficients = degree k-1.

#include <functional>
#include <vector>

#include "sc/stoch_stream.h"

namespace ascend::sc {

/// Core Bernstein unit on the unit interval.
class BernsteinUnit {
 public:
  /// Coefficients must lie in [0,1]; degree = coefficients.size() - 1.
  explicit BernsteinUnit(std::vector<double> coefficients);

  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  int terms() const { return static_cast<int>(coeffs_.size()); }
  const std::vector<double>& coefficients() const { return coeffs_; }

  /// Exact polynomial value (infinite-BSL limit).
  double eval_exact(double u) const;

  /// Stochastic evaluation with `bsl` cycles. The ReSC architecture requires
  /// the degree() input-stream copies and the coefficient streams to be
  /// statistically independent, so the unit instantiates one LFSR SNG per
  /// stream internally (seeded from `seed`); sharing a single generator
  /// across copies correlates the adder inputs and biases the result.
  double eval_stochastic(double u, std::size_t bsl, std::uint64_t seed) const;

  /// The unit's SNG bank at a given seed: degree() input-stream LFSRs plus
  /// the coefficient-stream LFSR, in the exact widths/seeding order
  /// eval_stochastic draws from. Shared with the runtime's BernsteinLut so
  /// the tabulated fast path can never drift from the emulator's randomness.
  struct SngBank {
    std::vector<Lfsr> inputs;
    Lfsr coef;
  };
  SngBank make_sng_bank(std::uint64_t seed) const;

  /// Least-squares fit of `f` on [0,1] with coefficients projected into
  /// [0,1] (projected-gradient refinement after the unconstrained solve).
  static BernsteinUnit fit(const std::function<double(double)>& f, int terms,
                           int grid_points = 257);

 private:
  std::vector<double> coeffs_;
  std::vector<double> binom_;  // C(n, i)
};

/// GELU wrapped onto the unit interval with affine input/output maps:
/// x in [in_lo, in_hi] -> u in [0,1]; B(u) in [0,1] -> y in [out_lo, out_hi].
class BernsteinGelu {
 public:
  /// The default input range covers the region the paper evaluates (Fig. 2's
  /// x in [-3, 0.5] plus margin); a tighter range keeps the affine output map
  /// near unity so the unit-interval fit error is not amplified.
  BernsteinGelu(int terms, double in_lo = -4.0, double in_hi = 1.5);

  int terms() const { return unit_.terms(); }
  /// Fit-only transfer (no stochastic noise).
  double eval_exact(double x) const;
  /// Full stochastic evaluation at bitstream length `bsl`.
  double eval_stochastic(double x, std::size_t bsl, std::uint64_t seed) const;

  /// The wrapped unit-interval Bernstein unit and the affine maps around it
  /// (exposed so the runtime's transfer-function LUT cache can tabulate this
  /// block with exactly the arithmetic eval_stochastic uses).
  const BernsteinUnit& unit() const { return unit_; }
  double in_lo() const { return in_lo_; }
  double in_hi() const { return in_hi_; }
  double out_lo() const { return out_lo_; }
  double out_hi() const { return out_hi_; }

 private:
  double in_lo_, in_hi_;
  double out_lo_, out_hi_;
  BernsteinUnit unit_;
};

}  // namespace ascend::sc
