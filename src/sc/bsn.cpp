#include "sc/bsn.h"

#include <vector>

namespace ascend::sc {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

BitVec bsn_sort(const BitVec& bits) {
  const std::size_t n = bits.size();
  if (n <= 1) return bits;
  const std::size_t padded = next_pow2(n);
  // Padding zeros sink to the tail under a descending sort, so the first n
  // positions of the sorted padded vector hold exactly the original bits'
  // thermometer code.
  std::vector<char> a(padded, 0);
  for (std::size_t i = 0; i < n; ++i) a[i] = bits.get(i) ? 1 : 0;

  // Standard iterative bitonic sorter, descending order.
  for (std::size_t k = 2; k <= padded; k <<= 1) {
    for (std::size_t j = k >> 1; j > 0; j >>= 1) {
      for (std::size_t i = 0; i < padded; ++i) {
        const std::size_t l = i ^ j;
        if (l > i) {
          const bool ascending = (i & k) != 0;
          // Descending overall: within an "ascending" block of the classic
          // formulation we place smaller first, i.e. swap when a[i] < a[l].
          const bool swap_needed = ascending ? (a[i] > a[l]) : (a[i] < a[l]);
          if (swap_needed) std::swap(a[i], a[l]);
        }
      }
    }
  }
  BitVec out(n);
  for (std::size_t i = 0; i < n; ++i) out.set(i, a[i] != 0);
  return out;
}

std::size_t bsn_compare_exchange_count(std::size_t n) {
  if (n <= 1) return 0;
  const std::size_t p = next_pow2(n);
  std::size_t s = 0;
  for (std::size_t t = p; t > 1; t >>= 1) ++s;
  return (p / 2) * s * (s + 1) / 2;
}

std::size_t bsn_depth(std::size_t n) {
  if (n <= 1) return 0;
  const std::size_t p = next_pow2(n);
  std::size_t s = 0;
  for (std::size_t t = p; t > 1; t >>= 1) ++s;
  return s * (s + 1) / 2;
}

namespace {

std::size_t log2_pow2(std::size_t p) {
  std::size_t s = 0;
  for (std::size_t t = p; t > 1; t >>= 1) ++s;
  return s;
}

std::size_t merge_stage_sum(std::size_t n, std::size_t leaf) {
  if (n <= 1) return 0;
  const std::size_t t = log2_pow2(next_pow2(n));
  std::size_t l = log2_pow2(next_pow2(leaf == 0 ? 1 : leaf));
  if (l > t) l = t;
  return t * (t + 1) / 2 - l * (l + 1) / 2;
}

}  // namespace

std::size_t bsn_merge_compare_exchange_count(std::size_t n, std::size_t leaf) {
  return (next_pow2(n) / 2) * merge_stage_sum(n, leaf);
}

std::size_t bsn_merge_depth(std::size_t n, std::size_t leaf) { return merge_stage_sum(n, leaf); }

}  // namespace ascend::sc
