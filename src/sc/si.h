#pragma once
// si.h — naive Selective Interconnect (SI) nonlinear function units.
//
// SI ([5], [15]) computes a nonlinear function of a thermometer-coded number
// purely by *wiring*: output wire j is connected to input wire t_j - 1, so
// output bit j = [n >= t_j]. Because each output bit can only turn on as the
// input count grows, naive SI realises exactly the monotone non-decreasing
// count maps — ReLU and sigmoid work, GELU does not (Section III-A of the
// paper). `synthesize_best_monotone` produces the best monotone fit of an
// arbitrary target (pool-adjacent-violators isotonic regression), which is
// the "naive SI" baseline of Fig. 2(c).

#include <functional>
#include <vector>

#include "sc/therm_arith.h"
#include "sc/therm_stream.h"

namespace ascend::sc {

class SelectiveInterconnect {
 public:
  /// `table[n]` is the output ones-count for input ones-count n, n = 0..Lin.
  /// Must be monotone non-decreasing with entries in [0, Lout].
  SelectiveInterconnect(int lin, int lout, double alpha_in, double alpha_out,
                        std::vector<int> table);

  int lin() const { return lin_; }
  int lout() const { return lout_; }
  double alpha_in() const { return alpha_in_; }
  double alpha_out() const { return alpha_out_; }
  const std::vector<int>& table() const { return table_; }

  /// Count-level evaluation.
  ThermValue apply(const ThermValue& x) const;
  /// Bit-level evaluation: pure wiring from a canonical input bundle.
  ThermStream apply(const ThermStream& x) const;
  /// Decoded transfer function at input value `x` (including input encoding).
  double transfer(double x) const;

  /// Quantize `f` onto the SI grid; throws if the quantized map is not
  /// monotone (use synthesize_best_monotone for such targets).
  static SelectiveInterconnect synthesize_monotone(const std::function<double(double)>& f, int lin,
                                                   int lout, double alpha_in, double alpha_out);

  /// Best monotone approximation of an arbitrary `f` (isotonic regression via
  /// pool-adjacent-violators), then quantized onto the SI grid. This is the
  /// "naive SI" GELU baseline of Fig. 2(c).
  static SelectiveInterconnect synthesize_best_monotone(const std::function<double(double)>& f,
                                                        int lin, int lout, double alpha_in,
                                                        double alpha_out);

 private:
  int lin_, lout_;
  double alpha_in_, alpha_out_;
  std::vector<int> table_;       // size lin_+1
  std::vector<int> thresholds_;  // t_j per output wire; Lin+1 means "never on"
};

}  // namespace ascend::sc
