#include "sc/sng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ascend::sc {
namespace {

// Tap masks for maximal-length Fibonacci LFSRs, width 3..24.
// Bit i of the mask taps register bit i (LSB = newest bit).
constexpr std::uint32_t kTaps[] = {
    0,          0,          0,
    0x6,        0xC,        0x14,       0x30,       0x60,
    0xB8,       0x110,      0x240,      0x500,      0xE08,
    0x1C80,     0x3802,     0x6000,     0xD008,     0x12000,
    0x20400,    0x72000,    0x90000,    0x140000,   0x300000,
    0x420000,   0xE10000,
};

}  // namespace

Lfsr::Lfsr(int width, std::uint32_t seed) : width_(width) {
  if (width < 3 || width > 24) throw std::invalid_argument("Lfsr: width must be in [3,24]");
  taps_ = kTaps[width];
  state_ = seed & (range() - 1);
  if (state_ == 0) state_ = 1;
  // Warm-up: a small seed takes ~width shifts to fill the register, during
  // which the output values are strongly biased low. Discard that transient
  // so short streams are usable from the first bit.
  for (int i = 0; i < 4 * width_; ++i) next();
}

std::uint32_t Lfsr::next() {
  // Fibonacci form: XOR of tapped bits becomes the new LSB.
  std::uint32_t feedback = 0;
  std::uint32_t tapped = state_ & taps_;
  while (tapped) {
    feedback ^= tapped & 1u;
    tapped >>= 1;
  }
  state_ = ((state_ << 1) | feedback) & (range() - 1);
  if (state_ == 0) state_ = 1;  // unreachable for maximal taps, defensive
  // Read the register bit-reversed (free in hardware: wire permutation).
  // Consecutive raw states are related by a shift, so short windows of the
  // raw value cluster below/above a comparator threshold; the reversal
  // breaks that correlation and makes short-BSL streams usable.
  std::uint32_t v = state_;
  std::uint32_t r = 0;
  for (int i = 0; i < width_; ++i) {
    r = (r << 1) | (v & 1u);
    v >>= 1;
  }
  return r;
}

VanDerCorput::VanDerCorput(int width, std::uint32_t start) : width_(width), counter_(start) {
  if (width < 1 || width > 31) throw std::invalid_argument("VanDerCorput: width in [1,31]");
}

std::uint32_t VanDerCorput::next() {
  std::uint32_t x = counter_++;
  std::uint32_t r = 0;
  for (int i = 0; i < width_; ++i) {
    r = (r << 1) | (x & 1u);
    x >>= 1;
  }
  return r;
}

BitVec generate_stream(double p, std::size_t length, RandomSource& src) {
  p = std::clamp(p, 0.0, 1.0);
  const double threshold = p * static_cast<double>(src.range());
  BitVec out(length);
  for (std::size_t i = 0; i < length; ++i) out.set(i, static_cast<double>(src.next()) < threshold);
  return out;
}

BitVec generate_even_stream(double p, std::size_t length) {
  p = std::clamp(p, 0.0, 1.0);
  const auto ones = static_cast<std::size_t>(std::lround(p * static_cast<double>(length)));
  BitVec out(length);
  // Evenly space `ones` 1s: emit a 1 whenever the running error accumulator
  // crosses the next integer (Bresenham-style).
  std::size_t acc = 0;
  for (std::size_t i = 0; i < length; ++i) {
    acc += ones;
    if (acc >= length) {
      acc -= length;
      out.set(i, true);
    }
  }
  return out;
}

}  // namespace ascend::sc
