#pragma once
// gate_si.h — Gate-Assisted Selective Interconnect (ASCEND Section IV-A).
//
// Naive SI can only realise monotone count maps because each output wire is
// connected straight to one input wire. ASCEND adds a few combinational
// gates behind the selected wires so that each output bit becomes a small
// logic function of threshold signals s_p = [n >= p], which makes *arbitrary*
// count maps m(n) realisable — in particular the non-monotone GELU.
//
// Synthesis used here: output wire w carries the indicator I_w(n) = [m(n) > w].
// Over n = 0..Lin, I_w is a union of maximal intervals [a, b]; each interval
// costs one AND + one NOT (I = OR of s_a & !s_{b+1}), so the assist-gate cost
// is proportional to the total number of intervals. The output bundle count
// is sum_w I_w(n) = m(n) for every n, as required; the bundle need not be in
// canonical order (a following BSN re-sorts it, exactly as in the paper's
// datapath).
//
// The ternary GELU of Fig. 4 (8-bit input, 2-bit output, assist logic
// y[1] = !(s[2] & !s[1]), y[0] = s[0]) is provided as a named constructor and
// verified bit-for-bit against the paper's truth table in the tests.

#include <functional>
#include <vector>

#include "sc/therm_arith.h"
#include "sc/therm_stream.h"

namespace ascend::sc {

class GateAssistedSI {
 public:
  /// `table[n]` is the output ones-count for input ones-count n — arbitrary
  /// values in [0, Lout], no monotonicity requirement.
  GateAssistedSI(int lin, int lout, double alpha_in, double alpha_out, std::vector<int> table);

  int lin() const { return lin_; }
  int lout() const { return lout_; }
  double alpha_in() const { return alpha_in_; }
  double alpha_out() const { return alpha_out_; }
  const std::vector<int>& table() const { return table_; }

  /// Total number of "on" intervals across all output wires; the hardware
  /// cost model charges the assist gates proportionally to this.
  int total_intervals() const;

  /// Count-level evaluation.
  ThermValue apply(const ThermValue& x) const;
  /// Bit-level evaluation through the interval logic on threshold signals.
  /// The output bundle is NOT sorted; only its count is meaningful.
  ThermStream apply(const ThermStream& x) const;
  /// Decoded transfer function at input value `x` (including input encoding).
  double transfer(double x) const;

  /// Quantize an arbitrary `f` onto the grid (this is how the GELU blocks of
  /// Table III are produced).
  static GateAssistedSI synthesize(const std::function<double(double)>& f, int lin, int lout,
                                   double alpha_in, double alpha_out);

  /// The exact ternary GELU block of Fig. 4: Lin = 8, Lout = 2.
  static GateAssistedSI ternary_gelu(double alpha_in = 1.0, double alpha_out = 1.0);

 private:
  struct Interval {
    int begin;  // first n with I_w = 1
    int end;    // last n with I_w = 1 (inclusive)
  };

  int lin_, lout_;
  double alpha_in_, alpha_out_;
  std::vector<int> table_;                       // size lin_+1
  std::vector<std::vector<Interval>> wire_ivs_;  // per output wire
};

/// Reference GELU (exact erf form), used as the synthesis target everywhere.
double gelu_exact(double x);

/// Build the standard ASCEND GELU block for a given data BSL `b`:
/// 16-bit (residual-precision) input covering `input_range`, b-bit output with
/// the output scale chosen to minimise MAE of the quantized GELU over the
/// input grid.
GateAssistedSI make_gelu_block(int b, double input_lo = -3.0, double input_hi = 0.5,
                               int input_bsl = 16);

}  // namespace ascend::sc
