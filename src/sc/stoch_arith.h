#pragma once
// stoch_arith.h — arithmetic on classic stochastic bitstreams.
//
// The standard SC arithmetic gates (see e.g. SC-DCNN [7]):
//   * unipolar multiply : AND gate,   p_out = p_a * p_b  (independent streams)
//   * bipolar  multiply : XNOR gate,  x_out = x_a * x_b
//   * scaled add        : MUX gate,   x_out = (x_a + x_b) / 2 with a p=0.5
//                         select stream
//   * accumulation      : accumulative parallel counter (APC) — pops the 1s
//                         of many parallel streams into a binary sum
//
// All operations assume the operand streams are statistically independent;
// correlated operands produce the well-known SC correlation error, which the
// baseline circuit models in this repo intentionally exhibit.

#include <vector>

#include "sc/stoch_stream.h"

namespace ascend::sc {

/// AND-gate multiplier for unipolar streams. scales multiply.
StochStream mult_unipolar(const StochStream& a, const StochStream& b);

/// XNOR-gate multiplier for bipolar streams. scales multiply.
StochStream mult_bipolar(const StochStream& a, const StochStream& b);

/// MUX-gate scaled adder: out = (a + b) / 2, using `select` as the p=0.5
/// select stream. Operands must share format and scale.
StochStream add_mux(const StochStream& a, const StochStream& b, const BitVec& select);

/// MUX-gate scaled adder over n inputs: out = mean(inputs), with the select
/// index stream drawn from `src`. Operands must share format and scale.
StochStream add_mux_n(const std::vector<StochStream>& inputs, RandomSource& src);

/// Accumulative parallel counter: per-cycle popcount accumulated over time.
/// Returns the total number of 1s across all streams (binary result).
long long apc_accumulate(const std::vector<StochStream>& inputs);

}  // namespace ascend::sc
