#pragma once
// bitvec.h — dense, word-packed bit vector used by every stochastic-computing
// (SC) stream in ASCEND.
//
// A BitVec models a physical parallel bit bundle (one wire per bit) or, for
// serial SC designs, the time-unrolled history of a single wire. Bit i of the
// vector is bit i of the bundle; there is no implied numeric weight — in SC
// every bit carries equal weight (the value is carried by the *count* of 1s).

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace ascend::sc {

/// Dense bit vector with word-packed storage and O(L/64) bulk operations.
class BitVec {
 public:
  BitVec() = default;
  /// Construct with `n` bits, all initialised to `fill`.
  explicit BitVec(std::size_t n, bool fill = false);
  /// Construct from a string of '0'/'1' characters, index 0 first.
  static BitVec from_string(const std::string& s);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool v);

  /// Number of 1 bits (population count).
  std::size_t count() const;

  /// Append a single bit at the end.
  void push_back(bool v);
  /// Append all bits of `other` after the current bits.
  void append(const BitVec& other);

  /// Bits [begin, begin+len) as a new vector.
  BitVec slice(std::size_t begin, std::size_t len) const;
  /// Every `stride`-th bit starting at `first` (models sub-sampling taps).
  BitVec subsample(std::size_t first, std::size_t stride) const;
  /// Bit order reversed.
  BitVec reversed() const;

  /// Element-wise logic (sizes must match).
  BitVec operator&(const BitVec& o) const;
  BitVec operator|(const BitVec& o) const;
  BitVec operator^(const BitVec& o) const;
  BitVec operator~() const;

  bool operator==(const BitVec& o) const;

  /// '0'/'1' string, index 0 first.
  std::string to_string() const;

  /// True when every 1 bit precedes every 0 bit (canonical thermometer order).
  bool is_sorted_descending() const;

  /// Raw word-packed storage (bit i lives at word i/64, bit i%64; tail bits
  /// beyond size() are kept zero). Exposed for word-parallel kernels that
  /// AND/popcount packed planes without per-bit get() calls.
  const std::uint64_t* words() const { return words_.data(); }
  std::size_t word_count() const { return words_.size(); }

 private:
  void check_same_size(const BitVec& o) const;
  void mask_tail();
  static std::size_t words_for(std::size_t bits) { return (bits + 63) / 64; }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace ascend::sc
