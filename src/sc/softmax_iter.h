#pragma once
// softmax_iter.h — ASCEND's iterative approximate softmax (Section IV-B).
//
// Division and exponentiation are hostile to SC, so ASCEND adopts the
// iterative approximation of [22]: with y(t) = softmax(t x), y(0) = 1/m and
// y'(t) expressible from y(t), the softmax y(1) is reached by k explicit
// Euler steps (Algorithm 1):
//
//     y0_i = 1/m
//     for j = 1..k:
//        z_i  = x_i * y_i
//        y_i += (z_i - y_i * sum(z)) / k
//
// Only multiplications, accumulations and divisions by the *constant* k
// remain — all cheap in the deterministic thermometer format (dividing by k
// just divides the scaling factor).
//
// The SC circuit (Fig. 5) instantiates per-element compute units around two
// global structures: BSN-1 sums the z bundle (its output sub-sampled by s1)
// and BSN-2 performs the per-unit final accumulation after re-scaling blocks
// align the operand scales; a closing re-scale returns y to (By, alpha_y)
// for the next iteration. Table II's parameter set
// [m, k, Bx, alpha_x, By, alpha_y, s1, s2] is exposed in SoftmaxIterConfig
// (plus the alignment-grid expansion factor used by the re-scaling blocks).

#include <cstdint>
#include <vector>

#include "sc/therm_arith.h"

namespace ascend::sc {

struct SoftmaxIterConfig {
  int m = 64;   ///< row-vector length
  int k = 3;    ///< iteration count
  int bx = 4;   ///< BSL of x
  int by = 8;   ///< BSL of y
  int s1 = 32;  ///< sub-sample rate of sum(z)
  int s2 = 8;   ///< sub-sample rate of y * sum(z)
  double alpha_x = 2.0;        ///< scaling factor of x (range +-bx*alpha_x/2)
  double alpha_y = 1.0 / 64;   ///< scaling factor of y
  int align_expand = 4;        ///< re-scaling alignment grid: alpha_c = alpha_y / align_expand
  int rescale_max_den = 64;    ///< rational-approximation bound in re-scaling blocks
  /// Tap placement of the s1/s2 sub-samplers: centered taps (default) round
  /// to nearest; end-of-group taps floor. Same wiring cost — the ablation
  /// bench quantifies the accuracy difference.
  bool centered_subsample = true;

  /// Throws std::invalid_argument when sub-sample rates do not divide the
  /// corresponding bundle lengths or any parameter is out of range.
  void validate() const;
};

/// Static wiring plan of the Fig. 5 circuit for a configuration: every
/// internal bundle length, shared between the functional simulation and the
/// hardware cost model so the two can never drift apart.
struct SoftmaxIterLayout {
  int lz = 0;        ///< z_i = x_i * y_i bundle (Bx*By/2)
  int lsum = 0;      ///< BSN-1 input (m * lz)
  int lsum_sub = 0;  ///< BSN-1 output after s1 sub-sampling
  int lw = 0;        ///< MUL-2 output (By * lsum_sub / 2)
  int lw_sub = 0;    ///< MUL-2 output after s2 sub-sampling
  int la = 0;        ///< y operand re-gridded on the alignment grid
  int lb = 0;        ///< z/k operand re-gridded
  int lc = 0;        ///< -y*sum(z)/k operand re-gridded
  int lconcat = 0;   ///< BSN-2 input (la + lb + lc)
};
SoftmaxIterLayout softmax_iter_layout(const SoftmaxIterConfig& cfg);

/// Target length for re-gridding a (length, alpha) bundle onto scale
/// `alpha_c`, capped at `cap` bits (the designer's range-vs-hardware trade of
/// the re-scaling blocks). Shared with the runtime's LUT cache so the cached
/// fast path can never disagree with the circuit emulation about bundle sizes.
int softmax_alignment_length(double alpha, int length, double alpha_c, int cap);

/// Exact softmax (reference for MAE).
std::vector<double> softmax_exact(const std::vector<double>& x);

/// Floating-point Algorithm 1 (isolates the k-truncation error from the SC
/// quantization errors).
std::vector<double> softmax_iterative_ref(const std::vector<double>& x, int k);

/// Count-level SC emulation of the Fig. 5 circuit (bit-exact with the
/// bit-level path below; fast enough for network-level evaluation).
std::vector<double> softmax_iterative_sc(const std::vector<double>& x,
                                         const SoftmaxIterConfig& cfg);

/// Bit-level SC emulation through ThermStream / BSN / re-scaling primitives.
/// Slower; used by the equivalence tests and small-circuit studies.
std::vector<double> softmax_iterative_sc_bits(const std::vector<double>& x,
                                              const SoftmaxIterConfig& cfg);

/// Attention-logit test-vector generator following the paper's protocol
/// (vectors sampled from the overall distribution of ViT softmax inputs):
/// rows are Gaussian with per-row temperature drawn in [0.5, 2.5], giving a
/// mixture of flat and peaky rows.
std::vector<std::vector<double>> sample_attention_logits(int m, int rows, std::uint64_t seed);

/// Mean absolute error of the SC circuit against exact softmax over `rows`
/// sampled test vectors.
double softmax_sc_mae(const SoftmaxIterConfig& cfg, int rows, std::uint64_t seed);

}  // namespace ascend::sc
