#include "sc/bitvec.h"

#include <bit>
#include <stdexcept>

namespace ascend::sc {

BitVec::BitVec(std::size_t n, bool fill)
    : words_(words_for(n), fill ? ~std::uint64_t{0} : 0), size_(n) {
  mask_tail();
}

BitVec BitVec::from_string(const std::string& s) {
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '0' && s[i] != '1') throw std::invalid_argument("BitVec::from_string: bad char");
    v.set(i, s[i] == '1');
  }
  return v;
}

bool BitVec::get(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitVec::get");
  return (words_[i >> 6] >> (i & 63)) & 1u;
}

void BitVec::set(std::size_t i, bool v) {
  if (i >= size_) throw std::out_of_range("BitVec::set");
  const std::uint64_t mask = std::uint64_t{1} << (i & 63);
  if (v)
    words_[i >> 6] |= mask;
  else
    words_[i >> 6] &= ~mask;
}

std::size_t BitVec::count() const {
  std::size_t c = 0;
  for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

void BitVec::push_back(bool v) {
  if (words_for(size_ + 1) > words_.size()) words_.push_back(0);
  ++size_;
  set(size_ - 1, v);
}

void BitVec::append(const BitVec& other) {
  for (std::size_t i = 0; i < other.size(); ++i) push_back(other.get(i));
}

BitVec BitVec::slice(std::size_t begin, std::size_t len) const {
  if (begin + len > size_) throw std::out_of_range("BitVec::slice");
  BitVec out(len);
  for (std::size_t i = 0; i < len; ++i) out.set(i, get(begin + i));
  return out;
}

BitVec BitVec::subsample(std::size_t first, std::size_t stride) const {
  if (stride == 0) throw std::invalid_argument("BitVec::subsample: stride 0");
  BitVec out;
  for (std::size_t i = first; i < size_; i += stride) out.push_back(get(i));
  return out;
}

BitVec BitVec::reversed() const {
  BitVec out(size_);
  for (std::size_t i = 0; i < size_; ++i) out.set(i, get(size_ - 1 - i));
  return out;
}

BitVec BitVec::operator&(const BitVec& o) const {
  check_same_size(o);
  BitVec out = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] &= o.words_[w];
  return out;
}

BitVec BitVec::operator|(const BitVec& o) const {
  check_same_size(o);
  BitVec out = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] |= o.words_[w];
  return out;
}

BitVec BitVec::operator^(const BitVec& o) const {
  check_same_size(o);
  BitVec out = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] ^= o.words_[w];
  return out;
}

BitVec BitVec::operator~() const {
  BitVec out = *this;
  for (auto& w : out.words_) w = ~w;
  out.mask_tail();
  return out;
}

bool BitVec::operator==(const BitVec& o) const {
  return size_ == o.size_ && words_ == o.words_;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

bool BitVec::is_sorted_descending() const {
  bool seen_zero = false;
  for (std::size_t i = 0; i < size_; ++i) {
    const bool b = get(i);
    if (!b) seen_zero = true;
    else if (seen_zero) return false;
  }
  return true;
}

void BitVec::check_same_size(const BitVec& o) const {
  if (size_ != o.size_) throw std::invalid_argument("BitVec: size mismatch");
}

void BitVec::mask_tail() {
  const std::size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty()) words_.back() &= (~std::uint64_t{0}) >> (64 - rem);
}

}  // namespace ascend::sc
