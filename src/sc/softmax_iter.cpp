#include "sc/softmax_iter.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace ascend::sc {
namespace {

int len_of(const ThermValue& v) { return v.length; }
int len_of(const ThermStream& s) { return s.length(); }
double alpha_of(const ThermValue& v) { return v.alpha; }
double alpha_of(const ThermStream& s) { return s.alpha; }
double value_of(const ThermValue& v) { return v.value(); }
double value_of(const ThermStream& s) { return s.value(); }

ThermValue encode_as(const ThermValue*, double x, int l, double a) {
  return ThermValue::encode(x, l, a);
}
ThermStream encode_as(const ThermStream*, double x, int l, double a) {
  return ThermStream::encode(x, l, a);
}

/// The Fig. 5 datapath, generic over the count-level / bit-level number type.
template <typename T>
std::vector<double> run_softmax(const std::vector<double>& x, const SoftmaxIterConfig& cfg) {
  cfg.validate();
  if (static_cast<int>(x.size()) != cfg.m)
    throw std::invalid_argument("softmax_iterative_sc: input size != m");
  const T* tag = nullptr;
  const double alpha_c = cfg.alpha_y / cfg.align_expand;
  const int cap = cfg.by * cfg.align_expand;  // alignment bundles cover the y range

  std::vector<T> xs, ys;
  xs.reserve(x.size());
  ys.reserve(x.size());
  for (int i = 0; i < cfg.m; ++i) {
    xs.push_back(encode_as(tag, x[static_cast<std::size_t>(i)], cfg.bx, cfg.alpha_x));
    ys.push_back(encode_as(tag, 1.0 / cfg.m, cfg.by, cfg.alpha_y));
  }

  for (int j = 0; j < cfg.k; ++j) {
    // MUL-1: z_i = x_i * y_i.
    std::vector<T> zs;
    zs.reserve(ys.size());
    for (int i = 0; i < cfg.m; ++i)
      zs.push_back(mult(xs[static_cast<std::size_t>(i)], ys[static_cast<std::size_t>(i)]));
    // BSN-1: sum(z), output sub-sampled by s1 (centered taps: round-nearest).
    T ssum = subsample(add(zs), cfg.s1, cfg.centered_subsample);

    std::vector<T> next;
    next.reserve(ys.size());
    for (int i = 0; i < cfg.m; ++i) {
      const T& yi = ys[static_cast<std::size_t>(i)];
      // MUL-2: y_i * sum(z), output sub-sampled by s2, then negated.
      T w = negate(subsample(mult(yi, ssum), cfg.s2, cfg.centered_subsample));
      // Division by the constant k is free: only scales change.
      T zk = divide_by_const(zs[static_cast<std::size_t>(i)], cfg.k);
      T wk = divide_by_const(w, cfg.k);
      // Re-scaling blocks align the three addends on the grid alpha_c.
      T a = rescale(yi, softmax_alignment_length(alpha_of(yi), len_of(yi), alpha_c, cap), alpha_c,
                    cfg.rescale_max_den);
      T b = rescale(zk, softmax_alignment_length(alpha_of(zk), len_of(zk), alpha_c, cap), alpha_c,
                    cfg.rescale_max_den);
      T c = rescale(wk, softmax_alignment_length(alpha_of(wk), len_of(wk), alpha_c, cap), alpha_c,
                    cfg.rescale_max_den);
      // BSN-2 accumulates, and the closing re-scale returns y to (By, alpha_y).
      next.push_back(rescale(add({a, b, c}), cfg.by, cfg.alpha_y, cfg.rescale_max_den));
    }
    ys = std::move(next);
  }

  std::vector<double> out(x.size());
  for (int i = 0; i < cfg.m; ++i) out[static_cast<std::size_t>(i)] = value_of(ys[static_cast<std::size_t>(i)]);
  return out;
}

}  // namespace

// `cap` bounds the bundle at the final y range (the closing re-scale would
// clip anything beyond it anyway), which keeps the per-unit BSN-2 small — the
// designer's range-vs-hardware trade the re-scaling blocks of [15] exist for.
int softmax_alignment_length(double alpha, int length, double alpha_c, int cap) {
  const double need = alpha * length / alpha_c;
  int l = static_cast<int>(std::ceil(need - 1e-9));
  if (l % 2 != 0) ++l;
  return std::clamp(l, 2, cap);
}

SoftmaxIterLayout softmax_iter_layout(const SoftmaxIterConfig& cfg) {
  cfg.validate();
  SoftmaxIterLayout lay;
  const double alpha_c = cfg.alpha_y / cfg.align_expand;
  lay.lz = cfg.bx * cfg.by / 2;
  lay.lsum = cfg.m * lay.lz;
  lay.lsum_sub = lay.lsum / cfg.s1;
  lay.lw = cfg.by * lay.lsum_sub / 2;
  lay.lw_sub = lay.lw / cfg.s2;
  const double alpha_z = cfg.alpha_x * cfg.alpha_y;
  const double alpha_w = alpha_z * cfg.alpha_y * cfg.s1 * cfg.s2;
  const int cap = cfg.by * cfg.align_expand;
  lay.la = softmax_alignment_length(cfg.alpha_y, cfg.by, alpha_c, cap);
  lay.lb = softmax_alignment_length(alpha_z / cfg.k, lay.lz, alpha_c, cap);
  lay.lc = softmax_alignment_length(alpha_w / cfg.k, lay.lw_sub, alpha_c, cap);
  lay.lconcat = lay.la + lay.lb + lay.lc;
  return lay;
}

void SoftmaxIterConfig::validate() const {
  if (m < 2) throw std::invalid_argument("SoftmaxIterConfig: m >= 2 required");
  if (k < 1) throw std::invalid_argument("SoftmaxIterConfig: k >= 1 required");
  if (bx < 2 || bx % 2 != 0) throw std::invalid_argument("SoftmaxIterConfig: Bx must be even >= 2");
  if (by < 2 || by % 2 != 0) throw std::invalid_argument("SoftmaxIterConfig: By must be even >= 2");
  if (alpha_x <= 0 || alpha_y <= 0) throw std::invalid_argument("SoftmaxIterConfig: alphas > 0");
  if (align_expand < 1) throw std::invalid_argument("SoftmaxIterConfig: align_expand >= 1");
  const long long lz = static_cast<long long>(bx) * by / 2;
  const long long lsum = static_cast<long long>(m) * lz;
  if (s1 < 1 || lsum % s1 != 0)
    throw std::invalid_argument("SoftmaxIterConfig: s1 must divide m*Bx*By/2");
  const long long lw = static_cast<long long>(by) * (lsum / s1) / 2;
  if (s2 < 1 || lw % s2 != 0)
    throw std::invalid_argument("SoftmaxIterConfig: s2 must divide By*len(sum(z))/2");
}

std::vector<double> softmax_exact(const std::vector<double>& x) {
  if (x.empty()) return {};
  const double mx = *std::max_element(x.begin(), x.end());
  std::vector<double> y(x.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = std::exp(x[i] - mx);
    sum += y[i];
  }
  for (auto& v : y) v /= sum;
  return y;
}

std::vector<double> softmax_iterative_ref(const std::vector<double>& x, int k) {
  if (k < 1) throw std::invalid_argument("softmax_iterative_ref: k >= 1");
  const std::size_t m = x.size();
  std::vector<double> y(m, 1.0 / static_cast<double>(m));
  std::vector<double> z(m);
  for (int j = 0; j < k; ++j) {
    double sum_z = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      z[i] = x[i] * y[i];
      sum_z += z[i];
    }
    for (std::size_t i = 0; i < m; ++i) y[i] += (z[i] - y[i] * sum_z) / k;
  }
  return y;
}

std::vector<double> softmax_iterative_sc(const std::vector<double>& x,
                                         const SoftmaxIterConfig& cfg) {
  return run_softmax<ThermValue>(x, cfg);
}

std::vector<double> softmax_iterative_sc_bits(const std::vector<double>& x,
                                              const SoftmaxIterConfig& cfg) {
  return run_softmax<ThermStream>(x, cfg);
}

std::vector<std::vector<double>> sample_attention_logits(int m, int rows, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::uniform_real_distribution<double> temp(0.5, 2.5);
  std::vector<std::vector<double>> out;
  out.reserve(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    const double tau = temp(rng);
    std::vector<double> row(static_cast<std::size_t>(m));
    for (auto& v : row) v = gauss(rng) * tau;
    out.push_back(std::move(row));
  }
  return out;
}

double softmax_sc_mae(const SoftmaxIterConfig& cfg, int rows, std::uint64_t seed) {
  const auto logits = sample_attention_logits(cfg.m, rows, seed);
  double total = 0.0;
  for (const auto& row : logits) {
    const auto ref = softmax_exact(row);
    const auto got = softmax_iterative_sc(row, cfg);
    for (std::size_t i = 0; i < row.size(); ++i) total += std::fabs(got[i] - ref[i]);
  }
  return total / (static_cast<double>(rows) * cfg.m);
}

}  // namespace ascend::sc
