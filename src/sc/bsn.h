#pragma once
// bsn.h — Bitonic Sorting Network over bit bundles.
//
// In the deterministic thermometer format, addition of same-scale numbers is
// realised by concatenating the operand bundles and sorting the bits so that
// all 1s come first ([5]). Sorting a bundle of single bits only needs
// compare-exchange (CE) elements built from one OR and one AND gate:
//
//     (a, b)  ->  (a | b, a & b)      // descending order: 1s float up
//
// This module provides the bit-level network (used to validate functional
// equivalence with count-level addition) and the CE-count/depth formulas the
// hardware cost model consumes.

#include <cstddef>

#include "sc/bitvec.h"

namespace ascend::sc {

/// Sort `bits` into canonical thermometer order (all 1s first) using a
/// bitonic network. Non-power-of-two sizes are zero-padded internally; the
/// returned vector has the original length.
BitVec bsn_sort(const BitVec& bits);

/// Number of compare-exchange elements of a bitonic network over n inputs
/// (n rounded up to the next power of two): (n/2) * s * (s+1) / 2, s = log2 n.
std::size_t bsn_compare_exchange_count(std::size_t n);

/// Logic depth (number of CE stages on the critical path): s * (s+1) / 2.
std::size_t bsn_depth(std::size_t n);

/// Adding *already sorted* bundles does not need a full sorter: a tree of
/// bitonic mergers suffices. For total width n built from sorted leaves of
/// width `leaf` (both rounded to powers of two), the merge tree costs
///   CE = (n/2) * (T(T+1)/2 - L(L+1)/2),  T = log2 n, L = log2 leaf,
/// and the critical path crosses the same stage count — a significant saving
/// versus the full sorter that the BSN adders in the softmax block exploit.
std::size_t bsn_merge_compare_exchange_count(std::size_t n, std::size_t leaf);
std::size_t bsn_merge_depth(std::size_t n, std::size_t leaf);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

}  // namespace ascend::sc
