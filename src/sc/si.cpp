#include "sc/si.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ascend::sc {
namespace {

int quantize_out(double y, int lout, double alpha_out) {
  const int n = static_cast<int>(std::lround(y / alpha_out + lout / 2.0));
  return std::clamp(n, 0, lout);
}

double grid_value(int n, int l, double alpha) { return alpha * (n - l / 2.0); }

}  // namespace

SelectiveInterconnect::SelectiveInterconnect(int lin, int lout, double alpha_in, double alpha_out,
                                             std::vector<int> table)
    : lin_(lin), lout_(lout), alpha_in_(alpha_in), alpha_out_(alpha_out), table_(std::move(table)) {
  if (lin_ <= 0 || lout_ <= 0) throw std::invalid_argument("SI: BSLs must be positive");
  if (static_cast<int>(table_.size()) != lin_ + 1)
    throw std::invalid_argument("SI: table must have Lin+1 entries");
  int prev = 0;
  for (int n = 0; n <= lin_; ++n) {
    if (table_[n] < 0 || table_[n] > lout_) throw std::invalid_argument("SI: table entry range");
    if (table_[n] < prev) throw std::invalid_argument("SI: table must be monotone non-decreasing");
    prev = table_[n];
  }
  // t_j = smallest input count with output count > j.
  thresholds_.assign(lout_, lin_ + 1);
  for (int j = 0; j < lout_; ++j)
    for (int n = 0; n <= lin_; ++n)
      if (table_[n] > j) {
        thresholds_[j] = n;
        break;
      }
}

ThermValue SelectiveInterconnect::apply(const ThermValue& x) const {
  if (x.length != lin_) throw std::invalid_argument("SI::apply: BSL mismatch");
  return ThermValue{table_[x.ones], lout_, alpha_out_};
}

ThermStream SelectiveInterconnect::apply(const ThermStream& x) const {
  if (x.length() != lin_) throw std::invalid_argument("SI::apply: BSL mismatch");
  if (!x.is_canonical()) throw std::invalid_argument("SI::apply: input must be canonical");
  ThermStream out;
  out.alpha = alpha_out_;
  out.bits = BitVec(static_cast<std::size_t>(lout_));
  for (int j = 0; j < lout_; ++j) {
    const int t = thresholds_[j];
    bool bit = false;
    if (t == 0)
      bit = true;  // constant-1 wire
    else if (t <= lin_)
      bit = x.bits.get(static_cast<std::size_t>(t - 1));  // [n >= t]
    out.bits.set(static_cast<std::size_t>(j), bit);
  }
  return out;
}

double SelectiveInterconnect::transfer(double x) const {
  const ThermValue in = ThermValue::encode(x, lin_, alpha_in_);
  return apply(in).value();
}

SelectiveInterconnect SelectiveInterconnect::synthesize_monotone(
    const std::function<double(double)>& f, int lin, int lout, double alpha_in, double alpha_out) {
  std::vector<int> table(static_cast<std::size_t>(lin) + 1);
  int prev = 0;
  for (int n = 0; n <= lin; ++n) {
    const int m = quantize_out(f(grid_value(n, lin, alpha_in)), lout, alpha_out);
    if (m < prev)
      throw std::invalid_argument("synthesize_monotone: target is not monotone on this grid");
    table[static_cast<std::size_t>(n)] = m;
    prev = m;
  }
  return SelectiveInterconnect(lin, lout, alpha_in, alpha_out, std::move(table));
}

SelectiveInterconnect SelectiveInterconnect::synthesize_best_monotone(
    const std::function<double(double)>& f, int lin, int lout, double alpha_in, double alpha_out) {
  // Pool-adjacent-violators over the quantization grid values.
  const int npts = lin + 1;
  std::vector<double> y(static_cast<std::size_t>(npts));
  for (int n = 0; n < npts; ++n) y[static_cast<std::size_t>(n)] = f(grid_value(n, lin, alpha_in));

  struct Block {
    double sum;
    int count;
  };
  std::vector<Block> blocks;
  blocks.reserve(static_cast<std::size_t>(npts));
  for (int n = 0; n < npts; ++n) {
    blocks.push_back({y[static_cast<std::size_t>(n)], 1});
    while (blocks.size() >= 2) {
      auto& b = blocks[blocks.size() - 1];
      auto& a = blocks[blocks.size() - 2];
      if (a.sum / a.count <= b.sum / b.count) break;
      a.sum += b.sum;
      a.count += b.count;
      blocks.pop_back();
    }
  }
  std::vector<int> table;
  table.reserve(static_cast<std::size_t>(npts));
  int prev = 0;
  for (const auto& b : blocks) {
    const int m = std::max(prev, quantize_out(b.sum / b.count, lout, alpha_out));
    for (int i = 0; i < b.count; ++i) table.push_back(m);
    prev = m;
  }
  return SelectiveInterconnect(lin, lout, alpha_in, alpha_out, std::move(table));
}

}  // namespace ascend::sc
