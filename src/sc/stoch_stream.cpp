#include "sc/stoch_stream.h"

#include <algorithm>
#include <stdexcept>

namespace ascend::sc {
namespace {

double to_probability(double x, StochFormat format, double scale) {
  if (scale <= 0) throw std::invalid_argument("StochStream: scale must be positive");
  const double u = x / scale;
  double p = (format == StochFormat::kUnipolar) ? u : (u + 1.0) / 2.0;
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace

double StochStream::probability() const {
  if (bits.empty()) return 0.0;
  return static_cast<double>(bits.count()) / static_cast<double>(bits.size());
}

double StochStream::value() const {
  const double p = probability();
  return (format == StochFormat::kUnipolar) ? scale * p : scale * (2.0 * p - 1.0);
}

StochStream StochStream::encode(double x, std::size_t length, StochFormat format, double scale,
                                RandomSource& src) {
  StochStream s;
  s.format = format;
  s.scale = scale;
  s.bits = generate_stream(to_probability(x, format, scale), length, src);
  return s;
}

StochStream StochStream::encode_even(double x, std::size_t length, StochFormat format,
                                     double scale) {
  StochStream s;
  s.format = format;
  s.scale = scale;
  s.bits = generate_even_stream(to_probability(x, format, scale), length);
  return s;
}

}  // namespace ascend::sc
