#include "sc/stoch_arith.h"

#include <stdexcept>

namespace ascend::sc {
namespace {

void check_binary_op(const StochStream& a, const StochStream& b, StochFormat fmt) {
  if (a.format != fmt || b.format != fmt)
    throw std::invalid_argument("stoch_arith: wrong stream format");
  if (a.length() != b.length()) throw std::invalid_argument("stoch_arith: length mismatch");
}

}  // namespace

StochStream mult_unipolar(const StochStream& a, const StochStream& b) {
  check_binary_op(a, b, StochFormat::kUnipolar);
  StochStream out;
  out.format = StochFormat::kUnipolar;
  out.scale = a.scale * b.scale;
  out.bits = a.bits & b.bits;
  return out;
}

StochStream mult_bipolar(const StochStream& a, const StochStream& b) {
  check_binary_op(a, b, StochFormat::kBipolar);
  StochStream out;
  out.format = StochFormat::kBipolar;
  out.scale = a.scale * b.scale;
  out.bits = ~(a.bits ^ b.bits);
  return out;
}

StochStream add_mux(const StochStream& a, const StochStream& b, const BitVec& select) {
  if (a.format != b.format) throw std::invalid_argument("add_mux: format mismatch");
  if (a.scale != b.scale) throw std::invalid_argument("add_mux: scale mismatch");
  if (a.length() != b.length() || a.length() != select.size())
    throw std::invalid_argument("add_mux: length mismatch");
  StochStream out;
  out.format = a.format;
  out.scale = a.scale;
  // out = select ? a : b
  out.bits = (a.bits & select) | (b.bits & ~select);
  return out;
}

StochStream add_mux_n(const std::vector<StochStream>& inputs, RandomSource& src) {
  if (inputs.empty()) throw std::invalid_argument("add_mux_n: no inputs");
  const std::size_t len = inputs[0].length();
  for (const auto& s : inputs) {
    if (s.length() != len) throw std::invalid_argument("add_mux_n: length mismatch");
    if (s.format != inputs[0].format || s.scale != inputs[0].scale)
      throw std::invalid_argument("add_mux_n: format/scale mismatch");
  }
  const std::size_t n = inputs.size();
  StochStream out;
  out.format = inputs[0].format;
  out.scale = inputs[0].scale;
  out.bits = BitVec(len);
  for (std::size_t t = 0; t < len; ++t) {
    const std::size_t idx = static_cast<std::size_t>(src.next()) % n;
    out.bits.set(t, inputs[idx].bits.get(t));
  }
  return out;
}

long long apc_accumulate(const std::vector<StochStream>& inputs) {
  long long total = 0;
  for (const auto& s : inputs) total += static_cast<long long>(s.bits.count());
  return total;
}

}  // namespace ascend::sc
