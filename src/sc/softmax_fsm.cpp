#include "sc/softmax_fsm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sc/fsm_units.h"
#include "sc/softmax_iter.h"
#include "sc/stoch_stream.h"

namespace ascend::sc {

std::vector<double> softmax_fsm(const std::vector<double>& x, const FsmSoftmaxConfig& cfg) {
  if (static_cast<int>(x.size()) != cfg.m)
    throw std::invalid_argument("softmax_fsm: input size != m");
  if (cfg.bsl < 1 || cfg.quotient_bits < 1)
    throw std::invalid_argument("softmax_fsm: bad configuration");

  // Binary front-end: subtract the row maximum so every input is <= 0 and the
  // exponential FSM operates in its valid region.
  const double mx = *std::max_element(x.begin(), x.end());

  std::vector<long long> counts(x.size(), 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double shifted = std::max(x[i] - mx, -cfg.scale);
    // The FSM approximates exp(-2G v) for the bipolar value v of its input
    // stream, so feed v = -shifted/scale >= 0; the effective temperature is
    // scale / (2 g).
    LfsrSource src(16, static_cast<std::uint32_t>(cfg.seed + 0x9E37 * (i + 1)));
    const StochStream s = StochStream::encode(-shifted, static_cast<std::size_t>(cfg.bsl),
                                              StochFormat::kBipolar, cfg.scale, src);
    FsmExp fsm(cfg.n_states, cfg.g);
    long long ones = 0;
    for (int t = 0; t < cfg.bsl; ++t) ones += fsm.step(s.bits.get(static_cast<std::size_t>(t))) ? 1 : 0;
    counts[i] = ones;  // SC -> binary conversion (counter)
  }

  // Shift normalization: instead of a true divider, the design scales every
  // count by the power of two just above the largest count (leading-one
  // detector + barrel shifter), then truncates to `quotient_bits`. Relative
  // order is preserved exactly; absolute values are not softmax-normalised,
  // which is the baseline's dominant (BSL-independent) error.
  long long cmax = 0;
  for (long long c : counts) cmax = std::max(cmax, c);
  long long denom = 1;
  while (denom < cmax) denom <<= 1;
  const long long qmax = (1LL << cfg.quotient_bits);
  std::vector<double> y(x.size(), 0.0);
  if (cmax > 0) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      const long long q = counts[i] * qmax / denom;  // shift + truncate
      y[i] = static_cast<double>(q) / static_cast<double>(qmax);
    }
  }
  return y;
}

double softmax_fsm_mae(const FsmSoftmaxConfig& cfg, int rows, std::uint64_t seed) {
  const auto logits = sample_attention_logits(cfg.m, rows, seed);
  double total = 0.0;
  FsmSoftmaxConfig per_row = cfg;
  for (std::size_t r = 0; r < logits.size(); ++r) {
    per_row.seed = cfg.seed + 0x1234567ULL * r;
    const auto ref = softmax_exact(logits[r]);
    const auto got = softmax_fsm(logits[r], per_row);
    for (std::size_t i = 0; i < ref.size(); ++i) total += std::fabs(got[i] - ref[i]);
  }
  return total / (static_cast<double>(rows) * cfg.m);
}

}  // namespace ascend::sc
