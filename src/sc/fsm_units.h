#pragma once
// fsm_units.h — FSM / saturating-counter SC nonlinear units (baselines).
//
// The classic serial-SC approach ([6]-[9]) realises nonlinear functions with
// a saturating up/down counter driven by the bipolar input stream:
//
//   * FsmTanh  — Brown & Card "Stanh": N-state counter, output 1 when the
//                state is in the upper half; P(out=1) ~ (1 + tanh(N x / 2))/2.
//   * FsmExp   — "Sexp": output 0 only in the top G states;
//                P(out=1) ~ exp(-2 G x) for x >= 0.
//   * FsmGelu  — GELU baseline assembled the way serial-SC CNN accelerators
//                build activation functions: a Stanh FSM estimates the
//                Gaussian CDF gate Phi(1.702 x) and a MUX multiplies the
//                input stream by it (select = FSM output, else a p = 0.5
//                "zero" stream). For negative inputs the gate probability
//                saturates and the output collapses to 0 — the systematic
//                error of Fig. 2(a); short streams add random fluctuation.
//   * FsmRelu  — same construction with a sign-tracking gate.
//
// These units are intentionally faithful to the baselines' weaknesses
// (correlation between the FSM state and the input stream included).

#include <cstdint>

#include "sc/stoch_stream.h"

namespace ascend::sc {

/// Brown–Card saturating-counter tanh FSM.
class FsmTanh {
 public:
  explicit FsmTanh(int n_states);
  /// Consume one bipolar input bit; returns the output bit for this cycle
  /// (computed from the state *before* the update, which slightly
  /// decorrelates output and input as in the standard designs).
  bool step(bool in_bit);
  void reset();
  int n_states() const { return n_states_; }

 private:
  int n_states_;
  int state_;
};

/// Brown–Card exponential FSM: P(out) ~ exp(-2G x) for bipolar x in [0, 1].
class FsmExp {
 public:
  FsmExp(int n_states, int g);
  bool step(bool in_bit);
  void reset();

 private:
  int n_states_;
  int g_;
  int state_;
};

/// Serial FSM-based GELU baseline.
class FsmGelu {
 public:
  /// `scale` is the bipolar encoding scale of the input (x in [-scale, scale]).
  /// `n_states` is chosen so that the Stanh slope matches Phi(1.702 x):
  /// N ~ 1.702 * scale (rounded to an even count).
  explicit FsmGelu(double scale, int n_states = 0);

  /// Evaluate at `x` with a `bsl`-bit stream; returns the decoded output.
  /// Randomness for the input SNG and the zero stream comes from `src` /
  /// `src_zero` (must be independent sources).
  double eval(double x, std::size_t bsl, RandomSource& src, RandomSource& src_zero);

  double scale() const { return scale_; }
  int n_states() const { return n_states_; }

 private:
  double scale_;
  int n_states_;
};

/// Serial FSM-based ReLU baseline (sign-gated MUX, as in HEIF [9]).
class FsmRelu {
 public:
  explicit FsmRelu(double scale, int n_states = 8);
  double eval(double x, std::size_t bsl, RandomSource& src, RandomSource& src_zero);

 private:
  double scale_;
  int n_states_;
};

}  // namespace ascend::sc
