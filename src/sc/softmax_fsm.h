#pragma once
// softmax_fsm.h — FSM-based softmax baseline ([17], also [16]).
//
// These designs accelerate softmax for CNN classifier heads with a hybrid
// datapath: a binary front-end subtracts the row maximum, each shifted input
// is converted to a stochastic bitstream, an exponential FSM produces the
// exp() stream, and a counter converts back to binary. True division is the
// expensive part such designs avoid: normalization is approximated by a
// power-of-two shift against the largest count (leading-one detector +
// shifter). The result preserves the relative order of the outputs exactly
// but the values carry a large, BSL-independent systematic error — matching
// the paper's characterisation ("only the relative order of outputs is
// preserved while the computed values still exhibit a large error") and its
// Table IV numbers (MAE ~0.1, nearly flat from 128b to 1024b).

#include <cstdint>
#include <vector>

namespace ascend::sc {

struct FsmSoftmaxConfig {
  int m = 64;          ///< row-vector length
  int bsl = 128;       ///< bitstream length per element
  int n_states = 16;   ///< exponential FSM state count
  int g = 2;           ///< exponential FSM output-region parameter
  double scale = 4.0;  ///< bipolar encoding scale of the (max-shifted) inputs
  int quotient_bits = 6;  ///< output precision after the shift normalization
  std::uint64_t seed = 0x5EEDBA5Eu;  ///< per-row SNG seeding base
};

/// Evaluate the FSM-based softmax baseline on one row.
std::vector<double> softmax_fsm(const std::vector<double>& x, const FsmSoftmaxConfig& cfg);

/// Mean absolute error against exact softmax over `rows` test vectors drawn
/// from the attention-logit distribution (same protocol as the iterative
/// block, see softmax_iter.h).
double softmax_fsm_mae(const FsmSoftmaxConfig& cfg, int rows, std::uint64_t seed);

}  // namespace ascend::sc
