#include "sc/fsm_units.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ascend::sc {

FsmTanh::FsmTanh(int n_states) : n_states_(n_states), state_(n_states / 2) {
  if (n_states < 2) throw std::invalid_argument("FsmTanh: need at least 2 states");
}

bool FsmTanh::step(bool in_bit) {
  const bool out = state_ >= n_states_ / 2;
  state_ += in_bit ? 1 : -1;
  state_ = std::clamp(state_, 0, n_states_ - 1);
  return out;
}

void FsmTanh::reset() { state_ = n_states_ / 2; }

FsmExp::FsmExp(int n_states, int g) : n_states_(n_states), g_(g), state_(n_states / 2) {
  if (n_states < 2 || g < 1 || g >= n_states)
    throw std::invalid_argument("FsmExp: bad configuration");
}

bool FsmExp::step(bool in_bit) {
  const bool out = state_ < n_states_ - g_;
  state_ += in_bit ? 1 : -1;
  state_ = std::clamp(state_, 0, n_states_ - 1);
  return out;
}

void FsmExp::reset() { state_ = n_states_ / 2; }

FsmGelu::FsmGelu(double scale, int n_states) : scale_(scale) {
  if (scale <= 0) throw std::invalid_argument("FsmGelu: scale must be positive");
  if (n_states == 0) {
    // Match the Stanh slope to Phi(1.702 x): tanh(N q / 2) with q = x / scale
    // should approximate tanh(0.851 x), so N ~ 1.702 * scale.
    n_states = std::max(2, 2 * static_cast<int>(std::lround(1.702 * scale / 2.0)));
  }
  n_states_ = n_states;
}

double FsmGelu::eval(double x, std::size_t bsl, RandomSource& src, RandomSource& src_zero) {
  const StochStream xs = StochStream::encode(x, bsl, StochFormat::kBipolar, scale_, src);
  // p = 0.5 "bipolar zero" reference: a toggle flip-flop in hardware, exactly
  // balanced (an LFSR window of 128 bits can be several percent off, which
  // would bias the MUX output); src_zero only picks the toggle phase.
  BitVec zero(bsl);
  const bool phase = (src_zero.next() & 1u) != 0;
  for (std::size_t t = 0; t < bsl; ++t) zero.set(t, ((t & 1u) != 0) == phase);
  FsmTanh fsm(n_states_);
  std::size_t ones = 0;
  for (std::size_t t = 0; t < bsl; ++t) {
    const bool xb = xs.bits.get(t);
    const bool gate = fsm.step(xb);  // P(gate) ~ Phi(1.702 x)
    const bool yb = gate ? xb : zero.get(t);
    ones += yb ? 1 : 0;
  }
  const double p = static_cast<double>(ones) / static_cast<double>(bsl);
  return scale_ * (2.0 * p - 1.0);
}

FsmRelu::FsmRelu(double scale, int n_states) : scale_(scale), n_states_(n_states) {
  if (scale <= 0) throw std::invalid_argument("FsmRelu: scale must be positive");
}

double FsmRelu::eval(double x, std::size_t bsl, RandomSource& src, RandomSource& src_zero) {
  const StochStream xs = StochStream::encode(x, bsl, StochFormat::kBipolar, scale_, src);
  BitVec zero(bsl);
  const bool phase = (src_zero.next() & 1u) != 0;
  for (std::size_t t = 0; t < bsl; ++t) zero.set(t, ((t & 1u) != 0) == phase);
  FsmTanh sign_fsm(n_states_);  // steep tanh ~ sign(x)
  std::size_t ones = 0;
  for (std::size_t t = 0; t < bsl; ++t) {
    const bool xb = xs.bits.get(t);
    const bool gate = sign_fsm.step(xb);
    const bool yb = gate ? xb : zero.get(t);
    ones += yb ? 1 : 0;
  }
  const double p = static_cast<double>(ones) / static_cast<double>(bsl);
  return scale_ * (2.0 * p - 1.0);
}

}  // namespace ascend::sc
