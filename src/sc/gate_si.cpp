#include "sc/gate_si.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ascend::sc {
namespace {

int quantize_out(double y, int lout, double alpha_out) {
  const int n = static_cast<int>(std::lround(y / alpha_out + lout / 2.0));
  return std::clamp(n, 0, lout);
}

double grid_value(int n, int l, double alpha) { return alpha * (n - l / 2.0); }

}  // namespace

double gelu_exact(double x) { return 0.5 * x * (1.0 + std::erf(x / std::sqrt(2.0))); }

GateAssistedSI::GateAssistedSI(int lin, int lout, double alpha_in, double alpha_out,
                               std::vector<int> table)
    : lin_(lin), lout_(lout), alpha_in_(alpha_in), alpha_out_(alpha_out), table_(std::move(table)) {
  if (lin_ <= 0 || lout_ <= 0) throw std::invalid_argument("GateAssistedSI: BSLs must be positive");
  if (static_cast<int>(table_.size()) != lin_ + 1)
    throw std::invalid_argument("GateAssistedSI: table must have Lin+1 entries");
  for (int v : table_)
    if (v < 0 || v > lout_) throw std::invalid_argument("GateAssistedSI: table entry range");

  wire_ivs_.resize(static_cast<std::size_t>(lout_));
  for (int w = 0; w < lout_; ++w) {
    auto& ivs = wire_ivs_[static_cast<std::size_t>(w)];
    int start = -1;
    for (int n = 0; n <= lin_; ++n) {
      const bool on = table_[static_cast<std::size_t>(n)] > w;
      if (on && start < 0) start = n;
      if (!on && start >= 0) {
        ivs.push_back({start, n - 1});
        start = -1;
      }
    }
    if (start >= 0) ivs.push_back({start, lin_});
  }
}

int GateAssistedSI::total_intervals() const {
  int total = 0;
  for (const auto& ivs : wire_ivs_) total += static_cast<int>(ivs.size());
  return total;
}

ThermValue GateAssistedSI::apply(const ThermValue& x) const {
  if (x.length != lin_) throw std::invalid_argument("GateAssistedSI::apply: BSL mismatch");
  return ThermValue{table_[static_cast<std::size_t>(x.ones)], lout_, alpha_out_};
}

ThermStream GateAssistedSI::apply(const ThermStream& x) const {
  if (x.length() != lin_) throw std::invalid_argument("GateAssistedSI::apply: BSL mismatch");
  if (!x.is_canonical()) throw std::invalid_argument("GateAssistedSI::apply: input must be canonical");
  // Threshold signals: s_p = [n >= p]; s_0 is the constant 1 wire.
  auto s = [&](int p) -> bool {
    if (p <= 0) return true;
    if (p > lin_) return false;
    return x.bits.get(static_cast<std::size_t>(p - 1));
  };
  ThermStream out;
  out.alpha = alpha_out_;
  out.bits = BitVec(static_cast<std::size_t>(lout_));
  for (int w = 0; w < lout_; ++w) {
    bool bit = false;
    for (const auto& iv : wire_ivs_[static_cast<std::size_t>(w)]) {
      // I = s_begin & !s_{end+1}; the upper term vanishes when end == Lin.
      if (s(iv.begin) && !s(iv.end + 1)) {
        bit = true;
        break;
      }
    }
    out.bits.set(static_cast<std::size_t>(w), bit);
  }
  return out;
}

double GateAssistedSI::transfer(double x) const {
  const ThermValue in = ThermValue::encode(x, lin_, alpha_in_);
  return apply(in).value();
}

GateAssistedSI GateAssistedSI::synthesize(const std::function<double(double)>& f, int lin, int lout,
                                          double alpha_in, double alpha_out) {
  std::vector<int> table(static_cast<std::size_t>(lin) + 1);
  for (int n = 0; n <= lin; ++n)
    table[static_cast<std::size_t>(n)] = quantize_out(f(grid_value(n, lin, alpha_in)), lout, alpha_out);
  return GateAssistedSI(lin, lout, alpha_in, alpha_out, std::move(table));
}

GateAssistedSI GateAssistedSI::ternary_gelu(double alpha_in, double alpha_out) {
  // Fig. 4: as the input count grows the output code steps 0 -> -1 -> 0 -> +1,
  // i.e. the output ones-count steps 1 -> 0 -> 1 -> 2. Selection signals fire
  // at input counts 2, 4 and 7 (s[2], s[1], s[0] in the paper's naming).
  std::vector<int> table = {1, 1, 0, 0, 1, 1, 1, 2, 2};
  return GateAssistedSI(8, 2, alpha_in, alpha_out, std::move(table));
}

GateAssistedSI make_gelu_block(int b, double input_lo, double input_hi, int input_bsl) {
  if (b < 2) throw std::invalid_argument("make_gelu_block: data BSL must be >= 2");
  const double max_abs = std::max(std::fabs(input_lo), std::fabs(input_hi));
  const double alpha_in = 2.0 * max_abs / input_bsl;

  // Designer's choice of the output scaling factor: scan candidates and keep
  // the one minimising the mean |quantized - exact| over the in-range grid.
  double best_alpha = 1.0, best_err = std::numeric_limits<double>::infinity();
  for (int c = 1; c <= 400; ++c) {
    const double alpha = 0.005 * c;
    double err = 0.0;
    int cnt = 0;
    for (int n = 0; n <= input_bsl; ++n) {
      const double x = grid_value(n, input_bsl, alpha_in);
      if (x < input_lo - 1e-12 || x > input_hi + 1e-12) continue;
      const double g = gelu_exact(x);
      const double q = grid_value(quantize_out(g, b, alpha), b, alpha);
      err += std::fabs(q - g);
      ++cnt;
    }
    err /= std::max(1, cnt);
    if (err < best_err) {
      best_err = err;
      best_alpha = alpha;
    }
  }
  return GateAssistedSI::synthesize(gelu_exact, input_bsl, b, alpha_in, best_alpha);
}

}  // namespace ascend::sc
