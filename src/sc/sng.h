#pragma once
// sng.h — stochastic number generators (SNGs).
//
// Classic (non-deterministic) SC encodes a value as the probability of 1s in
// a pseudo-random bitstream. The SNG compares a pseudo-random sequence with a
// binary threshold; the paper's FSM / Bernstein / FSM-softmax baselines all
// consume such streams. Three generators are provided:
//
//  * Lfsr              — maximal-length linear feedback shift register, the
//                        standard low-cost hardware randomness source;
//  * VanDerCorput      — base-2 low-discrepancy counter (a.k.a. "reversed
//                        counter" SNG) giving quasi-deterministic streams with
//                        lower fluctuation for the same bitstream length;
//  * CounterComparator — plain binary counter + comparator, producing an
//                        evenly spaced deterministic stream.

#include <cstdint>

#include "sc/bitvec.h"

namespace ascend::sc {

/// Maximal-length Fibonacci LFSR with width 3..24 bits.
class Lfsr {
 public:
  /// `width` selects the register length; `seed` must be non-zero after
  /// masking to `width` bits (a zero seed is silently replaced by 1).
  explicit Lfsr(int width = 16, std::uint32_t seed = 0xACE1u);

  /// Advance one step and return the new register state in [1, 2^width - 1].
  std::uint32_t next();

  int width() const { return width_; }
  /// Exclusive upper bound of next(): 2^width.
  std::uint32_t range() const { return std::uint32_t{1} << width_; }

 private:
  int width_;
  std::uint32_t state_;
  std::uint32_t taps_;
};

/// Base-2 Van der Corput sequence generator: returns bit-reversed counter
/// values, uniformly filling [0, 2^width) with low discrepancy.
class VanDerCorput {
 public:
  explicit VanDerCorput(int width = 16, std::uint32_t start = 0);
  std::uint32_t next();
  std::uint32_t range() const { return std::uint32_t{1} << width_; }

 private:
  int width_;
  std::uint32_t counter_;
};

/// Abstract source of uniform integers for SNG comparison.
class RandomSource {
 public:
  virtual ~RandomSource() = default;
  virtual std::uint32_t next() = 0;
  virtual std::uint32_t range() const = 0;
};

/// RandomSource adaptors.
class LfsrSource final : public RandomSource {
 public:
  explicit LfsrSource(int width = 16, std::uint32_t seed = 0xACE1u) : lfsr_(width, seed) {}
  std::uint32_t next() override { return lfsr_.next(); }
  std::uint32_t range() const override { return lfsr_.range(); }

 private:
  Lfsr lfsr_;
};

class VdcSource final : public RandomSource {
 public:
  explicit VdcSource(int width = 16, std::uint32_t start = 0) : vdc_(width, start) {}
  std::uint32_t next() override { return vdc_.next(); }
  std::uint32_t range() const override { return vdc_.range(); }

 private:
  VanDerCorput vdc_;
};

/// Generate a `length`-bit stream whose probability of 1s approximates `p`
/// (clamped to [0,1]) by comparing `src` against the threshold p * range.
BitVec generate_stream(double p, std::size_t length, RandomSource& src);

/// Deterministic counter-comparator stream: exactly round(p * length) ones,
/// evenly spaced across the stream.
BitVec generate_even_stream(double p, std::size_t length);

}  // namespace ascend::sc
