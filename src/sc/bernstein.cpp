#include "sc/bernstein.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sc/gate_si.h"  // gelu_exact

namespace ascend::sc {
namespace {

std::vector<double> binomials(int n) {
  std::vector<double> c(static_cast<std::size_t>(n) + 1, 1.0);
  for (int i = 1; i <= n; ++i) c[static_cast<std::size_t>(i)] = c[static_cast<std::size_t>(i - 1)] * (n - i + 1) / i;
  return c;
}

/// Solve the symmetric positive-definite system M x = rhs by Gauss-Jordan
/// elimination with partial pivoting (small systems only).
std::vector<double> solve_spd(std::vector<std::vector<double>> m, std::vector<double> rhs) {
  const std::size_t n = rhs.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(m[r][col]) > std::fabs(m[pivot][col])) pivot = r;
    std::swap(m[col], m[pivot]);
    std::swap(rhs[col], rhs[pivot]);
    const double d = m[col][col];
    if (std::fabs(d) < 1e-14) throw std::runtime_error("solve_spd: singular matrix");
    for (std::size_t c = col; c < n; ++c) m[col][c] /= d;
    rhs[col] /= d;
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = m[r][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) m[r][c] -= f * m[col][c];
      rhs[r] -= f * rhs[col];
    }
  }
  return rhs;
}

}  // namespace

BernsteinUnit::BernsteinUnit(std::vector<double> coefficients) : coeffs_(std::move(coefficients)) {
  if (coeffs_.empty()) throw std::invalid_argument("BernsteinUnit: need >= 1 coefficient");
  for (double b : coeffs_)
    if (b < -1e-9 || b > 1.0 + 1e-9)
      throw std::invalid_argument("BernsteinUnit: coefficients must lie in [0,1]");
  for (double& b : coeffs_) b = std::clamp(b, 0.0, 1.0);
  binom_ = binomials(degree());
}

double BernsteinUnit::eval_exact(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  const int n = degree();
  double sum = 0.0;
  for (int i = 0; i <= n; ++i)
    sum += coeffs_[static_cast<std::size_t>(i)] * binom_[static_cast<std::size_t>(i)] *
           std::pow(u, i) * std::pow(1.0 - u, n - i);
  return sum;
}

BernsteinUnit::SngBank BernsteinUnit::make_sng_bank(std::uint64_t seed) const {
  // Independent SNGs: one per input-stream copy plus one for the coefficient
  // streams, with distinct widths and decorrelated seeds.
  const int n = degree();
  auto mix = [&seed]() {  // splitmix64-style seed derivation
    seed += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::uint32_t>(z ^ (z >> 31));
  };
  SngBank bank;
  bank.inputs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) bank.inputs.emplace_back(13 + (i % 8), mix());
  bank.coef = Lfsr(16, mix());
  return bank;
}

double BernsteinUnit::eval_stochastic(double u, std::size_t bsl, std::uint64_t seed) const {
  u = std::clamp(u, 0.0, 1.0);
  const int n = degree();
  SngBank bank = make_sng_bank(seed);
  std::vector<Lfsr>& inputs = bank.inputs;
  Lfsr& coef = bank.coef;

  std::size_t ones = 0;
  for (std::size_t t = 0; t < bsl; ++t) {
    // n independent input-stream copies summed by the ReSC adder.
    int idx = 0;
    for (int i = 0; i < n; ++i) {
      Lfsr& g = inputs[static_cast<std::size_t>(i)];
      idx += (static_cast<double>(g.next()) < u * static_cast<double>(g.range())) ? 1 : 0;
    }
    // The adder output addresses the coefficient-stream multiplexer.
    const double b = coeffs_[static_cast<std::size_t>(idx)];
    ones += (static_cast<double>(coef.next()) < b * static_cast<double>(coef.range())) ? 1 : 0;
  }
  return static_cast<double>(ones) / static_cast<double>(bsl);
}

BernsteinUnit BernsteinUnit::fit(const std::function<double(double)>& f, int terms,
                                 int grid_points) {
  if (terms < 1) throw std::invalid_argument("BernsteinUnit::fit: terms >= 1");
  const int n = terms - 1;
  const auto binom = binomials(n);
  // Basis matrix on the grid.
  std::vector<std::vector<double>> a(static_cast<std::size_t>(grid_points),
                                     std::vector<double>(static_cast<std::size_t>(terms)));
  std::vector<double> y(static_cast<std::size_t>(grid_points));
  for (int g = 0; g < grid_points; ++g) {
    const double u = static_cast<double>(g) / (grid_points - 1);
    y[static_cast<std::size_t>(g)] = f(u);
    for (int i = 0; i <= n; ++i)
      a[static_cast<std::size_t>(g)][static_cast<std::size_t>(i)] =
          binom[static_cast<std::size_t>(i)] * std::pow(u, i) * std::pow(1.0 - u, n - i);
  }
  // Normal equations.
  std::vector<std::vector<double>> ata(static_cast<std::size_t>(terms),
                                       std::vector<double>(static_cast<std::size_t>(terms), 0.0));
  std::vector<double> aty(static_cast<std::size_t>(terms), 0.0);
  for (int g = 0; g < grid_points; ++g)
    for (int i = 0; i < terms; ++i) {
      aty[static_cast<std::size_t>(i)] +=
          a[static_cast<std::size_t>(g)][static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(g)];
      for (int j = 0; j < terms; ++j)
        ata[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
            a[static_cast<std::size_t>(g)][static_cast<std::size_t>(i)] *
            a[static_cast<std::size_t>(g)][static_cast<std::size_t>(j)];
    }
  std::vector<double> b = solve_spd(ata, aty);
  for (double& v : b) v = std::clamp(v, 0.0, 1.0);
  // Projected-gradient refinement keeps the solution optimal on the box.
  double trace = 0.0;
  for (int i = 0; i < terms; ++i) trace += ata[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
  const double step = 1.0 / std::max(trace, 1e-9);
  for (int it = 0; it < 4000; ++it) {
    for (int i = 0; i < terms; ++i) {
      double grad = -aty[static_cast<std::size_t>(i)];
      for (int j = 0; j < terms; ++j)
        grad += ata[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] * b[static_cast<std::size_t>(j)];
      b[static_cast<std::size_t>(i)] = std::clamp(b[static_cast<std::size_t>(i)] - step * grad, 0.0, 1.0);
    }
  }
  return BernsteinUnit(std::move(b));
}

BernsteinGelu::BernsteinGelu(int terms, double in_lo, double in_hi)
    : in_lo_(in_lo),
      in_hi_(in_hi),
      // Output affine map chosen so GELU over the input range fits in [0,1]
      // with a little headroom.
      out_lo_(gelu_exact(-0.751) - 0.03),  // global GELU minimum ~ -0.17
      out_hi_(gelu_exact(in_hi) + 0.03),
      unit_(BernsteinUnit::fit(
          [this](double u) {
            const double x = in_lo_ + u * (in_hi_ - in_lo_);
            return (gelu_exact(x) - out_lo_) / (out_hi_ - out_lo_);
          },
          terms)) {}

double BernsteinGelu::eval_exact(double x) const {
  const double u = (std::clamp(x, in_lo_, in_hi_) - in_lo_) / (in_hi_ - in_lo_);
  return out_lo_ + unit_.eval_exact(u) * (out_hi_ - out_lo_);
}

double BernsteinGelu::eval_stochastic(double x, std::size_t bsl, std::uint64_t seed) const {
  const double u = (std::clamp(x, in_lo_, in_hi_) - in_lo_) / (in_hi_ - in_lo_);
  return out_lo_ + unit_.eval_stochastic(u, bsl, seed) * (out_hi_ - out_lo_);
}

}  // namespace ascend::sc
