#pragma once
// therm_arith.h — arithmetic on deterministic thermometer-coded numbers.
//
// Primitive set (each has a bit-level and a count-level realisation; tests
// assert exact agreement):
//
//  * multiply     — truth-table multiplier of [10]: exact product of the two
//                   signed levels, emitted on an (La*Lb/2)-bit bundle with
//                   scale alpha_a * alpha_b.
//  * add (BSN)    — concatenate same-scale bundles and bitonic-sort ([5]).
//  * negate       — invert every bit (n -> L - n, i.e. q -> -q).
//  * expand       — fan every wire out e times: exact, scale /= e.
//  * subsample    — keep every s-th wire of a canonical bundle: scale *= s,
//                   count floors (n -> floor(n/s)); this is the re-scaling
//                   primitive of [15] and the source of the s1/s2
//                   approximation error in the softmax block.
//  * divide by k  — free: divide the scaling factor (no bitstream change).
//  * rescale      — saturating re-scaling block: expand/subsample to the
//                   target scale (rational ratio) followed by a monotone SI
//                   clamp onto the target length.

#include <vector>

#include "sc/therm_stream.h"

namespace ascend::sc {

// ---------------------------------------------------------------------------
// Count-level (fast) path.
// ---------------------------------------------------------------------------

/// Exact product: level_out = level_a * level_b on an (La*Lb/2)-bit bundle.
/// Requires La*Lb even (every practical BSL here is a power of two).
ThermValue mult(const ThermValue& a, const ThermValue& b);

/// BSN addition of same-scale numbers: counts and lengths add.
ThermValue add(const std::vector<ThermValue>& xs);
ThermValue add(const ThermValue* xs, std::size_t n);

/// q -> -q (bitwise NOT).
ThermValue negate(const ThermValue& a);

/// Fan-out expansion by integer factor e >= 1 (exact).
ThermValue expand(const ThermValue& a, int e);

/// Keep every s-th bit (s must divide length): alpha *= s. With the default
/// end-of-group taps the count floors (n -> floor(n/s)); `centered` taps
/// (offset (s-1)/2, same wiring cost) realise round-to-nearest, which the
/// softmax datapath uses for its s1/s2 sub-samplers to avoid systematic bias.
ThermValue subsample(const ThermValue& a, int s, bool centered = false);

/// Divide by a constant k by scaling alpha only (no hardware on the stream).
ThermValue divide_by_const(const ThermValue& a, double k);

/// Saturating re-scaling block: map `a` onto a `target_length`-bit bundle
/// with scale `target_alpha`. Values outside the target range saturate;
/// in-range values quantize to the target grid (round-half-away-from-zero via
/// the expand/subsample chain's floor, matched bit-exactly by the bit-level
/// realisation). `max_denominator` bounds the rational approximation of the
/// scale ratio.
ThermValue rescale(const ThermValue& a, int target_length, double target_alpha,
                   int max_denominator = 64);

// ---------------------------------------------------------------------------
// Bit-level (circuit-faithful) path.
// ---------------------------------------------------------------------------

ThermStream mult(const ThermStream& a, const ThermStream& b);
ThermStream add(const std::vector<ThermStream>& xs);
ThermStream negate(const ThermStream& a);
ThermStream expand(const ThermStream& a, int e);
ThermStream subsample(const ThermStream& a, int s, bool centered = false);
ThermStream divide_by_const(const ThermStream& a, double k);
ThermStream rescale(const ThermStream& a, int target_length, double target_alpha,
                    int max_denominator = 64);

/// Rational approximation p/q of `ratio` with q <= max_denominator
/// (Stern–Brocot / continued-fraction based). Exposed for the cost model.
struct Rational {
  int num = 1;
  int den = 1;
  double as_double() const { return static_cast<double>(num) / den; }
};
Rational approx_rational(double ratio, int max_denominator);

}  // namespace ascend::sc
