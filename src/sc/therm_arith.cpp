#include "sc/therm_arith.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sc/bsn.h"

namespace ascend::sc {
namespace {

void check_even(int length, const char* who) {
  if (length <= 0 || (length % 2) != 0)
    throw std::invalid_argument(std::string(who) + ": BSL must be positive and even");
}

void check_same_alpha(double a, double b, const char* who) {
  const double tol = 1e-9 * std::max({std::fabs(a), std::fabs(b), 1e-300});
  if (std::fabs(a - b) > tol)
    throw std::invalid_argument(std::string(who) + ": scaling factors must match");
}

long long floor_div(long long a, long long b) {
  long long q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Shared rescale bookkeeping so the bit-level and count-level paths use the
/// exact same expansion factor, balanced padding, tap placement and clamp
/// offset. Sub-sample taps are *centered* (offset (p-1)/2) which realises
/// round-to-nearest instead of floor — important so that small softmax
/// updates are not systematically swallowed by the y re-gridding.
struct RescalePlan {
  int expand_by = 1;     // q
  int subsample_by = 1;  // p
  long long tap_offset = 0;    // t0 = (p-1)/2: out count = (n + p-1-t0)/p
  long long pad = 0;     // balanced pad amount j (j ones + j zeros)
  long long clamp_offset = 0;  // off2: out count = clamp(n' - off2, 0, Lt)
  long long mid_length = 0;    // length after expand+pad+subsample
};

RescalePlan make_rescale_plan(int length, double alpha, int target_length, double target_alpha,
                              int max_denominator) {
  if (target_length <= 0) throw std::invalid_argument("rescale: bad target length");
  if (target_alpha <= 0 || alpha <= 0) throw std::invalid_argument("rescale: bad alpha");
  RescalePlan plan;
  const Rational r = approx_rational(target_alpha / alpha, max_denominator);
  plan.expand_by = r.den;
  plan.subsample_by = r.num;
  const long long expanded = static_cast<long long>(length) * r.den;
  // Balanced padding (j ones in front, j zeros behind) preserves the value
  // and lets us hit a multiple of p; prefer a pad that also makes the final
  // clamp offset an integer number of bit positions on each side.
  long long chosen = -1;
  for (long long j = 0; j < 2LL * r.num + 2; ++j) {
    if ((expanded + 2 * j) % r.num != 0) continue;
    const long long mid = (expanded + 2 * j) / r.num;
    if (chosen < 0) {
      chosen = j;
      plan.mid_length = mid;
    }
    if ((mid - target_length) % 2 == 0) {
      chosen = j;
      plan.mid_length = mid;
      break;
    }
  }
  if (chosen < 0) throw std::logic_error("rescale: no feasible balanced padding");
  plan.pad = chosen;
  plan.tap_offset = (plan.subsample_by - 1) / 2;
  plan.clamp_offset = floor_div(plan.mid_length - target_length, 2);
  return plan;
}

}  // namespace

Rational approx_rational(double ratio, int max_denominator) {
  if (!(ratio > 0)) throw std::invalid_argument("approx_rational: ratio must be positive");
  if (max_denominator < 1) throw std::invalid_argument("approx_rational: bad max_denominator");
  Rational best;
  double best_err = std::numeric_limits<double>::infinity();
  for (int q = 1; q <= max_denominator; ++q) {
    const int p = std::max(1, static_cast<int>(std::lround(ratio * q)));
    const double err = std::fabs(static_cast<double>(p) / q - ratio);
    if (err + 1e-15 < best_err) {
      best_err = err;
      best = Rational{p, q};
      if (err == 0.0) break;
    }
  }
  // Reduce the fraction.
  int a = best.num, b = best.den;
  while (b != 0) {
    const int t = a % b;
    a = b;
    b = t;
  }
  best.num /= a;
  best.den /= a;
  return best;
}

// ---------------------------------------------------------------------------
// Count-level path.
// ---------------------------------------------------------------------------

ThermValue mult(const ThermValue& a, const ThermValue& b) {
  check_even(a.length, "mult");
  check_even(b.length, "mult");
  const long long qa = a.ones - a.length / 2;
  const long long qb = b.ones - b.length / 2;
  const long long lout = static_cast<long long>(a.length) * b.length / 2;
  const long long n = qa * qb + lout / 2;
  return ThermValue{static_cast<int>(n), static_cast<int>(lout), a.alpha * b.alpha};
}

ThermValue add(const ThermValue* xs, std::size_t n) {
  if (n == 0) throw std::invalid_argument("add: no operands");
  ThermValue out{0, 0, xs[0].alpha};
  for (std::size_t i = 0; i < n; ++i) {
    check_same_alpha(xs[i].alpha, out.alpha, "add");
    out.ones += xs[i].ones;
    out.length += xs[i].length;
  }
  return out;
}

ThermValue add(const std::vector<ThermValue>& xs) { return add(xs.data(), xs.size()); }

ThermValue negate(const ThermValue& a) { return ThermValue{a.length - a.ones, a.length, a.alpha}; }

ThermValue expand(const ThermValue& a, int e) {
  if (e < 1) throw std::invalid_argument("expand: factor must be >= 1");
  return ThermValue{a.ones * e, a.length * e, a.alpha / e};
}

ThermValue subsample(const ThermValue& a, int s, bool centered) {
  if (s < 1 || a.length % s != 0)
    throw std::invalid_argument("subsample: rate must divide the BSL");
  const int t0 = centered ? (s - 1) / 2 : s - 1;
  return ThermValue{(a.ones + s - 1 - t0) / s, a.length / s, a.alpha * s};
}

ThermValue divide_by_const(const ThermValue& a, double k) {
  if (!(k > 0)) throw std::invalid_argument("divide_by_const: k must be positive");
  return ThermValue{a.ones, a.length, a.alpha / k};
}

ThermValue rescale(const ThermValue& a, int target_length, double target_alpha,
                   int max_denominator) {
  const RescalePlan plan =
      make_rescale_plan(a.length, a.alpha, target_length, target_alpha, max_denominator);
  long long n = static_cast<long long>(a.ones) * plan.expand_by + plan.pad;
  // Centered-tap sub-sampling: round-to-nearest counts.
  n = (n + plan.subsample_by - 1 - plan.tap_offset) / plan.subsample_by;
  n -= plan.clamp_offset;                 // SI clamp re-centering
  n = std::clamp<long long>(n, 0, target_length);
  return ThermValue{static_cast<int>(n), target_length, target_alpha};
}

// ---------------------------------------------------------------------------
// Bit-level path.
// ---------------------------------------------------------------------------

ThermStream mult(const ThermStream& a, const ThermStream& b) {
  // Behavioural model of the truth-table multiplier of [10]: the output code
  // is fully determined by the operand counts; we emit the canonical pattern.
  return ThermStream::from_value(mult(a.to_value(), b.to_value()));
}

ThermStream add(const std::vector<ThermStream>& xs) {
  if (xs.empty()) throw std::invalid_argument("add: no operands");
  ThermStream out;
  out.alpha = xs[0].alpha;
  for (const auto& x : xs) {
    check_same_alpha(x.alpha, out.alpha, "add");
    out.bits.append(x.bits);
  }
  out.bits = bsn_sort(out.bits);
  return out;
}

ThermStream negate(const ThermStream& a) {
  ThermStream out;
  out.alpha = a.alpha;
  out.bits = (~a.bits).reversed();
  return out;
}

ThermStream expand(const ThermStream& a, int e) {
  if (e < 1) throw std::invalid_argument("expand: factor must be >= 1");
  ThermStream out;
  out.alpha = a.alpha / e;
  out.bits = BitVec(static_cast<std::size_t>(a.length()) * e);
  for (int i = 0; i < a.length(); ++i) {
    const bool b = a.bits.get(static_cast<std::size_t>(i));
    for (int r = 0; r < e; ++r) out.bits.set(static_cast<std::size_t>(i) * e + r, b);
  }
  return out;
}

ThermStream subsample(const ThermStream& a, int s, bool centered) {
  if (s < 1 || a.length() % s != 0)
    throw std::invalid_argument("subsample: rate must divide the BSL");
  if (!a.is_canonical())
    throw std::invalid_argument("subsample: bit-level subsampling requires a canonical bundle");
  const int t0 = centered ? (s - 1) / 2 : s - 1;
  ThermStream out;
  out.alpha = a.alpha * s;
  out.bits = a.bits.subsample(static_cast<std::size_t>(t0), static_cast<std::size_t>(s));
  return out;
}

ThermStream divide_by_const(const ThermStream& a, double k) {
  if (!(k > 0)) throw std::invalid_argument("divide_by_const: k must be positive");
  ThermStream out = a;
  out.alpha /= k;
  return out;
}

ThermStream rescale(const ThermStream& a, int target_length, double target_alpha,
                    int max_denominator) {
  const RescalePlan plan =
      make_rescale_plan(a.length(), a.alpha, target_length, target_alpha, max_denominator);
  if (!a.is_canonical())
    throw std::invalid_argument("rescale: bit-level rescaling requires a canonical bundle");
  // Expand (wire fan-out).
  ThermStream mid = expand(a, plan.expand_by);
  // Balanced pad: `pad` constant-1 wires in front, `pad` constant-0 behind.
  BitVec padded;
  for (long long j = 0; j < plan.pad; ++j) padded.push_back(true);
  padded.append(mid.bits);
  for (long long j = 0; j < plan.pad; ++j) padded.push_back(false);
  // Centered sub-sample taps at positions t0, t0+p, t0+2p, ...
  BitVec sub = padded.subsample(static_cast<std::size_t>(plan.tap_offset),
                                static_cast<std::size_t>(plan.subsample_by));
  // Monotone SI clamp: out wire w = in wire (w + off), constants off the ends.
  ThermStream out;
  out.alpha = target_alpha;
  out.bits = BitVec(static_cast<std::size_t>(target_length));
  for (int w = 0; w < target_length; ++w) {
    const long long src = w + plan.clamp_offset;
    bool bit;
    if (src < 0)
      bit = true;  // below range: saturate low end contributes 1s
    else if (src >= static_cast<long long>(sub.size()))
      bit = false;  // above range: saturate
    else
      bit = sub.get(static_cast<std::size_t>(src));
    out.bits.set(static_cast<std::size_t>(w), bit);
  }
  return out;
}

}  // namespace ascend::sc
