#pragma once
// stoch_stream.h — classic (random) stochastic bitstreams.
//
// A StochStream carries `bits` together with an encoding format and a scaling
// factor. The represented value is
//   unipolar:  scale * p           with p = count / length, value in [0, scale]
//   bipolar :  scale * (2p - 1)    value in [-scale, scale]
//
// These streams are consumed by the FSM and Bernstein baselines; ASCEND's own
// datapath uses deterministic thermometer streams (therm_stream.h).

#include <cstddef>

#include "sc/bitvec.h"
#include "sc/sng.h"

namespace ascend::sc {

enum class StochFormat { kUnipolar, kBipolar };

struct StochStream {
  BitVec bits;
  StochFormat format = StochFormat::kUnipolar;
  double scale = 1.0;

  std::size_t length() const { return bits.size(); }
  /// Fraction of 1 bits.
  double probability() const;
  /// Decoded value (probability mapped through the format, times scale).
  double value() const;

  /// Encode `x` as a `length`-bit stream drawing randomness from `src`.
  /// `x` is clamped to the representable range of the format/scale.
  static StochStream encode(double x, std::size_t length, StochFormat format, double scale,
                            RandomSource& src);

  /// Deterministic encoding with evenly spaced ones (counter-comparator SNG).
  static StochStream encode_even(double x, std::size_t length, StochFormat format, double scale);
};

}  // namespace ascend::sc
