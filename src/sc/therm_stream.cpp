#include "sc/therm_stream.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ascend::sc {

ThermValue ThermValue::encode(double x, int length, double alpha) {
  if (length <= 0) throw std::invalid_argument("ThermValue::encode: length must be positive");
  if (alpha <= 0) throw std::invalid_argument("ThermValue::encode: alpha must be positive");
  const double level = x / alpha + length / 2.0;
  const int n = static_cast<int>(std::lround(level));
  return ThermValue{std::clamp(n, 0, length), length, alpha};
}

ThermStream ThermStream::from_value(const ThermValue& v) {
  if (v.ones < 0 || v.ones > v.length) throw std::invalid_argument("ThermStream: bad ones count");
  ThermStream s;
  s.alpha = v.alpha;
  s.bits = BitVec(static_cast<std::size_t>(v.length));
  for (int i = 0; i < v.ones; ++i) s.bits.set(static_cast<std::size_t>(i), true);
  return s;
}

ThermStream ThermStream::encode(double x, int length, double alpha) {
  return from_value(ThermValue::encode(x, length, alpha));
}

}  // namespace ascend::sc
