#include "vit/config.h"

#include <sstream>

namespace ascend::vit {

std::string PrecisionSpec::name() const {
  if (is_fp()) return "FP";
  std::ostringstream os;
  os << "W" << (w_bsl == 0 ? std::string("fp") : std::to_string(w_bsl))
     << "-A" << (a_bsl == 0 ? std::string("fp") : std::to_string(a_bsl))
     << "-R" << (r_bsl == 0 ? std::string("fp") : std::to_string(r_bsl));
  return os.str();
}

VitConfig VitConfig::paper_topology() {
  VitConfig c;
  c.image_size = 32;
  c.patch_size = 4;  // 64 tokens, matching the paper's softmax m = 64
  c.dim = 256;
  c.layers = 7;
  c.heads = 4;
  c.mlp_ratio = 2;
  return c;
}

VitConfig VitConfig::bench_topology(int classes) {
  VitConfig c;
  c.image_size = 32;
  c.patch_size = 8;  // 16 tokens — CPU-scale
  c.dim = 64;
  c.layers = 4;
  c.heads = 4;
  c.mlp_ratio = 2;
  c.classes = classes;
  return c;
}

}  // namespace ascend::vit
