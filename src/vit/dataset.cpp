#include "vit/dataset.h"

#include <cmath>
#include <random>
#include <stdexcept>

namespace ascend::vit {
namespace {

struct ClassStyle {
  int shape;       // 0 disk, 1 square, 2 ring, 3 stripes, 4 checker
  float hue;       // base colour angle
  float freq;      // texture frequency
};

ClassStyle style_for(int cls, int classes) {
  ClassStyle s;
  s.shape = cls % 5;
  s.hue = static_cast<float>(cls) / static_cast<float>(classes) * 6.2831853f;
  s.freq = 1.0f + static_cast<float>(cls / 5) * 1.7f;
  return s;
}

void hue_to_rgb(float hue, float* rgb) {
  rgb[0] = 0.5f + 0.5f * std::cos(hue);
  rgb[1] = 0.5f + 0.5f * std::cos(hue - 2.094f);
  rgb[2] = 0.5f + 0.5f * std::cos(hue + 2.094f);
}

}  // namespace

Dataset make_synthetic_vision(int n, int classes, std::uint64_t seed, int image_size) {
  if (classes < 2 || n < 1) throw std::invalid_argument("make_synthetic_vision: bad sizes");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> uni(0.0f, 1.0f);
  std::normal_distribution<float> gauss(0.0f, 1.0f);

  Dataset d;
  d.classes = classes;
  d.image_size = image_size;
  d.images = nn::Tensor({n, 3 * image_size * image_size});
  d.labels.resize(static_cast<std::size_t>(n));

  const int hw = image_size;
  for (int i = 0; i < n; ++i) {
    const int cls = static_cast<int>(rng() % static_cast<std::uint64_t>(classes));
    d.labels[static_cast<std::size_t>(i)] = cls;
    const ClassStyle st = style_for(cls, classes);

    float rgb[3];
    hue_to_rgb(st.hue + 0.55f * (uni(rng) - 0.5f), rgb);  // colour jitter
    const float cx = hw * (0.3f + 0.4f * uni(rng));
    const float cy = hw * (0.3f + 0.4f * uni(rng));
    const float radius = hw * (0.14f + 0.16f * uni(rng));
    const float phase = uni(rng) * 6.2831853f;

    float* img = d.images.data() + static_cast<std::size_t>(i) * 3 * hw * hw;
    for (int y = 0; y < hw; ++y)
      for (int x = 0; x < hw; ++x) {
        const float dx = static_cast<float>(x) - cx;
        const float dy = static_cast<float>(y) - cy;
        const float r = std::sqrt(dx * dx + dy * dy);
        bool inside = false;
        switch (st.shape) {
          case 0: inside = r < radius; break;
          case 1: inside = std::fabs(dx) < radius && std::fabs(dy) < radius; break;
          case 2: inside = r < radius && r > 0.55f * radius; break;
          case 3: inside = std::sin(st.freq * 0.7f * static_cast<float>(x) + phase) > 0.1f &&
                           r < 1.6f * radius;
                  break;
          default: inside = (std::sin(st.freq * 0.6f * x + phase) *
                             std::sin(st.freq * 0.6f * y + phase)) > 0.0f && r < 1.5f * radius;
        }
        const float tex = 0.15f * std::sin(st.freq * (dx + dy) * 0.4f + phase);
        for (int c = 0; c < 3; ++c) {
          float v = inside ? rgb[c] + tex : 0.12f + 0.05f * std::sin(0.3f * (x + y) + phase);
          v += 0.18f * gauss(rng);  // pixel noise
          img[(c * hw + y) * hw + x] = 2.0f * v - 1.0f;
        }
      }
  }
  return d;
}

Batch take_batch(const Dataset& data, const std::vector<int>& indices) {
  const int pix = data.channels * data.image_size * data.image_size;
  Batch b;
  b.images = nn::Tensor({static_cast<int>(indices.size()), pix});
  b.labels.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int idx = indices[i];
    if (idx < 0 || idx >= data.size()) throw std::out_of_range("take_batch: bad index");
    for (int p = 0; p < pix; ++p)
      b.images[i * static_cast<std::size_t>(pix) + p] =
          data.images[static_cast<std::size_t>(idx) * pix + p];
    b.labels.push_back(data.labels[static_cast<std::size_t>(idx)]);
  }
  return b;
}

}  // namespace ascend::vit
