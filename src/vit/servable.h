#pragma once
// servable.h — ViT adapters for the model-agnostic serving API.
//
// One trained vit::VisionTransformer fans out into named runtime::Servable
// variants, each a private serving clone (weights, quantizer calibration and
// BN statistics copied; hooks and precision per variant):
//   * make_fp32_servable        — fake-quantization stripped; dense blocked
//                                 GEMM all the way (the fidelity ceiling);
//   * make_packed_ternary_servable — the W2A2 regime served multiply-free
//                                 through the packed-ternary kernels;
//   * make_sc_servable          — SC nonlinear blocks active: softmax /
//                                 GELU served from the transfer-function
//                                 LUT cache, or per-activation circuit
//                                 emulation when `use_tf_cache` is false.
// Register any mix in a runtime::ModelRegistry and point an InferenceEngine
// at it; requests then pick a variant per call (A/B fidelity, mixed
// precision tiers) and variants hot-swap via ModelRegistry::publish.
//
// make_sc_servable_in_place drives the *caller's* model instead of a clone
// (hooks installed at construction, restored on destruction) — the engine's
// back-compat (model, ScInferenceConfig) constructor uses it to reproduce
// the pre-registry behaviour bit-exactly.

#include <memory>
#include <string>

#include "runtime/servable.h"
#include "runtime/tf_cache.h"
#include "runtime/thread_pool.h"
#include "vit/model.h"
#include "vit/sc_inference.h"

namespace ascend::vit {

/// How an SC servable runs its nonlinear blocks.
struct ScServableOptions {
  bool use_tf_cache = true;  ///< false: bit-true per-activation circuit emulation
  /// Worker pool for the per-activation SC work inside each forward. When
  /// null, the servable owns a pool of `threads` workers (0 = hardware
  /// concurrency). An external pool must outlive the servable.
  runtime::ThreadPool* pool = nullptr;
  int threads = 0;
  /// Transfer-function LUT cache to tabulate/serve from; null = the
  /// process-wide runtime::global_tf_cache(). Must outlive the servable.
  runtime::TfCache* cache = nullptr;
};

/// Full-precision dense variant: serving clone with fake-quantization
/// stripped (PrecisionSpec::fp()), exact softmax/GELU.
std::shared_ptr<runtime::Servable> make_fp32_servable(VisionTransformer& model,
                                                      std::string variant_id = "fp32");

/// Multiply-free W2A2 variant: serving clone keeping the model's ternary
/// weight/activation calibration; Linear layers route through the packed
/// sign-plane kernels. Throws std::invalid_argument unless the model's
/// precision is ternary W and A (w_bsl == 2 && a_bsl == 2).
std::shared_ptr<runtime::Servable> make_packed_ternary_servable(
    VisionTransformer& model, std::string variant_id = "w2a2-packed");

/// SC-emulated variant: serving clone with the SC softmax/GELU hooks from
/// `cfg` installed on it (LUT-cached or circuit-emulated per `opts`).
std::shared_ptr<runtime::Servable> make_sc_servable(VisionTransformer& model,
                                                    const ScInferenceConfig& cfg,
                                                    ScServableOptions opts = {},
                                                    std::string variant_id = "sc");

/// SC servable over the caller's model itself (no clone): exclusive use of
/// the model's hooks while alive, restored on destruction. The model must
/// outlive the servable; use make_sc_servable for multi-variant registries.
std::shared_ptr<runtime::Servable> make_sc_servable_in_place(VisionTransformer& model,
                                                             const ScInferenceConfig& cfg,
                                                             ScServableOptions opts = {},
                                                             std::string variant_id = "sc");

/// Servable taking ownership of an already-prepared serving model — no
/// clone, no precision change. Built for checkpoint cold-start
/// (serialize::load_model / load_model_mmap): `retain` is an opaque lifetime
/// anchor destroyed strictly after the model, so passing the MmapCheckpoint
/// keeps mapped weight views valid for every in-flight forward, including
/// across a ModelRegistry hot-swap to a newer mapping.
std::shared_ptr<runtime::Servable> make_servable_over(std::unique_ptr<VisionTransformer> model,
                                                      std::string variant_id,
                                                      std::shared_ptr<const void> retain = nullptr);

/// make_servable_over with the SC nonlinear-block hooks from `cfg` installed
/// on the adopted model (LUT-cached or circuit-emulated per `opts`).
std::shared_ptr<runtime::Servable> make_sc_servable_over(
    std::unique_ptr<VisionTransformer> model, const ScInferenceConfig& cfg,
    ScServableOptions opts, std::string variant_id,
    std::shared_ptr<const void> retain = nullptr);

}  // namespace ascend::vit
