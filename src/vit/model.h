#pragma once
// model.h — the BN/LN Vision Transformer with explicit backward.
//
// Architecture (pre-norm encoder, mean-pool classifier):
//   patchify -> Linear patch embed -> +pos embed
//   L x [ norm -> MSA -> +residual -> Rq ; norm -> MLP -> +residual -> Rq ]
//   final norm -> mean pool -> Linear head
//
// Rq are the residual LSQ quantizers (the R16 knob). Following common
// low-precision-transformer practice the patch embedding and the classifier
// head stay full precision; all encoder linears carry the W/A quantizers.
// Block outputs are cached as the feature taps for KD.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/attention.h"
#include "nn/module.h"
#include "vit/config.h"

namespace ascend::vit {

/// Norm layer dispatching between LayerNorm and BatchNorm.
class NormLayer {
 public:
  NormLayer(NormKind kind, int features);
  nn::Tensor forward(const nn::Tensor& x, bool training);
  nn::Tensor backward(const nn::Tensor& grad);
  nn::Tensor infer(const nn::Tensor& x) const;  ///< re-entrant eval-mode path
  void collect_params(std::vector<nn::Param*>& out);
  NormKind kind() const { return kind_; }
  /// Underlying layer (nullptr when this NormLayer dispatches the other
  /// kind) — exposed for serving-state copies (BN running statistics).
  nn::BatchNorm* batch_norm() { return bn_.get(); }
  nn::LayerNorm* layer_norm() { return ln_.get(); }

 private:
  NormKind kind_;
  std::unique_ptr<nn::LayerNorm> ln_;
  std::unique_ptr<nn::BatchNorm> bn_;
};

/// MLP block: fc1 -> GELU -> fc2, with an optional inference-time GELU hook
/// (SC gate-assisted-SI emulation).
class Mlp {
 public:
  Mlp(int dim, int hidden, nn::Rng& rng);
  nn::Tensor forward(const nn::Tensor& x);
  nn::Tensor backward(const nn::Tensor& grad);
  nn::Tensor infer(const nn::Tensor& x) const;  ///< re-entrant; hook invoked per call
  void collect_params(std::vector<nn::Param*>& out);
  nn::Linear& fc1() { return fc1_; }
  nn::Linear& fc2() { return fc2_; }
  void set_gelu_hook(std::function<nn::Tensor(const nn::Tensor&)> hook) { hook_ = std::move(hook); }
  void clear_gelu_hook() { hook_ = nullptr; }

 private:
  nn::Linear fc1_, fc2_;
  nn::Gelu gelu_;
  std::function<nn::Tensor(const nn::Tensor&)> hook_;
  bool used_hook_ = false;
};

/// One transformer encoder block.
class EncoderBlock {
 public:
  EncoderBlock(const VitConfig& cfg, nn::Rng& rng);
  nn::Tensor forward(const nn::Tensor& x, int batch, int tokens, bool training);
  nn::Tensor backward(const nn::Tensor& grad);
  nn::Tensor infer(const nn::Tensor& x, int batch, int tokens) const;
  void collect_params(std::vector<nn::Param*>& out);

  nn::MultiHeadSelfAttention& msa() { return msa_; }
  Mlp& mlp() { return mlp_; }
  nn::LsqQuantizer& residual_quant1() { return rq1_; }
  nn::LsqQuantizer& residual_quant2() { return rq2_; }
  NormLayer& norm1() { return norm1_; }
  NormLayer& norm2() { return norm2_; }

 private:
  NormLayer norm1_, norm2_;
  nn::MultiHeadSelfAttention msa_;
  Mlp mlp_;
  nn::LsqQuantizer rq1_, rq2_;
};

class VisionTransformer {
 public:
  VisionTransformer(const VitConfig& cfg, std::uint64_t seed);

  const VitConfig& config() const { return cfg_; }

  /// images: [B, channels*H*W] raw pixels in [0,1]-ish. Returns logits [B, classes].
  nn::Tensor forward(const nn::Tensor& images, bool training);
  /// Const, re-entrant inference forward: bit-exact with
  /// forward(images, /*training=*/false) but writes no member state (no
  /// block_outputs_ feature taps, no backward caches), so any number of
  /// threads may run it concurrently. Installed hooks are invoked per call
  /// and must be thread-safe themselves.
  nn::Tensor infer(const nn::Tensor& images) const;
  /// Backward from the logits gradient; optional per-block feature gradients
  /// (KD MSE taps) are added at the corresponding block boundary.
  void backward(const nn::Tensor& grad_logits,
                const std::vector<nn::Tensor>* feature_grads = nullptr);

  /// Block outputs [B*T, dim] cached by the last forward (KD feature taps).
  const std::vector<nn::Tensor>& block_outputs() const { return block_outputs_; }

  /// Trainable parameters (includes LSQ steps once initialised by a forward).
  std::vector<nn::Param*> params();
  /// Architecture parameters only (no quantizer steps) — used for stage
  /// initialisation copies along the progressive-quantization pipeline.
  std::vector<nn::Param*> structural_params();
  /// Copy structural parameters from a same-topology model.
  void copy_weights_from(VisionTransformer& other);

  /// Write a versioned binary checkpoint: topology + precision config,
  /// every trainable parameter, LSQ calibration state, BN running stats
  /// (see docs/checkpoint.md for the format). Defined in the serialize
  /// library (src/serialize/model_io.cpp) — link `serialize` (or `core`) to
  /// use it; thin wrapper over serialize::save_model.
  void save(const std::string& path);
  /// Reconstruct a model from a checkpoint written by save(): topology and
  /// precision come from the file's config block, weights/calibration/stats
  /// are restored eagerly (heap-owned; composes with HeapScope so nothing
  /// lands in an activation arena). `loaded->infer(x)` is bit-exact with the
  /// saved model's infer. Throws serialize::CheckpointError on a bad file.
  /// Defined in the serialize library; wrapper over serialize::load_model.
  /// For zero-copy serving straight off a read-only mapping, see
  /// serialize::load_model_mmap.
  static std::unique_ptr<VisionTransformer> load(const std::string& path);

  /// Deep serving copy: a fresh model with this model's topology, weights,
  /// precision spec, quantizer calibration (specs + learned steps), BN
  /// running statistics and softmax kind — `clone->infer(x)` is bit-exact
  /// with `this->infer(x)`. Inference hooks and frozen serving snapshots are
  /// NOT copied: the clone starts hook-free and re-freezes lazily, so
  /// serving adapters can install per-variant hooks / precision on private
  /// copies of one trained model (see vit/servable.h).
  std::unique_ptr<VisionTransformer> clone_for_serving();

  /// Configure the W/A/R quantizers on every encoder block.
  void apply_precision(const PrecisionSpec& spec);
  const PrecisionSpec& precision() const { return precision_; }

  /// Switch every block between exact and iterative-approximate softmax.
  void set_softmax_kind(nn::SoftmaxKind kind);
  /// Inference-time SC emulation hooks (see vit/sc_inference.h).
  void set_softmax_hook(std::function<nn::Tensor(const nn::Tensor&)> hook);
  void set_gelu_hook(std::function<nn::Tensor(const nn::Tensor&)> hook);
  void clear_hooks();

  std::vector<EncoderBlock>& blocks() { return blocks_; }
  /// Structural sub-layers, exposed for the checkpoint walker
  /// (serialize/model_io.cpp) and serving-state copies.
  nn::Linear& patch_embed() { return patch_embed_; }
  nn::Param& pos_embed() { return pos_embed_; }
  NormLayer& final_norm() { return final_norm_; }
  nn::Linear& head() { return head_; }

 private:
  nn::Tensor patchify(const nn::Tensor& images) const;

  VitConfig cfg_;
  nn::Rng rng_;
  PrecisionSpec precision_;
  nn::Linear patch_embed_;
  nn::Param pos_embed_;  // [tokens, dim]
  std::vector<EncoderBlock> blocks_;
  NormLayer final_norm_;
  nn::Linear head_;

  // Forward caches.
  int cached_batch_ = 0;
  std::vector<nn::Tensor> block_outputs_;
  nn::Tensor cached_pooled_;
};

}  // namespace ascend::vit
