#include "vit/sc_inference.h"

#include "runtime/engine.h"

namespace ascend::vit {

double evaluate_sc(VisionTransformer& model, const Dataset& data, const ScInferenceConfig& cfg,
                   int batch_size) {
  // The engine's back-compat SC constructor serves `model` in place as a
  // single registered variant: SC hooks installed on it (LUT-cached,
  // validated bit-exact against the circuit emulators), per-activation
  // emulation parallelised across the worker pool, hooks restored when the
  // engine goes out of scope. Identical numerics to the pre-registry engine.
  runtime::InferenceEngine engine(model, cfg);
  return engine.evaluate(data, batch_size);
}

}  // namespace ascend::vit
