#include "vit/sc_inference.h"

#include "runtime/engine.h"

namespace ascend::vit {

double evaluate_sc(VisionTransformer& model, const Dataset& data, const ScInferenceConfig& cfg,
                   int batch_size) {
  // The engine installs the SC hooks (LUT-cached, validated bit-exact against
  // the circuit emulators), parallelises the per-activation emulation across
  // its worker pool, and restores the model's hooks when it goes out of scope.
  runtime::InferenceEngine engine(model, cfg);
  return engine.evaluate(data, batch_size);
}

}  // namespace ascend::vit
