#include "vit/sc_inference.h"

#include <memory>

#include "vit/train.h"

namespace ascend::vit {

using nn::Tensor;

double evaluate_sc(VisionTransformer& model, const Dataset& data, const ScInferenceConfig& cfg,
                   int batch_size) {
  if (cfg.use_sc_softmax) {
    sc::SoftmaxIterConfig sm = cfg.softmax;
    sm.m = model.config().tokens();
    sm.validate();
    model.set_softmax_hook([sm](const Tensor& scores) {
      const int rows = scores.dim(0), m = scores.dim(1);
      Tensor out({rows, m});
      std::vector<double> row(static_cast<std::size_t>(m));
#pragma omp parallel for schedule(static) firstprivate(row)
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < m; ++c) row[static_cast<std::size_t>(c)] = scores.at(r, c);
        const auto y = sc::softmax_iterative_sc(row, sm);
        for (int c = 0; c < m; ++c) out.at(r, c) = static_cast<float>(y[static_cast<std::size_t>(c)]);
      }
      return out;
    });
  }
  if (cfg.use_sc_gelu) {
    // One shared GELU block; transfer() quantizes input and output exactly as
    // the gate-assisted SI circuit would.
    auto block = std::make_shared<sc::GateAssistedSI>(
        sc::make_gelu_block(cfg.gelu_bsl, -cfg.gelu_range, cfg.gelu_range, 16));
    model.set_gelu_hook([block](const Tensor& x) {
      Tensor y(x.shape());
      for (std::size_t i = 0; i < x.size(); ++i)
        y[i] = static_cast<float>(block->transfer(x[i]));
      return y;
    });
  }

  const double acc = evaluate(model, data, batch_size);
  model.clear_hooks();
  return acc;
}

}  // namespace ascend::vit
