#include "vit/model.h"

#include <stdexcept>

#include "runtime/metrics/trace.h"

namespace ascend::vit {

using nn::Tensor;

// ---------------------------------------------------------------------------
// NormLayer
// ---------------------------------------------------------------------------

NormLayer::NormLayer(NormKind kind, int features) : kind_(kind) {
  if (kind_ == NormKind::kLayerNorm)
    ln_ = std::make_unique<nn::LayerNorm>(features);
  else
    bn_ = std::make_unique<nn::BatchNorm>(features);
}

Tensor NormLayer::forward(const Tensor& x, bool training) {
  return kind_ == NormKind::kLayerNorm ? ln_->forward(x) : bn_->forward(x, training);
}

Tensor NormLayer::infer(const Tensor& x) const {
  return kind_ == NormKind::kLayerNorm ? ln_->infer(x) : bn_->infer(x);
}

Tensor NormLayer::backward(const Tensor& grad) {
  return kind_ == NormKind::kLayerNorm ? ln_->backward(grad) : bn_->backward(grad);
}

void NormLayer::collect_params(std::vector<nn::Param*>& out) {
  if (kind_ == NormKind::kLayerNorm)
    ln_->collect_params(out);
  else
    bn_->collect_params(out);
}

// ---------------------------------------------------------------------------
// Mlp
// ---------------------------------------------------------------------------

Mlp::Mlp(int dim, int hidden, nn::Rng& rng) : fc1_(dim, hidden, rng), fc2_(hidden, dim, rng) {}

Tensor Mlp::forward(const Tensor& x) {
  Tensor h = fc1_.forward(x);
  used_hook_ = static_cast<bool>(hook_);
  h = used_hook_ ? hook_(h) : gelu_.forward(h);
  return fc2_.forward(h);
}

Tensor Mlp::infer(const Tensor& x) const {
  Tensor h = fc1_.infer(x);
  h = hook_ ? hook_(h) : gelu_.infer(h);
  return fc2_.infer(h);
}

Tensor Mlp::backward(const Tensor& grad) {
  if (used_hook_) throw std::logic_error("Mlp::backward: cannot backprop through a GELU hook");
  Tensor g = fc2_.backward(grad);
  g = gelu_.backward(g);
  return fc1_.backward(g);
}

void Mlp::collect_params(std::vector<nn::Param*>& out) {
  fc1_.collect_params(out);
  fc2_.collect_params(out);
}

// ---------------------------------------------------------------------------
// EncoderBlock
// ---------------------------------------------------------------------------

EncoderBlock::EncoderBlock(const VitConfig& cfg, nn::Rng& rng)
    : norm1_(cfg.norm, cfg.dim),
      norm2_(cfg.norm, cfg.dim),
      msa_(cfg.dim, cfg.heads, rng, cfg.approx_softmax_k),
      mlp_(cfg.dim, cfg.dim * cfg.mlp_ratio, rng) {}

Tensor EncoderBlock::forward(const Tensor& x, int batch, int tokens, bool training) {
  Tensor a = norm1_.forward(x, training);
  a = msa_.forward(a, batch, tokens);
  Tensor x1 = rq1_.forward(nn::add(x, a));
  Tensor b = norm2_.forward(x1, training);
  b = mlp_.forward(b);
  return rq2_.forward(nn::add(x1, b));
}

Tensor EncoderBlock::infer(const Tensor& x, int batch, int tokens) const {
  // Layer-group phase spans: no-ops (one thread-local read each) unless the
  // engine traces this forward — see runtime/metrics/trace.h.
  Tensor x1;
  {
    runtime::trace::ScopedSpan span("msa");
    Tensor a = norm1_.infer(x);
    a = msa_.infer(a, batch, tokens);
    x1 = rq1_.infer(nn::add(x, a));
  }
  runtime::trace::ScopedSpan span("mlp");
  Tensor b = norm2_.infer(x1);
  b = mlp_.infer(b);
  return rq2_.infer(nn::add(x1, b));
}

Tensor EncoderBlock::backward(const Tensor& grad) {
  Tensor g = rq2_.backward(grad);
  // g flows to both x1 (identity) and the MLP branch.
  Tensor g_mlp = mlp_.backward(g);
  Tensor g_x1 = nn::add(g, norm2_.backward(g_mlp));
  Tensor g1 = rq1_.backward(g_x1);
  Tensor g_msa = msa_.backward(g1);
  return nn::add(g1, norm1_.backward(g_msa));
}

void EncoderBlock::collect_params(std::vector<nn::Param*>& out) {
  norm1_.collect_params(out);
  msa_.collect_params(out);
  rq1_.collect_params(out);
  norm2_.collect_params(out);
  mlp_.collect_params(out);
  rq2_.collect_params(out);
}

// ---------------------------------------------------------------------------
// VisionTransformer
// ---------------------------------------------------------------------------

VisionTransformer::VisionTransformer(const VitConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      rng_(seed),
      patch_embed_(cfg.patch_dim(), cfg.dim, rng_),
      final_norm_(cfg.norm, cfg.dim),
      head_(cfg.dim, cfg.classes, rng_) {
  pos_embed_.init_shape({cfg_.tokens(), cfg_.dim});
  rng_.fill_normal(pos_embed_.value, 0.0f, 0.02f);
  pos_embed_.no_weight_decay = true;
  blocks_.reserve(static_cast<std::size_t>(cfg_.layers));
  for (int l = 0; l < cfg_.layers; ++l) blocks_.emplace_back(cfg_, rng_);
}

Tensor VisionTransformer::patchify(const Tensor& images) const {
  const int b = images.dim(0);
  const int hw = cfg_.image_size;
  const int p = cfg_.patch_size;
  const int grid = hw / p;
  const int t = cfg_.tokens();
  const int pd = cfg_.patch_dim();
  if (images.dim(1) != cfg_.channels * hw * hw)
    throw std::invalid_argument("VisionTransformer: bad image size");
  Tensor out({b * t, pd});
  for (int img = 0; img < b; ++img) {
    const float* src = images.data() + static_cast<std::size_t>(img) * cfg_.channels * hw * hw;
    for (int gy = 0; gy < grid; ++gy)
      for (int gx = 0; gx < grid; ++gx) {
        float* dst = out.data() + (static_cast<std::size_t>(img) * t + gy * grid + gx) * pd;
        int idx = 0;
        for (int c = 0; c < cfg_.channels; ++c)
          for (int py = 0; py < p; ++py)
            for (int px = 0; px < p; ++px)
              dst[idx++] = src[(c * hw + gy * p + py) * hw + gx * p + px];
      }
  }
  return out;
}

Tensor VisionTransformer::forward(const Tensor& images, bool training) {
  const int batch = images.dim(0);
  const int tokens = cfg_.tokens();
  cached_batch_ = batch;

  Tensor x = patch_embed_.forward(patchify(images));  // [B*T, dim]
  for (int b = 0; b < batch; ++b)
    for (int t = 0; t < tokens; ++t)
      for (int d = 0; d < cfg_.dim; ++d)
        x[(static_cast<std::size_t>(b) * tokens + t) * cfg_.dim + d] +=
            pos_embed_.value[static_cast<std::size_t>(t) * cfg_.dim + d];

  block_outputs_.clear();
  block_outputs_.reserve(blocks_.size());
  for (auto& blk : blocks_) {
    x = blk.forward(x, batch, tokens, training);
    block_outputs_.push_back(x);
  }
  x = final_norm_.forward(x, training);

  // Mean pool over tokens.
  cached_pooled_ = Tensor({batch, cfg_.dim});
  for (int b = 0; b < batch; ++b)
    for (int t = 0; t < tokens; ++t)
      for (int d = 0; d < cfg_.dim; ++d)
        cached_pooled_.at(b, d) += x[(static_cast<std::size_t>(b) * tokens + t) * cfg_.dim + d] /
                                   static_cast<float>(tokens);
  return head_.forward(cached_pooled_);
}

Tensor VisionTransformer::infer(const Tensor& images) const {
  const int batch = images.dim(0);
  const int tokens = cfg_.tokens();

  Tensor x;
  {
    runtime::trace::ScopedSpan span("embed");
    x = patch_embed_.infer(patchify(images));  // [B*T, dim]
    for (int b = 0; b < batch; ++b)
      for (int t = 0; t < tokens; ++t)
        for (int d = 0; d < cfg_.dim; ++d)
          x[(static_cast<std::size_t>(b) * tokens + t) * cfg_.dim + d] +=
              pos_embed_.value[static_cast<std::size_t>(t) * cfg_.dim + d];
  }

  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    runtime::trace::ScopedSpan span("block", static_cast<int>(i));
    x = blocks_[i].infer(x, batch, tokens);
  }

  runtime::trace::ScopedSpan span("head");
  x = final_norm_.infer(x);

  // Mean pool over tokens.
  Tensor pooled({batch, cfg_.dim});
  for (int b = 0; b < batch; ++b)
    for (int t = 0; t < tokens; ++t)
      for (int d = 0; d < cfg_.dim; ++d)
        pooled.at(b, d) += x[(static_cast<std::size_t>(b) * tokens + t) * cfg_.dim + d] /
                           static_cast<float>(tokens);
  return head_.infer(pooled);
}

void VisionTransformer::backward(const Tensor& grad_logits,
                                 const std::vector<Tensor>* feature_grads) {
  const int batch = cached_batch_;
  const int tokens = cfg_.tokens();
  Tensor g_pool = head_.backward(grad_logits);  // [B, dim]

  // Un-pool.
  Tensor g({batch * tokens, cfg_.dim});
  for (int b = 0; b < batch; ++b)
    for (int t = 0; t < tokens; ++t)
      for (int d = 0; d < cfg_.dim; ++d)
        g[(static_cast<std::size_t>(b) * tokens + t) * cfg_.dim + d] =
            g_pool.at(b, d) / static_cast<float>(tokens);

  g = final_norm_.backward(g);
  for (int l = static_cast<int>(blocks_.size()) - 1; l >= 0; --l) {
    if (feature_grads != nullptr && static_cast<std::size_t>(l) < feature_grads->size() &&
        !(*feature_grads)[static_cast<std::size_t>(l)].empty())
      nn::add_inplace(g, (*feature_grads)[static_cast<std::size_t>(l)]);
    g = blocks_[static_cast<std::size_t>(l)].backward(g);
  }

  // Position embedding gradient (sum over batch).
  for (int b = 0; b < batch; ++b)
    for (int t = 0; t < tokens; ++t)
      for (int d = 0; d < cfg_.dim; ++d)
        pos_embed_.grad[static_cast<std::size_t>(t) * cfg_.dim + d] +=
            g[(static_cast<std::size_t>(b) * tokens + t) * cfg_.dim + d];
  patch_embed_.backward(g);
}

std::vector<nn::Param*> VisionTransformer::params() {
  std::vector<nn::Param*> out;
  patch_embed_.collect_params(out);
  out.push_back(&pos_embed_);
  for (auto& blk : blocks_) blk.collect_params(out);
  final_norm_.collect_params(out);
  head_.collect_params(out);
  return out;
}

std::vector<nn::Param*> VisionTransformer::structural_params() {
  std::vector<nn::Param*> out;
  std::vector<nn::Param*> all = params();
  // Quantizer steps are scalar [1] params flagged no_weight_decay; filter by
  // identity instead: rebuild the list without the quantizer contributions.
  out.reserve(all.size());
  std::vector<nn::Param*> quant;
  for (auto& blk : blocks_) {
    blk.msa().qkv().weight_quant().collect_params(quant);
    blk.msa().qkv().input_quant().collect_params(quant);
    blk.msa().proj().weight_quant().collect_params(quant);
    blk.msa().proj().input_quant().collect_params(quant);
    blk.mlp().fc1().weight_quant().collect_params(quant);
    blk.mlp().fc1().input_quant().collect_params(quant);
    blk.mlp().fc2().weight_quant().collect_params(quant);
    blk.mlp().fc2().input_quant().collect_params(quant);
    blk.residual_quant1().collect_params(quant);
    blk.residual_quant2().collect_params(quant);
  }
  for (nn::Param* p : all) {
    bool is_quant = false;
    for (nn::Param* q : quant)
      if (p == q) {
        is_quant = true;
        break;
      }
    if (!is_quant) out.push_back(p);
  }
  return out;
}

void VisionTransformer::copy_weights_from(VisionTransformer& other) {
  auto dst = structural_params();
  auto src = other.structural_params();
  if (dst.size() != src.size())
    throw std::invalid_argument("copy_weights_from: topology mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (dst[i]->value.shape() != src[i]->value.shape())
      throw std::invalid_argument("copy_weights_from: parameter shape mismatch");
    dst[i]->value = src[i]->value;
  }
}

std::unique_ptr<VisionTransformer> VisionTransformer::clone_for_serving() {
  // The constructor's random init is immediately overwritten; the seed only
  // feeds that throwaway init.
  auto out = std::make_unique<VisionTransformer>(cfg_, /*seed=*/0);
  out->copy_weights_from(*this);
  out->precision_ = precision_;

  // Quantizer calibration: LsqQuantizer's copy assignment carries the spec
  // and the learned step but deliberately drops frozen snapshots, so the
  // clone re-freezes against its own weights.
  const auto copy_linear_quants = [](nn::Linear& dst, nn::Linear& src) {
    dst.weight_quant() = src.weight_quant();
    dst.input_quant() = src.input_quant();
  };
  // BN running statistics are not Params, so copy_weights_from misses them.
  const auto copy_norm_state = [](NormLayer& dst, NormLayer& src) {
    if (nn::BatchNorm* sbn = src.batch_norm()) {
      nn::BatchNorm* dbn = dst.batch_norm();
      dbn->running_mean() = sbn->running_mean();
      dbn->running_var() = sbn->running_var();
      dbn->thaw();
    }
  };
  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    EncoderBlock& src = blocks_[l];
    EncoderBlock& dst = out->blocks_[l];
    copy_linear_quants(dst.msa().qkv(), src.msa().qkv());
    copy_linear_quants(dst.msa().proj(), src.msa().proj());
    copy_linear_quants(dst.mlp().fc1(), src.mlp().fc1());
    copy_linear_quants(dst.mlp().fc2(), src.mlp().fc2());
    dst.residual_quant1() = src.residual_quant1();
    dst.residual_quant2() = src.residual_quant2();
    dst.msa().set_softmax_kind(src.msa().softmax_kind());
    copy_norm_state(dst.norm1(), src.norm1());
    copy_norm_state(dst.norm2(), src.norm2());
  }
  copy_norm_state(out->final_norm_, final_norm_);
  return out;
}

void VisionTransformer::apply_precision(const PrecisionSpec& spec) {
  precision_ = spec;
  const nn::QuantSpec wq =
      spec.w_bsl > 0 ? nn::QuantSpec::from_bsl(spec.w_bsl) : nn::QuantSpec::off();
  const nn::QuantSpec aq =
      spec.a_bsl > 0 ? nn::QuantSpec::from_bsl(spec.a_bsl) : nn::QuantSpec::off();
  const nn::QuantSpec rq =
      spec.r_bsl > 0 ? nn::QuantSpec::from_bsl(spec.r_bsl) : nn::QuantSpec::off();
  for (auto& blk : blocks_) {
    blk.msa().qkv().set_weight_quant(wq);
    blk.msa().qkv().set_input_quant(aq);
    blk.msa().proj().set_weight_quant(wq);
    blk.msa().proj().set_input_quant(aq);
    blk.mlp().fc1().set_weight_quant(wq);
    blk.mlp().fc1().set_input_quant(aq);
    blk.mlp().fc2().set_weight_quant(wq);
    blk.mlp().fc2().set_input_quant(aq);
    blk.residual_quant1().reset_spec(rq);
    blk.residual_quant2().reset_spec(rq);
  }
}

void VisionTransformer::set_softmax_kind(nn::SoftmaxKind kind) {
  for (auto& blk : blocks_) blk.msa().set_softmax_kind(kind);
}

void VisionTransformer::set_softmax_hook(std::function<Tensor(const Tensor&)> hook) {
  for (auto& blk : blocks_) blk.msa().set_softmax_hook(hook);
}

void VisionTransformer::set_gelu_hook(std::function<Tensor(const Tensor&)> hook) {
  for (auto& blk : blocks_) blk.mlp().set_gelu_hook(hook);
}

void VisionTransformer::clear_hooks() {
  for (auto& blk : blocks_) {
    blk.msa().clear_softmax_hook();
    blk.mlp().clear_gelu_hook();
  }
}

}  // namespace ascend::vit
