#pragma once
// dataset.h — synthetic vision classification task (CIFAR stand-in).
//
// CIFAR10/100 cannot be redistributed in this repo, so the accuracy
// experiments run on a procedurally generated 32x32x3 task that exercises
// the identical training/quantization code paths (DESIGN.md section 1):
// each class is defined by a shape family (disk / square / ring / stripes /
// checker), a class colour, and a texture frequency; samples draw position,
// size and colour jitter plus pixel noise, so the task is learnable but not
// linearly trivial. `classes = 10` mirrors CIFAR10, `classes = 20` is the
// fine-grained stand-in for CIFAR100 (more classes, closer class pairs).

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace ascend::vit {

struct Dataset {
  nn::Tensor images;        ///< [N, channels*H*W], values roughly in [-1, 1]
  std::vector<int> labels;  ///< class indices
  int classes = 0;
  int image_size = 32;
  int channels = 3;

  int size() const { return images.empty() ? 0 : images.dim(0); }
};

/// Generate `n` samples over `classes` classes.
Dataset make_synthetic_vision(int n, int classes, std::uint64_t seed, int image_size = 32);

struct Batch {
  nn::Tensor images;
  std::vector<int> labels;
};

/// Gather the given sample indices into a batch.
Batch take_batch(const Dataset& data, const std::vector<int>& indices);

}  // namespace ascend::vit
