#include "vit/servable.h"

#include <stdexcept>
#include <thread>
#include <utility>

#include "sc/gate_si.h"
#include "sc/softmax_iter.h"

namespace ascend::vit {

namespace {

using nn::Tensor;

/// Servable over a VisionTransformer — owned serving clone or a caller-owned
/// instance — with optional SC nonlinear-block hooks installed on it for the
/// servable's lifetime. infer() is const and re-entrant: the model's const
/// infer path writes no member state, and the hooks only read immutable LUTs
/// (or copy per-call emulator instances from an immutable prototype).
class VitServable final : public runtime::Servable {
 public:
  VitServable(VisionTransformer* model, std::unique_ptr<VisionTransformer> owned,
              std::string variant_id, std::shared_ptr<const void> retain = nullptr)
      : retain_(std::move(retain)),
        model_(model),
        owned_(std::move(owned)),
        variant_id_(std::move(variant_id)) {
    const VitConfig& cfg = model_->config();
    input_dim_ = cfg.channels * cfg.image_size * cfg.image_size;
    output_dim_ = cfg.classes;
  }

  /// Installs the SC hooks from `cfg`; the model's hooks belong to this
  /// servable until destruction.
  void install_sc_hooks(const ScInferenceConfig& cfg, const ScServableOptions& opts) {
    if (!opts.pool && !owned_pool_)
      owned_pool_ = std::make_unique<runtime::ThreadPool>(
          opts.threads > 0 ? opts.threads : default_threads());
    runtime::ThreadPool* pool = opts.pool ? opts.pool : owned_pool_.get();
    runtime::TfCache* cache = opts.cache ? opts.cache : &runtime::global_tf_cache();
    hooks_installed_ = true;
    try {
      if (cfg.use_sc_softmax) {
        sc::SoftmaxIterConfig sm = cfg.softmax;
        sm.m = model_->config().tokens();
        sm.validate();
        const runtime::SoftmaxLut* lut = opts.use_tf_cache ? &cache->softmax(sm) : nullptr;
        model_->set_softmax_hook([sm, lut, pool](const Tensor& scores) {
          const int rows = scores.dim(0), m = scores.dim(1);
          // `out` is carved from the forward's arena when one is installed;
          // the row scratch is per-thread and grow-only — at steady state
          // this hook performs zero heap allocations (the emulated
          // softmax_iterative_sc fallback still allocates internally).
          Tensor out = Tensor::uninitialized({rows, m});
          pool->parallel_for(0, rows, [&](int lo, int hi) {
            thread_local std::vector<double> row, y;
            if (row.size() < static_cast<std::size_t>(m)) {
              row.resize(static_cast<std::size_t>(m));
              y.resize(static_cast<std::size_t>(m));
            }
            for (int r = lo; r < hi; ++r) {
              for (int c = 0; c < m; ++c) row[static_cast<std::size_t>(c)] = scores.at(r, c);
              if (lut) {
                (*lut)(row.data(), y.data());
              } else {
                row.resize(static_cast<std::size_t>(m));
                const auto yv = sc::softmax_iterative_sc(row, sm);
                std::copy(yv.begin(), yv.end(), y.begin());
              }
              for (int c = 0; c < m; ++c)
                out.at(r, c) = static_cast<float>(y[static_cast<std::size_t>(c)]);
            }
          });
          return out;
        });
      }
      if (cfg.use_sc_gelu) {
        const runtime::GateSiLut* lut = nullptr;
        std::shared_ptr<const sc::GateAssistedSI> proto;
        if (opts.use_tf_cache)
          lut = &cache->gelu(cfg.gelu_bsl, -cfg.gelu_range, cfg.gelu_range, 16);
        else
          proto = std::make_shared<const sc::GateAssistedSI>(
              sc::make_gelu_block(cfg.gelu_bsl, -cfg.gelu_range, cfg.gelu_range, 16));
        model_->set_gelu_hook([lut, proto, pool](const Tensor& x) {
          // Per-call emulator instance: concurrent forwards never share one
          // (reads within the call are const, so the chunks may share it).
          std::unique_ptr<const sc::GateAssistedSI> block;
          if (!lut) block = std::make_unique<const sc::GateAssistedSI>(*proto);
          Tensor y = Tensor::uninitialized(x.shape());
          pool->parallel_for(0, static_cast<int>(x.size()), [&](int lo, int hi) {
            for (int i = lo; i < hi; ++i) {
              const std::size_t s = static_cast<std::size_t>(i);
              y[s] = static_cast<float>(lut ? (*lut)(x[s]) : block->transfer(x[s]));
            }
          });
          return y;
        });
      }
    } catch (...) {
      // A half-installed hook must not outlive the failed construction.
      model_->clear_hooks();
      hooks_installed_ = false;
      throw;
    }
  }

  ~VitServable() override {
    if (hooks_installed_) model_->clear_hooks();
  }

  Tensor infer(const Tensor& batch) const override {
    return static_cast<const VisionTransformer*>(model_)->infer(batch);
  }
  int input_dim() const override { return input_dim_; }
  int output_dim() const override { return output_dim_; }
  const std::string& variant_id() const override { return variant_id_; }

 private:
  static int default_threads() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
  }

  // Declared before owned_ so it is destroyed *after* the model: when the
  // model's weights are borrowed views into an mmap'd checkpoint, the anchor
  // (the MmapCheckpoint) must outlive every tensor pointing into it.
  std::shared_ptr<const void> retain_;
  VisionTransformer* model_;
  std::unique_ptr<VisionTransformer> owned_;
  std::unique_ptr<runtime::ThreadPool> owned_pool_;
  std::string variant_id_;
  int input_dim_ = 0;
  int output_dim_ = 0;
  bool hooks_installed_ = false;
};

}  // namespace

std::shared_ptr<runtime::Servable> make_fp32_servable(VisionTransformer& model,
                                                      std::string variant_id) {
  std::unique_ptr<VisionTransformer> clone = model.clone_for_serving();
  clone->apply_precision(PrecisionSpec::fp());
  VisionTransformer* raw = clone.get();
  return std::make_shared<VitServable>(raw, std::move(clone), std::move(variant_id));
}

std::shared_ptr<runtime::Servable> make_packed_ternary_servable(VisionTransformer& model,
                                                                std::string variant_id) {
  const PrecisionSpec& p = model.precision();
  if (p.w_bsl != 2 || p.a_bsl != 2)
    throw std::invalid_argument(
        "make_packed_ternary_servable: model precision must be ternary W2-A2, got " + p.name());
  std::unique_ptr<VisionTransformer> clone = model.clone_for_serving();
  VisionTransformer* raw = clone.get();
  return std::make_shared<VitServable>(raw, std::move(clone), std::move(variant_id));
}

std::shared_ptr<runtime::Servable> make_sc_servable(VisionTransformer& model,
                                                    const ScInferenceConfig& cfg,
                                                    ScServableOptions opts,
                                                    std::string variant_id) {
  std::unique_ptr<VisionTransformer> clone = model.clone_for_serving();
  VisionTransformer* raw = clone.get();
  auto servable = std::make_shared<VitServable>(raw, std::move(clone), std::move(variant_id));
  servable->install_sc_hooks(cfg, opts);
  return servable;
}

std::shared_ptr<runtime::Servable> make_sc_servable_in_place(VisionTransformer& model,
                                                             const ScInferenceConfig& cfg,
                                                             ScServableOptions opts,
                                                             std::string variant_id) {
  auto servable = std::make_shared<VitServable>(&model, nullptr, std::move(variant_id));
  servable->install_sc_hooks(cfg, opts);
  return servable;
}

std::shared_ptr<runtime::Servable> make_servable_over(std::unique_ptr<VisionTransformer> model,
                                                      std::string variant_id,
                                                      std::shared_ptr<const void> retain) {
  VisionTransformer* raw = model.get();
  return std::make_shared<VitServable>(raw, std::move(model), std::move(variant_id),
                                       std::move(retain));
}

std::shared_ptr<runtime::Servable> make_sc_servable_over(std::unique_ptr<VisionTransformer> model,
                                                         const ScInferenceConfig& cfg,
                                                         ScServableOptions opts,
                                                         std::string variant_id,
                                                         std::shared_ptr<const void> retain) {
  VisionTransformer* raw = model.get();
  auto servable = std::make_shared<VitServable>(raw, std::move(model), std::move(variant_id),
                                                std::move(retain));
  servable->install_sc_hooks(cfg, opts);
  return servable;
}

}  // namespace ascend::vit
