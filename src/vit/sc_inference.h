#pragma once
// sc_inference.h — run a trained ViT with bit-true SC circuit emulation.
//
// The SC-friendly low-precision model's linear algebra on thermometer grids
// is exact (the truth-table multiplier and BSN adder introduce no error), so
// the accelerator-vs-float difference comes from the nonlinear blocks. This
// module swaps those in at inference:
//   * attention softmax -> the iterative approximate softmax SC circuit,
//     per [By, s1, s2, k] configuration (Table VI accuracy column);
//   * GELU -> the gate-assisted SI block transfer function.

#include "sc/gate_si.h"
#include "sc/softmax_iter.h"
#include "vit/dataset.h"
#include "vit/model.h"

namespace ascend::vit {

struct ScInferenceConfig {
  bool use_sc_softmax = true;
  sc::SoftmaxIterConfig softmax;  ///< m is overridden with the model's token count
  bool use_sc_gelu = false;
  int gelu_bsl = 8;               ///< data BSL of the gate-assisted SI GELU block
  double gelu_range = 6.0;        ///< +- input range covered by the GELU block
};

/// Top-1 accuracy with the SC nonlinear blocks swapped in. The model's hooks
/// are restored on exit. Thin wrapper over runtime::InferenceEngine (see
/// runtime/engine.h), which serves the nonlinear blocks from the tf_cache
/// LUTs and spreads the per-activation SC emulation across a worker pool.
double evaluate_sc(VisionTransformer& model, const Dataset& data, const ScInferenceConfig& cfg,
                   int batch_size = 128);

}  // namespace ascend::vit
