#pragma once
// train.h — training loops and the ASCEND two-stage pipeline (Section V).
//
// Stage 1, progressive quantization:
//   FP LN-ViT  (reference teacher)
//   FP BN-ViT  (LN -> BN swap, KD from LN-ViT)
//   W16-A16-R16  (init + teacher: FP BN-ViT)
//   W16-A2-R16   (init: previous step; teacher: W16-A16-R16)
//   W2-A2-R16    (init: previous step; teacher: W16-A16-R16)
// KD objective: Loss = CE + KL(Zs, Zt) + beta/M * sum_i MSE(S_i, T_i), beta=2.
//
// Stage 2, approximate-softmax-aware fine-tuning: swap exact softmax for the
// differentiable iterative approximation and fine-tune briefly at low LR.

#include <cstdint>
#include <memory>

#include "vit/dataset.h"
#include "vit/model.h"

namespace ascend::vit {

struct TrainOptions {
  int epochs = 10;
  int batch_size = 64;
  float lr = 7.5e-4f;
  float weight_decay = 0.01f;
  float kd_beta = 2.0f;   ///< feature-MSE coefficient (paper: 2)
  bool use_kd = true;     ///< ignored when teacher == nullptr
  std::uint64_t seed = 7;
  bool verbose = false;
};

/// Top-1 accuracy on a dataset (eval mode).
double evaluate(VisionTransformer& model, const Dataset& data, int batch_size = 128);

/// Train `student` on `data`; when `teacher` is non-null the KD losses are
/// added. Returns final training loss.
double train_model(VisionTransformer& student, VisionTransformer* teacher, const Dataset& data,
                   const TrainOptions& opt);

/// Knobs for the full pipeline run (bench_table5 / bench_table6).
struct PipelineOptions {
  VitConfig config;            ///< topology (norm field is ignored; set per stage)
  int stage_epochs = 12;       ///< epochs per progressive-quantization step
  int finetune_epochs = 4;     ///< stage-2 epochs
  float stage_lr = 7.5e-4f;    ///< paper's stage-1 initial LR
  float finetune_lr = 5e-6f;   ///< paper's stage-2 initial LR (scaled up for the short schedule)
  int batch_size = 64;
  std::uint64_t seed = 7;
  bool verbose = false;
};

/// Accuracy of every Table V row plus the trained models needed downstream.
struct PipelineResult {
  double acc_fp_ln = 0.0;           ///< "FP LN-ViT"
  double acc_fp_bn = 0.0;           ///< BN-swapped FP model (paper: <0.1% off LN)
  double acc_baseline_direct = 0.0; ///< "Baseline low-precision BN-ViT"
  double acc_progressive = 0.0;     ///< "+ progressive quant"
  double acc_approx = 0.0;          ///< "+ appr softmax" (no fine-tune)
  double acc_approx_ft = 0.0;       ///< "+ appr-aware ft"
  std::unique_ptr<VisionTransformer> sc_friendly;  ///< final W2-A2-R16 model (approx softmax)
};

/// Run the complete two-stage pipeline and fill every Table V row.
PipelineResult run_ascend_pipeline(const PipelineOptions& opt, const Dataset& train_set,
                                   const Dataset& test_set);

}  // namespace ascend::vit
