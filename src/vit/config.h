#pragma once
// config.h — ViT topology and precision configuration.
//
// The paper evaluates a compact ViT (7 layers, 4 heads, following [24]) in
// the W2-A2-R16 precision regime: weights and activations on 2-bit-BSL
// thermometer grids (3 levels), residuals on 16-bit BSL (17 levels). The
// default topology here is CPU-scaled for the synthetic dataset (DESIGN.md
// section 1); `paper_topology()` returns the 7-layer/4-head shape.

#include <string>

namespace ascend::vit {

/// W/A/R bitstream lengths; 0 disables quantization (full precision).
struct PrecisionSpec {
  int w_bsl = 0;
  int a_bsl = 0;
  int r_bsl = 0;

  static PrecisionSpec fp() { return {0, 0, 0}; }
  static PrecisionSpec w16a16r16() { return {16, 16, 16}; }
  static PrecisionSpec w16a2r16() { return {16, 2, 16}; }
  static PrecisionSpec w2a2r16() { return {2, 2, 16}; }
  std::string name() const;
  bool is_fp() const { return w_bsl == 0 && a_bsl == 0 && r_bsl == 0; }
};

enum class NormKind { kLayerNorm, kBatchNorm };

struct VitConfig {
  int image_size = 32;
  int patch_size = 8;
  int channels = 3;
  int dim = 64;
  int layers = 4;
  int heads = 4;
  int mlp_ratio = 2;
  int classes = 10;
  NormKind norm = NormKind::kBatchNorm;
  int approx_softmax_k = 3;  ///< k used when the approximate softmax is on

  int tokens() const { return (image_size / patch_size) * (image_size / patch_size); }
  int patch_dim() const { return channels * patch_size * patch_size; }

  /// The paper's lightweight topology (7 layers, 4 heads, 64 tokens).
  static VitConfig paper_topology();
  /// CPU-scaled default used by the training benches.
  static VitConfig bench_topology(int classes = 10);
};

}  // namespace ascend::vit
