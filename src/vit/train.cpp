#include "vit/train.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <random>

#include "nn/loss.h"
#include "nn/optim.h"

namespace ascend::vit {

using nn::Tensor;

double evaluate(VisionTransformer& model, const Dataset& data, int batch_size) {
  const int n = data.size();
  int correct = 0;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    std::vector<int> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    const Batch batch = take_batch(data, idx);
    const Tensor logits = model.forward(batch.images, /*training=*/false);
    for (int r = 0; r < logits.dim(0); ++r) {
      int best = 0;
      for (int c = 1; c < logits.dim(1); ++c)
        if (logits.at(r, c) > logits.at(r, best)) best = c;
      if (best == batch.labels[static_cast<std::size_t>(r)]) ++correct;
    }
  }
  return 100.0 * correct / std::max(n, 1);
}

double train_model(VisionTransformer& student, VisionTransformer* teacher, const Dataset& data,
                   const TrainOptions& opt) {
  std::mt19937_64 shuffle_rng(opt.seed);
  const int n = data.size();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  // Warm-up forward initialises any freshly configured LSQ steps so they are
  // present in the optimizer's parameter list.
  {
    std::vector<int> idx(static_cast<std::size_t>(std::min(8, n)));
    std::iota(idx.begin(), idx.end(), 0);
    const Batch warm = take_batch(data, idx);
    (void)student.forward(warm.images, /*training=*/true);
  }
  nn::AdamW optim(student.params(), opt.lr, 0.9f, 0.999f, 1e-8f, opt.weight_decay);

  const long long steps_per_epoch = (n + opt.batch_size - 1) / opt.batch_size;
  const long long total_steps = steps_per_epoch * opt.epochs;
  long long step = 0;
  double last_loss = 0.0;

  for (int epoch = 0; epoch < opt.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), shuffle_rng);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int start = 0; start < n; start += opt.batch_size) {
      const int end = std::min(n, start + opt.batch_size);
      std::vector<int> idx(order.begin() + start, order.begin() + end);
      const Batch batch = take_batch(data, idx);

      optim.zero_grad();
      optim.set_lr(nn::cosine_lr(opt.lr, step, total_steps));
      const Tensor logits = student.forward(batch.images, /*training=*/true);

      nn::LossResult ce = nn::cross_entropy(logits, batch.labels);
      double loss = ce.value;
      Tensor grad_logits = ce.grad;
      std::vector<Tensor> feature_grads;

      if (teacher != nullptr && opt.use_kd) {
        const Tensor t_logits = teacher->forward(batch.images, /*training=*/false);
        nn::LossResult kl = nn::kl_distill(logits, t_logits);
        loss += kl.value;
        nn::add_inplace(grad_logits, kl.grad);

        const auto& s_feats = student.block_outputs();
        const auto& t_feats = teacher->block_outputs();
        const std::size_t m = std::min(s_feats.size(), t_feats.size());
        feature_grads.resize(s_feats.size());
        for (std::size_t i = 0; i < m; ++i) {
          nn::LossResult fm = nn::mse(s_feats[i], t_feats[i]);
          // Normalise by the teacher feature power: keeps the distillation
          // term scale-free (an LN teacher and a BN student have very
          // different feature magnitudes, and raw MSE would swamp the task
          // loss in the LN->BN swap stage).
          double power = 0.0;
          for (std::size_t e = 0; e < t_feats[i].size(); ++e)
            power += static_cast<double>(t_feats[i][e]) * t_feats[i][e];
          power /= std::max<std::size_t>(t_feats[i].size(), 1);
          const float coeff = opt.kd_beta /
                              (static_cast<float>(std::max<std::size_t>(m, 1)) *
                               static_cast<float>(std::max(power, 1e-3)));
          loss += coeff * fm.value;
          feature_grads[i] = nn::scale(fm.grad, coeff);
        }
      }

      student.backward(grad_logits, feature_grads.empty() ? nullptr : &feature_grads);
      optim.step();
      ++step;
      epoch_loss += loss;
      ++batches;
    }
    last_loss = epoch_loss / std::max(batches, 1);
    if (opt.verbose)
      std::printf("  epoch %2d/%d  loss %.4f\n", epoch + 1, opt.epochs, last_loss);
  }
  return last_loss;
}

PipelineResult run_ascend_pipeline(const PipelineOptions& opt, const Dataset& train_set,
                                   const Dataset& test_set) {
  PipelineResult res;
  TrainOptions tr;
  tr.epochs = opt.stage_epochs;
  tr.batch_size = opt.batch_size;
  tr.lr = opt.stage_lr;
  tr.seed = opt.seed;
  tr.verbose = opt.verbose;

  auto log = [&](const char* msg) {
    if (opt.verbose) std::printf("[pipeline] %s\n", msg);
  };

  // --- Reference: FP LN-ViT ------------------------------------------------
  VitConfig ln_cfg = opt.config;
  ln_cfg.norm = NormKind::kLayerNorm;
  VisionTransformer fp_ln(ln_cfg, opt.seed);
  log("training FP LN-ViT");
  train_model(fp_ln, nullptr, train_set, tr);
  res.acc_fp_ln = evaluate(fp_ln, test_set);

  // --- FP BN-ViT (LN -> BN swap with KD) ------------------------------------
  VitConfig bn_cfg = opt.config;
  bn_cfg.norm = NormKind::kBatchNorm;
  VisionTransformer fp_bn(bn_cfg, opt.seed + 1);
  log("training FP BN-ViT (KD from LN-ViT)");
  train_model(fp_bn, &fp_ln, train_set, tr);
  res.acc_fp_bn = evaluate(fp_bn, test_set);

  // --- Baseline: direct W2-A2-R16 quantization (with KD, no progression) ----
  {
    VisionTransformer direct(bn_cfg, opt.seed + 2);
    direct.apply_precision(PrecisionSpec::w2a2r16());
    log("training baseline direct W2-A2-R16 (KD from FP BN-ViT)");
    train_model(direct, &fp_bn, train_set, tr);
    res.acc_baseline_direct = evaluate(direct, test_set);
  }

  // --- Progressive quantization ---------------------------------------------
  // Step 1: W16-A16-R16, init + teacher = FP BN-ViT.
  VisionTransformer w16(bn_cfg, opt.seed + 3);
  w16.copy_weights_from(fp_bn);
  w16.apply_precision(PrecisionSpec::w16a16r16());
  log("progressive step 1: W16-A16-R16");
  train_model(w16, &fp_bn, train_set, tr);

  // Step 2: W16-A2-R16, init = step 1, teacher = W16-A16-R16.
  VisionTransformer w16a2(bn_cfg, opt.seed + 4);
  w16a2.copy_weights_from(w16);
  w16a2.apply_precision(PrecisionSpec::w16a2r16());
  log("progressive step 2: W16-A2-R16");
  train_model(w16a2, &w16, train_set, tr);

  // Step 3: W2-A2-R16, init = step 2, teacher = W16-A16-R16.
  auto w2a2 = std::make_unique<VisionTransformer>(bn_cfg, opt.seed + 5);
  w2a2->copy_weights_from(w16a2);
  w2a2->apply_precision(PrecisionSpec::w2a2r16());
  log("progressive step 3: W2-A2-R16");
  train_model(*w2a2, &w16, train_set, tr);
  res.acc_progressive = evaluate(*w2a2, test_set);

  // --- Stage 2: approximate softmax ------------------------------------------
  w2a2->set_softmax_kind(nn::SoftmaxKind::kApprox);
  res.acc_approx = evaluate(*w2a2, test_set);

  TrainOptions ft = tr;
  ft.epochs = opt.finetune_epochs;
  ft.lr = opt.finetune_lr;
  log("stage 2: approx-softmax-aware fine-tuning");
  train_model(*w2a2, &w16, train_set, ft);
  res.acc_approx_ft = evaluate(*w2a2, test_set);

  res.sc_friendly = std::move(w2a2);
  return res;
}

}  // namespace ascend::vit
