#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "nn/ops.h"

namespace ascend::nn {

LossResult cross_entropy(const Tensor& logits, const std::vector<int>& labels) {
  if (logits.rank() != 2 || logits.dim(0) != static_cast<int>(labels.size()))
    throw std::invalid_argument("cross_entropy: bad shapes");
  const int n = logits.dim(0), c = logits.dim(1);
  const Tensor p = softmax_rows(logits);
  LossResult res;
  res.grad = Tensor({n, c});
  double loss = 0.0;
  for (int r = 0; r < n; ++r) {
    const int y = labels[static_cast<std::size_t>(r)];
    if (y < 0 || y >= c) throw std::invalid_argument("cross_entropy: label out of range");
    loss -= std::log(std::max(p.at(r, y), 1e-12f));
    for (int j = 0; j < c; ++j)
      res.grad.at(r, j) = (p.at(r, j) - (j == y ? 1.0f : 0.0f)) / static_cast<float>(n);
  }
  res.value = loss / n;
  return res;
}

LossResult kl_distill(const Tensor& student_logits, const Tensor& teacher_logits) {
  check_same_shape(student_logits, teacher_logits, "kl_distill");
  const int n = student_logits.dim(0), c = student_logits.dim(1);
  const Tensor ps = softmax_rows(student_logits);
  const Tensor pt = softmax_rows(teacher_logits);
  LossResult res;
  res.grad = Tensor({n, c});
  double loss = 0.0;
  for (int r = 0; r < n; ++r)
    for (int j = 0; j < c; ++j) {
      const float t = pt.at(r, j);
      const float s = std::max(ps.at(r, j), 1e-12f);
      if (t > 0.0f) loss += t * (std::log(std::max(t, 1e-12f)) - std::log(s));
      res.grad.at(r, j) = (ps.at(r, j) - t) / static_cast<float>(n);
    }
  res.value = loss / n;
  return res;
}

LossResult mse(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mse");
  LossResult res;
  res.grad = Tensor(a.shape());
  double loss = 0.0;
  const auto n = static_cast<double>(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    loss += static_cast<double>(d) * d;
    res.grad[i] = 2.0f * d / static_cast<float>(n);
  }
  res.value = loss / n;
  return res;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const int n = logits.dim(0), c = logits.dim(1);
  int correct = 0;
  for (int r = 0; r < n; ++r) {
    int best = 0;
    for (int j = 1; j < c; ++j)
      if (logits.at(r, j) > logits.at(r, best)) best = j;
    if (best == labels[static_cast<std::size_t>(r)]) ++correct;
  }
  return static_cast<double>(correct) / n;
}

}  // namespace ascend::nn
