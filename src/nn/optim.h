#pragma once
// optim.h — AdamW ([26]) with cosine learning-rate decay.

#include <vector>

#include "nn/quant.h"

namespace ascend::nn {

class AdamW {
 public:
  AdamW(std::vector<Param*> params, float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
        float eps = 1e-8f, float weight_decay = 0.01f);

  void zero_grad();
  void step();

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  /// Replace the parameter set (used after re-wiring quantizers).
  void rebind(std::vector<Param*> params);

 private:
  std::vector<Param*> params_;
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  long long t_ = 0;
};

/// Cosine decay from `base_lr` to ~0 over `total_steps`.
float cosine_lr(float base_lr, long long step, long long total_steps);

}  // namespace ascend::nn
