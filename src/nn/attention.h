#pragma once
// attention.h — multi-head self-attention with swappable softmax.
//
// The softmax over attention scores can be (a) exact, (b) the differentiable
// iterative approximation (training stage 2), or (c) an arbitrary
// inference-time hook — which is how the SC-circuit emulation of
// vit/sc_inference.h injects the bit-true softmax block per configuration.

#include <functional>
#include <vector>

#include "nn/approx_softmax.h"
#include "nn/module.h"

namespace ascend::nn {

enum class SoftmaxKind { kExact, kApprox };

class MultiHeadSelfAttention {
 public:
  MultiHeadSelfAttention(int dim, int heads, Rng& rng, int approx_k = 3);

  /// x: [B*T, dim] (token-major). Returns [B*T, dim].
  Tensor forward(const Tensor& x, int batch, int tokens);
  Tensor backward(const Tensor& grad_out);
  /// Re-entrant inference forward: all activation state lives on the call
  /// stack, so concurrent calls are safe. The softmax hook (if set) is
  /// invoked per call and must itself be thread-safe. Per-head Q·Kᵀ and
  /// attn·V products run through the strided blocked-GEMM kernels
  /// (nn/gemm.h) reading panels straight out of the fused qkv projection —
  /// no per-head Q/K/V tensors are ever allocated on this path.
  Tensor infer(const Tensor& x, int batch, int tokens) const;

  void set_softmax_kind(SoftmaxKind kind) { softmax_kind_ = kind; }
  SoftmaxKind softmax_kind() const { return softmax_kind_; }
  ApproxSoftmax& approx_softmax() { return approx_sm_; }

  /// Inference-only softmax replacement applied to the raw score rows
  /// [B*H*T, T]; supersedes softmax_kind when set. Backward through a hook
  /// is not supported.
  void set_softmax_hook(std::function<Tensor(const Tensor&)> hook) { hook_ = std::move(hook); }
  void clear_softmax_hook() { hook_ = nullptr; }

  Linear& qkv() { return qkv_; }
  Linear& proj() { return proj_; }
  void collect_params(std::vector<Param*>& out);

  int dim() const { return dim_; }
  int heads() const { return heads_; }

 private:
  int dim_, heads_, dh_;
  Linear qkv_, proj_;
  SoftmaxKind softmax_kind_ = SoftmaxKind::kExact;
  ApproxSoftmax approx_sm_;
  std::function<Tensor(const Tensor&)> hook_;

  // Forward caches.
  int batch_ = 0, tokens_ = 0;
  bool used_hook_ = false;
  Tensor cached_q_, cached_k_, cached_v_;  // [B*H*T, dh]
  Tensor cached_attn_;                     // [B*H*T, T]
};

}  // namespace ascend::nn
