#pragma once
// module.h — network layers with explicit forward/backward passes.
//
// Each layer caches what its backward pass needs during forward. Gradients
// accumulate into Param::grad; the trainer zeroes them between steps.
//
// Every layer also exposes a const, re-entrant `infer` path that reads
// parameters / running statistics but writes no member state, so whole-model
// forwards can run concurrently (the serving runtime depends on this).
// `infer` is bit-exact with the corresponding training-path forward in
// evaluation mode once the model is calibrated (LSQ quantizer steps
// initialised by a prior forward); see LsqQuantizer::infer for the
// uncalibrated fallback.

#include <atomic>
#include <mutex>
#include <vector>

#include "nn/ops.h"
#include "nn/quant.h"
#include "nn/rng.h"
#include "nn/tensor.h"

namespace ascend::nn {

/// Fully connected layer, optionally with LSQ weight/input quantizers
/// (ASCEND's W / A precision knobs).
///
/// Serving-path weight snapshot: the weight matrix is immutable while
/// serving, so infer() quantizes it through the weight quantizer's frozen
/// snapshot (LsqQuantizer::frozen_infer) — built lazily on the first infer()
/// and bit-exact with per-call re-quantization. Under ternary weight AND
/// input specs (the W2A2 serving regime) infer() instead serves from the
/// packed-ternary snapshot (LsqQuantizer::frozen_packed_ternary) through the
/// multiply-free gemm::ternary_matmul kernel — adds/subtracts over
/// word-packed sign bit-planes; dense blocked GEMM otherwise (including
/// ternary weights against non-ternary activations, where the sign-plane
/// fallback would lose to the blocked kernels). ASCEND_GEMM=reference disables
/// the packed path too, reproducing the seed's dense behaviour bit-exactly.
/// Every snapshot is invalidated ("thawed") by any training-path
/// forward()/backward(), by set_weight_quant()/set_input_quant() (the
/// apply_precision path), and by thaw(). Mutating weight() directly outside
/// the training loop requires a manual thaw() before the next infer().
class Linear {
 public:
  Linear(int in_features, int out_features, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x);             // [N, in] -> [N, out]
  Tensor backward(const Tensor& grad_out);     // returns grad wrt x
  /// Re-entrant serving forward; quantized weights come from the frozen
  /// snapshot (see class comment), activations are quantized per call.
  Tensor infer(const Tensor& x) const;

  /// Replace the weight-quantizer spec; thaws the frozen weight snapshot.
  void set_weight_quant(QuantSpec spec) { weight_quant_.reset_spec(spec); }
  void set_input_quant(QuantSpec spec) { input_quant_.reset_spec(spec); }
  /// Drop the frozen quantized-weight snapshot; the next infer() rebuilds it
  /// from the current weights. Call after mutating weight() directly.
  void thaw() { weight_quant_.thaw(); }
  void collect_params(std::vector<Param*>& out);

  Param& weight() { return w_; }
  Param& bias() { return b_; }
  LsqQuantizer& weight_quant() { return weight_quant_; }
  LsqQuantizer& input_quant() { return input_quant_; }
  int in_features() const { return in_; }
  int out_features() const { return out_; }

 private:
  int in_, out_;
  bool has_bias_;
  Param w_;  // [in, out]
  Param b_;  // [out]
  LsqQuantizer weight_quant_;
  LsqQuantizer input_quant_;
  Tensor cached_xq_;  // quantized input
};

/// LayerNorm over the last dimension of a rank-2 tensor (FP ViT baseline).
class LayerNorm {
 public:
  explicit LayerNorm(int features, float eps = 1e-5f);
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);
  Tensor infer(const Tensor& x) const;
  void collect_params(std::vector<Param*>& out);
  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }

 private:
  int features_;
  float eps_;
  Param gamma_, beta_;
  Tensor cached_xhat_;
  std::vector<float> cached_invstd_;
};

/// BatchNorm over the first dimension of a rank-2 tensor (ASCEND replaces
/// LN with BN for SC-friendliness; tokens and batch are flattened together).
///
/// Eval-mode snapshot: running stats and gamma/beta are immutable while
/// serving, so infer() folds them once into per-channel scale/shift
/// (scale_c = gamma_c / sqrt(var_c + eps), shift_c = beta_c - mean_c *
/// scale_c) and evaluates y = x * scale + shift — one multiply-add per
/// element instead of a sqrt/divide chain. The snapshot is built lazily on
/// the first infer() (double-checked under an internal mutex, so concurrent
/// first infers are safe) and thawed by any training-path forward(x, true).
/// Mutating gamma()/beta()/running stats by other means (an optimizer step,
/// copy_weights_from) requires a manual thaw() before the next infer() — in
/// the training loop this holds automatically because every optimizer step
/// is preceded by a training forward.
class BatchNorm {
 public:
  explicit BatchNorm(int features, float eps = 1e-5f, float momentum = 0.1f);
  Tensor forward(const Tensor& x, bool training);
  Tensor backward(const Tensor& grad_out);
  Tensor infer(const Tensor& x) const;  ///< eval-mode normalisation off running stats
  /// Drop the frozen scale/shift snapshot; the next infer() rebuilds it.
  void thaw();
  /// True while a frozen snapshot is live (exposed for tests/benches).
  bool frozen() const { return snap_valid_.load(std::memory_order_acquire); }
  void collect_params(std::vector<Param*>& out);
  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  int features_;
  float eps_, momentum_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  Tensor cached_xhat_;
  std::vector<float> cached_invstd_;
  int cached_rows_ = 0;
  // Frozen per-channel scale/shift (see class comment): guarded by snap_mu_
  // for building, published through the acquire/release flag.
  mutable std::mutex snap_mu_;
  mutable std::atomic<bool> snap_valid_{false};
  mutable std::vector<float> snap_scale_, snap_shift_;
};

/// Elementwise GELU layer.
class Gelu {
 public:
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);
  Tensor infer(const Tensor& x) const;

 private:
  Tensor cached_x_;
};

}  // namespace ascend::nn
