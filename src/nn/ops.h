#pragma once
// ops.h — tensor kernels (matmuls, activations, softmax).
//
// The matmul wrappers dispatch to the blocked/tiled kernels in nn/gemm.h by
// default; set ASCEND_GEMM=reference (or gemm::set_backend) to select the
// seed's naive scalar loops for bit-exact reproduction of pre-kernel results.

#include "nn/tensor.h"

namespace ascend::nn {

/// C[M,N] = A[M,K] * B[K,N].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[M,N] = A^T[K,M]^T... i.e. C = A_t^T * B with A_t stored [K,M]: C[M,N], used for dW.
Tensor matmul_tn(const Tensor& a_kxm, const Tensor& b_kxn);
/// C[M,K] = A[M,N] * B^T with B stored [K,N], used for dX.
Tensor matmul_nt(const Tensor& a_mxn, const Tensor& b_kxn);

/// Elementwise helpers.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
void add_inplace(Tensor& a, const Tensor& b);

/// y = GELU(x) (exact erf form) and its input gradient.
Tensor gelu_forward(const Tensor& x);
Tensor gelu_backward(const Tensor& x, const Tensor& grad_y);

/// Row-wise exact softmax over the last dimension of a rank-2 tensor, and
/// its backward pass given the cached output.
Tensor softmax_rows(const Tensor& x);
Tensor softmax_rows_backward(const Tensor& y, const Tensor& grad_y);

}  // namespace ascend::nn
