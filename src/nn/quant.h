#pragma once
// quant.h — Learned Step-size Quantization (LSQ, [25]) with STE backward.
//
// ASCEND quantizes weights and activations to 2-bit-BSL thermometer numbers
// (3 levels: -1, 0, +1 times a learned step) and residuals to 16-bit BSL
// (17 levels). An n-bit *BSL* in the deterministic thermometer format
// represents n+1 values — note this differs from binary n-bit quantization —
// so the quantizer's integer range for BSL b is [-b/2, +b/2].
//
// Forward:  v = clamp(round(x/s), Qn, Qp) * s
// Backward: dL/dx = dL/dv inside the clip range, 0 outside (STE);
//           dL/ds = sum g * (q - x/s * inside) * gradscale,
//           gradscale = 1/sqrt(numel * Qp).

#include <vector>

#include "nn/tensor.h"

namespace ascend::nn {

/// Learnable parameter with gradient and AdamW state.
struct Param {
  Tensor value;
  Tensor grad;
  Tensor adam_m;
  Tensor adam_v;
  bool no_weight_decay = false;

  void init_shape(std::vector<int> shape);
  void zero_grad();
};

struct QuantSpec {
  bool enabled = false;
  int qn = 0;  ///< most negative integer level
  int qp = 0;  ///< most positive integer level

  /// Quantizer for a thermometer bitstream length `bsl` (levels -b/2..+b/2).
  static QuantSpec from_bsl(int bsl);
  static QuantSpec ternary() { return from_bsl(2); }
  static QuantSpec off() { return QuantSpec{}; }
  int levels() const { return qp - qn + 1; }
};

class LsqQuantizer {
 public:
  explicit LsqQuantizer(QuantSpec spec = QuantSpec::off()) : spec_(spec) {}

  const QuantSpec& spec() const { return spec_; }
  bool enabled() const { return spec_.enabled; }
  /// Replace the spec (used when progressively tightening precision); the
  /// learned step is re-initialised on the next forward.
  void reset_spec(QuantSpec spec);

  /// Fake-quantized output; identity when disabled.
  Tensor forward(const Tensor& x);
  /// STE backward; accumulates the step-size gradient.
  Tensor backward(const Tensor& grad_out);

  /// Re-entrant inference forward: reads the trained step but writes no
  /// member state, so concurrent calls are safe. Bit-exact with forward()
  /// once the step is initialised. On an uncalibrated quantizer (enabled but
  /// never trained) the const path cannot latch a step, so the LSQ init step
  /// is derived from the batch itself on every call.
  Tensor infer(const Tensor& x) const;

  float step() const { return step_.value.empty() ? 0.0f : step_.value[0]; }
  void collect_params(std::vector<Param*>& out);

 private:
  QuantSpec spec_;
  Param step_;
  bool initialized_ = false;
  // Caches from the last forward.
  Tensor cached_x_;
  Tensor cached_q_;  // integer levels as floats
};

}  // namespace ascend::nn
