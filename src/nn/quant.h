#pragma once
// quant.h — Learned Step-size Quantization (LSQ, [25]) with STE backward.
//
// ASCEND quantizes weights and activations to 2-bit-BSL thermometer numbers
// (3 levels: -1, 0, +1 times a learned step) and residuals to 16-bit BSL
// (17 levels). An n-bit *BSL* in the deterministic thermometer format
// represents n+1 values — note this differs from binary n-bit quantization —
// so the quantizer's integer range for BSL b is [-b/2, +b/2].
//
// Forward:  v = clamp(round(x/s), Qn, Qp) * s
// Backward: dL/dx = dL/dv inside the clip range, 0 outside (STE);
//           dL/ds = sum g * (q - x/s * inside) * gradscale,
//           gradscale = 1/sqrt(numel * Qp).

#include <atomic>
#include <mutex>
#include <vector>

#include "nn/tensor.h"
#include "sc/bitvec.h"

namespace ascend::nn {

/// Word-packed form of a ternary-quantized rank-2 tensor Q[rows, cols],
/// Q(i,j) in {-1, 0, +1} x step: two sign bit-planes per output column
/// (`plus[j]` bit i set iff Q(i,j) == +1, `minus[j]` iff == -1) over the
/// sc::BitVec word-packed machinery, plus the scalar step. Feeds the
/// multiply-free gemm::ternary_matmul kernel:
///   y_j = step * (sum_{i in P_j} x_i - sum_{i in N_j} x_i).
struct PackedTernary {
  int rows = 0;  ///< contraction length (Linear: in_features)
  int cols = 0;  ///< output count (Linear: out_features)
  float step = 0.0f;
  std::vector<sc::BitVec> plus;   ///< per column: +1 positions over rows bits
  std::vector<sc::BitVec> minus;  ///< per column: -1 positions over rows bits

  /// Kernel-friendly copy of the planes: per column j, words_per_plane plus
  /// words followed by words_per_plane minus words, columns contiguous
  /// (col_words[j * 2 * words_per_plane ...]). One linear stream, so the
  /// matmul's column walk never chases per-BitVec storage pointers.
  int words_per_plane = 0;
  std::vector<std::uint64_t> col_words;

  bool empty() const { return rows == 0 && cols == 0; }
};

/// Learnable parameter with gradient and AdamW state.
struct Param {
  Tensor value;
  Tensor grad;
  Tensor adam_m;
  Tensor adam_v;
  bool no_weight_decay = false;

  void init_shape(std::vector<int> shape);
  void zero_grad();
};

struct QuantSpec {
  bool enabled = false;
  int qn = 0;  ///< most negative integer level
  int qp = 0;  ///< most positive integer level

  /// Quantizer for a thermometer bitstream length `bsl` (levels -b/2..+b/2).
  static QuantSpec from_bsl(int bsl);
  static QuantSpec ternary() { return from_bsl(2); }
  static QuantSpec off() { return QuantSpec{}; }
  int levels() const { return qp - qn + 1; }
};

class LsqQuantizer {
 public:
  explicit LsqQuantizer(QuantSpec spec = QuantSpec::off()) : spec_(spec) {}

  /// Copies and moves carry the spec / learned step but deliberately drop the
  /// frozen snapshot (it is rebuilt lazily on the copy's first frozen_infer;
  /// sharing mutable snapshot state between copies would be a data race).
  LsqQuantizer(const LsqQuantizer& other);
  LsqQuantizer& operator=(const LsqQuantizer& other);
  LsqQuantizer(LsqQuantizer&& other) noexcept;
  LsqQuantizer& operator=(LsqQuantizer&& other) noexcept;

  const QuantSpec& spec() const { return spec_; }
  bool enabled() const { return spec_.enabled; }
  /// Replace the spec (used when progressively tightening precision); the
  /// learned step is re-initialised on the next forward. Thaws any frozen
  /// snapshot, so a later frozen_infer re-quantizes under the new spec.
  void reset_spec(QuantSpec spec);

  /// Fake-quantized output; identity when disabled. Training path: caches
  /// activations for backward() and thaws any frozen snapshot (training is
  /// about to change the step / the tensor being quantized).
  Tensor forward(const Tensor& x);
  /// STE backward; accumulates the step-size gradient.
  Tensor backward(const Tensor& grad_out);

  /// Re-entrant inference forward: reads the trained step but writes no
  /// member state, so concurrent calls are safe. Bit-exact with forward()
  /// once the step is initialised. On an uncalibrated quantizer (enabled but
  /// never trained) the const path cannot latch a step, so the LSQ init step
  /// is derived from the batch itself on every call.
  Tensor infer(const Tensor& x) const;

  /// Serving fast path for an *immutable-while-serving* input (a weight
  /// matrix): quantizes `x` once, memoizes the result ("freeze"), and serves
  /// the memoized tensor on every later call — bit-exact with infer(x), since
  /// it IS infer(x) computed once. Thread-safe against concurrent
  /// frozen_infer calls (double-checked build under an internal mutex).
  ///
  /// Invalidation ("thaw") contract: the snapshot is dropped by thaw(),
  /// reset_spec() and the training-path forward(). Mutating the underlying
  /// tensor by other means (an optimizer stepping the weights directly)
  /// requires a manual thaw() before the next frozen_infer — in the training
  /// loop this holds automatically because every optimizer step is preceded
  /// by a training forward. thaw() and training must not run concurrently
  /// with frozen_infer (same single-writer contract as the whole const infer
  /// path). When the spec is disabled, returns `x` unchanged.
  const Tensor& frozen_infer(const Tensor& x) const;

  /// Packed-ternary sibling of frozen_infer for a rank-2 weight matrix under
  /// a ternary spec (qn == -1, qp == +1): quantizes `x` once into word-packed
  /// sign bit-planes (see PackedTernary) and serves the packed snapshot on
  /// every later call. Same invalidation contract and double-checked-build
  /// thread safety as frozen_infer; the dense and packed snapshots are
  /// independent (building one does not build the other) but are thawed
  /// together. Throws on a non-ternary spec or non-rank-2 input.
  const PackedTernary& frozen_packed_ternary(const Tensor& x) const;

  /// Drop the frozen snapshots (dense and packed); the next frozen_infer /
  /// frozen_packed_ternary re-quantizes.
  void thaw();
  /// True while a frozen snapshot is live (exposed for tests/benches).
  bool frozen() const { return snap_valid_.load(std::memory_order_acquire); }
  /// True while a packed-ternary snapshot is live.
  bool packed_frozen() const { return packed_valid_.load(std::memory_order_acquire); }

  float step() const { return step_.value.empty() ? 0.0f : step_.value[0]; }
  /// True once a training forward has initialised the step under the current
  /// spec (reset_spec de-calibrates; step() may still return the old value).
  bool calibrated() const { return initialized_; }
  void collect_params(std::vector<Param*>& out);

  /// Restore deserialized calibration state (see serialize/model_io.h):
  /// installs `spec` and, when `calibrated`, the learned step — equivalent to
  /// the state after reset_spec(spec) plus a training forward that latched
  /// `step`. Thaws any frozen snapshot, like every other spec change.
  void restore_calibration(QuantSpec spec, bool calibrated, float step);

  /// Adopt a deserialized packed-ternary snapshot as if frozen_packed_ternary
  /// had just built it. The caller guarantees `pt` was packed from this
  /// quantizer's (immutable-while-serving) weight matrix under the current
  /// spec and step; the usual thaw events invalidate it as normal.
  void adopt_packed(PackedTernary pt);

 private:
  QuantSpec spec_;
  Param step_;
  bool initialized_ = false;
  // Caches from the last forward.
  Tensor cached_x_;
  Tensor cached_q_;  // integer levels as floats
  // Frozen quantized snapshots (see frozen_infer / frozen_packed_ternary):
  // guarded by snap_mu_ for building, published through the acquire/release
  // flags for lock-free reads.
  mutable std::mutex snap_mu_;
  mutable std::atomic<bool> snap_valid_{false};
  mutable Tensor snapshot_;
  mutable std::atomic<bool> packed_valid_{false};
  mutable PackedTernary packed_;
};

}  // namespace ascend::nn
