#include "nn/quant.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/arena.h"

namespace ascend::nn {

void Param::init_shape(std::vector<int> shape) {
  value = Tensor(shape);
  grad = Tensor(shape);
  adam_m = Tensor(shape);
  adam_v = Tensor(std::move(shape));
}

void Param::zero_grad() { grad.fill(0.0f); }

QuantSpec QuantSpec::from_bsl(int bsl) {
  if (bsl < 2 || bsl % 2 != 0)
    throw std::invalid_argument("QuantSpec::from_bsl: BSL must be even >= 2");
  QuantSpec s;
  s.enabled = true;
  s.qn = -bsl / 2;
  s.qp = bsl / 2;
  return s;
}

LsqQuantizer::LsqQuantizer(const LsqQuantizer& other)
    : spec_(other.spec_),
      step_(other.step_),
      initialized_(other.initialized_),
      cached_x_(other.cached_x_),
      cached_q_(other.cached_q_) {}

LsqQuantizer& LsqQuantizer::operator=(const LsqQuantizer& other) {
  if (this == &other) return *this;
  spec_ = other.spec_;
  step_ = other.step_;
  initialized_ = other.initialized_;
  cached_x_ = other.cached_x_;
  cached_q_ = other.cached_q_;
  thaw();
  return *this;
}

LsqQuantizer::LsqQuantizer(LsqQuantizer&& other) noexcept
    : spec_(other.spec_),
      step_(std::move(other.step_)),
      initialized_(other.initialized_),
      cached_x_(std::move(other.cached_x_)),
      cached_q_(std::move(other.cached_q_)) {}

LsqQuantizer& LsqQuantizer::operator=(LsqQuantizer&& other) noexcept {
  if (this == &other) return *this;
  spec_ = other.spec_;
  step_ = std::move(other.step_);
  initialized_ = other.initialized_;
  cached_x_ = std::move(other.cached_x_);
  cached_q_ = std::move(other.cached_q_);
  thaw();
  return *this;
}

void LsqQuantizer::reset_spec(QuantSpec spec) {
  spec_ = spec;
  initialized_ = false;
  thaw();
}

void LsqQuantizer::thaw() {
  std::lock_guard<std::mutex> lock(snap_mu_);
  snap_valid_.store(false, std::memory_order_release);
  snapshot_ = Tensor();
  packed_valid_.store(false, std::memory_order_release);
  packed_ = PackedTernary();
}

const Tensor& LsqQuantizer::frozen_infer(const Tensor& x) const {
  if (!spec_.enabled) return x;
  if (snap_valid_.load(std::memory_order_acquire)) return snapshot_;
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (!snap_valid_.load(std::memory_order_relaxed)) {
    // The snapshot outlives every forward: force it onto the heap even when
    // the caller is running inside an activation-arena scope.
    runtime::HeapScope heap;
    snapshot_ = infer(x);
    snap_valid_.store(true, std::memory_order_release);
  }
  return snapshot_;
}

namespace {

// LSQ init: s = 2 * mean|x| / sqrt(Qp).
float lsq_init_step(const Tensor& x, int qp) {
  double mean_abs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) mean_abs += std::fabs(x[i]);
  mean_abs /= std::max<std::size_t>(x.size(), 1);
  return std::max(1e-4f, static_cast<float>(2.0 * mean_abs / std::sqrt(qp)));
}

}  // namespace

const PackedTernary& LsqQuantizer::frozen_packed_ternary(const Tensor& x) const {
  if (!spec_.enabled || spec_.qn != -1 || spec_.qp != 1)
    throw std::logic_error("LsqQuantizer::frozen_packed_ternary: ternary spec required");
  if (x.rank() != 2 || x.dim(0) <= 0 || x.dim(1) <= 0)
    throw std::invalid_argument(
        "LsqQuantizer::frozen_packed_ternary: non-empty rank-2 tensor required");
  if (packed_valid_.load(std::memory_order_acquire)) return packed_;
  std::lock_guard<std::mutex> lock(snap_mu_);
  if (!packed_valid_.load(std::memory_order_relaxed)) {
    const float step = initialized_ ? step_.value[0] : lsq_init_step(x, spec_.qp);
    const float s = std::max(step, 1e-6f);
    const int rows = x.dim(0), cols = x.dim(1);
    PackedTernary pt;
    pt.rows = rows;
    pt.cols = cols;
    pt.step = s;
    pt.plus.assign(static_cast<std::size_t>(cols), sc::BitVec(static_cast<std::size_t>(rows)));
    pt.minus.assign(static_cast<std::size_t>(cols), sc::BitVec(static_cast<std::size_t>(rows)));
    for (int i = 0; i < rows; ++i)
      for (int j = 0; j < cols; ++j) {
        const float q = std::clamp(std::round(x.at(i, j) / s), -1.0f, 1.0f);
        if (q > 0.0f)
          pt.plus[static_cast<std::size_t>(j)].set(static_cast<std::size_t>(i), true);
        else if (q < 0.0f)
          pt.minus[static_cast<std::size_t>(j)].set(static_cast<std::size_t>(i), true);
      }
    // Interleave the planes into one contiguous column-major word stream for
    // the kernel (see PackedTernary::col_words).
    const int wpp = static_cast<int>(pt.plus.front().word_count());
    pt.words_per_plane = wpp;
    pt.col_words.assign(static_cast<std::size_t>(cols) * 2 * wpp, 0u);
    for (int j = 0; j < cols; ++j) {
      std::uint64_t* dst = pt.col_words.data() + static_cast<std::size_t>(j) * 2 * wpp;
      const std::uint64_t* pw = pt.plus[static_cast<std::size_t>(j)].words();
      const std::uint64_t* nw = pt.minus[static_cast<std::size_t>(j)].words();
      for (int t = 0; t < wpp; ++t) {
        dst[t] = pw[t];
        dst[wpp + t] = nw[t];
      }
    }
    packed_ = std::move(pt);
    packed_valid_.store(true, std::memory_order_release);
  }
  return packed_;
}

Tensor LsqQuantizer::forward(const Tensor& x) {
  if (!spec_.enabled) return x;
  // Training is about to move the step / the quantized tensor: any frozen
  // serving snapshot (dense or packed) is stale from here on.
  if (snap_valid_.load(std::memory_order_relaxed) ||
      packed_valid_.load(std::memory_order_relaxed))
    thaw();
  if (!initialized_) {
    step_.init_shape({1});
    step_.value[0] = lsq_init_step(x, spec_.qp);
    step_.no_weight_decay = true;
    initialized_ = true;
  }
  const float s = std::max(step_.value[0], 1e-6f);
  cached_x_ = x;
  cached_q_ = Tensor(x.shape());
  Tensor out(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float q = std::clamp(std::round(x[i] / s), static_cast<float>(spec_.qn),
                               static_cast<float>(spec_.qp));
    cached_q_[i] = q;
    out[i] = q * s;
  }
  return out;
}

Tensor LsqQuantizer::infer(const Tensor& x) const {
  if (!spec_.enabled) return x;
  const float step = initialized_ ? step_.value[0] : lsq_init_step(x, spec_.qp);
  const float s = std::max(step, 1e-6f);
  Tensor out = Tensor::uninitialized(x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float q = std::clamp(std::round(x[i] / s), static_cast<float>(spec_.qn),
                               static_cast<float>(spec_.qp));
    out[i] = q * s;
  }
  return out;
}

Tensor LsqQuantizer::backward(const Tensor& grad_out) {
  if (!spec_.enabled) return grad_out;
  check_same_shape(grad_out, cached_x_, "LsqQuantizer::backward");
  const float s = std::max(step_.value[0], 1e-6f);
  const float gradscale =
      1.0f / std::sqrt(static_cast<float>(cached_x_.size()) * static_cast<float>(spec_.qp));
  Tensor gx(grad_out.shape());
  double gs = 0.0;
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    const float xs = cached_x_[i] / s;
    const bool inside = xs > static_cast<float>(spec_.qn) && xs < static_cast<float>(spec_.qp);
    gx[i] = inside ? grad_out[i] : 0.0f;
    const float ds = cached_q_[i] - (inside ? xs : 0.0f);
    gs += static_cast<double>(grad_out[i]) * ds;
  }
  step_.grad[0] += static_cast<float>(gs) * gradscale;
  return gx;
}

void LsqQuantizer::collect_params(std::vector<Param*>& out) {
  if (spec_.enabled && initialized_) out.push_back(&step_);
}

void LsqQuantizer::restore_calibration(QuantSpec spec, bool calibrated, float step) {
  spec_ = spec;
  thaw();
  if (calibrated) {
    step_.init_shape({1});
    step_.value[0] = step;
    step_.no_weight_decay = true;
    initialized_ = true;
  } else {
    initialized_ = false;
  }
}

void LsqQuantizer::adopt_packed(PackedTernary pt) {
  if (!spec_.enabled || spec_.qn != -1 || spec_.qp != 1)
    throw std::logic_error("LsqQuantizer::adopt_packed: ternary spec required");
  std::lock_guard<std::mutex> lock(snap_mu_);
  packed_ = std::move(pt);
  packed_valid_.store(true, std::memory_order_release);
}

}  // namespace ascend::nn
