#pragma once
// approx_softmax.h — differentiable iterative approximate softmax.
//
// The float-level Algorithm 1 of the paper (see sc/softmax_iter.h for the SC
// circuit) with a hand-derived backward pass, used during approximate-
// softmax-aware fine-tuning (Section V, stage 2). For one Euler step with
// u = y_{j-1}, S = x . u:
//
//   y = u + (x*u - u*S)/k
//   dL/du_t = g_t (1 + x_t/k - S/k) - (g.u) x_t / k
//   dL/dx_t = (g_t - g.u) u_t / k
//
// The k steps are chained in reverse, with the per-step u cached.

#include <vector>

#include "nn/tensor.h"

namespace ascend::nn {

class ApproxSoftmax {
 public:
  explicit ApproxSoftmax(int k = 3);

  int k() const { return k_; }
  void set_k(int k);

  /// Row-wise Algorithm 1 over a rank-2 tensor [rows, m].
  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& grad_out);
  /// Re-entrant forward: no per-step caches, bit-exact with forward().
  Tensor infer(const Tensor& x) const;

 private:
  int k_;
  Tensor cached_x_;
  std::vector<Tensor> cached_u_;  // y_{j-1} for each of the k steps
};

}  // namespace ascend::nn
