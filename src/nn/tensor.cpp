#include "nn/tensor.h"

#include <cstring>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "runtime/arena.h"

namespace ascend::nn {
namespace {

std::atomic<std::uint64_t> g_copy_count{0};

std::size_t element_count(const Shape& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("Tensor: non-positive dimension");
    n *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : n;
}

}  // namespace

Shape::Shape(std::initializer_list<int> dims) {
  if (dims.size() > kMaxRank) throw std::invalid_argument("Shape: rank > 4");
  for (int d : dims) d_[rank_++] = d;
}

Shape::Shape(const std::vector<int>& dims) {
  if (dims.size() > kMaxRank) throw std::invalid_argument("Shape: rank > 4");
  for (int d : dims) d_[rank_++] = d;
}

bool Shape::operator==(const Shape& o) const {
  if (rank_ != o.rank_) return false;
  for (std::uint8_t i = 0; i < rank_; ++i)
    if (d_[i] != o.d_[i]) return false;
  return true;
}

std::ostream& operator<<(std::ostream& os, const Shape& s) {
  os << "[";
  for (std::size_t i = 0; i < s.size(); ++i) os << (i ? "," : "") << s[i];
  return os << "]";
}

void Tensor::allocate(std::size_t n) {
  size_ = n;
  borrowed_ = false;
  if (n == 0) {
    data_ = nullptr;
    heap_.reset();
    return;
  }
  if (auto* arena = runtime::Arena::current()) {
    heap_.reset();
    data_ = static_cast<float*>(arena->allocate(n * sizeof(float)));
  } else {
    heap_.reset(new float[n]);  // deliberately uninitialized; callers fill
    data_ = heap_.get();
  }
}

Tensor::Tensor(Shape shape, Uninit) : shape_(shape) { allocate(element_count(shape)); }

Tensor::Tensor(Shape shape) : Tensor(shape, Uninit{}) {
  if (size_) std::memset(data_, 0, size_ * sizeof(float));
}

Tensor::Tensor(Shape shape, float fill) : Tensor(shape, Uninit{}) {
  for (std::size_t i = 0; i < size_; ++i) data_[i] = fill;
}

Tensor Tensor::borrow(Shape shape, const float* data) {
  Tensor t;
  t.shape_ = shape;
  t.size_ = element_count(shape);
  // Read-only by contract (see header): the const_cast keeps one data_
  // member for all three backing modes; mutating a borrowed view is UB.
  t.data_ = const_cast<float*>(data);
  t.borrowed_ = t.size_ != 0;
  return t;
}

Tensor::Tensor(const Tensor& o) : shape_(o.shape_) {
  allocate(o.size_);
  if (size_) {
    std::memcpy(data_, o.data_, size_ * sizeof(float));
    g_copy_count.fetch_add(1, std::memory_order_relaxed);
  }
}

Tensor::Tensor(Tensor&& o) noexcept
    : shape_(o.shape_),
      size_(o.size_),
      data_(o.data_),
      heap_(std::move(o.heap_)),
      borrowed_(o.borrowed_) {
  o.shape_ = Shape{};
  o.size_ = 0;
  o.data_ = nullptr;
  o.borrowed_ = false;
}

Tensor& Tensor::operator=(const Tensor& o) {
  if (this == &o) return *this;
  // Reuse the existing buffer when the element count matches — steady-state
  // assignments (e.g. into a preallocated slot) stay allocation-free. A
  // borrowed destination is read-only, so it must re-allocate instead.
  if (size_ != o.size_ || borrowed_) allocate(o.size_);
  shape_ = o.shape_;
  if (size_) {
    std::memcpy(data_, o.data_, size_ * sizeof(float));
    g_copy_count.fetch_add(1, std::memory_order_relaxed);
  }
  return *this;
}

Tensor& Tensor::operator=(Tensor&& o) noexcept {
  if (this == &o) return *this;
  shape_ = o.shape_;
  size_ = o.size_;
  data_ = o.data_;
  heap_ = std::move(o.heap_);
  borrowed_ = o.borrowed_;
  o.shape_ = Shape{};
  o.size_ = 0;
  o.data_ = nullptr;
  o.borrowed_ = false;
  return *this;
}

int Tensor::dim(std::size_t i) const {
  if (i >= shape_.size()) throw std::out_of_range("Tensor::dim");
  return shape_[i];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (element_count(new_shape) != size_)
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  Tensor t(new_shape, Uninit{});
  if (size_) std::memcpy(t.data_, data_, size_ * sizeof(float));
  return t;
}

void Tensor::fill(float v) {
  for (std::size_t i = 0; i < size_; ++i) data_[i] = v;
}

double Tensor::sum() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < size_; ++i) acc += data_[i];
  return acc;
}

double Tensor::mean() const { return size_ == 0 ? 0.0 : sum() / static_cast<double>(size_); }

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << shape_;
  return os.str();
}

std::uint64_t Tensor::copies() { return g_copy_count.load(std::memory_order_relaxed); }

void check_same_shape(const Tensor& a, const Tensor& b, const char* who) {
  if (a.shape() != b.shape())
    throw std::invalid_argument(std::string(who) + ": shape mismatch " + a.shape_str() + " vs " +
                                b.shape_str());
}

}  // namespace ascend::nn
