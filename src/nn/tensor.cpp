#include "nn/tensor.h"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace ascend::nn {
namespace {

std::size_t element_count(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d <= 0) throw std::invalid_argument("Tensor: non-positive dimension");
    n *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : n;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape) : data_(element_count(shape), 0.0f), shape_(std::move(shape)) {}

Tensor::Tensor(std::vector<int> shape, float fill)
    : data_(element_count(shape), fill), shape_(std::move(shape)) {}

int Tensor::dim(std::size_t i) const {
  if (i >= shape_.size()) throw std::out_of_range("Tensor::dim");
  return shape_[i];
}

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  if (element_count(new_shape) != data_.size())
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  Tensor t;
  t.data_ = data_;
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

double Tensor::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0); }

double Tensor::mean() const { return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size()); }

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) os << (i ? "," : "") << shape_[i];
  os << "]";
  return os.str();
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* who) {
  if (a.shape() != b.shape())
    throw std::invalid_argument(std::string(who) + ": shape mismatch " + a.shape_str() + " vs " +
                                b.shape_str());
}

}  // namespace ascend::nn
