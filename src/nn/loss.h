#pragma once
// loss.h — training objectives: cross-entropy and the KD losses of Section V.
//
// The two-stage pipeline distills with
//   Loss = KL(Z_s || Z_t) + beta * (1/M) * sum_i MSE(S_i, T_i)
// where Z are logits and S_i/T_i are per-layer block outputs (beta = 2).

#include <vector>

#include "nn/tensor.h"

namespace ascend::nn {

struct LossResult {
  double value = 0.0;
  Tensor grad;  // gradient wrt the first argument
};

/// Mean softmax cross-entropy over the batch; labels are class indices.
LossResult cross_entropy(const Tensor& logits, const std::vector<int>& labels);

/// Mean KL(teacher || student) over the batch, gradient wrt student logits.
LossResult kl_distill(const Tensor& student_logits, const Tensor& teacher_logits);

/// Mean squared error, gradient wrt `a`.
LossResult mse(const Tensor& a, const Tensor& b);

/// Top-1 accuracy.
double accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace ascend::nn
