#pragma once
// rng.h — deterministic random source for initialisation and data generation.

#include <cstdint>
#include <random>

#include "nn/tensor.h"

namespace ascend::nn {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  float normal(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }
  float uniform(float lo = 0.0f, float hi = 1.0f) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }
  int uniform_int(int lo, int hi) {  // inclusive bounds
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  void fill_normal(Tensor& t, float mean, float stddev) {
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = normal(mean, stddev);
  }
  void fill_uniform(Tensor& t, float lo, float hi) {
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = uniform(lo, hi);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ascend::nn
