#include "nn/attention.h"

#include <cmath>
#include <stdexcept>

#include "nn/gemm.h"

namespace ascend::nn {

namespace {

// Shared forward/infer kernels; all state is caller-provided so the infer
// path can keep its activations on the stack. All per-head products run
// through the blocked GEMM kernels (nn/gemm.h) with strided panels — the
// infer path reads Q/K/V straight out of the fused qkv projection and writes
// per-head context tiles into the merged output, so no per-head Tensor is
// ever allocated.

/// Head-major gather of a [B*T, 3*dim] qkv projection into Q/K/V [B*H*T, dh]
/// (training path only: backward needs the gathered caches).
void gather_qkv(const Tensor& qkv_out, int batch, int tokens, int heads, int dim, int dh,
                Tensor& q, Tensor& k, Tensor& v) {
  const int bh = batch * heads;
  q = Tensor({bh * tokens, dh});
  k = Tensor({bh * tokens, dh});
  v = Tensor({bh * tokens, dh});
  for (int b = 0; b < batch; ++b)
    for (int t = 0; t < tokens; ++t) {
      const float* src = qkv_out.data() + (static_cast<std::size_t>(b) * tokens + t) * 3 * dim;
      for (int h = 0; h < heads; ++h) {
        const std::size_t row = (static_cast<std::size_t>(b) * heads + h) * tokens + t;
        for (int d = 0; d < dh; ++d) {
          q[row * dh + d] = src[h * dh + d];
          k[row * dh + d] = src[dim + h * dh + d];
          v[row * dh + d] = src[2 * dim + h * dh + d];
        }
      }
    }
}

/// Scores per (batch, head): S = Q K^T / sqrt(dh), flattened to [B*H*T, T].
/// Q/K rows are read with stride ldq/ldk, so callers can pass either the
/// gathered [B*H*T, dh] caches (stride dh) or panels of the fused qkv output
/// (stride 3*dim).
Tensor attention_scores_strided(const float* q, int ldq, std::size_t q_head_stride, const float* k,
                                int ldk, std::size_t k_head_stride, int bh, int tokens, int dh) {
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));
  Tensor scores({bh * tokens, tokens});
#pragma omp parallel for schedule(static)
  for (int g = 0; g < bh; ++g) {
    float* s = scores.data() + static_cast<std::size_t>(g) * tokens * tokens;
    gemm::gemm_nt(tokens, tokens, dh, q + static_cast<std::size_t>(g) * q_head_stride, ldq,
                  k + static_cast<std::size_t>(g) * k_head_stride, ldk, s, tokens);
    for (int i = 0; i < tokens * tokens; ++i) s[i] *= inv_sqrt_dh;
  }
  return scores;
}

/// Context: attn * V, merged back to [B*T, dim]. V rows read with stride ldv.
Tensor attention_context_strided(const Tensor& attn, const float* v, int ldv,
                                 std::size_t v_head_stride, int batch, int heads, int tokens,
                                 int dim, int dh) {
  const int bh = batch * heads;
  Tensor ctx({batch * tokens, dim});
#pragma omp parallel for schedule(static)
  for (int g = 0; g < bh; ++g) {
    const int b = g / heads;
    const int h = g % heads;
    const float* a = attn.data() + static_cast<std::size_t>(g) * tokens * tokens;
    float* out = ctx.data() + static_cast<std::size_t>(b) * tokens * dim + h * dh;
    gemm::gemm_nn(tokens, dh, tokens, a, tokens, v + static_cast<std::size_t>(g) * v_head_stride,
                  ldv, out, dim);
  }
  return ctx;
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(int dim, int heads, Rng& rng, int approx_k)
    : dim_(dim),
      heads_(heads),
      dh_(dim / heads),
      qkv_(dim, 3 * dim, rng),
      proj_(dim, dim, rng),
      approx_sm_(approx_k) {
  if (dim % heads != 0)
    throw std::invalid_argument("MultiHeadSelfAttention: dim must be divisible by heads");
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x, int batch, int tokens) {
  if (x.rank() != 2 || x.dim(1) != dim_ || x.dim(0) != batch * tokens)
    throw std::invalid_argument("MSA::forward: bad input shape");
  batch_ = batch;
  tokens_ = tokens;
  const int bh = batch * heads_;

  const Tensor qkv_out = qkv_.forward(x);  // [B*T, 3*dim]
  gather_qkv(qkv_out, batch, tokens, heads_, dim_, dh_, cached_q_, cached_k_, cached_v_);
  const std::size_t head_stride = static_cast<std::size_t>(tokens) * dh_;
  const Tensor scores = attention_scores_strided(cached_q_.data(), dh_, head_stride,
                                                 cached_k_.data(), dh_, head_stride, bh, tokens,
                                                 dh_);

  used_hook_ = static_cast<bool>(hook_);
  if (used_hook_)
    cached_attn_ = hook_(scores);
  else if (softmax_kind_ == SoftmaxKind::kApprox)
    cached_attn_ = approx_sm_.forward(scores);
  else
    cached_attn_ = softmax_rows(scores);

  const Tensor ctx = attention_context_strided(cached_attn_, cached_v_.data(), dh_, head_stride,
                                               batch, heads_, tokens, dim_, dh_);
  return proj_.forward(ctx);
}

Tensor MultiHeadSelfAttention::infer(const Tensor& x, int batch, int tokens) const {
  if (x.rank() != 2 || x.dim(1) != dim_ || x.dim(0) != batch * tokens)
    throw std::invalid_argument("MSA::infer: bad input shape");
  const int bh = batch * heads_;

  // The serving path never materialises per-head Q/K/V tensors: the strided
  // GEMM kernels read each head's Q/K/V panel straight out of the fused
  // projection (row stride 3*dim) and write its context tile into the merged
  // [B*T, dim] output, so the only allocations are scores/attn/ctx.
  const Tensor qkv_out = qkv_.infer(x);  // [B*T, 3*dim]
  const int ld = 3 * dim_;
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh_));
  Tensor scores({bh * tokens, tokens});
#pragma omp parallel for schedule(static)
  for (int g = 0; g < bh; ++g) {
    const int b = g / heads_;
    const int h = g % heads_;
    const float* base =
        qkv_out.data() + static_cast<std::size_t>(b) * tokens * ld + static_cast<std::size_t>(h) * dh_;
    float* s = scores.data() + static_cast<std::size_t>(g) * tokens * tokens;
    gemm::gemm_nt(tokens, tokens, dh_, base, ld, base + dim_, ld, s, tokens);
    for (int i = 0; i < tokens * tokens; ++i) s[i] *= inv_sqrt_dh;
  }

  Tensor attn;
  if (hook_)
    attn = hook_(scores);
  else if (softmax_kind_ == SoftmaxKind::kApprox)
    attn = approx_sm_.infer(scores);
  else
    attn = softmax_rows(scores);

  Tensor ctx({batch * tokens, dim_});
#pragma omp parallel for schedule(static)
  for (int g = 0; g < bh; ++g) {
    const int b = g / heads_;
    const int h = g % heads_;
    const float* v = qkv_out.data() + static_cast<std::size_t>(b) * tokens * ld + 2 * dim_ +
                     static_cast<std::size_t>(h) * dh_;
    gemm::gemm_nn(tokens, dh_, tokens, attn.data() + static_cast<std::size_t>(g) * tokens * tokens,
                  tokens, v, ld,
                  ctx.data() + static_cast<std::size_t>(b) * tokens * dim_ + h * dh_, dim_);
  }
  return proj_.infer(ctx);
}

Tensor MultiHeadSelfAttention::backward(const Tensor& grad_out) {
  if (used_hook_)
    throw std::logic_error("MSA::backward: cannot backprop through a softmax hook");
  const int batch = batch_, tokens = tokens_;
  const int bh = batch * heads_;
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh_));

  const Tensor g_ctx_merged = proj_.backward(grad_out);  // [B*T, dim]

  // Un-merge to [B*H*T, dh].
  Tensor g_ctx({bh * tokens, dh_});
  for (int b = 0; b < batch; ++b)
    for (int t = 0; t < tokens; ++t)
      for (int h = 0; h < heads_; ++h) {
        const float* src = g_ctx_merged.data() + (static_cast<std::size_t>(b) * tokens + t) * dim_ + h * dh_;
        float* dst = g_ctx.data() + ((static_cast<std::size_t>(b) * heads_ + h) * tokens + t) * dh_;
        for (int d = 0; d < dh_; ++d) dst[d] = src[d];
      }

  // dAttn = g_ctx V^T ; dV = attn^T g_ctx.
  Tensor g_attn({bh * tokens, tokens});
  Tensor g_v({bh * tokens, dh_});
#pragma omp parallel for schedule(static)
  for (int g = 0; g < bh; ++g) {
    const float* gc = g_ctx.data() + static_cast<std::size_t>(g) * tokens * dh_;
    const float* v = cached_v_.data() + static_cast<std::size_t>(g) * tokens * dh_;
    const float* a = cached_attn_.data() + static_cast<std::size_t>(g) * tokens * tokens;
    float* ga = g_attn.data() + static_cast<std::size_t>(g) * tokens * tokens;
    float* gv = g_v.data() + static_cast<std::size_t>(g) * tokens * dh_;
    gemm::gemm_nt(tokens, tokens, dh_, gc, dh_, v, dh_, ga, tokens);
    gemm::gemm_tn(tokens, dh_, tokens, a, tokens, gc, dh_, gv, dh_);
  }

  // Through the softmax.
  Tensor g_scores = (softmax_kind_ == SoftmaxKind::kApprox)
                        ? approx_sm_.backward(g_attn)
                        : softmax_rows_backward(cached_attn_, g_attn);

  // dQ = (dS * K) / sqrt(dh) ; dK = (dS^T * Q) / sqrt(dh).
  Tensor g_q({bh * tokens, dh_});
  Tensor g_k({bh * tokens, dh_});
#pragma omp parallel for schedule(static)
  for (int g = 0; g < bh; ++g) {
    const float* gs = g_scores.data() + static_cast<std::size_t>(g) * tokens * tokens;
    const float* q = cached_q_.data() + static_cast<std::size_t>(g) * tokens * dh_;
    const float* k = cached_k_.data() + static_cast<std::size_t>(g) * tokens * dh_;
    float* gq = g_q.data() + static_cast<std::size_t>(g) * tokens * dh_;
    float* gk = g_k.data() + static_cast<std::size_t>(g) * tokens * dh_;
    gemm::gemm_nn(tokens, dh_, tokens, gs, tokens, k, dh_, gq, dh_);
    gemm::gemm_tn(tokens, dh_, tokens, gs, tokens, q, dh_, gk, dh_);
    for (int i = 0; i < tokens * dh_; ++i) {
      gq[i] *= inv_sqrt_dh;
      gk[i] *= inv_sqrt_dh;
    }
  }

  // Scatter back into the qkv layout [B*T, 3*dim].
  Tensor g_qkv({batch * tokens, 3 * dim_});
  for (int b = 0; b < batch; ++b)
    for (int t = 0; t < tokens; ++t) {
      float* dst = g_qkv.data() + (static_cast<std::size_t>(b) * tokens + t) * 3 * dim_;
      for (int h = 0; h < heads_; ++h) {
        const std::size_t row = (static_cast<std::size_t>(b) * heads_ + h) * tokens + t;
        for (int d = 0; d < dh_; ++d) {
          dst[h * dh_ + d] = g_q[row * dh_ + d];
          dst[dim_ + h * dh_ + d] = g_k[row * dh_ + d];
          dst[2 * dim_ + h * dh_ + d] = g_v[row * dh_ + d];
        }
      }
    }
  return qkv_.backward(g_qkv);
}

void MultiHeadSelfAttention::collect_params(std::vector<Param*>& out) {
  qkv_.collect_params(out);
  proj_.collect_params(out);
}

}  // namespace ascend::nn
