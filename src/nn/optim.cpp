#include "nn/optim.h"

#include <cmath>

namespace ascend::nn {

AdamW::AdamW(std::vector<Param*> params, float lr, float beta1, float beta2, float eps,
             float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {}

void AdamW::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

void AdamW::rebind(std::vector<Param*> params) {
  params_ = std::move(params);
  t_ = 0;
}

void AdamW::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (Param* p : params_) {
    const float wd = p->no_weight_decay ? 0.0f : weight_decay_;
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad[i];
      p->adam_m[i] = beta1_ * p->adam_m[i] + (1.0f - beta1_) * g;
      p->adam_v[i] = beta2_ * p->adam_v[i] + (1.0f - beta2_) * g * g;
      const float mhat = p->adam_m[i] / bc1;
      const float vhat = p->adam_v[i] / bc2;
      p->value[i] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) + wd * p->value[i]);
    }
  }
}

float cosine_lr(float base_lr, long long step, long long total_steps) {
  if (total_steps <= 0) return base_lr;
  const double frac = std::min(1.0, static_cast<double>(step) / static_cast<double>(total_steps));
  return static_cast<float>(base_lr * 0.5 * (1.0 + std::cos(frac * 3.14159265358979)));
}

}  // namespace ascend::nn
