#pragma once
// tensor.h — minimal dense float tensor (row-major) for the ViT substrate.
//
// The network code treats tensors as shaped views over a contiguous float
// buffer; all layer math lives in ops.h / the layer classes. Shapes are
// small vectors of ints; rank is 1..4 in practice.

#include <cstddef>
#include <string>
#include <vector>

namespace ascend::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);
  Tensor(std::vector<int> shape, float fill);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, float v) { return Tensor(std::move(shape), v); }

  const std::vector<int>& shape() const { return shape_; }
  int dim(std::size_t i) const;
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D accessors (rank-2 only, bounds unchecked in release hot paths).
  float& at(int r, int c) { return data_[static_cast<std::size_t>(r) * shape_[1] + c]; }
  float at(int r, int c) const { return data_[static_cast<std::size_t>(r) * shape_[1] + c]; }

  /// Reinterpret the buffer with a new shape of identical element count.
  Tensor reshaped(std::vector<int> new_shape) const;

  void fill(float v);
  /// Sum of all elements / mean of all elements.
  double sum() const;
  double mean() const;

  std::string shape_str() const;

 private:
  std::vector<float> data_;
  std::vector<int> shape_;
};

/// Throws unless both tensors have identical shapes.
void check_same_shape(const Tensor& a, const Tensor& b, const char* who);

}  // namespace ascend::nn
