#pragma once
// tensor.h — minimal dense float tensor (row-major) for the ViT substrate.
//
// The network code treats tensors as shaped views over a contiguous float
// buffer; all layer math lives in ops.h / the layer classes. Rank is 1..4,
// and shapes are stored inline (no heap) so constructing a tensor costs at
// most one allocation — and zero when a runtime::Arena is installed for the
// current thread (see runtime/arena.h): the buffer is then bump-allocated
// from the arena and freed wholesale at Arena::reset(). Tensors never own
// arena memory; whoever installed the ArenaScope owns the lifetime.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace ascend::nn {

/// Inline fixed-capacity shape (rank <= 4): value semantics, no heap.
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<int> dims);
  Shape(const std::vector<int>& dims);  // NOLINT: implicit for call-site compat

  std::size_t size() const { return rank_; }
  bool empty() const { return rank_ == 0; }
  int operator[](std::size_t i) const { return d_[i]; }
  const int* begin() const { return d_; }
  const int* end() const { return d_ + rank_; }

  bool operator==(const Shape& o) const;
  bool operator!=(const Shape& o) const { return !(*this == o); }

 private:
  int d_[kMaxRank] = {0, 0, 0, 0};
  std::uint8_t rank_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Shape& s);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);

  Tensor(const Tensor& o);
  Tensor(Tensor&& o) noexcept;
  Tensor& operator=(const Tensor& o);
  Tensor& operator=(Tensor&& o) noexcept;
  ~Tensor() = default;

  static Tensor zeros(Shape shape) { return Tensor(shape); }
  static Tensor full(Shape shape, float v) { return Tensor(shape, v); }
  /// Allocate without zero-filling — for ops that overwrite every element.
  static Tensor uninitialized(Shape shape) { return Tensor(shape, Uninit{}); }
  /// Non-owning, read-only view over caller-managed memory (e.g. a weight
  /// blob inside an mmap'd checkpoint — see serialize/checkpoint.h). The
  /// memory must stay mapped for the view's lifetime, and must never be
  /// written through the view: checkpoint mappings are PROT_READ, so any
  /// mutating access (fill, non-const operator[], a training step) faults.
  /// Copying a borrowed tensor deep-copies into owned storage; moving keeps
  /// the borrow. Borrowed views are neither heap- nor arena-backed, so they
  /// survive every Arena::reset().
  static Tensor borrow(Shape shape, const float* data);

  const Shape& shape() const { return shape_; }
  int dim(std::size_t i) const;
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  float* data() { return data_; }
  const float* data() const { return data_; }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D accessors (rank-2 only, bounds unchecked in release hot paths).
  float& at(int r, int c) { return data_[static_cast<std::size_t>(r) * shape_[1] + c]; }
  float at(int r, int c) const { return data_[static_cast<std::size_t>(r) * shape_[1] + c]; }

  /// Copy the buffer with a new shape of identical element count.
  Tensor reshaped(Shape new_shape) const;

  /// True when the buffer was carved from the thread's active arena (and is
  /// therefore only valid until that arena resets).
  bool arena_backed() const { return data_ != nullptr && heap_ == nullptr && !borrowed_; }

  /// True for a non-owning view created by Tensor::borrow (read-only;
  /// lifetime owned by whoever owns the underlying mapping/buffer).
  bool borrowed() const { return borrowed_; }

  void fill(float v);
  /// Sum of all elements / mean of all elements.
  double sum() const;
  double mean() const;

  std::string shape_str() const;

  /// Process-wide count of deep copies (copy-ctor + copy-assign that had to
  /// duplicate a buffer). Pinned by the copy-audit test to keep avoidable
  /// copies off the infer path.
  static std::uint64_t copies();

 private:
  struct Uninit {};  // tag: allocate without zero-fill
  Tensor(Shape shape, Uninit);

  void allocate(std::size_t n);  // arena if installed, else heap

  Shape shape_;
  std::size_t size_ = 0;
  float* data_ = nullptr;
  std::unique_ptr<float[]> heap_;  // owning iff heap-backed; null for arena/borrow
  bool borrowed_ = false;          // non-owning read-only view (Tensor::borrow)
};

/// Throws unless both tensors have identical shapes.
void check_same_shape(const Tensor& a, const Tensor& b, const char* who);

}  // namespace ascend::nn
