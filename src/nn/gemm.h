#pragma once
// gemm.h — blocked/tiled f32 GEMM kernel subsystem and the multiply-free
// packed-ternary matmul that serves ternary Linear layers.
//
// Dense kernels are cache-blocked and register-tiled: A and B blocks are
// packed into MR-/NR-interleaved panels so the micro-kernel's innermost loops
// stream contiguously and auto-vectorize, with an MR x NR accumulator tile
// the compiler keeps in vector registers across the whole contraction.
//
// Determinism: the accumulation order of every output element is fixed —
// the contraction dimension is walked ascending inside each K block and K
// blocks fold into C in ascending order. The optional row-band parallelism
// (GemmOptions) partitions *rows*, which never changes any element's
// operation order, so results are bit-identical run-to-run and across thread
// counts.
//
// Backend selection: the matmul/matmul_tn/matmul_nt wrappers in ops.h (and
// Linear's packed-ternary serving path) consult backend(), initialised once
// from the ASCEND_GEMM environment variable — "reference" selects the seed's
// naive scalar loops for bit-exact reproduction of pre-kernel results;
// anything else (or unset) selects the blocked kernels. set_backend()
// overrides programmatically (tests/benches; not thread-safe against
// in-flight GEMM calls).

#include <cstdint>

#include "nn/quant.h"  // PackedTernary

namespace ascend::runtime {
class ThreadPool;  // optional row-band parallelism; resolved via the runtime lib
}

namespace ascend::nn::gemm {

enum class Backend { kBlocked, kReference };

/// Active kernel backend (env-initialised; see header comment).
Backend backend();
/// Override the backend for this process (tests/benches only).
void set_backend(Backend b);

/// Micro-kernel tier of the blocked backend. kAuto resolves at startup to
/// the widest *bit-exact* tier the CPU supports: base (SSE 4x8) -> avx2
/// (6x16 FMA) -> avx512 (8x32 FMA). The f32 FMA tiers chain every output
/// element through one accumulator in k-ascending order, so avx2 and avx512
/// produce bit-identical results (vector width only changes how many
/// *independent* chains run side by side). kAvx512Bf16 is opt-in only and
/// never auto-selected: VDPBF16PS rounds both operands to bf16 and sums
/// k-pairs before folding, so its results differ from the f32 tiers — use it
/// for throughput experiments, not for accuracy-sensitive serving.
enum class Kernel { kAuto, kBase, kAvx2, kAvx512, kAvx512Bf16 };

/// True when the host CPU can execute tier `k` (kAuto and kBase: always).
bool kernel_supported(Kernel k);
/// Active micro-kernel tier (env-initialised from ASCEND_GEMM_KERNEL =
/// auto|base|avx2|avx512|avx512bf16; unsupported or unknown values fall back
/// to auto so a pinned config stays runnable on older hosts).
Kernel kernel();
/// Override the tier for this process. Throws std::invalid_argument when the
/// CPU lacks it (tests/benches only; not thread-safe against in-flight GEMMs).
void set_kernel(Kernel k);
/// Resolved tier name ("base", "avx2", "avx512", "avx512bf16") for bench
/// metadata — kAuto reports the tier it resolved to.
const char* kernel_name();

/// Row-band parallelism knobs for one GEMM call. Default is serial. When
/// `pool` is set, row bands run on it via ThreadPool::parallel_for (do not
/// call from inside a task of the same pool — caller-waits would deadlock).
/// Otherwise `threads > 1` uses OpenMP bands when the build has OpenMP and
/// falls back to serial when it does not. Either way the row partitioning is
/// numerically invisible (see determinism note above).
struct GemmOptions {
  int threads = 1;
  runtime::ThreadPool* pool = nullptr;
};

/// Pointer-level strided kernels. All ACCUMULATE into C (callers pass
/// zero-initialised or pre-loaded C); ld* are row strides of the *stored*
/// matrices, which lets attention read Q/K/V panels straight out of a fused
/// qkv projection and write per-head context tiles into the merged output.
///
/// C[m,n] += A[m,k] * B[k,n].
void gemm_nn(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
             int ldc, const GemmOptions& opts = {});
/// C[m,n] += A^T * B with A stored [k,m].
void gemm_tn(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
             int ldc, const GemmOptions& opts = {});
/// C[m,n] += A * B^T with B stored [n,k].
void gemm_nt(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
             int ldc, const GemmOptions& opts = {});

/// Thread count the ops.h wrappers pass for an m*n*k-flop product: matches
/// the seed's OpenMP heuristic (parallel above 16384 multiply-adds, serial
/// below; always 1 without OpenMP).
int recommended_threads(long long m, long long n, long long k);

/// Multiply-free packed-ternary matmul:
///   y[r, j] += step * (sum_{i in P_j} x[r, i] - sum_{i in N_j} x[r, i])
/// with P_j/N_j the word-packed sign planes of `w` (see PackedTernary).
/// x is row-major [m, w.rows] with row stride ldx; y is [m, w.cols] with row
/// stride ldy and is accumulated into. Rows whose nonzeros share one
/// magnitude (ternary-quantized activations — the W2A2 serving case) take a
/// word-parallel AND/popcount path; other rows fall back to sign-plane bit
/// iteration. Both paths accumulate in a fixed i-ascending order per output
/// and are deterministic; neither multiplies inside the contraction.
void ternary_matmul(const float* x, int m, int ldx, const PackedTernary& w, float* y, int ldy);

/// Fused W2A2 serving kernel: quantizes the *raw* activations ternary with
/// step `x_step` (levels -1/0/+1 via the thresholds x >= x_step/2 /
/// x <= -x_step/2, i.e. clamp(round(x / x_step), -1, +1) with halves away
/// from zero) straight into sign planes — no fake-quantized activation
/// tensor is materialised — then popcount-correlates them against the weight
/// planes: y[r, j] += w.step * x_step * (signed plane correlation). Agrees
/// with quantize-then-ternary_matmul up to boundary rounding of x / x_step.
void ternary_matmul_ternary_x(const float* x, int m, int ldx, float x_step,
                              const PackedTernary& w, float* y, int ldy);

}  // namespace ascend::nn::gemm
