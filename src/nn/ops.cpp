#include "nn/ops.h"

#include <cmath>
#include <stdexcept>

#include "nn/gemm.h"

namespace ascend::nn {
namespace {

void check_rank2(const Tensor& t, const char* who) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(who) + ": rank-2 tensor required");
}

constexpr float kInvSqrt2 = 0.7071067811865475f;
constexpr float kInvSqrt2Pi = 0.3989422804014327f;

bool use_reference_gemm() { return gemm::backend() == gemm::Backend::kReference; }

gemm::GemmOptions default_gemm_options(int m, int n, int k) {
  gemm::GemmOptions opts;
  opts.threads = gemm::recommended_threads(m, n, k);
  return opts;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul");
  check_rank2(b, "matmul");
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dimension mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (!use_reference_gemm()) {
    gemm::gemm_nn(m, n, k, pa, k, pb, n, pc, n, default_gemm_options(m, n, k));
    return c;
  }
  // ASCEND_GEMM=reference: the seed's naive loops, verbatim.
#pragma omp parallel for schedule(static) if (static_cast<long long>(m) * n * k > 16384)
  for (int i = 0; i < m; ++i) {
    float* crow = pc + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = pa[static_cast<std::size_t>(i) * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a_kxm, const Tensor& b_kxn) {
  check_rank2(a_kxm, "matmul_tn");
  check_rank2(b_kxn, "matmul_tn");
  const int k = a_kxm.dim(0), m = a_kxm.dim(1), n = b_kxn.dim(1);
  if (b_kxn.dim(0) != k) throw std::invalid_argument("matmul_tn: inner dimension mismatch");
  Tensor c({m, n});
  const float* pa = a_kxm.data();
  const float* pb = b_kxn.data();
  float* pc = c.data();
  if (!use_reference_gemm()) {
    gemm::gemm_tn(m, n, k, pa, m, pb, n, pc, n, default_gemm_options(m, n, k));
    return c;
  }
#pragma omp parallel for schedule(static) if (static_cast<long long>(m) * n * k > 16384)
  for (int i = 0; i < m; ++i) {
    float* crow = pc + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = pa[static_cast<std::size_t>(kk) * m + i];
      if (av == 0.0f) continue;
      const float* brow = pb + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a_mxn, const Tensor& b_kxn) {
  check_rank2(a_mxn, "matmul_nt");
  check_rank2(b_kxn, "matmul_nt");
  const int m = a_mxn.dim(0), n = a_mxn.dim(1), k = b_kxn.dim(0);
  if (b_kxn.dim(1) != n) throw std::invalid_argument("matmul_nt: inner dimension mismatch");
  Tensor c({m, k});
  const float* pa = a_mxn.data();
  const float* pb = b_kxn.data();
  float* pc = c.data();
  if (!use_reference_gemm()) {
    // C[m, k] = A[m, n] * B[k, n]^T: contraction over n.
    gemm::gemm_nt(m, k, n, pa, n, pb, n, pc, k, default_gemm_options(m, k, n));
    return c;
  }
#pragma omp parallel for schedule(static) if (static_cast<long long>(m) * n * k > 16384)
  for (int i = 0; i < m; ++i) {
    const float* arow = pa + static_cast<std::size_t>(i) * n;
    float* crow = pc + static_cast<std::size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const float* brow = pb + static_cast<std::size_t>(kk) * n;
      float acc = 0.0f;
      for (int j = 0; j < n; ++j) acc += arow[j] * brow[j];
      crow[kk] = acc;
    }
  }
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor c = Tensor::uninitialized(a.shape());
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = a[i] + b[i];
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor c = Tensor::uninitialized(a.shape());
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = a[i] - b[i];
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor c = Tensor::uninitialized(a.shape());
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = a[i] * b[i];
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = Tensor::uninitialized(a.shape());
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = a[i] * s;
  return c;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

Tensor gelu_forward(const Tensor& x) {
  Tensor y = Tensor::uninitialized(x.shape());
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float v = x[i];
    y[i] = 0.5f * v * (1.0f + std::erf(v * kInvSqrt2));
  }
  return y;
}

Tensor gelu_backward(const Tensor& x, const Tensor& grad_y) {
  check_same_shape(x, grad_y, "gelu_backward");
  Tensor gx = Tensor::uninitialized(x.shape());
  for (std::size_t i = 0; i < gx.size(); ++i) {
    const float v = x[i];
    const float phi = 0.5f * (1.0f + std::erf(v * kInvSqrt2));
    const float pdf = kInvSqrt2Pi * std::exp(-0.5f * v * v);
    gx[i] = grad_y[i] * (phi + v * pdf);
  }
  return gx;
}

Tensor softmax_rows(const Tensor& x) {
  check_rank2(x, "softmax_rows");
  const int rows = x.dim(0), cols = x.dim(1);
  Tensor y = Tensor::uninitialized(x.shape());
#pragma omp parallel for schedule(static) if (rows > 16)
  for (int r = 0; r < rows; ++r) {
    const float* xrow = x.data() + static_cast<std::size_t>(r) * cols;
    float* row = y.data() + static_cast<std::size_t>(r) * cols;
    float mx = xrow[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, xrow[c]);
    float sum = 0.0f;
    for (int c = 0; c < cols; ++c) {
      row[c] = std::exp(xrow[c] - mx);
      sum += row[c];
    }
    for (int c = 0; c < cols; ++c) row[c] /= sum;
  }
  return y;
}

Tensor softmax_rows_backward(const Tensor& y, const Tensor& grad_y) {
  check_same_shape(y, grad_y, "softmax_rows_backward");
  const int rows = y.dim(0), cols = y.dim(1);
  Tensor gx = Tensor::uninitialized(y.shape());
#pragma omp parallel for schedule(static) if (rows > 16)
  for (int r = 0; r < rows; ++r) {
    const float* yr = y.data() + static_cast<std::size_t>(r) * cols;
    const float* gr = grad_y.data() + static_cast<std::size_t>(r) * cols;
    float* out = gx.data() + static_cast<std::size_t>(r) * cols;
    float dot = 0.0f;
    for (int c = 0; c < cols; ++c) dot += yr[c] * gr[c];
    for (int c = 0; c < cols; ++c) out[c] = yr[c] * (gr[c] - dot);
  }
  return gx;
}

}  // namespace ascend::nn
