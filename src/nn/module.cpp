#include "nn/module.h"

#include <cmath>
#include <stdexcept>

#include "nn/gemm.h"

namespace ascend::nn {

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

Linear::Linear(int in_features, int out_features, Rng& rng, bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  w_.init_shape({in_, out_});
  const float bound = std::sqrt(2.0f / static_cast<float>(in_));
  rng.fill_normal(w_.value, 0.0f, bound);
  if (has_bias_) {
    b_.init_shape({out_});
    b_.no_weight_decay = true;
  }
}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_) throw std::invalid_argument("Linear::forward: bad input");
  cached_xq_ = input_quant_.forward(x);
  const Tensor wq = weight_quant_.forward(w_.value);
  Tensor y = matmul(cached_xq_, wq);
  if (has_bias_) {
    const int n = y.dim(0);
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < out_; ++c) y.at(r, c) += b_.value[static_cast<std::size_t>(c)];
  }
  return y;
}

Tensor Linear::infer(const Tensor& x) const {
  if (x.rank() != 2 || x.dim(1) != in_) throw std::invalid_argument("Linear::infer: bad input");
  const bool ternary_w =
      weight_quant_.enabled() && weight_quant_.spec().qn == -1 && weight_quant_.spec().qp == 1;
  // The multiply-free kernel only beats dense GEMM when the activations are
  // ternary too (the W2A2 serving regime): quantized rows then hit its
  // word-parallel popcount path. Ternary weights against full-precision or
  // multi-bit activations serve dense — the sign-plane bit-iteration
  // fallback would be slower than the blocked kernels.
  const bool ternary_a =
      input_quant_.enabled() && input_quant_.spec().qn == -1 && input_quant_.spec().qp == 1;
  Tensor y;
  if (ternary_w && ternary_a && gemm::backend() != gemm::Backend::kReference) {
    // Serve the word-packed sign planes through the multiply-free kernel
    // (adds/subtracts only; see gemm::ternary_matmul).
    const PackedTernary& pt = weight_quant_.frozen_packed_ternary(w_.value);
    y = Tensor({x.dim(0), out_});
    const float a_step = input_quant_.step();
    if (input_quant_.calibrated() && a_step > 0.0f) {
      // W2A2: raw activations quantize straight into sign planes (no
      // fake-quantized tensor), then popcount-correlate.
      gemm::ternary_matmul_ternary_x(x.data(), x.dim(0), in_, a_step, pt, y.data(), out_);
    } else {
      const Tensor xq = input_quant_.infer(x);
      gemm::ternary_matmul(xq.data(), xq.dim(0), in_, pt, y.data(), out_);
    }
  } else {
    // Weights are immutable while serving: quantize once, serve the snapshot.
    // A disabled input quantizer is the identity — use x directly instead of
    // paying a whole-tensor copy through LsqQuantizer::infer.
    Tensor xq_store;
    const Tensor* xq = &x;
    if (input_quant_.enabled()) {
      xq_store = input_quant_.infer(x);
      xq = &xq_store;
    }
    const Tensor& wq = weight_quant_.frozen_infer(w_.value);
    y = matmul(*xq, wq);
  }
  if (has_bias_) {
    const int n = y.dim(0);
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < out_; ++c) y.at(r, c) += b_.value[static_cast<std::size_t>(c)];
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (grad_out.rank() != 2 || grad_out.dim(1) != out_)
    throw std::invalid_argument("Linear::backward: bad grad");
  // dW = Xq^T * G, passed through the weight quantizer's STE.
  const Tensor gw = matmul_tn(cached_xq_, grad_out);
  add_inplace(w_.grad, weight_quant_.backward(gw));
  if (has_bias_) {
    const int n = grad_out.dim(0);
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < out_; ++c) b_.grad[static_cast<std::size_t>(c)] += grad_out.at(r, c);
  }
  // dX = G * Wq^T, passed through the input quantizer's STE.
  const Tensor wq = weight_quant_.enabled() ? weight_quant_.forward(w_.value) : w_.value;
  Tensor gx = matmul_nt(grad_out, wq);
  return input_quant_.backward(gx);
}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&w_);
  if (has_bias_) out.push_back(&b_);
  weight_quant_.collect_params(out);
  input_quant_.collect_params(out);
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

LayerNorm::LayerNorm(int features, float eps) : features_(features), eps_(eps) {
  gamma_.init_shape({features_});
  beta_.init_shape({features_});
  gamma_.value.fill(1.0f);
  gamma_.no_weight_decay = true;
  beta_.no_weight_decay = true;
}

Tensor LayerNorm::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != features_)
    throw std::invalid_argument("LayerNorm::forward: bad input");
  const int rows = x.dim(0);
  cached_xhat_ = Tensor(x.shape());
  cached_invstd_.assign(static_cast<std::size_t>(rows), 0.0f);
  Tensor y(x.shape());
  for (int r = 0; r < rows; ++r) {
    const float* xr = x.data() + static_cast<std::size_t>(r) * features_;
    float mean = 0.0f;
    for (int c = 0; c < features_; ++c) mean += xr[c];
    mean /= static_cast<float>(features_);
    float var = 0.0f;
    for (int c = 0; c < features_; ++c) var += (xr[c] - mean) * (xr[c] - mean);
    var /= static_cast<float>(features_);
    const float inv = 1.0f / std::sqrt(var + eps_);
    cached_invstd_[static_cast<std::size_t>(r)] = inv;
    for (int c = 0; c < features_; ++c) {
      const float xh = (xr[c] - mean) * inv;
      cached_xhat_.at(r, c) = xh;
      y.at(r, c) = xh * gamma_.value[static_cast<std::size_t>(c)] + beta_.value[static_cast<std::size_t>(c)];
    }
  }
  return y;
}

Tensor LayerNorm::infer(const Tensor& x) const {
  if (x.rank() != 2 || x.dim(1) != features_)
    throw std::invalid_argument("LayerNorm::infer: bad input");
  const int rows = x.dim(0);
  Tensor y = Tensor::uninitialized(x.shape());
  for (int r = 0; r < rows; ++r) {
    const float* xr = x.data() + static_cast<std::size_t>(r) * features_;
    float mean = 0.0f;
    for (int c = 0; c < features_; ++c) mean += xr[c];
    mean /= static_cast<float>(features_);
    float var = 0.0f;
    for (int c = 0; c < features_; ++c) var += (xr[c] - mean) * (xr[c] - mean);
    var /= static_cast<float>(features_);
    const float inv = 1.0f / std::sqrt(var + eps_);
    for (int c = 0; c < features_; ++c) {
      const float xh = (xr[c] - mean) * inv;
      y.at(r, c) = xh * gamma_.value[static_cast<std::size_t>(c)] + beta_.value[static_cast<std::size_t>(c)];
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  check_same_shape(grad_out, cached_xhat_, "LayerNorm::backward");
  const int rows = grad_out.dim(0);
  Tensor gx(grad_out.shape());
  for (int r = 0; r < rows; ++r) {
    float sum_g = 0.0f, sum_gx = 0.0f;
    for (int c = 0; c < features_; ++c) {
      const float gh = grad_out.at(r, c) * gamma_.value[static_cast<std::size_t>(c)];
      sum_g += gh;
      sum_gx += gh * cached_xhat_.at(r, c);
      gamma_.grad[static_cast<std::size_t>(c)] += grad_out.at(r, c) * cached_xhat_.at(r, c);
      beta_.grad[static_cast<std::size_t>(c)] += grad_out.at(r, c);
    }
    const float inv = cached_invstd_[static_cast<std::size_t>(r)];
    const float nf = static_cast<float>(features_);
    for (int c = 0; c < features_; ++c) {
      const float gh = grad_out.at(r, c) * gamma_.value[static_cast<std::size_t>(c)];
      gx.at(r, c) = inv * (gh - sum_g / nf - cached_xhat_.at(r, c) * sum_gx / nf);
    }
  }
  return gx;
}

void LayerNorm::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

// ---------------------------------------------------------------------------
// BatchNorm
// ---------------------------------------------------------------------------

BatchNorm::BatchNorm(int features, float eps, float momentum)
    : features_(features), eps_(eps), momentum_(momentum) {
  gamma_.init_shape({features_});
  beta_.init_shape({features_});
  gamma_.value.fill(1.0f);
  gamma_.no_weight_decay = true;
  beta_.no_weight_decay = true;
  running_mean_ = Tensor({features_});
  running_var_ = Tensor({features_}, 1.0f);
}

void BatchNorm::thaw() {
  std::lock_guard<std::mutex> lock(snap_mu_);
  snap_valid_.store(false, std::memory_order_release);
  snap_scale_.clear();
  snap_shift_.clear();
}

Tensor BatchNorm::forward(const Tensor& x, bool training) {
  if (x.rank() != 2 || x.dim(1) != features_)
    throw std::invalid_argument("BatchNorm::forward: bad input");
  if (!training) return infer(x);
  // Training is about to move the running stats (and the optimizer will move
  // gamma/beta next): any frozen serving snapshot is stale from here on.
  if (snap_valid_.load(std::memory_order_relaxed)) thaw();
  const int rows = x.dim(0);
  Tensor y(x.shape());
  cached_rows_ = rows;
  cached_xhat_ = Tensor(x.shape());
  cached_invstd_.assign(static_cast<std::size_t>(features_), 0.0f);
  for (int c = 0; c < features_; ++c) {
    float mean = 0.0f;
    for (int r = 0; r < rows; ++r) mean += x.at(r, c);
    mean /= static_cast<float>(rows);
    float var = 0.0f;
    for (int r = 0; r < rows; ++r) var += (x.at(r, c) - mean) * (x.at(r, c) - mean);
    var /= static_cast<float>(rows);
    const float inv = 1.0f / std::sqrt(var + eps_);
    cached_invstd_[static_cast<std::size_t>(c)] = inv;
    running_mean_[static_cast<std::size_t>(c)] =
        (1.0f - momentum_) * running_mean_[static_cast<std::size_t>(c)] + momentum_ * mean;
    running_var_[static_cast<std::size_t>(c)] =
        (1.0f - momentum_) * running_var_[static_cast<std::size_t>(c)] + momentum_ * var;
    for (int r = 0; r < rows; ++r) {
      const float xh = (x.at(r, c) - mean) * inv;
      cached_xhat_.at(r, c) = xh;
      y.at(r, c) = xh * gamma_.value[static_cast<std::size_t>(c)] + beta_.value[static_cast<std::size_t>(c)];
    }
  }
  return y;
}

Tensor BatchNorm::infer(const Tensor& x) const {
  if (x.rank() != 2 || x.dim(1) != features_)
    throw std::invalid_argument("BatchNorm::infer: bad input");
  // Serve from the frozen per-channel scale/shift (built on first use;
  // double-checked so concurrent first infers race safely).
  if (!snap_valid_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(snap_mu_);
    if (!snap_valid_.load(std::memory_order_relaxed)) {
      snap_scale_.assign(static_cast<std::size_t>(features_), 0.0f);
      snap_shift_.assign(static_cast<std::size_t>(features_), 0.0f);
      for (int c = 0; c < features_; ++c) {
        const std::size_t ci = static_cast<std::size_t>(c);
        const float scale =
            gamma_.value[ci] / std::sqrt(running_var_[ci] + eps_);
        snap_scale_[ci] = scale;
        snap_shift_[ci] = beta_.value[ci] - running_mean_[ci] * scale;
      }
      snap_valid_.store(true, std::memory_order_release);
    }
  }
  const int rows = x.dim(0);
  const float* scale = snap_scale_.data();
  const float* shift = snap_shift_.data();
  Tensor y = Tensor::uninitialized(x.shape());
  for (int r = 0; r < rows; ++r) {
    const float* xr = x.data() + static_cast<std::size_t>(r) * features_;
    float* yr = y.data() + static_cast<std::size_t>(r) * features_;
    for (int c = 0; c < features_; ++c) yr[c] = xr[c] * scale[c] + shift[c];
  }
  return y;
}

Tensor BatchNorm::backward(const Tensor& grad_out) {
  check_same_shape(grad_out, cached_xhat_, "BatchNorm::backward");
  const int rows = cached_rows_;
  Tensor gx(grad_out.shape());
  for (int c = 0; c < features_; ++c) {
    float sum_g = 0.0f, sum_gx = 0.0f;
    for (int r = 0; r < rows; ++r) {
      sum_g += grad_out.at(r, c);
      sum_gx += grad_out.at(r, c) * cached_xhat_.at(r, c);
      gamma_.grad[static_cast<std::size_t>(c)] += grad_out.at(r, c) * cached_xhat_.at(r, c);
      beta_.grad[static_cast<std::size_t>(c)] += grad_out.at(r, c);
    }
    const float inv = cached_invstd_[static_cast<std::size_t>(c)];
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float nf = static_cast<float>(rows);
    for (int r = 0; r < rows; ++r) {
      gx.at(r, c) = g * inv *
                    (grad_out.at(r, c) - sum_g / nf - cached_xhat_.at(r, c) * sum_gx / nf);
    }
  }
  return gx;
}

void BatchNorm::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

// ---------------------------------------------------------------------------
// Gelu
// ---------------------------------------------------------------------------

Tensor Gelu::forward(const Tensor& x) {
  cached_x_ = x;
  return gelu_forward(x);
}

Tensor Gelu::infer(const Tensor& x) const { return gelu_forward(x); }

Tensor Gelu::backward(const Tensor& grad_out) { return gelu_backward(cached_x_, grad_out); }

}  // namespace ascend::nn
