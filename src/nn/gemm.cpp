#include "nn/gemm.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "runtime/thread_pool.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ascend::nn::gemm {
namespace {

Backend init_backend() {
  const char* v = std::getenv("ASCEND_GEMM");
  if (v != nullptr && std::string_view(v) == "reference") return Backend::kReference;
  return Backend::kBlocked;
}

Backend& backend_ref() {
  static Backend b = init_backend();
  return b;
}

template <bool ATrans>
inline float a_elem(const float* a, int lda, int i, int p) {
  return ATrans ? a[static_cast<std::size_t>(p) * lda + i]
                : a[static_cast<std::size_t>(i) * lda + p];
}

template <bool BTrans>
inline float b_elem(const float* b, int ldb, int p, int j) {
  return BTrans ? b[static_cast<std::size_t>(j) * ldb + p]
                : b[static_cast<std::size_t>(p) * ldb + j];
}

// Seed-order naive loops (strided): the reference backend and the skinny-m
// path. BTrans == false reproduces the axpy-with-zero-skip order of the
// seed's matmul/matmul_tn; BTrans == true the dot order of matmul_nt.
template <bool ATrans, bool BTrans>
void gemm_naive(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
                int ldc) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    if constexpr (!BTrans) {
      for (int p = 0; p < k; ++p) {
        const float av = a_elem<ATrans>(a, lda, i, p);
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(p) * ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    } else {
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * ldb;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += a_elem<ATrans>(a, lda, i, p) * brow[p];
        crow[j] += acc;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Register-tiled micro-kernels.
//
// The micro-tile (MR rows x NR columns of C) is held in a local accumulator
// array the compiler keeps in vector registers across the whole kc
// contraction; each packed B-strip row is reused by all MR output rows. Two
// instantiations are compiled: a baseline for the build's default ISA
// (4 x 8 — eight xmm accumulators fit SSE2's register file) and an
// AVX2+FMA-targeted 6 x 16 (twelve ymm accumulators), selected once at
// startup by querying the CPU — the binary stays runnable on any x86-64.
// ---------------------------------------------------------------------------

/// kernel(kc, ap, bp, c, ldc, mr, nr): ap is the MR-interleaved packed A
/// panel (ap[p * MR + r]), bp the NR-interleaved packed B strip
/// (bp[p * NR + j]); only the live mr x nr corner folds into C.
using MicroKernelFn = void (*)(int, const float*, const float*, float*, int, int, int);

#if defined(__x86_64__) || defined(__i386__)
#define ASCEND_GEMM_X86 1
#endif

// The bf16 kernel needs the AVX512-BF16 intrinsics (GCC 10+ / Clang 9+).
#if defined(ASCEND_GEMM_X86) && \
    (defined(__clang__) ? (__clang_major__ >= 9) : (defined(__GNUC__) && __GNUC__ >= 10))
#define ASCEND_GEMM_BF16 1
#endif

#ifdef ASCEND_GEMM_X86

// 4 x 8 SSE kernel (eight xmm accumulators; SSE2 is baseline on x86-64).
void micro_kernel_base(int kc, const float* ap, const float* bp, float* c, int ldc, int mr,
                       int nr) {
  constexpr int MRv = 4, NRv = 8;
  __m128 acc[MRv][2];
  for (auto& row : acc) row[0] = row[1] = _mm_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const float* brow = bp + static_cast<std::size_t>(p) * NRv;
    const float* arow = ap + static_cast<std::size_t>(p) * MRv;
    const __m128 b0 = _mm_loadu_ps(brow);
    const __m128 b1 = _mm_loadu_ps(brow + 4);
    for (int r = 0; r < MRv; ++r) {
      const __m128 ar = _mm_set1_ps(arow[r]);
      acc[r][0] = _mm_add_ps(acc[r][0], _mm_mul_ps(ar, b0));
      acc[r][1] = _mm_add_ps(acc[r][1], _mm_mul_ps(ar, b1));
    }
  }
  for (int r = 0; r < mr; ++r) {
    alignas(16) float tmp[NRv];
    _mm_store_ps(tmp, acc[r][0]);
    _mm_store_ps(tmp + 4, acc[r][1]);
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += tmp[j];
  }
}

// 6 x 16 AVX2+FMA kernel (twelve ymm accumulators), compiled for AVX2 via
// the target attribute and selected at startup only when the CPU supports
// it — the binary stays runnable on any x86-64.
//
// Determinism note shared by the FMA tiers (avx2 and avx512 below): every
// output element accumulates through exactly one register lane, fmadd per
// k step in ascending order. Widening the vector only adds more independent
// lanes — it never reassociates a chain — so the two tiers are bit-identical
// on the blocked path and test_gemm asserts that.
__attribute__((target("avx2,fma"))) void micro_kernel_avx2(int kc, const float* ap,
                                                           const float* bp, float* c, int ldc,
                                                           int mr, int nr) {
  constexpr int MRv = 6, NRv = 16;
  __m256 acc[MRv][2];
  for (auto& row : acc) row[0] = row[1] = _mm256_setzero_ps();
  // Two contraction steps per iteration: halves loop overhead and gives the
  // scheduler two independent load/broadcast streams. The accumulation order
  // per element is unchanged (both steps chain through the same accumulator).
  int p = 0;
  for (; p + 2 <= kc; p += 2) {
    const float* brow = bp + static_cast<std::size_t>(p) * NRv;
    const float* arow = ap + static_cast<std::size_t>(p) * MRv;
    _mm_prefetch(reinterpret_cast<const char*>(brow + 8 * NRv), _MM_HINT_T0);
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    const __m256 b2 = _mm256_loadu_ps(brow + NRv);
    const __m256 b3 = _mm256_loadu_ps(brow + NRv + 8);
    for (int r = 0; r < MRv; ++r) {
      const __m256 ar0 = _mm256_broadcast_ss(arow + r);
      acc[r][0] = _mm256_fmadd_ps(ar0, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar0, b1, acc[r][1]);
      const __m256 ar1 = _mm256_broadcast_ss(arow + MRv + r);
      acc[r][0] = _mm256_fmadd_ps(ar1, b2, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar1, b3, acc[r][1]);
    }
  }
  for (; p < kc; ++p) {
    const float* brow = bp + static_cast<std::size_t>(p) * NRv;
    const float* arow = ap + static_cast<std::size_t>(p) * MRv;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    for (int r = 0; r < MRv; ++r) {
      const __m256 ar = _mm256_broadcast_ss(arow + r);
      acc[r][0] = _mm256_fmadd_ps(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < mr; ++r) {
    alignas(32) float tmp[NRv];
    _mm256_store_ps(tmp, acc[r][0]);
    _mm256_store_ps(tmp + 8, acc[r][1]);
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += tmp[j];
  }
}

// 8 x 32 AVX-512F kernel (sixteen zmm accumulators out of the 32-register
// file). Same structure as the AVX2 kernel — two-step unrolled k loop, one
// fmadd chain per output element — so results are bit-identical to it.
__attribute__((target("avx512f"))) void micro_kernel_avx512(int kc, const float* ap,
                                                            const float* bp, float* c, int ldc,
                                                            int mr, int nr) {
  constexpr int MRv = 8, NRv = 32;
  __m512 acc[MRv][2];
  for (auto& row : acc) row[0] = row[1] = _mm512_setzero_ps();
  int p = 0;
  for (; p + 2 <= kc; p += 2) {
    const float* brow = bp + static_cast<std::size_t>(p) * NRv;
    const float* arow = ap + static_cast<std::size_t>(p) * MRv;
    _mm_prefetch(reinterpret_cast<const char*>(brow + 8 * NRv), _MM_HINT_T0);
    const __m512 b0 = _mm512_loadu_ps(brow);
    const __m512 b1 = _mm512_loadu_ps(brow + 16);
    const __m512 b2 = _mm512_loadu_ps(brow + NRv);
    const __m512 b3 = _mm512_loadu_ps(brow + NRv + 16);
    for (int r = 0; r < MRv; ++r) {
      const __m512 ar0 = _mm512_set1_ps(arow[r]);
      acc[r][0] = _mm512_fmadd_ps(ar0, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(ar0, b1, acc[r][1]);
      const __m512 ar1 = _mm512_set1_ps(arow[MRv + r]);
      acc[r][0] = _mm512_fmadd_ps(ar1, b2, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(ar1, b3, acc[r][1]);
    }
  }
  for (; p < kc; ++p) {
    const float* brow = bp + static_cast<std::size_t>(p) * NRv;
    const float* arow = ap + static_cast<std::size_t>(p) * MRv;
    const __m512 b0 = _mm512_loadu_ps(brow);
    const __m512 b1 = _mm512_loadu_ps(brow + 16);
    for (int r = 0; r < MRv; ++r) {
      const __m512 ar = _mm512_set1_ps(arow[r]);
      acc[r][0] = _mm512_fmadd_ps(ar, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(ar, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < mr; ++r) {
    alignas(64) float tmp[NRv];
    _mm512_store_ps(tmp, acc[r][0]);
    _mm512_store_ps(tmp + 16, acc[r][1]);
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += tmp[j];
  }
}

#ifdef ASCEND_GEMM_BF16

/// Scalar round-to-nearest-even f32 -> bf16, matching VCVTNE2PS2BF16 so the
/// broadcast A pairs round exactly like the vector-converted B strips.
inline std::uint16_t f32_to_bf16_rne(float f) {
  std::uint32_t u = std::bit_cast<std::uint32_t>(f);
  if ((u & 0x7fffffffu) > 0x7f800000u) return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  u += 0x7fffu + ((u >> 16) & 1u);
  return static_cast<std::uint16_t>(u >> 16);
}

// 8 x 32 AVX512-BF16 kernel: VDPBF16PS contracts k *pairs* — both operands
// round to bf16 and the pair partial-sums before folding into the f32
// accumulator — so this tier is NOT bit-compatible with the f32 tiers and is
// never auto-selected (opt-in via ASCEND_GEMM_KERNEL=avx512bf16 or
// set_kernel). B pairs are built in-register: a two-source lane interleave
// of consecutive k rows feeds VCVTNE2PS2BF16, so the f32 packed panels are
// shared with every other tier and no bf16 repack pass exists.
__attribute__((target("avx512f,avx512bw,avx512bf16"))) void micro_kernel_avx512bf16(
    int kc, const float* ap, const float* bp, float* c, int ldc, int mr, int nr) {
  constexpr int MRv = 8, NRv = 32;
  __m512 acc[MRv][2];
  for (auto& row : acc) row[0] = row[1] = _mm512_setzero_ps();
  // Interleave maps: lane 2i <- src1 lane i, lane 2i+1 <- src2 lane i, for
  // the low (lanes 0..7) and high (8..15) halves of a 16-float strip chunk.
  const __m512i idx_lo =
      _mm512_setr_epi32(0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5, 21, 6, 22, 7, 23);
  const __m512i idx_hi =
      _mm512_setr_epi32(8, 24, 9, 25, 10, 26, 11, 27, 12, 28, 13, 29, 14, 30, 15, 31);
  const __m512 zero = _mm512_setzero_ps();
  for (int p = 0; p < kc; p += 2) {
    const float* brow = bp + static_cast<std::size_t>(p) * NRv;
    const float* arow = ap + static_cast<std::size_t>(p) * MRv;
    const bool pair = p + 1 < kc;  // odd tail: second row of the pair is zero
    const __m512 b0 = _mm512_loadu_ps(brow);
    const __m512 b1 = _mm512_loadu_ps(brow + 16);
    const __m512 b2 = pair ? _mm512_loadu_ps(brow + NRv) : zero;
    const __m512 b3 = pair ? _mm512_loadu_ps(brow + NRv + 16) : zero;
    // bf16 pair strips: element 2i/2i+1 of the bh vector are rows p/p+1 of
    // column (base + i).
    const __m512bh bp0 = _mm512_cvtne2ps_pbh(_mm512_permutex2var_ps(b0, idx_hi, b2),
                                             _mm512_permutex2var_ps(b0, idx_lo, b2));
    const __m512bh bp1 = _mm512_cvtne2ps_pbh(_mm512_permutex2var_ps(b1, idx_hi, b3),
                                             _mm512_permutex2var_ps(b1, idx_lo, b3));
    for (int r = 0; r < MRv; ++r) {
      const std::uint32_t a0 = f32_to_bf16_rne(arow[r]);
      const std::uint32_t a1 = pair ? f32_to_bf16_rne(arow[MRv + r]) : 0u;
      const __m512bh apair =
          std::bit_cast<__m512bh>(_mm512_set1_epi32(static_cast<int>(a0 | (a1 << 16))));
      acc[r][0] = _mm512_dpbf16_ps(acc[r][0], apair, bp0);
      acc[r][1] = _mm512_dpbf16_ps(acc[r][1], apair, bp1);
    }
  }
  for (int r = 0; r < mr; ++r) {
    alignas(64) float tmp[NRv];
    _mm512_store_ps(tmp, acc[r][0]);
    _mm512_store_ps(tmp + 16, acc[r][1]);
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += tmp[j];
  }
}

#endif  // ASCEND_GEMM_BF16

#else  // !ASCEND_GEMM_X86

// Portable scalar fallback: a 4 x 8 accumulator tile the compiler
// auto-vectorizes for whatever ISA the build targets.
void micro_kernel_base(int kc, const float* ap, const float* bp, float* c, int ldc, int mr,
                       int nr) {
  constexpr int MRv = 4, NRv = 8;
  float acc[MRv][NRv] = {};
  for (int p = 0; p < kc; ++p) {
    const float* brow = bp + static_cast<std::size_t>(p) * NRv;
    const float* arow = ap + static_cast<std::size_t>(p) * MRv;
    for (int r = 0; r < MRv; ++r) {
      const float ar = arow[r];
      for (int j = 0; j < NRv; ++j) acc[r][j] += ar * brow[j];
    }
  }
  for (int r = 0; r < mr; ++r) {
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += acc[r][j];
  }
}

#endif  // ASCEND_GEMM_X86

struct Tile {
  int mr;
  int nr;
  MicroKernelFn kernel;
  Kernel id;         ///< resolved tier (never kAuto)
  const char* name;  ///< bench/metrics label
};

/// Widest bit-exact f32 tier the CPU supports (bf16 is never auto-picked;
/// see the Kernel enum doc).
Kernel auto_kernel() {
#ifdef ASCEND_GEMM_X86
  if (__builtin_cpu_supports("avx512f")) return Kernel::kAvx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return Kernel::kAvx2;
#endif
  return Kernel::kBase;
}

Tile make_tile(Kernel k) {
  if (k == Kernel::kAuto) k = auto_kernel();
#ifdef ASCEND_GEMM_X86
  switch (k) {
#ifdef ASCEND_GEMM_BF16
    case Kernel::kAvx512Bf16:
      return Tile{8, 32, &micro_kernel_avx512bf16, Kernel::kAvx512Bf16, "avx512bf16"};
#endif
    case Kernel::kAvx512:
      return Tile{8, 32, &micro_kernel_avx512, Kernel::kAvx512, "avx512"};
    case Kernel::kAvx2:
      return Tile{6, 16, &micro_kernel_avx2, Kernel::kAvx2, "avx2"};
    default:
      break;
  }
#endif
  return Tile{4, 8, &micro_kernel_base, Kernel::kBase, "base"};
}

Kernel init_kernel() {
  const char* v = std::getenv("ASCEND_GEMM_KERNEL");
  if (v == nullptr) return Kernel::kAuto;
  const std::string_view s(v);
  Kernel want = Kernel::kAuto;
  if (s == "base")
    want = Kernel::kBase;
  else if (s == "avx2")
    want = Kernel::kAvx2;
  else if (s == "avx512")
    want = Kernel::kAvx512;
  else if (s == "avx512bf16")
    want = Kernel::kAvx512Bf16;
  // Unknown or unsupported pins fall back to auto so a config written on a
  // newer host stays runnable here.
  return kernel_supported(want) ? want : Kernel::kAuto;
}

Tile& tile_ref() {
  static Tile t = make_tile(init_kernel());
  return t;
}

const Tile& tile() { return tile_ref(); }

/// Pack an up-to-mr-row panel of the A block into mr_stride-interleaved
/// layout (dst[p * mr_stride + r]); rows beyond mr are zero so the
/// micro-kernel never branches on the edge.
template <bool ATrans>
void pack_a_panel(const float* a, int lda, int i0, int mr, int mr_stride, int p0, int kc,
                  float* dst) {
  for (int p = 0; p < kc; ++p) {
    float* d = dst + static_cast<std::size_t>(p) * mr_stride;
    for (int r = 0; r < mr; ++r) d[r] = a_elem<ATrans>(a, lda, i0 + r, p0 + p);
    for (int r = mr; r < mr_stride; ++r) d[r] = 0.0f;
  }
}

/// Pack an up-to-nr-column strip of the B block (dst[p * nr_stride + j],
/// zero-padded columns beyond nr).
template <bool BTrans>
void pack_b_strip(const float* b, int ldb, int p0, int kc, int j0, int nr, int nr_stride,
                  float* dst) {
  for (int p = 0; p < kc; ++p) {
    float* d = dst + static_cast<std::size_t>(p) * nr_stride;
    for (int j = 0; j < nr; ++j) d[j] = b_elem<BTrans>(b, ldb, p0 + p, j0 + j);
    for (int j = nr; j < nr_stride; ++j) d[j] = 0.0f;
  }
}

// Contraction block: KC x NR B strips stay L1-resident across a whole A
// panel; MC/NC bound the packed block footprints (multiples of mr/nr keep
// edges rare). The accumulation order of every C element is p-ascending
// inside each KC block with KC blocks folding into C in order — fixed
// regardless of tiling or row-band partitioning (determinism contract).
constexpr int KC = 256;

/// Grow-only thread-local packing scratch: per-call heap allocation of the
/// pack buffers would mmap/page-fault hundreds of KB on every GEMM. Each
/// thread (caller or pool worker) keeps its own, so parallel row bands never
/// share a buffer.
float* pack_scratch_a(std::size_t n) {
  thread_local std::vector<float> buf;
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

float* pack_scratch_b(std::size_t n) {
  thread_local std::vector<float> buf;
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

template <bool ATrans, bool BTrans>
void gemm_blocked(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
                  int ldc, const GemmOptions& opts) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const Tile& t = tile();
  const int MR = t.mr, NR = t.nr;
  // Skinny outputs cannot amortise an MR-padded panel; the seed-order loop is
  // near-optimal there (contiguous axpy / dot) and keeps batch-1 serving fast.
  if (m < MR) {
    gemm_naive<ATrans, BTrans>(m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  const int MC = 24 * MR;
  const int NC = 15 * NR;
  float* bpack = pack_scratch_b(static_cast<std::size_t>(KC) * NC);
  for (int jc = 0; jc < n; jc += NC) {
    const int nc = std::min(NC, n - jc);
    const int nstrips = (nc + NR - 1) / NR;
    for (int pc = 0; pc < k; pc += KC) {
      const int kc = std::min(KC, k - pc);
      for (int js = 0; js < nstrips; ++js) {
        const int j0 = jc + js * NR;
        pack_b_strip<BTrans>(b, ldb, pc, kc, j0, std::min(NR, n - j0), NR,
                             bpack + static_cast<std::size_t>(js) * kc * NR);
      }
      const int niblocks = (m + MC - 1) / MC;
      auto run_iblocks = [&](int ib0, int ib1) {
        float* apack = pack_scratch_a(static_cast<std::size_t>(MC) * kc);
        for (int ib = ib0; ib < ib1; ++ib) {
          const int ic = ib * MC;
          const int mc = std::min(MC, m - ic);
          const int npanels = (mc + MR - 1) / MR;
          for (int is = 0; is < npanels; ++is) {
            const int i0 = ic + is * MR;
            pack_a_panel<ATrans>(a, lda, i0, std::min(MR, m - i0), MR, pc, kc,
                                 apack + static_cast<std::size_t>(is) * kc * MR);
          }
          for (int js = 0; js < nstrips; ++js) {
            const int j0 = jc + js * NR;
            const int nr = std::min(NR, n - j0);
            const float* bp = bpack + static_cast<std::size_t>(js) * kc * NR;
            for (int is = 0; is < npanels; ++is) {
              const int i0 = ic + is * MR;
              t.kernel(kc, apack + static_cast<std::size_t>(is) * kc * MR, bp,
                       c + static_cast<std::size_t>(i0) * ldc + j0, ldc, std::min(MR, m - i0),
                       nr);
            }
          }
        }
      };
      if (opts.pool != nullptr && niblocks > 1) {
        opts.pool->parallel_for(0, niblocks, run_iblocks);
        continue;
      }
#ifdef _OPENMP
      const int nthreads = std::min(opts.threads, niblocks);
      if (nthreads > 1) {
#pragma omp parallel for schedule(static) num_threads(nthreads)
        for (int ib = 0; ib < niblocks; ++ib) run_iblocks(ib, ib + 1);
        continue;
      }
#endif
      run_iblocks(0, niblocks);
    }
  }
}

template <bool ATrans, bool BTrans>
void gemm_dispatch(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
                   int ldc, const GemmOptions& opts) {
  if (backend() == Backend::kReference)
    gemm_naive<ATrans, BTrans>(m, n, k, a, lda, b, ldb, c, ldc);
  else
    gemm_blocked<ATrans, BTrans>(m, n, k, a, lda, b, ldb, c, ldc, opts);
}

}  // namespace

Backend backend() { return backend_ref(); }
void set_backend(Backend b) { backend_ref() = b; }

bool kernel_supported(Kernel k) {
  switch (k) {
    case Kernel::kAuto:
    case Kernel::kBase:
      return true;
#ifdef ASCEND_GEMM_X86
    case Kernel::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Kernel::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
    case Kernel::kAvx512Bf16:
#ifdef ASCEND_GEMM_BF16
      return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bf16");
#else
      return false;
#endif
#endif
    default:
      return false;
  }
}

Kernel kernel() { return tile_ref().id; }

void set_kernel(Kernel k) {
  if (!kernel_supported(k))
    throw std::invalid_argument("gemm::set_kernel: kernel tier unsupported on this CPU");
  tile_ref() = make_tile(k);
}

const char* kernel_name() { return tile_ref().name; }

void gemm_nn(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
             int ldc, const GemmOptions& opts) {
  gemm_dispatch<false, false>(m, n, k, a, lda, b, ldb, c, ldc, opts);
}

void gemm_tn(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
             int ldc, const GemmOptions& opts) {
  gemm_dispatch<true, false>(m, n, k, a, lda, b, ldb, c, ldc, opts);
}

void gemm_nt(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
             int ldc, const GemmOptions& opts) {
  gemm_dispatch<false, true>(m, n, k, a, lda, b, ldb, c, ldc, opts);
}

int recommended_threads(long long m, long long n, long long k) {
#ifdef _OPENMP
  if (m * n * k > 16384) return omp_get_max_threads();
#else
  (void)m;
  (void)n;
  (void)k;
#endif
  return 1;
}

namespace {

/// Popcount correlation of one activation sign pair against all weight
/// columns: y[j] += scale * (|xp&P_j| + |xn&N_j| - |xp&N_j| - |xn&P_j|).
/// W is the compile-time words-per-plane so the inner loop fully unrolls for
/// the common serving widths (k <= 256).
template <int W>
[[gnu::always_inline]] inline void ternary_popcount_cols(const std::uint64_t* xp,
                                                         const std::uint64_t* xn,
                                                         const std::uint64_t* col_words, int n,
                                                         float scale, float* yr) {
  const std::uint64_t* col = col_words;
  for (int j = 0; j < n; ++j, col += 2 * W) {
    int acc = 0;
    for (int t = 0; t < W; ++t) {
      acc += std::popcount(xp[t] & col[t]);
      acc += std::popcount(xn[t] & col[W + t]);
      acc -= std::popcount(xp[t] & col[W + t]);
      acc -= std::popcount(xn[t] & col[t]);
    }
    yr[j] += scale * static_cast<float>(acc);
  }
}

[[gnu::always_inline]] inline void ternary_cols_body(const std::uint64_t* xp,
                                                     const std::uint64_t* xn,
                                                     const std::uint64_t* col_words, int n,
                                                     int nwords, float scale, float* yr) {
  switch (nwords) {
    case 1:
      ternary_popcount_cols<1>(xp, xn, col_words, n, scale, yr);
      return;
    case 2:
      ternary_popcount_cols<2>(xp, xn, col_words, n, scale, yr);
      return;
    case 3:
      ternary_popcount_cols<3>(xp, xn, col_words, n, scale, yr);
      return;
    case 4:
      ternary_popcount_cols<4>(xp, xn, col_words, n, scale, yr);
      return;
    default:
      break;
  }
  const std::uint64_t* col = col_words;
  for (int j = 0; j < n; ++j, col += 2 * nwords) {
    int acc = 0;
    for (int t = 0; t < nwords; ++t) {
      acc += std::popcount(xp[t] & col[t]);
      acc += std::popcount(xn[t] & col[nwords + t]);
      acc -= std::popcount(xp[t] & col[nwords + t]);
      acc -= std::popcount(xn[t] & col[t]);
    }
    yr[j] += scale * static_cast<float>(acc);
  }
}

using TernaryColsFn = void (*)(const std::uint64_t*, const std::uint64_t*, const std::uint64_t*,
                               int, int, float, float*);

// std::popcount lowers to a library call on baseline x86-64 (POPCNT arrived
// with SSE4.2) — the hardware-popcount clone is selected at startup exactly
// like the AVX2 GEMM micro-kernel.
void ternary_cols_base(const std::uint64_t* xp, const std::uint64_t* xn,
                       const std::uint64_t* col_words, int n, int nwords, float scale,
                       float* yr) {
  ternary_cols_body(xp, xn, col_words, n, nwords, scale, yr);
}

#ifdef ASCEND_GEMM_X86
__attribute__((target("popcnt"))) void ternary_cols_popcnt(const std::uint64_t* xp,
                                                           const std::uint64_t* xn,
                                                           const std::uint64_t* col_words, int n,
                                                           int nwords, float scale, float* yr) {
  ternary_cols_body(xp, xn, col_words, n, nwords, scale, yr);
}
#endif

TernaryColsFn ternary_cols() {
  static const TernaryColsFn fn = [] {
#ifdef ASCEND_GEMM_X86
    if (__builtin_cpu_supports("popcnt")) return &ternary_cols_popcnt;
#endif
    return &ternary_cols_base;
  }();
  return fn;
}

/// Grow-only thread-local activation sign planes (same rationale as the
/// dense pack scratch: the batch-1 serving path must not malloc per call).
/// Returns 2*nwords words: xp at [0], xn at [nwords].
std::uint64_t* sign_plane_scratch(int nwords) {
  thread_local std::vector<std::uint64_t> buf;
  const std::size_t need = 2 * static_cast<std::size_t>(nwords);
  if (buf.size() < need) buf.resize(need);
  return buf.data();
}

}  // namespace

void ternary_matmul(const float* x, int m, int ldx, const PackedTernary& w, float* y, int ldy) {
  const int k = w.rows, n = w.cols;
  if (m <= 0 || k <= 0 || n <= 0) return;
  const int nwords = w.words_per_plane;
  std::uint64_t* const xp = sign_plane_scratch(nwords);
  std::uint64_t* const xn = xp + nwords;
  for (int r = 0; r < m; ++r) {
    const float* xr = x + static_cast<std::size_t>(r) * ldx;
    float* yr = y + static_cast<std::size_t>(r) * ldy;
    // Ternary-activation detection: if every nonzero shares one magnitude the
    // whole row contribution is step * mag * (integer count), computable with
    // word-parallel AND/popcount over the sign planes — exact, no rounding.
    float mag = 0.0f;
    bool uniform = true;
    for (int i = 0; i < k; ++i) {
      const float v = xr[i];
      if (v == 0.0f) continue;
      const float av = std::fabs(v);
      if (mag == 0.0f)
        mag = av;
      else if (av != mag) {
        uniform = false;
        break;
      }
    }
    if (uniform && mag == 0.0f) continue;  // all-zero row contributes nothing
    if (uniform) {
      std::fill(xp, xp + nwords, 0u);
      std::fill(xn, xn + nwords, 0u);
      for (int i = 0; i < k; ++i) {
        const float v = xr[i];
        if (v > 0.0f)
          xp[static_cast<std::size_t>(i) >> 6] |= std::uint64_t{1} << (i & 63);
        else if (v < 0.0f)
          xn[static_cast<std::size_t>(i) >> 6] |= std::uint64_t{1} << (i & 63);
      }
      const float scale = w.step * mag;
      ternary_cols()(xp, xn, w.col_words.data(), n, nwords, scale, yr);
    } else {
      // General activations: walk each sign plane's set bits in ascending i
      // order (fixed deterministic accumulation), adds/subtracts only.
      const std::uint64_t* col = w.col_words.data();
      for (int j = 0; j < n; ++j, col += 2 * nwords) {
        float sp = 0.0f, sn = 0.0f;
        for (int t = 0; t < nwords; ++t) {
          const int base = t << 6;
          std::uint64_t wv = col[t];
          while (wv != 0) {
            sp += xr[base + std::countr_zero(wv)];
            wv &= wv - 1;
          }
          wv = col[nwords + t];
          while (wv != 0) {
            sn += xr[base + std::countr_zero(wv)];
            wv &= wv - 1;
          }
        }
        yr[j] += w.step * (sp - sn);
      }
    }
  }
}

void ternary_matmul_ternary_x(const float* x, int m, int ldx, float x_step,
                              const PackedTernary& w, float* y, int ldy) {
  const int k = w.rows, n = w.cols;
  if (m <= 0 || k <= 0 || n <= 0) return;
  const int nwords = w.words_per_plane;
  const float s = std::max(x_step, 1e-6f);
  // clamp(round(x / s), -1, +1) as sign thresholds: +1 iff x >= s/2, -1 iff
  // x <= -s/2 (round halves away from zero). This skips materialising the
  // fake-quantized activation tensor entirely — raw activations quantize
  // straight into the sign planes.
  const float hi = 0.5f * s;
  const float scale = w.step * s;
  std::uint64_t* const xp = sign_plane_scratch(nwords);
  std::uint64_t* const xn = xp + nwords;
  for (int r = 0; r < m; ++r) {
    const float* xr = x + static_cast<std::size_t>(r) * ldx;
    std::fill(xp, xp + nwords, 0u);
    std::fill(xn, xn + nwords, 0u);
    for (int i = 0; i < k; ++i) {
      const float v = xr[i];
      if (v >= hi)
        xp[static_cast<std::size_t>(i) >> 6] |= std::uint64_t{1} << (i & 63);
      else if (v <= -hi)
        xn[static_cast<std::size_t>(i) >> 6] |= std::uint64_t{1} << (i & 63);
    }
    ternary_cols()(xp, xn, w.col_words.data(), n, nwords, scale,
                   y + static_cast<std::size_t>(r) * ldy);
  }
}

}  // namespace ascend::nn::gemm
