#include "nn/gemm.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <string_view>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "runtime/thread_pool.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace ascend::nn::gemm {
namespace {

Backend init_backend() {
  const char* v = std::getenv("ASCEND_GEMM");
  if (v != nullptr && std::string_view(v) == "reference") return Backend::kReference;
  return Backend::kBlocked;
}

Backend& backend_ref() {
  static Backend b = init_backend();
  return b;
}

template <bool ATrans>
inline float a_elem(const float* a, int lda, int i, int p) {
  return ATrans ? a[static_cast<std::size_t>(p) * lda + i]
                : a[static_cast<std::size_t>(i) * lda + p];
}

template <bool BTrans>
inline float b_elem(const float* b, int ldb, int p, int j) {
  return BTrans ? b[static_cast<std::size_t>(j) * ldb + p]
                : b[static_cast<std::size_t>(p) * ldb + j];
}

// Seed-order naive loops (strided): the reference backend and the skinny-m
// path. BTrans == false reproduces the axpy-with-zero-skip order of the
// seed's matmul/matmul_tn; BTrans == true the dot order of matmul_nt.
template <bool ATrans, bool BTrans>
void gemm_naive(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
                int ldc) {
  for (int i = 0; i < m; ++i) {
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    if constexpr (!BTrans) {
      for (int p = 0; p < k; ++p) {
        const float av = a_elem<ATrans>(a, lda, i, p);
        if (av == 0.0f) continue;
        const float* brow = b + static_cast<std::size_t>(p) * ldb;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    } else {
      for (int j = 0; j < n; ++j) {
        const float* brow = b + static_cast<std::size_t>(j) * ldb;
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += a_elem<ATrans>(a, lda, i, p) * brow[p];
        crow[j] += acc;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Register-tiled micro-kernels.
//
// The micro-tile (MR rows x NR columns of C) is held in a local accumulator
// array the compiler keeps in vector registers across the whole kc
// contraction; each packed B-strip row is reused by all MR output rows. Two
// instantiations are compiled: a baseline for the build's default ISA
// (4 x 8 — eight xmm accumulators fit SSE2's register file) and an
// AVX2+FMA-targeted 6 x 16 (twelve ymm accumulators), selected once at
// startup by querying the CPU — the binary stays runnable on any x86-64.
// ---------------------------------------------------------------------------

/// kernel(kc, ap, bp, c, ldc, mr, nr): ap is the MR-interleaved packed A
/// panel (ap[p * MR + r]), bp the NR-interleaved packed B strip
/// (bp[p * NR + j]); only the live mr x nr corner folds into C.
using MicroKernelFn = void (*)(int, const float*, const float*, float*, int, int, int);

#if defined(__x86_64__) || defined(__i386__)
#define ASCEND_GEMM_X86 1
#endif

#ifdef ASCEND_GEMM_X86

// 4 x 8 SSE kernel (eight xmm accumulators; SSE2 is baseline on x86-64).
void micro_kernel_base(int kc, const float* ap, const float* bp, float* c, int ldc, int mr,
                       int nr) {
  constexpr int MRv = 4, NRv = 8;
  __m128 acc[MRv][2];
  for (auto& row : acc) row[0] = row[1] = _mm_setzero_ps();
  for (int p = 0; p < kc; ++p) {
    const float* brow = bp + static_cast<std::size_t>(p) * NRv;
    const float* arow = ap + static_cast<std::size_t>(p) * MRv;
    const __m128 b0 = _mm_loadu_ps(brow);
    const __m128 b1 = _mm_loadu_ps(brow + 4);
    for (int r = 0; r < MRv; ++r) {
      const __m128 ar = _mm_set1_ps(arow[r]);
      acc[r][0] = _mm_add_ps(acc[r][0], _mm_mul_ps(ar, b0));
      acc[r][1] = _mm_add_ps(acc[r][1], _mm_mul_ps(ar, b1));
    }
  }
  for (int r = 0; r < mr; ++r) {
    alignas(16) float tmp[NRv];
    _mm_store_ps(tmp, acc[r][0]);
    _mm_store_ps(tmp + 4, acc[r][1]);
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += tmp[j];
  }
}

// 6 x 16 AVX2+FMA kernel (twelve ymm accumulators), compiled for AVX2 via
// the target attribute and selected at startup only when the CPU supports
// it — the binary stays runnable on any x86-64.
__attribute__((target("avx2,fma"))) void micro_kernel_avx2(int kc, const float* ap,
                                                           const float* bp, float* c, int ldc,
                                                           int mr, int nr) {
  constexpr int MRv = 6, NRv = 16;
  __m256 acc[MRv][2];
  for (auto& row : acc) row[0] = row[1] = _mm256_setzero_ps();
  // Two contraction steps per iteration: halves loop overhead and gives the
  // scheduler two independent load/broadcast streams. The accumulation order
  // per element is unchanged (both steps chain through the same accumulator).
  int p = 0;
  for (; p + 2 <= kc; p += 2) {
    const float* brow = bp + static_cast<std::size_t>(p) * NRv;
    const float* arow = ap + static_cast<std::size_t>(p) * MRv;
    _mm_prefetch(reinterpret_cast<const char*>(brow + 8 * NRv), _MM_HINT_T0);
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    const __m256 b2 = _mm256_loadu_ps(brow + NRv);
    const __m256 b3 = _mm256_loadu_ps(brow + NRv + 8);
    for (int r = 0; r < MRv; ++r) {
      const __m256 ar0 = _mm256_broadcast_ss(arow + r);
      acc[r][0] = _mm256_fmadd_ps(ar0, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar0, b1, acc[r][1]);
      const __m256 ar1 = _mm256_broadcast_ss(arow + MRv + r);
      acc[r][0] = _mm256_fmadd_ps(ar1, b2, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar1, b3, acc[r][1]);
    }
  }
  for (; p < kc; ++p) {
    const float* brow = bp + static_cast<std::size_t>(p) * NRv;
    const float* arow = ap + static_cast<std::size_t>(p) * MRv;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    for (int r = 0; r < MRv; ++r) {
      const __m256 ar = _mm256_broadcast_ss(arow + r);
      acc[r][0] = _mm256_fmadd_ps(ar, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(ar, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < mr; ++r) {
    alignas(32) float tmp[NRv];
    _mm256_store_ps(tmp, acc[r][0]);
    _mm256_store_ps(tmp + 8, acc[r][1]);
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += tmp[j];
  }
}

#else  // !ASCEND_GEMM_X86

// Portable scalar fallback: a 4 x 8 accumulator tile the compiler
// auto-vectorizes for whatever ISA the build targets.
void micro_kernel_base(int kc, const float* ap, const float* bp, float* c, int ldc, int mr,
                       int nr) {
  constexpr int MRv = 4, NRv = 8;
  float acc[MRv][NRv] = {};
  for (int p = 0; p < kc; ++p) {
    const float* brow = bp + static_cast<std::size_t>(p) * NRv;
    const float* arow = ap + static_cast<std::size_t>(p) * MRv;
    for (int r = 0; r < MRv; ++r) {
      const float ar = arow[r];
      for (int j = 0; j < NRv; ++j) acc[r][j] += ar * brow[j];
    }
  }
  for (int r = 0; r < mr; ++r) {
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    for (int j = 0; j < nr; ++j) crow[j] += acc[r][j];
  }
}

#endif  // ASCEND_GEMM_X86

struct Tile {
  int mr;
  int nr;
  MicroKernelFn kernel;
};

Tile select_tile() {
#ifdef ASCEND_GEMM_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return Tile{6, 16, &micro_kernel_avx2};
#endif
  return Tile{4, 8, &micro_kernel_base};
}

const Tile& tile() {
  static const Tile t = select_tile();
  return t;
}

/// Pack an up-to-mr-row panel of the A block into mr_stride-interleaved
/// layout (dst[p * mr_stride + r]); rows beyond mr are zero so the
/// micro-kernel never branches on the edge.
template <bool ATrans>
void pack_a_panel(const float* a, int lda, int i0, int mr, int mr_stride, int p0, int kc,
                  float* dst) {
  for (int p = 0; p < kc; ++p) {
    float* d = dst + static_cast<std::size_t>(p) * mr_stride;
    for (int r = 0; r < mr; ++r) d[r] = a_elem<ATrans>(a, lda, i0 + r, p0 + p);
    for (int r = mr; r < mr_stride; ++r) d[r] = 0.0f;
  }
}

/// Pack an up-to-nr-column strip of the B block (dst[p * nr_stride + j],
/// zero-padded columns beyond nr).
template <bool BTrans>
void pack_b_strip(const float* b, int ldb, int p0, int kc, int j0, int nr, int nr_stride,
                  float* dst) {
  for (int p = 0; p < kc; ++p) {
    float* d = dst + static_cast<std::size_t>(p) * nr_stride;
    for (int j = 0; j < nr; ++j) d[j] = b_elem<BTrans>(b, ldb, p0 + p, j0 + j);
    for (int j = nr; j < nr_stride; ++j) d[j] = 0.0f;
  }
}

// Contraction block: KC x NR B strips stay L1-resident across a whole A
// panel; MC/NC bound the packed block footprints (multiples of mr/nr keep
// edges rare). The accumulation order of every C element is p-ascending
// inside each KC block with KC blocks folding into C in order — fixed
// regardless of tiling or row-band partitioning (determinism contract).
constexpr int KC = 256;

/// Grow-only thread-local packing scratch: per-call heap allocation of the
/// pack buffers would mmap/page-fault hundreds of KB on every GEMM. Each
/// thread (caller or pool worker) keeps its own, so parallel row bands never
/// share a buffer.
float* pack_scratch_a(std::size_t n) {
  thread_local std::vector<float> buf;
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

float* pack_scratch_b(std::size_t n) {
  thread_local std::vector<float> buf;
  if (buf.size() < n) buf.resize(n);
  return buf.data();
}

template <bool ATrans, bool BTrans>
void gemm_blocked(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
                  int ldc, const GemmOptions& opts) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const Tile& t = tile();
  const int MR = t.mr, NR = t.nr;
  // Skinny outputs cannot amortise an MR-padded panel; the seed-order loop is
  // near-optimal there (contiguous axpy / dot) and keeps batch-1 serving fast.
  if (m < MR) {
    gemm_naive<ATrans, BTrans>(m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  const int MC = 24 * MR;
  const int NC = 15 * NR;
  float* bpack = pack_scratch_b(static_cast<std::size_t>(KC) * NC);
  for (int jc = 0; jc < n; jc += NC) {
    const int nc = std::min(NC, n - jc);
    const int nstrips = (nc + NR - 1) / NR;
    for (int pc = 0; pc < k; pc += KC) {
      const int kc = std::min(KC, k - pc);
      for (int js = 0; js < nstrips; ++js) {
        const int j0 = jc + js * NR;
        pack_b_strip<BTrans>(b, ldb, pc, kc, j0, std::min(NR, n - j0), NR,
                             bpack + static_cast<std::size_t>(js) * kc * NR);
      }
      const int niblocks = (m + MC - 1) / MC;
      auto run_iblocks = [&](int ib0, int ib1) {
        float* apack = pack_scratch_a(static_cast<std::size_t>(MC) * kc);
        for (int ib = ib0; ib < ib1; ++ib) {
          const int ic = ib * MC;
          const int mc = std::min(MC, m - ic);
          const int npanels = (mc + MR - 1) / MR;
          for (int is = 0; is < npanels; ++is) {
            const int i0 = ic + is * MR;
            pack_a_panel<ATrans>(a, lda, i0, std::min(MR, m - i0), MR, pc, kc,
                                 apack + static_cast<std::size_t>(is) * kc * MR);
          }
          for (int js = 0; js < nstrips; ++js) {
            const int j0 = jc + js * NR;
            const int nr = std::min(NR, n - j0);
            const float* bp = bpack + static_cast<std::size_t>(js) * kc * NR;
            for (int is = 0; is < npanels; ++is) {
              const int i0 = ic + is * MR;
              t.kernel(kc, apack + static_cast<std::size_t>(is) * kc * MR, bp,
                       c + static_cast<std::size_t>(i0) * ldc + j0, ldc, std::min(MR, m - i0),
                       nr);
            }
          }
        }
      };
      if (opts.pool != nullptr && niblocks > 1) {
        opts.pool->parallel_for(0, niblocks, run_iblocks);
        continue;
      }
#ifdef _OPENMP
      const int nthreads = std::min(opts.threads, niblocks);
      if (nthreads > 1) {
#pragma omp parallel for schedule(static) num_threads(nthreads)
        for (int ib = 0; ib < niblocks; ++ib) run_iblocks(ib, ib + 1);
        continue;
      }
#endif
      run_iblocks(0, niblocks);
    }
  }
}

template <bool ATrans, bool BTrans>
void gemm_dispatch(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
                   int ldc, const GemmOptions& opts) {
  if (backend() == Backend::kReference)
    gemm_naive<ATrans, BTrans>(m, n, k, a, lda, b, ldb, c, ldc);
  else
    gemm_blocked<ATrans, BTrans>(m, n, k, a, lda, b, ldb, c, ldc, opts);
}

}  // namespace

Backend backend() { return backend_ref(); }
void set_backend(Backend b) { backend_ref() = b; }

void gemm_nn(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
             int ldc, const GemmOptions& opts) {
  gemm_dispatch<false, false>(m, n, k, a, lda, b, ldb, c, ldc, opts);
}

void gemm_tn(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
             int ldc, const GemmOptions& opts) {
  gemm_dispatch<true, false>(m, n, k, a, lda, b, ldb, c, ldc, opts);
}

void gemm_nt(int m, int n, int k, const float* a, int lda, const float* b, int ldb, float* c,
             int ldc, const GemmOptions& opts) {
  gemm_dispatch<false, true>(m, n, k, a, lda, b, ldb, c, ldc, opts);
}

int recommended_threads(long long m, long long n, long long k) {
#ifdef _OPENMP
  if (m * n * k > 16384) return omp_get_max_threads();
#else
  (void)m;
  (void)n;
  (void)k;
#endif
  return 1;
}

namespace {

/// Popcount correlation of one activation sign pair against all weight
/// columns: y[j] += scale * (|xp&P_j| + |xn&N_j| - |xp&N_j| - |xn&P_j|).
/// W is the compile-time words-per-plane so the inner loop fully unrolls for
/// the common serving widths (k <= 256).
template <int W>
[[gnu::always_inline]] inline void ternary_popcount_cols(const std::uint64_t* xp,
                                                         const std::uint64_t* xn,
                                                         const std::uint64_t* col_words, int n,
                                                         float scale, float* yr) {
  const std::uint64_t* col = col_words;
  for (int j = 0; j < n; ++j, col += 2 * W) {
    int acc = 0;
    for (int t = 0; t < W; ++t) {
      acc += std::popcount(xp[t] & col[t]);
      acc += std::popcount(xn[t] & col[W + t]);
      acc -= std::popcount(xp[t] & col[W + t]);
      acc -= std::popcount(xn[t] & col[t]);
    }
    yr[j] += scale * static_cast<float>(acc);
  }
}

[[gnu::always_inline]] inline void ternary_cols_body(const std::uint64_t* xp,
                                                     const std::uint64_t* xn,
                                                     const std::uint64_t* col_words, int n,
                                                     int nwords, float scale, float* yr) {
  switch (nwords) {
    case 1:
      ternary_popcount_cols<1>(xp, xn, col_words, n, scale, yr);
      return;
    case 2:
      ternary_popcount_cols<2>(xp, xn, col_words, n, scale, yr);
      return;
    case 3:
      ternary_popcount_cols<3>(xp, xn, col_words, n, scale, yr);
      return;
    case 4:
      ternary_popcount_cols<4>(xp, xn, col_words, n, scale, yr);
      return;
    default:
      break;
  }
  const std::uint64_t* col = col_words;
  for (int j = 0; j < n; ++j, col += 2 * nwords) {
    int acc = 0;
    for (int t = 0; t < nwords; ++t) {
      acc += std::popcount(xp[t] & col[t]);
      acc += std::popcount(xn[t] & col[nwords + t]);
      acc -= std::popcount(xp[t] & col[nwords + t]);
      acc -= std::popcount(xn[t] & col[t]);
    }
    yr[j] += scale * static_cast<float>(acc);
  }
}

using TernaryColsFn = void (*)(const std::uint64_t*, const std::uint64_t*, const std::uint64_t*,
                               int, int, float, float*);

// std::popcount lowers to a library call on baseline x86-64 (POPCNT arrived
// with SSE4.2) — the hardware-popcount clone is selected at startup exactly
// like the AVX2 GEMM micro-kernel.
void ternary_cols_base(const std::uint64_t* xp, const std::uint64_t* xn,
                       const std::uint64_t* col_words, int n, int nwords, float scale,
                       float* yr) {
  ternary_cols_body(xp, xn, col_words, n, nwords, scale, yr);
}

#ifdef ASCEND_GEMM_X86
__attribute__((target("popcnt"))) void ternary_cols_popcnt(const std::uint64_t* xp,
                                                           const std::uint64_t* xn,
                                                           const std::uint64_t* col_words, int n,
                                                           int nwords, float scale, float* yr) {
  ternary_cols_body(xp, xn, col_words, n, nwords, scale, yr);
}
#endif

TernaryColsFn ternary_cols() {
  static const TernaryColsFn fn = [] {
#ifdef ASCEND_GEMM_X86
    if (__builtin_cpu_supports("popcnt")) return &ternary_cols_popcnt;
#endif
    return &ternary_cols_base;
  }();
  return fn;
}

/// Grow-only thread-local activation sign planes (same rationale as the
/// dense pack scratch: the batch-1 serving path must not malloc per call).
/// Returns 2*nwords words: xp at [0], xn at [nwords].
std::uint64_t* sign_plane_scratch(int nwords) {
  thread_local std::vector<std::uint64_t> buf;
  const std::size_t need = 2 * static_cast<std::size_t>(nwords);
  if (buf.size() < need) buf.resize(need);
  return buf.data();
}

}  // namespace

void ternary_matmul(const float* x, int m, int ldx, const PackedTernary& w, float* y, int ldy) {
  const int k = w.rows, n = w.cols;
  if (m <= 0 || k <= 0 || n <= 0) return;
  const int nwords = w.words_per_plane;
  std::uint64_t* const xp = sign_plane_scratch(nwords);
  std::uint64_t* const xn = xp + nwords;
  for (int r = 0; r < m; ++r) {
    const float* xr = x + static_cast<std::size_t>(r) * ldx;
    float* yr = y + static_cast<std::size_t>(r) * ldy;
    // Ternary-activation detection: if every nonzero shares one magnitude the
    // whole row contribution is step * mag * (integer count), computable with
    // word-parallel AND/popcount over the sign planes — exact, no rounding.
    float mag = 0.0f;
    bool uniform = true;
    for (int i = 0; i < k; ++i) {
      const float v = xr[i];
      if (v == 0.0f) continue;
      const float av = std::fabs(v);
      if (mag == 0.0f)
        mag = av;
      else if (av != mag) {
        uniform = false;
        break;
      }
    }
    if (uniform && mag == 0.0f) continue;  // all-zero row contributes nothing
    if (uniform) {
      std::fill(xp, xp + nwords, 0u);
      std::fill(xn, xn + nwords, 0u);
      for (int i = 0; i < k; ++i) {
        const float v = xr[i];
        if (v > 0.0f)
          xp[static_cast<std::size_t>(i) >> 6] |= std::uint64_t{1} << (i & 63);
        else if (v < 0.0f)
          xn[static_cast<std::size_t>(i) >> 6] |= std::uint64_t{1} << (i & 63);
      }
      const float scale = w.step * mag;
      ternary_cols()(xp, xn, w.col_words.data(), n, nwords, scale, yr);
    } else {
      // General activations: walk each sign plane's set bits in ascending i
      // order (fixed deterministic accumulation), adds/subtracts only.
      const std::uint64_t* col = w.col_words.data();
      for (int j = 0; j < n; ++j, col += 2 * nwords) {
        float sp = 0.0f, sn = 0.0f;
        for (int t = 0; t < nwords; ++t) {
          const int base = t << 6;
          std::uint64_t wv = col[t];
          while (wv != 0) {
            sp += xr[base + std::countr_zero(wv)];
            wv &= wv - 1;
          }
          wv = col[nwords + t];
          while (wv != 0) {
            sn += xr[base + std::countr_zero(wv)];
            wv &= wv - 1;
          }
        }
        yr[j] += w.step * (sp - sn);
      }
    }
  }
}

void ternary_matmul_ternary_x(const float* x, int m, int ldx, float x_step,
                              const PackedTernary& w, float* y, int ldy) {
  const int k = w.rows, n = w.cols;
  if (m <= 0 || k <= 0 || n <= 0) return;
  const int nwords = w.words_per_plane;
  const float s = std::max(x_step, 1e-6f);
  // clamp(round(x / s), -1, +1) as sign thresholds: +1 iff x >= s/2, -1 iff
  // x <= -s/2 (round halves away from zero). This skips materialising the
  // fake-quantized activation tensor entirely — raw activations quantize
  // straight into the sign planes.
  const float hi = 0.5f * s;
  const float scale = w.step * s;
  std::uint64_t* const xp = sign_plane_scratch(nwords);
  std::uint64_t* const xn = xp + nwords;
  for (int r = 0; r < m; ++r) {
    const float* xr = x + static_cast<std::size_t>(r) * ldx;
    std::fill(xp, xp + nwords, 0u);
    std::fill(xn, xn + nwords, 0u);
    for (int i = 0; i < k; ++i) {
      const float v = xr[i];
      if (v >= hi)
        xp[static_cast<std::size_t>(i) >> 6] |= std::uint64_t{1} << (i & 63);
      else if (v <= -hi)
        xn[static_cast<std::size_t>(i) >> 6] |= std::uint64_t{1} << (i & 63);
    }
    ternary_cols()(xp, xn, w.col_words.data(), n, nwords, scale,
                   y + static_cast<std::size_t>(r) * ldy);
  }
}

}  // namespace ascend::nn::gemm
