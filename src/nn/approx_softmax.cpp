#include "nn/approx_softmax.h"

#include <stdexcept>

namespace ascend::nn {

namespace {

// One Euler step over every row: y += (x*y - y*(x.y))/k. Shared by the
// training forward and the const infer path so they cannot diverge.
void approx_softmax_step(const Tensor& x, Tensor& y, float invk) {
  const int rows = x.dim(0), m = x.dim(1);
#pragma omp parallel for schedule(static) if (rows > 16)
  for (int r = 0; r < rows; ++r) {
    const float* xr = x.data() + static_cast<std::size_t>(r) * m;
    float* yr = y.data() + static_cast<std::size_t>(r) * m;
    float s = 0.0f;
    for (int i = 0; i < m; ++i) s += xr[i] * yr[i];
    for (int i = 0; i < m; ++i) {
      const float z = xr[i] * yr[i];
      yr[i] += (z - yr[i] * s) * invk;
    }
  }
}

}  // namespace

ApproxSoftmax::ApproxSoftmax(int k) : k_(k) {
  if (k < 1) throw std::invalid_argument("ApproxSoftmax: k >= 1");
}

void ApproxSoftmax::set_k(int k) {
  if (k < 1) throw std::invalid_argument("ApproxSoftmax::set_k: k >= 1");
  k_ = k;
}

Tensor ApproxSoftmax::forward(const Tensor& x) {
  if (x.rank() != 2) throw std::invalid_argument("ApproxSoftmax::forward: rank-2 required");
  const int rows = x.dim(0), m = x.dim(1);
  cached_x_ = x;
  cached_u_.clear();
  cached_u_.reserve(static_cast<std::size_t>(k_));

  Tensor y({rows, m}, 1.0f / static_cast<float>(m));
  const float invk = 1.0f / static_cast<float>(k_);
  for (int j = 0; j < k_; ++j) {
    cached_u_.push_back(y);
    approx_softmax_step(x, y, invk);
  }
  return y;
}

Tensor ApproxSoftmax::infer(const Tensor& x) const {
  if (x.rank() != 2) throw std::invalid_argument("ApproxSoftmax::infer: rank-2 required");
  Tensor y({x.dim(0), x.dim(1)}, 1.0f / static_cast<float>(x.dim(1)));
  const float invk = 1.0f / static_cast<float>(k_);
  for (int j = 0; j < k_; ++j) approx_softmax_step(x, y, invk);
  return y;
}

Tensor ApproxSoftmax::backward(const Tensor& grad_out) {
  check_same_shape(grad_out, cached_x_, "ApproxSoftmax::backward");
  const int rows = grad_out.dim(0), m = grad_out.dim(1);
  const float invk = 1.0f / static_cast<float>(k_);

  Tensor g = grad_out;                 // running dL/dy_j
  Tensor gx({rows, m});                // accumulated dL/dx
  for (int j = k_ - 1; j >= 0; --j) {
    const Tensor& u = cached_u_[static_cast<std::size_t>(j)];
#pragma omp parallel for schedule(static) if (rows > 16)
    for (int r = 0; r < rows; ++r) {
      const float* xr = cached_x_.data() + static_cast<std::size_t>(r) * m;
      const float* ur = u.data() + static_cast<std::size_t>(r) * m;
      float* gr = g.data() + static_cast<std::size_t>(r) * m;
      float* gxr = gx.data() + static_cast<std::size_t>(r) * m;
      float s = 0.0f, gu = 0.0f;
      for (int i = 0; i < m; ++i) {
        s += xr[i] * ur[i];
        gu += gr[i] * ur[i];
      }
      for (int i = 0; i < m; ++i) {
        gxr[i] += (gr[i] - gu) * ur[i] * invk;
        gr[i] = gr[i] * (1.0f + xr[i] * invk - s * invk) - gu * xr[i] * invk;
      }
    }
  }
  // g now holds dL/du_0, which flows nowhere (y_0 is the constant 1/m);
  // the layer's input gradient is the accumulated dL/dx.
  return gx;
}

}  // namespace ascend::nn
