#include "serialize/checkpoint.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <fstream>

#include "runtime/failpoint.h"

namespace ascend::serialize {
namespace {

using Kind = CheckpointError::Kind;

[[noreturn]] void fail(Kind kind, const std::string& msg) { throw CheckpointError(kind, msg); }

// Fault-injection sites for the checkpoint read path. All four raise the
// native CheckpointError taxonomy through an `err` action, so clients
// exercise exactly the code paths a real bad disk / bad file would take.
namespace failpoint = ascend::runtime::failpoint;
failpoint::Site fp_open{"ckpt.open"};
failpoint::Site fp_read{"ckpt.read"};
failpoint::Site fp_mmap{"ckpt.mmap"};
failpoint::Site fp_crc{"ckpt.crc"};

constexpr std::size_t kHeaderBytes = 128;
constexpr std::size_t kRecordBytes = 128;
constexpr std::uint32_t kMaxRecords = 1u << 20;

// On-disk structs. Fixed-width members, no implicit padding (verified by the
// static_asserts); always copied in/out with memcpy, never aliased in place,
// so buffer alignment is irrelevant.
struct FileHeader {
  char magic[8];
  std::uint32_t endian;
  std::uint32_t version;
  std::uint64_t file_bytes;      ///< total checkpoint size (truncation check)
  std::uint64_t config_offset;
  std::uint64_t config_bytes;
  std::uint64_t table_offset;
  std::uint64_t payload_offset;
  std::uint32_t record_count;
  std::uint32_t config_crc;
  std::uint32_t table_crc;
  std::uint8_t reserved[56];     ///< zero; room for future versions
  std::uint32_t header_crc;      ///< CRC32 over the preceding 124 bytes
};
static_assert(sizeof(FileHeader) == kHeaderBytes, "header layout drifted");

struct RawRecord {
  char name[kMaxName + 1];       ///< NUL-terminated, NUL-padded
  std::uint32_t dtype;
  std::uint32_t rank;
  std::int32_t dims[4];
  std::uint64_t offset;
  std::uint64_t bytes;
  std::uint32_t crc;
  std::uint32_t reserved;
};
static_assert(sizeof(RawRecord) == kRecordBytes, "record layout drifted");

std::size_t dtype_size(DType t) { return t == DType::kU64 ? 8 : 4; }

std::uint64_t align_up(std::uint64_t v, std::uint64_t a) { return (v + a - 1) / a * a; }

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  // IEEE 802.3 reflected CRC32, byte-at-a-time table (built once, thread-safe
  // since C++11 magic statics).
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFFu];
  return ~crc;
}

std::size_t Record::element_count() const {
  std::size_t n = 1;
  for (int d : dims) n *= static_cast<std::size_t>(d);
  return dims.empty() ? 0 : n;
}

// ---------------------------------------------------------------------------
// Writer

void CheckpointWriter::add_f32(const std::string& name, const std::vector<int>& dims,
                               const float* data) {
  std::size_t n = 1;
  for (int d : dims) n *= static_cast<std::size_t>(d > 0 ? d : 0);
  add_blob(name, DType::kF32, dims, data, n * sizeof(float));
}

void CheckpointWriter::add_u64(const std::string& name, const std::vector<int>& dims,
                               const std::uint64_t* data, std::size_t count) {
  add_blob(name, DType::kU64, dims, data, count * sizeof(std::uint64_t));
}

void CheckpointWriter::add_blob(const std::string& name, DType dtype, const std::vector<int>& dims,
                                const void* data, std::size_t bytes) {
  if (name.empty() || name.size() > kMaxName)
    fail(Kind::kSchema, "record name '" + name + "' empty or longer than 79 chars");
  if (dims.empty() || dims.size() > 4)
    fail(Kind::kSchema, "record '" + name + "': rank must be 1..4");
  std::size_t n = 1;
  for (int d : dims) {
    if (d <= 0) fail(Kind::kSchema, "record '" + name + "': non-positive dim");
    n *= static_cast<std::size_t>(d);
  }
  if (n * dtype_size(dtype) != bytes)
    fail(Kind::kSchema, "record '" + name + "': dims/bytes mismatch");
  for (const auto& p : pending_)
    if (p.name == name) fail(Kind::kSchema, "duplicate record name '" + name + "'");
  Pending p;
  p.name = name;
  p.dtype = dtype;
  p.dims = dims;
  p.data.resize(bytes);
  if (bytes) std::memcpy(p.data.data(), data, bytes);
  pending_.push_back(std::move(p));
}

void CheckpointWriter::write(const std::string& path) const {
  FileHeader hdr{};
  std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
  hdr.endian = kEndianTag;
  hdr.version = kFormatVersion;
  hdr.config_offset = kHeaderBytes;
  hdr.config_bytes = config_.size();
  hdr.table_offset = align_up(hdr.config_offset + hdr.config_bytes, 8);
  hdr.record_count = static_cast<std::uint32_t>(pending_.size());
  hdr.payload_offset =
      align_up(hdr.table_offset + hdr.record_count * kRecordBytes, kPayloadAlign);

  // Lay the payload out first so the record table can carry final offsets.
  std::vector<RawRecord> table(pending_.size());
  std::uint64_t cursor = hdr.payload_offset;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Pending& p = pending_[i];
    RawRecord& r = table[i];
    std::memset(&r, 0, sizeof(r));
    std::memcpy(r.name, p.name.data(), p.name.size());
    r.dtype = static_cast<std::uint32_t>(p.dtype);
    r.rank = static_cast<std::uint32_t>(p.dims.size());
    for (std::size_t d = 0; d < p.dims.size(); ++d) r.dims[d] = p.dims[d];
    r.offset = cursor = align_up(cursor, kPayloadAlign);
    r.bytes = p.data.size();
    r.crc = crc32(p.data.data(), p.data.size());
    cursor += r.bytes;
  }
  hdr.file_bytes = cursor;
  hdr.config_crc = crc32(config_.data(), config_.size());
  hdr.table_crc = crc32(table.data(), table.size() * kRecordBytes);
  hdr.header_crc = crc32(&hdr, kHeaderBytes - sizeof(std::uint32_t));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail(Kind::kIo, "cannot open '" + path + "' for writing");
  std::vector<char> zeros(kPayloadAlign, 0);
  auto pad_to = [&](std::uint64_t target) {
    auto pos = static_cast<std::uint64_t>(out.tellp());
    if (pos < target) out.write(zeros.data(), static_cast<std::streamsize>(target - pos));
  };
  out.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  out.write(config_.data(), static_cast<std::streamsize>(config_.size()));
  pad_to(hdr.table_offset);
  out.write(reinterpret_cast<const char*>(table.data()),
            static_cast<std::streamsize>(table.size() * kRecordBytes));
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    pad_to(table[i].offset);
    out.write(reinterpret_cast<const char*>(pending_[i].data.data()),
              static_cast<std::streamsize>(pending_[i].data.size()));
  }
  out.flush();
  if (!out) fail(Kind::kIo, "short write to '" + path + "'");
}

// ---------------------------------------------------------------------------
// View / validation

void CheckpointView::parse(const std::byte* base, std::size_t len, const std::string& origin) {
  base_ = base;
  len_ = len;

  // Ordered so each corruption mode surfaces its own Kind: a file that is
  // not a checkpoint at all reports kBadMagic before any size talk, and a
  // future-version file reports kUnsupportedVersion even though its header
  // CRC (computed by the newer writer over fields we may not know) would
  // also mismatch our expectations.
  if (len < sizeof(kMagic)) fail(Kind::kTruncated, origin + ": shorter than the magic");
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0)
    fail(Kind::kBadMagic, origin + ": not an ASCENDCK checkpoint");
  if (len < kHeaderBytes) fail(Kind::kTruncated, origin + ": truncated header");
  FileHeader hdr;
  std::memcpy(&hdr, base, sizeof(hdr));
  if (hdr.endian != kEndianTag)
    fail(Kind::kBadMagic, origin + ": byte-order mismatch (foreign-endian writer)");
  if (hdr.version > kFormatVersion)
    fail(Kind::kUnsupportedVersion, origin + ": format version " + std::to_string(hdr.version) +
                                        " > supported " + std::to_string(kFormatVersion));
  if (crc32(&hdr, kHeaderBytes - sizeof(std::uint32_t)) != hdr.header_crc)
    fail(Kind::kCorrupt, origin + ": header checksum mismatch");
  if (hdr.file_bytes > len)
    fail(Kind::kTruncated, origin + ": header claims " + std::to_string(hdr.file_bytes) +
                               " bytes, file has " + std::to_string(len));
  if (hdr.file_bytes < len) fail(Kind::kCorrupt, origin + ": trailing bytes past the directory");
  if (hdr.record_count > kMaxRecords) fail(Kind::kCorrupt, origin + ": absurd record count");

  auto region_ok = [&](std::uint64_t off, std::uint64_t bytes) {
    return off >= kHeaderBytes && off <= hdr.file_bytes && bytes <= hdr.file_bytes - off;
  };
  if (!region_ok(hdr.config_offset, hdr.config_bytes))
    fail(Kind::kTruncated, origin + ": config block out of bounds");
  const std::uint64_t table_bytes = std::uint64_t{hdr.record_count} * kRecordBytes;
  if (!region_ok(hdr.table_offset, table_bytes))
    fail(Kind::kTruncated, origin + ": record table out of bounds");

  if (crc32(base + hdr.config_offset, hdr.config_bytes) != hdr.config_crc)
    fail(Kind::kCorrupt, origin + ": config block checksum mismatch");
  if (crc32(base + hdr.table_offset, table_bytes) != hdr.table_crc)
    fail(Kind::kCorrupt, origin + ": record table checksum mismatch");

  version_ = hdr.version;
  config_.assign(reinterpret_cast<const char*>(base + hdr.config_offset), hdr.config_bytes);

  records_.clear();
  records_.reserve(hdr.record_count);
  for (std::uint32_t i = 0; i < hdr.record_count; ++i) {
    RawRecord raw;
    std::memcpy(&raw, base + hdr.table_offset + std::uint64_t{i} * kRecordBytes, sizeof(raw));
    const std::string id = origin + " record " + std::to_string(i);
    if (raw.name[kMaxName] != '\0' || raw.name[0] == '\0')
      fail(Kind::kBadRecord, id + ": malformed name field");
    Record rec;
    rec.name = raw.name;
    if (raw.dtype > static_cast<std::uint32_t>(DType::kU64))
      fail(Kind::kBadRecord, id + " ('" + rec.name + "'): unknown dtype");
    rec.dtype = static_cast<DType>(raw.dtype);
    if (raw.rank < 1 || raw.rank > 4)
      fail(Kind::kBadRecord, id + " ('" + rec.name + "'): rank out of range");
    for (std::uint32_t d = 0; d < raw.rank; ++d) {
      if (raw.dims[d] <= 0) fail(Kind::kBadRecord, id + " ('" + rec.name + "'): bad dimension");
      rec.dims.push_back(raw.dims[d]);
    }
    rec.offset = raw.offset;
    rec.bytes = raw.bytes;
    rec.crc = raw.crc;
    if (rec.offset % kPayloadAlign != 0)
      fail(Kind::kBadRecord, id + " ('" + rec.name + "'): blob misaligned");
    if (rec.offset > hdr.file_bytes || rec.bytes > hdr.file_bytes - rec.offset)
      fail(Kind::kBadRecord, id + " ('" + rec.name + "'): blob extends past end of file");
    if (rec.element_count() * dtype_size(rec.dtype) != rec.bytes)
      fail(Kind::kBadRecord, id + " ('" + rec.name + "'): dims/bytes mismatch");
    if (find(rec.name) != nullptr)
      fail(Kind::kBadRecord, id + ": duplicate record name '" + rec.name + "'");
    records_.push_back(std::move(rec));
  }

  // Payload battery last: every blob's checksum, so a single flipped bit
  // anywhere in the weights is caught at open time, not at first forward.
  ASCEND_FAILPOINT_OR(fp_crc, fail(Kind::kCorrupt, origin + ": injected checksum fault"));
  for (const Record& r : records_)
    if (crc32(base + r.offset, r.bytes) != r.crc)
      fail(Kind::kCorrupt, origin + ": blob '" + r.name + "' checksum mismatch");
}

const Record* CheckpointView::find(const std::string& name) const {
  for (const Record& r : records_)
    if (r.name == name) return &r;
  return nullptr;
}

const Record& CheckpointView::at(const std::string& name) const {
  const Record* r = find(name);
  if (!r) fail(Kind::kSchema, "missing record '" + name + "'");
  return *r;
}

nn::Tensor CheckpointView::read_f32(const std::string& name) const {
  const Record& r = at(name);
  if (r.dtype != DType::kF32) fail(Kind::kSchema, "record '" + name + "' is not f32");
  nn::Tensor t = nn::Tensor::uninitialized(nn::Shape(r.dims));
  std::memcpy(t.data(), payload(r), r.bytes);
  return t;
}

CheckpointReader::CheckpointReader(const std::string& path) {
  ASCEND_FAILPOINT_OR(fp_open, fail(Kind::kIo, "injected open fault on '" + path + "'"));
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) fail(Kind::kIo, "cannot open '" + path + "'");
  const auto end = in.tellg();
  buf_.resize(static_cast<std::size_t>(end));
  in.seekg(0);
  if (!buf_.empty()) in.read(reinterpret_cast<char*>(buf_.data()), end);
  ASCEND_FAILPOINT_OR(fp_read, fail(Kind::kIo, "injected read fault on '" + path + "'"));
  if (!in) fail(Kind::kIo, "short read from '" + path + "'");
  parse(buf_.data(), buf_.size(), "'" + path + "'");
}

// ---------------------------------------------------------------------------
// Mmap

std::shared_ptr<MmapCheckpoint> MmapCheckpoint::open(const std::string& path) {
  ASCEND_FAILPOINT_OR(fp_mmap, fail(Kind::kIo, "injected mmap fault on '" + path + "'"));
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(Kind::kIo, "cannot open '" + path + "'");
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(Kind::kIo, "fstat failed on '" + path + "'");
  }
  const auto len = static_cast<std::size_t>(st.st_size);
  if (len == 0) {
    ::close(fd);
    fail(Kind::kTruncated, "'" + path + "': empty file");
  }
  void* p = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference to the file
  if (p == MAP_FAILED) fail(Kind::kIo, "mmap failed on '" + path + "'");
  // If parse() throws, the shared_ptr destroys the half-open object and the
  // destructor tears the mapping down.
  std::shared_ptr<MmapCheckpoint> ck(new MmapCheckpoint());
  ck->map_ = p;
  ck->map_len_ = len;
  ck->parse(static_cast<const std::byte*>(p), len, "'" + path + "'");
  return ck;
}

MmapCheckpoint::~MmapCheckpoint() {
  if (map_) ::munmap(map_, map_len_);
}

nn::Tensor MmapCheckpoint::view_f32(const std::string& name) const {
  const Record& r = at(name);
  if (r.dtype != DType::kF32) fail(Kind::kSchema, "record '" + name + "' is not f32");
  return nn::Tensor::borrow(nn::Shape(r.dims), reinterpret_cast<const float*>(payload(r)));
}

}  // namespace ascend::serialize
