// model_io.cpp — VisionTransformer <-> checkpoint mapping (see model_io.h),
// plus the serialize-layer definitions of vit::VisionTransformer::save/load
// and runtime::ModelRegistry::register_from_file. Those members are declared
// in lower-layer headers but defined here: serialization sits above nn/vit/
// runtime in the link order, and defining the members in this library keeps
// the lower layers free of any checkpoint dependency while giving callers
// the natural `model.save(path)` / `registry.register_from_file(...)` spelling.

#include "serialize/model_io.h"

#include <cmath>
#include <cstring>
#include <functional>
#include <map>
#include <sstream>

#include "runtime/arena.h"
#include "runtime/registry.h"
#include "vit/sc_inference.h"
#include "vit/servable.h"

namespace ascend::serialize {
namespace {

using nn::LsqQuantizer;
using nn::Param;
using nn::Tensor;
using Kind = CheckpointError::Kind;

[[noreturn]] void fail(Kind kind, const std::string& msg) { throw CheckpointError(kind, msg); }

std::vector<int> dims_of(const Tensor& t) {
  std::vector<int> d;
  for (std::size_t i = 0; i < t.shape().size(); ++i) d.push_back(t.shape()[i]);
  return d;
}

// ---------------------------------------------------------------------------
// Walker: one deterministic traversal defines the record namespace for both
// save and load — the two can never drift apart.

struct Visitor {
  std::function<void(const std::string&, Param&)> param;
  std::function<void(const std::string&, Tensor&)> stat;  ///< BN running stats
  /// `owner` is the Linear whose weights this quantizer serves (frozen
  /// packed-plane records attach here); null for input/residual quantizers.
  std::function<void(const std::string&, LsqQuantizer&, nn::Linear*)> quant;
};

void visit_norm(const std::string& prefix, vit::NormLayer& norm, const Visitor& v) {
  if (nn::LayerNorm* ln = norm.layer_norm()) {
    v.param(prefix + ".gamma", ln->gamma());
    v.param(prefix + ".beta", ln->beta());
  } else {
    nn::BatchNorm* bn = norm.batch_norm();
    v.param(prefix + ".gamma", bn->gamma());
    v.param(prefix + ".beta", bn->beta());
    v.stat(prefix + ".running_mean", bn->running_mean());
    v.stat(prefix + ".running_var", bn->running_var());
  }
}

void visit_linear(const std::string& prefix, nn::Linear& lin, const Visitor& v,
                  bool with_quants) {
  v.param(prefix + ".weight", lin.weight());
  if (!lin.bias().value.empty()) v.param(prefix + ".bias", lin.bias());
  if (with_quants) {
    v.quant(prefix + ".wq", lin.weight_quant(), &lin);
    v.quant(prefix + ".aq", lin.input_quant(), nullptr);
  }
}

void walk_model(vit::VisionTransformer& m, const Visitor& v) {
  // Patch embed and head stay full precision by construction (model.h), so
  // their quantizers carry no state worth serializing.
  visit_linear("patch_embed", m.patch_embed(), v, /*with_quants=*/false);
  v.param("pos_embed", m.pos_embed());
  auto& blocks = m.blocks();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const std::string p = "blocks." + std::to_string(i);
    vit::EncoderBlock& blk = blocks[i];
    visit_norm(p + ".norm1", blk.norm1(), v);
    visit_linear(p + ".msa.qkv", blk.msa().qkv(), v, true);
    visit_linear(p + ".msa.proj", blk.msa().proj(), v, true);
    v.quant(p + ".rq1", blk.residual_quant1(), nullptr);
    visit_norm(p + ".norm2", blk.norm2(), v);
    visit_linear(p + ".mlp.fc1", blk.mlp().fc1(), v, true);
    visit_linear(p + ".mlp.fc2", blk.mlp().fc2(), v, true);
    v.quant(p + ".rq2", blk.residual_quant2(), nullptr);
  }
  visit_norm("final_norm", m.final_norm(), v);
  visit_linear("head", m.head(), v, /*with_quants=*/false);
}

// ---------------------------------------------------------------------------
// Config block: key=value lines, one per topology / precision knob.

std::string make_config(vit::VisionTransformer& m) {
  const vit::VitConfig& c = m.config();
  const vit::PrecisionSpec& p = m.precision();
  const bool approx = !m.blocks().empty() &&
                      m.blocks().front().msa().softmax_kind() == nn::SoftmaxKind::kApprox;
  std::ostringstream os;
  os << "format=ascend-vit\n"
     << "image_size=" << c.image_size << "\npatch_size=" << c.patch_size
     << "\nchannels=" << c.channels << "\ndim=" << c.dim << "\nlayers=" << c.layers
     << "\nheads=" << c.heads << "\nmlp_ratio=" << c.mlp_ratio << "\nclasses=" << c.classes
     << "\nnorm=" << (c.norm == vit::NormKind::kBatchNorm ? "bn" : "ln")
     << "\napprox_softmax_k=" << c.approx_softmax_k
     << "\nsoftmax=" << (approx ? "approx" : "exact") << "\nprecision.w=" << p.w_bsl
     << "\nprecision.a=" << p.a_bsl << "\nprecision.r=" << p.r_bsl << "\n";
  return os.str();
}

struct ParsedConfig {
  vit::VitConfig topology;
  vit::PrecisionSpec precision;
  nn::SoftmaxKind softmax = nn::SoftmaxKind::kExact;
};

ParsedConfig parse_config(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    const auto eq = line.find('=');
    if (eq != std::string::npos) kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  auto get = [&](const char* key) -> const std::string& {
    auto it = kv.find(key);
    if (it == kv.end()) fail(Kind::kSchema, std::string("config missing key '") + key + "'");
    return it->second;
  };
  auto get_int = [&](const char* key) {
    try {
      return std::stoi(get(key));
    } catch (const std::exception&) {
      fail(Kind::kSchema, std::string("config key '") + key + "' is not an integer");
    }
  };
  if (get("format") != "ascend-vit")
    fail(Kind::kSchema, "config format '" + get("format") + "' is not 'ascend-vit'");
  ParsedConfig out;
  vit::VitConfig& c = out.topology;
  c.image_size = get_int("image_size");
  c.patch_size = get_int("patch_size");
  c.channels = get_int("channels");
  c.dim = get_int("dim");
  c.layers = get_int("layers");
  c.heads = get_int("heads");
  c.mlp_ratio = get_int("mlp_ratio");
  c.classes = get_int("classes");
  c.approx_softmax_k = get_int("approx_softmax_k");
  const std::string& norm = get("norm");
  if (norm != "bn" && norm != "ln") fail(Kind::kSchema, "config norm '" + norm + "' unknown");
  c.norm = norm == "bn" ? vit::NormKind::kBatchNorm : vit::NormKind::kLayerNorm;
  out.precision.w_bsl = get_int("precision.w");
  out.precision.a_bsl = get_int("precision.a");
  out.precision.r_bsl = get_int("precision.r");
  const std::string& sm = get("softmax");
  if (sm != "exact" && sm != "approx") fail(Kind::kSchema, "config softmax '" + sm + "' unknown");
  out.softmax = sm == "approx" ? nn::SoftmaxKind::kApprox : nn::SoftmaxKind::kExact;
  return out;
}

// ---------------------------------------------------------------------------
// Quantizer calibration: 5 floats {enabled, qn, qp, calibrated, step}.

constexpr int kQstateFloats = 5;

void save_qstate(CheckpointWriter& w, const std::string& prefix, LsqQuantizer& q) {
  const nn::QuantSpec& s = q.spec();
  const float st[kQstateFloats] = {s.enabled ? 1.0f : 0.0f, static_cast<float>(s.qn),
                                   static_cast<float>(s.qp), q.calibrated() ? 1.0f : 0.0f,
                                   q.step()};
  w.add_f32(prefix + ".qstate", {kQstateFloats}, st);
}

void restore_qstate(const CheckpointView& ck, const std::string& prefix, LsqQuantizer& q) {
  const Tensor st = ck.read_f32(prefix + ".qstate");
  if (st.size() != kQstateFloats) fail(Kind::kSchema, "record '" + prefix + ".qstate' malformed");
  nn::QuantSpec spec;
  spec.enabled = st[0] != 0.0f;
  spec.qn = static_cast<int>(std::lround(st[1]));
  spec.qp = static_cast<int>(std::lround(st[2]));
  q.restore_calibration(spec, st[3] != 0.0f, st[4]);
}

bool ternary_weight_quant(const LsqQuantizer& q) {
  return q.enabled() && q.spec().qn == -1 && q.spec().qp == 1;
}

// Frozen packed-ternary sign planes: the u64 `.packed` record carries
// PackedTernary::col_words verbatim ({cols, 2, words_per_plane}); the f32
// `.packed_meta` record carries {rows, cols, words_per_plane, step}.
void save_packed(CheckpointWriter& w, const std::string& prefix, LsqQuantizer& q,
                 nn::Linear& owner) {
  const nn::PackedTernary& pt = q.frozen_packed_ternary(owner.weight().value);
  const float meta[4] = {static_cast<float>(pt.rows), static_cast<float>(pt.cols),
                         static_cast<float>(pt.words_per_plane), pt.step};
  w.add_f32(prefix + ".packed_meta", {4}, meta);
  w.add_u64(prefix + ".packed", {pt.cols, 2, pt.words_per_plane}, pt.col_words.data(),
            pt.col_words.size());
}

void restore_packed(const CheckpointView& ck, const std::string& prefix, LsqQuantizer& q,
                    nn::Linear& owner) {
  const Record* rec = ck.find(prefix + ".packed");
  if (!rec) return;  // planes are optional; cold start re-freezes lazily
  const Tensor meta = ck.read_f32(prefix + ".packed_meta");
  if (meta.size() != 4) fail(Kind::kSchema, "record '" + prefix + ".packed_meta' malformed");
  nn::PackedTernary pt;
  pt.rows = static_cast<int>(std::lround(meta[0]));
  pt.cols = static_cast<int>(std::lround(meta[1]));
  pt.words_per_plane = static_cast<int>(std::lround(meta[2]));
  pt.step = meta[3];
  if (rec->dtype != DType::kU64 || pt.rows != owner.in_features() ||
      pt.cols != owner.out_features() || pt.words_per_plane != (pt.rows + 63) / 64 ||
      rec->element_count() != static_cast<std::size_t>(pt.cols) * 2 * pt.words_per_plane)
    fail(Kind::kSchema, "record '" + prefix + ".packed' shape inconsistent");
  const auto* words = reinterpret_cast<const std::uint64_t*>(ck.payload(*rec));
  pt.col_words.assign(words, words + rec->element_count());
  // Rebuild the per-column BitVec planes from the interleaved word stream
  // (the dense-fallback and introspection form of the same bits).
  const std::size_t rows = static_cast<std::size_t>(pt.rows);
  const int wpp = pt.words_per_plane;
  pt.plus.assign(static_cast<std::size_t>(pt.cols), sc::BitVec(rows));
  pt.minus.assign(static_cast<std::size_t>(pt.cols), sc::BitVec(rows));
  for (int j = 0; j < pt.cols; ++j) {
    const std::uint64_t* col = pt.col_words.data() + static_cast<std::size_t>(j) * 2 * wpp;
    for (std::size_t i = 0; i < rows; ++i) {
      if ((col[i >> 6] >> (i & 63)) & 1u)
        pt.plus[static_cast<std::size_t>(j)].set(i, true);
      if ((col[wpp + (i >> 6)] >> (i & 63)) & 1u)
        pt.minus[static_cast<std::size_t>(j)].set(i, true);
    }
  }
  q.adopt_packed(std::move(pt));
}

// ---------------------------------------------------------------------------
// Load core shared by the eager and mmap paths.

void assign_tensor(const CheckpointView& ck, const MmapCheckpoint* mapped,
                   const std::string& name, Tensor& dst) {
  const Record& r = ck.at(name);
  if (nn::Shape(r.dims) != dst.shape())
    fail(Kind::kSchema, "record '" + name + "' shape does not match the declared topology");
  dst = mapped ? mapped->view_f32(name) : ck.read_f32(name);
}

std::unique_ptr<vit::VisionTransformer> load_common(const CheckpointView& ck,
                                                    const MmapCheckpoint* mapped) {
  // Everything the model owns after a load must survive arena resets, even
  // when the caller loads from inside an activation-arena scope.
  runtime::HeapScope heap;
  const ParsedConfig cfg = parse_config(ck.config());
  auto model = std::make_unique<vit::VisionTransformer>(cfg.topology, /*seed=*/0);
  model->apply_precision(cfg.precision);
  model->set_softmax_kind(cfg.softmax);
  Visitor v;
  v.param = [&](const std::string& name, Param& p) { assign_tensor(ck, mapped, name, p.value); };
  v.stat = [&](const std::string& name, Tensor& t) { assign_tensor(ck, mapped, name, t); };
  v.quant = [&](const std::string& name, LsqQuantizer& q, nn::Linear* owner) {
    restore_qstate(ck, name, q);
    if (owner && ternary_weight_quant(q)) restore_packed(ck, name, q, *owner);
  };
  walk_model(*model, v);
  return model;
}

}  // namespace

void save_model(vit::VisionTransformer& model, const std::string& path, const SaveOptions& opts) {
  CheckpointWriter w;
  w.set_config(make_config(model));
  Visitor v;
  v.param = [&](const std::string& name, Param& p) {
    w.add_f32(name, dims_of(p.value), p.value.data());
  };
  v.stat = [&](const std::string& name, Tensor& t) { w.add_f32(name, dims_of(t), t.data()); };
  v.quant = [&](const std::string& name, LsqQuantizer& q, nn::Linear* owner) {
    save_qstate(w, name, q);
    if (opts.include_packed && owner && ternary_weight_quant(q)) save_packed(w, name, q, *owner);
  };
  walk_model(model, v);
  w.write(path);
}

std::unique_ptr<vit::VisionTransformer> load_model(const std::string& path) {
  CheckpointReader ck(path);
  return load_common(ck, /*mapped=*/nullptr);
}

MappedModel load_model_mmap(const std::string& path) {
  std::shared_ptr<MmapCheckpoint> ck = MmapCheckpoint::open(path);
  MappedModel out;
  out.model = load_common(*ck, ck.get());
  out.mapping = std::move(ck);
  return out;
}

}  // namespace ascend::serialize

namespace ascend::vit {

void VisionTransformer::save(const std::string& path) { serialize::save_model(*this, path); }

std::unique_ptr<VisionTransformer> VisionTransformer::load(const std::string& path) {
  return serialize::load_model(path);
}

}  // namespace ascend::vit

namespace ascend::runtime {

std::uint64_t ModelRegistry::register_from_file(const std::string& variant_id,
                                                const std::string& path, VariantKind kind,
                                                const RegisterFromFileOptions& opts) {
  std::shared_ptr<Servable> servable;
  try {
    std::unique_ptr<vit::VisionTransformer> model;
    std::shared_ptr<const void> retain;
    if (opts.use_mmap) {
      serialize::MappedModel mm = serialize::load_model_mmap(path);
      model = std::move(mm.model);
      retain = std::move(mm.mapping);  // anchored in the servable: outlives forwards
    } else {
      model = serialize::load_model(path);
    }

    switch (kind) {
      case VariantKind::kFp32:
        model->apply_precision(vit::PrecisionSpec::fp());
        servable = vit::make_servable_over(std::move(model), variant_id, std::move(retain));
        break;
      case VariantKind::kPackedTernary: {
        const vit::PrecisionSpec& p = model->precision();
        if (p.w_bsl != 2 || p.a_bsl != 2)
          throw serialize::CheckpointError(
              serialize::CheckpointError::Kind::kSchema,
              "register_from_file('" + variant_id +
                  "'): packed-ternary serving needs a W2-A2 checkpoint, got " + p.name());
        servable = vit::make_servable_over(std::move(model), variant_id, std::move(retain));
        break;
      }
      case VariantKind::kScLut:
      case VariantKind::kScEmulated: {
        vit::ScInferenceConfig cfg = opts.sc_config ? *opts.sc_config : vit::ScInferenceConfig{};
        vit::ScServableOptions so = opts.sc_options ? *opts.sc_options : vit::ScServableOptions{};
        so.use_tf_cache = kind == VariantKind::kScLut;
        servable = vit::make_sc_servable_over(std::move(model), cfg, std::move(so), variant_id,
                                              std::move(retain));
        break;
      }
    }
  } catch (...) {
    // Failed cold start: nothing was published, the incumbent (if any) keeps
    // serving — that is the rollback the counter reports.
    count_rollback();
    throw;
  }

  if (!opts.canary) return publish(std::move(servable));
  // Supervised path: canary-validate against the incumbent before swapping.
  // publish_checked counts the rollback itself on rejection.
  const PublishResult result = publish_checked(std::move(servable), *opts.canary);
  if (!result.published)
    throw CanaryError("register_from_file('" + variant_id + "'): " + result.error);
  return result.generation;
}

}  // namespace ascend::runtime
