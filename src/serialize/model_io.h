#pragma once
// model_io.h — VisionTransformer <-> checkpoint mapping.
//
// Sits on top of the format layer (serialize/checkpoint.h) and knows the
// model: a deterministic walker assigns every piece of serving-relevant
// state a stable record name, and save/load round-trip through those names:
//
//   patch_embed.weight / .bias          head.weight / .bias
//   pos_embed
//   blocks.N.{norm1,norm2}.{gamma,beta[,running_mean,running_var]}
//   blocks.N.msa.{qkv,proj}.{weight,bias}
//   blocks.N.mlp.{fc1,fc2}.{weight,bias}
//   blocks.N.msa.{qkv,proj}.{wq,aq}.qstate      (LSQ calibration, 5 floats)
//   blocks.N.mlp.{fc1,fc2}.{wq,aq}.qstate
//   blocks.N.{rq1,rq2}.qstate                   (residual quantizers)
//   <linear>.wq.packed / .packed_meta           (optional frozen sign planes)
//
// Topology + precision travel in the config block (key=value lines), so
// load_model() reconstructs the full model from the file alone. Two load
// paths share all validation:
//   * load_model       — eager: every tensor copied onto the heap
//                        (HeapScope-guarded, so loading inside an arena
//                        scope never pins weights to a resettable slab);
//   * load_model_mmap  — zero-copy: weights / BN stats become borrowed
//                        views into a read-only mapping; the returned
//                        MappedModel carries the mapping and it MUST outlive
//                        the model (serving anchors it in the Servable, see
//                        vit::make_servable_over).
// Both produce models whose infer() is bit-exact with the saved model's.

#include <memory>
#include <string>

#include "serialize/checkpoint.h"
#include "vit/model.h"

namespace ascend::serialize {

struct SaveOptions {
  /// Serialize frozen packed-ternary sign planes for every calibrated
  /// ternary weight quantizer (building them if not yet frozen). Loading a
  /// checkpoint that carries planes skips cold-start re-quantization; the
  /// records are ignored by readers that don't want them.
  bool include_packed = true;
};

/// Write `model` (topology, precision, weights, LSQ calibration, BN running
/// statistics) to a version-1 checkpoint at `path`.
void save_model(vit::VisionTransformer& model, const std::string& path,
                const SaveOptions& opts = {});

/// Reconstruct a model eagerly from a checkpoint written by save_model.
/// Throws CheckpointError (kSchema for a well-formed container whose records
/// don't match the declared topology).
std::unique_ptr<vit::VisionTransformer> load_model(const std::string& path);

/// A model whose weight tensors are borrowed views into `mapping`. Keep
/// `mapping` alive for as long as the model (or anything cloned *shallowly*
/// from it) can run a forward; dropping the model first is always safe.
struct MappedModel {
  std::unique_ptr<vit::VisionTransformer> model;
  std::shared_ptr<MmapCheckpoint> mapping;
};

/// Zero-copy load: parameters and BN running statistics are served straight
/// out of the read-only mapping (Tensor::borrow); mutable training state
/// (grads, Adam moments) stays heap-owned and untouched by serving.
MappedModel load_model_mmap(const std::string& path);

}  // namespace ascend::serialize
