#pragma once
// checkpoint.h — the versioned, mmap-able binary checkpoint container.
//
// This is the format layer underneath the model-level save/load API
// (serialize/model_io.h) — the same split as torch's pickler vs module
// serialization: the container knows nothing about models, only about named,
// typed, checksummed blobs. On-disk layout (all integers little-endian,
// every region offset measured from the start of the file):
//
//   [FileHeader 128 B]  magic, endian tag, format version, region directory,
//                       per-region CRCs, header CRC
//   [config block]      opaque UTF-8 text (key=value lines at the model layer)
//   [record table]      record_count x TensorRecord (128 B each, fixed size)
//   [payload]           one blob per record, each aligned to 64 B
//
// Every weight blob starts on a 64-byte boundary, so the payload region can
// be mmap'd read-only (page-aligned base + 64 B-aligned offsets) and served
// zero-copy: MmapCheckpoint::view_f32 hands out non-owning nn::Tensor views
// straight into the mapping (see Tensor::borrow). Validation is identical on
// the eager and mapped paths — magic, endian tag, version, header CRC,
// region bounds, config/table CRCs, then per-record bounds/alignment and a
// CRC32 over every payload blob — so a truncated file, a flipped bit, or a
// record pointing past EOF all fail with a typed CheckpointError before any
// tensor is materialised, never with UB or a partially-loaded model.
//
// Versioning policy (docs/checkpoint.md): the format version is bumped on
// any incompatible layout change; readers reject versions newer than they
// know (kUnsupportedVersion) rather than guessing. The committed golden
// checkpoint under tests/data/ pins version 1 bytes forever.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace ascend::serialize {

/// CRC32 (IEEE 802.3, reflected) over `len` bytes; chainable via `seed`.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

constexpr char kMagic[8] = {'A', 'S', 'C', 'E', 'N', 'D', 'C', 'K'};
constexpr std::uint32_t kEndianTag = 0x01020304u;  ///< byte-order sentinel
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kPayloadAlign = 64;  ///< per-blob alignment (mmap serving)
constexpr std::size_t kMaxName = 79;       ///< record names are fixed 80-byte fields

enum class DType : std::uint32_t {
  kF32 = 0,  ///< float32 tensor data
  kU64 = 1,  ///< raw 64-bit words (packed-ternary sign planes)
};

/// Typed failure from any checkpoint open/validate/lookup. `kind()` tells a
/// caller (and the corruption-battery tests) exactly which contract broke;
/// what() always names the file/record involved.
class CheckpointError : public std::runtime_error {
 public:
  enum class Kind {
    kIo,                  ///< open/read/write/map syscall failure
    kBadMagic,            ///< not a checkpoint file (or byte order mismatch)
    kUnsupportedVersion,  ///< written by a newer format revision
    kTruncated,           ///< file shorter than its directory claims
    kCorrupt,             ///< a CRC32 check failed (header/config/table/blob)
    kBadRecord,           ///< record table entry out of bounds / misaligned
    kSchema,              ///< well-formed container, wrong contents for caller
  };
  CheckpointError(Kind kind, const std::string& msg)
      : std::runtime_error("checkpoint: " + msg), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Parsed record-table entry (in-memory form of the 128-byte on-disk record).
struct Record {
  std::string name;
  DType dtype = DType::kF32;
  std::vector<int> dims;      ///< rank 1..4
  std::uint64_t offset = 0;   ///< absolute file offset, kPayloadAlign-aligned
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;

  std::size_t element_count() const;
};

/// Accumulates named blobs + a config block, then writes one checkpoint
/// file. Record order is preserved; the writer is deterministic (same inputs
/// -> byte-identical file), which the round-trip tests pin.
class CheckpointWriter {
 public:
  void set_config(std::string text) { config_ = std::move(text); }
  /// Add a float32 tensor blob. Name must be unique and <= kMaxName chars.
  void add_f32(const std::string& name, const std::vector<int>& dims, const float* data);
  /// Add a raw 64-bit word blob (dims describe the logical shape).
  void add_u64(const std::string& name, const std::vector<int>& dims, const std::uint64_t* data,
               std::size_t count);
  /// Serialize to `path` (atomic enough for tests: write then close; throws
  /// CheckpointError(kIo) on any filesystem failure).
  void write(const std::string& path) const;

 private:
  struct Pending {
    std::string name;
    DType dtype;
    std::vector<int> dims;
    std::vector<std::byte> data;
  };
  void add_blob(const std::string& name, DType dtype, const std::vector<int>& dims,
                const void* data, std::size_t bytes);

  std::string config_;
  std::vector<Pending> pending_;
};

/// Validated, read-only view over checkpoint bytes. Shared by the eager
/// reader (heap buffer) and the mapping (mmap); parse() runs the full
/// corruption battery described in the file comment.
class CheckpointView {
 public:
  virtual ~CheckpointView() = default;

  std::uint32_t version() const { return version_; }
  const std::string& config() const { return config_; }
  const std::vector<Record>& records() const { return records_; }
  const Record* find(const std::string& name) const;
  /// find() or throw CheckpointError(kSchema) naming the missing record.
  const Record& at(const std::string& name) const;
  /// Raw payload bytes of `r` (points into the buffer/mapping).
  const std::byte* payload(const Record& r) const { return base_ + r.offset; }
  /// Copy a kF32 record out into an owned tensor (heap/arena per caller).
  nn::Tensor read_f32(const std::string& name) const;

 protected:
  CheckpointView() = default;
  /// Validate `len` bytes at `base` and index the records. Throws the typed
  /// CheckpointError taxonomy; on return the view is fully trusted.
  void parse(const std::byte* base, std::size_t len, const std::string& origin);

  const std::byte* base_ = nullptr;
  std::size_t len_ = 0;

 private:
  std::uint32_t version_ = 0;
  std::string config_;
  std::vector<Record> records_;
};

/// Eager reader: slurps the file into a heap buffer and validates. Tensors
/// read out of it are always owned copies.
class CheckpointReader final : public CheckpointView {
 public:
  explicit CheckpointReader(const std::string& path);

 private:
  std::vector<std::byte> buf_;
};

/// Read-only mmap of a checkpoint: weight blobs are served zero-copy as
/// borrowed nn::Tensor views into the mapping. The mapping must outlive
/// every view handed out — serving code anchors it with a shared_ptr held
/// by the Servable (see vit::make_servable_over), so registry hot-swaps
/// keep the old mapping alive until the last in-flight forward drops its
/// snapshot. Mapped pages are PROT_READ: writing through a view faults.
class MmapCheckpoint final : public CheckpointView {
 public:
  static std::shared_ptr<MmapCheckpoint> open(const std::string& path);
  ~MmapCheckpoint() override;

  MmapCheckpoint(const MmapCheckpoint&) = delete;
  MmapCheckpoint& operator=(const MmapCheckpoint&) = delete;

  /// Non-owning tensor view straight into the mapping (kF32 records only).
  nn::Tensor view_f32(const std::string& name) const;
  /// True when `p` points inside the mapping (test/debug aid).
  bool owns_address(const void* p) const {
    return p >= base_ && p < base_ + len_;
  }

 private:
  MmapCheckpoint() = default;
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
};

}  // namespace ascend::serialize
