#include "serve/shard_set.h"

#include <stdexcept>
#include <thread>

#include "runtime/failpoint.h"

namespace ascend::serve {

using runtime::InferenceEngine;
using runtime::ModelRegistry;

namespace failpoint = runtime::failpoint;

namespace {

failpoint::Site fp_route{"router.route"};

}  // namespace

ShardSet::ShardSet(const ShardBootstrap& bootstrap, ShardSetOptions opts) : opts_(std::move(opts)) {
  if (opts_.shards < 1) throw std::invalid_argument("ShardSet: shards must be >= 1");
  if (!bootstrap) throw std::invalid_argument("ShardSet: null bootstrap");
  if (opts_.engine.max_pending <= 0)
    throw std::invalid_argument("ShardSet: engine.max_pending must be bounded (> 0)");
  if (opts_.admit_watermark <= 0.0 || opts_.admit_watermark > 1.0)
    throw std::invalid_argument("ShardSet: admit_watermark must be in (0, 1]");
  // A sharded front door must never block its submitter: the shard queues
  // reject on overflow regardless of what the template asked for.
  opts_.engine.overflow = runtime::OverflowPolicy::kReject;
  opts_.engine.metrics = nullptr;  // each shard engine keeps a private registry
  metrics_ = opts_.metrics ? opts_.metrics
                           : std::make_shared<runtime::metrics::MetricsRegistry>();
  shards_.reserve(static_cast<std::size_t>(opts_.shards));
  for (int s = 0; s < opts_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->registry = std::make_shared<ModelRegistry>();
    bootstrap(s, *shard->registry);
    shard->engine = std::make_unique<InferenceEngine>(shard->registry, opts_.engine);
    shards_.push_back(std::move(shard));
  }
  register_metric_series();
}

ShardSet::~ShardSet() {
  for (const runtime::metrics::CallbackId id : metric_callbacks_) metrics_->remove_callback(id);
}

void ShardSet::register_metric_series() {
  using runtime::metrics::Labels;
  using runtime::metrics::SeriesKind;
  for (int s = 0; s < shards(); ++s) {
    const Labels labels{{"shard", std::to_string(s)}};
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    metric_callbacks_.push_back(metrics_->register_callback(
        "ascend_shard_queue_depth", labels, SeriesKind::kGauge,
        [&sh] { return static_cast<double>(sh.engine->pending().total); },
        "Live scheduler queue depth of one engine shard"));
    metric_callbacks_.push_back(metrics_->register_callback(
        "ascend_shard_in_flight", labels, SeriesKind::kGauge,
        [&sh] { return static_cast<double>(sh.engine->in_flight()); },
        "Batch forwards running on one engine shard right now"));
    metric_callbacks_.push_back(metrics_->register_callback(
        "ascend_shard_admitting", labels, SeriesKind::kGauge,
        [&sh] { return sh.admitting.load() ? 1.0 : 0.0; },
        "Whether the router admits new requests to this shard (0 = draining)"));
    metric_callbacks_.push_back(metrics_->register_callback(
        "ascend_shard_images_served_total", labels, SeriesKind::kCounter,
        [&sh] { return static_cast<double>(sh.engine->stats().images); },
        "Images served by this shard"));
  }
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_router_admitted_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(admitted_.load()); },
      "Requests the router admitted to a shard"));
  metric_callbacks_.push_back(metrics_->register_callback(
      "ascend_router_rejected_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(rejected_.load()); },
      "Requests admission control rejected with retry-after"));
}

InferenceEngine& ShardSet::engine(int shard) {
  return *shards_.at(static_cast<std::size_t>(shard))->engine;
}

const std::shared_ptr<ModelRegistry>& ShardSet::registry(int shard) const {
  return shards_.at(static_cast<std::size_t>(shard))->registry;
}

int ShardSet::load(int shard) const {
  const Shard& sh = *shards_.at(static_cast<std::size_t>(shard));
  return static_cast<int>(sh.engine->pending().total) + sh.engine->in_flight();
}

bool ShardSet::admitting(int shard) const {
  return shards_.at(static_cast<std::size_t>(shard))->admitting.load();
}

ShardSet::Ticket ShardSet::submit(std::vector<float> payload, runtime::RequestOptions ropts) {
  ASCEND_FAILPOINT(fp_route);
  const std::string& variant =
      ropts.variant.empty() ? opts_.engine.default_variant : ropts.variant;
  // Shard by variant, then least-loaded among the admitting holders. The
  // watermark is applied to the chosen shard: when even the least-loaded
  // holder is over it, the whole variant is overloaded and the request is
  // shed with a backoff hint instead of parked.
  const int watermark =
      static_cast<int>(opts_.admit_watermark * static_cast<double>(opts_.engine.max_pending));
  int best = -1;
  int best_load = 0;
  bool variant_exists = false;
  for (int s = 0; s < shards(); ++s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    if (!sh.registry->contains(variant)) continue;
    variant_exists = true;
    if (!sh.admitting.load()) continue;
    const int l = load(s);
    if (best < 0 || l < best_load) {
      best = s;
      best_load = l;
    }
  }
  if (!variant_exists) throw runtime::UnknownVariantError(variant);
  if (best < 0 ||
      static_cast<int>(shards_[static_cast<std::size_t>(best)]->engine->pending().total) >=
          std::max(watermark, 1)) {
    // All holders draining, or the least-loaded holder is past the
    // watermark: shed. (Draining every holder of a variant at once is an
    // operator error; the shed keeps it transient for clients.)
    rejected_.fetch_add(1);
    throw RetryAfterError(opts_.retry_after);
  }
  try {
    Ticket t;
    t.future = shards_[static_cast<std::size_t>(best)]->engine->submit(std::move(payload),
                                                                       std::move(ropts));
    t.shard = best;
    admitted_.fetch_add(1);
    return t;
  } catch (const runtime::QueueFullError&) {
    // Raced past the watermark into a full bounded queue: same contract as
    // an admission reject — typed back-pressure, never a block.
    rejected_.fetch_add(1);
    throw RetryAfterError(opts_.retry_after);
  }
}

PublishAllResult ShardSet::publish_all(const ServableFactory& make,
                                       const runtime::CanaryOptions* canary) {
  PublishAllResult result;
  result.generations.resize(static_cast<std::size_t>(shards()), 0);
  std::vector<std::shared_ptr<runtime::Servable>> candidates(
      static_cast<std::size_t>(shards()));
  std::string variant;
  // Phase 1 — build and validate every shard's candidate before any shard
  // swaps. A rejection here leaves every generation untouched: this is the
  // broadcast-to-all-ranks idiom with a validate barrier in front of the
  // commit, so a half-published fleet cannot exist.
  for (int s = 0; s < shards(); ++s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    try {
      candidates[static_cast<std::size_t>(s)] = make(s);
      if (!candidates[static_cast<std::size_t>(s)])
        throw std::invalid_argument("ShardSet::publish_all: factory returned null");
      if (canary) sh.registry->validate(*candidates[static_cast<std::size_t>(s)], *canary);
    } catch (const std::exception& e) {
      sh.registry->count_rollback();
      result.failed_shard = s;
      result.error = e.what();
      for (int i = 0; i < shards(); ++i) {
        const auto& cand = candidates[static_cast<std::size_t>(i)];
        result.generations[static_cast<std::size_t>(i)] =
            cand ? shards_[static_cast<std::size_t>(i)]->registry->generation(cand->variant_id())
                 : 0;
      }
      return result;
    }
    if (s == 0) variant = candidates[0]->variant_id();
  }
  // Phase 2 — commit on every shard. publish() only throws for null/unnamed
  // servables (checked above) or an armed registry.publish fail point; the
  // latter deliberately models a torn broadcast and propagates.
  for (int s = 0; s < shards(); ++s) {
    result.generations[static_cast<std::size_t>(s)] =
        shards_[static_cast<std::size_t>(s)]->registry->publish(
            std::move(candidates[static_cast<std::size_t>(s)]));
  }
  result.published = true;
  return result;
}

void ShardSet::drain(int shard) {
  Shard& sh = *shards_.at(static_cast<std::size_t>(shard));
  sh.admitting.store(false);
  // Flush: wait out the queue and the in-flight forwards. Poll-based — the
  // queue only ever shrinks once routing stopped (deadline drops included),
  // so this terminates as fast as the shard serves.
  while (sh.engine->pending().total > 0 || sh.engine->in_flight() > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(200));
}

void ShardSet::readmit(int shard) {
  shards_.at(static_cast<std::size_t>(shard))->admitting.store(true);
}

PublishAllResult ShardSet::rolling_publish(const ServableFactory& make,
                                           const runtime::CanaryOptions* canary) {
  PublishAllResult result;
  result.generations.resize(static_cast<std::size_t>(shards()), 0);
  std::vector<std::shared_ptr<runtime::Servable>> candidates(
      static_cast<std::size_t>(shards()));
  // Validate everything up front (all-or-nothing, as in publish_all)...
  for (int s = 0; s < shards(); ++s) {
    Shard& sh = *shards_[static_cast<std::size_t>(s)];
    try {
      candidates[static_cast<std::size_t>(s)] = make(s);
      if (!candidates[static_cast<std::size_t>(s)])
        throw std::invalid_argument("ShardSet::rolling_publish: factory returned null");
      if (canary) sh.registry->validate(*candidates[static_cast<std::size_t>(s)], *canary);
    } catch (const std::exception& e) {
      sh.registry->count_rollback();
      result.failed_shard = s;
      result.error = e.what();
      return result;
    }
  }
  // ...then roll shard by shard: drain -> swap -> readmit. At least
  // shards()-1 shards admit at every instant.
  for (int s = 0; s < shards(); ++s) {
    drain(s);
    result.generations[static_cast<std::size_t>(s)] =
        shards_[static_cast<std::size_t>(s)]->registry->publish(
            std::move(candidates[static_cast<std::size_t>(s)]));
    readmit(s);
  }
  result.published = true;
  return result;
}

}  // namespace ascend::serve
