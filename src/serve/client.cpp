#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>

namespace ascend::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::invalid_argument("Client: bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), rbuf_(std::move(other.rbuf_)), roff_(other.roff_), eof_(other.eof_) {
  other.fd_ = -1;
}

void Client::write_all(const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd_, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

void Client::send(const RequestFrame& frame) {
  std::vector<std::uint8_t> bytes;
  append_request(bytes, frame);
  write_all(bytes.data(), bytes.size());
}

void Client::send_raw(const std::uint8_t* data, std::size_t size) { write_all(data, size); }

bool Client::fill(bool blocking) {
  if (eof_) return false;
  std::uint8_t buf[65536];
  const int flags = blocking ? 0 : MSG_DONTWAIT;
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), flags);
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), buf, buf + n);
      return true;
    }
    if (n == 0) {
      eof_ = true;
      return false;
    }
    if (errno == EINTR) continue;
    if (!blocking && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;  // nothing ready
    throw_errno("recv");
  }
}

std::optional<ResponseFrame> Client::try_decode() {
  if (roff_ >= rbuf_.size()) return std::nullopt;
  ResponseFrame out;
  std::size_t consumed = 0;
  Status error{};
  const DecodeResult r =
      decode_response(rbuf_.data() + roff_, rbuf_.size() - roff_, consumed, out, error);
  if (r == DecodeResult::kError)
    throw std::runtime_error(std::string("Client: undecodable response stream: ") +
                             status_name(error));
  if (r == DecodeResult::kNeedMore) return std::nullopt;
  roff_ += consumed;
  // Compact once the decoded prefix dominates; amortized O(1) per byte.
  if (roff_ > 4096 && roff_ * 2 > rbuf_.size()) {
    rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<long>(roff_));
    roff_ = 0;
  }
  return out;
}

ResponseFrame Client::recv() {
  for (;;) {
    if (std::optional<ResponseFrame> frame = try_decode()) return *frame;
    if (!fill(/*blocking=*/true))
      throw std::runtime_error("Client: connection closed before a full response");
  }
}

std::optional<ResponseFrame> Client::poll_response(bool* eof) {
  if (eof) *eof = false;
  if (std::optional<ResponseFrame> frame = try_decode()) return frame;
  if (!fill(/*blocking=*/false)) {
    if (eof) *eof = true;
    return std::nullopt;
  }
  std::optional<ResponseFrame> frame = try_decode();
  if (!frame && eof_ && eof) *eof = true;
  return frame;
}

ResponseFrame Client::request(const RequestFrame& frame) {
  send(frame);
  return recv();
}

ResponseFrame Client::drain_server(std::uint64_t request_id) {
  RequestFrame frame;
  frame.request_id = request_id;
  frame.flags = kFlagDrain;
  return request(frame);
}

void Client::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

}  // namespace ascend::serve
