#pragma once
// server.h — the TCP front door.
//
// One epoll-driven IO thread owns the listen socket and every connection:
// accepts, non-blocking framed reads (partial frames accumulate per
// connection and are decoded incrementally via serve::decode_request), and
// non-blocking framed writes (responses queue per connection; EPOLLOUT is
// armed only while a backlog exists). Decoded requests route through a
// ShardSet (serve/shard_set.h) — the IO thread never blocks on inference:
// ShardSet::submit either enqueues (bounded, kReject) or throws a typed
// error that is answered immediately (kRetryAfter with a backoff hint for
// admission rejects, kUnknownVariant, ...). Resolved futures are reaped by a
// small completion pump: worker threads block on the engine futures, build
// the response frames and hand the bytes back to the IO thread's write path.
//
// Error containment: a malformed frame is answered with its typed status
// (kBadMagic / kBadVersion / kBadFrame / kTruncated) and only the one
// connection is closed when the stream cannot be resynchronized — the
// connection loop itself never dies. Fault-injection sites serve.accept,
// serve.read and serve.write drop the affected connection the way a real
// socket error would, exercised by test_chaos.
//
// Graceful drain: a client frame with kFlagDrain (or Server::drain()) stops
// the accept path, answers kShuttingDown to any later request, lets every
// queued/in-flight request resolve and its response flush, then wakes
// wait_drained(). No request is lost: every byte accepted before the drain
// is answered.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/metrics/registry.h"
#include "serve/protocol.h"
#include "serve/shard_set.h"

namespace ascend::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the bound port via port()
  int backlog = 256;
  int completion_threads = 2;  ///< future-reaper workers building responses
};

/// Counters the server keeps outside the metrics registry (one consistent
/// snapshot for tests and end-of-run prints).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_in = 0;       ///< well-formed request frames decoded
  std::uint64_t responses_out = 0;   ///< response frames fully flushed
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t protocol_errors = 0; ///< malformed frames answered with a typed status
};

class Server {
 public:
  /// Binds, listens and starts the IO loop + completion pump. The ShardSet
  /// must outlive the server. Throws std::system_error on bind failure.
  Server(ShardSet& shards, ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Port actually bound (resolves opts.port == 0).
  std::uint16_t port() const { return port_; }

  /// Initiate graceful drain (idempotent): stop accepting, answer
  /// kShuttingDown to new requests, let accepted work resolve and flush.
  void drain();
  /// True once drain() ran (locally or via a kFlagDrain control frame).
  bool draining() const { return draining_.load(); }
  /// Block until a drain was initiated AND every in-flight request has
  /// resolved and flushed its response.
  void wait_drained();

  ServerStats stats() const;
  const std::shared_ptr<runtime::metrics::MetricsRegistry>& metrics() const {
    return shards_.metrics();
  }

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    const int fd;
    std::vector<std::uint8_t> rbuf;   ///< accumulated unparsed request bytes (IO thread only)
    bool read_eof = false;            ///< peer half-closed; flush owed responses, then close
    std::mutex mu;                    ///< guards everything below
    std::vector<std::uint8_t> wbuf;   ///< pending response bytes
    std::size_t woff = 0;             ///< flushed prefix of wbuf
    bool closed = false;              ///< fd retired; late completions drop their response
    bool close_after_flush = false;   ///< protocol error: answer, then hang up
    std::uint64_t in_flight = 0;      ///< submitted requests not yet answered
  };

  struct Completion {
    std::weak_ptr<Connection> conn;
    std::uint64_t request_id = 0;
    int shard = 0;
    std::future<runtime::Prediction> future;
  };

  void io_loop();
  void pump_loop();
  void handle_accept();
  void handle_readable(const std::shared_ptr<Connection>& conn);
  void handle_writable(const std::shared_ptr<Connection>& conn);
  /// Decode-and-dispatch every complete frame in conn->rbuf. Returns false
  /// when the connection must close (unrecoverable protocol error).
  bool drain_rbuf(const std::shared_ptr<Connection>& conn);
  void handle_frame(const std::shared_ptr<Connection>& conn, RequestFrame&& frame);
  /// Serialize `resp` onto the connection: direct write when the buffer is
  /// empty, else queued; arms EPOLLOUT when bytes remain. Safe from any
  /// thread.
  void send_response(const std::shared_ptr<Connection>& conn, const ResponseFrame& resp,
                     bool completes_request);
  /// Flush conn->wbuf (caller holds conn->mu). Returns false on socket error.
  bool flush_locked(Connection& conn);
  void request_write_interest(const std::shared_ptr<Connection>& conn);
  void close_connection(const std::shared_ptr<Connection>& conn);
  void wake_loop();
  void note_request_done();

  ShardSet& shards_;
  ServerOptions opts_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd the pump uses to hand work to the IO thread

  std::thread io_thread_;
  std::vector<std::thread> pump_threads_;

  std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;  ///< live connections by fd

  std::mutex pump_mu_;
  std::condition_variable pump_cv_;
  std::deque<Completion> pump_queue_;
  bool pump_stop_ = false;

  std::mutex epollout_mu_;
  std::vector<std::shared_ptr<Connection>> epollout_requests_;  ///< pump -> IO thread

  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::uint64_t open_requests_ = 0;  ///< under drain_mu_: submitted, response not flushed

  // Stats atomics (ServerStats is a read of these).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> responses_out_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::vector<runtime::metrics::CallbackId> metric_callbacks_;
  /// Responses flushed per wire status, indexed by Status value.
  std::array<runtime::metrics::Counter*, 12> status_counters_{};
};

}  // namespace ascend::serve
