#pragma once
// protocol.h — the front-door wire protocol.
//
// A length-prefixed binary framing over TCP: every request and response
// starts with a fixed little-endian header (magic + version first, so a
// desynchronized or foreign peer is detected from the first four bytes),
// followed by the variable-length tail the header describes. Requests carry
// the full runtime::RequestOptions surface — variant id, priority class,
// deadline budget, retry/fallback policy — plus a raw f32 payload; responses
// carry a typed Status mirroring the runtime error taxonomy (one wire code
// per typed failure the serving stack can produce, including kRetryAfter for
// admission-control rejects with a client backoff hint), the predicted label
// and logits, and the serving metadata (attempts, degraded, shard).
//
// Decoding is incremental and allocation-conscious: decode_request /
// decode_response consume frames out of an accumulating byte buffer and
// report kNeedMore until a whole frame is present, so a poll/epoll loop can
// feed partial reads straight in. Malformed input never throws from the
// decoder — it yields kError plus the Status the server should answer with
// (bad magic, unsupported version, oversize or inconsistent lengths), and
// the caller decides whether the stream is resynchronizable. See
// docs/frontdoor.md for the byte-level layout tables.

#include <chrono>
#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "runtime/batcher.h"

namespace ascend::serve {

/// First four bytes of every frame ("ASND" on a little-endian wire).
inline constexpr std::uint32_t kMagic = 0x444E5341u;
/// Protocol version this build speaks. A request carrying a higher version
/// is answered with kBadVersion and the connection is closed (the tail
/// layout of a future version cannot be trusted for resync).
inline constexpr std::uint16_t kVersion = 1;
/// Upper bound on the f32 payload of one request (4 MiB). A header
/// announcing more is a malformed frame, not a large request: the server
/// answers kBadFrame and drops the connection instead of allocating.
inline constexpr std::uint32_t kMaxPayloadFloats = 1u << 20;

/// Request flag bits.
inline constexpr std::uint16_t kFlagDrain = 0x1;  ///< graceful-drain control frame

/// Typed wire status of one response. Mirrors the runtime error taxonomy:
/// every typed exception a request can resolve with has exactly one code, so
/// a client can account ok + typed + rejected == issued without parsing
/// message strings.
enum class Status : std::uint16_t {
  kOk = 0,
  kBadMagic = 1,         ///< frame did not start with kMagic (stream desync)
  kBadVersion = 2,       ///< unsupported protocol version
  kBadFrame = 3,         ///< malformed header (oversize/inconsistent lengths)
  kTruncated = 4,        ///< peer half-closed mid-frame
  kUnknownVariant = 5,   ///< runtime::UnknownVariantError
  kDeadlineExceeded = 6, ///< runtime::DeadlineExceededError
  kRetryAfter = 7,       ///< admission reject / queue full; retry_after_ms set
  kShuttingDown = 8,     ///< runtime::EngineShutdownError or server drain
  kWatchdogTimeout = 9,  ///< runtime::WatchdogTimeoutError
  kInjectedFault = 10,   ///< runtime::failpoint::InjectedFaultError
  kInternal = 11,        ///< any other exception
};
const char* status_name(Status s);

/// One decoded request frame (the server-side view).
struct RequestFrame {
  std::uint64_t request_id = 0;
  std::uint16_t flags = 0;
  runtime::RequestOptions options;  ///< variant / priority / deadline / retry
  std::vector<float> payload;

  bool drain() const { return (flags & kFlagDrain) != 0; }
};

/// One response frame (built by the server, decoded by the client).
struct ResponseFrame {
  std::uint64_t request_id = 0;
  Status status = Status::kInternal;
  std::int32_t label = -1;
  std::uint32_t retry_after_ms = 0;  ///< client backoff hint; kRetryAfter only
  std::uint8_t attempts = 1;         ///< forward attempts spent (Prediction::attempts)
  bool degraded = false;             ///< served by the fallback variant
  std::uint16_t shard = 0;           ///< shard that served (or rejected) the request
  std::vector<float> logits;         ///< kOk only
};

/// Fixed header sizes on the wire (packed little-endian, no padding).
inline constexpr std::size_t kRequestHeaderBytes = 28;
inline constexpr std::size_t kResponseHeaderBytes = 32;

/// Serialized size of `frame` (header + tail).
std::size_t request_wire_size(const RequestFrame& frame);
std::size_t response_wire_size(const ResponseFrame& frame);

/// Append one serialized frame to `out`. Throws std::invalid_argument when a
/// field does not fit its wire type (variant id over 255 bytes, payload over
/// kMaxPayloadFloats, ...): a frame we could not decode back is never sent.
void append_request(std::vector<std::uint8_t>& out, const RequestFrame& frame);
void append_response(std::vector<std::uint8_t>& out, const ResponseFrame& frame);

/// Incremental decode outcome.
enum class DecodeResult {
  kNeedMore,  ///< not enough bytes for a whole frame yet
  kFrame,     ///< one frame decoded; `consumed` bytes were eaten
  kError,     ///< stream is bad; answer `error` and treat per its kind
};

/// Try to decode one request frame from `data[0..size)`. On kFrame fills
/// `out` and sets `consumed`; on kError sets `error` (kBadMagic /
/// kBadVersion / kBadFrame) and `error_request_id` to the request id salvaged
/// from the header bytes when there were enough of them (0 otherwise), so the
/// failure response can still echo the id. Never throws.
DecodeResult decode_request(const std::uint8_t* data, std::size_t size, std::size_t& consumed,
                            RequestFrame& out, Status& error, std::uint64_t& error_request_id);

/// Client-side twin for response frames.
DecodeResult decode_response(const std::uint8_t* data, std::size_t size, std::size_t& consumed,
                             ResponseFrame& out, Status& error);

}  // namespace ascend::serve
