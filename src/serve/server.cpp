#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "runtime/failpoint.h"

namespace ascend::serve {

namespace failpoint = runtime::failpoint;

namespace {

failpoint::Site fp_accept{"serve.accept"};
failpoint::Site fp_read{"serve.read"};
failpoint::Site fp_write{"serve.write"};

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

/// Map one typed serving exception to its wire status. The single place the
/// runtime error taxonomy meets the protocol, shared by the submit path and
/// the completion pump.
Status status_of(const std::exception_ptr& err, std::uint32_t& retry_after_ms) {
  retry_after_ms = 0;
  try {
    std::rethrow_exception(err);
  } catch (const RetryAfterError& e) {
    retry_after_ms = static_cast<std::uint32_t>(e.retry_after.count());
    return Status::kRetryAfter;
  } catch (const runtime::QueueFullError&) {
    return Status::kRetryAfter;
  } catch (const runtime::DeadlineExceededError&) {
    return Status::kDeadlineExceeded;
  } catch (const runtime::WatchdogTimeoutError&) {
    return Status::kWatchdogTimeout;
  } catch (const runtime::EngineShutdownError&) {
    return Status::kShuttingDown;
  } catch (const runtime::UnknownVariantError&) {
    return Status::kUnknownVariant;
  } catch (const failpoint::InjectedFaultError&) {
    return Status::kInjectedFault;
  } catch (const std::invalid_argument&) {
    return Status::kBadFrame;  // payload/variant shape mismatch
  } catch (...) {
    return Status::kInternal;
  }
}

}  // namespace

Server::Server(ShardSet& shards, ServerOptions opts) : shards_(shards), opts_(std::move(opts)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::invalid_argument("Server: bad bind_address " + opts_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, opts_.backlog) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind/listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) throw_errno("epoll_create1/eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  // Front-door series live in the shard set's registry so one scrape covers
  // router, shards and socket layer.
  auto& m = *shards_.metrics();
  using runtime::metrics::SeriesKind;
  metric_callbacks_.push_back(m.register_callback(
      "ascend_frontdoor_bytes_in_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(bytes_in_.load()); }, "Request bytes read"));
  metric_callbacks_.push_back(m.register_callback(
      "ascend_frontdoor_bytes_out_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(bytes_out_.load()); }, "Response bytes written"));
  metric_callbacks_.push_back(m.register_callback(
      "ascend_frontdoor_open_connections", {}, SeriesKind::kGauge,
      [this] {
        return static_cast<double>(connections_accepted_.load() - connections_closed_.load());
      },
      "Connections currently open"));
  metric_callbacks_.push_back(m.register_callback(
      "ascend_frontdoor_connections_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(connections_accepted_.load()); },
      "Connections accepted"));
  metric_callbacks_.push_back(m.register_callback(
      "ascend_frontdoor_frames_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(frames_in_.load()); },
      "Well-formed request frames decoded"));
  metric_callbacks_.push_back(m.register_callback(
      "ascend_frontdoor_protocol_errors_total", {}, SeriesKind::kCounter,
      [this] { return static_cast<double>(protocol_errors_.load()); },
      "Malformed frames answered with a typed status"));
  for (std::size_t s = 0; s < status_counters_.size(); ++s)
    status_counters_[s] = &m.counter("ascend_frontdoor_responses_total",
                                     {{"status", status_name(static_cast<Status>(s))}},
                                     "Responses sent per wire status");

  const int pumps = std::max(1, opts_.completion_threads);
  pump_threads_.reserve(static_cast<std::size_t>(pumps));
  for (int i = 0; i < pumps; ++i) pump_threads_.emplace_back([this] { pump_loop(); });
  io_thread_ = std::thread([this] { io_loop(); });
}

Server::~Server() {
  stop_.store(true);
  wake_loop();
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::lock_guard<std::mutex> lock(pump_mu_);
    pump_stop_ = true;
  }
  pump_cv_.notify_all();
  for (auto& t : pump_threads_)
    if (t.joinable()) t.join();
  for (const runtime::metrics::CallbackId id : metric_callbacks_)
    shards_.metrics()->remove_callback(id);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [fd, conn] : conns_) {
      std::lock_guard<std::mutex> cl(conn->mu);
      if (!conn->closed) {
        conn->closed = true;
        ::close(fd);
      }
    }
    conns_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

ServerStats Server::stats() const {
  ServerStats st;
  st.connections_accepted = connections_accepted_.load();
  st.connections_closed = connections_closed_.load();
  st.frames_in = frames_in_.load();
  st.responses_out = responses_out_.load();
  st.bytes_in = bytes_in_.load();
  st.bytes_out = bytes_out_.load();
  st.protocol_errors = protocol_errors_.load();
  return st;
}

void Server::wake_loop() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  wake_loop();  // IO thread retires the listen socket
  drain_cv_.notify_all();
}

void Server::wait_drained() {
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] { return draining_.load() && open_requests_ == 0; });
  }
  // Responses are accounted when fully flushed to the socket, so reaching
  // here means every accepted request's bytes left the process.
}

void Server::note_request_done() {
  std::lock_guard<std::mutex> lock(drain_mu_);
  --open_requests_;
  if (open_requests_ == 0) drain_cv_.notify_all();
}

void Server::io_loop() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  bool listening = true;
  while (!stop_.load()) {
    if (draining_.load() && listening) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      listening = false;
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Write-interest handoffs from the completion pump: flush now, arm
    // EPOLLOUT only when bytes remain.
    std::vector<std::shared_ptr<Connection>> flushes;
    {
      std::lock_guard<std::mutex> lock(epollout_mu_);
      flushes.swap(epollout_requests_);
    }
    for (const auto& conn : flushes) handle_writable(conn);

    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drainv;
        while (::read(wake_fd_, &drainv, sizeof(drainv)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        handle_accept();
        continue;
      }
      std::shared_ptr<Connection> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        const auto it = conns_.find(fd);
        if (it != conns_.end()) conn = it->second;
      }
      if (!conn) continue;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_connection(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) handle_writable(conn);
      if (events[i].events & EPOLLIN) handle_readable(conn);
    }
  }
}

void Server::handle_accept() {
  for (;;) {
    const int cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) return;  // EAGAIN or transient error: wait for the next event
    try {
      ASCEND_FAILPOINT(fp_accept);
    } catch (...) {
      // Injected accept fault: the connection is dropped the way an
      // accept-time socket error would drop it. The loop keeps accepting.
      ::close(cfd);
      continue;
    }
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(cfd);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.emplace(cfd, conn);
    }
    connections_accepted_.fetch_add(1);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = cfd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev);
  }
}

void Server::close_connection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn->fd);
  }
  connections_closed_.fetch_add(1);
}

void Server::handle_readable(const std::shared_ptr<Connection>& conn) {
  try {
    ASCEND_FAILPOINT(fp_read);
  } catch (...) {
    // Injected read fault == the socket erroring mid-stream: this one
    // connection dies, the loop lives on.
    close_connection(conn);
    return;
  }
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<std::uint64_t>(n));
      conn->rbuf.insert(conn->rbuf.end(), buf, buf + n);
      if (!drain_rbuf(conn)) {
        // Unrecoverable protocol error: the typed response is queued; hang
        // up once it flushes.
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->close_after_flush = true;
        }
        handle_writable(conn);
        return;
      }
      continue;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_connection(conn);
      return;
    }
    // EOF. A partial frame left in the buffer is a truncated request: the
    // peer may have half-closed and still reads, so answer the typed status
    // before hanging up.
    conn->read_eof = true;
    if (!conn->rbuf.empty()) {
      protocol_errors_.fetch_add(1);
      ResponseFrame resp;
      resp.status = Status::kTruncated;
      if (conn->rbuf.size() >= 16) {
        std::size_t consumed = 0;
        RequestFrame dummy;
        Status err{};
        std::uint64_t salvaged = 0;
        (void)decode_request(conn->rbuf.data(), conn->rbuf.size(), consumed, dummy, err, salvaged);
        resp.request_id = salvaged;
      }
      conn->rbuf.clear();
      send_response(conn, resp, false);
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->close_after_flush = true;
    }
    // Close now only when nothing is owed; otherwise the flush path closes
    // once the last owed response leaves.
    bool close_now;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      close_now = conn->wbuf.size() == conn->woff && conn->in_flight == 0;
    }
    if (close_now) close_connection(conn);
    return;
  }
}

bool Server::drain_rbuf(const std::shared_ptr<Connection>& conn) {
  std::size_t off = 0;
  bool ok = true;
  while (off < conn->rbuf.size()) {
    RequestFrame frame;
    std::size_t consumed = 0;
    Status error{};
    std::uint64_t error_id = 0;
    const DecodeResult r = decode_request(conn->rbuf.data() + off, conn->rbuf.size() - off,
                                          consumed, frame, error, error_id);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kError) {
      // Malformed frame: answer its typed status. Framing is lost (we do not
      // know where the next frame starts), so the connection closes after
      // the answer flushes — without taking the loop or other connections
      // down.
      protocol_errors_.fetch_add(1);
      ResponseFrame resp;
      resp.status = error;
      resp.request_id = error_id;
      send_response(conn, resp, false);
      ok = false;
      break;
    }
    off += consumed;
    frames_in_.fetch_add(1);
    handle_frame(conn, std::move(frame));
  }
  if (off > 0) conn->rbuf.erase(conn->rbuf.begin(), conn->rbuf.begin() + static_cast<long>(off));
  return ok;
}

void Server::handle_frame(const std::shared_ptr<Connection>& conn, RequestFrame&& frame) {
  if (frame.drain()) {
    // Graceful-drain control frame: acknowledge, then stop accepting. Work
    // already accepted keeps resolving; wait_drained() unblocks when the
    // last owed response has flushed.
    ResponseFrame resp;
    resp.status = Status::kOk;
    resp.request_id = frame.request_id;
    send_response(conn, resp, false);
    drain();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++open_requests_;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    ++conn->in_flight;
  }
  if (draining_.load()) {
    ResponseFrame resp;
    resp.status = Status::kShuttingDown;
    resp.request_id = frame.request_id;
    send_response(conn, resp, true);
    return;
  }
  try {
    ShardSet::Ticket ticket = shards_.submit(std::move(frame.payload), frame.options);
    Completion c;
    c.conn = conn;
    c.request_id = frame.request_id;
    c.shard = ticket.shard;
    c.future = std::move(ticket.future);
    {
      std::lock_guard<std::mutex> lock(pump_mu_);
      pump_queue_.push_back(std::move(c));
    }
    pump_cv_.notify_one();
  } catch (...) {
    // Typed submit-time failure (admission reject, unknown variant, injected
    // route fault): answered inline, the IO thread never blocked.
    std::uint32_t retry_after_ms = 0;
    const Status st = status_of(std::current_exception(), retry_after_ms);
    ResponseFrame resp;
    resp.status = st;
    resp.request_id = frame.request_id;
    resp.retry_after_ms = retry_after_ms;
    send_response(conn, resp, true);
  }
}

void Server::pump_loop() {
  for (;;) {
    Completion c;
    {
      std::unique_lock<std::mutex> lock(pump_mu_);
      pump_cv_.wait(lock, [this] { return pump_stop_ || !pump_queue_.empty(); });
      if (pump_queue_.empty()) return;  // stop and drained
      c = std::move(pump_queue_.front());
      pump_queue_.pop_front();
    }
    ResponseFrame resp;
    resp.request_id = c.request_id;
    resp.shard = static_cast<std::uint16_t>(c.shard);
    try {
      runtime::Prediction pred = c.future.get();
      resp.status = Status::kOk;
      resp.label = pred.label;
      resp.attempts = static_cast<std::uint8_t>(std::min(pred.attempts, 255));
      resp.degraded = pred.degraded;
      resp.logits = std::move(pred.logits);
    } catch (...) {
      std::uint32_t retry_after_ms = 0;
      resp.status = status_of(std::current_exception(), retry_after_ms);
      resp.retry_after_ms = retry_after_ms;
    }
    const std::shared_ptr<Connection> conn = c.conn.lock();
    if (conn) {
      send_response(conn, resp, true);
    } else {
      // Connection died before its answer: the request is still accounted
      // (drain must not wait forever on a peer that hung up).
      status_counters_[static_cast<std::size_t>(resp.status)]->add(1);
      note_request_done();
    }
  }
}

void Server::send_response(const std::shared_ptr<Connection>& conn, const ResponseFrame& resp,
                           bool completes_request) {
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) {
      dropped = true;
    } else {
      append_response(conn->wbuf, resp);
      if (completes_request && conn->in_flight > 0) --conn->in_flight;
    }
  }
  status_counters_[static_cast<std::size_t>(resp.status)]->add(1);
  if (dropped) {
    if (completes_request) note_request_done();
    return;
  }
  responses_out_.fetch_add(1);
  if (completes_request) note_request_done();
  if (std::this_thread::get_id() == io_thread_.get_id()) {
    handle_writable(conn);
  } else {
    request_write_interest(conn);
  }
}

void Server::request_write_interest(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(epollout_mu_);
    epollout_requests_.push_back(conn);
  }
  wake_loop();
}

bool Server::flush_locked(Connection& conn) {
  ASCEND_FAILPOINT(fp_write);
  while (conn.woff < conn.wbuf.size()) {
    const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                             conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
    if (n > 0) {
      conn.woff += static_cast<std::size_t>(n);
      bytes_out_.fetch_add(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone / socket error
  }
  conn.wbuf.clear();
  conn.woff = 0;
  return true;
}

void Server::handle_writable(const std::shared_ptr<Connection>& conn) {
  bool failed = false;
  bool backlog = false;
  bool close_now = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    try {
      failed = !flush_locked(*conn);
    } catch (...) {
      failed = true;  // injected write fault: the connection dies
    }
    backlog = conn->woff < conn->wbuf.size();
    close_now = !failed && !backlog &&
                (conn->close_after_flush || (conn->read_eof && conn->in_flight == 0));
  }
  if (failed || close_now) {
    close_connection(conn);
    return;
  }
  // Level-triggered EPOLLOUT only while a backlog exists; re-arming with
  // plain EPOLLIN when drained keeps the loop quiet.
  epoll_event ev{};
  ev.events = backlog ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

}  // namespace ascend::serve
