#pragma once
// client.h — a small front-door client.
//
// Wraps one TCP connection to a serve::Server. Two usage styles:
//   * blocking request/response: request() sends one frame and waits for its
//     answer — the simple path for examples and tests;
//   * pipelined: send() many frames back-to-back, then recv() (blocking) or
//     poll_responses() (non-blocking, MSG_DONTWAIT) to reap answers as they
//     arrive — the open-loop bench drives hundreds of connections this way
//     from a single thread.
//
// send_raw() writes arbitrary bytes (the malformed-frame battery and the
// bit-flip fuzzer build their own corrupt frames), and shutdown_write()
// half-closes the socket so a deliberately truncated frame is delivered as
// EOF-mid-frame while the read side stays open for the typed kTruncated
// answer.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace ascend::serve {

class Client {
 public:
  /// Blocking connect; throws std::system_error when the server is not there.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  /// Send one request and block for the next response frame. Only valid when
  /// no pipelined responses are outstanding (responses are not matched by id
  /// here — the server answers this connection's frames in completion order).
  ResponseFrame request(const RequestFrame& frame);

  /// Pipelined send, no wait. Throws std::system_error on a broken socket.
  void send(const RequestFrame& frame);
  /// Write raw bytes as-is (corrupt-frame tests).
  void send_raw(const std::uint8_t* data, std::size_t size);
  void send_raw(const std::vector<std::uint8_t>& bytes) { send_raw(bytes.data(), bytes.size()); }

  /// Block for the next response frame. Throws std::runtime_error on EOF or
  /// an undecodable response stream.
  ResponseFrame recv();
  /// Non-blocking: next response frame if one is already buffered/readable,
  /// std::nullopt otherwise. Sets *eof when the server closed the stream.
  std::optional<ResponseFrame> poll_response(bool* eof = nullptr);

  /// Send the kFlagDrain control frame and block for its kOk acknowledgement.
  ResponseFrame drain_server(std::uint64_t request_id = 0);

  /// Half-close: no more writes from us; reads stay open. The server sees
  /// EOF (answering kTruncated when our last frame was partial).
  void shutdown_write();

  int fd() const { return fd_; }

 private:
  void write_all(const std::uint8_t* data, std::size_t size);
  /// Read into rbuf_. Blocking variant waits for >= 1 byte; non-blocking
  /// variant takes whatever is ready. Returns false on EOF.
  bool fill(bool blocking);
  std::optional<ResponseFrame> try_decode();

  int fd_ = -1;
  std::vector<std::uint8_t> rbuf_;
  std::size_t roff_ = 0;  ///< decoded prefix of rbuf_
  bool eof_ = false;
};

}  // namespace ascend::serve
