#include "serve/protocol.h"

#include <cstring>
#include <stdexcept>

namespace ascend::serve {

namespace {

// Little-endian field writers/readers. The wire format is explicitly LE;
// memcpy through fixed-width integers keeps this free of aliasing UB and
// compiles to plain loads/stores on the x86 hosts this serves on.
template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_integral_v<T>);
  for (std::size_t i = 0; i < sizeof(T); ++i)
    out.push_back(static_cast<std::uint8_t>((static_cast<std::uint64_t>(v) >> (8 * i)) & 0xFF));
}

template <typename T>
T get(const std::uint8_t* p) {
  static_assert(std::is_integral_v<T>);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return static_cast<T>(v);
}

void put_f32(std::vector<std::uint8_t>& out, float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  put(out, bits);
}

float get_f32(const std::uint8_t* p) {
  const std::uint32_t bits = get<std::uint32_t>(p);
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kBadMagic: return "bad-magic";
    case Status::kBadVersion: return "bad-version";
    case Status::kBadFrame: return "bad-frame";
    case Status::kTruncated: return "truncated";
    case Status::kUnknownVariant: return "unknown-variant";
    case Status::kDeadlineExceeded: return "deadline-exceeded";
    case Status::kRetryAfter: return "retry-after";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kWatchdogTimeout: return "watchdog-timeout";
    case Status::kInjectedFault: return "injected-fault";
    case Status::kInternal: return "internal";
  }
  return "?";
}

std::size_t request_wire_size(const RequestFrame& frame) {
  return kRequestHeaderBytes + frame.options.variant.size() +
         frame.options.retry.fallback_variant.size() + 4 * frame.payload.size();
}

std::size_t response_wire_size(const ResponseFrame& frame) {
  return kResponseHeaderBytes + 4 * frame.logits.size();
}

void append_request(std::vector<std::uint8_t>& out, const RequestFrame& frame) {
  const runtime::RequestOptions& o = frame.options;
  if (o.variant.size() > 255 || o.retry.fallback_variant.size() > 255)
    throw std::invalid_argument("append_request: variant id over 255 bytes");
  if (frame.payload.size() > kMaxPayloadFloats)
    throw std::invalid_argument("append_request: payload over kMaxPayloadFloats");
  if (o.retry.max_attempts < 0 || o.retry.max_attempts > 255)
    throw std::invalid_argument("append_request: max_attempts out of range");
  const auto deadline_us = o.deadline.count();
  if (deadline_us < 0 || deadline_us > 0xFFFFFFFFll)
    throw std::invalid_argument("append_request: deadline out of u32 microseconds");
  out.reserve(out.size() + request_wire_size(frame));
  put(out, kMagic);
  put(out, kVersion);
  put(out, frame.flags);
  put(out, frame.request_id);
  put(out, static_cast<std::uint8_t>(o.priority));
  put(out, static_cast<std::uint8_t>(o.variant.size()));
  put(out, static_cast<std::uint8_t>(o.retry.fallback_variant.size()));
  put(out, static_cast<std::uint8_t>(o.retry.max_attempts));
  put(out, static_cast<std::uint32_t>(deadline_us));
  put(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.insert(out.end(), o.variant.begin(), o.variant.end());
  out.insert(out.end(), o.retry.fallback_variant.begin(), o.retry.fallback_variant.end());
  for (float f : frame.payload) put_f32(out, f);
}

void append_response(std::vector<std::uint8_t>& out, const ResponseFrame& frame) {
  if (frame.logits.size() > kMaxPayloadFloats)
    throw std::invalid_argument("append_response: logits over kMaxPayloadFloats");
  out.reserve(out.size() + response_wire_size(frame));
  put(out, kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint16_t>(frame.status));
  put(out, frame.request_id);
  put(out, static_cast<std::uint32_t>(frame.label));
  put(out, frame.retry_after_ms);
  put(out, frame.attempts);
  put(out, static_cast<std::uint8_t>(frame.degraded ? 1 : 0));
  put(out, frame.shard);
  put(out, static_cast<std::uint32_t>(frame.logits.size()));
  for (float f : frame.logits) put_f32(out, f);
}

DecodeResult decode_request(const std::uint8_t* data, std::size_t size, std::size_t& consumed,
                            RequestFrame& out, Status& error, std::uint64_t& error_request_id) {
  consumed = 0;
  error_request_id = 0;
  // Magic and version are checked as soon as their bytes are present: a
  // foreign or desynchronized peer is rejected without waiting for a "frame"
  // that will never complete.
  if (size < 4) return DecodeResult::kNeedMore;
  if (get<std::uint32_t>(data) != kMagic) {
    error = Status::kBadMagic;
    return DecodeResult::kError;
  }
  if (size < 6) return DecodeResult::kNeedMore;
  if (size >= 16) error_request_id = get<std::uint64_t>(data + 8);
  if (get<std::uint16_t>(data + 4) != kVersion) {
    error = Status::kBadVersion;
    return DecodeResult::kError;
  }
  if (size < kRequestHeaderBytes) return DecodeResult::kNeedMore;
  const std::uint16_t flags = get<std::uint16_t>(data + 6);
  const std::uint64_t request_id = get<std::uint64_t>(data + 8);
  const std::uint8_t priority = data[16];
  const std::uint8_t variant_len = data[17];
  const std::uint8_t fallback_len = data[18];
  const std::uint8_t max_attempts = data[19];
  const std::uint32_t deadline_us = get<std::uint32_t>(data + 20);
  const std::uint32_t payload_floats = get<std::uint32_t>(data + 24);
  if (payload_floats > kMaxPayloadFloats ||
      priority >= static_cast<std::uint8_t>(runtime::kNumPriorities)) {
    error = Status::kBadFrame;
    return DecodeResult::kError;
  }
  const std::size_t total = kRequestHeaderBytes + variant_len + fallback_len +
                            4 * static_cast<std::size_t>(payload_floats);
  if (size < total) return DecodeResult::kNeedMore;

  out.request_id = request_id;
  out.flags = flags;
  out.options = runtime::RequestOptions{};
  const std::uint8_t* p = data + kRequestHeaderBytes;
  out.options.variant.assign(reinterpret_cast<const char*>(p), variant_len);
  p += variant_len;
  out.options.retry.fallback_variant.assign(reinterpret_cast<const char*>(p), fallback_len);
  p += fallback_len;
  out.options.priority = static_cast<runtime::Priority>(priority);
  out.options.deadline = std::chrono::microseconds(deadline_us);
  out.options.retry.max_attempts = max_attempts == 0 ? 1 : max_attempts;
  out.payload.resize(payload_floats);
  for (std::uint32_t i = 0; i < payload_floats; ++i) out.payload[i] = get_f32(p + 4 * i);
  consumed = total;
  return DecodeResult::kFrame;
}

DecodeResult decode_response(const std::uint8_t* data, std::size_t size, std::size_t& consumed,
                             ResponseFrame& out, Status& error) {
  consumed = 0;
  if (size < 4) return DecodeResult::kNeedMore;
  if (get<std::uint32_t>(data) != kMagic) {
    error = Status::kBadMagic;
    return DecodeResult::kError;
  }
  if (size < 6) return DecodeResult::kNeedMore;
  if (get<std::uint16_t>(data + 4) != kVersion) {
    error = Status::kBadVersion;
    return DecodeResult::kError;
  }
  if (size < kResponseHeaderBytes) return DecodeResult::kNeedMore;
  const std::uint32_t logit_count = get<std::uint32_t>(data + 28);
  if (logit_count > kMaxPayloadFloats) {
    error = Status::kBadFrame;
    return DecodeResult::kError;
  }
  const std::size_t total = kResponseHeaderBytes + 4 * static_cast<std::size_t>(logit_count);
  if (size < total) return DecodeResult::kNeedMore;

  out.status = static_cast<Status>(get<std::uint16_t>(data + 6));
  out.request_id = get<std::uint64_t>(data + 8);
  out.label = static_cast<std::int32_t>(get<std::uint32_t>(data + 16));
  out.retry_after_ms = get<std::uint32_t>(data + 20);
  out.attempts = data[24];
  out.degraded = data[25] != 0;
  out.shard = get<std::uint16_t>(data + 26);
  out.logits.resize(logit_count);
  const std::uint8_t* p = data + kResponseHeaderBytes;
  for (std::uint32_t i = 0; i < logit_count; ++i) out.logits[i] = get_f32(p + 4 * i);
  consumed = total;
  return DecodeResult::kFrame;
}

}  // namespace ascend::serve
