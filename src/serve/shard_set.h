#pragma once
// shard_set.h — N InferenceEngine shards behind one router.
//
// A ShardSet scales the single-process serving core horizontally inside one
// process: each shard owns its own ModelRegistry, InferenceEngine (and with
// it a private batcher, forward pool and activation arenas), so shards share
// nothing on the request path and a wedged or draining shard never stalls
// the others. The router shards by variant first — only shards whose
// registry holds the requested variant are eligible — then picks the
// least-loaded eligible shard by live queue depth + in-flight forwards (the
// same signals the metrics gauges export, so the router and a Prometheus
// scrape always agree on "loaded").
//
// Admission control converts overload into typed back-pressure instead of
// blocking the caller (the accept loop, in the network front door): when
// every eligible shard sits above the queue watermark, submit() throws
// RetryAfterError carrying a client backoff hint; the shard engines
// themselves run bounded queues with OverflowPolicy::kReject, so a race past
// the watermark check still rejects rather than blocks.
//
// Coordinated operations mirror the c10d broadcast-to-all-ranks idiom from
// the related torch/caffe2 process-group code: publish_all() validates one
// candidate per shard against that shard's incumbent (canary forward on the
// publishing thread) and only when *every* shard accepted does it commit the
// swap — a rejected canary on any shard leaves all shards on their incumbent
// generation. drain(shard)/readmit(shard) support rolling weight pushes:
// stop admitting, flush in-flight work, swap, readmit — traffic keeps
// flowing through the other shards, and rolling_publish() packages the whole
// sequence.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/engine.h"
#include "runtime/metrics/registry.h"
#include "runtime/registry.h"

namespace ascend::serve {

/// Thrown by ShardSet::submit when admission control rejects the request:
/// every eligible shard is past the queue watermark (or drained). The client
/// should back off for `retry_after` and resubmit.
struct RetryAfterError : std::runtime_error {
  explicit RetryAfterError(std::chrono::milliseconds ra)
      : std::runtime_error("admission control: all eligible shards over watermark"),
        retry_after(ra) {}
  std::chrono::milliseconds retry_after;
};

struct ShardSetOptions {
  int shards = 2;  ///< engine shards (>= 1)
  /// Per-shard engine template. `max_pending` must be > 0 and `overflow`
  /// is forced to kReject: a sharded front door must never block its
  /// submitter. `metrics` is ignored (each shard engine keeps a private
  /// registry; the ShardSet exports per-shard series into its own).
  runtime::EngineOptions engine;
  /// Admission watermark as a fraction of `engine.max_pending`: a shard
  /// whose live queue depth is at or above watermark * max_pending is not
  /// admitting. When no eligible shard admits, submit() rejects.
  double admit_watermark = 0.75;
  /// Backoff hint carried by RetryAfterError / kRetryAfter responses.
  std::chrono::milliseconds retry_after{25};
  /// Registry for the shard-set series (per-shard queue depth/in-flight
  /// gauges, admitted/rejected counters). Null: a private registry,
  /// reachable via metrics().
  std::shared_ptr<runtime::metrics::MetricsRegistry> metrics;
};

/// Builds one servable candidate per shard (shards never share a servable:
/// each owns its own snapshots, pools and — for mmap'd weights — mapping).
using ServableFactory = std::function<std::shared_ptr<runtime::Servable>(int shard)>;

/// Seeds shard `shard`'s registry with its initial variants, before the
/// shard's engine starts (an InferenceEngine requires a non-empty registry).
using ShardBootstrap = std::function<void(int shard, runtime::ModelRegistry& registry)>;

/// Outcome of a coordinated publish across all shards.
struct PublishAllResult {
  bool published = false;
  int failed_shard = -1;  ///< shard whose canary rejected; -1 on success
  std::string error;      ///< rejection reason; empty on success
  std::vector<std::uint64_t> generations;  ///< per-shard generation after the call
};

class ShardSet {
 public:
  /// Construct `opts.shards` shards, seed each registry via `bootstrap`,
  /// then start each shard's engine (with opts.engine as the template).
  ShardSet(const ShardBootstrap& bootstrap, ShardSetOptions opts);
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  int shards() const { return static_cast<int>(shards_.size()); }

  /// Route to the least-loaded admitting shard holding the variant and
  /// enqueue there. Throws RetryAfterError on admission reject (including a
  /// race into a full shard queue), UnknownVariantError when no shard holds
  /// the variant; engine-typed errors (deadline, shutdown) pass through the
  /// future. Returns the shard index alongside the future.
  struct Ticket {
    std::future<runtime::Prediction> future;
    int shard = -1;
  };
  Ticket submit(std::vector<float> payload, runtime::RequestOptions ropts);

  /// Coordinated hot-swap: build one candidate per shard, canary-validate
  /// each against its shard's incumbent, and only publish — on every shard —
  /// when all canaries passed. All-or-nothing: a rejected canary (or a
  /// factory/validation error) leaves every shard's generation unchanged and
  /// counts one rollback on the rejecting shard's registry. `canary` null
  /// publishes unchecked (still all-or-nothing on factory errors).
  PublishAllResult publish_all(const ServableFactory& make,
                               const runtime::CanaryOptions* canary);

  /// Stop routing to `shard` and block until its queue and in-flight
  /// forwards have flushed. Requests keep flowing to the other shards.
  void drain(int shard);
  /// Resume routing to a drained shard.
  void readmit(int shard);
  bool admitting(int shard) const;

  /// Rolling weight push: canary-validate every shard's candidate up front
  /// (all-or-nothing, like publish_all), then per shard: drain -> publish ->
  /// readmit. Live traffic drains around each shard in turn; at every
  /// instant at least shards()-1 shards serve.
  PublishAllResult rolling_publish(const ServableFactory& make,
                                   const runtime::CanaryOptions* canary);

  /// Shard accessors (engine lifetime == ShardSet lifetime).
  runtime::InferenceEngine& engine(int shard);
  const std::shared_ptr<runtime::ModelRegistry>& registry(int shard) const;

  /// Live load score the router minimizes: queue depth + in-flight forwards.
  int load(int shard) const;

  /// Requests admitted / rejected by admission control across all shards.
  std::uint64_t admitted() const { return admitted_.load(); }
  std::uint64_t rejected() const { return rejected_.load(); }

  const std::shared_ptr<runtime::metrics::MetricsRegistry>& metrics() const { return metrics_; }
  const ShardSetOptions& options() const { return opts_; }

 private:
  struct Shard {
    std::shared_ptr<runtime::ModelRegistry> registry;
    std::unique_ptr<runtime::InferenceEngine> engine;
    std::atomic<bool> admitting{true};
  };

  void register_metric_series();

  ShardSetOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::shared_ptr<runtime::metrics::MetricsRegistry> metrics_;
  std::vector<runtime::metrics::CallbackId> metric_callbacks_;
};

}  // namespace ascend::serve
