#pragma once
// accelerator.h — accelerator-level area model (Table VI).
//
// Microarchitecture assumed for the end-to-end W2-A2-R16 accelerator (a
// token-parallel, channel-serial organisation in the style of the parallel
// thermometer accelerators [5]/[15]):
//   * `tokens` dot-product units of width `dim`: ternary truth-table
//     multipliers feeding a BSN accumulation tree and an R16 re-scaler;
//   * `tokens` gate-assisted-SI GELU lanes;
//   * k iterative-approximate-softmax blocks so all k iterations of the
//     attention rows stay fully parallel (the paper's Table VI footnote);
//   * `tokens` BN lanes and residual BSN adders.
// The softmax configuration is the [By, s1, s2, k] knob explored along the
// Pareto front.

#include "hw/cost_model.h"
#include "sc/softmax_iter.h"
#include "vit/config.h"

namespace ascend::core {

struct AcceleratorConfig {
  vit::VitConfig topology = vit::VitConfig::paper_topology();
  sc::SoftmaxIterConfig softmax;  ///< m is overridden with topology.tokens()
  int w_bsl = 2;
  int a_bsl = 2;
  int r_bsl = 16;
  int gelu_bsl = 8;
};

struct AcceleratorReport {
  double softmax_block_area = 0.0;  ///< one iterative softmax block
  double softmax_total_area = 0.0;  ///< k parallel blocks
  double dot_fabric_area = 0.0;
  double gelu_area = 0.0;
  double norm_residual_area = 0.0;
  double total_area = 0.0;
  double softmax_fraction() const {
    return total_area > 0 ? softmax_total_area / total_area : 0.0;
  }
};

/// Evaluate the area model for a configuration.
AcceleratorReport accelerator_area(const AcceleratorConfig& cfg);

}  // namespace ascend::core
