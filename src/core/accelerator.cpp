#include "core/accelerator.h"

#include "sc/gate_si.h"

namespace ascend::core {

namespace {

/// W-bit x A-bit dot-product unit of width `n`: n multipliers, a BSN over the
/// product bundle, and a re-scaler back onto the residual grid.
hw::GateInventory cost_dot_unit(int n, int w_bsl, int a_bsl, int r_bsl) {
  hw::GateInventory inv;
  const hw::GateInventory mult = hw::cost_therm_mult(w_bsl, a_bsl);
  for (int i = 0; i < n; ++i) inv += mult;
  const int prod_bits = w_bsl * a_bsl / 2;
  // The product bundles arrive sorted from the multipliers: a merge tree
  // suffices for the accumulation.
  inv += hw::cost_bsn_merge(static_cast<std::size_t>(n) * prod_bits,
                            static_cast<std::size_t>(prod_bits));
  inv += hw::cost_rescaler(n * prod_bits, r_bsl);
  return inv;
}

}  // namespace

AcceleratorReport accelerator_area(const AcceleratorConfig& cfg) {
  AcceleratorReport rep;
  const int tokens = cfg.topology.tokens();
  const int dim = cfg.topology.dim;

  sc::SoftmaxIterConfig sm = cfg.softmax;
  sm.m = tokens;
  rep.softmax_block_area = hw::cost_softmax_iter(sm).area_um2();
  rep.softmax_total_area = rep.softmax_block_area * sm.k;

  // Token-parallel dot-product fabric (shared across QKV / proj / MLP
  // matmuls, channel-serial).
  const hw::GateInventory dot = cost_dot_unit(dim, cfg.w_bsl, cfg.a_bsl, cfg.r_bsl);
  rep.dot_fabric_area = dot.area_um2() * tokens;

  // GELU lanes (gate-assisted SI blocks, residual-precision input).
  {
    const sc::GateAssistedSI gelu = sc::make_gelu_block(cfg.gelu_bsl);
    const hw::GateInventory g =
        hw::cost_gate_si(gelu.lin(), gelu.lout(), gelu.total_intervals());
    rep.gelu_area = g.area_um2() * tokens;
  }

  // BN lanes (one MAC per lane) and residual BSN adders on the R16 grid.
  {
    hw::GateInventory lane;
    lane.add(hw::Cell::kFullAdder, 2);
    lane.add(hw::Cell::kDff, 4);
    hw::GateInventory res = hw::cost_bsn_merge(static_cast<std::size_t>(2 * cfg.r_bsl),
                                               static_cast<std::size_t>(cfg.r_bsl));
    res += hw::cost_rescaler(2 * cfg.r_bsl, cfg.r_bsl);
    rep.norm_residual_area = (lane.area_um2() + res.area_um2()) * tokens;
  }

  rep.total_area =
      rep.softmax_total_area + rep.dot_fabric_area + rep.gelu_area + rep.norm_residual_area;
  return rep;
}

}  // namespace ascend::core
