#include "core/dse.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>

#include "hw/cost_model.h"

namespace ascend::core {

DseResult sweep_softmax_design_space(int bx, int m, int mae_rows, std::uint64_t seed,
                                     const DseOptions& options) {
  if (bx < 2 || bx % 2 != 0) throw std::invalid_argument("sweep: Bx must be even >= 2");
  const int bys[] = {4, 8, 16, 32};
  const int ks[] = {2, 3, 4};
  const int s1s[] = {32, 64, 128};
  const int s2s[] = {2, 8, 16};
  const double ax_range[] = {4.0, 8.0, 16.0};   // alpha_x = range / (Bx/2)
  const double ay_mul[] = {0.5, 1.0, 2.0};      // alpha_y = mul / m
  const int expands[] = {2, 4, 8};

  DseResult res;
  std::vector<sc::SoftmaxIterConfig> feasible;
  for (int by : bys)
    for (int k : ks)
      for (int s1 : s1s)
        for (int s2 : s2s)
          for (double axr : ax_range)
            for (double aym : ay_mul)
              for (int e : expands) {
                ++res.nominal_candidates;
                sc::SoftmaxIterConfig cfg;
                cfg.m = m;
                cfg.k = k;
                cfg.bx = bx;
                cfg.by = by;
                cfg.s1 = s1;
                cfg.s2 = s2;
                cfg.alpha_x = axr / (bx / 2.0);
                cfg.alpha_y = aym / m;
                cfg.align_expand = e;
                try {
                  cfg.validate();
                } catch (const std::invalid_argument&) {
                  ++res.infeasible;
                  continue;
                }
                feasible.push_back(cfg);
              }

  // Per-point evaluation: cost + MAE, served from the LUT cache by default.
  // A sweep-local cache dies with the sweep unless the caller passed one in.
  std::unique_ptr<runtime::TfCache> local_cache;
  runtime::TfCache* cache = options.cache;
  if (options.use_tf_cache && !cache) {
    local_cache = std::make_unique<runtime::TfCache>();
    cache = local_cache.get();
  }
  std::vector<DsePoint> evaluated(feasible.size());
  std::vector<char> ok(feasible.size(), 0);
  auto eval_range = [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      DsePoint p;
      p.cfg = feasible[static_cast<std::size_t>(i)];
      try {
        const hw::GateInventory inv = hw::cost_softmax_iter(p.cfg);
        p.area_um2 = inv.area_um2();
        p.delay_ns = inv.delay_ns();
        p.mae = options.use_tf_cache
                    ? runtime::softmax_sc_mae_cached(p.cfg, mae_rows, seed, *cache)
                    : sc::softmax_sc_mae(p.cfg, mae_rows, seed);
        evaluated[static_cast<std::size_t>(i)] = p;
        ok[static_cast<std::size_t>(i)] = 1;
      } catch (const std::exception&) {
        // Configuration turned out infeasible deeper in the datapath
        // (e.g. no feasible re-scaling plan); skip it.
      }
    }
  };
  // Small chunks: per-point cost clusters along the nested parameter loops
  // (large-By/k designs are orders of magnitude slower), so static
  // one-chunk-per-worker splitting would leave workers idle behind the
  // expensive stretch.
  constexpr int kSweepChunk = 8;
  const int n_points = static_cast<int>(feasible.size());
  if (options.pool) {
    options.pool->parallel_for(0, n_points, eval_range, kSweepChunk);
  } else if (options.threads == 1) {
    eval_range(0, n_points);
  } else {
    runtime::ThreadPool pool(options.threads > 0
                                 ? options.threads
                                 : static_cast<int>(std::thread::hardware_concurrency()));
    pool.parallel_for(0, n_points, eval_range, kSweepChunk);
  }
  for (std::size_t i = 0; i < evaluated.size(); ++i) {
    if (ok[i])
      res.points.push_back(evaluated[i]);
    else
      ++res.infeasible;
  }
  res.pareto = pareto_front(res.points);
  return res;
}

std::vector<std::size_t> pareto_front(const std::vector<DsePoint>& points) {
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (points[a].adp() != points[b].adp()) return points[a].adp() < points[b].adp();
    return points[a].mae < points[b].mae;
  });
  std::vector<std::size_t> front;
  double best_mae = std::numeric_limits<double>::infinity();
  for (std::size_t idx : order) {
    if (points[idx].mae < best_mae - 1e-12) {
      front.push_back(idx);
      best_mae = points[idx].mae;
    }
  }
  return front;
}

}  // namespace ascend::core
