#pragma once
// dse.h — design-space exploration for the iterative softmax block (Fig. 8).
//
// Sweeps the Table II parameters around a fixed Bx: By (4 values) and six
// 3-valued knobs' subset {k, s1, s2, alpha_x, alpha_y, align_expand} —
// 4 * 3^5 * ... = 2916 nominal candidate configurations per Bx. Candidates
// whose sub-sample rates do not divide the corresponding bundle lengths are
// infeasible and skipped (counts are reported). Each feasible design is
// costed (hw/cost_model.h) and measured (MAE over sampled attention rows),
// then the ADP/MAE Pareto front is extracted.

#include <cstdint>
#include <vector>

#include "sc/softmax_iter.h"

namespace ascend::core {

struct DsePoint {
  sc::SoftmaxIterConfig cfg;
  double area_um2 = 0.0;
  double delay_ns = 0.0;
  double mae = 0.0;
  double adp() const { return area_um2 * delay_ns; }
};

struct DseResult {
  std::vector<DsePoint> points;      ///< all feasible designs
  std::vector<std::size_t> pareto;   ///< indices of the ADP/MAE Pareto front
  int nominal_candidates = 0;
  int infeasible = 0;
};

/// Run the sweep for a given Bx (paper: 2 and 4). `mae_rows` test vectors
/// per design (reduce for smoke runs).
DseResult sweep_softmax_design_space(int bx, int m = 64, int mae_rows = 16,
                                     std::uint64_t seed = 99);

/// Indices of the Pareto-optimal points (minimising both ADP and MAE).
std::vector<std::size_t> pareto_front(const std::vector<DsePoint>& points);

}  // namespace ascend::core
