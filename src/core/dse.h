#pragma once
// dse.h — design-space exploration for the iterative softmax block (Fig. 8).
//
// Sweeps the Table II parameters around a fixed Bx: By (4 values) and six
// 3-valued knobs' subset {k, s1, s2, alpha_x, alpha_y, align_expand} —
// 4 * 3^5 * ... = 2916 nominal candidate configurations per Bx. Candidates
// whose sub-sample rates do not divide the corresponding bundle lengths are
// infeasible and skipped (counts are reported). Each feasible design is
// costed (hw/cost_model.h) and measured (MAE over sampled attention rows),
// then the ADP/MAE Pareto front is extracted.
//
// Evaluation runs on a runtime::ThreadPool (parallel_for across sweep
// points) and, by default, serves each design's MAE rows from the
// transfer-function LUT cache: the SoftmaxLut tabulates the design's four
// re-scaling blocks once and replays them over every test row, bit-exact
// with the circuit emulator — so cached and uncached sweeps produce
// *identical* MAE numbers at the same seed (asserted in
// tests/test_accelerator_dse.cpp).

#include <cstdint>
#include <vector>

#include "runtime/tf_cache.h"
#include "runtime/thread_pool.h"
#include "sc/softmax_iter.h"

namespace ascend::core {

struct DsePoint {
  sc::SoftmaxIterConfig cfg;
  double area_um2 = 0.0;
  double delay_ns = 0.0;
  double mae = 0.0;
  double adp() const { return area_um2 * delay_ns; }
};

struct DseResult {
  std::vector<DsePoint> points;      ///< all feasible designs (stable order)
  std::vector<std::size_t> pareto;   ///< indices of the ADP/MAE Pareto front
  int nominal_candidates = 0;
  int infeasible = 0;
};

/// Knobs for how the sweep is *executed* (never what it computes: results are
/// deterministic and independent of caching / thread count).
struct DseOptions {
  /// Serve per-design MAE rows from a SoftmaxLut instead of re-running the
  /// circuit emulator per row. Bit-identical numbers, large wall-clock win.
  bool use_tf_cache = true;
  /// Worker threads for the sweep (0 = hardware_concurrency, 1 = serial).
  /// Ignored when `pool` is set.
  int threads = 0;
  /// Run on an existing pool instead of spawning one per sweep.
  runtime::ThreadPool* pool = nullptr;
  /// LUT cache to use / fill; nullptr = a sweep-local cache (freed with the
  /// sweep — per-design tables are one-shot, no reason to pin them globally).
  runtime::TfCache* cache = nullptr;
};

/// Run the sweep for a given Bx (paper: 2 and 4). `mae_rows` test vectors
/// per design (reduce for smoke runs).
DseResult sweep_softmax_design_space(int bx, int m = 64, int mae_rows = 16,
                                     std::uint64_t seed = 99, const DseOptions& options = {});

/// Indices of the Pareto-optimal points (minimising both ADP and MAE).
std::vector<std::size_t> pareto_front(const std::vector<DsePoint>& points);

}  // namespace ascend::core
