#pragma once
// ascend.h — umbrella header for the ASCEND library.
//
// Layers (bottom up):
//   ascend::sc   — stochastic-computing substrate: encodings, arithmetic,
//                  sorting networks, the baseline nonlinear units, and the
//                  paper's gate-assisted SI GELU + iterative approximate
//                  softmax circuit models.
//   ascend::hw   — gate-level area/delay/ADP cost model.
//   ascend::nn   — tensor/layer/optimizer substrate with LSQ quantization.
//   ascend::vit  — compact ViT, synthetic dataset, the two-stage training
//                  pipeline, and SC-emulated inference.
//   ascend::runtime — batched inference serving: thread pool, dynamic
//                  request batcher, transfer-function LUT cache, engine.
//   ascend::serialize — versioned mmap-able checkpoint container and the
//                  model save/load + registry cold-start wiring.
//   ascend::core — accelerator-level composition and design-space
//                  exploration.

#include "core/accelerator.h"
#include "core/dse.h"
#include "hw/cell_library.h"
#include "hw/cost_model.h"
#include "hw/gate_inventory.h"
#include "hw/report.h"
#include "nn/approx_softmax.h"
#include "nn/attention.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/optim.h"
#include "nn/quant.h"
#include "nn/rng.h"
#include "nn/tensor.h"
#include "runtime/batcher.h"
#include "runtime/engine.h"
#include "runtime/failpoint.h"
#include "runtime/loader.h"
#include "runtime/registry.h"
#include "runtime/servable.h"
#include "runtime/tf_cache.h"
#include "runtime/thread_pool.h"
#include "sc/bernstein.h"
#include "sc/bitvec.h"
#include "sc/bsn.h"
#include "sc/fsm_units.h"
#include "sc/gate_si.h"
#include "sc/si.h"
#include "sc/sng.h"
#include "sc/softmax_fsm.h"
#include "sc/softmax_iter.h"
#include "sc/stoch_arith.h"
#include "sc/stoch_stream.h"
#include "sc/therm_arith.h"
#include "sc/therm_stream.h"
#include "serialize/checkpoint.h"
#include "serialize/model_io.h"
#include "vit/config.h"
#include "vit/dataset.h"
#include "vit/model.h"
#include "vit/sc_inference.h"
#include "vit/servable.h"
#include "vit/train.h"
