// Tests for the two-stage training pipeline orchestration (vit/train.h).
// These run a genuinely tiny configuration — the goal is to exercise every
// stage transition (init copies, teacher wiring, quantizer re-specs, the
// approximate-softmax swap), not to reach meaningful accuracy.

#include <gtest/gtest.h>

#include <cmath>

#include "vit/sc_inference.h"
#include "vit/train.h"

using namespace ascend;
using namespace ascend::vit;

namespace {

PipelineOptions tiny_pipeline() {
  PipelineOptions opt;
  opt.config = VitConfig();
  opt.config.image_size = 16;
  opt.config.patch_size = 8;  // 4 tokens
  opt.config.dim = 8;
  opt.config.layers = 1;
  opt.config.heads = 2;
  opt.config.classes = 2;
  opt.config.approx_softmax_k = 2;
  opt.stage_epochs = 1;
  opt.finetune_epochs = 1;
  opt.batch_size = 16;
  opt.seed = 3;
  opt.verbose = false;
  return opt;
}

}  // namespace

TEST(Pipeline, RunsAllStagesAndReturnsEveryRow) {
  const PipelineOptions opt = tiny_pipeline();
  const Dataset train = make_synthetic_vision(64, 2, 11, opt.config.image_size);
  const Dataset test = make_synthetic_vision(32, 2, 12, opt.config.image_size);
  const PipelineResult res = run_ascend_pipeline(opt, train, test);

  for (double acc : {res.acc_fp_ln, res.acc_fp_bn, res.acc_baseline_direct, res.acc_progressive,
                     res.acc_approx, res.acc_approx_ft}) {
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 100.0);
  }
  ASSERT_NE(res.sc_friendly, nullptr);
  // The final model is the W2-A2-R16 one with the approximate softmax wired.
  EXPECT_EQ(res.sc_friendly->precision().name(), "W2-A2-R16");
  EXPECT_EQ(res.sc_friendly->blocks()[0].msa().softmax_kind(), nn::SoftmaxKind::kApprox);
}

TEST(Pipeline, FinalModelSupportsScInference) {
  const PipelineOptions opt = tiny_pipeline();
  const Dataset train = make_synthetic_vision(48, 2, 21, opt.config.image_size);
  const Dataset test = make_synthetic_vision(24, 2, 22, opt.config.image_size);
  PipelineResult res = run_ascend_pipeline(opt, train, test);

  ScInferenceConfig sc_cfg;
  sc_cfg.softmax.bx = 4;
  sc_cfg.softmax.by = 16;
  sc_cfg.softmax.k = 2;
  sc_cfg.softmax.s1 = 2;
  sc_cfg.softmax.s2 = 2;
  sc_cfg.softmax.alpha_x = 1.0;
  sc_cfg.softmax.alpha_y = 1.5 / 16;
  const double acc = evaluate_sc(*res.sc_friendly, test, sc_cfg);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 100.0);
}

TEST(TrainModel, LossDecreasesWithoutTeacher) {
  VitConfig cfg = tiny_pipeline().config;
  VisionTransformer model(cfg, 5);
  const Dataset train = make_synthetic_vision(64, 2, 31, cfg.image_size);
  TrainOptions opt;
  opt.epochs = 1;
  opt.batch_size = 16;
  const double l1 = train_model(model, nullptr, train, opt);
  opt.epochs = 4;
  const double l2 = train_model(model, nullptr, train, opt);
  EXPECT_TRUE(std::isfinite(l1));
  EXPECT_LT(l2, l1);
}

TEST(TrainModel, KdLossIsFiniteAcrossNormKinds) {
  // LN teacher distilling into a BN student: the normalised feature-MSE term
  // must not blow up (the raw-MSE pathology the pipeline fixes).
  VitConfig cfg = tiny_pipeline().config;
  cfg.norm = NormKind::kLayerNorm;
  VisionTransformer teacher(cfg, 6);
  cfg.norm = NormKind::kBatchNorm;
  VisionTransformer student(cfg, 7);
  const Dataset train = make_synthetic_vision(32, 2, 41, cfg.image_size);
  TrainOptions opt;
  opt.epochs = 1;
  opt.batch_size = 16;
  const double loss = train_model(student, &teacher, train, opt);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_LT(loss, 50.0);  // raw MSE between LN/BN features would be O(100s)
}

TEST(Evaluate, DeterministicInEvalMode) {
  VitConfig cfg = tiny_pipeline().config;
  VisionTransformer model(cfg, 8);
  const Dataset test = make_synthetic_vision(40, 2, 51, cfg.image_size);
  const double a = evaluate(model, test);
  const double b = evaluate(model, test);
  EXPECT_DOUBLE_EQ(a, b);
}
