// test_frontdoor.cpp — the network front door: wire protocol, sharded
// router, admission control, coordinated publishes, and the socket server
// end-to-end over real loopback connections.
//
// The malformed-frame battery drives corrupt bytes at a live server (bad
// magic, future version, oversize length, truncated-by-half-close, unknown
// variant) and asserts each maps to its typed wire status without killing
// the connection loop — a fresh healthy connection is served after every
// corruption, and a seeded bit-flip fuzzer checks no byte pattern can crash
// or wedge the server.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "nn/tensor.h"
#include "runtime/batcher.h"
#include "runtime/engine.h"
#include "runtime/failpoint.h"
#include "runtime/registry.h"
#include "runtime/servable.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/shard_set.h"

using namespace ascend;
using namespace ascend::serve;
using runtime::ModelRegistry;
using runtime::Priority;
using runtime::RequestOptions;
using runtime::Servable;

namespace {

/// Deterministic toy servable (the test_servable idiom): label =
/// (payload[0] + bias) % kClasses, logits one-hot, optional delay so
/// admission tests can hold a queue open.
class MockServable final : public Servable {
 public:
  MockServable(std::string id, int bias = 0, std::chrono::milliseconds delay = {})
      : id_(std::move(id)), bias_(bias), delay_(delay) {}

  nn::Tensor infer(const nn::Tensor& batch) const override {
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    nn::Tensor logits({batch.dim(0), kClasses});
    for (int r = 0; r < batch.dim(0); ++r) {
      const int label = (static_cast<int>(batch.at(r, 0)) + bias_) % kClasses;
      logits.at(r, label) = 1.0f;
    }
    return logits;
  }
  int input_dim() const override { return kInputDim; }
  int output_dim() const override { return kClasses; }
  const std::string& variant_id() const override { return id_; }

  static constexpr int kInputDim = 4;
  static constexpr int kClasses = 8;

 private:
  std::string id_;
  int bias_;
  std::chrono::milliseconds delay_;
};

std::vector<float> payload(float head) {
  std::vector<float> p(MockServable::kInputDim, 0.0f);
  p[0] = head;
  return p;
}

nn::Tensor golden_batch(int rows) {
  nn::Tensor t({rows, MockServable::kInputDim});
  for (int r = 0; r < rows; ++r) t.at(r, 0) = static_cast<float>(r + 1);
  return t;
}

ShardSetOptions quick_shard_opts(int shards = 2, int max_pending = 64) {
  ShardSetOptions o;
  o.shards = shards;
  o.engine.max_batch = 4;
  o.engine.max_delay = std::chrono::microseconds{300};
  o.engine.concurrent_forwards = 1;
  o.engine.threads = 2;
  o.engine.max_pending = max_pending;
  o.engine.default_variant = "a";
  return o;
}

/// Bootstrap every shard with variants "a" and "b" (bias 0 / 1).
void bootstrap_ab(int /*shard*/, ModelRegistry& reg) {
  reg.publish(std::make_shared<MockServable>("a", 0));
  reg.publish(std::make_shared<MockServable>("b", 1));
}

RequestFrame make_request(std::uint64_t id, float head, std::string variant = {}) {
  RequestFrame f;
  f.request_id = id;
  f.options.variant = std::move(variant);
  f.payload = payload(head);
  return f;
}

/// Little-endian field poke for hand-crafted corrupt frames.
template <typename T>
void poke(std::vector<std::uint8_t>& bytes, std::size_t off, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    bytes[off + i] = static_cast<std::uint8_t>((static_cast<std::uint64_t>(v) >> (8 * i)) & 0xFF);
}

class FrontdoorTest : public ::testing::Test {
 protected:
  void TearDown() override { runtime::failpoint::disarm_all(); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(Protocol, RequestRoundTripPreservesEveryField) {
  RequestFrame in;
  in.request_id = 0xDEADBEEFCAFEull;
  in.flags = 0;
  in.options.variant = "sc-lut";
  in.options.priority = Priority::kInteractive;
  in.options.deadline = std::chrono::microseconds{123456};
  in.options.retry.max_attempts = 3;
  in.options.retry.fallback_variant = "fp32";
  in.payload = {1.5f, -2.25f, 0.0f, 1e-9f};

  std::vector<std::uint8_t> bytes;
  append_request(bytes, in);
  EXPECT_EQ(bytes.size(), request_wire_size(in));

  RequestFrame out;
  std::size_t consumed = 0;
  Status error{};
  std::uint64_t error_id = 0;
  ASSERT_EQ(decode_request(bytes.data(), bytes.size(), consumed, out, error, error_id),
            DecodeResult::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.options.variant, "sc-lut");
  EXPECT_EQ(out.options.priority, Priority::kInteractive);
  EXPECT_EQ(out.options.deadline, in.options.deadline);
  EXPECT_EQ(out.options.retry.max_attempts, 3);
  EXPECT_EQ(out.options.retry.fallback_variant, "fp32");
  EXPECT_EQ(out.payload, in.payload);
}

TEST(Protocol, ResponseRoundTripPreservesEveryField) {
  ResponseFrame in;
  in.request_id = 42;
  in.status = Status::kRetryAfter;
  in.label = 7;
  in.retry_after_ms = 25;
  in.attempts = 2;
  in.degraded = true;
  in.shard = 3;
  in.logits = {0.5f, -0.5f};

  std::vector<std::uint8_t> bytes;
  append_response(bytes, in);
  EXPECT_EQ(bytes.size(), response_wire_size(in));

  ResponseFrame out;
  std::size_t consumed = 0;
  Status error{};
  ASSERT_EQ(decode_response(bytes.data(), bytes.size(), consumed, out, error),
            DecodeResult::kFrame);
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.status, Status::kRetryAfter);
  EXPECT_EQ(out.label, 7);
  EXPECT_EQ(out.retry_after_ms, 25u);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.shard, 3);
  EXPECT_EQ(out.logits, in.logits);
}

TEST(Protocol, IncrementalDecodeReportsNeedMoreUntilWholeFrame) {
  RequestFrame in = make_request(9, 3.0f, "a");
  std::vector<std::uint8_t> bytes;
  append_request(bytes, in);
  RequestFrame out;
  Status error{};
  std::uint64_t error_id = 0;
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    std::size_t consumed = 0;
    EXPECT_EQ(decode_request(bytes.data(), n, consumed, out, error, error_id),
              DecodeResult::kNeedMore)
        << "prefix of " << n << " bytes";
    EXPECT_EQ(consumed, 0u);
  }
  std::size_t consumed = 0;
  EXPECT_EQ(decode_request(bytes.data(), bytes.size(), consumed, out, error, error_id),
            DecodeResult::kFrame);
}

TEST(Protocol, MalformedHeadersYieldTypedErrorsAndSalvageTheRequestId) {
  RequestFrame in = make_request(0x1122334455667788ull, 1.0f, "a");
  std::vector<std::uint8_t> good;
  append_request(good, in);

  RequestFrame out;
  std::size_t consumed = 0;
  Status error{};
  std::uint64_t error_id = 0;

  std::vector<std::uint8_t> bad = good;
  poke<std::uint32_t>(bad, 0, 0x12345678u);  // magic
  EXPECT_EQ(decode_request(bad.data(), bad.size(), consumed, out, error, error_id),
            DecodeResult::kError);
  EXPECT_EQ(error, Status::kBadMagic);

  bad = good;
  poke<std::uint16_t>(bad, 4, kVersion + 1);  // future version
  EXPECT_EQ(decode_request(bad.data(), bad.size(), consumed, out, error, error_id),
            DecodeResult::kError);
  EXPECT_EQ(error, Status::kBadVersion);
  EXPECT_EQ(error_id, in.request_id) << "id salvaged for the failure response";

  bad = good;
  poke<std::uint32_t>(bad, 24, kMaxPayloadFloats + 1);  // oversize payload
  EXPECT_EQ(decode_request(bad.data(), bad.size(), consumed, out, error, error_id),
            DecodeResult::kError);
  EXPECT_EQ(error, Status::kBadFrame);
  EXPECT_EQ(error_id, in.request_id);

  bad = good;
  bad[16] = 250;  // priority out of range
  EXPECT_EQ(decode_request(bad.data(), bad.size(), consumed, out, error, error_id),
            DecodeResult::kError);
  EXPECT_EQ(error, Status::kBadFrame);
}

TEST(Protocol, EveryStatusHasAName) {
  for (int s = 0; s <= static_cast<int>(Status::kInternal); ++s)
    EXPECT_STRNE(status_name(static_cast<Status>(s)), "?");
}

// ---------------------------------------------------------------------------
// Batcher per-variant queue depths (metrics satellite)
// ---------------------------------------------------------------------------

TEST(PendingCounts, ReportsPerVariantDepthsInOneSnapshot) {
  runtime::Batcher batcher(8, std::chrono::microseconds{50'000});
  RequestOptions a, b;
  a.variant = "a";
  b.variant = "b";
  auto f1 = batcher.enqueue(payload(1), a);
  auto f2 = batcher.enqueue(payload(2), a);
  auto f3 = batcher.enqueue(payload(3), b);
  const runtime::PendingCounts counts = batcher.pending_counts();
  EXPECT_EQ(counts.total, 3u);
  EXPECT_EQ(counts.variant("a"), 2u);
  EXPECT_EQ(counts.variant("b"), 1u);
  EXPECT_EQ(counts.variant("absent"), 0u);
  ASSERT_EQ(counts.by_variant.size(), 2u);
  EXPECT_EQ(counts.by_variant[0].first, "a");  // id-sorted
  batcher.close_now();
}

TEST(PendingCounts, EngineExportsPerVariantQueueDepthGauges) {
  auto registry = std::make_shared<ModelRegistry>();
  bootstrap_ab(0, *registry);
  runtime::EngineOptions opts;
  opts.default_variant = "a";
  opts.max_pending = 16;
  runtime::InferenceEngine engine(registry, opts);
  const auto snapshot = engine.metrics()->snapshot();
  int variant_gauges = 0;
  for (const auto& s : snapshot.series)
    if (s.name == "ascend_queue_depth" && !s.labels.empty() && s.labels[0].first == "variant")
      ++variant_gauges;
  EXPECT_EQ(variant_gauges, 2) << "one ascend_queue_depth{variant=...} gauge per variant";
}

// ---------------------------------------------------------------------------
// ShardSet: routing, admission, coordinated publishes
// ---------------------------------------------------------------------------

TEST_F(FrontdoorTest, RouterPicksLeastLoadedShardAndFiltersByVariant) {
  // Shard 1 holds variant "b"; shard 0 does not — "b" must route to shard 1
  // no matter the load.
  ShardSet shards(
      [](int shard, ModelRegistry& reg) {
        reg.publish(std::make_shared<MockServable>("a", 0));
        if (shard == 1) reg.publish(std::make_shared<MockServable>("b", 1));
      },
      quick_shard_opts());
  RequestOptions b;
  b.variant = "b";
  ShardSet::Ticket t = shards.submit(payload(2), b);
  EXPECT_EQ(t.shard, 1);
  EXPECT_EQ(t.future.get().label, 3);  // (2 + bias 1) % 8

  EXPECT_THROW(shards.submit(payload(1), RequestOptions{.variant = "nope"}),
               runtime::UnknownVariantError);
  EXPECT_EQ(shards.admitted(), 1u);
}

TEST_F(FrontdoorTest, AdmissionControlShedsWithRetryAfterInsteadOfBlocking) {
  // One slow shard, tiny queue, low watermark: the flood must convert into
  // typed RetryAfterError rejects, never a blocked submitter.
  ShardSetOptions opts = quick_shard_opts(/*shards=*/1, /*max_pending=*/4);
  opts.admit_watermark = 0.5;  // reject at queue depth >= 2
  opts.retry_after = std::chrono::milliseconds{40};
  ShardSet shards(
      [](int, ModelRegistry& reg) {
        reg.publish(std::make_shared<MockServable>("a", 0, std::chrono::milliseconds{50}));
      },
      opts);
  std::vector<std::future<runtime::Prediction>> ok;
  int rejected = 0;
  std::chrono::milliseconds hint{0};
  for (int i = 0; i < 32; ++i) {
    try {
      ok.push_back(shards.submit(payload(1), {}).future);
    } catch (const RetryAfterError& e) {
      ++rejected;
      hint = e.retry_after;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(hint.count(), 40);
  EXPECT_EQ(shards.rejected(), static_cast<std::uint64_t>(rejected));
  for (auto& f : ok) EXPECT_NO_THROW(f.get());
  EXPECT_EQ(shards.admitted() + shards.rejected(), 32u);
}

TEST_F(FrontdoorTest, DrainStopsAdmissionAndReadmitRestoresIt) {
  ShardSet shards(bootstrap_ab, quick_shard_opts(/*shards=*/2));
  shards.drain(0);
  EXPECT_FALSE(shards.admitting(0));
  // With shard 0 drained every request lands on shard 1.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(shards.submit(payload(1), {}).shard, 1);
  shards.readmit(0);
  EXPECT_TRUE(shards.admitting(0));
  // Draining every holder makes the variant transiently unavailable: typed
  // retry-after, not a block and not unknown-variant.
  shards.drain(0);
  shards.drain(1);
  EXPECT_THROW(shards.submit(payload(1), {}), RetryAfterError);
  shards.readmit(0);
  shards.readmit(1);
  EXPECT_NO_THROW(shards.submit(payload(1), {}).future.get());
}

TEST_F(FrontdoorTest, PublishAllCommitsEveryShardWhenAllCanariesPass) {
  ShardSet shards(bootstrap_ab, quick_shard_opts());
  runtime::CanaryOptions canary;
  canary.golden_input = golden_batch(3);
  const PublishAllResult r = shards.publish_all(
      [](int) { return std::make_shared<MockServable>("a", 0); }, &canary);
  EXPECT_TRUE(r.published);
  EXPECT_EQ(r.failed_shard, -1);
  ASSERT_EQ(r.generations.size(), 2u);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(r.generations[static_cast<std::size_t>(s)], 2u);
    EXPECT_EQ(shards.registry(s)->generation("a"), 2u);
  }
}

TEST_F(FrontdoorTest, PublishAllWithOneFailingCanaryLeavesAllShardsOnIncumbent) {
  ShardSet shards(bootstrap_ab, quick_shard_opts());
  runtime::CanaryOptions canary;
  canary.golden_input = golden_batch(3);
  canary.require_label_match = true;
  // Shard 1's candidate diverges (bias 5 flips every argmax); shard 0's is
  // clean. All-or-nothing: neither shard may swap.
  const PublishAllResult r = shards.publish_all(
      [](int shard) { return std::make_shared<MockServable>("a", shard == 1 ? 5 : 0); },
      &canary);
  EXPECT_FALSE(r.published);
  EXPECT_EQ(r.failed_shard, 1);
  EXPECT_FALSE(r.error.empty());
  for (int s = 0; s < 2; ++s)
    EXPECT_EQ(shards.registry(s)->generation("a"), 1u) << "shard " << s << " must keep incumbent";
  EXPECT_EQ(shards.registry(1)->rollbacks(), 1u);
  EXPECT_EQ(shards.registry(0)->rollbacks(), 0u);
  // The incumbent keeps serving on every shard.
  EXPECT_EQ(shards.submit(payload(2), {}).future.get().label, 2);
}

TEST_F(FrontdoorTest, RollingPublishSwapsEveryShardAndRestoresAdmission) {
  ShardSet shards(bootstrap_ab, quick_shard_opts());
  runtime::CanaryOptions canary;
  canary.golden_input = golden_batch(2);
  const PublishAllResult r = shards.rolling_publish(
      [](int) { return std::make_shared<MockServable>("a", 0); }, &canary);
  EXPECT_TRUE(r.published);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(shards.registry(s)->generation("a"), 2u);
    EXPECT_TRUE(shards.admitting(s));
  }
}

// ---------------------------------------------------------------------------
// Server end-to-end over loopback
// ---------------------------------------------------------------------------

TEST_F(FrontdoorTest, ServesRequestsOverLoopbackWithCorrectLabelsAndLogits) {
  ShardSet shards(bootstrap_ab, quick_shard_opts());
  Server server(shards);
  ASSERT_GT(server.port(), 0);
  Client client("127.0.0.1", server.port());
  for (int i = 0; i < 8; ++i) {
    const ResponseFrame resp = client.request(make_request(100 + i, static_cast<float>(i)));
    EXPECT_EQ(resp.status, Status::kOk);
    EXPECT_EQ(resp.request_id, 100u + static_cast<unsigned>(i));
    EXPECT_EQ(resp.label, i % MockServable::kClasses);
    ASSERT_EQ(resp.logits.size(), static_cast<std::size_t>(MockServable::kClasses));
    EXPECT_FLOAT_EQ(resp.logits[static_cast<std::size_t>(resp.label)], 1.0f);
  }
  // Variant routing over the wire.
  const ResponseFrame b = client.request(make_request(200, 2.0f, "b"));
  EXPECT_EQ(b.status, Status::kOk);
  EXPECT_EQ(b.label, 3);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.frames_in, 9u);
  EXPECT_EQ(stats.responses_out, 9u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_F(FrontdoorTest, MalformedFrameBatteryMapsToTypedStatusesWithoutKillingTheLoop) {
  ShardSet shards(bootstrap_ab, quick_shard_opts());
  Server server(shards);
  std::vector<std::uint8_t> good;
  append_request(good, make_request(7, 1.0f, "a"));

  const auto healthy = [&] {
    Client probe("127.0.0.1", server.port());
    const ResponseFrame resp = probe.request(make_request(1, 3.0f));
    EXPECT_EQ(resp.status, Status::kOk);
    EXPECT_EQ(resp.label, 3);
  };

  {  // bad magic: typed answer, then the desynced connection closes
    Client c("127.0.0.1", server.port());
    std::vector<std::uint8_t> bad = good;
    poke<std::uint32_t>(bad, 0, 0xBADBADu);
    c.send_raw(bad);
    EXPECT_EQ(c.recv().status, Status::kBadMagic);
    EXPECT_THROW(c.recv(), std::runtime_error);  // server hung up
  }
  healthy();

  {  // future protocol version
    Client c("127.0.0.1", server.port());
    std::vector<std::uint8_t> bad = good;
    poke<std::uint16_t>(bad, 4, kVersion + 1);
    c.send_raw(bad);
    const ResponseFrame resp = c.recv();
    EXPECT_EQ(resp.status, Status::kBadVersion);
    EXPECT_EQ(resp.request_id, 7u) << "salvaged id echoes back";
  }
  healthy();

  {  // oversize length: rejected from the header, nothing allocated
    Client c("127.0.0.1", server.port());
    std::vector<std::uint8_t> bad = good;
    poke<std::uint32_t>(bad, 24, kMaxPayloadFloats + 1);
    c.send_raw(bad);
    EXPECT_EQ(c.recv().status, Status::kBadFrame);
  }
  healthy();

  {  // truncated payload delivered by half-close
    Client c("127.0.0.1", server.port());
    c.send_raw(good.data(), good.size() - 4);
    c.shutdown_write();
    const ResponseFrame resp = c.recv();
    EXPECT_EQ(resp.status, Status::kTruncated);
    EXPECT_EQ(resp.request_id, 7u);
  }
  healthy();

  {  // unknown variant: typed answer and the connection SURVIVES
    Client c("127.0.0.1", server.port());
    EXPECT_EQ(c.request(make_request(8, 1.0f, "nope")).status, Status::kUnknownVariant);
    EXPECT_EQ(c.request(make_request(9, 1.0f, "a")).status, Status::kOk);
  }
  healthy();

  EXPECT_GE(server.stats().protocol_errors, 4u);
}

TEST_F(FrontdoorTest, SeededBitFlipFuzzNeverCrashesOrWedgesTheServer) {
  ShardSet shards(bootstrap_ab, quick_shard_opts());
  Server server(shards);
  std::vector<std::uint8_t> good;
  append_request(good, make_request(5, 2.0f, "a"));

  std::mt19937_64 rng(0xF00DF00Dull);  // seeded: failures replay exactly
  std::uniform_int_distribution<std::size_t> pick_byte(0, good.size() - 1);
  std::uniform_int_distribution<int> pick_bit(0, 7);
  std::uniform_int_distribution<int> pick_flips(1, 4);
  for (int round = 0; round < 60; ++round) {
    std::vector<std::uint8_t> fuzzed = good;
    for (int f = 0; f < pick_flips(rng); ++f) {
      std::size_t off = pick_byte(rng);
      // Keep the flags word intact: flipping the drain bit is a *valid*
      // control frame and would legitimately drain the server mid-fuzz.
      while (off == 6 || off == 7) off = pick_byte(rng);
      fuzzed[off] ^= static_cast<std::uint8_t>(1 << pick_bit(rng));
    }
    Client c("127.0.0.1", server.port());
    c.send_raw(fuzzed);
    // Half-close so a corrupted length field cannot park the frame forever:
    // the server must answer something typed (possibly kOk when only
    // payload bits flipped) and close, never crash or hang.
    c.shutdown_write();
    try {
      const ResponseFrame resp = c.recv();
      EXPECT_LE(static_cast<int>(resp.status), static_cast<int>(Status::kInternal));
    } catch (const std::runtime_error&) {
      // Server closed without a decodable answer — acceptable for garbage.
    }
  }
  // The loop survived: a healthy connection still round-trips.
  Client probe("127.0.0.1", server.port());
  EXPECT_EQ(probe.request(make_request(1, 3.0f)).status, Status::kOk);
  EXPECT_FALSE(server.draining());
}

TEST_F(FrontdoorTest, OverloadOverTheWireShedsWithRetryAfterHint) {
  ShardSetOptions opts = quick_shard_opts(/*shards=*/1, /*max_pending=*/4);
  opts.admit_watermark = 0.5;
  opts.retry_after = std::chrono::milliseconds{30};
  ShardSet shards(
      [](int, ModelRegistry& reg) {
        reg.publish(std::make_shared<MockServable>("a", 0, std::chrono::milliseconds{40}));
      },
      opts);
  Server server(shards);
  Client client("127.0.0.1", server.port());
  // Pipeline a burst far past the queue bound, then reap.
  constexpr int kBurst = 32;
  for (int i = 0; i < kBurst; ++i) client.send(make_request(static_cast<std::uint64_t>(i), 1.0f));
  int ok = 0, retry = 0;
  for (int i = 0; i < kBurst; ++i) {
    const ResponseFrame resp = client.recv();
    if (resp.status == Status::kOk) ++ok;
    if (resp.status == Status::kRetryAfter) {
      ++retry;
      EXPECT_EQ(resp.retry_after_ms, 30u);
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(retry, 0);
  EXPECT_EQ(ok + retry, kBurst);
}

TEST_F(FrontdoorTest, DrainControlFrameStopsNewWorkAndWaitDrainedFlushesEverything) {
  ShardSet shards(bootstrap_ab, quick_shard_opts());
  Server server(shards);
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.request(make_request(1, 1.0f)).status, Status::kOk);

  const ResponseFrame ack = client.drain_server(99);
  EXPECT_EQ(ack.status, Status::kOk);
  EXPECT_EQ(ack.request_id, 99u);
  EXPECT_TRUE(server.draining());

  // Requests after the drain are refused with the typed shutdown status.
  EXPECT_EQ(client.request(make_request(2, 1.0f)).status, Status::kShuttingDown);
  // New connections are no longer accepted once draining.
  server.wait_drained();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_F(FrontdoorTest, MixedTrafficWithMidStreamRollingPublishLosesNoRequest) {
  // The acceptance invariant: across C connections of mixed-priority traffic
  // with a rolling canary-validated publish racing mid-stream,
  // ok + typed + rejected == issued — every request is answered exactly once.
  ShardSetOptions opts = quick_shard_opts(/*shards=*/2, /*max_pending=*/32);
  ShardSet shards(bootstrap_ab, opts);
  Server server(shards);

  constexpr int kClients = 8;
  constexpr int kPerClient = 50;
  std::atomic<int> ok{0}, retry{0}, typed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client("127.0.0.1", server.port());
      for (int i = 0; i < kPerClient; ++i) {
        RequestFrame f = make_request(static_cast<std::uint64_t>(c * kPerClient + i),
                                      static_cast<float>(i % 8), i % 2 ? "a" : "b");
        f.options.priority = static_cast<Priority>(i % runtime::kNumPriorities);
        const ResponseFrame resp = client.request(f);
        if (resp.status == Status::kOk) {
          ok.fetch_add(1);
          EXPECT_EQ(resp.label, (i % 8 + (i % 2 ? 0 : 1)) % MockServable::kClasses);
        } else if (resp.status == Status::kRetryAfter) {
          retry.fetch_add(1);
        } else {
          typed.fetch_add(1);
        }
      }
    });
  }
  // Rolling publish racing the traffic: canary-validated, drain -> swap ->
  // readmit per shard while the other keeps serving.
  runtime::CanaryOptions canary;
  canary.golden_input = golden_batch(2);
  const PublishAllResult pub = shards.rolling_publish(
      [](int) { return std::make_shared<MockServable>("a", 0); }, &canary);
  for (auto& t : clients) t.join();

  EXPECT_TRUE(pub.published);
  EXPECT_EQ(ok.load() + retry.load() + typed.load(), kClients * kPerClient)
      << "every issued request answered exactly once";
  EXPECT_GT(ok.load(), 0);
  for (int s = 0; s < 2; ++s) EXPECT_EQ(shards.registry(s)->generation("a"), 2u);

  Client finisher("127.0.0.1", server.port());
  finisher.drain_server();
  server.wait_drained();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.responses_out, stats.frames_in);
}
