#pragma once
// test_util.h — shared helpers for the ASCEND test suite.

#include <cmath>
#include <functional>

#include "nn/tensor.h"

namespace ascend::testing {

/// Central-difference numerical gradient of a scalar function of a tensor,
/// compared element-by-element against `analytic`. Returns the max abs error.
inline double max_grad_error(nn::Tensor& x, const std::function<double()>& loss_fn,
                             const nn::Tensor& analytic, float eps = 1e-3f) {
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double lp = loss_fn();
    x[i] = orig - eps;
    const double lm = loss_fn();
    x[i] = orig;
    const double num = (lp - lm) / (2.0 * eps);
    worst = std::max(worst, std::fabs(num - static_cast<double>(analytic[i])));
  }
  return worst;
}

}  // namespace ascend::testing
