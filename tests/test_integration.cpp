// Cross-module integration tests: short end-to-end runs of the pipelines the
// benches execute at full scale.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/ascend.h"

using namespace ascend;
using namespace ascend::vit;

namespace {

VitConfig small_config() {
  VitConfig cfg;
  cfg.image_size = 16;
  cfg.patch_size = 4;  // 16 tokens
  cfg.dim = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.classes = 4;
  return cfg;
}

}  // namespace

TEST(Integration, TrainingImprovesAccuracy) {
  const VitConfig cfg = small_config();
  const Dataset train = make_synthetic_vision(160, cfg.classes, 21, cfg.image_size);
  const Dataset test = make_synthetic_vision(80, cfg.classes, 22, cfg.image_size);
  VisionTransformer model(cfg, 23);
  const double before = evaluate(model, test);

  TrainOptions opt;
  opt.epochs = 6;
  opt.batch_size = 32;
  opt.lr = 2e-3f;
  train_model(model, nullptr, train, opt);
  const double after = evaluate(model, test);
  EXPECT_GT(after, before + 10.0);
  EXPECT_GT(after, 40.0);  // well above the 25% chance level
}

TEST(Integration, KdFromTeacherRuns) {
  const VitConfig cfg = small_config();
  const Dataset train = make_synthetic_vision(64, cfg.classes, 31, cfg.image_size);
  VisionTransformer teacher(cfg, 32), student(cfg, 33);
  student.apply_precision(PrecisionSpec::w2a2r16());
  TrainOptions opt;
  opt.epochs = 1;
  opt.batch_size = 32;
  const double loss = train_model(student, &teacher, train, opt);
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(Integration, QuantizedScViTWithCircuitSoftmax) {
  // Train briefly in W2-A2-R16, then run inference through the bit-true SC
  // softmax circuit — the full ASCEND stack in one test.
  const VitConfig cfg = small_config();
  const Dataset train = make_synthetic_vision(160, cfg.classes, 41, cfg.image_size);
  const Dataset test = make_synthetic_vision(80, cfg.classes, 42, cfg.image_size);

  VisionTransformer model(cfg, 43);
  TrainOptions opt;
  opt.epochs = 5;
  opt.batch_size = 32;
  opt.lr = 2e-3f;
  train_model(model, nullptr, train, opt);
  model.apply_precision(PrecisionSpec::w2a2r16());
  opt.epochs = 3;
  train_model(model, nullptr, train, opt);
  const double float_acc = evaluate(model, test);

  ScInferenceConfig sc_cfg;
  sc_cfg.softmax.m = cfg.tokens();
  sc_cfg.softmax.k = 3;
  sc_cfg.softmax.bx = 4;
  sc_cfg.softmax.by = 16;
  sc_cfg.softmax.s1 = 8;
  sc_cfg.softmax.s2 = 4;
  sc_cfg.softmax.alpha_x = 1.0;
  sc_cfg.softmax.alpha_y = 1.5 / 16;
  const double sc_acc = evaluate_sc(model, test, sc_cfg);
  EXPECT_GT(sc_acc, 25.0);               // still far above chance
  EXPECT_LT(std::fabs(sc_acc - float_acc), 30.0);
}

TEST(Integration, CircuitMetricsShapeMatchesPaperClaims) {
  // Headline claims of the abstract, at the cost-model level:
  // gate-SI GELU beats the Bernstein baseline on ADP; the iterative softmax
  // beats the FSM baseline on ADP at By=8.
  const double gelu_ours = hw::cost_gate_si(16, 8, 10).adp();
  const double gelu_base = hw::cost_bernstein(4, 1024).adp();
  EXPECT_GT(gelu_base / gelu_ours, 2.0);

  sc::SoftmaxIterConfig sm;  // By=8 defaults
  const double sm_ours = hw::cost_softmax_iter(sm).adp();
  const double sm_base = hw::cost_fsm_softmax(64, 1024, 32, 8).adp();
  EXPECT_GT(sm_base / sm_ours, 1.5);
}

TEST(Integration, GateSiGeluBeatsBaselinesOnError) {
  // MAE over the Fig. 2 input range: gate-assisted SI (8b) must beat the
  // 4-term Bernstein fit and the naive-SI monotone fit.
  const sc::GateAssistedSI ours = sc::make_gelu_block(8);
  const sc::BernsteinGelu bern(4);
  const auto naive = sc::SelectiveInterconnect::synthesize_best_monotone(
      sc::gelu_exact, 16, 8, ours.alpha_in(), ours.alpha_out());
  double e_ours = 0, e_bern = 0, e_naive = 0;
  int cnt = 0;
  for (int i = 0; i <= 350; ++i) {
    const double x = -3.0 + 3.5 * i / 350.0;
    e_ours += std::fabs(ours.transfer(x) - sc::gelu_exact(x));
    e_bern += std::fabs(bern.eval_exact(x) - sc::gelu_exact(x));
    e_naive += std::fabs(naive.transfer(x) - sc::gelu_exact(x));
    ++cnt;
  }
  EXPECT_LT(e_ours / cnt, e_bern / cnt);
  EXPECT_LT(e_ours / cnt, e_naive / cnt);
}
