// Unit tests for the hardware cost model.

#include <gtest/gtest.h>

#include "hw/cost_model.h"
#include "hw/report.h"

using namespace ascend::hw;

TEST(CellLibrary, AllCellsDefined) {
  for (int i = 0; i < static_cast<int>(Cell::kCount); ++i) {
    const CellSpec& s = cell_spec(static_cast<Cell>(i));
    EXPECT_GT(s.area_um2, 0.0);
    EXPECT_GE(s.delay_ns, 0.0);
    EXPECT_NE(s.name, nullptr);
  }
}

TEST(GateInventoryTest, AreaAccumulates) {
  GateInventory inv;
  inv.add(Cell::kNand2, 10);
  inv.add(Cell::kDff, 2);
  const double expect = 10 * cell_spec(Cell::kNand2).area_um2 + 2 * cell_spec(Cell::kDff).area_um2;
  EXPECT_DOUBLE_EQ(inv.area_um2(), expect);
  EXPECT_EQ(inv.total_cells(), 12u);

  GateInventory other;
  other.add(Cell::kNand2, 5);
  inv += other;
  EXPECT_EQ(inv.count(Cell::kNand2), 15u);
}

TEST(GateInventoryTest, DelayAndAdp) {
  GateInventory inv;
  inv.add(Cell::kInv, 100);
  inv.set_serial_delay(1024, 0.08);
  EXPECT_DOUBLE_EQ(inv.delay_ns(), 81.92);
  EXPECT_DOUBLE_EQ(inv.adp(), inv.area_um2() * 81.92);
  EXPECT_NE(inv.summary().find("INV:100"), std::string::npos);
}

TEST(CostBsn, SuperlinearGrowth) {
  const double a256 = cost_bsn(256).area_um2();
  const double a512 = cost_bsn(512).area_um2();
  EXPECT_GT(a512, 2.0 * a256);
  EXPECT_GT(cost_bsn(1024).delay_ns(), cost_bsn(64).delay_ns());
}

TEST(CostGateSi, AreaLinearInOutputBsl) {
  // Table III's pattern: 2b -> 4b -> 8b doubles the area each step (fixed
  // 16-wire residual input).
  const double a2 = cost_gate_si(16, 2, 3).area_um2();
  const double a4 = cost_gate_si(16, 4, 5).area_um2();
  const double a8 = cost_gate_si(16, 8, 9).area_um2();
  EXPECT_NEAR(a4 / a2, 2.0, 0.1);
  EXPECT_NEAR(a8 / a4, 2.0, 0.1);
  // Delay is flat (fully parallel).
  EXPECT_NEAR(cost_gate_si(16, 2, 3).delay_ns(), cost_gate_si(16, 8, 9).delay_ns(), 1e-9);
  EXPECT_LT(cost_gate_si(16, 8, 9).delay_ns(), 1.0);
}

TEST(CostGateSi, LandsNearPaperAnchors) {
  // Table III "Ours": 645 / 1291 / 2582 um^2 for 2/4/8-bit data BSL. The
  // model should land within ~15% (not tuned per-row).
  EXPECT_NEAR(cost_gate_si(16, 2, 4).area_um2(), 645.1, 645.1 * 0.15);
  EXPECT_NEAR(cost_gate_si(16, 8, 10).area_um2(), 2581.7, 2581.7 * 0.15);
}

TEST(CostBernstein, SerialDelayScalesWithBsl) {
  EXPECT_DOUBLE_EQ(cost_bernstein(4, 1024).delay_ns(), 81.92);
  EXPECT_DOUBLE_EQ(cost_bernstein(4, 128).delay_ns(), 128 * 0.08);
  // Area grows with terms but not with BSL.
  EXPECT_GT(cost_bernstein(6, 128).area_um2(), cost_bernstein(4, 128).area_um2());
  EXPECT_DOUBLE_EQ(cost_bernstein(4, 128).area_um2(), cost_bernstein(4, 1024).area_um2());
}

TEST(CostFsmSoftmax, AreaFlatVsBsl) {
  const double a128 = cost_fsm_softmax(64, 128, 32, 8).area_um2();
  const double a1024 = cost_fsm_softmax(64, 1024, 32, 8).area_um2();
  EXPECT_DOUBLE_EQ(a128, a1024);
  EXPECT_GT(cost_fsm_softmax(64, 1024, 32, 8).delay_ns(),
            7.9 * cost_fsm_softmax(64, 128, 32, 8).delay_ns());
  // Order of magnitude of the paper's 1.26e4 um^2.
  EXPECT_GT(a128, 3e3);
  EXPECT_LT(a128, 6e4);
}

TEST(CostSoftmaxIter, GrowsWithBy) {
  ascend::sc::SoftmaxIterConfig cfg;  // By = 8 default
  const double a8 = cost_softmax_iter(cfg).area_um2();
  cfg.by = 16;
  cfg.alpha_y = 1.0 / 64;
  const double a16 = cost_softmax_iter(cfg).area_um2();
  cfg.by = 4;
  const double a4 = cost_softmax_iter(cfg).area_um2();
  EXPECT_GT(a16, a8);
  EXPECT_GT(a8, a4);
  // The BSN-1 over m*Bx*By/2 wires dominates, so growth is superlinear.
  EXPECT_GT(a16 / a8, 1.8);
}

TEST(CostSoftmaxIter, DelayScalesWithK) {
  ascend::sc::SoftmaxIterConfig cfg;
  cfg.k = 2;
  const double d2 = cost_softmax_iter(cfg).delay_ns();
  cfg.k = 4;
  const double d4 = cost_softmax_iter(cfg).delay_ns();
  // Delay is k iterations over the same hardware; the per-iteration path
  // shrinks slightly with k (z/k operands re-grid onto shorter bundles), so
  // the ratio is near but not exactly 2.
  EXPECT_NEAR(d4 / d2, 2.0, 0.3);
  // Parallel block: tens of ns, not the FSM baseline's hundreds+.
  EXPECT_LT(d4, 60.0);
}

TEST(CostRescalerAndMult, Sane) {
  EXPECT_GT(cost_rescaler(64, 8).area_um2(), 0.0);
  EXPECT_GT(cost_therm_mult(4, 8).area_um2(), cost_therm_mult(2, 2).area_um2());
}

TEST(Report, TableFormatting) {
  std::vector<BlockMetrics> rows;
  rows.push_back({"Ours", "8b BSL", 2581.7, 0.55, 0.0155});
  const std::string table = format_metrics_table("GELU blocks", rows);
  EXPECT_NE(table.find("GELU blocks"), std::string::npos);
  EXPECT_NE(table.find("Ours"), std::string::npos);
  EXPECT_NE(table.find("ADP"), std::string::npos);
}

TEST(Report, SciFormatting) {
  EXPECT_EQ(sci(0.0), "0");
  EXPECT_NE(sci(12600.0).find("e"), std::string::npos);
  EXPECT_EQ(sci(0.55).find("e"), std::string::npos);
}
