// Unit tests for the ViT model assembly.

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/optim.h"
#include "vit/dataset.h"
#include "vit/model.h"
#include "test_util.h"

using namespace ascend;
using namespace ascend::vit;

namespace {

VitConfig tiny_config() {
  VitConfig cfg;
  cfg.image_size = 16;
  cfg.patch_size = 8;  // 4 tokens
  cfg.dim = 8;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.mlp_ratio = 2;
  cfg.classes = 3;
  return cfg;
}

nn::Tensor random_images(int n, const VitConfig& cfg, int seed) {
  nn::Rng rng(static_cast<std::uint64_t>(seed));
  nn::Tensor t({n, cfg.channels * cfg.image_size * cfg.image_size});
  rng.fill_normal(t, 0, 1);
  return t;
}

}  // namespace

TEST(VitModel, ForwardShapes) {
  const VitConfig cfg = tiny_config();
  VisionTransformer model(cfg, 1);
  const nn::Tensor logits = model.forward(random_images(5, cfg, 2), false);
  EXPECT_EQ(logits.dim(0), 5);
  EXPECT_EQ(logits.dim(1), 3);
  EXPECT_EQ(model.block_outputs().size(), 2u);
  EXPECT_EQ(model.block_outputs()[0].dim(0), 5 * cfg.tokens());
  EXPECT_EQ(model.block_outputs()[0].dim(1), cfg.dim);
}

TEST(VitModel, ConfigAccessors) {
  const VitConfig cfg = tiny_config();
  EXPECT_EQ(cfg.tokens(), 4);
  EXPECT_EQ(cfg.patch_dim(), 3 * 64);
  EXPECT_EQ(VitConfig::paper_topology().tokens(), 64);
  EXPECT_EQ(VitConfig::paper_topology().layers, 7);
}

TEST(VitModel, BackwardGradCheckOneWeight) {
  VitConfig cfg = tiny_config();
  cfg.norm = NormKind::kLayerNorm;  // deterministic wrt batch composition
  VisionTransformer model(cfg, 3);
  const nn::Tensor images = random_images(2, cfg, 4);
  const std::vector<int> labels = {0, 2};

  auto loss = [&]() {
    return nn::cross_entropy(model.forward(images, true), labels).value;
  };
  for (nn::Param* p : model.params()) p->zero_grad();
  const nn::Tensor logits = model.forward(images, true);
  const nn::LossResult ce = nn::cross_entropy(logits, labels);
  model.backward(ce.grad);

  // Check the head weight and one block's qkv weight numerically.
  nn::Param& head_w = model.blocks()[0].msa().qkv().weight();
  EXPECT_LT(ascend::testing::max_grad_error(head_w.value, loss, head_w.grad, 2e-3f), 5e-2);
}

TEST(VitModel, PrecisionSpecWiring) {
  const VitConfig cfg = tiny_config();
  VisionTransformer model(cfg, 5);
  model.apply_precision(PrecisionSpec::w2a2r16());
  EXPECT_EQ(model.precision().name(), "W2-A2-R16");
  EXPECT_TRUE(model.blocks()[0].msa().qkv().weight_quant().enabled());
  EXPECT_TRUE(model.blocks()[0].mlp().fc1().input_quant().enabled());
  EXPECT_TRUE(model.blocks()[0].residual_quant1().enabled());
  // Quantized forward still works and produces finite logits.
  const nn::Tensor logits = model.forward(random_images(3, cfg, 6), true);
  for (std::size_t i = 0; i < logits.size(); ++i) EXPECT_TRUE(std::isfinite(logits[i]));
  // LSQ steps appear in the parameter list after the forward.
  const std::size_t with_quant = model.params().size();
  VisionTransformer fp(cfg, 5);
  (void)fp.forward(random_images(3, cfg, 6), true);
  EXPECT_GT(with_quant, fp.params().size());
}

TEST(VitModel, CopyWeightsReproducesOutputs) {
  const VitConfig cfg = tiny_config();
  VisionTransformer a(cfg, 7), b(cfg, 999);
  const nn::Tensor images = random_images(2, cfg, 8);
  b.copy_weights_from(a);
  const nn::Tensor ya = a.forward(images, false);
  const nn::Tensor yb = b.forward(images, false);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(VitModel, StructuralParamsExcludeQuantSteps) {
  const VitConfig cfg = tiny_config();
  VisionTransformer model(cfg, 9);
  const std::size_t structural = model.structural_params().size();
  model.apply_precision(PrecisionSpec::w2a2r16());
  (void)model.forward(random_images(2, cfg, 10), true);
  EXPECT_EQ(model.structural_params().size(), structural);
  EXPECT_GT(model.params().size(), structural);
}

TEST(VitModel, ApproxSoftmaxSwitch) {
  const VitConfig cfg = tiny_config();
  VisionTransformer model(cfg, 11);
  const nn::Tensor images = random_images(2, cfg, 12);
  const nn::Tensor exact = model.forward(images, false);
  model.set_softmax_kind(nn::SoftmaxKind::kApprox);
  const nn::Tensor approx = model.forward(images, false);
  double diff = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) diff += std::fabs(exact[i] - approx[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(VitModel, OverfitsTinySubset) {
  // Sanity: a few steps of AdamW on 8 fixed samples must drive the loss down.
  VitConfig cfg = tiny_config();
  cfg.norm = NormKind::kBatchNorm;
  VisionTransformer model(cfg, 13);
  const Dataset data = make_synthetic_vision(8, cfg.classes, 14, cfg.image_size);
  const Batch batch = take_batch(data, {0, 1, 2, 3, 4, 5, 6, 7});

  (void)model.forward(batch.images, true);
  nn::AdamW opt(model.params(), 3e-3f);
  double first = 0, last = 0;
  for (int step = 0; step < 60; ++step) {
    opt.zero_grad();
    const nn::Tensor logits = model.forward(batch.images, true);
    const nn::LossResult ce = nn::cross_entropy(logits, batch.labels);
    model.backward(ce.grad);
    opt.step();
    if (step == 0) first = ce.value;
    last = ce.value;
  }
  EXPECT_LT(last, first * 0.5);
}
