// Tests for the versioned mmap-able checkpoint format (serialize/):
//   * bit-exact save -> load round-trips for every serving variant
//     (fp32 / w2a2-packed / sc-lut / sc-emulated), eager and mmap paths;
//   * the corruption battery — truncation, bad magic, future version,
//     flipped payload bit, record pointing past EOF — each failing with its
//     own typed CheckpointError kind on both load paths;
//   * the committed golden checkpoint (format-compat pin; regenerate with
//     scripts/make_golden_checkpoint.cpp only on an intentional bump);
//   * registry cold-start: ModelRegistry::register_from_file for all four
//     variant kinds, serving zero-copy off the mapping;
//   * HeapScope composition: nothing a load produces lives in a resettable
//     activation arena.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "nn/rng.h"
#include "runtime/arena.h"
#include "runtime/engine.h"
#include "runtime/registry.h"
#include "serialize/checkpoint.h"
#include "serialize/model_io.h"
#include "vit/model.h"
#include "vit/sc_inference.h"
#include "vit/servable.h"

using namespace ascend;
using serialize::CheckpointError;
using Kind = CheckpointError::Kind;

namespace {

vit::VitConfig tiny_topology() {
  vit::VitConfig cfg;
  cfg.image_size = 16;
  cfg.patch_size = 8;  // 4 tokens
  cfg.dim = 16;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.mlp_ratio = 2;
  cfg.classes = 4;
  return cfg;
}

nn::Tensor random_images(const vit::VitConfig& cfg, int batch, std::uint64_t seed) {
  nn::Rng rng(seed);
  nn::Tensor t({batch, cfg.channels * cfg.image_size * cfg.image_size});
  rng.fill_uniform(t, 0.0f, 1.0f);
  return t;
}

/// W2-A2-R16 model with every LSQ step calibrated by one eval-mode forward.
vit::VisionTransformer calibrated_model(std::uint64_t seed, const nn::Tensor& calib) {
  vit::VisionTransformer model(tiny_topology(), seed);
  model.apply_precision(vit::PrecisionSpec::w2a2r16());
  (void)model.forward(calib, /*training=*/false);
  return model;
}

nn::Tensor const_infer(const vit::VisionTransformer& m, const nn::Tensor& x) { return m.infer(x); }

void expect_same_logits(const nn::Tensor& got, const nn::Tensor& ref) {
  ASSERT_EQ(got.shape(), ref.shape());
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(got[i], ref[i]) << "logit " << i;
}

std::string tmp_path(const std::string& name) { return testing::TempDir() + name; }

// --- raw file munging for the corruption battery ---------------------------

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  std::vector<unsigned char> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void spew(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

template <typename T>
T rd(const std::vector<unsigned char>& b, std::size_t off) {
  T v;
  std::memcpy(&v, b.data() + off, sizeof(T));
  return v;
}

template <typename T>
void wr(std::vector<unsigned char>& b, std::size_t off, T v) {
  std::memcpy(b.data() + off, &v, sizeof(T));
}

// FileHeader field offsets (pinned by the format, see checkpoint.cpp).
constexpr std::size_t kOffVersion = 12;
constexpr std::size_t kOffTableOffset = 40;
constexpr std::size_t kOffRecordCount = 56;
constexpr std::size_t kOffTableCrc = 64;
constexpr std::size_t kOffHeaderCrc = 124;
constexpr std::size_t kRecordBytes = 128;
constexpr std::size_t kRecOffOffset = 104;  ///< Record.offset within a table row

/// Load `path` through either path and return the CheckpointError kind it
/// fails with (both paths share the validator, and the tests prove it).
Kind load_failure_kind(const std::string& path, bool use_mmap) {
  try {
    if (use_mmap)
      (void)serialize::load_model_mmap(path);
    else
      (void)serialize::load_model(path);
  } catch (const CheckpointError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "load of " << path << " (mmap=" << use_mmap << ") did not throw";
  return Kind::kIo;
}

std::string saved_w2a2_checkpoint(const std::string& name) {
  const nn::Tensor calib = random_images(tiny_topology(), 8, 11);
  vit::VisionTransformer model = calibrated_model(21, calib);
  const std::string path = tmp_path(name);
  serialize::save_model(model, path);
  return path;
}

// --- golden fixture helpers ------------------------------------------------

std::string golden_dir() { return std::string(ASCEND_SOURCE_DIR) + "/tests/data"; }

nn::Tensor read_matrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::uint32_t rows = 0, cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  nn::Tensor t({static_cast<int>(rows), static_cast<int>(cols)});
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  EXPECT_TRUE(in.good()) << path;
  return t;
}

// ---------------------------------------------------------------------------
// Round-trips

TEST(SerializeRoundTrip, Fp32EagerAndMmapBitExact) {
  vit::VisionTransformer model(tiny_topology(), 31);  // precision fp by default
  const nn::Tensor input = random_images(model.config(), 4, 32);
  const nn::Tensor ref = const_infer(model, input);

  const std::string path = tmp_path("fp32.ckpt");
  model.save(path);

  const auto eager = vit::VisionTransformer::load(path);
  expect_same_logits(const_infer(*eager, input), ref);

  serialize::MappedModel mapped = serialize::load_model_mmap(path);
  expect_same_logits(const_infer(*mapped.model, input), ref);
}

TEST(SerializeRoundTrip, W2A2PackedEagerAndMmapBitExact) {
  const nn::Tensor calib = random_images(tiny_topology(), 8, 41);
  vit::VisionTransformer model = calibrated_model(42, calib);
  const nn::Tensor input = random_images(model.config(), 4, 43);
  const nn::Tensor ref = const_infer(model, input);

  const std::string path = tmp_path("w2a2.ckpt");
  model.save(path);

  const auto eager = vit::VisionTransformer::load(path);
  EXPECT_EQ(eager->precision().name(), model.precision().name());
  expect_same_logits(const_infer(*eager, input), ref);
  // The checkpoint carried the frozen packed-ternary planes: the loaded
  // model serves the multiply-free path without cold-start requantization.
  EXPECT_TRUE(eager->blocks().front().msa().qkv().weight_quant().packed_frozen());

  serialize::MappedModel mapped = serialize::load_model_mmap(path);
  expect_same_logits(const_infer(*mapped.model, input), ref);
}

TEST(SerializeRoundTrip, ScVariantsBitExact) {
  const nn::Tensor calib = random_images(tiny_topology(), 8, 51);
  vit::VisionTransformer model = calibrated_model(52, calib);
  const nn::Tensor input = random_images(model.config(), 4, 53);

  const std::string path = tmp_path("sc.ckpt");
  model.save(path);

  for (const bool use_tf_cache : {true, false}) {
    vit::ScInferenceConfig cfg;  // SC softmax on by default
    vit::ScServableOptions opts;
    opts.use_tf_cache = use_tf_cache;
    opts.threads = 2;
    const auto ref_servable = vit::make_sc_servable(model, cfg, opts, "ref");
    const nn::Tensor ref = ref_servable->infer(input);

    serialize::MappedModel mapped = serialize::load_model_mmap(path);
    const auto got_servable = vit::make_sc_servable_over(std::move(mapped.model), cfg, opts,
                                                         "got", mapped.mapping);
    expect_same_logits(got_servable->infer(input), ref);
  }
}

TEST(SerializeRoundTrip, WriterIsDeterministicAndResaveIsByteIdentical) {
  const nn::Tensor calib = random_images(tiny_topology(), 8, 61);
  vit::VisionTransformer model = calibrated_model(62, calib);
  const std::string a = tmp_path("det_a.ckpt");
  const std::string b = tmp_path("det_b.ckpt");
  model.save(a);
  model.save(b);
  EXPECT_EQ(slurp(a), slurp(b)) << "same model, different bytes";

  // Full-state round-trip: everything the format carries survives a reload,
  // so saving the loaded model reproduces the file bit for bit.
  const auto loaded = vit::VisionTransformer::load(a);
  const std::string c = tmp_path("det_c.ckpt");
  loaded->save(c);
  EXPECT_EQ(slurp(a), slurp(c)) << "load -> save is lossy";
}

TEST(SerializeRoundTrip, MmapViewsAreBorrowedAndPointIntoMapping) {
  const std::string path = saved_w2a2_checkpoint("views.ckpt");
  serialize::MappedModel mapped = serialize::load_model_mmap(path);
  nn::Tensor& w = mapped.model->patch_embed().weight().value;
  EXPECT_TRUE(w.borrowed());
  EXPECT_FALSE(w.arena_backed());
  EXPECT_TRUE(mapped.mapping->owns_address(w.data()));
  EXPECT_TRUE(mapped.mapping->owns_address(mapped.model->pos_embed().value.data()));
  // Mutable training state must NOT alias the read-only mapping.
  EXPECT_FALSE(mapped.mapping->owns_address(mapped.model->patch_embed().weight().grad.data()));
}

TEST(SerializeRoundTrip, LoadInsideArenaScopeSurvivesReset) {
  const std::string path = saved_w2a2_checkpoint("arena.ckpt");
  const nn::Tensor input = random_images(tiny_topology(), 2, 71);

  runtime::Arena arena(1 << 20);
  std::unique_ptr<vit::VisionTransformer> model;
  {
    runtime::ArenaScope scope(arena);  // a hostile caller loads mid-forward
    model = vit::VisionTransformer::load(path);
    EXPECT_FALSE(model->patch_embed().weight().value.arena_backed());
  }
  arena.reset();  // would wipe any slab-backed weight
  const nn::Tensor after = const_infer(*model, input);
  const auto fresh = vit::VisionTransformer::load(path);
  expect_same_logits(after, const_infer(*fresh, input));
}

// ---------------------------------------------------------------------------
// Corruption battery — each failure mode, both load paths, typed errors.

class SerializeCorruption : public testing::TestWithParam<bool> {
 protected:
  static void SetUpTestSuite() {
    static const std::string path = saved_w2a2_checkpoint("corrupt_base.ckpt");
    base_path_ = &path;
  }
  static const std::string* base_path_;
  bool mmap() const { return GetParam(); }
};

const std::string* SerializeCorruption::base_path_ = nullptr;

TEST_P(SerializeCorruption, TruncatedFile) {
  auto bytes = slurp(*base_path_);
  bytes.resize(bytes.size() / 2);
  const std::string path = tmp_path("truncated.ckpt");
  spew(path, bytes);
  EXPECT_EQ(load_failure_kind(path, mmap()), Kind::kTruncated);
}

TEST_P(SerializeCorruption, BadMagic) {
  auto bytes = slurp(*base_path_);
  bytes[0] ^= 0xFFu;
  const std::string path = tmp_path("badmagic.ckpt");
  spew(path, bytes);
  EXPECT_EQ(load_failure_kind(path, mmap()), Kind::kBadMagic);
}

TEST_P(SerializeCorruption, UnsupportedFutureVersion) {
  auto bytes = slurp(*base_path_);
  wr<std::uint32_t>(bytes, kOffVersion, serialize::kFormatVersion + 7);
  const std::string path = tmp_path("future.ckpt");
  spew(path, bytes);
  // Version is checked before the header CRC precisely so a newer writer's
  // file (whose header we cannot fully validate) reports the right kind.
  EXPECT_EQ(load_failure_kind(path, mmap()), Kind::kUnsupportedVersion);
}

TEST_P(SerializeCorruption, FlippedBitInWeightBlob) {
  auto bytes = slurp(*base_path_);
  bytes[bytes.size() - 3] ^= 0x10u;  // one bit, deep in the payload region
  const std::string path = tmp_path("bitflip.ckpt");
  spew(path, bytes);
  EXPECT_EQ(load_failure_kind(path, mmap()), Kind::kCorrupt);
}

TEST_P(SerializeCorruption, RecordTablePointsPastEof) {
  auto bytes = slurp(*base_path_);
  const auto table_offset = rd<std::uint64_t>(bytes, kOffTableOffset);
  const auto record_count = rd<std::uint32_t>(bytes, kOffRecordCount);
  ASSERT_GT(record_count, 0u);
  // Send record 0's blob far past EOF (keeping the 64-byte alignment the
  // validator checks first), then repair the table and header CRCs so the
  // *bounds* check is what fires — this models a bad writer, not bit rot.
  const std::uint64_t past_eof = (bytes.size() + (1u << 20)) / 64 * 64;
  wr<std::uint64_t>(bytes, table_offset + kRecOffOffset, past_eof);
  wr<std::uint32_t>(bytes, kOffTableCrc,
                    serialize::crc32(bytes.data() + table_offset,
                                     std::size_t{record_count} * kRecordBytes));
  wr<std::uint32_t>(bytes, kOffHeaderCrc, serialize::crc32(bytes.data(), kOffHeaderCrc));
  const std::string path = tmp_path("pasteof.ckpt");
  spew(path, bytes);
  EXPECT_EQ(load_failure_kind(path, mmap()), Kind::kBadRecord);
}

TEST_P(SerializeCorruption, CorruptConfigBlock) {
  auto bytes = slurp(*base_path_);
  bytes[128 + 4] ^= 0x01u;  // inside the config text (starts right after the header)
  const std::string path = tmp_path("badconfig.ckpt");
  spew(path, bytes);
  EXPECT_EQ(load_failure_kind(path, mmap()), Kind::kCorrupt);
}

INSTANTIATE_TEST_SUITE_P(EagerAndMmap, SerializeCorruption, testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "Mmap" : "Eager";
                         });

TEST(SerializeErrors, MissingFileIsIo) {
  EXPECT_EQ(load_failure_kind(tmp_path("does_not_exist.ckpt"), /*mmap=*/false), Kind::kIo);
  EXPECT_EQ(load_failure_kind(tmp_path("does_not_exist.ckpt"), /*mmap=*/true), Kind::kIo);
}

TEST(SerializeErrors, NotAViTCheckpointIsSchema) {
  // A perfectly valid container whose records are not a ViT: the container
  // layer accepts it, the model layer rejects it with kSchema.
  serialize::CheckpointWriter w;
  w.set_config("format=ascend-vit\n");  // topology keys missing
  const float z[4] = {0, 0, 0, 0};
  w.add_f32("stray", {4}, z);
  const std::string path = tmp_path("notavit.ckpt");
  w.write(path);
  serialize::CheckpointReader reader(path);  // container-valid
  EXPECT_EQ(reader.records().size(), 1u);
  EXPECT_EQ(load_failure_kind(path, /*mmap=*/false), Kind::kSchema);
}

// ---------------------------------------------------------------------------
// Randomized corruption sweep: K random bit flips anywhere in the file —
// header, record table, or payload — must always end in a typed
// CheckpointError or a successful *bit-exact* load (only the inter-region
// alignment padding is outside CRC coverage), never a crash, a hang, or a
// silently wrong model. Seeded, so a failing flip pattern replays exactly.

TEST(SerializeCorruptionSweep, RandomByteFlipsFailTypedOrLoadBitExact) {
  const std::string base = saved_w2a2_checkpoint("sweep_base.ckpt");
  const std::vector<unsigned char> pristine = slurp(base);
  ASSERT_FALSE(pristine.empty());
  const nn::Tensor input = random_images(tiny_topology(), 2, 97);
  const auto ref_model = vit::VisionTransformer::load(base);
  const nn::Tensor ref = const_infer(*ref_model, input);

  std::mt19937 rng(20260807u);
  std::uniform_int_distribution<std::size_t> pos(0, pristine.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  std::uniform_int_distribution<int> flip_count(1, 4);

  const std::string path = tmp_path("sweep_mut.ckpt");
  int typed = 0, clean = 0;
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<unsigned char> bytes = pristine;
    const int k = flip_count(rng);
    for (int f = 0; f < k; ++f)
      bytes[pos(rng)] ^= static_cast<unsigned char>(1u << bit(rng));
    spew(path, bytes);
    const bool use_mmap = (iter % 2) == 1;  // both load paths, alternating
    try {
      std::unique_ptr<vit::VisionTransformer> model;
      serialize::MappedModel mapped;
      if (use_mmap) {
        mapped = serialize::load_model_mmap(path);
        model = std::move(mapped.model);
      } else {
        model = serialize::load_model(path);
      }
      // The load survived: only uncovered padding can have been hit, so the
      // model must serve bit-exact with the pristine checkpoint.
      expect_same_logits(const_infer(*model, input), ref);
      ++clean;
    } catch (const CheckpointError&) {
      ++typed;  // the only acceptable failure mode; anything else escapes
    }
  }
  EXPECT_EQ(typed + clean, 200) << "iteration neither loaded nor failed typed";
  EXPECT_GT(typed, 0) << "200 seeded flips never hit a CRC-covered byte";
}

// ---------------------------------------------------------------------------
// Golden checkpoint: the committed version-1 bytes must keep loading.

TEST(SerializeGolden, CommittedCheckpointStillLoads) {
  const std::string ckpt = golden_dir() + "/golden_vit.ckpt";
  const nn::Tensor input = read_matrix(golden_dir() + "/golden_input.bin");
  const nn::Tensor want = read_matrix(golden_dir() + "/golden_logits.bin");

  serialize::CheckpointReader reader(ckpt);
  EXPECT_EQ(reader.version(), 1u) << "bump scripts/make_golden_checkpoint.cpp deliberately";

  for (const bool use_mmap : {false, true}) {
    std::unique_ptr<vit::VisionTransformer> model;
    serialize::MappedModel mapped;
    if (use_mmap) {
      mapped = serialize::load_model_mmap(ckpt);
      model = std::move(mapped.model);
    } else {
      model = serialize::load_model(ckpt);
    }
    const nn::Tensor got = const_infer(*model, input);
    ASSERT_EQ(got.shape(), want.shape());
    // Tolerant compare: the fixture was produced by one kernel dispatch
    // flavour; other SIMD paths may differ in last-ulp float accumulation.
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_NEAR(got[i], want[i], 1e-3f) << "logit " << i << " mmap=" << use_mmap;
  }
}

// ---------------------------------------------------------------------------
// Registry cold-start: serve all four variants straight from one file.

TEST(SerializeColdStart, RegisterFromFileServesAllFourVariants) {
  const nn::Tensor calib = random_images(tiny_topology(), 8, 81);
  vit::VisionTransformer model = calibrated_model(82, calib);
  const nn::Tensor input = random_images(model.config(), 4, 83);
  const nn::Tensor ref = const_infer(model, input);
  const std::string path = tmp_path("coldstart.ckpt");
  model.save(path);

  runtime::ModelRegistry registry;
  EXPECT_EQ(registry.register_from_file("fp32", path, runtime::VariantKind::kFp32), 1u);
  EXPECT_EQ(registry.register_from_file("w2a2", path, runtime::VariantKind::kPackedTernary), 1u);
  vit::ScServableOptions sc_opts;
  sc_opts.threads = 2;
  runtime::RegisterFromFileOptions opts;
  opts.sc_options = &sc_opts;
  EXPECT_EQ(registry.register_from_file("sc", path, runtime::VariantKind::kScLut, opts), 1u);
  EXPECT_EQ(registry.register_from_file("sc-emu", path, runtime::VariantKind::kScEmulated, opts),
            1u);
  EXPECT_EQ(registry.size(), 4u);

  // The packed variant is the saved model: bit-exact.
  expect_same_logits(registry.get("w2a2")->infer(input), ref);

  // fp32 strips fake quantization: close, but not the same function.
  const nn::Tensor fp = registry.get("fp32")->infer(input);
  ASSERT_EQ(fp.shape(), ref.shape());
  bool any_diff = false;
  for (std::size_t i = 0; i < ref.size(); ++i) any_diff |= fp[i] != ref[i];
  EXPECT_TRUE(any_diff) << "fp32 variant did not strip quantization";

  // The SC variants must match servables built the pre-checkpoint way from
  // the in-memory model (same hooks, same LUT cache).
  vit::ScInferenceConfig sc_cfg;
  expect_same_logits(registry.get("sc")->infer(input),
                     vit::make_sc_servable(model, sc_cfg, sc_opts, "ref")->infer(input));

  // Cold-started variants hot-swap like any publish: generation advances.
  EXPECT_EQ(registry.register_from_file("w2a2", path, runtime::VariantKind::kPackedTernary), 2u);
}

TEST(SerializeColdStart, PackedTernaryKindRejectsFpCheckpoint) {
  vit::VisionTransformer model(tiny_topology(), 91);  // fp precision
  const std::string path = tmp_path("fp_for_packed.ckpt");
  model.save(path);
  runtime::ModelRegistry registry;
  try {
    registry.register_from_file("w2a2", path, runtime::VariantKind::kPackedTernary);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), Kind::kSchema);
  }
}

TEST(SerializeColdStart, EagerLoadOptionAlsoServes) {
  const std::string path = saved_w2a2_checkpoint("eager_opt.ckpt");
  const nn::Tensor input = random_images(tiny_topology(), 2, 93);
  runtime::ModelRegistry registry;
  runtime::RegisterFromFileOptions opts;
  opts.use_mmap = false;
  registry.register_from_file("w2a2", path, runtime::VariantKind::kPackedTernary, opts);
  serialize::MappedModel mapped = serialize::load_model_mmap(path);
  expect_same_logits(registry.get("w2a2")->infer(input), const_infer(*mapped.model, input));
}

}  // namespace
