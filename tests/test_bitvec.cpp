// Unit tests for the word-packed bit vector.

#include <gtest/gtest.h>

#include <random>

#include "sc/bitvec.h"

using ascend::sc::BitVec;

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.count(), 0u);
}

TEST(BitVec, ConstructFilled) {
  BitVec zeros(70, false);
  EXPECT_EQ(zeros.size(), 70u);
  EXPECT_EQ(zeros.count(), 0u);
  BitVec ones(70, true);
  EXPECT_EQ(ones.count(), 70u);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_TRUE(ones.get(i));
}

TEST(BitVec, SetGetRoundtrip) {
  BitVec v(130);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.count(), 4u);
  v.set(63, false);
  EXPECT_EQ(v.count(), 3u);
}

TEST(BitVec, OutOfRangeThrows) {
  BitVec v(8);
  EXPECT_THROW(v.get(8), std::out_of_range);
  EXPECT_THROW(v.set(9, true), std::out_of_range);
}

TEST(BitVec, FromStringToString) {
  const std::string s = "1101001";
  BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.count(), 4u);
  EXPECT_THROW(BitVec::from_string("10x"), std::invalid_argument);
}

TEST(BitVec, PushBackAndAppend) {
  BitVec v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.count(), 34u);
  BitVec w = BitVec::from_string("11");
  w.append(v);
  EXPECT_EQ(w.size(), 102u);
  EXPECT_EQ(w.count(), 36u);
  EXPECT_TRUE(w.get(0));
  EXPECT_TRUE(w.get(2));  // first bit of v (i=0 -> true)
}

TEST(BitVec, Slice) {
  BitVec v = BitVec::from_string("11010011");
  EXPECT_EQ(v.slice(2, 4).to_string(), "0100");
  EXPECT_EQ(v.slice(0, 8).to_string(), "11010011");
  EXPECT_THROW(v.slice(5, 4), std::out_of_range);
}

TEST(BitVec, Subsample) {
  BitVec v = BitVec::from_string("10101010");
  EXPECT_EQ(v.subsample(0, 2).to_string(), "1111");
  EXPECT_EQ(v.subsample(1, 2).to_string(), "0000");
  EXPECT_EQ(v.subsample(3, 4).to_string(), "00");
  EXPECT_THROW(v.subsample(0, 0), std::invalid_argument);
}

TEST(BitVec, Reversed) {
  BitVec v = BitVec::from_string("1100");
  EXPECT_EQ(v.reversed().to_string(), "0011");
}

TEST(BitVec, LogicOps) {
  BitVec a = BitVec::from_string("1100");
  BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((~a).to_string(), "0011");
  BitVec c(5);
  EXPECT_THROW(a & c, std::invalid_argument);
}

TEST(BitVec, NotMasksTailCorrectly) {
  // ~ must not set ghost bits beyond size (would corrupt count()).
  BitVec v(67, false);
  BitVec n = ~v;
  EXPECT_EQ(n.count(), 67u);
  BitVec nn = ~n;
  EXPECT_EQ(nn.count(), 0u);
}

TEST(BitVec, SortedDescendingDetection) {
  EXPECT_TRUE(BitVec::from_string("111000").is_sorted_descending());
  EXPECT_TRUE(BitVec::from_string("000000").is_sorted_descending());
  EXPECT_TRUE(BitVec::from_string("111111").is_sorted_descending());
  EXPECT_FALSE(BitVec::from_string("110100").is_sorted_descending());
  EXPECT_TRUE(BitVec().is_sorted_descending());
}

class BitVecRandomOps : public ::testing::TestWithParam<int> {};

TEST_P(BitVecRandomOps, CountMatchesNaive) {
  std::mt19937 rng(GetParam());
  const std::size_t n = 1 + rng() % 300;
  BitVec v(n);
  std::size_t expect = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool b = rng() & 1;
    v.set(i, b);
    expect += b;
  }
  EXPECT_EQ(v.count(), expect);
  // De Morgan on random vectors.
  BitVec w(n);
  for (std::size_t i = 0; i < n; ++i) w.set(i, rng() & 1);
  EXPECT_EQ((~(v & w)).to_string(), ((~v) | (~w)).to_string());
  EXPECT_EQ((~(v | w)).to_string(), ((~v) & (~w)).to_string());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVecRandomOps, ::testing::Range(1, 17));
