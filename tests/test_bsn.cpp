// Unit tests for the bitonic sorting network.

#include <gtest/gtest.h>

#include <random>

#include "sc/bsn.h"

using namespace ascend::sc;

TEST(Bsn, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Bsn, SortsSmallVectors) {
  EXPECT_EQ(bsn_sort(BitVec::from_string("0101")).to_string(), "1100");
  EXPECT_EQ(bsn_sort(BitVec::from_string("0011")).to_string(), "1100");
  EXPECT_EQ(bsn_sort(BitVec::from_string("1111")).to_string(), "1111");
  EXPECT_EQ(bsn_sort(BitVec::from_string("0000")).to_string(), "0000");
}

TEST(Bsn, HandlesTrivialSizes) {
  EXPECT_EQ(bsn_sort(BitVec()).size(), 0u);
  EXPECT_EQ(bsn_sort(BitVec::from_string("1")).to_string(), "1");
  EXPECT_EQ(bsn_sort(BitVec::from_string("0")).to_string(), "0");
}

TEST(Bsn, ExhaustiveWidth8) {
  // Every 8-bit pattern must sort to the canonical code with the same count.
  for (int pattern = 0; pattern < 256; ++pattern) {
    BitVec v(8);
    for (int b = 0; b < 8; ++b) v.set(static_cast<std::size_t>(b), (pattern >> b) & 1);
    const std::size_t ones = v.count();
    const BitVec sorted = bsn_sort(v);
    EXPECT_EQ(sorted.count(), ones);
    EXPECT_TRUE(sorted.is_sorted_descending()) << sorted.to_string();
  }
}

class BsnRandom : public ::testing::TestWithParam<int> {};

TEST_P(BsnRandom, NonPowerOfTwoSizes) {
  std::mt19937 rng(GetParam());
  const std::size_t n = 2 + rng() % 600;  // exercises the zero-padding path
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng() & 1);
  const std::size_t ones = v.count();
  const BitVec sorted = bsn_sort(v);
  EXPECT_EQ(sorted.size(), n);
  EXPECT_EQ(sorted.count(), ones);
  EXPECT_TRUE(sorted.is_sorted_descending());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BsnRandom, ::testing::Range(100, 120));

TEST(Bsn, CompareExchangeCountFormula) {
  // Classic bitonic CE counts: n/2 * s(s+1)/2 with s = log2 n.
  EXPECT_EQ(bsn_compare_exchange_count(2), 1u);
  EXPECT_EQ(bsn_compare_exchange_count(4), 6u);
  EXPECT_EQ(bsn_compare_exchange_count(8), 24u);
  EXPECT_EQ(bsn_compare_exchange_count(16), 80u);
  EXPECT_EQ(bsn_compare_exchange_count(1024), 28160u);
  EXPECT_EQ(bsn_compare_exchange_count(0), 0u);
  EXPECT_EQ(bsn_compare_exchange_count(1), 0u);
  // Non-power-of-two rounds up.
  EXPECT_EQ(bsn_compare_exchange_count(5), bsn_compare_exchange_count(8));
}

TEST(Bsn, DepthFormula) {
  EXPECT_EQ(bsn_depth(2), 1u);
  EXPECT_EQ(bsn_depth(4), 3u);
  EXPECT_EQ(bsn_depth(8), 6u);
  EXPECT_EQ(bsn_depth(1024), 55u);
}

TEST(BsnMerge, CheaperThanFullSort) {
  // Merging sorted bundles must cost strictly less than sorting from
  // scratch, and reduce to the full sorter when leaves are single bits.
  EXPECT_LT(bsn_merge_compare_exchange_count(512, 8), bsn_compare_exchange_count(512));
  EXPECT_EQ(bsn_merge_compare_exchange_count(512, 1), bsn_compare_exchange_count(512));
  EXPECT_EQ(bsn_merge_compare_exchange_count(64, 64), 0u);  // already sorted
  // Known value: n=512 (T=9), leaf=8 (L=3): 256*(45-6) = 9984.
  EXPECT_EQ(bsn_merge_compare_exchange_count(512, 8), 9984u);
  EXPECT_EQ(bsn_merge_depth(512, 8), 39u);
}

TEST(Bsn, CostGrowsSuperlinearly) {
  // Doubling the width more than doubles the CE count (N log^2 N scaling) —
  // the effect that makes By the dominant area knob in the softmax block.
  for (std::size_t n = 8; n <= 2048; n *= 2)
    EXPECT_GT(bsn_compare_exchange_count(2 * n), 2 * bsn_compare_exchange_count(n));
}
