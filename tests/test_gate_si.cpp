// Unit tests for gate-assisted SI — including a bit-for-bit check of the
// paper's Fig. 4 ternary GELU truth table.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sc/gate_si.h"

using namespace ascend::sc;

TEST(GateSi, GeluExactReference) {
  EXPECT_NEAR(gelu_exact(0.0), 0.0, 1e-12);
  EXPECT_NEAR(gelu_exact(-0.7518), -0.17, 0.001);  // global minimum
  EXPECT_NEAR(gelu_exact(3.0), 2.9960, 0.001);
  EXPECT_NEAR(gelu_exact(-3.0), -0.0040, 0.001);
}

TEST(GateSi, TernaryGeluTruthTableMatchesPaper) {
  // Fig. 4: s[2:0] transitions 000 -> 100 -> 110 -> 111 as the input count
  // grows; output codes are 0, -1, 0, +1 (ones-counts 1, 0, 1, 2).
  const GateAssistedSI g = GateAssistedSI::ternary_gelu();
  ASSERT_EQ(g.lin(), 8);
  ASSERT_EQ(g.lout(), 2);
  struct Row {
    int input_count;
    int expected_out_count;
    double expected_value;  // with alpha_out = 1
  };
  // Representative input counts per selection pattern region.
  const Row rows[] = {
      {0, 1, 0.0},   // s = 000 -> "10" -> 0
      {1, 1, 0.0},
      {2, 0, -1.0},  // s = 100 -> "00" -> -1
      {3, 0, -1.0},
      {4, 1, 0.0},   // s = 110 -> "10" -> 0
      {6, 1, 0.0},
      {7, 2, 1.0},   // s = 111 -> "11" -> +1
      {8, 2, 1.0},
  };
  for (const Row& r : rows) {
    const ThermValue out = g.apply(ThermValue{r.input_count, 8, 1.0});
    EXPECT_EQ(out.ones, r.expected_out_count) << "input count " << r.input_count;
    EXPECT_DOUBLE_EQ(out.value(), r.expected_value);
  }
}

TEST(GateSi, TernaryGeluBitLevelGateLogic) {
  // The bit-level path goes through the interval assist gates, not a lookup.
  const GateAssistedSI g = GateAssistedSI::ternary_gelu();
  for (int n = 0; n <= 8; ++n) {
    const ThermStream in = ThermStream::from_value(ThermValue{n, 8, 1.0});
    const ThermStream out = g.apply(in);
    EXPECT_EQ(out.ones(), g.apply(in.to_value()).ones) << "n=" << n;
    EXPECT_EQ(out.length(), 2);
  }
}

TEST(GateSi, NonMonotoneSynthesisExhaustive) {
  // A deliberately wiggly target: count map must be reproduced exactly.
  auto wiggle = [](double x) { return std::sin(2.5 * x); };
  const GateAssistedSI g = GateAssistedSI::synthesize(wiggle, 24, 8, 0.25, 0.25);
  for (int n = 0; n <= 24; ++n) {
    const double x = 0.25 * (n - 12);
    const double target = std::clamp(std::round(wiggle(x) / 0.25) * 0.25, -1.0, 1.0);
    EXPECT_NEAR(g.apply(ThermValue{n, 24, 0.25}).value(), target, 1e-9);
    // Bit path agrees.
    const ThermStream out = g.apply(ThermStream::from_value(ThermValue{n, 24, 0.25}));
    EXPECT_EQ(out.ones(), g.apply(ThermValue{n, 24, 0.25}).ones);
  }
}

TEST(GateSi, IntervalCountReflectsNonMonotonicity) {
  // A monotone table needs exactly one interval per active wire; GELU's dip
  // adds intervals (the assist-gate cost).
  const GateAssistedSI mono = GateAssistedSI::synthesize([](double x) { return x; }, 8, 8, 1.0, 1.0);
  EXPECT_EQ(mono.total_intervals(), 8);
  const GateAssistedSI gelu = GateAssistedSI::ternary_gelu();
  EXPECT_GT(gelu.total_intervals(), 2);  // wire for level 0 toggles twice
}

TEST(GateSi, RejectsBadTables) {
  EXPECT_THROW(GateAssistedSI(4, 2, 1, 1, {0, 1, 3, 1, 0}), std::invalid_argument);  // entry > Lout
  EXPECT_THROW(GateAssistedSI(4, 2, 1, 1, {0, 1}), std::invalid_argument);
}

TEST(GateSi, RequiresCanonicalInputAtBitLevel) {
  const GateAssistedSI g = GateAssistedSI::ternary_gelu();
  ThermStream bad;
  bad.alpha = 1.0;
  bad.bits = BitVec::from_string("01010101");
  EXPECT_THROW(g.apply(bad), std::invalid_argument);
}

class GeluBlockQuality : public ::testing::TestWithParam<int> {};

TEST_P(GeluBlockQuality, TracksGeluWithinOutputStep) {
  const int b = GetParam();
  const GateAssistedSI blk = make_gelu_block(b);
  for (int n = 0; n <= blk.lin(); ++n) {
    const double x = blk.alpha_in() * (n - blk.lin() / 2.0);
    if (x < -3.0 || x > 0.5) continue;
    const double g = gelu_exact(x);
    // Points beyond the output range saturate; the half-step bound applies
    // only inside the representable range.
    if (std::fabs(g) > blk.alpha_out() * b / 2.0 - blk.alpha_out() * 0.5) continue;
    const double y = blk.apply(ThermValue{n, blk.lin(), blk.alpha_in()}).value();
    EXPECT_LE(std::fabs(y - g), blk.alpha_out() * 0.51 + 1e-9) << "B=" << b << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Bsls, GeluBlockQuality, ::testing::Values(2, 4, 8, 16));

TEST(GeluBlock, MaeDecreasesWithBsl) {
  auto mae = [](int b) {
    const GateAssistedSI blk = make_gelu_block(b);
    double total = 0.0;
    int cnt = 0;
    for (int i = 0; i <= 700; ++i) {
      const double x = -3.0 + 3.5 * i / 700.0;
      total += std::fabs(blk.transfer(x) - gelu_exact(x));
      ++cnt;
    }
    return total / cnt;
  };
  const double m2 = mae(2), m4 = mae(4), m8 = mae(8);
  EXPECT_GT(m2, m4);
  EXPECT_GT(m4, m8);
}
